// Portalrun: drive the science portal exactly as a researcher's
// browser would — register, generate and inspect the GARLI form,
// upload a FASTA alignment, poll the batch, and download the results
// zip — against a live in-process grid whose virtual time is pumped
// between requests.
package main

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"

	"lattice"
	"lattice/internal/phylo"
	"lattice/internal/sim"
)

func main() {
	grid, err := lattice.New(lattice.DefaultConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(grid.Portal.Handler())
	defer srv.Close()
	fmt.Println("portal serving at", srv.URL)

	// Register as a user.
	resp, err := http.Post(srv.URL+"/register", "application/x-www-form-urlencoded",
		strings.NewReader("email=darwin@beagle.org"))
	must(err)
	var reg struct{ Token, Email string }
	must(json.NewDecoder(resp.Body).Decode(&reg))
	must(resp.Body.Close())
	fmt.Printf("registered %s → token %s\n", reg.Email, reg.Token)

	// The job-creation form is generated from the grid application's
	// XML description.
	resp, err = http.Get(srv.URL + "/garli/app.xml")
	must(err)
	xmlDesc := must1(io.ReadAll(resp.Body))
	must(resp.Body.Close())
	fmt.Printf("application description: %d bytes of XML\n", len(xmlDesc))

	// Prepare a real FASTA upload (simulated data, as a stand-in for
	// the researcher's sequences).
	rng := sim.NewRNG(3)
	m := must1(phylo.NewJC69())
	rs := must1(phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1))
	tr := phylo.RandomTree(phylo.TaxonNames(10), 0.1, rng)
	al, err := phylo.SimulateAlignment(tr, m, rs, 600, rng)
	must(err)
	var fasta strings.Builder
	must(al.WriteFASTA(&fasta))

	var body bytes.Buffer
	w := multipart.NewWriter(&body)
	must(w.WriteField("datatype", "nucleotide"))
	must(w.WriteField("ratematrix", "HKY85"))
	must(w.WriteField("ratehetmodel", "gamma"))
	must(w.WriteField("replicates", "20"))
	fw := must1(w.CreateFormFile("datafile", "beagle.fasta"))
	must1(io.WriteString(fw, fasta.String()))
	must(w.Close())

	req := must1(http.NewRequest(http.MethodPost, srv.URL+"/garli/create", &body))
	req.Header.Set("Content-Type", w.FormDataContentType())
	req.Header.Set("X-Lattice-Token", reg.Token)
	resp, err = http.DefaultClient.Do(req)
	must(err)
	raw := must1(io.ReadAll(resp.Body))
	must(resp.Body.Close())
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("submission rejected: %s", raw)
	}
	var created struct {
		Batch string `json:"batch"`
		Jobs  int    `json:"jobs"`
	}
	must(json.Unmarshal(raw, &created))
	fmt.Printf("created %s (%d grid jobs)\n", created.Batch, created.Jobs)

	// Poll while the grid runs.
	for i := 0; i < 40; i++ {
		grid.Portal.Pump(12 * lattice.Hour)
		resp, err = http.Get(srv.URL + "/batch/" + created.Batch + "?format=json")
		must(err)
		var st struct {
			Completed, Failed, Total int
			Done                     bool
		}
		must(json.NewDecoder(resp.Body).Decode(&st))
		must(resp.Body.Close())
		if st.Done {
			fmt.Printf("batch done: %d/%d completed\n", st.Completed, st.Total)
			break
		}
	}

	// Download and list the results zip.
	resp, err = http.Get(srv.URL + "/batch/" + created.Batch + "/download")
	must(err)
	data := must1(io.ReadAll(resp.Body))
	must(resp.Body.Close())
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	must(err)
	fmt.Printf("downloaded %d-byte zip with %d files:\n", len(data), len(zr.File))
	for i, f := range zr.File {
		if i < 5 || f.Name == "batch_summary.txt" {
			fmt.Println("  ", f.Name)
		}
	}

	// Email notifications the researcher received.
	for _, n := range grid.Mailer.SentTo("darwin@beagle.org") {
		fmt.Printf("mail: %s\n", n.Subject)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) pair, dying on error — example-grade
// error handling that still refuses to continue past a failure.
func must1[T any](v T, err error) T {
	must(err)
	return v
}
