// Quickstart: assemble the default grid, submit a 50-replicate GARLI
// bootstrap batch through the public API, run a month of grid time,
// and report what happened.
package main

import (
	"fmt"
	"log"

	"lattice"
)

func main() {
	// A complete federation: four Condor pools, three clusters, the
	// reference cluster, and a 400-host BOINC volunteer pool, with a
	// 150-job random-forest runtime model pre-trained.
	grid, err := lattice.New(lattice.DefaultConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid up: %d resources, runtime model trained on %d jobs\n",
		len(grid.ResourceNames()), grid.Estimator.NumObservations())

	// A typical phylogenetic analysis: 24 taxa, 1200 bp, GTR+Γ,
	// 50 bootstrap replicates, one job per replicate.
	sub := lattice.Submission{
		Spec: lattice.JobSpec{
			DataType:            lattice.Nucleotide,
			SubstModel:          "GTR",
			RateHet:             lattice.RateGammaInv,
			NumRateCats:         4,
			GammaShape:          0.5,
			PropInvariant:       0.2,
			NumTaxa:             24,
			SeqLength:           1200,
			SearchReps:          1,
			StartingTree:        lattice.StartStepwise,
			AttachmentsPerTaxon: 25,
			Seed:                7,
		},
		Replicates: 50,
		Bootstrap:  true,
		UserEmail:  "quickstart@example.edu",
	}
	batch, err := grid.SubmitSubmission(sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s: %d grid jobs for %d replicates\n",
		batch.ID, len(batch.Jobs), sub.Replicates)

	// Let the grid run for up to 30 days of virtual time.
	grid.Run(30 * lattice.Day)

	st, err := grid.Service.Status(batch.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch %s: %d completed, %d failed (done=%v)\n",
		st.ID, st.Completed, st.Failed, st.Done)
	for _, j := range batch.Jobs[:3] {
		fmt.Printf("  job %s ran on %-16s estimate %.0fs, wall %.0fs\n",
			j.Desc.JobID, j.Resource, j.EstimateRefSeconds,
			float64(j.CompletedAt.Sub(j.StartedAt)))
	}
	for _, n := range grid.Mailer.Sent() {
		fmt.Printf("  mail → %s: %s\n", n.To, n.Subject)
	}
	zip, err := grid.Service.ResultsZip(batch.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("results zip: %d bytes\n", len(zip))
}
