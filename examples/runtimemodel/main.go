// Runtimemodel: the random-forest runtime predictor on its own —
// bootstrap a training matrix like the paper's ~150 real jobs, inspect
// variable importance (Figure 2), query predictions for new analyses,
// and fold a fresh observation back in (continuous retraining).
package main

import (
	"fmt"
	"log"

	"lattice"
)

func main() {
	gen := lattice.NewGenerator(1)
	est, err := lattice.BootstrapEstimator(lattice.EstimatorConfig{
		NumTrees: 2000, MTry: 3, Seed: 1,
	}, gen, 150)
	if err != nil {
		log.Fatal(err)
	}

	st, err := est.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: 150 jobs, 2000 trees — %.1f%% variance explained, typical error ×%.2f\n",
		st.PctVarExplained, st.TypicalErrorFactor)

	imp, err := est.Importance(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvariable importance (%IncMSE, the paper's Figure 2):")
	for _, r := range imp {
		bar := ""
		for i := 0; i < int(r.PctIncMSE/4); i++ {
			bar += "█"
		}
		fmt.Printf("  %-22s %6.1f %s\n", r.Feature, r.PctIncMSE, bar)
	}

	// How long will this analysis take?
	spec := lattice.JobSpec{
		DataType:            lattice.Nucleotide,
		SubstModel:          "GTR",
		RateHet:             lattice.RateGamma,
		NumRateCats:         4,
		GammaShape:          0.5,
		NumTaxa:             60,
		SeqLength:           1800,
		SearchReps:          2,
		StartingTree:        lattice.StartStepwise,
		AttachmentsPerTaxon: 25,
	}
	pred, err := est.Predict(&spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n60-taxon GTR+Γ analysis, 2 search replicates:\n")
	fmt.Printf("  predicted: %.2f h on the reference computer (needs %d MB)\n", pred/3600, spec.MemoryMB())
	for _, speed := range []float64{0.5, 2.0} {
		p := must1(est.PredictOn(&spec, speed))
		fmt.Printf("  on a speed-%.1f resource: %.2f h\n", speed, p/3600)
	}

	// The same analysis without rate heterogeneity is much cheaper —
	// the top effect in Figure 2.
	flat := spec
	flat.RateHet = lattice.RateHomogeneous
	flat.GammaShape = 0
	pFlat := must1(est.Predict(&flat))
	fmt.Printf("  without rate heterogeneity: %.2f h (×%.1f cheaper)\n", pFlat/3600, pred/pFlat)

	// Continuous retraining: a completed job's observed runtime goes
	// straight back into the matrix and the model is rebuilt.
	before := est.NumObservations()
	if err := est.AddObservation(&spec, pred*1.3); err != nil {
		log.Fatal(err)
	}
	if err := est.Retrain(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretrained: matrix grew %d → %d observations; new model live immediately\n",
		before, est.NumObservations())
}

// must1 unwraps a (value, error) pair, dying on error — example-grade
// error handling that still refuses to continue past a failure.
func must1[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
