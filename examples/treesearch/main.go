// Treesearch: the phylogenetics engine on its own — simulate sequence
// data on a known tree, infer the tree back with the GARLI-style
// genetic-algorithm search, assess confidence with bootstrapping, and
// compare against the truth. This is the computation every grid job
// performs.
package main

import (
	"fmt"
	"log"

	"lattice/internal/beagle"
	"lattice/internal/phylo"
	"lattice/internal/sim"
)

func main() {
	rng := sim.NewRNG(2024)

	// The true evolutionary history: 12 taxa, HKY85+Γ.
	model, err := phylo.NewHKY85(2.5, []float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		log.Fatal(err)
	}
	rates, err := phylo.NewSiteRates(phylo.RateGamma, 0.6, 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	truth := phylo.RandomTree(phylo.TaxonNames(12), 0.12, rng)
	fmt.Println("true tree:", truth.Newick())

	// Evolve 1500 sites of sequence data down the tree.
	al, err := phylo.SimulateAlignment(truth, model, rates, 1500, rng)
	if err != nil {
		log.Fatal(err)
	}
	pd, err := al.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d × %d alignment (%d unique patterns)\n",
		al.NumTaxa(), al.Length(), pd.NumPatterns())

	// Infer with two search replicates from stepwise starting trees.
	cfg := phylo.DefaultSearchConfig()
	cfg.SearchReps = 2
	res, err := phylo.Search(pd, model, rates, al.Names, cfg, rng.Stream("search"))
	if err != nil {
		log.Fatal(err)
	}
	lk := must1(phylo.NewLikelihood(pd, model, rates))
	fmt.Printf("inferred tree: lnL %.2f (truth tree scores %.2f)\n",
		res.BestLogL, lk.LogLikelihood(truth))
	fmt.Printf("Robinson–Foulds distance to truth: %d (0 = identical topology)\n",
		res.BestTree.RFDistance(truth))

	// Bootstrap support for the inferred clades.
	const reps = 20
	var btrees []*phylo.Tree
	fast := cfg
	fast.SearchReps = 1
	fast.MaxGenerations = 200
	for i := 0; i < reps; i++ {
		bs := pd.Bootstrap(rng.Float64)
		r, err := phylo.Search(bs, model, rates, al.Names, fast, rng.Stream(fmt.Sprintf("bs%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		btrees = append(btrees, r.BestTree)
	}
	sup := phylo.NewSplitSupport(btrees)
	cons, err := sup.MajorityRuleConsensus(al.Names)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("majority-rule consensus of %d bootstrap trees:\n  %s\n", reps, cons.Newick())
	strong := 0
	for bp := range res.BestTree.Bipartitions() {
		if sup.Support(bp) >= 0.7 {
			strong++
		}
	}
	fmt.Printf("%d clades of the best tree have ≥70%% bootstrap support\n", strong)

	// Partitioned analysis: gene A under the HKY85+Γ model, gene B
	// under JC69, sharing one tree — GARLI's partitioned models.
	mB := must1(phylo.NewJC69())
	rB := must1(phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1))
	geneB, err := phylo.SimulateAlignment(truth, mB, rB, 700, rng)
	if err != nil {
		log.Fatal(err)
	}
	pdB := must1(geneB.Compile())
	parts := []phylo.Partition{
		{Name: "geneA", Data: pd, Model: model, Rates: rates},
		{Name: "geneB", Data: pdB, Model: mB, Rates: rB},
	}
	pcfg := cfg
	pcfg.SearchReps = 1
	pres, err := phylo.SearchPartitioned(parts, al.Names, pcfg, rng.Stream("part"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned (2-gene) search: joint lnL %.2f, RF to truth %d\n",
		pres.BestLogL, pres.BestTree.RFDistance(truth))

	// The optimized BEAGLE-style backend drives the same search. One
	// engine serves all replicates — buffers, the transition-matrix
	// cache, and incrementally cached partials persist across them
	// instead of being reallocated per replicate.
	eng, err := beagle.New(pd, model, rates)
	if err != nil {
		log.Fatal(err)
	}
	bcfg := cfg // SearchReps = 2: the second replicate reuses the warm engine
	bres, err := phylo.SearchWith(eng, al.Names, bcfg, rng.Stream("beagle"))
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("optimized-backend search (%d replicates, one engine): lnL %.2f\n",
		bcfg.SearchReps, bres.BestLogL)
	fmt.Printf("  %d evaluations, %.3g cell updates\n", st.Evaluations, st.Work)
	fmt.Printf("  partials: %d computed, %d reused incrementally (%.0f%% of pruning skipped)\n",
		st.PartialsComputed, st.PartialsReused, 100*st.ReuseFraction())
	fmt.Printf("  transition cache: %.0f%% hits (%d entries resident, %d evictions, %d buffers recycled)\n",
		100*st.CacheHitRate(), st.CacheSize, st.CacheEvictions, st.PmatRecycled)
	fmt.Printf("  pattern compression: %.2f sites/pattern (%d sites → %d patterns)\n",
		st.PatternCompression(), st.NumSites, st.NumPatterns)
	tipPct := 0.0
	if tot := st.TipCells + st.InternalCells; tot > 0 {
		tipPct = 100 * float64(st.TipCells) / float64(tot)
	}
	fmt.Printf("  kernel cells: %.0f%% tip-specialized; partials banks: %d hits, %d recycled buffers\n",
		tipPct, st.BankHits, st.BufRecycled)

	// The same search fanned out over a pool of engines: bit-identical
	// to a 1-worker run of SearchParallel for the same seed, whatever
	// the worker count.
	pool, err := phylo.NewEvaluatorPool(3, func() (phylo.Evaluator, error) {
		return beagle.New(pd, model, rates)
	})
	if err != nil {
		log.Fatal(err)
	}
	pres2, err := phylo.SearchParallel(pool, al.Names, bcfg, rng.Stream("pool"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel search (%d workers): lnL %.2f, %.3g cell updates\n",
		pool.Workers(), pres2.BestLogL, pres2.Work)

	// Checkpointing: run a resumable search in two halves, as the
	// BOINC build of GARLI does on volunteer machines.
	runner, err := phylo.NewRunner(pd, model, rates, al.Names, fast, 99)
	if err != nil {
		log.Fatal(err)
	}
	runner.Step(50)
	fmt.Printf("checkpoint at generation %d (progress %.0f%%)\n",
		runner.Generation(), 100*runner.Progress())
	for !runner.Step(100) {
	}
	_, logL := runner.Best()
	fmt.Printf("resumed search finished: lnL %.2f\n", logL)
}

// must1 unwraps a (value, error) pair, dying on error — example-grade
// error handling that still refuses to continue past a failure.
func must1[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
