// Benchmarks regenerating every quantitative artifact of the paper.
// Each BenchmarkE* runs one experiment per iteration and logs the
// reproduced table, so `go test -bench=. -benchmem` output is the
// reproduction record (EXPERIMENTS.md catalogues expected shapes).
// Micro-benchmarks for the hot substrates follow.
package lattice_test

import (
	"fmt"
	"testing"

	"lattice/internal/beagle"
	"lattice/internal/estimate"
	"lattice/internal/experiments"
	"lattice/internal/forest"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// BenchmarkFig2VariableImportance reproduces Figure 2 at the paper's
// full configuration: 150 training jobs, 10^4 trees (E1 + E2).
func BenchmarkFig2VariableImportance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(1, 150, 10000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(r.Importance[0].PctIncMSE, "top-%IncMSE")
			b.ReportMetric(r.Stats.PctVarExplained, "%var")
		}
	}
}

// BenchmarkE3CrossValidation reproduces the cross-validation claim.
func BenchmarkE3CrossValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.CrossValidation(2, 150, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(r.Metrics.Correlation, "cv-corr")
		}
	}
}

// BenchmarkE3SchedulingEffect measures scheduling with vs without the
// runtime model.
func BenchmarkE3SchedulingEffect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SchedulingEffect(5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkE4SchedulerRanking compares naive / speed-aware / full
// ranking policies.
func BenchmarkE4SchedulerRanking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SchedulerRanking(3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			naive := r.Results["naive"].Makespan.Hours()
			full := r.Results["full"].Makespan.Hours()
			if full > 0 {
				b.ReportMetric(naive/full, "naive/full-makespan")
			}
		}
	}
}

// BenchmarkE5StabilityGating measures the stability criterion on a
// long-job workload.
func BenchmarkE5StabilityGating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.StabilityGating(4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkE6SpeedCalibration recovers configured resource speeds with
// benchmark jobs.
func BenchmarkE6SpeedCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SpeedCalibration(6)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(100*r.MaxRelError, "max-err-%")
		}
	}
}

// BenchmarkE7BoincDeadlines compares manual vs estimate-driven
// workunit deadlines.
func BenchmarkE7BoincDeadlines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.BoincDeadlines(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(r.Fixed.Hours()/r.EstimateDriven.Hours(), "latency-ratio")
		}
	}
}

// BenchmarkE8WorkFetch measures scheduler-RPC efficiency with and
// without estimates.
func BenchmarkE8WorkFetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.WorkFetch(8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			if r.Informed > 0 {
				b.ReportMetric(r.Blind/r.Informed, "rpc-reduction")
			}
		}
	}
}

// BenchmarkE9ReplicateBundling measures overhead amortization for very
// short jobs.
func BenchmarkE9ReplicateBundling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ReplicateBundling(9)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkE10PortalScale runs the maximal 2000-replicate submission
// across deployment scales.
func BenchmarkE10PortalScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.PortalScale(10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(float64(r.Single)/float64(r.Grid), "grid-speedup")
		}
	}
}

// BenchmarkFaultScenario prices the fault-injection layer: the same
// 200-replicate batch with no injector wired ("fault-off") and under
// the default hostile schedule ("fault-on"). The pair is the PR4
// overhead artifact (BENCH_PR4.json, `make bench-json-faults`).
func BenchmarkFaultScenario(b *testing.B) {
	for _, c := range []struct {
		name    string
		hostile bool
	}{
		{"fault-off", false},
		{"fault-on", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := experiments.FaultOverheadRun(1, c.hostile)
				if err != nil {
					b.Fatal(err)
				}
				if m.Completed+m.Failed != m.Jobs {
					b.Fatalf("batch not terminal: %+v", m)
				}
			}
		})
	}
}

// BenchmarkE11SystemScale verifies the paper-scale federation claims.
func BenchmarkE11SystemScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SystemScale(16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(r.FifteenCPUYears.Hours()/24, "15cpu-yr-days")
		}
	}
}

// BenchmarkE13ContinuousRetraining measures model drift with and
// without retraining.
func BenchmarkE13ContinuousRetraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ContinuousRetraining(11)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkE14CheckpointAlternative compares estimate gating with
// 1-hour checkpoint cycling.
func BenchmarkE14CheckpointAlternative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.CheckpointAlternative(12)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkAblationMtry sweeps covariate subsampling.
func BenchmarkAblationMtry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationMtry(13, 150)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkAblationForestSize sweeps ensemble size.
func BenchmarkAblationForestSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationForestSize(14, 150)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkAblationImportanceMethod compares permutation and
// split-gain importance.
func BenchmarkAblationImportanceMethod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationImportanceMethod(15, 150)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// --- micro-benchmarks of the hot substrates ---

// BenchmarkLikelihoodNucleotide measures one pruning pass (GTR+Γ4,
// 16 taxa, ~500 patterns).
func BenchmarkLikelihoodNucleotide(b *testing.B) {
	rng := sim.NewRNG(1)
	m, err := phylo.NewGTR([6]float64{1.2, 3.5, 0.9, 1.1, 4.2, 1}, []float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	rs, _ := phylo.NewSiteRates(phylo.RateGamma, 0.6, 0, 4)
	tree := phylo.RandomTree(phylo.TaxonNames(16), 0.1, rng)
	al, err := phylo.SimulateAlignment(tree, m, rs, 800, rng)
	if err != nil {
		b.Fatal(err)
	}
	pd, _ := al.Compile()
	lk, _ := phylo.NewLikelihood(pd, m, rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lk.LogLikelihood(tree)
	}
	b.ReportMetric(lk.Work/float64(b.N), "cells/op")
}

// BenchmarkGASearchGeneration measures GA throughput on a small
// search.
func BenchmarkGASearchGeneration(b *testing.B) {
	rng := sim.NewRNG(2)
	m, _ := phylo.NewJC69()
	rs, _ := phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1)
	tree := phylo.RandomTree(phylo.TaxonNames(10), 0.1, rng)
	al, _ := phylo.SimulateAlignment(tree, m, rs, 300, rng)
	pd, _ := al.Compile()
	cfg := phylo.DefaultSearchConfig()
	cfg.MaxGenerations = 50
	cfg.StagnationGenerations = 50
	cfg.AttachmentsPerTaxon = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phylo.Search(pd, m, rs, al.Names, cfg, sim.NewRNG(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestTrain measures forest training at paper scale (150
// jobs, 9 predictors).
func BenchmarkForestTrain(b *testing.B) {
	gen := workload.NewGenerator(3)
	specs, secs := gen.TrainingJobs(150)
	ds := &forest.Dataset{Schema: estimate.Schema()}
	for i := range specs {
		if err := ds.Append(estimate.Features(&specs[i]), secs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Train(ds, forest.Config{NumTrees: 1000, MTry: 3, MinLeafSize: 5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestPredict measures single predictions.
func BenchmarkForestPredict(b *testing.B) {
	gen := workload.NewGenerator(4)
	est, err := estimate.Bootstrap(estimate.DefaultConfig(), gen, 150)
	if err != nil {
		b.Fatal(err)
	}
	spec := gen.Job()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Predict(&spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- PR2 engine benchmarks: incremental re-evaluation + parallel scoring ---
// Regenerate BENCH_PR2.json with:
//   make bench   (or: go test -run '^$' -bench 'SearchEval50|Search50|ParallelScore' -benchmem | go run ./cmd/benchjson > BENCH_PR2.json)

// bench50 builds a 50-taxon GTR+Γ4 nucleotide fixture for the PR2
// benchmarks.
func bench50(b *testing.B, nsites int) (*phylo.PatternData, *phylo.Model, *phylo.SiteRates, *phylo.Tree) {
	b.Helper()
	rng := sim.NewRNG(50)
	m, err := phylo.NewGTR([6]float64{1.1, 3.2, 0.8, 1.3, 4.0, 1}, []float64{0.28, 0.22, 0.26, 0.24})
	if err != nil {
		b.Fatal(err)
	}
	rs, err := phylo.NewSiteRates(phylo.RateGamma, 0.6, 0, 4)
	if err != nil {
		b.Fatal(err)
	}
	tree := phylo.RandomTree(phylo.TaxonNames(50), 0.08, rng)
	al, err := phylo.SimulateAlignment(tree, m, rs, nsites, rng)
	if err != nil {
		b.Fatal(err)
	}
	pd, err := al.Compile()
	if err != nil {
		b.Fatal(err)
	}
	return pd, m, rs, tree
}

// BenchmarkSearchEval50 measures one likelihood evaluation in the GA's
// dominant access pattern — a single branch length changed since the
// previous evaluation — on the seed full-recompute path (reference),
// the beagle backend with incremental reuse disabled, and the
// incremental engine. The incremental/full ratio is the PR's headline
// acceptance number.
func BenchmarkSearchEval50(b *testing.B) {
	pd, m, rs, tree := bench50(b, 1000)
	// A fixed mutation schedule (branch index, jitter factor) shared by
	// every engine, so all variants evaluate identical tree states.
	mrng := sim.NewRNG(77)
	const schedule = 4096
	idx := make([]int, schedule)
	factor := make([]float64, schedule)
	for i := range idx {
		idx[i] = 1 + mrng.Intn(len(tree.Nodes)-1)
		factor[i] = mrng.LogNormal(0, 0.2)
	}
	run := func(b *testing.B, ev phylo.Evaluator) {
		tr := tree.Clone()
		ev.LogLikelihood(tr) // warm buffers and caches
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := tr.Nodes[idx[i%schedule]]
			if n.Parent != nil {
				n.Length *= factor[i%schedule]
			}
			ev.LogLikelihood(tr)
		}
		b.ReportMetric(ev.TotalWork()/float64(b.N), "cells/op")
	}
	b.Run("reference", func(b *testing.B) {
		lk, err := phylo.NewLikelihood(pd, m, rs)
		if err != nil {
			b.Fatal(err)
		}
		run(b, lk)
	})
	b.Run("beagle-full", func(b *testing.B) {
		eng, err := beagle.New(pd, m, rs)
		if err != nil {
			b.Fatal(err)
		}
		eng.SetIncremental(false)
		run(b, eng)
	})
	b.Run("beagle-incremental", func(b *testing.B) {
		eng, err := beagle.New(pd, m, rs)
		if err != nil {
			b.Fatal(err)
		}
		run(b, eng)
	})
}

// BenchmarkSearch50 runs a short end-to-end 50-taxon GA search per
// iteration on each engine configuration — same seed, so the beagle
// variants follow bit-identical trajectories and the wall-clock and
// cell-update ratios are exact.
func BenchmarkSearch50(b *testing.B) {
	// 300 sites keep a full end-to-end search affordable per benchmark
	// iteration; engine ratios are pattern-count independent.
	pd, m, rs, _ := bench50(b, 300)
	cfg := phylo.DefaultSearchConfig()
	cfg.MaxGenerations = 40
	cfg.StagnationGenerations = 40
	cfg.AttachmentsPerTaxon = 4
	// Coarse termination keeps the final branch-length polish to one
	// sweep; the full-resolution run is the perf experiment's job
	// (gridbench -run perf), not the benchmark's.
	cfg.ImprovementEps = 2.0
	names := phylo.TaxonNames(50)
	run := func(b *testing.B, factory func() (phylo.Evaluator, error)) {
		var work float64
		for i := 0; i < b.N; i++ {
			ev, err := factory()
			if err != nil {
				b.Fatal(err)
			}
			res, err := phylo.SearchWith(ev, names, cfg, sim.NewRNG(9))
			if err != nil {
				b.Fatal(err)
			}
			work = res.Work
		}
		b.ReportMetric(work, "cells/search")
	}
	b.Run("reference", func(b *testing.B) {
		run(b, func() (phylo.Evaluator, error) { return phylo.NewLikelihood(pd, m, rs) })
	})
	b.Run("beagle-full", func(b *testing.B) {
		run(b, func() (phylo.Evaluator, error) {
			eng, err := beagle.New(pd, m, rs)
			if err != nil {
				return nil, err
			}
			eng.SetIncremental(false)
			return eng, nil
		})
	})
	b.Run("beagle-incremental", func(b *testing.B) {
		run(b, func() (phylo.Evaluator, error) { return beagle.New(pd, m, rs) })
	})
}

// BenchmarkParallelScore measures population scoring through an
// EvaluatorPool at several worker counts: 32 perturbed 50-taxon trees
// per op, each with one branch re-jittered between ops — a GA
// generation's access pattern. The pool is warm-started from a parent
// engine (as a search would after building the population), so no
// worker pays the transition-matrix cold start the PR2 version
// measured. Scores are bit-identical across worker counts; wall-clock
// scaling comes from the per-tree bank budget: each worker's share of
// the population must fit its engine's conditional-likelihood budget
// for revisits to be incremental.
func BenchmarkParallelScore(b *testing.B) {
	pd, m, rs, tree := bench50(b, 1000)
	rng := sim.NewRNG(11)
	base := make([]*phylo.Tree, 32)
	for i := range base {
		base[i] = tree.Clone()
		base[i].PostOrder(func(n *phylo.Node) {
			if n.Parent != nil {
				n.Length *= rng.LogNormal(0, 0.2)
			}
		})
	}
	// Fixed per-(op, tree) mutation schedule so every worker count
	// evaluates identical tree states in the same order.
	mrng := sim.NewRNG(78)
	const schedule = 512
	idx := make([]int, schedule*len(base))
	factor := make([]float64, schedule*len(base))
	for i := range idx {
		idx[i] = 1 + mrng.Intn(len(tree.Nodes)-1)
		factor[i] = mrng.LogNormal(0, 0.2)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// Fresh clones per worker count: identical tree states and
			// fresh bank identities for every variant.
			trees := make([]*phylo.Tree, len(base))
			for i := range trees {
				trees[i] = base[i].Clone()
			}
			parent, err := beagle.New(pd, m, rs)
			if err != nil {
				b.Fatal(err)
			}
			for _, tr := range trees {
				parent.LogLikelihood(tr) // warm the shared transition cache
			}
			pool, err := phylo.NewEvaluatorPool(workers, func() (phylo.Evaluator, error) {
				return beagle.New(pd, m, rs)
			})
			if err != nil {
				b.Fatal(err)
			}
			pool.WarmStart(parent)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := (i % schedule) * len(trees)
				for k, tr := range trees {
					n := tr.Nodes[idx[s+k]]
					if n.Parent != nil {
						n.Length *= factor[s+k]
					}
				}
				pool.ScoreAll(trees)
			}
			b.ReportMetric(float64(len(trees)), "trees/op")
		})
	}
}

// BenchmarkSimEngine measures raw event throughput of the
// discrete-event kernel.
func BenchmarkSimEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		count := 0
		var tick func()
		tick = func() {
			count++
			if count < 100000 {
				eng.Schedule(1, tick)
			}
		}
		eng.Schedule(1, tick)
		eng.Run()
	}
	b.ReportMetric(100000, "events/op")
}

// BenchmarkWALScenario prices crash-consistent durability: the same
// 200-replicate hostile-schedule batch with durability off ("wal-off")
// and with every coordinator transition logged to a write-ahead log
// ("wal-on"). The pair is the PR5 overhead artifact (BENCH_PR5.json,
// `make bench-json-wal`).
func BenchmarkWALScenario(b *testing.B) {
	for _, c := range []struct {
		name    string
		durable bool
	}{
		{"wal-off", false},
		{"wal-on", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := experiments.WALOverheadRun(1, c.durable)
				if err != nil {
					b.Fatal(err)
				}
				if m.Completed+m.Failed != m.Jobs {
					b.Fatalf("batch not terminal: %+v", m)
				}
			}
		})
	}
}

// BenchmarkDagWorkflow prices the workflow engine: the four-stage
// standard analysis run flat (every stage submitted up front as an
// independent batch, the way the paper's users chained submissions by
// hand) versus as one typed DAG. Reports wall time and mean
// stage-queue wait (job place wait). The pair is the PR8 artifact
// (BENCH_PR8.json, `make bench-json-dag`).
func BenchmarkDagWorkflow(b *testing.B) {
	for _, c := range []struct {
		name   string
		useDag bool
	}{
		{"flat", false},
		{"dag", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, wait, err := experiments.WorkflowOverheadRun(1, c.useDag)
				if err != nil {
					b.Fatal(err)
				}
				if m.Completed+m.Failed != m.Jobs {
					b.Fatalf("stages not terminal: %+v", m)
				}
				if i == 0 {
					b.ReportMetric(m.Makespan.Hours(), "makespan-h")
					b.ReportMetric(wait.Hours(), "mean-wait-h")
				}
			}
		})
	}
}

// BenchmarkScaleOut prices coordinator sharding: 10^5 simulated users
// pushed through 1, 2, 4 and 8 coordinator shards behind the
// deterministic router. Reports virtual makespan, throughput, mean
// front-door wait and peak front-door queue depth per shard count.
// The sweep is the PR9 artifact (BENCH_PR9.json,
// `make bench-json-scale`).
// BenchmarkOverloadScenario prices overload protection: a 10× demand
// spike pushed through protected 1- and 4-shard clusters (admission
// control, fair-share shedding, circuit breakers) and the unprotected
// 1-shard baseline. Reports goodput ratio, shed counts and p99
// front-door wait per configuration. The sweep is the PR10 artifact
// (BENCH_PR10.json, `make bench-json-overload`).
func BenchmarkOverloadScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.OverloadScenario(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if !p.Conserved || !p.TwinMatch {
				b.Fatalf("overload point not conserved/twin-matched: %+v", p)
			}
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(r.Points[0].GoodputRatio, "goodput-1shard")
			b.ReportMetric(r.Points[1].GoodputRatio, "goodput-4shard")
			b.ReportMetric(float64(r.Points[0].ShedQuota+r.Points[0].ShedOverload), "sheds-1shard")
			b.ReportMetric(r.Points[0].P99FrontDoorWaitSeconds, "p99-wait-s")
			b.ReportMetric(r.Baseline.P99FrontDoorWaitSeconds, "baseline-p99-wait-s")
			b.ReportMetric(r.P99Blowup, "p99-blowup-x")
		}
	}
}

func BenchmarkScaleOut(b *testing.B) {
	const users = 100000
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := experiments.ScaleOutPoint(1, users, shards)
				if err != nil {
					b.Fatal(err)
				}
				if p.Completed+p.Failed != p.Jobs || !p.Conserved {
					b.Fatalf("scale point not terminal/conserved: %+v", p)
				}
				if i == 0 {
					b.ReportMetric(p.MakespanHours, "makespan-h")
					b.ReportMetric(p.ThroughputPerHour, "jobs-per-h")
					b.ReportMetric(p.MeanIngestWaitSeconds, "ingest-wait-s")
					b.ReportMetric(float64(p.PeakIngestDepth), "peak-depth")
				}
			}
		})
	}
}
