// Benchmarks regenerating every quantitative artifact of the paper.
// Each BenchmarkE* runs one experiment per iteration and logs the
// reproduced table, so `go test -bench=. -benchmem` output is the
// reproduction record (EXPERIMENTS.md catalogues expected shapes).
// Micro-benchmarks for the hot substrates follow.
package lattice_test

import (
	"testing"

	"lattice/internal/estimate"
	"lattice/internal/experiments"
	"lattice/internal/forest"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// BenchmarkFig2VariableImportance reproduces Figure 2 at the paper's
// full configuration: 150 training jobs, 10^4 trees (E1 + E2).
func BenchmarkFig2VariableImportance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(1, 150, 10000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(r.Importance[0].PctIncMSE, "top-%IncMSE")
			b.ReportMetric(r.Stats.PctVarExplained, "%var")
		}
	}
}

// BenchmarkE3CrossValidation reproduces the cross-validation claim.
func BenchmarkE3CrossValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.CrossValidation(2, 150, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(r.Metrics.Correlation, "cv-corr")
		}
	}
}

// BenchmarkE3SchedulingEffect measures scheduling with vs without the
// runtime model.
func BenchmarkE3SchedulingEffect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SchedulingEffect(5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkE4SchedulerRanking compares naive / speed-aware / full
// ranking policies.
func BenchmarkE4SchedulerRanking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SchedulerRanking(3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			naive := r.Results["naive"].Makespan.Hours()
			full := r.Results["full"].Makespan.Hours()
			if full > 0 {
				b.ReportMetric(naive/full, "naive/full-makespan")
			}
		}
	}
}

// BenchmarkE5StabilityGating measures the stability criterion on a
// long-job workload.
func BenchmarkE5StabilityGating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.StabilityGating(4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkE6SpeedCalibration recovers configured resource speeds with
// benchmark jobs.
func BenchmarkE6SpeedCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SpeedCalibration(6)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(100*r.MaxRelError, "max-err-%")
		}
	}
}

// BenchmarkE7BoincDeadlines compares manual vs estimate-driven
// workunit deadlines.
func BenchmarkE7BoincDeadlines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.BoincDeadlines(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(r.Fixed.Hours()/r.EstimateDriven.Hours(), "latency-ratio")
		}
	}
}

// BenchmarkE8WorkFetch measures scheduler-RPC efficiency with and
// without estimates.
func BenchmarkE8WorkFetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.WorkFetch(8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			if r.Informed > 0 {
				b.ReportMetric(r.Blind/r.Informed, "rpc-reduction")
			}
		}
	}
}

// BenchmarkE9ReplicateBundling measures overhead amortization for very
// short jobs.
func BenchmarkE9ReplicateBundling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ReplicateBundling(9)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkE10PortalScale runs the maximal 2000-replicate submission
// across deployment scales.
func BenchmarkE10PortalScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.PortalScale(10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(float64(r.Single)/float64(r.Grid), "grid-speedup")
		}
	}
}

// BenchmarkE11SystemScale verifies the paper-scale federation claims.
func BenchmarkE11SystemScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SystemScale(16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
			b.ReportMetric(r.FifteenCPUYears.Hours()/24, "15cpu-yr-days")
		}
	}
}

// BenchmarkE13ContinuousRetraining measures model drift with and
// without retraining.
func BenchmarkE13ContinuousRetraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ContinuousRetraining(11)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkE14CheckpointAlternative compares estimate gating with
// 1-hour checkpoint cycling.
func BenchmarkE14CheckpointAlternative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.CheckpointAlternative(12)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkAblationMtry sweeps covariate subsampling.
func BenchmarkAblationMtry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationMtry(13, 150)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkAblationForestSize sweeps ensemble size.
func BenchmarkAblationForestSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationForestSize(14, 150)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkAblationImportanceMethod compares permutation and
// split-gain importance.
func BenchmarkAblationImportanceMethod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationImportanceMethod(15, 150)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// --- micro-benchmarks of the hot substrates ---

// BenchmarkLikelihoodNucleotide measures one pruning pass (GTR+Γ4,
// 16 taxa, ~500 patterns).
func BenchmarkLikelihoodNucleotide(b *testing.B) {
	rng := sim.NewRNG(1)
	m, err := phylo.NewGTR([6]float64{1.2, 3.5, 0.9, 1.1, 4.2, 1}, []float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	rs, _ := phylo.NewSiteRates(phylo.RateGamma, 0.6, 0, 4)
	tree := phylo.RandomTree(phylo.TaxonNames(16), 0.1, rng)
	al, err := phylo.SimulateAlignment(tree, m, rs, 800, rng)
	if err != nil {
		b.Fatal(err)
	}
	pd, _ := al.Compile()
	lk, _ := phylo.NewLikelihood(pd, m, rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lk.LogLikelihood(tree)
	}
	b.ReportMetric(lk.Work/float64(b.N), "cells/op")
}

// BenchmarkGASearchGeneration measures GA throughput on a small
// search.
func BenchmarkGASearchGeneration(b *testing.B) {
	rng := sim.NewRNG(2)
	m, _ := phylo.NewJC69()
	rs, _ := phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1)
	tree := phylo.RandomTree(phylo.TaxonNames(10), 0.1, rng)
	al, _ := phylo.SimulateAlignment(tree, m, rs, 300, rng)
	pd, _ := al.Compile()
	cfg := phylo.DefaultSearchConfig()
	cfg.MaxGenerations = 50
	cfg.StagnationGenerations = 50
	cfg.AttachmentsPerTaxon = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phylo.Search(pd, m, rs, al.Names, cfg, sim.NewRNG(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestTrain measures forest training at paper scale (150
// jobs, 9 predictors).
func BenchmarkForestTrain(b *testing.B) {
	gen := workload.NewGenerator(3)
	specs, secs := gen.TrainingJobs(150)
	ds := &forest.Dataset{Schema: estimate.Schema()}
	for i := range specs {
		if err := ds.Append(estimate.Features(&specs[i]), secs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Train(ds, forest.Config{NumTrees: 1000, MTry: 3, MinLeafSize: 5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestPredict measures single predictions.
func BenchmarkForestPredict(b *testing.B) {
	gen := workload.NewGenerator(4)
	est, err := estimate.Bootstrap(estimate.DefaultConfig(), gen, 150)
	if err != nil {
		b.Fatal(err)
	}
	spec := gen.Job()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Predict(&spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEngine measures raw event throughput of the
// discrete-event kernel.
func BenchmarkSimEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		count := 0
		var tick func()
		tick = func() {
			count++
			if count < 100000 {
				eng.Schedule(1, tick)
			}
		}
		eng.Schedule(1, tick)
		eng.Run()
	}
	b.ReportMetric(100000, "events/op")
}
