// Package portal is the science-portal web interface of Section III:
// an HTTP front end whose GARLI job-creation form is generated from
// the grid application's XML description (the paper's Drupal module),
// with guest and registered-user modes, a validation pre-pass before
// any job is scheduled, batch status tracking, email notification, and
// single-zip result download.
package portal

import (
	"fmt"
	"html/template"
	"strings"

	"lattice/internal/gsbl"
)

// formTemplate renders a generated application form.
var formTemplate = template.Must(template.New("form").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}}</title></head>
<body>
<h1>{{.Title}}</h1>
<p>Create a job — up to 2000 replicates per submission.</p>
<form method="POST" enctype="multipart/form-data" action="/{{.Name}}/create">
{{range .Params}}
  <div class="form-item">
    <label for="{{.Name}}">{{.Label}}{{if .Required}} *{{end}}</label>
    {{if eq .Type "choice"}}
      <select name="{{.Name}}" id="{{.Name}}">
      {{$def := .Default}}
      {{range .Options}}<option value="{{.}}"{{if eq . $def}} selected{{end}}>{{.}}</option>{{end}}
      </select>
    {{else if eq .Type "file"}}
      <input type="file" name="{{.Name}}" id="{{.Name}}"/>
    {{else}}
      <input type="text" name="{{.Name}}" id="{{.Name}}" value="{{.Default}}"/>
    {{end}}
    {{if .Help}}<small>{{.Help}}</small>{{end}}
  </div>
{{end}}
  <input type="submit" value="Create job"/>
</form>
</body></html>
`))

// RenderForm generates the HTML form for an application description —
// the portal's equivalent of the paper's Drupal form generation.
func RenderForm(app *gsbl.AppDescription) (string, error) {
	var b strings.Builder
	if err := formTemplate.Execute(&b, app); err != nil {
		return "", fmt.Errorf("portal: rendering form for %s: %w", app.Name, err)
	}
	return b.String(), nil
}

var statusTemplate = template.Must(template.New("status").Parse(`<!DOCTYPE html>
<html><head><title>Batch {{.ID}}</title></head>
<body>
<h1>Batch {{.ID}}</h1>
<table>
<tr><td>Total jobs</td><td>{{.Total}}</td></tr>
<tr><td>Completed</td><td>{{.Completed}}</td></tr>
<tr><td>Failed</td><td>{{.Failed}}</td></tr>
<tr><td>Running</td><td>{{.Running}}</td></tr>
<tr><td>Pending</td><td>{{.Pending}}</td></tr>
</table>
{{if .Done}}<p><a href="/batch/{{.ID}}/download">Download results (zip)</a></p>
{{else}}<p>Jobs are still running; you will be notified by email.</p>{{end}}
</body></html>
`))

// renderStatus renders a batch status page.
func renderStatus(st gsbl.BatchStatus) (string, error) {
	var b strings.Builder
	if err := statusTemplate.Execute(&b, st); err != nil {
		return "", err
	}
	return b.String(), nil
}
