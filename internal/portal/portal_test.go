package portal

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/iotest"

	"lattice/internal/wal"

	"lattice/internal/admit"
	"lattice/internal/grid/mds"
	"lattice/internal/gsbl"
	"lattice/internal/lrm"
	"lattice/internal/lrm/pbs"
	"lattice/internal/metasched"
	"lattice/internal/phylo"
	"lattice/internal/sim"
)

// fixture builds a portal over a one-cluster grid.
func fixture(t *testing.T) (*Portal, *httptest.Server, *gsbl.Mailer) {
	t.Helper()
	eng := sim.NewEngine()
	idx, err := mds.NewIndex(eng, 5*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	hpc, err := pbs.New(eng, pbs.Config{
		Name: "hpc", Platform: lrm.LinuxX86,
		Nodes: []pbs.NodeClass{{Count: 32, Speed: 2, MemoryMB: 8192}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mds.StartProvider(eng, idx, hpc, sim.Minute); err != nil {
		t.Fatal(err)
	}
	sched := metasched.New(eng, idx, metasched.DefaultConfig())
	if err := sched.Register(hpc, 2); err != nil {
		t.Fatal(err)
	}
	mailer := &gsbl.Mailer{}
	svc := gsbl.NewService(eng, sched, mailer, sim.NewRNG(1))
	p := New(eng, svc)
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(ts.Close)
	return p, ts, mailer
}

// testFASTA generates a small alignment upload body.
func testFASTA(t *testing.T) string {
	t.Helper()
	rng := sim.NewRNG(5)
	m, _ := phylo.NewJC69()
	rs, _ := phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1)
	tree := phylo.RandomTree(phylo.TaxonNames(8), 0.1, rng)
	al, err := phylo.SimulateAlignment(tree, m, rs, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := al.WriteFASTA(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// multipartForm builds a submission request body.
func multipartForm(t *testing.T, fields map[string]string, fasta string) (string, io.Reader) {
	t.Helper()
	var body bytes.Buffer
	w := multipart.NewWriter(&body)
	for k, v := range fields {
		if err := w.WriteField(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if fasta != "" {
		fw, err := w.CreateFormFile("datafile", "data.fasta")
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(fw, fasta)
	}
	w.Close()
	return w.FormDataContentType(), &body
}

func TestIndexAndFormPages(t *testing.T) {
	_, ts, _ := fixture(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "Lattice") {
		t.Error("index page missing project name")
	}
	resp, err = http.Get(ts.URL + "/garli/create")
	if err != nil {
		t.Fatal(err)
	}
	form, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, frag := range []string{"ratehetmodel", "datatype", "replicates", "attachmentspertaxon", `type="file"`} {
		if !strings.Contains(string(form), frag) {
			t.Errorf("generated form missing %q", frag)
		}
	}
}

func TestAppXMLServed(t *testing.T) {
	_, ts, _ := fixture(t)
	resp, err := http.Get(ts.URL + "/garli/app.xml")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	app, err := gsbl.ParseAppDescription(data)
	if err != nil {
		t.Fatalf("served XML unparseable: %v", err)
	}
	if app.Name != "garli" {
		t.Errorf("app name %q", app.Name)
	}
}

// submitBatch drives the full guest submission flow and returns the
// batch ID.
func submitBatch(t *testing.T, ts *httptest.Server, fields map[string]string, fasta string) string {
	t.Helper()
	ctype, body := multipartForm(t, fields, fasta)
	resp, err := http.Post(ts.URL+"/garli/create", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submission rejected (%d): %s", resp.StatusCode, raw)
	}
	var out struct {
		Batch string `json:"batch"`
		Jobs  int    `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad response %s: %v", raw, err)
	}
	return out.Batch
}

func TestGuestSubmissionEndToEnd(t *testing.T) {
	p, ts, mailer := fixture(t)
	batch := submitBatch(t, ts, map[string]string{
		"email":        "guest@example.org",
		"datatype":     "nucleotide",
		"ratematrix":   "HKY85",
		"ratehetmodel": "gamma",
		"replicates":   "10",
	}, testFASTA(t))

	// Status before completion.
	resp, err := http.Get(ts.URL + "/batch/" + batch + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var st gsbl.BatchStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Total != 10 {
		t.Fatalf("batch shows %d jobs, want 10", st.Total)
	}
	// Download should 409 while running.
	resp, _ = http.Get(ts.URL + "/batch/" + batch + "/download")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("download before completion returned %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Let the grid run.
	p.Pump(60 * sim.Day)

	resp, _ = http.Get(ts.URL + "/batch/" + batch + "?format=json")
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if !st.Done || st.Completed != 10 {
		t.Fatalf("batch not done: %+v", st)
	}
	resp, _ = http.Get(ts.URL + "/batch/" + batch + "/download")
	zipData, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(zipData) == 0 {
		t.Fatalf("download failed: %d, %d bytes", resp.StatusCode, len(zipData))
	}
	if resp.Header.Get("Content-Type") != "application/zip" {
		t.Errorf("content type %q", resp.Header.Get("Content-Type"))
	}
	if len(mailer.SentTo("guest@example.org")) < 2 {
		t.Error("guest did not receive notifications")
	}
}

func TestValidationPrePassRejectsBadUpload(t *testing.T) {
	_, ts, _ := fixture(t)
	// Ragged alignment must be rejected before scheduling.
	bad := ">a\nACGT\n>b\nAC\n>c\nACGT\n"
	ctype, body := multipartForm(t, map[string]string{"email": "g@x.org", "replicates": "5"}, bad)
	resp, err := http.Post(ts.URL+"/garli/create", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad alignment accepted: %d", resp.StatusCode)
	}
}

func TestValidationRejectsMissingFileAndEmail(t *testing.T) {
	_, ts, _ := fixture(t)
	ctype, body := multipartForm(t, map[string]string{"email": "g@x.org"}, "")
	resp, _ := http.Post(ts.URL+"/garli/create", ctype, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing data file accepted: %d", resp.StatusCode)
	}
	resp.Body.Close()
	ctype, body = multipartForm(t, map[string]string{}, testFASTA(t))
	resp, _ = http.Post(ts.URL+"/garli/create", ctype, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing email accepted: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestReplicateLimitEnforced(t *testing.T) {
	_, ts, _ := fixture(t)
	ctype, body := multipartForm(t, map[string]string{
		"email": "g@x.org", "replicates": "2001",
	}, testFASTA(t))
	resp, err := http.Post(ts.URL+"/garli/create", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("2001 replicates accepted: %d", resp.StatusCode)
	}
}

func TestRegisteredUserFlow(t *testing.T) {
	_, ts, _ := fixture(t)
	// Register.
	resp, err := http.Post(ts.URL+"/register", "application/x-www-form-urlencoded",
		strings.NewReader("email=alice@lab.edu"))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct{ Token string }
	json.NewDecoder(resp.Body).Decode(&reg)
	resp.Body.Close()
	if reg.Token == "" {
		t.Fatal("no token issued")
	}

	// Submit with token (no email field needed).
	ctype, body := multipartForm(t, map[string]string{"replicates": "3"}, testFASTA(t))
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/garli/create", body)
	req.Header.Set("Content-Type", ctype)
	req.Header.Set("X-Lattice-Token", reg.Token)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registered submission rejected: %s", raw)
	}
	var out struct{ Batch string }
	json.Unmarshal(raw, &out)

	// /myjobs lists it.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/myjobs", nil)
	req.Header.Set("X-Lattice-Token", reg.Token)
	resp, _ = http.DefaultClient.Do(req)
	var rows []struct{ Batch string }
	json.NewDecoder(resp.Body).Decode(&rows)
	resp.Body.Close()
	if len(rows) != 1 || rows[0].Batch != out.Batch {
		t.Errorf("myjobs rows = %+v", rows)
	}

	// A different registered user cannot view it.
	resp, _ = http.Post(ts.URL+"/register", "application/x-www-form-urlencoded",
		strings.NewReader("email=eve@lab.edu"))
	var reg2 struct{ Token string }
	json.NewDecoder(resp.Body).Decode(&reg2)
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/batch/"+out.Batch, nil)
	req.Header.Set("X-Lattice-Token", reg2.Token)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("cross-user access returned %d, want 403", resp.StatusCode)
	}
}

func TestRegisterValidation(t *testing.T) {
	_, ts, _ := fixture(t)
	resp, _ := http.Post(ts.URL+"/register", "application/x-www-form-urlencoded",
		strings.NewReader("email=notanemail"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad email accepted: %d", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/register")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /register returned %d", resp.StatusCode)
	}
}

func TestUnknownBatch404(t *testing.T) {
	_, ts, _ := fixture(t)
	resp, _ := http.Get(ts.URL + "/batch/batch-999999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown batch returned %d", resp.StatusCode)
	}
}

func TestNEXUSUploadAccepted(t *testing.T) {
	_, ts, _ := fixture(t)
	nexus := `#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=4 NCHAR=12;
  FORMAT DATATYPE=DNA;
  MATRIX
    a ACGTACGTACGT
    b ACGTACGAACGA
    c ACGAACGTACGT
    d ACGTACTTACGT
  ;
END;
`
	batch := submitBatch(t, ts, map[string]string{
		"email":      "nexus@lab.edu",
		"replicates": "3",
	}, nexus)
	if batch == "" {
		t.Fatal("no batch created from NEXUS upload")
	}
}

func TestGridStatusEndpoint(t *testing.T) {
	p, ts, _ := fixture(t)
	// Unconfigured → 404.
	resp, err := http.Get(ts.URL + "/grid/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unconfigured status returned %d", resp.StatusCode)
	}
	p.SetStatusSource(func() any { return map[string]int{"resources": 1} })
	resp, err = http.Get(ts.URL + "/grid/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["resources"] != 1 {
		t.Errorf("status payload %v", out)
	}
}

// TestArtifactCacheAtomic covers the durable artifact path: when an
// artifact directory is configured, downloading a finished batch
// publishes the result zip on disk via atomic temp+rename, and an
// interrupted rewrite never clobbers the published archive.
func TestArtifactCacheAtomic(t *testing.T) {
	p, ts, _ := fixture(t)
	dir := t.TempDir()
	if err := p.SetArtifactDir(dir); err != nil {
		t.Fatal(err)
	}
	batch := submitBatch(t, ts, map[string]string{
		"email":        "durable@example.org",
		"datatype":     "nucleotide",
		"ratematrix":   "HKY85",
		"ratehetmodel": "gamma",
		"replicates":   "4",
	}, testFASTA(t))
	p.Pump(60 * sim.Day)

	resp, err := http.Get(ts.URL + "/batch/" + batch + "/download")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download returned %d", resp.StatusCode)
	}

	path := filepath.Join(dir, batch+".zip")
	cached, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no cached artifact: %v", err)
	}
	if !bytes.Equal(cached, served) {
		t.Fatalf("cached artifact (%d bytes) != served download (%d bytes)", len(cached), len(served))
	}
	zr, err := zip.NewReader(bytes.NewReader(cached), int64(len(cached)))
	if err != nil {
		t.Fatalf("cached artifact is not a valid zip: %v", err)
	}
	if len(zr.File) == 0 {
		t.Fatal("cached zip is empty")
	}

	// A writer dying mid-copy must leave the published archive intact
	// and litter nothing.
	half := len(cached) / 2
	err = wal.CopyFileAtomic(path, io.MultiReader(
		bytes.NewReader(cached[:half]),
		iotest.ErrReader(errors.New("disk yanked")),
	))
	if err == nil {
		t.Fatal("interrupted copy reported success")
	}
	after, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(after, cached) {
		t.Fatalf("interrupted rewrite damaged the published artifact (err=%v)", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s littered after interrupted copy", e.Name())
		}
	}
}

// admitFixture builds a portal over a grid with the ingest model and
// admission controller in front of the door.
func admitFixture(t *testing.T, acfg admit.Config) (*Portal, *httptest.Server) {
	t.Helper()
	eng := sim.NewEngine()
	idx, err := mds.NewIndex(eng, 5*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	hpc, err := pbs.New(eng, pbs.Config{
		Name: "hpc", Platform: lrm.LinuxX86,
		Nodes: []pbs.NodeClass{{Count: 32, Speed: 2, MemoryMB: 8192}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mds.StartProvider(eng, idx, hpc, sim.Minute); err != nil {
		t.Fatal(err)
	}
	sched := metasched.New(eng, idx, metasched.DefaultConfig())
	if err := sched.Register(hpc, 2); err != nil {
		t.Fatal(err)
	}
	svc := gsbl.NewService(eng, sched, &gsbl.Mailer{}, sim.NewRNG(1))
	svc.SetIngest(gsbl.IngestConfig{PerSubmissionSeconds: 1, PerReplicateSeconds: 0.25})
	if err := svc.SetAdmit(acfg); err != nil {
		t.Fatal(err)
	}
	p := New(eng, svc)
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(ts.Close)
	return p, ts
}

// TestCreateJobAdmission walks the admission-aware submission path: an
// admitted submission is acknowledged 202 (queued behind the door) and
// gains ownership when the drain accepts it; a quota-exhausted repeat
// is answered 429 with the controller's Retry-After hint.
func TestCreateJobAdmission(t *testing.T) {
	p, ts := admitFixture(t, admit.Config{UserRatePerHour: 3600, UserBurst: 10})
	fields := map[string]string{
		"email":        "stampede@example.org",
		"datatype":     "nucleotide",
		"ratematrix":   "HKY85",
		"ratehetmodel": "gamma",
		"replicates":   "8",
	}
	fasta := testFASTA(t)

	ctype, body := multipartForm(t, fields, fasta)
	resp, err := http.Post(ts.URL+"/garli/create", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("admitted submission returned %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "queued") {
		t.Fatalf("202 body %s does not say queued", raw)
	}

	// Second 8-replicate submission at the same virtual instant: 2
	// tokens left in the bucket, refill 1/s, so retry after 6s.
	ctype, body = multipartForm(t, fields, fasta)
	resp, err = http.Post(ts.URL+"/garli/create", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota-exhausted submission returned %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "6" {
		t.Fatalf("Retry-After = %q, want 6", got)
	}
	if !strings.Contains(string(raw), "quota") {
		t.Fatalf("429 body %s does not name the quota", raw)
	}

	// Draining the door registers ownership for the accepted batch.
	p.Pump(sim.Hour)
	p.mu.Lock()
	var owned []string
	for id, owner := range p.owners {
		if owner == "stampede@example.org" {
			owned = append(owned, id)
		}
	}
	p.mu.Unlock()
	if len(owned) != 1 {
		t.Fatalf("owned batches after drain = %v, want exactly one", owned)
	}
	resp, err = http.Get(ts.URL + "/batch/" + owned[0] + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status for drained submission returned %d", resp.StatusCode)
	}
}
