package portal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"lattice/internal/admit"
	"lattice/internal/dag"
	"lattice/internal/gsbl"
	"lattice/internal/obs"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/wal"
	"lattice/internal/workload"
)

// Portal serves the science-portal HTTP interface over a gsbl.Service.
// All handlers serialize access to the (single-threaded) simulation
// through one mutex.
type Portal struct {
	mu      sync.Mutex
	eng     *sim.Engine
	svc     *gsbl.Service
	app     *gsbl.AppDescription
	users   map[string]string // token → email
	owners  map[string]string // batch ID → email (or guest email)
	nextTok int
	// statusFn, when set (see SetStatusSource), backs /grid/status.
	statusFn func() any
	// obsHub, when set (see SetObs), backs /metrics and /trace/.
	obsHub *obs.Obs
	// clientErrs counts response bodies that failed to write: the
	// client disconnected mid-response, which a handler cannot report
	// anywhere else.
	clientErrs int
	durable    Durability
	// artifactDir, when set, caches downloadable result archives on
	// disk (written atomically) so a crash mid-write can never leave a
	// truncated archive behind.
	artifactDir string
	// wfs, when set (see SetWorkflows), backs the workflow submission
	// and per-stage status endpoints.
	wfs *dag.Engine
}

// Durability is the write-ahead-log hook for portal account state.
// Called under the portal lock; implementations must not call back
// into the portal.
type Durability interface {
	User(at sim.Time, token, email string)
}

// SetDurable installs the durability hook (nil disables it).
func (p *Portal) SetDurable(d Durability) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.durable = d
}

// SetArtifactDir enables the on-disk result-archive cache under dir.
func (p *Portal) SetArtifactDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("portal: artifact dir: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.artifactDir = dir
	return nil
}

// RestoreUser re-creates a registered account from the durable log,
// keeping the token counter ahead of every restored token so new
// registrations never collide.
func (p *Portal) RestoreUser(token, email string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.users[token] = email
	var n int
	if _, err := fmt.Sscanf(token, "tok-%06d", &n); err == nil && n > p.nextTok {
		p.nextTok = n
	}
	if p.durable != nil {
		p.durable.User(p.eng.Now(), token, email)
	}
}

// WriteJSON serializes v to w with the portal's client-error
// accounting — exported for the cluster front router's merged
// endpoints.
func (p *Portal) WriteJSON(w http.ResponseWriter, v any) { p.writeJSON(w, v) }

// NoteClientErr records a failed response write on behalf of the
// cluster front router.
func (p *Portal) NoteClientErr() { p.noteClientErr() }

// LookupToken resolves a registered API token to its email. A cluster
// front router uses it to find the shard that issued a token.
func (p *Portal) LookupToken(token string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	email, ok := p.users[token]
	return email, ok
}

// Resubmit pushes a submission through the portal's submission path —
// batch creation plus ownership bookkeeping — without an HTTP
// request. Recovery uses it to re-inject portal-originated
// submissions.
func (p *Portal) Resubmit(sub workload.Submission) (*gsbl.Batch, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	batch, err := p.svc.SubmitBatchOrigin(sub, "portal")
	if err != nil {
		return nil, err
	}
	p.owners[batch.ID] = sub.UserEmail
	return batch, nil
}

// EnqueueOwned pushes a submission through the service's admission and
// ingest front door with portal ownership bookkeeping. The acceptance
// callback fires either synchronously (immediate quota refusal or
// arriving-entry shed) or later at ingest drain time; drains run inside
// Pump, which holds the portal mutex, so the callback writes the
// ownership map directly instead of locking. The return value reflects
// what is known when the enqueue returns: the batch when acceptance was
// synchronous, the admission rejection when the submission was shed on
// arrival, or (nil, nil, nil) when it was queued behind the door.
func (p *Portal) EnqueueOwned(sub workload.Submission) (*gsbl.Batch, *admit.Rejection, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var (
		batch *gsbl.Batch
		rej   *admit.Rejection
	)
	email := sub.UserEmail
	err := p.svc.EnqueueBatchOrigin(sub, "portal", func(b *gsbl.Batch, err error) {
		if b != nil {
			p.owners[b.ID] = email
			batch = b
			return
		}
		var r *admit.Rejection
		if errors.As(err, &r) {
			rej = r
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return batch, rej, nil
}

// ClientWriteErrors reports how many response writes failed because
// the client went away.
func (p *Portal) ClientWriteErrors() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clientErrs
}

func (p *Portal) noteClientErr() {
	p.mu.Lock()
	p.clientErrs++
	p.mu.Unlock()
}

// writeBody writes a response body, recording client disconnects.
func (p *Portal) writeBody(w io.Writer, data []byte) {
	if _, err := w.Write(data); err != nil {
		p.noteClientErr()
	}
}

// writeJSON sets the JSON content type and encodes v to w, recording
// failed writes.
func (p *Portal) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		p.noteClientErr()
	}
}

// SetWorkflows installs the workflow engine behind POST
// /workflow/create and GET /workflow/{id}. The engine runs on the
// simulation goroutine, so handlers access it under the portal mutex
// exactly as they do the service layer.
func (p *Portal) SetWorkflows(e *dag.Engine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wfs = e
}

// SetStatusSource installs a provider for the /grid/status endpoint —
// typically the grid's MDS snapshot plus scheduler statistics.
func (p *Portal) SetStatusSource(fn func() any) { p.statusFn = fn }

// SetObs installs the observability hub behind GET /metrics (text
// exposition) and GET /trace/{batch} (span tree as JSON). The hub's
// registry and tracer have their own synchronization, so these
// handlers do not take the portal mutex and never block the Pump.
func (p *Portal) SetObs(o *obs.Obs) { p.obsHub = o }

// New builds a portal for the GARLI application.
func New(eng *sim.Engine, svc *gsbl.Service) *Portal {
	return &Portal{
		eng:    eng,
		svc:    svc,
		app:    gsbl.GarliApp(),
		users:  make(map[string]string),
		owners: make(map[string]string),
	}
}

// Handler returns the portal's HTTP mux.
func (p *Portal) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", p.handleIndex)
	mux.HandleFunc("/garli/create", p.handleCreate)
	mux.HandleFunc("/garli/app.xml", p.handleAppXML)
	mux.HandleFunc("/register", p.handleRegister)
	mux.HandleFunc("/myjobs", p.handleMyJobs)
	mux.HandleFunc("/batch/", p.handleBatch)
	mux.HandleFunc("/workflow/create", p.handleWorkflowCreate)
	mux.HandleFunc("/workflow/", p.handleWorkflowStatus)
	mux.HandleFunc("/grid/status", p.handleGridStatus)
	mux.HandleFunc("/metrics", p.handleMetrics)
	mux.HandleFunc("/trace/", p.handleTrace)
	return mux
}

// handleMetrics serves the metrics registry in text exposition format.
func (p *Portal) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if p.obsHub == nil {
		http.Error(w, "observability not configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.writeBody(w, []byte(p.obsHub.Exposition()))
}

// handleTrace serves /trace/{batch}: the batch's span tree as JSON.
func (p *Portal) handleTrace(w http.ResponseWriter, r *http.Request) {
	if p.obsHub == nil || p.obsHub.Tracer == nil {
		http.Error(w, "observability not configured", http.StatusNotFound)
		return
	}
	batch := strings.TrimPrefix(r.URL.Path, "/trace/")
	if batch == "" {
		http.Error(w, "batch ID required", http.StatusBadRequest)
		return
	}
	spans, ok := p.obsHub.Tracer.Batch(batch)
	if !ok {
		http.NotFound(w, r)
		return
	}
	p.writeJSON(w, map[string]any{"batch": batch, "spans": spans})
}

// Pump advances the simulated grid by d — the bridge between HTTP
// wall-clock and virtual time (cmd/lattice drives this from a ticker;
// tests call it directly).
func (p *Portal) Pump(d sim.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.eng.RunUntil(p.eng.Now().Add(d))
}

func (p *Portal) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	p.writeBody(w, []byte(fmt.Sprintf(`<html><body><h1>The Lattice Project</h1>
<p>Available grid services:</p>
<ul><li><a href="/garli/create">%s</a></li></ul>
</body></html>`, p.app.Title)))
}

func (p *Portal) handleAppXML(w http.ResponseWriter, r *http.Request) {
	data, err := p.app.XML()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	p.writeBody(w, data)
}

// handleRegister creates a registered user and returns an API token.
func (p *Portal) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	email := r.FormValue("email")
	if email == "" || !strings.Contains(email, "@") {
		http.Error(w, "valid email required", http.StatusBadRequest)
		return
	}
	p.mu.Lock()
	p.nextTok++
	token := fmt.Sprintf("tok-%06d", p.nextTok)
	p.users[token] = email
	if p.durable != nil {
		p.durable.User(p.eng.Now(), token, email)
	}
	p.mu.Unlock()
	p.writeJSON(w, map[string]string{"token": token, "email": email})
}

// identify resolves the requester's email: a registered token takes
// precedence; otherwise guest mode requires an email form value.
func (p *Portal) identify(r *http.Request) (string, bool) {
	if tok := r.Header.Get("X-Lattice-Token"); tok != "" {
		p.mu.Lock()
		email, ok := p.users[tok]
		p.mu.Unlock()
		return email, ok
	}
	email := r.FormValue("email")
	if strings.Contains(email, "@") {
		return email, true
	}
	return "", false
}

func (p *Portal) handleCreate(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		page, err := RenderForm(p.app)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		p.writeBody(w, []byte(page))
	case http.MethodPost:
		p.createJob(w, r)
	default:
		http.Error(w, "unsupported method", http.StatusMethodNotAllowed)
	}
}

// createJob parses the form, validates the upload and parameters, and
// submits the batch.
func (p *Portal) createJob(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseMultipartForm(32 << 20); err != nil {
		http.Error(w, "bad form: "+err.Error(), http.StatusBadRequest)
		return
	}
	email, ok := p.identify(r)
	if !ok {
		http.Error(w, "guest submissions require an email address", http.StatusBadRequest)
		return
	}
	spec, replicates, bootstrap, err := p.parseSpec(r)
	if err != nil {
		http.Error(w, "validation failed: "+err.Error(), http.StatusBadRequest)
		return
	}
	sub := workload.Submission{
		Spec:       *spec,
		Replicates: replicates,
		Bootstrap:  bootstrap,
		UserEmail:  email,
	}
	if p.svc.AdmitActive() {
		// The admission controller fronts the door: a refusal becomes
		// HTTP 429 with the controller's deterministic Retry-After hint,
		// and an admitted submission may still be queued (202) rather
		// than expanded before the response is written.
		batch, rej, err := p.EnqueueOwned(sub)
		if err != nil {
			http.Error(w, "validation failed: "+err.Error(), http.StatusBadRequest)
			return
		}
		if rej != nil {
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(rej.RetryAfter.Seconds()))))
			http.Error(w, rej.Error(), http.StatusTooManyRequests)
			return
		}
		if batch == nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			if err := json.NewEncoder(w).Encode(map[string]any{
				"status":     "queued",
				"replicates": replicates,
			}); err != nil {
				p.noteClientErr()
			}
			return
		}
		p.writeJSON(w, map[string]any{
			"batch":      batch.ID,
			"jobs":       len(batch.Jobs),
			"replicates": replicates,
		})
		return
	}
	batch, err := p.Resubmit(sub)
	if err != nil {
		http.Error(w, "validation failed: "+err.Error(), http.StatusBadRequest)
		return
	}
	p.writeJSON(w, map[string]any{
		"batch":      batch.ID,
		"jobs":       len(batch.Jobs),
		"replicates": replicates,
	})
}

// parseSpec converts form fields (and the uploaded data file) into a
// job specification, applying the GARLI validation mode before
// anything is scheduled.
func (p *Portal) parseSpec(r *http.Request) (*workload.JobSpec, int, bool, error) {
	spec := &workload.JobSpec{Seed: 1}
	dt, err := phylo.ParseDataType(formDefault(r, "datatype", "nucleotide"))
	if err != nil {
		return nil, 0, false, err
	}
	spec.DataType = dt
	spec.SubstModel = formDefault(r, "ratematrix", "GTR")
	het, err := phylo.ParseRateHetKind(formDefault(r, "ratehetmodel", "gamma"))
	if err != nil {
		return nil, 0, false, err
	}
	spec.RateHet = het
	if spec.RateHet != phylo.RateHomogeneous {
		spec.GammaShape = 0.5
		if spec.RateHet == phylo.RateGammaInv {
			spec.PropInvariant = 0.2
		}
	}
	intField := func(name string, def int) (int, error) {
		v := formDefault(r, name, strconv.Itoa(def))
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("parameter %s: %w", name, err)
		}
		return n, nil
	}
	if spec.NumRateCats, err = intField("numratecats", 4); err != nil {
		return nil, 0, false, err
	}
	if spec.SearchReps, err = intField("searchreps", 1); err != nil {
		return nil, 0, false, err
	}
	if spec.AttachmentsPerTaxon, err = intField("attachmentspertaxon", 25); err != nil {
		return nil, 0, false, err
	}
	st, err := phylo.ParseStartingTreeKind(formDefault(r, "streefname", "stepwise"))
	if err != nil {
		return nil, 0, false, err
	}
	spec.StartingTree = st
	replicates, err := intField("replicates", 1)
	if err != nil {
		return nil, 0, false, err
	}
	bootstrap := formDefault(r, "bootstrap", "no") == "yes"

	// The uploaded alignment defines the data dimensions; GARLI's
	// validation mode checks it before scheduling.
	file, _, err := r.FormFile("datafile")
	if err != nil {
		return nil, 0, false, fmt.Errorf("sequence data file required")
	}
	defer file.Close()
	al, err := parseUpload(file, spec.DataType)
	if err != nil {
		return nil, 0, false, err
	}
	if al.Type != spec.DataType {
		// A NEXUS FORMAT block overrides the form's datatype choice.
		spec.DataType = al.Type
	}
	if err := al.Validate(); err != nil {
		return nil, 0, false, err
	}
	spec.NumTaxa = al.NumTaxa()
	spec.SeqLength = al.Length()
	if err := spec.Validate(); err != nil {
		return nil, 0, false, err
	}
	return spec, replicates, bootstrap, nil
}

// parseUpload sniffs the uploaded alignment format: NEXUS documents
// declare themselves with #NEXUS, everything else is treated as FASTA.
func parseUpload(r io.Reader, dt phylo.DataType) (*phylo.Alignment, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(6)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if strings.EqualFold(string(head), "#NEXUS") {
		nf, err := phylo.ParseNEXUS(br)
		if err != nil {
			return nil, err
		}
		if nf.Alignment == nil {
			return nil, fmt.Errorf("NEXUS file has no data matrix")
		}
		return nf.Alignment, nil
	}
	return phylo.ParseFASTA(br, dt)
}

func formDefault(r *http.Request, name, def string) string {
	if v := r.FormValue(name); v != "" {
		return v
	}
	return def
}

// handleBatch serves /batch/{id}[/download] with per-user access
// control for registered users.
func (p *Portal) handleBatch(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/batch/")
	parts := strings.SplitN(rest, "/", 2)
	id := parts[0]
	p.mu.Lock()
	owner, known := p.owners[id]
	p.mu.Unlock()
	if !known {
		http.NotFound(w, r)
		return
	}
	// Registered users may only see their own batches; guests may
	// query any batch ID they hold (capability-style).
	if tok := r.Header.Get("X-Lattice-Token"); tok != "" {
		p.mu.Lock()
		email, ok := p.users[tok]
		p.mu.Unlock()
		if !ok || email != owner {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
	}
	if len(parts) == 2 && parts[1] == "download" {
		p.mu.Lock()
		data, err := p.svc.ResultsZip(id)
		dir := p.artifactDir
		p.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if dir != "" {
			// Publish the archive atomically: readers (and recovery)
			// only ever see a complete zip at this path.
			if err := wal.WriteFileAtomic(filepath.Join(dir, id+".zip"), data); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "application/zip")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.zip", id))
		p.writeBody(w, data)
		return
	}
	p.mu.Lock()
	st, err := p.svc.Status(id)
	p.mu.Unlock()
	if err != nil {
		http.NotFound(w, r)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		p.writeJSON(w, st)
		return
	}
	page, err := renderStatus(st)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	p.writeBody(w, []byte(page))
}

// handleWorkflowCreate accepts a JSON workload.Workflow and submits
// it to the workflow engine. A registered token's email overrides the
// body's userEmail; guests must supply one in the body.
func (p *Portal) handleWorkflowCreate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var wf workload.Workflow
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&wf); err != nil {
		http.Error(w, "bad workflow JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if tok := r.Header.Get("X-Lattice-Token"); tok != "" {
		p.mu.Lock()
		email, ok := p.users[tok]
		p.mu.Unlock()
		if !ok {
			http.Error(w, "unknown token", http.StatusUnauthorized)
			return
		}
		wf.UserEmail = email
	} else if !strings.Contains(wf.UserEmail, "@") {
		http.Error(w, "guest workflows require a userEmail", http.StatusBadRequest)
		return
	}
	p.mu.Lock()
	if p.wfs == nil {
		p.mu.Unlock()
		http.Error(w, "workflow engine not configured", http.StatusNotFound)
		return
	}
	run, err := p.wfs.Submit(wf)
	if err != nil {
		p.mu.Unlock()
		http.Error(w, "validation failed: "+err.Error(), http.StatusBadRequest)
		return
	}
	p.owners[run.ID] = wf.UserEmail
	p.mu.Unlock()
	p.writeJSON(w, map[string]any{
		"workflow": run.ID,
		"stages":   len(run.Order),
	})
}

// handleWorkflowStatus serves /workflow/{id}: per-stage state in
// topological order, with the same per-user access control as
// batches.
func (p *Portal) handleWorkflowStatus(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/workflow/")
	if id == "" || id == "create" {
		http.Error(w, "workflow run ID required", http.StatusBadRequest)
		return
	}
	p.mu.Lock()
	owner, known := p.owners[id]
	p.mu.Unlock()
	if !known {
		http.NotFound(w, r)
		return
	}
	if tok := r.Header.Get("X-Lattice-Token"); tok != "" {
		p.mu.Lock()
		email, ok := p.users[tok]
		p.mu.Unlock()
		if !ok || email != owner {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
	}
	p.mu.Lock()
	if p.wfs == nil {
		p.mu.Unlock()
		http.NotFound(w, r)
		return
	}
	st, err := p.wfs.Status(id)
	p.mu.Unlock()
	if err != nil {
		http.NotFound(w, r)
		return
	}
	p.writeJSON(w, st)
}

// handleGridStatus reports the federation's current state. The
// status callback reaches into core and is invoked outside p.mu: a
// callback that re-entered the portal would otherwise deadlock.
func (p *Portal) handleGridStatus(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	fn := p.statusFn
	p.mu.Unlock()
	if fn == nil {
		http.Error(w, "status source not configured", http.StatusNotFound)
		return
	}
	st := fn()
	p.writeJSON(w, st)
}

// handleMyJobs lists a registered user's batches.
func (p *Portal) handleMyJobs(w http.ResponseWriter, r *http.Request) {
	tok := r.Header.Get("X-Lattice-Token")
	p.mu.Lock()
	email, ok := p.users[tok]
	p.mu.Unlock()
	if !ok {
		http.Error(w, "registration token required", http.StatusUnauthorized)
		return
	}
	type row struct {
		Batch  string `json:"batch"`
		Status gsbl.BatchStatus
	}
	var rows []row
	p.mu.Lock()
	for id, owner := range p.owners {
		if owner != email {
			continue
		}
		st, err := p.svc.Status(id)
		if err == nil {
			rows = append(rows, row{Batch: id, Status: st})
		}
	}
	p.mu.Unlock()
	p.writeJSON(w, rows)
}
