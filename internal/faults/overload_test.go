package faults

import (
	"strings"
	"testing"

	"lattice/internal/grid/mds"
	"lattice/internal/sim"
)

// TestDemandSpikeDrivesHook checks the workload-side fault: the hook
// receives the factor at the window start and 1 at the end, the spike
// counts as an injection, and a hook attached after Apply still fires.
func TestDemandSpikeDrivesHook(t *testing.T) {
	h := newHarness(t, 1, sim.Hour, Schedule{Events: []Event{
		{At: sim.Time(10 * sim.Minute), Kind: KindDemandSpike, Resource: "portal-demand",
			Duration: 20 * sim.Minute, Factor: 10},
	}})
	var calls []float64
	// Attach AFTER Apply — demand hooks live on the workload side.
	h.in.AttachDemand("portal-demand", func(f float64) { calls = append(calls, f) })
	h.eng.RunUntil(sim.Time(sim.Hour))
	if len(calls) != 2 || calls[0] != 10 || calls[1] != 1 {
		t.Fatalf("demand hook calls = %v, want [10 1]", calls)
	}
	if h.in.Injected()[KindDemandSpike] != 1 {
		t.Fatalf("injected = %v, want one demand-spike", h.in.Injected())
	}
}

// TestDemandSpikeWithoutHookStillJournals checks a spike with no
// attached hook is not an error — it counts and the run proceeds.
func TestDemandSpikeWithoutHookStillJournals(t *testing.T) {
	h := newHarness(t, 1, sim.Hour, Schedule{Events: []Event{
		{At: sim.Time(sim.Minute), Kind: KindDemandSpike, Resource: "nobody",
			Duration: sim.Minute, Factor: 2},
	}})
	h.eng.RunUntil(sim.Time(sim.Hour))
	if h.in.Injected()[KindDemandSpike] != 1 {
		t.Fatalf("injected = %v", h.in.Injected())
	}
}

// TestCapacityCollapseScalesAndRefuses checks the brownout: published
// capacity shrinks by the factor during the window, submissions beyond
// the collapsed capacity are refused, and both recover at the end.
func TestCapacityCollapseScalesAndRefuses(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng, sim.NewRNG(1))
	fake := newFakeLRM(eng, "res-a", 10*sim.Hour) // jobs effectively never finish
	res := in.Wrap(fake)
	err := in.Apply(Schedule{Events: []Event{
		{At: sim.Time(10 * sim.Minute), Kind: KindCapacityCollapse, Resource: "res-a",
			Duration: 10 * sim.Minute, Factor: 0.5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := mds.NewIndex(eng, 5*sim.Minute)
	if _, err := mds.StartProvider(eng, in.Sink(idx), fake, sim.Minute); err != nil {
		t.Fatal(err)
	}
	outcomes := make([]*outcome, 4)
	eng.Schedule(12*sim.Minute, func() {
		// Collapsed capacity: 0.5 × 4 CPUs = 2 slots. The third and
		// fourth submissions must be refused.
		var refused int
		for i := range outcomes {
			outcomes[i] = &outcome{}
			if err := res.Submit(job(string(rune('a'+i)), outcomes[i])); err != nil {
				if !strings.Contains(err.Error(), "capacity collapsed") {
					t.Errorf("unexpected refusal: %v", err)
				}
				refused++
			}
		}
		if refused != 2 {
			t.Errorf("refused %d submissions, want 2", refused)
		}
	})
	eng.Schedule(15*sim.Minute, func() {
		e, ok := idx.Lookup("res-a")
		if !ok || e.Info.TotalCPUs != 2 {
			t.Errorf("collapsed entry: %+v ok=%v", e, ok)
		}
	})
	eng.Schedule(25*sim.Minute, func() {
		e, ok := idx.Lookup("res-a")
		if !ok || e.Info.TotalCPUs != 4 {
			t.Errorf("post-collapse entry: %+v ok=%v", e, ok)
		}
		if err := res.Submit(job("e", &outcome{})); err != nil {
			t.Errorf("post-collapse submit refused: %v", err)
		}
	})
	eng.RunUntil(sim.Time(sim.Hour))
	if got := in.Injected()[KindCapacityCollapse]; got != 3 {
		t.Errorf("injected capacity-collapse count = %d, want 3 (window + 2 refusals)", got)
	}
}

// TestOverloadEventValidation pins the new kinds' Validate rules.
func TestOverloadEventValidation(t *testing.T) {
	bad := []Schedule{
		{Events: []Event{{At: 0, Kind: KindDemandSpike, Resource: "r", Duration: sim.Minute, Factor: 1}}},
		{Events: []Event{{At: 0, Kind: KindDemandSpike, Resource: "r", Factor: 2}}},
		{Events: []Event{{At: 0, Kind: KindCapacityCollapse, Resource: "r", Duration: sim.Minute, Factor: 1}}},
		{Events: []Event{{At: 0, Kind: KindCapacityCollapse, Resource: "r", Duration: sim.Minute, Factor: 0}}},
		{Events: []Event{{At: 0, Kind: KindCapacityCollapse, Resource: "r", Factor: 0.5}}},
	}
	for i, sch := range bad {
		if err := sch.Validate(); err == nil {
			t.Errorf("schedule %d validated, want error", i)
		}
	}
	ok := Schedule{Events: []Event{
		{At: 0, Kind: KindDemandSpike, Resource: "r", Duration: sim.Minute, Factor: 10},
		{At: 0, Kind: KindCapacityCollapse, Resource: "res-a", Duration: sim.Minute, Factor: 0.25},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	// Apply requires capacity-collapse targets to be wrapped, but not
	// demand-spike hooks (they attach later, workload-side).
	eng := sim.NewEngine()
	in := NewInjector(eng, sim.NewRNG(1))
	if err := in.Apply(ok); err == nil {
		t.Error("Apply accepted capacity-collapse on an unwrapped resource")
	}
	in2 := NewInjector(eng, sim.NewRNG(1))
	in2.Wrap(newFakeLRM(eng, "res-a", sim.Hour))
	if err := in2.Apply(ok); err != nil {
		t.Errorf("Apply rejected a valid overload schedule: %v", err)
	}
}
