// Package faults is a deterministic, sim-clock-driven fault injector
// for the grid. A seeded Schedule — scripted events, probabilistic
// windows, and exponential up/down flapping — is applied through an
// Injector that wraps the seams the production stack already exposes:
// every lrm.LRM passes through a per-resource wrapper, MDS
// publications pass through a dropping/staling mds.Sink, and the BOINC
// server is reached through the narrow Churner hook. Nothing in the
// production path imports this package or changes behaviour when no
// injector is wired; with one wired, the same seed always produces the
// same fault sequence (per-purpose RNG streams), so a hostile run is
// exactly as reproducible as a calm one.
//
// The fault vocabulary matches the failure modes the paper's
// resilience machinery exists for: whole-resource outages and flaps
// (stability ranking, MDS TTL expiry), gatekeeper submit failures
// (retry with backoff), MDS publication drops and staleness bursts
// (death detection), BOINC host-churn spikes (deadlines + reissue),
// and slow or lost results (requeue, quorum).
package faults

import (
	"fmt"

	"lattice/internal/sim"
)

// Kind names one fault mode the injector can produce.
type Kind string

const (
	// KindOutage takes a whole resource down: in-flight jobs fail,
	// submits are refused, and MDS publications stop until recovery.
	KindOutage Kind = "outage"
	// KindSubmitFail makes the resource's gatekeeper refuse each
	// submit with probability P during the window.
	KindSubmitFail Kind = "submit-fail"
	// KindMDSDrop silently discards the resource's MDS publications
	// for the window; the resource keeps running but its index entry
	// ages out, so the scheduler must treat it as dead.
	KindMDSDrop Kind = "mds-drop"
	// KindMDSStale freezes the resource's published Info at its last
	// value for the window — the index stays fresh but lies.
	KindMDSStale Kind = "mds-stale"
	// KindChurn detaches Hosts volunteer hosts from a BOINC project in
	// one burst, taking their queued work with them.
	KindChurn Kind = "churn"
	// KindSlowResult delays each completed result's delivery by Delay
	// with probability P during the window.
	KindSlowResult Kind = "slow-result"
	// KindLostResult converts each completed result into a failure
	// ("lost in transit") with probability P during the window.
	KindLostResult Kind = "lost-result"
	// KindCrash kills the coordinator process itself at a scheduled
	// time (Schedule.CrashAt). The injector stops the engine
	// mid-simulation; with durability enabled the run resumes via
	// core.Recover, without it everything since genesis is lost.
	KindCrash Kind = "crash"
	// KindDemandSpike is the workload-side fault: the grid is healthy
	// but the users stampede. Event.Resource names a demand hook
	// (AttachDemand) rather than a wrapped resource; at the window
	// start the hook is called with Factor (arrival rate multiplier),
	// at the end with 1. The spike journals whether or not a hook is
	// attached, so workload generators can attach after Apply.
	KindDemandSpike Kind = "demand-spike"
	// KindCapacityCollapse is a brownout rather than a blackout: for
	// the window the resource's published CPU capacity is scaled by
	// Factor (in (0,1)) and its gatekeeper refuses submissions beyond
	// the collapsed capacity. In-flight work keeps running.
	KindCapacityCollapse Kind = "capacity-collapse"
)

// Event is one scripted fault. At is when it begins; window faults
// last Duration, instantaneous ones (churn) ignore it.
type Event struct {
	At       sim.Time
	Kind     Kind
	Resource string
	// Duration is the window length for outage, submit-fail, mds-drop,
	// mds-stale, slow-result and lost-result events.
	Duration sim.Duration
	// P is the per-instance probability for submit-fail, slow-result
	// and lost-result windows.
	P float64
	// Delay is the added delivery latency for slow-result windows.
	Delay sim.Duration
	// Hosts is the burst size for churn events.
	Hosts int
	// Factor scales demand-spike arrival rates (> 1) and
	// capacity-collapse published capacity (in (0,1)).
	Factor float64
}

// Flap generates a probabilistic outage process on one resource:
// exponentially distributed up periods (mean MeanUp) alternating with
// exponentially distributed outages (mean MeanDown), driven by a
// per-flap RNG stream. New outages start only in [Start, Until);
// Until <= 0 means the resource flaps forever.
type Flap struct {
	Resource string
	MeanUp   sim.Duration
	MeanDown sim.Duration
	Start    sim.Time
	Until    sim.Time
}

// Schedule is the injector's input: a script plus flapping processes.
// Windows of the same kind on the same resource must not overlap, and
// each resource should have at most one outage source (scripted or
// flap) — overlapping recoveries would end each other early.
type Schedule struct {
	Events []Event
	Flaps  []Flap
	// CrashAt lists virtual times at which the coordinator process is
	// killed (see KindCrash).
	CrashAt []sim.Time
}

// Validate checks the schedule's internal consistency.
func (s *Schedule) Validate() error {
	for i, ev := range s.Events {
		if ev.Resource == "" {
			return fmt.Errorf("faults: event %d has no resource", i)
		}
		if ev.At < 0 {
			return fmt.Errorf("faults: event %d (%s on %s) starts before t=0", i, ev.Kind, ev.Resource)
		}
		switch ev.Kind {
		case KindOutage, KindMDSDrop, KindMDSStale:
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (%s on %s) needs a positive Duration", i, ev.Kind, ev.Resource)
			}
		case KindSubmitFail, KindLostResult:
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (%s on %s) needs a positive Duration", i, ev.Kind, ev.Resource)
			}
			if ev.P <= 0 || ev.P > 1 {
				return fmt.Errorf("faults: event %d (%s on %s) needs P in (0,1], got %g", i, ev.Kind, ev.Resource, ev.P)
			}
		case KindSlowResult:
			if ev.Duration <= 0 || ev.Delay <= 0 {
				return fmt.Errorf("faults: event %d (slow-result on %s) needs positive Duration and Delay", i, ev.Resource)
			}
			if ev.P <= 0 || ev.P > 1 {
				return fmt.Errorf("faults: event %d (slow-result on %s) needs P in (0,1], got %g", i, ev.Resource, ev.P)
			}
		case KindChurn:
			if ev.Hosts <= 0 {
				return fmt.Errorf("faults: event %d (churn on %s) needs a positive host count", i, ev.Resource)
			}
		case KindDemandSpike:
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (demand-spike on %s) needs a positive Duration", i, ev.Resource)
			}
			if ev.Factor <= 1 {
				return fmt.Errorf("faults: event %d (demand-spike on %s) needs Factor > 1, got %g", i, ev.Resource, ev.Factor)
			}
		case KindCapacityCollapse:
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (capacity-collapse on %s) needs a positive Duration", i, ev.Resource)
			}
			if ev.Factor <= 0 || ev.Factor >= 1 {
				return fmt.Errorf("faults: event %d (capacity-collapse on %s) needs Factor in (0,1), got %g", i, ev.Resource, ev.Factor)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	for i, at := range s.CrashAt {
		if at < 0 {
			return fmt.Errorf("faults: crash %d scheduled before t=0", i)
		}
	}
	for i, f := range s.Flaps {
		if f.Resource == "" {
			return fmt.Errorf("faults: flap %d has no resource", i)
		}
		if f.MeanUp <= 0 || f.MeanDown <= 0 {
			return fmt.Errorf("faults: flap %d (%s) needs positive MeanUp and MeanDown", i, f.Resource)
		}
		if f.Until > 0 && f.Until <= f.Start {
			return fmt.Errorf("faults: flap %d (%s) ends before it starts", i, f.Resource)
		}
	}
	return nil
}
