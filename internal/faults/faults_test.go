package faults

import (
	"strings"
	"testing"

	"lattice/internal/grid/mds"
	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// fakeLRM runs every accepted job for runFor, then completes it. It
// records submissions and cancellations so tests can see exactly what
// reached the inner resource.
type fakeLRM struct {
	eng       *sim.Engine
	name      string
	runFor    sim.Duration
	jobs      map[string]*lrm.Job
	submitted int
	cancelled []string
}

func newFakeLRM(eng *sim.Engine, name string, runFor sim.Duration) *fakeLRM {
	return &fakeLRM{eng: eng, name: name, runFor: runFor, jobs: make(map[string]*lrm.Job)}
}

func (f *fakeLRM) Name() string     { return f.name }
func (f *fakeLRM) Stats() lrm.Stats { return lrm.Stats{} }
func (f *fakeLRM) Info() lrm.Info {
	return lrm.Info{Name: f.name, Kind: "pbs", TotalCPUs: 4, FreeCPUs: 4 - len(f.jobs), Stable: true}
}

func (f *fakeLRM) Submit(j *lrm.Job) error {
	f.submitted++
	f.jobs[j.ID] = j
	f.eng.Schedule(f.runFor, func() {
		if _, ok := f.jobs[j.ID]; !ok {
			return // cancelled meanwhile
		}
		delete(f.jobs, j.ID)
		if j.OnComplete != nil {
			j.OnComplete(f.eng.Now())
		}
	})
	return nil
}

func (f *fakeLRM) Cancel(id string) bool {
	if _, ok := f.jobs[id]; !ok {
		return false
	}
	delete(f.jobs, id)
	f.cancelled = append(f.cancelled, id)
	return true
}

// harness wires one fake resource through an injector.
type harness struct {
	eng  *sim.Engine
	in   *Injector
	fake *fakeLRM
	res  lrm.LRM
}

func newHarness(t *testing.T, seed int64, runFor sim.Duration, sch Schedule) *harness {
	t.Helper()
	eng := sim.NewEngine()
	in := NewInjector(eng, sim.NewRNG(seed))
	fake := newFakeLRM(eng, "res-a", runFor)
	res := in.Wrap(fake)
	if err := in.Apply(sch); err != nil {
		t.Fatal(err)
	}
	return &harness{eng: eng, in: in, fake: fake, res: res}
}

// job builds a minimal lrm.Job with outcome recording.
type outcome struct {
	completedAt sim.Time
	failReason  string
	done        bool
}

func job(id string, o *outcome) *lrm.Job {
	return &lrm.Job{
		ID: id, Work: 1,
		OnComplete: func(at sim.Time) { o.done = true; o.completedAt = at },
		OnFail:     func(_ sim.Time, reason string) { o.done = true; o.failReason = reason },
	}
}

func TestPassThroughWhenIdle(t *testing.T) {
	h := newHarness(t, 1, sim.Hour, Schedule{})
	var o outcome
	if err := h.res.Submit(job("j1", &o)); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Time(2 * sim.Hour))
	if !o.done || o.failReason != "" {
		t.Fatalf("job did not complete cleanly: %+v", o)
	}
	if o.completedAt != sim.Time(sim.Hour) {
		t.Errorf("completion at %v, want 1h", o.completedAt)
	}
	if n := len(h.in.Injected()); n != 0 {
		t.Errorf("idle injector reported %d fault kinds", n)
	}
	if h.res.Name() != "res-a" || h.res.Info().Name != "res-a" {
		t.Error("wrapper does not pass through identity")
	}
}

func TestOutageKillsInFlightAndRefusesSubmits(t *testing.T) {
	sch := Schedule{Events: []Event{{
		At: sim.Time(sim.Hour), Kind: KindOutage, Resource: "res-a", Duration: sim.Hour,
	}}}
	h := newHarness(t, 1, 3*sim.Hour, sch)
	var victim outcome
	if err := h.res.Submit(job("victim", &victim)); err != nil {
		t.Fatal(err)
	}
	h.eng.Schedule(90*sim.Minute, func() { // mid-outage
		if !h.in.Down("res-a") {
			t.Error("resource should be down at t=90min")
		}
		var o outcome
		if err := h.res.Submit(job("refused", &o)); err == nil {
			t.Error("submit during outage accepted")
		} else if !strings.Contains(err.Error(), "faults:") {
			t.Errorf("outage refusal not attributed to faults: %v", err)
		}
	})
	var late outcome
	h.eng.Schedule(150*sim.Minute, func() { // after recovery
		if h.in.Down("res-a") {
			t.Error("resource should be back up at t=150min")
		}
		if err := h.res.Submit(job("late", &late)); err != nil {
			t.Errorf("submit after recovery refused: %v", err)
		}
	})
	h.eng.RunUntil(sim.Time(12 * sim.Hour))
	if victim.failReason != "faults: resource outage" {
		t.Errorf("in-flight job outcome: %+v", victim)
	}
	if len(h.fake.cancelled) != 1 || h.fake.cancelled[0] != "victim" {
		t.Errorf("inner cancellations: %v", h.fake.cancelled)
	}
	if !late.done || late.failReason != "" {
		t.Errorf("post-recovery job outcome: %+v", late)
	}
	inj := h.in.Injected()
	if inj[KindOutage] != 1 || inj[KindSubmitFail] != 1 {
		t.Errorf("Injected() = %v", inj)
	}
}

func TestSubmitFailWindow(t *testing.T) {
	sch := Schedule{Events: []Event{{
		At: 0, Kind: KindSubmitFail, Resource: "res-a", Duration: sim.Hour, P: 1,
	}}}
	h := newHarness(t, 1, sim.Minute, sch)
	h.eng.Schedule(sim.Minute, func() {
		var o outcome
		if err := h.res.Submit(job("j1", &o)); err == nil {
			t.Error("p=1 gatekeeper accepted a submission")
		}
	})
	var after outcome
	h.eng.Schedule(2*sim.Hour, func() { // window closed
		if err := h.res.Submit(job("j2", &after)); err != nil {
			t.Errorf("submit after window refused: %v", err)
		}
	})
	h.eng.RunUntil(sim.Time(3 * sim.Hour))
	if !after.done || after.failReason != "" {
		t.Errorf("post-window job outcome: %+v", after)
	}
	if h.fake.submitted != 1 {
		t.Errorf("inner saw %d submissions, want 1", h.fake.submitted)
	}
	if h.in.Injected()[KindSubmitFail] != 1 {
		t.Errorf("Injected() = %v", h.in.Injected())
	}
}

func TestLostResultFailsTheJob(t *testing.T) {
	sch := Schedule{Events: []Event{{
		At: 0, Kind: KindLostResult, Resource: "res-a", Duration: sim.Day, P: 1,
	}}}
	h := newHarness(t, 1, sim.Hour, sch)
	var o outcome
	if err := h.res.Submit(job("j1", &o)); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Time(2 * sim.Hour))
	if o.failReason != "faults: result lost in transit" {
		t.Errorf("outcome: %+v", o)
	}
	if h.in.Injected()[KindLostResult] != 1 {
		t.Errorf("Injected() = %v", h.in.Injected())
	}
}

func TestSlowResultDelaysCompletion(t *testing.T) {
	sch := Schedule{Events: []Event{{
		At: 0, Kind: KindSlowResult, Resource: "res-a", Duration: sim.Day, P: 1, Delay: 2 * sim.Hour,
	}}}
	h := newHarness(t, 1, sim.Hour, sch)
	var o outcome
	if err := h.res.Submit(job("j1", &o)); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Time(sim.Day))
	if !o.done || o.failReason != "" {
		t.Fatalf("outcome: %+v", o)
	}
	if o.completedAt != sim.Time(3*sim.Hour) { // 1h run + 2h delay
		t.Errorf("completed at %v, want 3h", o.completedAt)
	}
	if h.in.Injected()[KindSlowResult] != 1 {
		t.Errorf("Injected() = %v", h.in.Injected())
	}
}

func TestSinkDropAndStale(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng, sim.NewRNG(1))
	fake := newFakeLRM(eng, "res-a", sim.Hour)
	in.Wrap(fake)
	err := in.Apply(Schedule{Events: []Event{
		{At: sim.Time(10 * sim.Minute), Kind: KindMDSStale, Resource: "res-a", Duration: 10 * sim.Minute},
		{At: sim.Time(30 * sim.Minute), Kind: KindMDSDrop, Resource: "res-a", Duration: 20 * sim.Minute},
	}})
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := mds.NewIndex(eng, 5*sim.Minute)
	if _, err := mds.StartProvider(eng, in.Sink(idx), fake, sim.Minute); err != nil {
		t.Fatal(err)
	}
	// A job submitted at t=5min changes FreeCPUs; during the stale
	// burst the index must keep showing the pre-burst value.
	eng.Schedule(12*sim.Minute, func() { fake.jobs["ghost"] = &lrm.Job{ID: "ghost"} })
	eng.Schedule(15*sim.Minute, func() {
		e, ok := idx.Lookup("res-a")
		if !ok {
			t.Fatal("entry missing during stale burst")
		}
		if e.Info.FreeCPUs != 4 {
			t.Errorf("stale burst leaked fresh FreeCPUs=%d", e.Info.FreeCPUs)
		}
	})
	eng.Schedule(25*sim.Minute, func() { // burst over: fresh info flows again
		e, ok := idx.Lookup("res-a")
		if !ok || e.Info.FreeCPUs != 3 {
			t.Errorf("post-burst entry: %+v ok=%v", e, ok)
		}
	})
	// During the drop window publications vanish and the entry ages out.
	eng.Schedule(45*sim.Minute, func() {
		if _, ok := idx.Lookup("res-a"); ok {
			t.Error("entry still fresh mid-drop; publications not dropped")
		}
	})
	eng.Schedule(55*sim.Minute, func() { // publications restored
		if _, ok := idx.Lookup("res-a"); !ok {
			t.Error("entry did not come back after the drop window")
		}
	})
	eng.RunUntil(sim.Time(sim.Hour))
	inj := in.Injected()
	if inj[KindMDSStale] != 1 || inj[KindMDSDrop] != 1 {
		t.Errorf("Injected() = %v", inj)
	}
}

func TestSinkForwardsUnknownResources(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng, sim.NewRNG(1))
	idx, _ := mds.NewIndex(eng, 5*sim.Minute)
	in.Sink(idx).Publish(lrm.Info{Name: "outsider", FreeCPUs: 2})
	if e, ok := idx.Lookup("outsider"); !ok || e.Info.FreeCPUs != 2 {
		t.Error("publication for unwrapped resource not forwarded")
	}
}

// fakeChurner records churn requests.
type fakeChurner struct{ asked, served int }

func (c *fakeChurner) Churn(n int) int { c.asked = n; c.served = n - 1; return c.served }

func TestChurnEvent(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng, sim.NewRNG(1))
	c := &fakeChurner{}
	in.AttachChurner("boinc-x", c)
	err := in.Apply(Schedule{Events: []Event{
		{At: sim.Time(sim.Hour), Kind: KindChurn, Resource: "boinc-x", Hosts: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(2 * sim.Hour))
	if c.asked != 10 || c.served != 9 {
		t.Errorf("churner saw asked=%d served=%d", c.asked, c.served)
	}
	if in.Injected()[KindChurn] != 1 {
		t.Errorf("Injected() = %v", in.Injected())
	}
}

func TestFlapDeterminism(t *testing.T) {
	trace := func(seed int64) []sim.Time {
		eng := sim.NewEngine()
		in := NewInjector(eng, sim.NewRNG(seed))
		in.Wrap(newFakeLRM(eng, "res-a", sim.Hour))
		err := in.Apply(Schedule{Flaps: []Flap{
			{Resource: "res-a", MeanUp: 4 * sim.Hour, MeanDown: 30 * sim.Minute, Until: sim.Time(5 * sim.Day)},
		}})
		if err != nil {
			t.Fatal(err)
		}
		var downAt []sim.Time
		for h := 1; h <= 5*24; h++ {
			at := sim.Time(sim.Duration(h) * sim.Hour)
			eng.ScheduleAt(at, func() {
				if in.Down("res-a") {
					downAt = append(downAt, at)
				}
			})
		}
		eng.RunUntil(sim.Time(6 * sim.Day))
		if in.Injected()[KindOutage] == 0 {
			t.Fatal("flap never took the resource down in 5 days")
		}
		return downAt
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("same-seed flap traces differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed flap traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if c := trace(43); len(c) == len(a) {
		// Different seeds may coincide in length, but the full traces
		// should not be identical; tolerate equality only if times differ.
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical flap traces")
		}
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name string
		sch  Schedule
	}{
		{"negative time", Schedule{Events: []Event{{At: -1, Kind: KindOutage, Resource: "r", Duration: sim.Hour}}}},
		{"no resource", Schedule{Events: []Event{{Kind: KindOutage, Duration: sim.Hour}}}},
		{"unknown kind", Schedule{Events: []Event{{Kind: Kind("weird"), Resource: "r"}}}},
		{"outage without duration", Schedule{Events: []Event{{Kind: KindOutage, Resource: "r"}}}},
		{"submit-fail p=0", Schedule{Events: []Event{{Kind: KindSubmitFail, Resource: "r", Duration: sim.Hour}}}},
		{"submit-fail p>1", Schedule{Events: []Event{{Kind: KindSubmitFail, Resource: "r", Duration: sim.Hour, P: 1.5}}}},
		{"slow without delay", Schedule{Events: []Event{{Kind: KindSlowResult, Resource: "r", Duration: sim.Hour, P: 0.5}}}},
		{"churn without hosts", Schedule{Events: []Event{{Kind: KindChurn, Resource: "r"}}}},
		{"flap without means", Schedule{Flaps: []Flap{{Resource: "r"}}}},
		{"flap horizon before start", Schedule{Flaps: []Flap{
			{Resource: "r", MeanUp: sim.Hour, MeanDown: sim.Hour, Start: sim.Time(sim.Day), Until: sim.Time(sim.Hour)},
		}}},
	}
	for _, c := range cases {
		if err := c.sch.Validate(); err == nil {
			t.Errorf("%s: Validate accepted it", c.name)
		}
	}
}

func TestApplyRejectsUnwiredTargets(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng, sim.NewRNG(1))
	if err := in.Apply(Schedule{Events: []Event{
		{Kind: KindOutage, Resource: "ghost", Duration: sim.Hour},
	}}); err == nil {
		t.Error("Apply accepted an event for an unwrapped resource")
	}
	if err := in.Apply(Schedule{Events: []Event{
		{Kind: KindChurn, Resource: "ghost", Hosts: 3},
	}}); err == nil {
		t.Error("Apply accepted churn with no churner attached")
	}
	if err := in.Apply(Schedule{Flaps: []Flap{
		{Resource: "ghost", MeanUp: sim.Hour, MeanDown: sim.Hour},
	}}); err == nil {
		t.Error("Apply accepted a flap for an unwrapped resource")
	}
}

func TestCrashStopsEngine(t *testing.T) {
	h := newHarness(t, 1, sim.Hour, Schedule{CrashAt: []sim.Time{sim.Time(30 * sim.Minute)}})
	var o outcome
	if err := h.res.Submit(job("j1", &o)); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Time(2 * sim.Hour))
	if !h.in.Crashed() {
		t.Fatal("Crashed() = false after a scheduled kill")
	}
	if h.eng.Now() != sim.Time(30*sim.Minute) {
		t.Errorf("engine stopped at %v, want the 30m kill", h.eng.Now())
	}
	if o.done {
		t.Error("job reached a terminal state past the kill")
	}
	if h.in.Injected()[KindCrash] != 1 {
		t.Errorf("injected = %v, want one crash", h.in.Injected())
	}
	// The event queue survives the stop: a resumed engine (recovery
	// re-arms crashStops on a fresh injector; here we just clear the
	// flag) finishes the in-flight job.
	h.eng.RunUntil(sim.Time(2 * sim.Hour))
	if !o.done || o.failReason != "" {
		t.Fatalf("job did not complete after resume: %+v", o)
	}
}

func TestCrashDisarmed(t *testing.T) {
	h := newHarness(t, 1, sim.Hour, Schedule{CrashAt: []sim.Time{sim.Time(30 * sim.Minute)}})
	h.in.SetCrashStops(false)
	var o outcome
	if err := h.res.Submit(job("j1", &o)); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(sim.Time(2 * sim.Hour))
	if h.in.Crashed() {
		t.Error("disarmed kill still reported Crashed()")
	}
	if !o.done || o.failReason != "" {
		t.Fatalf("job did not complete under a disarmed kill: %+v", o)
	}
	// The kill is still journaled — rebuilds and uninterrupted twins
	// must share identical journals.
	if h.in.Injected()[KindCrash] != 1 {
		t.Errorf("injected = %v, want the kill noted", h.in.Injected())
	}
}

func TestCrashValidate(t *testing.T) {
	sch := Schedule{CrashAt: []sim.Time{-1}}
	if err := sch.Validate(); err == nil {
		t.Error("Validate accepted a crash before t=0")
	}
}
