package faults

import (
	"fmt"

	"lattice/internal/grid/mds"
	"lattice/internal/lrm"
	"lattice/internal/obs"
	"lattice/internal/sim"
)

// Churner is the narrow hook into a BOINC project for host-churn
// bursts; boinc.Server satisfies it. Churn detaches up to n hosts and
// returns how many actually left.
type Churner interface {
	Churn(n int) int
}

// Injector applies a Schedule to the wrapped seams of one grid. It is
// single-goroutine like everything else on the engine: all state
// changes happen inside engine callbacks or during setup.
type Injector struct {
	eng      *sim.Engine
	rng      *sim.RNG
	obs      *obs.Obs
	targets  map[string]*target
	churners map[string]Churner
	demands  map[string]func(factor float64)
	stats    map[Kind]int
	// crashStops controls whether an armed crash actually stops the
	// engine. Recovery re-execution disables it: the crash must still
	// journal and count (it did originally), but the rebuild needs to
	// run straight through it.
	crashStops bool
	crashed    bool
}

// NewInjector creates an injector on the engine's clock. rng seeds the
// probabilistic fault streams; every wrapped resource derives its own
// child streams from it, so wrapping order (which core fixes by config
// order) pins the whole fault sequence.
func NewInjector(eng *sim.Engine, rng *sim.RNG) *Injector {
	return &Injector{
		eng:        eng,
		rng:        rng,
		targets:    make(map[string]*target),
		churners:   make(map[string]Churner),
		demands:    make(map[string]func(factor float64)),
		stats:      make(map[Kind]int),
		crashStops: true,
	}
}

// SetCrashStops toggles whether armed crashes halt the engine (they
// do by default). The journal event and injection count fire either
// way, so a recovery re-execution reproduces them bit-identically.
func (in *Injector) SetCrashStops(on bool) { in.crashStops = on }

// Crashed reports whether a scheduled crash has killed the
// coordinator since the last recovery.
func (in *Injector) Crashed() bool { return in.crashed }

// SetObs wires the injector to an observability hub: every injected
// fault becomes a per-kind counter increment and a journal "fault"
// event (recoveries journal too, without counting).
func (in *Injector) SetObs(o *obs.Obs) { in.obs = o }

// Wrap interposes the injector between the scheduler and one resource.
// The wrapper is a pass-through lrm.LRM until the schedule says
// otherwise: submits can be refused, in-flight jobs killed by outages,
// and completed results delayed or lost.
func (in *Injector) Wrap(inner lrm.LRM) lrm.LRM {
	name := inner.Name()
	t := &target{
		in:        in,
		inner:     inner,
		name:      name,
		submitRNG: in.rng.Stream("submit-" + name),
		resultRNG: in.rng.Stream("result-" + name),
	}
	in.targets[name] = t
	return t
}

// Sink interposes the injector on the MDS publication path: providers
// publish into the returned sink, which forwards to dst except while
// the resource is down or in an mds-drop window (publications vanish,
// the entry ages out) or an mds-stale burst (the last-seen Info is
// republished unchanged).
func (in *Injector) Sink(dst mds.Sink) mds.Sink {
	return &sink{in: in, dst: dst}
}

// AttachChurner registers the churn hook for a BOINC resource.
func (in *Injector) AttachChurner(name string, c Churner) {
	in.churners[name] = c
}

// AttachDemand registers the hook a demand-spike event drives: fn is
// called with the event's Factor at the window start and with 1 at the
// end. Unlike churners, demand hooks live on the workload side (the
// arrival process), so they may attach after Apply; a spike with no
// hook still journals.
func (in *Injector) AttachDemand(name string, fn func(factor float64)) {
	in.demands[name] = fn
}

// Down reports whether the named resource is currently in an outage.
func (in *Injector) Down(name string) bool {
	t, ok := in.targets[name]
	return ok && t.down
}

// Injected returns how many faults of each kind have fired so far.
func (in *Injector) Injected() map[Kind]int {
	out := make(map[Kind]int, len(in.stats))
	for k, v := range in.stats {
		out[k] = v
	}
	return out
}

// Apply validates the schedule against the wrapped resources and arms
// every event and flap on the engine. Call it once, after all
// resources are wrapped, before the simulation runs.
func (in *Injector) Apply(sch Schedule) error {
	if err := sch.Validate(); err != nil {
		return err
	}
	for i, ev := range sch.Events {
		if ev.Kind == KindChurn {
			if _, ok := in.churners[ev.Resource]; !ok {
				return fmt.Errorf("faults: event %d targets %s, which has no churn hook", i, ev.Resource)
			}
			continue
		}
		if ev.Kind == KindDemandSpike {
			// Demand hooks attach on the workload side, possibly after
			// Apply; nothing to validate here.
			continue
		}
		if _, ok := in.targets[ev.Resource]; !ok {
			return fmt.Errorf("faults: event %d targets unwrapped resource %s", i, ev.Resource)
		}
	}
	for i, f := range sch.Flaps {
		if _, ok := in.targets[f.Resource]; !ok {
			return fmt.Errorf("faults: flap %d targets unwrapped resource %s", i, f.Resource)
		}
	}
	for i := range sch.Events {
		in.arm(sch.Events[i])
	}
	for i := range sch.Flaps {
		in.armFlap(sch.Flaps[i], i)
	}
	for i := range sch.CrashAt {
		in.armCrash(sch.CrashAt[i])
	}
	return nil
}

// armCrash schedules a coordinator kill: the crash journals like any
// injected fault, then halts the engine mid-run — the simulation
// equivalent of the process dying with events still queued.
func (in *Injector) armCrash(at sim.Time) {
	in.eng.ScheduleAt(at, func() {
		in.note(KindCrash, "coordinator", "process killed")
		if in.crashStops {
			in.crashed = true
			in.eng.Stop()
		}
	})
}

// arm schedules one scripted event's begin (and end, for windows).
func (in *Injector) arm(ev Event) {
	switch ev.Kind {
	case KindChurn:
		in.eng.ScheduleAt(ev.At, func() {
			n := in.churners[ev.Resource].Churn(ev.Hosts)
			in.note(KindChurn, ev.Resource, fmt.Sprintf("%d hosts detached", n))
		})
		return
	case KindOutage:
		t := in.targets[ev.Resource]
		in.eng.ScheduleAt(ev.At, t.beginOutage)
		in.eng.ScheduleAt(ev.At.Add(ev.Duration), t.endOutage)
		return
	case KindDemandSpike:
		in.eng.ScheduleAt(ev.At, func() {
			in.note(KindDemandSpike, ev.Resource,
				fmt.Sprintf("arrival rate ×%g for %.0fs", ev.Factor, float64(ev.Duration)))
			if fn := in.demands[ev.Resource]; fn != nil {
				fn(ev.Factor)
			}
		})
		in.eng.ScheduleAt(ev.At.Add(ev.Duration), func() {
			in.mark(KindDemandSpike, ev.Resource, "demand restored")
			if fn := in.demands[ev.Resource]; fn != nil {
				fn(1)
			}
		})
		return
	}
	t := in.targets[ev.Resource]
	end := ev.At.Add(ev.Duration)
	switch ev.Kind {
	case KindSubmitFail:
		in.eng.ScheduleAt(ev.At, func() {
			t.submitFailP = ev.P
			in.mark(KindSubmitFail, t.name, fmt.Sprintf("window open p=%g", ev.P))
		})
		in.eng.ScheduleAt(end, func() {
			t.submitFailP = 0
			in.mark(KindSubmitFail, t.name, "window closed")
		})
	case KindMDSDrop:
		in.eng.ScheduleAt(ev.At, func() {
			t.drop = true
			in.note(KindMDSDrop, t.name, "publications dropped")
		})
		in.eng.ScheduleAt(end, func() {
			t.drop = false
			in.mark(KindMDSDrop, t.name, "publications restored")
		})
	case KindMDSStale:
		in.eng.ScheduleAt(ev.At, func() {
			t.stale = true
			in.note(KindMDSStale, t.name, "staleness burst begins")
		})
		in.eng.ScheduleAt(end, func() {
			t.stale = false
			in.mark(KindMDSStale, t.name, "staleness burst ends")
		})
	case KindSlowResult:
		in.eng.ScheduleAt(ev.At, func() {
			t.slowP = ev.P
			t.slowBy = ev.Delay
			in.mark(KindSlowResult, t.name, fmt.Sprintf("window open p=%g delay=%.0fs", ev.P, float64(ev.Delay)))
		})
		in.eng.ScheduleAt(end, func() {
			t.slowP = 0
			in.mark(KindSlowResult, t.name, "window closed")
		})
	case KindLostResult:
		in.eng.ScheduleAt(ev.At, func() {
			t.lostP = ev.P
			in.mark(KindLostResult, t.name, fmt.Sprintf("window open p=%g", ev.P))
		})
		in.eng.ScheduleAt(end, func() {
			t.lostP = 0
			in.mark(KindLostResult, t.name, "window closed")
		})
	case KindCapacityCollapse:
		in.eng.ScheduleAt(ev.At, func() {
			t.capFactor = ev.Factor
			in.note(KindCapacityCollapse, t.name,
				fmt.Sprintf("capacity ×%g for %.0fs", ev.Factor, float64(ev.Duration)))
		})
		in.eng.ScheduleAt(end, func() {
			t.capFactor = 0
			in.mark(KindCapacityCollapse, t.name, "capacity restored")
		})
	}
}

// armFlap starts one flapping process on its own RNG stream.
func (in *Injector) armFlap(f Flap, i int) {
	t := in.targets[f.Resource]
	rng := in.rng.Stream(fmt.Sprintf("flap-%s-%d", f.Resource, i))
	var cycle func()
	cycle = func() {
		if f.Until > 0 && in.eng.Now() >= f.Until {
			return // the process dies quietly once past its horizon
		}
		t.beginOutage()
		in.eng.Schedule(rng.ExpDuration(f.MeanDown), func() {
			t.endOutage()
			in.eng.Schedule(rng.ExpDuration(f.MeanUp), cycle)
		})
	}
	in.eng.ScheduleAt(f.Start.Add(rng.ExpDuration(f.MeanUp)), cycle)
}

// note counts one injected fault and journals it.
func (in *Injector) note(k Kind, resource, detail string) {
	in.stats[k]++
	in.obs.Counter("lattice_faults_injected_total",
		"Faults injected by the deterministic fault injector",
		obs.L("kind", string(k)), obs.L("resource", resource)).Inc()
	in.obs.Record("", "", obs.StageFault, resource, string(k)+": "+detail)
}

// mark journals a fault-layer transition without counting it as an
// injection (window edges, recoveries).
func (in *Injector) mark(k Kind, resource, detail string) {
	in.obs.Record("", "", obs.StageFault, resource, string(k)+": "+detail)
}

// target wraps one lrm.LRM with the injector's failure modes. With no
// active window it is a pure pass-through (plus in-flight tracking).
type target struct {
	in    *Injector
	inner lrm.LRM
	name  string

	down        bool
	capFactor   float64 // capacity-collapse scale, 0 when inactive
	submitFailP float64
	lostP       float64
	slowP       float64
	slowBy      sim.Duration
	drop        bool
	stale       bool
	lastInfo    lrm.Info
	haveLast    bool

	submitRNG *sim.RNG
	resultRNG *sim.RNG

	// inflight tracks jobs submitted through the wrapper and not yet
	// terminal, in submission order, so an outage kills them
	// deterministically.
	inflight []*lrm.Job
}

func (t *target) Name() string     { return t.inner.Name() }
func (t *target) Info() lrm.Info   { return t.inner.Info() }
func (t *target) Stats() lrm.Stats { return t.inner.Stats() }

func (t *target) Cancel(jobID string) bool {
	t.forget(jobID)
	return t.inner.Cancel(jobID)
}

// Submit implements lrm.LRM. The adapter builds a fresh lrm.Job per
// dispatch, so rewriting its callbacks here never leaks into a retry.
func (t *target) Submit(j *lrm.Job) error {
	if t.down {
		t.in.note(KindSubmitFail, t.name, "submit refused: resource down")
		return fmt.Errorf("faults: %s is down", t.name)
	}
	if t.submitFailP > 0 && t.submitRNG.Bool(t.submitFailP) {
		t.in.note(KindSubmitFail, t.name, "submit refused by gatekeeper")
		return fmt.Errorf("faults: %s gatekeeper refused the submission", t.name)
	}
	if t.capFactor > 0 {
		capacity := int(t.capFactor * float64(t.inner.Info().TotalCPUs))
		if capacity < 1 {
			capacity = 1
		}
		if len(t.inflight) >= capacity {
			t.in.note(KindCapacityCollapse, t.name, "submit refused: capacity collapsed")
			return fmt.Errorf("faults: %s capacity collapsed", t.name)
		}
	}
	origComplete := j.OnComplete
	origFail := j.OnFail
	j.OnComplete = func(at sim.Time) {
		t.forget(j.ID)
		if t.lostP > 0 && t.resultRNG.Bool(t.lostP) {
			t.in.note(KindLostResult, t.name, j.ID)
			if origFail != nil {
				origFail(at, "faults: result lost in transit")
			}
			return
		}
		if t.slowP > 0 && t.resultRNG.Bool(t.slowP) {
			t.in.note(KindSlowResult, t.name, j.ID)
			t.in.eng.Schedule(t.slowBy, func() {
				if origComplete != nil {
					origComplete(t.in.eng.Now())
				}
			})
			return
		}
		if origComplete != nil {
			origComplete(at)
		}
	}
	j.OnFail = func(at sim.Time, reason string) {
		t.forget(j.ID)
		if origFail != nil {
			origFail(at, reason)
		}
	}
	if err := t.inner.Submit(j); err != nil {
		return err
	}
	t.inflight = append(t.inflight, j)
	return nil
}

// beginOutage takes the resource down: every tracked in-flight job is
// cancelled locally and failed back to its submitter.
func (t *target) beginOutage() {
	if t.down {
		return
	}
	t.down = true
	t.in.note(KindOutage, t.name, "down")
	jobs := t.inflight
	t.inflight = nil
	now := t.in.eng.Now()
	for _, j := range jobs {
		t.inner.Cancel(j.ID)
		if j.OnFail != nil {
			j.OnFail(now, "faults: resource outage")
		}
	}
}

func (t *target) endOutage() {
	if !t.down {
		return
	}
	t.down = false
	t.in.mark(KindOutage, t.name, "recovered")
}

func (t *target) forget(jobID string) {
	for i, j := range t.inflight {
		if j.ID == jobID {
			t.inflight = append(t.inflight[:i], t.inflight[i+1:]...)
			return
		}
	}
}

// sink filters MDS publications through the injector's window state.
type sink struct {
	in  *Injector
	dst mds.Sink
}

func (k *sink) Publish(info lrm.Info) {
	t, ok := k.in.targets[info.Name]
	if !ok {
		k.dst.Publish(info)
		return
	}
	if t.down || t.drop {
		return // a dead container publishes nothing; the entry ages out
	}
	if t.stale && t.haveLast {
		k.dst.Publish(t.lastInfo)
		return
	}
	t.lastInfo = info
	t.haveLast = true
	if t.capFactor > 0 {
		// Brownout: the resource advertises its collapsed capacity, so
		// the scheduler's backlog cap and ranking throttle it.
		info.TotalCPUs = int(t.capFactor * float64(info.TotalCPUs))
		if info.TotalCPUs < 1 {
			info.TotalCPUs = 1
		}
		if info.FreeCPUs > info.TotalCPUs {
			info.FreeCPUs = info.TotalCPUs
		}
	}
	k.dst.Publish(info)
}
