package beagle

import "container/list"

// pmatCache is a bounded LRU cache of per-branch-length transition
// state keyed by branch length. Branch lengths are continuous — the
// golden-section branch optimizer probes fresh values every generation —
// so without genuine recency-based eviction the cache either grows
// without bound or (as the previous wholesale-reset policy did) dumps
// the hot working set of one tree's branch lengths together with the
// cold optimizer probes. LRU keeps the resident set exactly at the
// lengths the search is actively re-evaluating.
//
// Evicted entries donate their backing buffer to a free list, so at
// steady state a cache miss costs only the matrix exponentials — no
// allocation. Entries shared with another engine (WarmStart) are
// exempt: their buffers may still be read concurrently elsewhere.
type pmatCache struct {
	cap       int
	ll        *list.List // front = most recently used
	index     map[float64]*list.Element
	evictions int
	recycled  int // misses served from the free list instead of make
	free      [][]float64
}

// pmatEntry is one cached unit of per-branch-length state: the
// flattened per-category transition matrices plus the tip-column
// tables derived from them (see tips.go). Both live in one backing
// slice so the whole entry recycles as a unit. Entries are immutable
// once published, which is what makes WarmStart sharing race-free.
type pmatEntry struct {
	length float64
	data   []float64 // backing storage: mats followed by tips
	mats   []float64 // data[:C*S*S], category-major S×S matrices
	tips   []float64 // data[C*S*S:], tip columns (see buildTipTables)
	shared bool      // visible to another engine; never recycle data
}

// pmatMinCap is the smallest permitted capacity: the fused binary
// kernel reads two entries simultaneously, so at least both must stay
// resident between their fetches.
const pmatMinCap = 2

func newPmatCache(capacity int) *pmatCache {
	if capacity < pmatMinCap {
		capacity = pmatMinCap
	}
	return &pmatCache{
		cap:   capacity,
		ll:    list.New(),
		index: make(map[float64]*list.Element, capacity),
	}
}

// get returns the cached entry for a branch length and refreshes its
// recency.
func (c *pmatCache) get(length float64) (*pmatEntry, bool) {
	el, ok := c.index[length]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*pmatEntry), true
}

// buffer returns a zero-garbage backing slice of the requested size,
// recycled from an evicted entry when one of the right shape is
// available.
func (c *pmatCache) buffer(size int) []float64 {
	for k := len(c.free); k > 0; k-- {
		b := c.free[k-1]
		c.free = c.free[:k-1]
		if len(b) == size {
			c.recycled++
			return b
		}
		// Wrong shape (stale after a category-count change): drop it.
	}
	return make([]float64, size)
}

// put inserts an entry, evicting the least recently used entries past
// the capacity.
func (c *pmatCache) put(e *pmatEntry) {
	if el, ok := c.index[e.length]; ok {
		c.ll.MoveToFront(el)
		el.Value = e
		return
	}
	c.index[e.length] = c.ll.PushFront(e)
	c.trim()
}

// trim evicts from the cold end until the cache fits its capacity,
// returning each unshared buffer to the free list.
func (c *pmatCache) trim() {
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		e := back.Value.(*pmatEntry)
		delete(c.index, e.length)
		c.evictions++
		if !e.shared && len(c.free) < c.cap {
			c.free = append(c.free, e.data)
		}
	}
}

// setCap re-bounds the cache, evicting immediately if it shrank.
func (c *pmatCache) setCap(n int) {
	if n < pmatMinCap {
		n = pmatMinCap
	}
	c.cap = n
	c.trim()
}

// reset empties the cache and the free list. Called when the model or
// rate mixture changes: every cached matrix is an exponential of the
// old rate matrix, none survives a model swap, and the buffer shape
// may have changed with the category count.
func (c *pmatCache) reset() {
	c.ll.Init()
	c.index = make(map[float64]*list.Element, c.cap)
	c.free = nil
}

// size returns the number of resident entries.
func (c *pmatCache) size() int { return c.ll.Len() }

// shareInto publishes every entry of c into dst (skipping lengths dst
// already has), marking the entries shared on both sides so neither
// cache ever recycles a buffer the other may read. Iterating from the
// cold end preserves c's recency order in dst. Both caches remain
// independent afterward — only the immutable float data is shared.
func (c *pmatCache) shareInto(dst *pmatCache) {
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*pmatEntry)
		if _, ok := dst.index[e.length]; ok {
			continue
		}
		e.shared = true
		dst.index[e.length] = dst.ll.PushFront(&pmatEntry{
			length: e.length,
			data:   e.data,
			mats:   e.mats,
			tips:   e.tips,
			shared: true,
		})
		dst.trim()
	}
}
