package beagle

import "container/list"

// pmatCache is a bounded LRU cache of flattened per-category transition
// matrices keyed by branch length. Branch lengths are continuous — the
// golden-section branch optimizer probes fresh values every generation —
// so without genuine recency-based eviction the cache either grows
// without bound or (as the previous wholesale-reset policy did) dumps
// the hot working set of one tree's branch lengths together with the
// cold optimizer probes. LRU keeps the resident set exactly at the
// lengths the search is actively re-evaluating.
type pmatCache struct {
	cap       int
	ll        *list.List // front = most recently used
	index     map[float64]*list.Element
	evictions int
}

// pmatEntry is one cached set of per-category matrices.
type pmatEntry struct {
	length float64
	mats   []float64
}

func newPmatCache(capacity int) *pmatCache {
	if capacity < 1 {
		capacity = 1
	}
	return &pmatCache{
		cap:   capacity,
		ll:    list.New(),
		index: make(map[float64]*list.Element, capacity),
	}
}

// get returns the cached matrices for a branch length and refreshes
// their recency.
func (c *pmatCache) get(length float64) ([]float64, bool) {
	el, ok := c.index[length]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*pmatEntry).mats, true
}

// put inserts matrices for a branch length, evicting the least recently
// used entries past the capacity.
func (c *pmatCache) put(length float64, mats []float64) {
	if el, ok := c.index[length]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*pmatEntry).mats = mats
		return
	}
	c.index[length] = c.ll.PushFront(&pmatEntry{length: length, mats: mats})
	c.trim()
}

// trim evicts from the cold end until the cache fits its capacity.
func (c *pmatCache) trim() {
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.index, back.Value.(*pmatEntry).length)
		c.evictions++
	}
}

// setCap re-bounds the cache, evicting immediately if it shrank.
func (c *pmatCache) setCap(n int) {
	if n < 1 {
		n = 1
	}
	c.cap = n
	c.trim()
}

// reset empties the cache. Called when the model or rate mixture
// changes: every cached matrix is an exponential of the old rate
// matrix and none survives a model swap.
func (c *pmatCache) reset() {
	c.ll.Init()
	c.index = make(map[float64]*list.Element, c.cap)
}

// size returns the number of resident entries.
func (c *pmatCache) size() int { return c.ll.Len() }
