// Package beagle is this repository's analogue of BEAGLE
// (Broad-platform Evolutionary Analysis General Likelihood Evaluator),
// the library the paper's group built "to speed up the likelihood
// calculations at the heart of most phylogenetic analysis programs"
// (Section II-A). The original offloads to GPUs; here the same role is
// played by a CPU-optimized evaluation engine that is exactly
// exchangeable with the reference implementation in internal/phylo:
//
//   - flat structure-of-arrays buffers allocated once per tree shape,
//   - an LRU transition-matrix cache keyed by branch length, so
//     repeated evaluations of the same tree (the GA's dominant access
//     pattern) skip the matrix exponentials entirely,
//   - incremental re-evaluation: per-node conditional likelihoods are
//     cached together with the exact subtree structure they were
//     computed from, so a mutation (NNI, SPR, branch-length change)
//     only recomputes the partials on the path from the mutated edge
//     to the root — the classic GARLI optimization,
//   - a hand-unrolled 4-state kernel for nucleotide models (the
//     overwhelmingly common case) with slice-bound hoisting,
//   - rescaling applied per node only when magnitudes demand it.
//
// Correctness is pinned to the reference implementation by property
// tests: both engines must agree to ~1e-9 on random trees, models and
// rate mixtures, and incremental evaluation must be bit-identical to
// full recomputation over long random mutation sequences.
package beagle

import (
	"fmt"
	"math"

	"lattice/internal/phylo"
)

// Engine evaluates tree log-likelihoods. It is not safe for concurrent
// use; create one engine per goroutine (phylo.EvaluatorPool does
// exactly that for parallel population scoring).
type Engine struct {
	data  *phylo.PatternData
	model *phylo.Model
	rates *phylo.SiteRates

	nStates int
	nCats   int
	nPat    int

	// partials[node] holds [pat*cats*states] conditionals; scales
	// holds per-node, per-pattern log scaling factors.
	partials [][]float64
	scales   [][]float64

	// pmats is the bounded LRU transition-matrix cache keyed by branch
	// length. The GA mutates one branch per generation, so almost
	// every edge of an evaluated tree has been seen before.
	pmats *pmatCache

	// Incremental re-evaluation state. nodes[id] records the exact
	// subtree structure (leaf taxon, ordered child IDs, child branch
	// lengths) whose conditional likelihoods partials[id] currently
	// holds. A node is recomputed only when that record no longer
	// matches the tree being evaluated or a descendant was recomputed
	// this pass — so a single branch-length change re-runs the pruning
	// kernel only on the path from the mutated edge to the root.
	//
	// Soundness: validity is detected structurally, not by mutation
	// hooks, so callers may freely mutate Node.Length in place (as the
	// branch optimizer does). The induction that "record matches ⇒
	// buffer holds the right partial" requires every recorded node to
	// be re-checked on every evaluation; trees of a different node
	// count would leave unvisited stale records behind, so a size
	// change invalidates wholesale (see LogLikelihood).
	incremental bool
	nodes       []nodeRecord
	touched     []bool
	lastNodes   int

	// Evaluations counts LogLikelihood calls; CacheHits / CacheMisses
	// count transition-matrix lookups. PartialsComputed and
	// PartialsReused count per-node pruning passes executed vs skipped
	// by incremental re-evaluation.
	Evaluations      int
	CacheHits        int
	CacheMisses      int
	PartialsComputed int
	PartialsReused   int
	// work accumulates evaluation cost in cell updates (the same unit
	// as phylo.Likelihood.Work). Every increment is an integer-valued
	// float64, so sums and differences are exact and parallel runs can
	// report bit-identical totals regardless of scheduling.
	work float64
}

// Engine implements phylo.Evaluator and the incremental extension.
var (
	_ phylo.Evaluator            = (*Engine)(nil)
	_ phylo.IncrementalEvaluator = (*Engine)(nil)
)

// nodeRecord is the structural signature of the subtree whose partial
// a buffer slot holds: the leaf taxon, and the ordered child IDs and
// child branch lengths (child order matters — it fixes the floating-
// point accumulation order, which keeps reuse bit-identical to
// recomputation).
type nodeRecord struct {
	valid     bool
	taxon     int
	childIDs  []int
	childLens []float64
}

// matches reports whether the record describes node n's current
// neighborhood exactly.
func (r *nodeRecord) matches(n *phylo.Node) bool {
	if !r.valid || r.taxon != n.Taxon || len(r.childIDs) != len(n.Children) {
		return false
	}
	for i, c := range n.Children {
		if r.childIDs[i] != c.ID || r.childLens[i] != c.Length {
			return false
		}
	}
	return true
}

// record snapshots node n's current neighborhood.
func (r *nodeRecord) record(n *phylo.Node) {
	r.valid = true
	r.taxon = n.Taxon
	r.childIDs = r.childIDs[:0]
	r.childLens = r.childLens[:0]
	for _, c := range n.Children {
		r.childIDs = append(r.childIDs, c.ID)
		r.childLens = append(r.childLens, c.Length)
	}
}

// New builds an engine for the given data, model and rate mixture.
func New(data *phylo.PatternData, model *phylo.Model, rates *phylo.SiteRates) (*Engine, error) {
	if data.Type != model.Type {
		return nil, fmt.Errorf("beagle: data type %v does not match model type %v", data.Type, model.Type)
	}
	if rates == nil {
		var err error
		rates, err = phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1)
		if err != nil {
			return nil, err
		}
	}
	return &Engine{
		data:        data,
		model:       model,
		rates:       rates,
		nStates:     model.Type.NumStates(),
		nCats:       rates.NumCats(),
		nPat:        data.NumPatterns(),
		pmats:       newPmatCache(4096),
		incremental: true,
	}, nil
}

// SetModel swaps the substitution model and rate mixture. Every cached
// transition matrix is an exponential of the old rate matrix and every
// cached partial was propagated through them, so both caches are
// explicitly invalidated; buffers resize lazily on the next evaluation
// if the category count changed.
func (e *Engine) SetModel(model *phylo.Model, rates *phylo.SiteRates) error {
	if model == nil {
		return fmt.Errorf("beagle: nil model")
	}
	if e.data.Type != model.Type {
		return fmt.Errorf("beagle: data type %v does not match model type %v", e.data.Type, model.Type)
	}
	if rates == nil {
		var err error
		rates, err = phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1)
		if err != nil {
			return err
		}
	}
	e.model = model
	e.rates = rates
	e.nCats = rates.NumCats()
	e.pmats.reset()
	e.InvalidateAll()
	return nil
}

// SetIncremental toggles incremental re-evaluation (on by default).
// Disabling it forces a full pruning pass per evaluation — useful for
// benchmarking the incremental gain in isolation. Toggling invalidates
// all cached partials so stale records can never be consulted later.
func (e *Engine) SetIncremental(on bool) {
	if e.incremental == on {
		return
	}
	e.incremental = on
	e.InvalidateAll()
}

// SetCacheCap re-bounds the transition-matrix cache.
func (e *Engine) SetCacheCap(n int) { e.pmats.setCap(n) }

// InvalidateAll implements phylo.IncrementalEvaluator: it drops every
// cached per-node conditional likelihood, forcing the next evaluation
// to recompute the whole tree. Transition matrices stay cached — they
// depend only on the model and branch lengths, not on tree content.
func (e *Engine) InvalidateAll() {
	for i := range e.nodes {
		e.nodes[i].valid = false
	}
}

// Stats is a snapshot of the engine's evaluation counters.
type Stats struct {
	Evaluations      int
	PartialsComputed int
	PartialsReused   int
	CacheHits        int
	CacheMisses      int
	CacheEvictions   int
	CacheSize        int
	Work             float64
}

// Stats returns the engine's current counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Evaluations:      e.Evaluations,
		PartialsComputed: e.PartialsComputed,
		PartialsReused:   e.PartialsReused,
		CacheHits:        e.CacheHits,
		CacheMisses:      e.CacheMisses,
		CacheEvictions:   e.pmats.evictions,
		CacheSize:        e.pmats.size(),
		Work:             e.work,
	}
}

// ReuseFraction is the share of per-node pruning passes that
// incremental re-evaluation skipped.
func (s Stats) ReuseFraction() float64 {
	total := s.PartialsComputed + s.PartialsReused
	if total == 0 {
		return 0
	}
	return float64(s.PartialsReused) / float64(total)
}

// CacheHitRate is the share of transition-matrix lookups served from
// cache.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// transition returns the flattened per-category transition matrices
// for a branch length, from cache when possible.
func (e *Engine) transition(length float64) []float64 {
	if m, ok := e.pmats.get(length); ok {
		e.CacheHits++
		return m
	}
	e.CacheMisses++
	S := e.nStates
	out := make([]float64, e.nCats*S*S)
	var scratch *phylo.Matrix
	for c := 0; c < e.nCats; c++ {
		scratch = e.model.Eigen().TransitionMatrix(length*e.rates.Rates[c], scratch)
		copy(out[c*S*S:(c+1)*S*S], scratch.Data)
	}
	e.pmats.put(length, out)
	return out
}

func (e *Engine) ensureBuffers(n int) {
	for len(e.partials) < n {
		e.partials = append(e.partials, nil)
		e.scales = append(e.scales, nil)
		e.nodes = append(e.nodes, nodeRecord{})
		e.touched = append(e.touched, false)
	}
	size := e.nPat * e.nCats * e.nStates
	for i := 0; i < n; i++ {
		if len(e.partials[i]) != size {
			e.partials[i] = make([]float64, size)
			e.scales[i] = make([]float64, e.nPat)
			e.nodes[i] = nodeRecord{}
		}
	}
}

// OptimizeBranch implements phylo.Evaluator via the shared
// golden-section optimizer. Because the optimizer changes exactly one
// branch length between evaluations, incremental re-evaluation turns
// each of its probes into a path-to-root recomputation instead of a
// full pruning pass.
func (e *Engine) OptimizeBranch(t *phylo.Tree, n *phylo.Node, iterations int) float64 {
	return phylo.OptimizeBranchOf(e, t, n, iterations)
}

// TotalWork implements phylo.Evaluator.
func (e *Engine) TotalWork() float64 { return e.work }

// childTouched reports whether any child of n was recomputed this
// pass (post-order guarantees children are decided before parents).
func childTouched(n *phylo.Node, touched []bool) bool {
	for _, c := range n.Children {
		if touched[c.ID] {
			return true
		}
	}
	return false
}

// LogLikelihood evaluates the data's log-likelihood on tree t.
//
// With incremental re-evaluation enabled (the default), per-node
// conditional likelihoods cached from earlier evaluations — of this
// tree or of any clone sharing node IDs — are reused wherever the
// recorded subtree structure still matches, so the pruning kernel runs
// only on nodes whose subtree actually changed. The result is
// bit-identical to a full recomputation: reuse is only ever of values
// the full pass would recompute from identical inputs in identical
// order.
func (e *Engine) LogLikelihood(t *phylo.Tree) float64 {
	e.Evaluations++
	e.ensureBuffers(len(t.Nodes))
	if len(t.Nodes) != e.lastNodes {
		e.InvalidateAll()
		e.lastNodes = len(t.Nodes)
	}
	touched := e.touched[:len(t.Nodes)]
	for i := range touched {
		touched[i] = false
	}
	t.PostOrder(func(n *phylo.Node) {
		rec := &e.nodes[n.ID]
		if e.incremental && rec.matches(n) && !childTouched(n, touched) {
			e.PartialsReused++
			return
		}
		touched[n.ID] = true
		e.PartialsComputed++
		part := e.partials[n.ID]
		scale := e.scales[n.ID]
		for i := range scale {
			scale[i] = 0
		}
		if n.IsLeaf() {
			e.fillLeaf(part, n.Taxon)
		} else {
			for i := range part {
				part[i] = 1
			}
			for _, child := range n.Children {
				pm := e.transition(child.Length)
				cpart := e.partials[child.ID]
				cscale := e.scales[child.ID]
				for p := 0; p < e.nPat; p++ {
					scale[p] += cscale[p]
				}
				if e.nStates == 4 {
					e.accumulate4(part, cpart, pm)
				} else {
					e.accumulateGeneric(part, cpart, pm)
				}
				e.work += float64(e.nPat+1) * float64(e.nCats) * float64(e.nStates) * float64(e.nStates)
			}
			e.rescale(part, scale)
		}
		if e.incremental {
			rec.record(n)
		}
	})
	root := e.partials[t.Root.ID]
	rscale := e.scales[t.Root.ID]
	pi := e.model.Freqs
	S, C := e.nStates, e.nCats
	var logL float64
	for p := 0; p < e.nPat; p++ {
		var site float64
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			var cat float64
			for s := 0; s < S; s++ {
				cat += pi[s] * root[base+s]
			}
			site += e.rates.Weights[c] * cat
		}
		if site <= 0 {
			site = math.SmallestNonzeroFloat64
		}
		logL += e.data.Weights[p] * (math.Log(site) + rscale[p])
	}
	return logL
}

// accumulate4 is the unrolled nucleotide kernel: for every
// (pattern, category) cell it multiplies the running partial by
// P · childPartial with the 4×4 product fully unrolled.
func (e *Engine) accumulate4(part, cpart, pm []float64) {
	C := e.nCats
	cells := e.nPat * C
	for cell := 0; cell < cells; cell++ {
		base := cell * 4
		m := pm[(cell%C)*16 : (cell%C)*16+16]
		c0, c1, c2, c3 := cpart[base], cpart[base+1], cpart[base+2], cpart[base+3]
		part[base+0] *= m[0]*c0 + m[1]*c1 + m[2]*c2 + m[3]*c3
		part[base+1] *= m[4]*c0 + m[5]*c1 + m[6]*c2 + m[7]*c3
		part[base+2] *= m[8]*c0 + m[9]*c1 + m[10]*c2 + m[11]*c3
		part[base+3] *= m[12]*c0 + m[13]*c1 + m[14]*c2 + m[15]*c3
	}
}

// accumulateGeneric handles amino-acid and codon state spaces.
func (e *Engine) accumulateGeneric(part, cpart, pm []float64) {
	S, C := e.nStates, e.nCats
	for p := 0; p < e.nPat; p++ {
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			mat := pm[c*S*S : (c+1)*S*S]
			cvec := cpart[base : base+S]
			out := part[base : base+S]
			for s := 0; s < S; s++ {
				row := mat[s*S : s*S+S]
				var sum float64
				for x := 0; x < S; x++ {
					sum += row[x] * cvec[x]
				}
				out[s] *= sum
			}
		}
	}
}

// rescale guards against underflow on deep trees.
func (e *Engine) rescale(part, scale []float64) {
	S, C := e.nStates, e.nCats
	stride := C * S
	for p := 0; p < e.nPat; p++ {
		base := p * stride
		maxv := 0.0
		for i := base; i < base+stride; i++ {
			if part[i] > maxv {
				maxv = part[i]
			}
		}
		if maxv > 0 && maxv < 1e-100 {
			inv := 1 / maxv
			for i := base; i < base+stride; i++ {
				part[i] *= inv
			}
			scale[p] += math.Log(maxv)
		}
	}
}

func (e *Engine) fillLeaf(part []float64, taxon int) {
	S, C := e.nStates, e.nCats
	nt := e.data.NumTaxa
	for p := 0; p < e.nPat; p++ {
		st := e.data.States[p*nt+taxon]
		base := p * C * S
		if st < 0 {
			for i := base; i < base+C*S; i++ {
				part[i] = 1
			}
			continue
		}
		for i := base; i < base+C*S; i++ {
			part[i] = 0
		}
		for c := 0; c < C; c++ {
			part[base+c*S+int(st)] = 1
		}
	}
}
