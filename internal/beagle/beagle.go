// Package beagle is this repository's analogue of BEAGLE
// (Broad-platform Evolutionary Analysis General Likelihood Evaluator),
// the library the paper's group built "to speed up the likelihood
// calculations at the heart of most phylogenetic analysis programs"
// (Section II-A). The original offloads to GPUs; here the same role is
// played by a CPU-optimized evaluation engine that is exactly
// exchangeable with the reference implementation in internal/phylo:
//
//   - tip-state specialization: leaves own no buffers — a leaf child's
//     contribution is a precomputed transition-matrix column, indexed
//     per pattern (tips.go),
//   - fused, blocked pruning kernels: a binary node is one sweep
//     part = (P₁·c₁) ⊙ (P₂·c₂) with the child-scale addition folded
//     in, pattern-major with no per-cell modulo (kernels.go),
//   - an LRU transition-matrix cache keyed by branch length whose
//     evicted buffers recycle through a free list, and whose entries
//     pool workers share read-only via WarmStart (cache.go),
//   - incremental re-evaluation with per-tree banks of copy-on-write
//     conditional-likelihood buffers, so one engine scoring many trees
//     alternately keeps every tree's cached state live within a byte
//     budget (banks.go) — the classic GARLI optimization extended
//     across a whole population,
//   - rescaling applied per node only when magnitudes demand it.
//
// Correctness is pinned to the reference implementation by property
// tests: both engines must agree to ~1e-9 on random trees, models and
// rate mixtures, and incremental evaluation must be bit-identical to
// full recomputation over long random mutation sequences — for
// nucleotide, amino-acid, and codon state spaces.
package beagle

import (
	"container/list"
	"fmt"
	"math"

	"lattice/internal/phylo"
)

// defaultBankBudget bounds the conditional-likelihood memory one
// engine retains across trees. 64 MiB holds a pool worker's share of a
// GA population at realistic sizes (tens of 50-taxon, 1000-site trees)
// while keeping a many-engine pool within commodity memory.
const defaultBankBudget = 64 << 20

// Engine evaluates tree log-likelihoods. It is not safe for concurrent
// use; create one engine per goroutine (phylo.EvaluatorPool does
// exactly that for parallel population scoring).
type Engine struct {
	data  *phylo.PatternData
	model *phylo.Model
	rates *phylo.SiteRates

	nStates int
	nCats   int
	nPat    int

	// pmats is the bounded LRU transition cache keyed by branch
	// length; each entry carries the per-category matrices plus the
	// tip-column tables. The GA mutates one branch per generation, so
	// almost every edge of an evaluated tree has been seen before.
	pmats *pmatCache

	// tipIdx[taxon][pattern] is the tip-table index for that taxon's
	// observed state (nStates = missing). Depends only on the data.
	tipIdx [][]uint8

	// Incremental re-evaluation state: per-tree banks keyed by
	// phylo.Tree.UID (banks.go). A node is recomputed only when its
	// bank's structural record no longer matches the tree or a
	// descendant was recomputed this pass — so a single branch-length
	// change re-runs the pruning kernel only on the path from the
	// mutated edge to the root, and revisiting a previously scored
	// tree reuses everything.
	//
	// Soundness: validity is detected structurally, not by mutation
	// hooks, so callers may freely mutate Node.Length in place (as the
	// branch optimizer does). The induction that "record matches ⇒
	// buffer holds the right partial" requires every recorded node to
	// be re-checked on every evaluation; trees of a different node
	// count would leave unvisited stale records behind, so a size
	// change invalidates wholesale (see LogLikelihood).
	incremental bool
	lastNodes   int
	banks       map[uint64]*bank
	bankLRU     *list.List // front = most recently evaluated
	lastBank    *bank      // seed source for the next new tree
	bankBytes   int64
	bankBudget  int64
	claBytes    int64 // accounted bytes of one claBuf
	freeBufs    []*claBuf
	freeBanks   []*bank
	maxFreeBufs int

	// Per-evaluation scratch, reused across calls.
	touched    []bool
	expScratch []float64

	// Evaluations counts LogLikelihood calls; CacheHits / CacheMisses
	// count transition-matrix lookups. PartialsComputed and
	// PartialsReused count per-node pruning passes executed vs skipped
	// by incremental re-evaluation. TipCells / InternalCells split the
	// kernel cell updates by child kind; BufRecycled counts
	// conditional-likelihood buffers served from the free list; the
	// Bank* counters track per-tree bank reuse and budget evictions.
	Evaluations      int
	CacheHits        int
	CacheMisses      int
	PartialsComputed int
	PartialsReused   int
	TipCells         int64
	InternalCells    int64
	BufRecycled      int
	BankHits         int
	BankMisses       int
	BankEvictions    int
	// work accumulates evaluation cost in cell updates (the same unit
	// as phylo.Likelihood.Work). Every increment is an integer-valued
	// float64, so sums and differences are exact and parallel runs can
	// report bit-identical totals regardless of scheduling.
	work float64
}

// Engine implements phylo.Evaluator, the incremental extension, and
// the pool warm-start seam.
var (
	_ phylo.Evaluator            = (*Engine)(nil)
	_ phylo.IncrementalEvaluator = (*Engine)(nil)
	_ phylo.WarmStarter          = (*Engine)(nil)
)

// nodeRecord is the structural signature of the subtree whose partial
// a buffer slot holds: the leaf taxon, and the ordered child IDs and
// child branch lengths (child order matters — it fixes the floating-
// point accumulation order, which keeps reuse bit-identical to
// recomputation).
type nodeRecord struct {
	valid     bool
	taxon     int
	childIDs  []int
	childLens []float64
}

// matches reports whether the record describes node n's current
// neighborhood exactly.
func (r *nodeRecord) matches(n *phylo.Node) bool {
	if !r.valid || r.taxon != n.Taxon || len(r.childIDs) != len(n.Children) {
		return false
	}
	for i, c := range n.Children {
		if r.childIDs[i] != c.ID || r.childLens[i] != c.Length {
			return false
		}
	}
	return true
}

// record snapshots node n's current neighborhood.
func (r *nodeRecord) record(n *phylo.Node) {
	r.valid = true
	r.taxon = n.Taxon
	r.childIDs = r.childIDs[:0]
	r.childLens = r.childLens[:0]
	for _, c := range n.Children {
		r.childIDs = append(r.childIDs, c.ID)
		r.childLens = append(r.childLens, c.Length)
	}
}

// New builds an engine for the given data, model and rate mixture.
func New(data *phylo.PatternData, model *phylo.Model, rates *phylo.SiteRates) (*Engine, error) {
	if data.Type != model.Type {
		return nil, fmt.Errorf("beagle: data type %v does not match model type %v", data.Type, model.Type)
	}
	if rates == nil {
		var err error
		rates, err = phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1)
		if err != nil {
			return nil, err
		}
	}
	S := model.Type.NumStates()
	e := &Engine{
		data:        data,
		model:       model,
		rates:       rates,
		nStates:     S,
		nCats:       rates.NumCats(),
		nPat:        data.NumPatterns(),
		pmats:       newPmatCache(4096),
		tipIdx:      buildTipIndex(data.States, data.NumTaxa, data.NumPatterns(), S),
		incremental: true,
		banks:       make(map[uint64]*bank),
		bankLRU:     list.New(),
		bankBudget:  defaultBankBudget,
		expScratch:  make([]float64, S),
	}
	e.resizeShapes()
	return e, nil
}

// resizeShapes recomputes every size derived from (nPat, nCats,
// nStates) and discards free-list buffers of the old shape.
func (e *Engine) resizeShapes() {
	e.claBytes = int64(e.nPat*e.nCats*e.nStates+e.nPat) * 8
	e.maxFreeBufs = int(e.bankBudget/e.claBytes) + 8
	e.freeBufs = nil
}

// SetModel swaps the substitution model and rate mixture. Every cached
// transition matrix is an exponential of the old rate matrix and every
// cached partial was propagated through them, so both caches are
// explicitly invalidated; buffers resize lazily on the next evaluation
// if the category count changed.
func (e *Engine) SetModel(model *phylo.Model, rates *phylo.SiteRates) error {
	if model == nil {
		return fmt.Errorf("beagle: nil model")
	}
	if e.data.Type != model.Type {
		return fmt.Errorf("beagle: data type %v does not match model type %v", e.data.Type, model.Type)
	}
	if rates == nil {
		var err error
		rates, err = phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1)
		if err != nil {
			return err
		}
	}
	e.model = model
	e.rates = rates
	e.nCats = rates.NumCats()
	e.pmats.reset()
	e.InvalidateAll()
	e.resizeShapes()
	return nil
}

// SetIncremental toggles incremental re-evaluation (on by default).
// Disabling it forces a full pruning pass per evaluation — useful for
// benchmarking the incremental gain in isolation. Toggling invalidates
// all cached partials so stale records can never be consulted later.
func (e *Engine) SetIncremental(on bool) {
	if e.incremental == on {
		return
	}
	e.incremental = on
	e.InvalidateAll()
}

// SetCacheCap re-bounds the transition-matrix cache.
func (e *Engine) SetCacheCap(n int) { e.pmats.setCap(n) }

// SetMemoryBudget re-bounds the bytes of conditional-likelihood state
// the engine retains across trees (default 64 MiB). Shrinking evicts
// the least recently evaluated trees' banks on the next evaluation.
func (e *Engine) SetMemoryBudget(bytes int64) {
	if bytes < e.claBytes {
		bytes = e.claBytes
	}
	e.bankBudget = bytes
	e.maxFreeBufs = int(e.bankBudget/e.claBytes) + 8
}

// InvalidateAll implements phylo.IncrementalEvaluator: it drops every
// cached per-node conditional likelihood, forcing the next evaluation
// to recompute the whole tree. Transition matrices stay cached — they
// depend only on the model and branch lengths, not on tree content.
func (e *Engine) InvalidateAll() {
	e.dropAllBanks()
}

// WarmStart implements phylo.WarmStarter: it adopts the parent
// engine's cached transition matrices (and their tip tables) when the
// parent provably computes identical ones — same model and rate
// objects. Shared entries are immutable and flagged on both sides so
// neither engine ever recycles a buffer the other may read; beyond
// that the engines stay fully independent, so this is safe under
// concurrent use afterward. A worker warm-started from the engine that
// built the candidate trees starts with every hot branch length
// resident instead of re-deriving thousands of matrix exponentials.
func (e *Engine) WarmStart(parent phylo.Evaluator) {
	p, ok := parent.(*Engine)
	if !ok || p == e {
		return
	}
	if p.model != e.model || p.rates != e.rates || p.data != e.data {
		return
	}
	p.pmats.shareInto(e.pmats)
}

// Stats is a snapshot of the engine's evaluation counters.
type Stats struct {
	Evaluations      int
	PartialsComputed int
	PartialsReused   int
	CacheHits        int
	CacheMisses      int
	CacheEvictions   int
	CacheSize        int
	PmatRecycled     int
	TipCells         int64
	InternalCells    int64
	BufRecycled      int
	BankHits         int
	BankMisses       int
	BankEvictions    int
	NumSites         int
	NumPatterns      int
	Work             float64
}

// Stats returns the engine's current counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Evaluations:      e.Evaluations,
		PartialsComputed: e.PartialsComputed,
		PartialsReused:   e.PartialsReused,
		CacheHits:        e.CacheHits,
		CacheMisses:      e.CacheMisses,
		CacheEvictions:   e.pmats.evictions,
		CacheSize:        e.pmats.size(),
		PmatRecycled:     e.pmats.recycled,
		TipCells:         e.TipCells,
		InternalCells:    e.InternalCells,
		BufRecycled:      e.BufRecycled,
		BankHits:         e.BankHits,
		BankMisses:       e.BankMisses,
		BankEvictions:    e.BankEvictions,
		NumSites:         e.data.NumSites,
		NumPatterns:      e.nPat,
		Work:             e.work,
	}
}

// ReuseFraction is the share of per-node pruning passes that
// incremental re-evaluation skipped.
func (s Stats) ReuseFraction() float64 {
	total := s.PartialsComputed + s.PartialsReused
	if total == 0 {
		return 0
	}
	return float64(s.PartialsReused) / float64(total)
}

// CacheHitRate is the share of transition-matrix lookups served from
// cache.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// PatternCompression is the duplicate-column compression ratio of the
// alignment: sites per unique site pattern. Cell cost scales with
// patterns, so this is the "free" speedup real-shaped data gets
// before any kernel runs.
func (s Stats) PatternCompression() float64 {
	if s.NumPatterns == 0 {
		return 0
	}
	return float64(s.NumSites) / float64(s.NumPatterns)
}

// transition returns the cached per-branch-length entry (per-category
// matrices plus tip tables), computing it on miss with zero steady-
// state allocation: the backing buffer recycles from evicted entries
// and the eigen scratch is engine-owned.
func (e *Engine) transition(length float64) *pmatEntry {
	if pe, ok := e.pmats.get(length); ok {
		e.CacheHits++
		return pe
	}
	e.CacheMisses++
	S, C := e.nStates, e.nCats
	matsLen := C * S * S
	data := e.pmats.buffer(matsLen + C*S*(S+1))
	mats := data[:matsLen]
	tips := data[matsLen:]
	es := e.model.Eigen()
	for c := 0; c < C; c++ {
		es.TransitionProbsInto(length*e.rates.Rates[c], mats[c*S*S:(c+1)*S*S], e.expScratch)
	}
	buildTipTables(mats, tips, S, C)
	pe := &pmatEntry{length: length, data: data, mats: mats, tips: tips}
	e.pmats.put(pe)
	return pe
}

// OptimizeBranch implements phylo.Evaluator via the shared
// golden-section optimizer. Because the optimizer changes exactly one
// branch length between evaluations, incremental re-evaluation turns
// each of its probes into a path-to-root recomputation instead of a
// full pruning pass.
func (e *Engine) OptimizeBranch(t *phylo.Tree, n *phylo.Node, iterations int) float64 {
	return phylo.OptimizeBranchOf(e, t, n, iterations)
}

// TotalWork implements phylo.Evaluator.
func (e *Engine) TotalWork() float64 { return e.work }

// childTouched reports whether any child of n was recomputed this
// pass (post-order guarantees children are decided before parents).
func childTouched(n *phylo.Node, touched []bool) bool {
	for _, c := range n.Children {
		if touched[c.ID] {
			return true
		}
	}
	return false
}

// LogLikelihood evaluates the data's log-likelihood on tree t.
//
// With incremental re-evaluation enabled (the default), per-node
// conditional likelihoods cached from earlier evaluations — of this
// tree, of any clone seeded from it, or of this tree on a previous
// visit (per-tree banks) — are reused wherever the recorded subtree
// structure still matches, so the pruning kernel runs only on nodes
// whose subtree actually changed. The result is bit-identical to a
// full recomputation: reuse is only ever of values the full pass would
// recompute from identical inputs in identical order.
func (e *Engine) LogLikelihood(t *phylo.Tree) float64 {
	e.Evaluations++
	nn := len(t.Nodes)
	if nn != e.lastNodes {
		e.dropAllBanks()
		e.lastNodes = nn
	}
	if t.Root.IsLeaf() {
		// Degenerate single-node tree: the root readout over an
		// indicator vector needs no buffers at all.
		return e.rootLeafLogL(t.Root.Taxon)
	}
	for len(e.touched) < nn {
		e.touched = append(e.touched, false)
	}
	bk := e.bankFor(t.UID(), nn)
	e.evictBanks(bk)
	touched := e.touched[:nn]
	for i := range touched {
		touched[i] = false
	}
	t.PostOrder(func(n *phylo.Node) {
		rec := &bk.recs[n.ID]
		if e.incremental && rec.matches(n) && !childTouched(n, touched) {
			e.PartialsReused++
			return
		}
		touched[n.ID] = true
		e.PartialsComputed++
		if !n.IsLeaf() {
			// Leaves carry no state: their contribution is read from
			// the tip tables by the parent's kernel. Their records
			// still participate so a taxon change at a node ID
			// invalidates the parent chain.
			e.computeNode(bk, n)
		}
		if e.incremental {
			rec.record(n)
		}
	})
	rootBuf := bk.bufs[t.Root.ID]
	root := rootBuf.part
	rscale := rootBuf.scale
	pi := e.model.Freqs
	S, C := e.nStates, e.nCats
	var logL float64
	for p := 0; p < e.nPat; p++ {
		var site float64
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			var cat float64
			for s := 0; s < S; s++ {
				cat += pi[s] * root[base+s]
			}
			site += e.rates.Weights[c] * cat
		}
		if site <= 0 {
			site = math.SmallestNonzeroFloat64
		}
		logL += e.data.Weights[p] * (math.Log(site) + rscale[p])
	}
	return logL
}

// childRefFor resolves child c's kernel inputs — fetching (or
// computing) its transition entry and accounting work and cell
// counters. The returned ref's matrix slices stay valid until the
// next transition-cache miss, so callers must consume a ref before
// fetching more than one further child (the fused pair holds two at
// once, which the cache's minimum capacity guarantees).
func (e *Engine) childRefFor(bk *bank, c *phylo.Node) childRef {
	pe := e.transition(c.Length)
	S, C, nPat := e.nStates, e.nCats, e.nPat
	e.work += float64(nPat+1) * float64(C) * float64(S) * float64(S)
	if c.IsLeaf() {
		e.TipCells += int64(nPat) * int64(C) * int64(S)
		return childRef{tips: pe.tips, idx: e.tipIdx[c.Taxon]}
	}
	e.InternalCells += int64(nPat) * int64(C) * int64(S)
	cb := bk.bufs[c.ID]
	return childRef{mats: pe.mats, part: cb.part, scale: cb.scale}
}

// computeNode runs the pruning kernels for internal node n into a
// buffer this bank may write, fusing the first two children into a
// single sweep and accumulating any further children. Each child's
// transition entry is fetched immediately before the kernel that
// consumes it, so cache eviction can never recycle a matrix still in
// use.
func (e *Engine) computeNode(bk *bank, n *phylo.Node) {
	buf := e.writableBuf(bk, n.ID)
	part, scale := buf.part, buf.scale
	S, C, nPat := e.nStates, e.nCats, e.nPat

	kids := n.Children
	if len(kids) == 1 {
		r := e.childRefFor(bk, kids[0])
		if r.isTip() {
			writeT(part, scale, &r, nPat, C, S)
		} else {
			writeI(part, scale, &r, nPat, C, S)
		}
		rescale(part, scale, nPat, C, S)
		return
	}

	ra := e.childRefFor(bk, kids[0])
	rb := e.childRefFor(bk, kids[1])
	a, b := &ra, &rb
	if a.isTip() && !b.isTip() {
		// Multiplication commutes bitwise in IEEE-754, so normalizing
		// tip-first pairs to internal-first halves the fused kernel
		// set without changing any value.
		a, b = b, a
	}
	if S == 4 {
		switch {
		case a.isTip():
			fuseTT4(part, scale, a, b, nPat, C)
		case b.isTip():
			fuseIT4(part, scale, a, b, nPat, C)
		default:
			fuseII4(part, scale, a, b, nPat, C)
		}
	} else {
		switch {
		case a.isTip():
			fuseTTG(part, scale, a, b, nPat, C, S)
		case b.isTip():
			fuseITG(part, scale, a, b, nPat, C, S)
		default:
			fuseIIG(part, scale, a, b, nPat, C, S)
		}
	}
	for i := 2; i < len(kids); i++ {
		r := e.childRefFor(bk, kids[i])
		if S == 4 {
			if r.isTip() {
				accT4(part, &r, nPat, C)
			} else {
				accI4(part, scale, &r, nPat, C)
			}
		} else {
			if r.isTip() {
				accTG(part, &r, nPat, C, S)
			} else {
				accIG(part, scale, &r, nPat, C, S)
			}
		}
	}
	rescale(part, scale, nPat, C, S)
}

// rootLeafLogL evaluates the degenerate tree whose root is a leaf:
// the site likelihood is the stationary frequency of the observed
// state (or the left-to-right frequency sum for missing data), summed
// over rate categories exactly as the buffered readout would.
func (e *Engine) rootLeafLogL(taxon int) float64 {
	pi := e.model.Freqs
	S, C := e.nStates, e.nCats
	idx := e.tipIdx[taxon]
	var piSum float64
	for s := 0; s < S; s++ {
		piSum += pi[s]
	}
	var logL float64
	for p := 0; p < e.nPat; p++ {
		cat := piSum
		if ti := int(idx[p]); ti < S {
			cat = pi[ti]
		}
		var site float64
		for c := 0; c < C; c++ {
			site += e.rates.Weights[c] * cat
		}
		if site <= 0 {
			site = math.SmallestNonzeroFloat64
		}
		logL += e.data.Weights[p] * math.Log(site)
	}
	return logL
}
