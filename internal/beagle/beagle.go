// Package beagle is this repository's analogue of BEAGLE
// (Broad-platform Evolutionary Analysis General Likelihood Evaluator),
// the library the paper's group built "to speed up the likelihood
// calculations at the heart of most phylogenetic analysis programs"
// (Section II-A). The original offloads to GPUs; here the same role is
// played by a CPU-optimized evaluation engine that is exactly
// exchangeable with the reference implementation in internal/phylo:
//
//   - flat structure-of-arrays buffers allocated once per tree shape,
//   - transition-matrix caching keyed by (category, branch length), so
//     repeated evaluations of the same tree (the GA's dominant access
//     pattern) skip the matrix exponentials entirely,
//   - a hand-unrolled 4-state kernel for nucleotide models (the
//     overwhelmingly common case) with slice-bound hoisting,
//   - rescaling applied per node only when magnitudes demand it.
//
// Correctness is pinned to the reference implementation by
// property tests: both engines must agree to ~1e-9 on random trees,
// models and rate mixtures.
package beagle

import (
	"fmt"
	"math"

	"lattice/internal/phylo"
)

// Engine evaluates tree log-likelihoods. It is not safe for concurrent
// use; create one engine per goroutine.
type Engine struct {
	data  *phylo.PatternData
	model *phylo.Model
	rates *phylo.SiteRates

	nStates int
	nCats   int
	nPat    int

	// partials[node] holds [pat*cats*states] conditionals; scales
	// holds per-node, per-pattern log scaling factors.
	partials [][]float64
	scales   [][]float64

	// pmatCache maps a branch length to its per-category transition
	// matrices, flattened. The GA mutates one branch per generation,
	// so almost every edge of an evaluated tree has been seen before.
	pmatCache map[float64][]float64
	// cacheCap bounds the cache (branch lengths are continuous; the
	// optimizer probes new values constantly).
	cacheCap int

	// Evaluations counts LogLikelihood calls; CacheHits counts edges
	// served from the transition cache.
	Evaluations int
	CacheHits   int
	CacheMisses int
	// work accumulates evaluation cost in cell updates (the same unit
	// as phylo.Likelihood.Work).
	work float64
}

// Engine implements phylo.Evaluator.
var _ phylo.Evaluator = (*Engine)(nil)

// New builds an engine for the given data, model and rate mixture.
func New(data *phylo.PatternData, model *phylo.Model, rates *phylo.SiteRates) (*Engine, error) {
	if data.Type != model.Type {
		return nil, fmt.Errorf("beagle: data type %v does not match model type %v", data.Type, model.Type)
	}
	if rates == nil {
		var err error
		rates, err = phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1)
		if err != nil {
			return nil, err
		}
	}
	return &Engine{
		data:      data,
		model:     model,
		rates:     rates,
		nStates:   model.Type.NumStates(),
		nCats:     rates.NumCats(),
		nPat:      data.NumPatterns(),
		pmatCache: make(map[float64][]float64),
		cacheCap:  4096,
	}, nil
}

// transition returns the flattened per-category transition matrices
// for a branch length, from cache when possible.
func (e *Engine) transition(length float64) []float64 {
	if m, ok := e.pmatCache[length]; ok {
		e.CacheHits++
		return m
	}
	e.CacheMisses++
	S := e.nStates
	out := make([]float64, e.nCats*S*S)
	var scratch *phylo.Matrix
	for c := 0; c < e.nCats; c++ {
		scratch = e.model.Eigen().TransitionMatrix(length*e.rates.Rates[c], scratch)
		copy(out[c*S*S:(c+1)*S*S], scratch.Data)
	}
	if len(e.pmatCache) >= e.cacheCap {
		// Simple wholesale eviction: the working set (one tree's
		// branch lengths) is tiny compared to the cap, so this fires
		// rarely and keeps the code branch-free elsewhere.
		e.pmatCache = make(map[float64][]float64, e.cacheCap)
	}
	e.pmatCache[length] = out
	return out
}

func (e *Engine) ensureBuffers(n int) {
	for len(e.partials) < n {
		e.partials = append(e.partials, nil)
		e.scales = append(e.scales, nil)
	}
	size := e.nPat * e.nCats * e.nStates
	for i := 0; i < n; i++ {
		if len(e.partials[i]) != size {
			e.partials[i] = make([]float64, size)
			e.scales[i] = make([]float64, e.nPat)
		}
	}
}

// OptimizeBranch implements phylo.Evaluator via the shared
// golden-section optimizer.
func (e *Engine) OptimizeBranch(t *phylo.Tree, n *phylo.Node, iterations int) float64 {
	return phylo.OptimizeBranchOf(e, t, n, iterations)
}

// TotalWork implements phylo.Evaluator.
func (e *Engine) TotalWork() float64 { return e.work }

// LogLikelihood evaluates the data's log-likelihood on tree t.
func (e *Engine) LogLikelihood(t *phylo.Tree) float64 {
	e.Evaluations++
	e.ensureBuffers(len(t.Nodes))
	t.PostOrder(func(n *phylo.Node) {
		part := e.partials[n.ID]
		scale := e.scales[n.ID]
		for i := range scale {
			scale[i] = 0
		}
		if n.IsLeaf() {
			e.fillLeaf(part, n.Taxon)
			return
		}
		for i := range part {
			part[i] = 1
		}
		for _, child := range n.Children {
			pm := e.transition(child.Length)
			cpart := e.partials[child.ID]
			cscale := e.scales[child.ID]
			for p := 0; p < e.nPat; p++ {
				scale[p] += cscale[p]
			}
			if e.nStates == 4 {
				e.accumulate4(part, cpart, pm)
			} else {
				e.accumulateGeneric(part, cpart, pm)
			}
			e.work += float64(e.nPat+1) * float64(e.nCats) * float64(e.nStates) * float64(e.nStates)
		}
		e.rescale(part, scale)
	})
	root := e.partials[t.Root.ID]
	rscale := e.scales[t.Root.ID]
	pi := e.model.Freqs
	S, C := e.nStates, e.nCats
	var logL float64
	for p := 0; p < e.nPat; p++ {
		var site float64
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			var cat float64
			for s := 0; s < S; s++ {
				cat += pi[s] * root[base+s]
			}
			site += e.rates.Weights[c] * cat
		}
		if site <= 0 {
			site = math.SmallestNonzeroFloat64
		}
		logL += e.data.Weights[p] * (math.Log(site) + rscale[p])
	}
	return logL
}

// accumulate4 is the unrolled nucleotide kernel: for every
// (pattern, category) cell it multiplies the running partial by
// P · childPartial with the 4×4 product fully unrolled.
func (e *Engine) accumulate4(part, cpart, pm []float64) {
	C := e.nCats
	cells := e.nPat * C
	for cell := 0; cell < cells; cell++ {
		base := cell * 4
		m := pm[(cell%C)*16 : (cell%C)*16+16]
		c0, c1, c2, c3 := cpart[base], cpart[base+1], cpart[base+2], cpart[base+3]
		part[base+0] *= m[0]*c0 + m[1]*c1 + m[2]*c2 + m[3]*c3
		part[base+1] *= m[4]*c0 + m[5]*c1 + m[6]*c2 + m[7]*c3
		part[base+2] *= m[8]*c0 + m[9]*c1 + m[10]*c2 + m[11]*c3
		part[base+3] *= m[12]*c0 + m[13]*c1 + m[14]*c2 + m[15]*c3
	}
}

// accumulateGeneric handles amino-acid and codon state spaces.
func (e *Engine) accumulateGeneric(part, cpart, pm []float64) {
	S, C := e.nStates, e.nCats
	for p := 0; p < e.nPat; p++ {
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			mat := pm[c*S*S : (c+1)*S*S]
			cvec := cpart[base : base+S]
			out := part[base : base+S]
			for s := 0; s < S; s++ {
				row := mat[s*S : s*S+S]
				var sum float64
				for x := 0; x < S; x++ {
					sum += row[x] * cvec[x]
				}
				out[s] *= sum
			}
		}
	}
}

// rescale guards against underflow on deep trees.
func (e *Engine) rescale(part, scale []float64) {
	S, C := e.nStates, e.nCats
	stride := C * S
	for p := 0; p < e.nPat; p++ {
		base := p * stride
		maxv := 0.0
		for i := base; i < base+stride; i++ {
			if part[i] > maxv {
				maxv = part[i]
			}
		}
		if maxv > 0 && maxv < 1e-100 {
			inv := 1 / maxv
			for i := base; i < base+stride; i++ {
				part[i] *= inv
			}
			scale[p] += math.Log(maxv)
		}
	}
}

func (e *Engine) fillLeaf(part []float64, taxon int) {
	S, C := e.nStates, e.nCats
	nt := e.data.NumTaxa
	for p := 0; p < e.nPat; p++ {
		st := e.data.States[p*nt+taxon]
		base := p * C * S
		if st < 0 {
			for i := base; i < base+C*S; i++ {
				part[i] = 1
			}
			continue
		}
		for i := base; i < base+C*S; i++ {
			part[i] = 0
		}
		for c := 0; c < C; c++ {
			part[base+c*S+int(st)] = 1
		}
	}
}
