package beagle

// Per-tree conditional-likelihood banks.
//
// PR2 kept one global set of per-node buffers, so an engine that
// scored several trees alternately (a pool worker's share of a GA
// population) overwrote each tree's partials with the next tree's and
// re-derived everything on every revisit. Banks give each tree object
// its own record/buffer set, keyed by phylo.Tree.UID, with the
// GARLI-style twist that makes it affordable: buffers are shared
// copy-on-write between banks. A new tree (typically a clone of the
// last one evaluated) seeds its bank from the most recently evaluated
// bank — records copied, buffers shared by reference — so it pays only
// for the nodes its mutations actually dirty.
//
// Soundness: a bank's invariant is that bufs[id] holds exactly the
// conditional likelihoods of the subtree described by recs[id]
// whenever recs[id] is valid. Seeding copies records and buffer
// pointers together from a bank satisfying the invariant; recomputing
// a node replaces the buffer (in place only when this bank is the sole
// holder) and re-records in the same step; and a buffer referenced by
// any other bank is never written (copy-on-write), so no bank can
// invalidate another's state.
//
// Memory is bounded by a byte budget: each bank accounts the full size
// of every buffer reference it holds (shared buffers are counted once
// per holder, so the accounting is an upper bound on real usage), and
// least-recently-evaluated banks are dropped until the total fits.
// Dropped references recycle through free lists — at steady state the
// engine allocates nothing.

import "container/list"

// claBuf is one node's conditional-likelihood block: the partials
// laid out [pattern*cats*states] plus the per-pattern log scaling
// factors. refs counts the banks currently holding it.
type claBuf struct {
	part  []float64
	scale []float64
	refs  int
}

// bank is one tree's cached evaluation state: the structural records
// and buffer references, indexed by node ID.
type bank struct {
	uid   uint64
	recs  []nodeRecord
	bufs  []*claBuf
	elem  *list.Element // position in the engine's bank LRU
	bytes int64         // accounted buffer bytes (one share per reference)
}

// maxBanks bounds the bank count independently of the byte budget, so
// searches over tiny trees cannot grow the bank map without limit.
const maxBanks = 1024

// bankFor returns the evaluation bank for tree uid with nn nodes,
// creating (and, in incremental mode, seeding) it on first sight.
// The returned bank becomes the most recently used and the seed source
// for the next new tree.
func (e *Engine) bankFor(uid uint64, nn int) *bank {
	if !e.incremental {
		// Without incremental reuse every node recomputes anyway; a
		// single scratch bank serves every tree.
		if e.lastBank != nil {
			return e.lastBank
		}
		uid = 0
	}
	if bk, ok := e.banks[uid]; ok {
		e.BankHits++
		e.bankLRU.MoveToFront(bk.elem)
		e.lastBank = bk
		return bk
	}
	e.BankMisses++
	bk := e.newBank(uid, nn)
	if e.incremental && e.lastBank != nil && len(e.lastBank.recs) == nn {
		e.seedBank(bk, e.lastBank)
	}
	e.banks[uid] = bk
	bk.elem = e.bankLRU.PushFront(bk)
	e.lastBank = bk
	return bk
}

// newBank returns an empty bank sized for nn nodes, recycled when
// possible.
func (e *Engine) newBank(uid uint64, nn int) *bank {
	var bk *bank
	if k := len(e.freeBanks); k > 0 {
		bk = e.freeBanks[k-1]
		e.freeBanks = e.freeBanks[:k-1]
	} else {
		bk = &bank{}
	}
	bk.uid = uid
	if cap(bk.recs) < nn {
		recs := make([]nodeRecord, nn)
		copy(recs, bk.recs)
		bk.recs = recs
		bk.bufs = make([]*claBuf, nn)
	}
	bk.recs = bk.recs[:nn]
	bk.bufs = bk.bufs[:nn]
	for i := range bk.recs {
		bk.recs[i].valid = false
		bk.bufs[i] = nil
	}
	bk.bytes = 0
	return bk
}

// seedBank copies src's records into dst (recycling dst's child
// slices) and shares src's buffers by reference.
func (e *Engine) seedBank(dst, src *bank) {
	for i := range src.recs {
		sr := &src.recs[i]
		dr := &dst.recs[i]
		dr.valid = sr.valid
		dr.taxon = sr.taxon
		dr.childIDs = append(dr.childIDs[:0], sr.childIDs...)
		dr.childLens = append(dr.childLens[:0], sr.childLens...)
		if b := src.bufs[i]; b != nil {
			b.refs++
			dst.bufs[i] = b
			dst.bytes += e.claBytes
		}
	}
	e.bankBytes += dst.bytes
}

// writableBuf returns a buffer for node id that this bank is free to
// overwrite: the existing one when this bank is its sole holder, a
// fresh (recycled) one otherwise — classic copy-on-write, except no
// copy is ever needed because compute kernels fully overwrite the
// buffer.
func (e *Engine) writableBuf(bk *bank, id int) *claBuf {
	b := bk.bufs[id]
	if b != nil {
		if b.refs == 1 {
			return b
		}
		b.refs-- // still held elsewhere; bank's byte share moves to the new buf
		nb := e.obtainBuf()
		bk.bufs[id] = nb
		return nb
	}
	nb := e.obtainBuf()
	bk.bufs[id] = nb
	bk.bytes += e.claBytes
	e.bankBytes += e.claBytes
	return nb
}

// obtainBuf returns a single-reference buffer of the engine's current
// shape, recycled when possible. Contents are unspecified; every
// kernel's first pass over a node fully overwrites part and scale.
func (e *Engine) obtainBuf() *claBuf {
	if k := len(e.freeBufs); k > 0 {
		b := e.freeBufs[k-1]
		e.freeBufs = e.freeBufs[:k-1]
		b.refs = 1
		e.BufRecycled++
		return b
	}
	return &claBuf{
		part:  make([]float64, e.nPat*e.nCats*e.nStates),
		scale: make([]float64, e.nPat),
		refs:  1,
	}
}

// releaseBuf drops one reference, returning the buffer to the free
// list when it was the last.
func (e *Engine) releaseBuf(b *claBuf) {
	b.refs--
	if b.refs > 0 {
		return
	}
	if len(e.freeBufs) < e.maxFreeBufs {
		e.freeBufs = append(e.freeBufs, b)
	}
}

// dropBank releases every buffer reference a bank holds and recycles
// the bank shell.
func (e *Engine) dropBank(bk *bank) {
	for i, b := range bk.bufs {
		if b != nil {
			e.releaseBuf(b)
			bk.bufs[i] = nil
		}
	}
	e.bankBytes -= bk.bytes
	bk.bytes = 0
	delete(e.banks, bk.uid)
	e.bankLRU.Remove(bk.elem)
	bk.elem = nil
	if e.lastBank == bk {
		e.lastBank = nil
	}
	if len(e.freeBanks) < 64 {
		e.freeBanks = append(e.freeBanks, bk)
	}
}

// dropAllBanks discards every bank — the wholesale invalidation used
// on tree-size changes, model swaps, and InvalidateAll.
func (e *Engine) dropAllBanks() {
	for e.bankLRU.Len() > 0 {
		e.dropBank(e.bankLRU.Front().Value.(*bank))
	}
}

// evictBanks drops least-recently-evaluated banks (never `keep`, the
// bank being evaluated) until the byte budget and bank-count bound are
// met.
func (e *Engine) evictBanks(keep *bank) {
	for (e.bankBytes > e.bankBudget || e.bankLRU.Len() > maxBanks) && e.bankLRU.Len() > 1 {
		back := e.bankLRU.Back().Value.(*bank)
		if back == keep {
			return
		}
		e.dropBank(back)
		e.BankEvictions++
	}
}
