package beagle

import "math"

// Pruning kernels.
//
// PR2 evaluated an internal node as init-to-one plus one full
// multiply-accumulate pass per child, each pass re-deriving its
// per-category matrix slice with a `cell % C` modulo and re-walking
// part. These kernels are fused and blocked: the dominant binary-node
// case computes part = (P₁·c₁) ⊙ (P₂·c₂) in a single sweep (writing
// part once instead of three times), loops run pattern-major with the
// category matrix sliced per cell — no modulo, no init pass — and the
// child-scale addition folds into the same per-pattern iteration.
//
// Every kernel is bit-identical to the PR2 sequence it replaces:
//   - fusion drops only the multiplications by the initial 1.0, and
//     1*a == a exactly in IEEE-754;
//   - per-cell arithmetic keeps the exact left-to-right operation
//     order of the old kernels, and cells are independent, so loop
//     restructuring cannot change any value;
//   - scale folding reorders only additions of +0 (leaf scales are
//     identically zero, and internal scales — sums of negative logs —
//     are never -0), each of which is an IEEE-754 identity.
//
// Kernel naming: fuse = binary write, acc = multiply-accumulate for
// third and later children, write = unary write; I/T = internal/tip
// child; 4 = unrolled nucleotide, G = generic state count.

// childRef describes one child's contribution to a pruning step:
// either an internal child (mats/part/scale) or a tip child
// (tips/idx), never both.
type childRef struct {
	mats  []float64 // internal: per-category S×S transition matrices
	part  []float64 // internal: child conditional likelihoods
	scale []float64 // internal: child per-pattern log scaling
	tips  []float64 // tip: per-(state,category) column tables
	idx   []uint8   // tip: per-pattern table index (S = missing)
}

func (r *childRef) isTip() bool { return r.idx != nil }

// --- 4-state (nucleotide) kernels ---

func fuseII4(part, scale []float64, a, b *childRef, nPat, C int) {
	ap, bp := a.part, b.part
	as, bs := a.scale, b.scale
	for p := 0; p < nPat; p++ {
		scale[p] = as[p] + bs[p]
		base := p * C * 4
		for c := 0; c < C; c++ {
			m := a.mats[c*16 : c*16+16]
			q := b.mats[c*16 : c*16+16]
			i := base + c*4
			a0, a1, a2, a3 := ap[i], ap[i+1], ap[i+2], ap[i+3]
			b0, b1, b2, b3 := bp[i], bp[i+1], bp[i+2], bp[i+3]
			part[i+0] = (m[0]*a0 + m[1]*a1 + m[2]*a2 + m[3]*a3) * (q[0]*b0 + q[1]*b1 + q[2]*b2 + q[3]*b3)
			part[i+1] = (m[4]*a0 + m[5]*a1 + m[6]*a2 + m[7]*a3) * (q[4]*b0 + q[5]*b1 + q[6]*b2 + q[7]*b3)
			part[i+2] = (m[8]*a0 + m[9]*a1 + m[10]*a2 + m[11]*a3) * (q[8]*b0 + q[9]*b1 + q[10]*b2 + q[11]*b3)
			part[i+3] = (m[12]*a0 + m[13]*a1 + m[14]*a2 + m[15]*a3) * (q[12]*b0 + q[13]*b1 + q[14]*b2 + q[15]*b3)
		}
	}
}

func fuseIT4(part, scale []float64, in, tp *childRef, nPat, C int) {
	ap, as := in.part, in.scale
	tips, idx := tp.tips, tp.idx
	for p := 0; p < nPat; p++ {
		scale[p] = as[p]
		ti := int(idx[p]) * C
		base := p * C * 4
		for c := 0; c < C; c++ {
			m := in.mats[c*16 : c*16+16]
			tc := tips[(ti+c)*4 : (ti+c)*4+4]
			i := base + c*4
			a0, a1, a2, a3 := ap[i], ap[i+1], ap[i+2], ap[i+3]
			part[i+0] = (m[0]*a0 + m[1]*a1 + m[2]*a2 + m[3]*a3) * tc[0]
			part[i+1] = (m[4]*a0 + m[5]*a1 + m[6]*a2 + m[7]*a3) * tc[1]
			part[i+2] = (m[8]*a0 + m[9]*a1 + m[10]*a2 + m[11]*a3) * tc[2]
			part[i+3] = (m[12]*a0 + m[13]*a1 + m[14]*a2 + m[15]*a3) * tc[3]
		}
	}
}

func fuseTT4(part, scale []float64, a, b *childRef, nPat, C int) {
	at, ai := a.tips, a.idx
	bt, bi := b.tips, b.idx
	for p := 0; p < nPat; p++ {
		scale[p] = 0
		ta := int(ai[p]) * C
		tb := int(bi[p]) * C
		base := p * C * 4
		for c := 0; c < C; c++ {
			ac := at[(ta+c)*4 : (ta+c)*4+4]
			bc := bt[(tb+c)*4 : (tb+c)*4+4]
			i := base + c*4
			part[i+0] = ac[0] * bc[0]
			part[i+1] = ac[1] * bc[1]
			part[i+2] = ac[2] * bc[2]
			part[i+3] = ac[3] * bc[3]
		}
	}
}

func accI4(part, scale []float64, a *childRef, nPat, C int) {
	ap, as := a.part, a.scale
	for p := 0; p < nPat; p++ {
		scale[p] += as[p]
		base := p * C * 4
		for c := 0; c < C; c++ {
			m := a.mats[c*16 : c*16+16]
			i := base + c*4
			a0, a1, a2, a3 := ap[i], ap[i+1], ap[i+2], ap[i+3]
			part[i+0] *= m[0]*a0 + m[1]*a1 + m[2]*a2 + m[3]*a3
			part[i+1] *= m[4]*a0 + m[5]*a1 + m[6]*a2 + m[7]*a3
			part[i+2] *= m[8]*a0 + m[9]*a1 + m[10]*a2 + m[11]*a3
			part[i+3] *= m[12]*a0 + m[13]*a1 + m[14]*a2 + m[15]*a3
		}
	}
}

func accT4(part []float64, a *childRef, nPat, C int) {
	tips, idx := a.tips, a.idx
	for p := 0; p < nPat; p++ {
		ti := int(idx[p]) * C
		base := p * C * 4
		for c := 0; c < C; c++ {
			tc := tips[(ti+c)*4 : (ti+c)*4+4]
			i := base + c*4
			part[i+0] *= tc[0]
			part[i+1] *= tc[1]
			part[i+2] *= tc[2]
			part[i+3] *= tc[3]
		}
	}
}

// --- generic (amino-acid, codon) kernels ---

func fuseIIG(part, scale []float64, a, b *childRef, nPat, C, S int) {
	for p := 0; p < nPat; p++ {
		scale[p] = a.scale[p] + b.scale[p]
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			m1 := a.mats[c*S*S:]
			m2 := b.mats[c*S*S:]
			v1 := a.part[base : base+S]
			v2 := b.part[base : base+S]
			out := part[base : base+S]
			for s := 0; s < S; s++ {
				r1 := m1[s*S : s*S+S]
				r2 := m2[s*S : s*S+S]
				var d1, d2 float64
				for x := 0; x < S; x++ {
					d1 += r1[x] * v1[x]
				}
				for x := 0; x < S; x++ {
					d2 += r2[x] * v2[x]
				}
				out[s] = d1 * d2
			}
		}
	}
}

func fuseITG(part, scale []float64, in, tp *childRef, nPat, C, S int) {
	tips, idx := tp.tips, tp.idx
	for p := 0; p < nPat; p++ {
		scale[p] = in.scale[p]
		ti := int(idx[p]) * C
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			m := in.mats[c*S*S:]
			v := in.part[base : base+S]
			tc := tips[(ti+c)*S : (ti+c)*S+S]
			out := part[base : base+S]
			for s := 0; s < S; s++ {
				r := m[s*S : s*S+S]
				var d float64
				for x := 0; x < S; x++ {
					d += r[x] * v[x]
				}
				out[s] = d * tc[s]
			}
		}
	}
}

func fuseTTG(part, scale []float64, a, b *childRef, nPat, C, S int) {
	at, ai := a.tips, a.idx
	bt, bi := b.tips, b.idx
	for p := 0; p < nPat; p++ {
		scale[p] = 0
		ta := int(ai[p]) * C
		tb := int(bi[p]) * C
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			ac := at[(ta+c)*S : (ta+c)*S+S]
			bc := bt[(tb+c)*S : (tb+c)*S+S]
			out := part[base : base+S]
			for s := 0; s < S; s++ {
				out[s] = ac[s] * bc[s]
			}
		}
	}
}

func accIG(part, scale []float64, a *childRef, nPat, C, S int) {
	for p := 0; p < nPat; p++ {
		scale[p] += a.scale[p]
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			m := a.mats[c*S*S:]
			v := a.part[base : base+S]
			out := part[base : base+S]
			for s := 0; s < S; s++ {
				r := m[s*S : s*S+S]
				var d float64
				for x := 0; x < S; x++ {
					d += r[x] * v[x]
				}
				out[s] *= d
			}
		}
	}
}

func accTG(part []float64, a *childRef, nPat, C, S int) {
	tips, idx := a.tips, a.idx
	for p := 0; p < nPat; p++ {
		ti := int(idx[p]) * C
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			tc := tips[(ti+c)*S : (ti+c)*S+S]
			out := part[base : base+S]
			for s := 0; s < S; s++ {
				out[s] *= tc[s]
			}
		}
	}
}

// --- unary-child kernels (degenerate nodes from hand-built trees) ---

func writeI(part, scale []float64, a *childRef, nPat, C, S int) {
	copy(scale[:nPat], a.scale)
	for p := 0; p < nPat; p++ {
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			m := a.mats[c*S*S:]
			v := a.part[base : base+S]
			out := part[base : base+S]
			for s := 0; s < S; s++ {
				r := m[s*S : s*S+S]
				var d float64
				for x := 0; x < S; x++ {
					d += r[x] * v[x]
				}
				out[s] = d
			}
		}
	}
}

func writeT(part, scale []float64, a *childRef, nPat, C, S int) {
	tips, idx := a.tips, a.idx
	for p := 0; p < nPat; p++ {
		scale[p] = 0
		ti := int(idx[p]) * C
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			tc := tips[(ti+c)*S : (ti+c)*S+S]
			copy(part[base:base+S], tc)
		}
	}
}

// rescale guards against underflow on deep trees. Unchanged from PR2.
func rescale(part, scale []float64, nPat, C, S int) {
	stride := C * S
	for p := 0; p < nPat; p++ {
		base := p * stride
		maxv := 0.0
		for i := base; i < base+stride; i++ {
			if part[i] > maxv {
				maxv = part[i]
			}
		}
		if maxv > 0 && maxv < 1e-100 {
			inv := 1 / maxv
			for i := base; i < base+stride; i++ {
				part[i] *= inv
			}
			scale[p] += math.Log(maxv)
		}
	}
}
