package beagle

import (
	"math"
	"testing"
	"testing/quick"

	"lattice/internal/phylo"
	"lattice/internal/sim"
)

// fixture builds a random (tree, data, model, rates) configuration.
type fixture struct {
	tree  *phylo.Tree
	data  *phylo.PatternData
	model *phylo.Model
	rates *phylo.SiteRates
}

func newFixture(t testing.TB, seed int64, dt phylo.DataType, ncats, ntaxa, nsites int) *fixture {
	t.Helper()
	rng := sim.NewRNG(seed)
	var model *phylo.Model
	var err error
	switch dt {
	case phylo.Nucleotide:
		model, err = phylo.NewGTR([6]float64{1.1, 3.2, 0.8, 1.3, 4.0, 1}, []float64{0.28, 0.22, 0.26, 0.24})
	case phylo.AminoAcid:
		model, err = phylo.NewEmpiricalAA()
	default:
		model, err = phylo.NewGY94(2, 0.4, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	var rates *phylo.SiteRates
	if ncats <= 1 {
		rates, err = phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1)
	} else {
		rates, err = phylo.NewSiteRates(phylo.RateGamma, 0.6, 0, ncats)
	}
	if err != nil {
		t.Fatal(err)
	}
	tree := phylo.RandomTree(phylo.TaxonNames(ntaxa), 0.12, rng)
	al, err := phylo.SimulateAlignment(tree, model, rates, nsites, rng)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := al.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{tree: tree, data: pd, model: model, rates: rates}
}

func TestAgreesWithReference(t *testing.T) {
	cases := []struct {
		name   string
		dt     phylo.DataType
		ncats  int
		ntaxa  int
		nsites int
	}{
		{"nuc-flat", phylo.Nucleotide, 1, 8, 300},
		{"nuc-gamma", phylo.Nucleotide, 4, 12, 500},
		{"aa-gamma", phylo.AminoAcid, 4, 6, 120},
		{"codon-flat", phylo.Codon, 1, 5, 40},
		{"deep-tree", phylo.Nucleotide, 4, 40, 200},
	}
	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fx := newFixture(t, int64(100+i), c.dt, c.ncats, c.ntaxa, c.nsites)
			ref, err := phylo.NewLikelihood(fx.data, fx.model, fx.rates)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := New(fx.data, fx.model, fx.rates)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.LogLikelihood(fx.tree)
			got := eng.LogLikelihood(fx.tree)
			if math.Abs(got-want) > 1e-8*math.Abs(want) {
				t.Errorf("beagle %v != reference %v", got, want)
			}
		})
	}
}

// Property: for random seeds and branch scalings, both engines agree.
func TestAgreementProperty(t *testing.T) {
	fx := newFixture(t, 7, phylo.Nucleotide, 4, 10, 300)
	ref, _ := phylo.NewLikelihood(fx.data, fx.model, fx.rates)
	eng, _ := New(fx.data, fx.model, fx.rates)
	f := func(seed int64, scaleRaw uint8) bool {
		rng := sim.NewRNG(seed)
		tr := fx.tree.Clone()
		scale := 0.2 + float64(scaleRaw)/64
		tr.PostOrder(func(n *phylo.Node) {
			if n.Parent != nil {
				n.Length *= scale * rng.Uniform(0.5, 1.5)
			}
		})
		a := ref.LogLikelihood(tr)
		b := eng.LogLikelihood(tr)
		return math.Abs(a-b) <= 1e-8*math.Abs(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTransitionCacheEffectiveness(t *testing.T) {
	fx := newFixture(t, 9, phylo.Nucleotide, 4, 10, 300)
	eng, _ := New(fx.data, fx.model, fx.rates)
	// Exercise the transition cache in isolation: with incremental
	// re-evaluation on, repeated same-tree evaluations skip the pruning
	// pass entirely and never consult the cache.
	eng.SetIncremental(false)
	eng.LogLikelihood(fx.tree)
	missesAfterFirst := eng.CacheMisses
	// Re-evaluating the same tree must be a pure cache hit.
	for i := 0; i < 5; i++ {
		eng.LogLikelihood(fx.tree)
	}
	if eng.CacheMisses != missesAfterFirst {
		t.Errorf("repeated evaluation missed the transition cache: %d → %d",
			missesAfterFirst, eng.CacheMisses)
	}
	if eng.CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestCacheEviction(t *testing.T) {
	fx := newFixture(t, 10, phylo.Nucleotide, 1, 6, 100)
	eng, _ := New(fx.data, fx.model, fx.rates)
	eng.SetCacheCap(8)
	// Probe more distinct branch lengths than the cap.
	for i := 1; i <= 50; i++ {
		eng.transition(float64(i) / 100)
	}
	if eng.pmats.size() > 8 {
		t.Errorf("cache grew to %d entries past cap 8", eng.pmats.size())
	}
	if eng.pmats.evictions == 0 {
		t.Error("no evictions recorded despite probing past the cap")
	}
	// LRU order: the most recently probed lengths must be resident.
	for i := 43; i <= 50; i++ {
		if _, ok := eng.pmats.get(float64(i) / 100); !ok {
			t.Errorf("recently used length %v was evicted", float64(i)/100)
		}
	}
	// Still correct after eviction.
	ref, _ := phylo.NewLikelihood(fx.data, fx.model, fx.rates)
	a, b := ref.LogLikelihood(fx.tree), eng.LogLikelihood(fx.tree)
	if math.Abs(a-b) > 1e-8*math.Abs(a) {
		t.Errorf("post-eviction mismatch: %v vs %v", b, a)
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	fx := newFixture(t, 11, phylo.Nucleotide, 1, 6, 100)
	aa, _ := phylo.NewPoissonAA()
	if _, err := New(fx.data, aa, fx.rates); err == nil {
		t.Error("expected error pairing nucleotide data with amino acid model")
	}
}

func TestMissingDataAgreement(t *testing.T) {
	al := &phylo.Alignment{
		Type:  phylo.Nucleotide,
		Names: []string{"a", "b", "c", "d"},
		Seqs:  []string{"AC-TNNAC", "ACGTACGT", "ANGTAC-T", "TCGAACGT"},
	}
	pd, err := al.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := phylo.NewJC69()
	rs, _ := phylo.NewSiteRates(phylo.RateGamma, 0.5, 0, 4)
	tr, err := phylo.ParseNewick("((a:0.1,b:0.2):0.05,c:0.3,d:0.15);",
		map[string]int{"a": 0, "b": 1, "c": 2, "d": 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := phylo.NewLikelihood(pd, m, rs)
	eng, _ := New(pd, m, rs)
	a, b := ref.LogLikelihood(tr), eng.LogLikelihood(tr)
	if math.Abs(a-b) > 1e-10*math.Abs(a) {
		t.Errorf("missing-data mismatch: %v vs %v", b, a)
	}
}

// BenchmarkBeagleVsReference quantifies the speedup the optimized
// engine delivers on the GA's dominant access pattern (re-evaluating a
// tree whose branch lengths are mostly unchanged).
func BenchmarkBeagleVsReference(b *testing.B) {
	fx := newFixture(b, 12, phylo.Nucleotide, 4, 16, 1000)
	b.Run("reference", func(b *testing.B) {
		ref, _ := phylo.NewLikelihood(fx.data, fx.model, fx.rates)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ref.LogLikelihood(fx.tree)
		}
	})
	b.Run("beagle", func(b *testing.B) {
		eng, _ := New(fx.data, fx.model, fx.rates)
		// Incremental reuse off: this benchmark isolates the kernel +
		// transition-cache speedup on a full pruning pass. The
		// incremental gain is measured by BenchmarkSearchEval50 at the
		// repository root.
		eng.SetIncremental(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.LogLikelihood(fx.tree)
		}
	})
}

func TestSearchRunsOnBeagle(t *testing.T) {
	// The GA search accepts the optimized backend through the
	// Evaluator interface and produces a valid tree.
	fx := newFixture(t, 21, phylo.Nucleotide, 4, 9, 400)
	eng, err := New(fx.data, fx.model, fx.rates)
	if err != nil {
		t.Fatal(err)
	}
	cfg := phylo.DefaultSearchConfig()
	cfg.MaxGenerations = 150
	cfg.StagnationGenerations = 50
	cfg.AttachmentsPerTaxon = 6
	res, err := phylo.SearchWith(eng, phylo.TaxonNames(9), cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.BestTree.Check(); err != nil {
		t.Fatal(err)
	}
	// Verify the result against the reference engine.
	ref, _ := phylo.NewLikelihood(fx.data, fx.model, fx.rates)
	if got := ref.LogLikelihood(res.BestTree); math.Abs(got-res.BestLogL) > 1e-6*math.Abs(got) {
		t.Errorf("beagle-search logL %v disagrees with reference %v", res.BestLogL, got)
	}
	if res.Work <= 0 {
		t.Error("no work accounted")
	}
}
