package beagle

import (
	"bytes"
	"testing"

	"lattice/internal/phylo"
)

// TestRunnerResumeIncremental is the checkpoint/restart contract under
// the optimized backend: a GARLI search checkpointed on the
// incremental engine restores and continues bit-identically for 200
// further generations — across independent restores, and with the
// incremental cache on or off (reuse must be indistinguishable from
// recomputation). A volunteer host that suspends and resumes a
// workunit must land on exactly the search the uninterrupted host
// would have run from the same checkpoint.
func TestRunnerResumeIncremental(t *testing.T) {
	fx := newFixture(t, 31, phylo.Nucleotide, 4, 10, 400)
	names := phylo.TaxonNames(10)
	cfg := phylo.DefaultSearchConfig()
	cfg.AttachmentsPerTaxon = 6
	// Keep termination far away so the resumed searches genuinely run
	// 200 further generations instead of stopping early.
	cfg.MaxGenerations = 10_000
	cfg.StagnationGenerations = 10_000

	eng, err := New(fx.data, fx.model, fx.rates)
	if err != nil {
		t.Fatal(err)
	}
	r, err := phylo.NewRunnerWith(eng, names, cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	if r.Step(50) {
		t.Fatal("search terminated before the checkpoint")
	}
	var cp bytes.Buffer
	if err := r.Save(&cp); err != nil {
		t.Fatal(err)
	}
	genAtSave := r.Generation()

	restore := func(incremental bool) *phylo.Runner {
		t.Helper()
		e, err := New(fx.data, fx.model, fx.rates)
		if err != nil {
			t.Fatal(err)
		}
		e.SetIncremental(incremental)
		rr, err := phylo.LoadRunnerWith(bytes.NewReader(cp.Bytes()), e, names, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	a := restore(true)
	b := restore(true)
	c := restore(false)

	const further = 200
	for g := 0; g < further; g++ {
		aDone, bDone, cDone := a.Step(1), b.Step(1), c.Step(1)
		if aDone || bDone || cDone {
			t.Fatalf("a resumed search terminated at generation %d", a.Generation())
		}
		_, la := a.Best()
		_, lb := b.Best()
		_, lc := c.Best()
		if la != lb {
			t.Fatalf("restores diverged at generation %d: %v != %v", a.Generation(), la, lb)
		}
		if la != lc {
			t.Fatalf("incremental cache changed the search at generation %d: on=%v off=%v", a.Generation(), la, lc)
		}
	}
	if got, want := a.Generation(), genAtSave+further; got != want {
		t.Errorf("resumed runner at generation %d, want %d", got, want)
	}
	ta, la := a.Best()
	tb, lb := b.Best()
	tc, _ := c.Best()
	if ta.Newick() != tb.Newick() || ta.Newick() != tc.Newick() {
		t.Error("final best trees differ across restores")
	}
	if la != lb {
		t.Errorf("final logL differs across restores: %v != %v", la, lb)
	}
	if a.Work() <= 0 {
		t.Error("no work accounted on the resumed runner")
	}
}
