package beagle

// Tip-state specialization.
//
// A leaf's conditional likelihood is an indicator vector (or all ones
// for missing data), so the child term P·c the pruning kernel needs
// from a leaf is just column `st` of the transition matrix — or the
// row sums for missing data. Materializing leaf partials, scaling
// them, and running a full S×S accumulate per leaf child (as PR2 did)
// computes exactly those columns the slow way. Instead, every cached
// transition entry carries precomputed per-category tip-column tables
// and the parent kernel indexes them directly: leaves own no buffers,
// no scale vectors, and cost one multiply per state instead of an S-
// term dot product.
//
// Bit-identity: with an indicator child vector the old kernel's
// left-to-right dot product adds zero terms around m[s][st]·1, and in
// IEEE-754 adding (+0) and multiplying by 1 are exact identities, so
// the dot equals the matrix entry bitwise. For missing data the child
// vector is all ones and the dot is the left-to-right row sum, which
// is how buildTipTables computes the missing column.

// buildTipTables fills tips from the category-major matrices in mats.
// Layout: tips[(j*C+c)*S+s] is the contribution of a leaf in state j
// to parent state s under category c, i.e. mats[c][s][j]; index j = S
// holds the missing-data column, the left-to-right row sums.
func buildTipTables(mats, tips []float64, S, C int) {
	for j := 0; j < S; j++ {
		for c := 0; c < C; c++ {
			m := mats[c*S*S:]
			tc := tips[(j*C+c)*S : (j*C+c)*S+S]
			for s := 0; s < S; s++ {
				tc[s] = m[s*S+j]
			}
		}
	}
	for c := 0; c < C; c++ {
		m := mats[c*S*S:]
		tc := tips[(S*C+c)*S : (S*C+c)*S+S]
		for s := 0; s < S; s++ {
			row := m[s*S : s*S+S]
			var sum float64
			for x := 0; x < S; x++ {
				sum += row[x]
			}
			tc[s] = sum
		}
	}
}

// buildTipIndex precomputes, for every taxon, the per-pattern tip
// table index: the observed state, or S for missing data. Codon
// models top out at 61 states, so uint8 always fits and a taxon's
// whole index vector stays in a few cache lines.
func buildTipIndex(states []int8, numTaxa, nPat, S int) [][]uint8 {
	idx := make([][]uint8, numTaxa)
	flat := make([]uint8, numTaxa*nPat)
	for taxon := 0; taxon < numTaxa; taxon++ {
		v := flat[taxon*nPat : (taxon+1)*nPat]
		for p := 0; p < nPat; p++ {
			st := states[p*numTaxa+taxon]
			if st < 0 {
				v[p] = uint8(S)
			} else {
				v[p] = uint8(st)
			}
		}
		idx[taxon] = v
	}
	return idx
}
