package beagle

import (
	"fmt"
	"math"
	"testing"

	"lattice/internal/phylo"
	"lattice/internal/sim"
)

// mutate applies one random GA-style move to the tree and returns a
// label for failure messages.
func mutate(t *phylo.Tree, rng *sim.RNG) string {
	switch rng.Intn(4) {
	case 0:
		t.NNI(rng)
		return "NNI"
	case 1:
		t.SPR(6, rng)
		return "SPR"
	case 2:
		// Single branch-length change, mutated in place — exactly what
		// the golden-section optimizer does between evaluations.
		n := t.Nodes[1+rng.Intn(len(t.Nodes)-1)]
		if n.Parent != nil {
			n.Length = math.Max(1e-8, n.Length*rng.LogNormal(0, 0.3))
		}
		return "brlen"
	default:
		// Whole-tree jiggle (the GA's population diversification).
		t.PostOrder(func(n *phylo.Node) {
			if n.Parent != nil {
				n.Length = math.Max(1e-8, n.Length*rng.LogNormal(0, 0.1))
			}
		})
		return "perturb"
	}
}

// mutationSequenceCases parameterizes the bit-identity harness over
// every kernel family: the unrolled 4-state nucleotide path and the
// generic path at amino-acid (20) and codon (61) state counts. The
// non-nucleotide fixtures are smaller so the reference engine's full
// recomputation stays affordable, but run the same 200-step sequence.
var mutationSequenceCases = []struct {
	name   string
	dt     phylo.DataType
	ncats  int
	ntaxa  int
	nsites int
	seeds  []int64
}{
	{"nucleotide", phylo.Nucleotide, 4, 14, 400, []int64{1, 2, 3}},
	{"aa", phylo.AminoAcid, 2, 9, 160, []int64{4}},
	{"codon", phylo.Codon, 1, 7, 60, []int64{5}},
}

// TestIncrementalMatchesFullOverMutationSequence is the tentpole
// property test: over a long random sequence of NNI / SPR / branch-
// length mutations, incremental re-evaluation must be bit-identical to
// full recomputation on a second engine, and within 1e-9 (relative) of
// the reference implementation — for nucleotide, amino-acid, and codon
// state spaces.
func TestIncrementalMatchesFullOverMutationSequence(t *testing.T) {
	for _, tc := range mutationSequenceCases {
		for _, seed := range tc.seeds {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				runMutationSequence(t, tc.dt, tc.ncats, tc.ntaxa, tc.nsites, seed)
			})
		}
	}
}

func runMutationSequence(t *testing.T, dt phylo.DataType, ncats, ntaxa, nsites int, seed int64) {
	fx := newFixture(t, 400+seed, dt, ncats, ntaxa, nsites)
	ref, err := phylo.NewLikelihood(fx.data, fx.model, fx.rates)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := New(fx.data, fx.model, fx.rates)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(fx.data, fx.model, fx.rates)
	if err != nil {
		t.Fatal(err)
	}
	full.SetIncremental(false)
	rng := sim.NewRNG(seed)
	tr := fx.tree.Clone()
	for step := 0; step < 200; step++ {
		move := mutate(tr, rng)
		a := inc.LogLikelihood(tr)
		b := full.LogLikelihood(tr)
		if a != b {
			t.Fatalf("step %d (%s): incremental %v != full %v (diff %g)",
				step, move, a, b, a-b)
		}
		c := ref.LogLikelihood(tr)
		if math.Abs(a-c) > 1e-9*math.Abs(c) {
			t.Fatalf("step %d (%s): incremental %v vs reference %v", step, move, a, c)
		}
	}
	st := inc.Stats()
	if st.PartialsReused == 0 {
		t.Error("incremental engine never reused a partial over 200 mutations")
	}
	t.Logf("reuse fraction over sequence: %.1f%% (computed %d, reused %d)",
		100*st.ReuseFraction(), st.PartialsComputed, st.PartialsReused)
}

// TestIncrementalAcrossClones drives one engine with alternating clones
// of different trees — the GA population pattern, where successive
// LogLikelihood calls see different individuals sharing node-ID layout.
// With per-tree banks each individual keeps its own cached state, and
// every kernel family (4-state and generic) must stay bit-identical to
// full recomputation.
func TestIncrementalAcrossClones(t *testing.T) {
	cases := []struct {
		name   string
		dt     phylo.DataType
		ncats  int
		ntaxa  int
		nsites int
	}{
		{"nucleotide", phylo.Nucleotide, 4, 10, 300},
		{"aa", phylo.AminoAcid, 2, 8, 120},
		{"codon", phylo.Codon, 1, 6, 50},
	}
	for ci, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fx := newFixture(t, int64(31+ci), c.dt, c.ncats, c.ntaxa, c.nsites)
			inc, _ := New(fx.data, fx.model, fx.rates)
			full, _ := New(fx.data, fx.model, fx.rates)
			full.SetIncremental(false)
			rng := sim.NewRNG(5)
			pop := make([]*phylo.Tree, 4)
			for i := range pop {
				pop[i] = fx.tree.Clone()
				for j := 0; j <= i; j++ {
					mutate(pop[i], rng)
				}
			}
			for round := 0; round < 20; round++ {
				i := rng.Intn(len(pop))
				mutate(pop[i], rng)
				for k, tr := range pop {
					a, b := inc.LogLikelihood(tr), full.LogLikelihood(tr)
					if a != b {
						t.Fatalf("round %d individual %d: incremental %v != full %v", round, k, a, b)
					}
				}
			}
		})
	}
}

// TestIncrementalUnderMemoryBudget squeezes the bank budget so far
// that every tree's bank is evicted between visits: results must stay
// bit-identical to full recomputation — eviction may only cost speed,
// never correctness.
func TestIncrementalUnderMemoryBudget(t *testing.T) {
	fx := newFixture(t, 61, phylo.Nucleotide, 4, 10, 300)
	inc, _ := New(fx.data, fx.model, fx.rates)
	inc.SetMemoryBudget(1) // clamps to one buffer: nothing survives
	full, _ := New(fx.data, fx.model, fx.rates)
	full.SetIncremental(false)
	rng := sim.NewRNG(13)
	pop := make([]*phylo.Tree, 6)
	for i := range pop {
		pop[i] = fx.tree.Clone()
		mutate(pop[i], rng)
	}
	for round := 0; round < 10; round++ {
		mutate(pop[rng.Intn(len(pop))], rng)
		for k, tr := range pop {
			a, b := inc.LogLikelihood(tr), full.LogLikelihood(tr)
			if a != b {
				t.Fatalf("round %d individual %d: incremental %v != full %v", round, k, a, b)
			}
		}
	}
	if inc.Stats().BankEvictions == 0 {
		t.Error("budget of 1 byte never evicted a bank")
	}
}

// TestIncrementalAcrossTreeSizes exercises the wholesale invalidation
// on node-count changes (the stepwise-addition pattern: the engine sees
// a growing sequence of partial trees).
func TestIncrementalAcrossTreeSizes(t *testing.T) {
	fx := newFixture(t, 33, phylo.Nucleotide, 2, 12, 200)
	inc, _ := New(fx.data, fx.model, fx.rates)
	full, _ := New(fx.data, fx.model, fx.rates)
	full.SetIncremental(false)
	rng := sim.NewRNG(6)
	cfg := phylo.DefaultSearchConfig()
	small := phylo.RandomTree(phylo.TaxonNames(12)[:6], cfg.MeanBranchLength, rng)
	// Interleave evaluations of a 6-taxon and a 12-taxon tree: every
	// size flip must invalidate, never reuse stale partials.
	for round := 0; round < 10; round++ {
		mutate(small, rng)
		mutate(fx.tree, rng)
		for _, tr := range []*phylo.Tree{small, fx.tree} {
			a, b := inc.LogLikelihood(tr), full.LogLikelihood(tr)
			if a != b {
				t.Fatalf("round %d (%d nodes): incremental %v != full %v",
					round, len(tr.Nodes), a, b)
			}
		}
	}
}

// TestIncrementalUnderBranchOptimization pins the optimizer integration:
// OptimizeBranch probes many lengths on one branch, and the incremental
// engine must track every probe.
func TestIncrementalUnderBranchOptimization(t *testing.T) {
	fx := newFixture(t, 37, phylo.Nucleotide, 4, 12, 300)
	inc, _ := New(fx.data, fx.model, fx.rates)
	ref, _ := phylo.NewLikelihood(fx.data, fx.model, fx.rates)
	tr := fx.tree.Clone()
	rng := sim.NewRNG(8)
	for round := 0; round < 15; round++ {
		mutate(tr, rng)
		var target *phylo.Node
		for target == nil || target.Parent == nil {
			target = tr.Nodes[rng.Intn(len(tr.Nodes))]
		}
		a := inc.OptimizeBranch(tr, target, 8)
		// The optimizer leaves the tree at the best probed length; the
		// reference engine must agree on the final state.
		c := ref.LogLikelihood(tr)
		if math.Abs(a-c) > 1e-9*math.Abs(c) {
			t.Fatalf("round %d: optimized logL %v vs reference %v", round, a, c)
		}
	}
}

// TestSetModelInvalidates verifies the explicit invalidation satellite:
// swapping the model or rate mixture must drop both the transition
// cache and all cached partials.
func TestSetModelInvalidates(t *testing.T) {
	fx := newFixture(t, 41, phylo.Nucleotide, 4, 8, 200)
	eng, _ := New(fx.data, fx.model, fx.rates)
	before := eng.LogLikelihood(fx.tree)
	m2, err := phylo.NewGTR([6]float64{2, 1, 1, 1, 2, 1}, []float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := phylo.NewSiteRates(phylo.RateGamma, 1.2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetModel(m2, r2); err != nil {
		t.Fatal(err)
	}
	if eng.pmats.size() != 0 {
		t.Errorf("transition cache kept %d stale entries across model swap", eng.pmats.size())
	}
	after := eng.LogLikelihood(fx.tree)
	ref, _ := phylo.NewLikelihood(fx.data, m2, r2)
	want := ref.LogLikelihood(fx.tree)
	if math.Abs(after-want) > 1e-9*math.Abs(want) {
		t.Errorf("post-swap logL %v disagrees with reference %v", after, want)
	}
	if after == before {
		t.Error("model swap did not change the likelihood (stale cache?)")
	}
	// Mismatched data type must be rejected and leave the engine usable.
	aa, _ := phylo.NewPoissonAA()
	if err := eng.SetModel(aa, nil); err == nil {
		t.Error("expected error swapping to a model of a different data type")
	}
	if got := eng.LogLikelihood(fx.tree); got != after {
		t.Errorf("rejected swap corrupted engine state: %v vs %v", got, after)
	}
}

// TestPoolScoringDeterministicAcrossWorkers is the parallel-scoring
// acceptance test: for the same population, ScoreAll must return
// bit-identical results for 1, 2, 3 and 4 workers, with engines warm
// or cold. Run under -race this doubles as the data-race stress test
// (same style as internal/forest/race_test.go).
func TestPoolScoringDeterministicAcrossWorkers(t *testing.T) {
	fx := newFixture(t, 51, phylo.Nucleotide, 4, 12, 300)
	rng := sim.NewRNG(9)
	trees := make([]*phylo.Tree, 24)
	for i := range trees {
		trees[i] = fx.tree.Clone()
		for j := 0; j < 1+i%5; j++ {
			mutate(trees[i], rng)
		}
	}
	factory := func() (phylo.Evaluator, error) { return New(fx.data, fx.model, fx.rates) }
	var want []float64
	for workers := 1; workers <= 4; workers++ {
		pool, err := phylo.NewEvaluatorPool(workers, factory)
		if err != nil {
			t.Fatal(err)
		}
		// Two passes: the second hits warm incremental caches, and must
		// still be bit-identical.
		for pass := 0; pass < 2; pass++ {
			got := pool.ScoreAll(trees)
			if want == nil {
				want = got
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d pass=%d tree %d: %v != baseline %v",
						workers, pass, i, got[i], want[i])
				}
			}
		}
	}
}

// TestWarmStartPoolSharing pins the warm-start seam: pool workers that
// adopted a warm parent engine's transition cache must return
// bit-identical scores while actually hitting the shared entries, and
// the parent must remain usable concurrently. Under -race this is the
// proof that shared cache entries are safe across engines.
func TestWarmStartPoolSharing(t *testing.T) {
	fx := newFixture(t, 71, phylo.Nucleotide, 4, 12, 300)
	parent, err := New(fx.data, fx.model, fx.rates)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(15)
	trees := make([]*phylo.Tree, 16)
	want := make([]float64, len(trees))
	for i := range trees {
		trees[i] = fx.tree.Clone()
		mutate(trees[i], rng)
		want[i] = parent.LogLikelihood(trees[i])
	}
	pool, err := phylo.NewEvaluatorPool(4, func() (phylo.Evaluator, error) {
		return New(fx.data, fx.model, fx.rates)
	})
	if err != nil {
		t.Fatal(err)
	}
	pool.WarmStart(parent)
	for w := 0; w < pool.Workers(); w++ {
		if st := pool.Evaluator(w).(*Engine).Stats(); st.CacheSize == 0 {
			t.Fatalf("worker %d adopted no cache entries from the warm parent", w)
		}
	}
	// Keep the parent evaluating its own mutating tree while the pool
	// scores concurrently: shared entries are read from five engines at
	// once while the parent keeps inserting fresh ones.
	done := make(chan struct{})
	go func() {
		defer close(done)
		prng := sim.NewRNG(16)
		tr := fx.tree.Clone()
		for i := 0; i < 50; i++ {
			mutate(tr, prng)
			parent.LogLikelihood(tr)
		}
	}()
	for pass := 0; pass < 2; pass++ {
		got := pool.ScoreAll(trees)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pass %d tree %d: warm-started pool %v != parent %v", pass, i, got[i], want[i])
			}
		}
	}
	<-done
	var hits int
	for w := 0; w < pool.Workers(); w++ {
		hits += pool.Evaluator(w).(*Engine).Stats().CacheHits
	}
	if hits == 0 {
		t.Error("warm-started workers never hit the shared transition cache")
	}
}

// TestSearchParallelDeterministicAcrossWorkers pins the full parallel
// search: same seed, different worker counts, bit-identical best tree
// and work accounting.
func TestSearchParallelDeterministicAcrossWorkers(t *testing.T) {
	fx := newFixture(t, 55, phylo.Nucleotide, 4, 8, 200)
	cfg := phylo.DefaultSearchConfig()
	cfg.SearchReps = 3
	cfg.MaxGenerations = 40
	cfg.StagnationGenerations = 20
	cfg.AttachmentsPerTaxon = 5
	factory := func() (phylo.Evaluator, error) { return New(fx.data, fx.model, fx.rates) }
	var wantLogL, wantWork float64
	var wantNewick string
	for workers := 1; workers <= 3; workers++ {
		pool, err := phylo.NewEvaluatorPool(workers, factory)
		if err != nil {
			t.Fatal(err)
		}
		res, err := phylo.SearchParallel(pool, phylo.TaxonNames(8), cfg, sim.NewRNG(77))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.BestTree.Check(); err != nil {
			t.Fatal(err)
		}
		nwk := res.BestTree.Newick()
		if workers == 1 {
			wantLogL, wantWork, wantNewick = res.BestLogL, res.Work, nwk
			continue
		}
		if res.BestLogL != wantLogL {
			t.Errorf("workers=%d: best logL %v != baseline %v", workers, res.BestLogL, wantLogL)
		}
		if res.Work != wantWork {
			t.Errorf("workers=%d: work %v != baseline %v", workers, res.Work, wantWork)
		}
		if nwk != wantNewick {
			t.Errorf("workers=%d: best tree differs from baseline", workers)
		}
	}
}
