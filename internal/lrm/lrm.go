// Package lrm defines the local-resource-manager abstraction of the
// grid — "an established computing resource administered in one domain
// and capable of functioning independently from the grid system" — and
// the common job/node machinery its implementations (Condor pools, PBS
// and SGE clusters, and the BOINC adapter in internal/boinc) share.
//
// Every LRM is a discrete-event simulator on the shared sim.Engine:
// nodes execute abstract work (likelihood cell updates) at a speed
// relative to the reference computer, availability processes interrupt
// jobs on scavenged resources, and completions/failures are reported
// through callbacks so the grid level can track and reschedule.
package lrm

import (
	"fmt"

	"lattice/internal/sim"
)

// ReferenceCellsPerSecond mirrors workload.ReferenceCellsPerSecond;
// duplicated here to keep the dependency graph acyclic (lrm must not
// import workload).
const ReferenceCellsPerSecond = 2.5e8

// Platform identifies an operating system / CPU architecture pair an
// application binary can run on.
type Platform string

// The platforms the paper's system supports ("we support three major
// computing platforms: Linux, Windows, and Mac OS").
const (
	LinuxX86   Platform = "linux/x86_64"
	WindowsX86 Platform = "windows/x86_64"
	DarwinX86  Platform = "darwin/x86_64"
	DarwinPPC  Platform = "darwin/ppc"
)

// Job is a unit of computational work submitted to a local resource.
type Job struct {
	// ID is unique across the grid.
	ID string
	// Batch names the portal batch the job came through ("" for
	// direct submissions); observability context that travels with
	// the job so local events land under the right trace root.
	Batch string
	// Work is the job's total computational cost in likelihood cell
	// updates; runtime on a node is Work / (speed × reference rate).
	Work float64
	// MemoryMB is the minimum node memory required.
	MemoryMB int
	// Platforms lists platforms the application binary supports; a
	// node must match one. Empty = any.
	Platforms []Platform
	// Software lists software dependencies (e.g. "java") a node must
	// provide. Empty = none.
	Software []string
	// NeedsMPI marks tightly coupled jobs that require an
	// MPI-capable resource.
	NeedsMPI bool
	// Nodes is the number of nodes an MPI job spans (0 or 1 for
	// serial jobs). Only MPI-capable clusters accept Nodes > 1.
	Nodes int
	// WallLimit kills the job if it runs longer (0 = none); local
	// policy, enforced by the LRM.
	WallLimit sim.Duration
	// EstimatedRefSeconds is the grid level's a priori runtime
	// estimate on the reference computer (BOINC's rsc_fpops_est
	// analogue). Desktop grids use it to size work requests; 0 means
	// no estimate is available.
	EstimatedRefSeconds float64
	// DelayBound is the deadline granted to a desktop-grid result
	// after issue (BOINC's delay_bound): results not returned within
	// it are reissued to another volunteer. 0 selects the project
	// default.
	DelayBound sim.Duration

	// OnComplete fires when the job finishes successfully.
	OnComplete func(at sim.Time)
	// OnFail fires when the job is permanently failed by the
	// resource (exceeded wall limit, node crash with no requeue
	// budget left, cancellation is not a failure).
	OnFail func(at sim.Time, reason string)
}

// Validate checks the job is well-formed.
func (j *Job) Validate() error {
	if j.ID == "" {
		return fmt.Errorf("lrm: job has no ID")
	}
	if j.Work <= 0 {
		return fmt.Errorf("lrm: job %s has non-positive work %g", j.ID, j.Work)
	}
	if j.MemoryMB < 0 {
		return fmt.Errorf("lrm: job %s has negative memory requirement", j.ID)
	}
	return nil
}

// runtimeOn returns the job's execution time on a node of the given
// speed.
func (j *Job) runtimeOn(speed float64) sim.Duration {
	return sim.Duration(j.Work / (speed * ReferenceCellsPerSecond))
}

// Stats aggregates what a resource did — consumed by the experiment
// harnesses (utilization, waste from preemptions, and so on).
type Stats struct {
	Completed    int
	Failed       int
	Preemptions  int
	CPUSeconds   float64 // useful work delivered, reference-seconds
	WastedCPU    float64 // reference-seconds thrown away by interruptions
	TotalQueued  int
	MaxQueueSeen int
}

// Info is the resource state a scheduler provider publishes to MDS:
// "number of free CPU cores, total RAM, total disk space, and so on".
type Info struct {
	Name      string
	Kind      string // "condor", "pbs", "sge", "boinc"
	TotalCPUs int
	FreeCPUs  int
	// NodeMemoryMB is the memory of the largest node class.
	NodeMemoryMB int
	Platforms    []Platform
	Software     []string
	MPI          bool
	// Stable reports whether jobs run to completion without owner
	// interference (paper Section V-A: stable resources accommodate
	// long-running jobs).
	Stable bool
	// QueuedJobs counts jobs waiting locally.
	QueuedJobs int
	// RunningJobs counts jobs executing.
	RunningJobs int
}

// LRM is the interface every local resource manager implements; the
// grid ties into it through a scheduler adapter (submission) and a
// scheduler provider (Info for MDS).
type LRM interface {
	// Name returns the resource's grid-wide name.
	Name() string
	// Submit enqueues a job; scheduling is local policy.
	Submit(j *Job) error
	// Cancel removes a queued or running job. It reports whether the
	// job was found.
	Cancel(jobID string) bool
	// Info snapshots current state for the scheduler provider.
	Info() Info
	// Stats returns lifetime accounting.
	Stats() Stats
}

// hasPlatform reports whether any of the job's acceptable platforms is
// offered by the node/resource platform set.
func hasPlatform(want []Platform, have []Platform) bool {
	if len(want) == 0 {
		return true
	}
	for _, w := range want {
		for _, h := range have {
			if w == h {
				return true
			}
		}
	}
	return false
}

// hasSoftware reports whether every requested dependency is present.
func hasSoftware(want, have []string) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if w == h {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
