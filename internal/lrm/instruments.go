package lrm

import (
	"lattice/internal/obs"
	"lattice/internal/sim"
)

// Instruments bundles the observability handles local resource
// managers share: queue-wait and preemption accounting labelled by
// resource, plus run/preempt journal events. Terminal lifecycle events
// (complete/fail) are the meta-scheduler's to record — an LRM only
// sees its local leg of the job, so recording them here would double
// the journal's terminal count when a job is reissued elsewhere.
//
// A nil *Instruments is a valid no-op recorder, so LRMs built outside
// an assembled grid (unit tests, micro-benchmarks) pay nothing.
type Instruments struct {
	o        *obs.Obs
	resource string

	started   *obs.Counter
	preempted *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	queueWait *obs.Histogram
}

// NewInstruments registers the per-resource series on o. It returns
// nil (the no-op recorder) when o is nil.
func NewInstruments(o *obs.Obs, resource string) *Instruments {
	if o == nil {
		return nil
	}
	rl := obs.L("resource", resource)
	return &Instruments{
		o:        o,
		resource: resource,
		started: o.Counter("lattice_lrm_jobs_started_total",
			"Jobs that began executing on a local resource", rl),
		preempted: o.Counter("lattice_lrm_preemptions_total",
			"Executions interrupted by owner activity or node failure", rl),
		completed: o.Counter("lattice_lrm_jobs_completed_total",
			"Jobs the local resource finished successfully", rl),
		failed: o.Counter("lattice_lrm_jobs_failed_total",
			"Jobs the local resource failed permanently", rl),
		queueWait: o.Histogram("lattice_lrm_queue_wait_seconds",
			"Virtual seconds from local submission to first execution", nil, rl),
	}
}

// JobStarted records a job beginning execution after waiting in the
// local queue for wait virtual seconds.
func (in *Instruments) JobStarted(j *Job, wait sim.Duration) {
	if in == nil {
		return
	}
	in.started.Inc()
	in.queueWait.Observe(wait.Seconds())
	in.o.Record(j.Batch, j.ID, obs.StageRun, in.resource, "")
}

// JobPreempted records an execution interrupted before finishing
// (owner reclaimed the node, node crashed); detail says why.
func (in *Instruments) JobPreempted(j *Job, detail string) {
	if in == nil {
		return
	}
	in.preempted.Inc()
	in.o.Record(j.Batch, j.ID, obs.StagePreempt, in.resource, detail)
}

// JobCompleted counts a local success (metric only — the terminal
// journal event belongs to the grid level).
func (in *Instruments) JobCompleted(j *Job) {
	if in == nil {
		return
	}
	in.completed.Inc()
}

// JobFailed counts a local permanent failure (metric only, as above).
func (in *Instruments) JobFailed(j *Job) {
	if in == nil {
		return
	}
	in.failed.Inc()
}
