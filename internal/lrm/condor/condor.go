// Package condor simulates a Condor pool: institutional desktop
// machines scavenged for cycles while their owners are away ("Condor —
// a hunter of idle workstations"). Machines alternate between
// owner-present and owner-absent periods; a grid job executes only
// while the owner is away and is preempted (killed and requeued) the
// moment the owner returns. This is the canonical "unstable" resource
// of the paper's stability criterion: short jobs slip into idle
// windows, long jobs thrash.
package condor

import (
	"fmt"

	"lattice/internal/lrm"
	"lattice/internal/obs"
	"lattice/internal/sim"
)

// Machine describes one workstation in the pool.
type Machine struct {
	// Speed is the machine's execution rate relative to the
	// reference computer (1.0 = reference).
	Speed float64
	// MemoryMB is usable memory for grid jobs.
	MemoryMB int
	// Platform is the machine's OS/architecture.
	Platform lrm.Platform
	// MeanOwnerAway and MeanOwnerBusy parameterize the exponential
	// owner-activity process: expected idle (scavengeable) and busy
	// period lengths.
	MeanOwnerAway sim.Duration
	MeanOwnerBusy sim.Duration
}

// Config describes a pool.
type Config struct {
	Name     string
	Machines []Machine
	// Software available on all pool machines.
	Software []string
	// MaxRequeues bounds how many times one job may be preempted
	// before the pool gives up and fails it (0 = unlimited; real
	// Condor requeues indefinitely, which for long jobs on busy pools
	// means never finishing).
	MaxRequeues int
	// Checkpointing selects Condor's standard universe: preempted
	// jobs resume from a checkpoint on their next machine instead of
	// restarting from scratch, paying CheckpointOverhead per
	// migration (checkpoint write + transfer + restore).
	Checkpointing bool
	// CheckpointOverhead is the per-migration cost in reference
	// seconds (default 60 when Checkpointing is set).
	CheckpointOverhead float64
}

type machineState struct {
	Machine
	ownerPresent bool
	running      *running
}

type running struct {
	job       *lrm.Job
	startedAt sim.Time
	doneEvent sim.EventID
	wallEvent sim.EventID
	remaining float64 // work being executed in this attempt
	machine   *machineState
}

type queued struct {
	job      *lrm.Job
	requeues int
	// remaining is the work left to execute (checkpointing pools
	// preserve progress across preemptions).
	remaining float64
	// queuedAt is when this wait began (submission or last preemption).
	queuedAt sim.Time
}

// Pool is a Condor pool LRM.
type Pool struct {
	eng      *sim.Engine
	rng      *sim.RNG
	cfg      Config
	machines []*machineState
	queue    []*queued
	stats    lrm.Stats
	ins      *lrm.Instruments
	// requeueCounts tracks per-job preemption counts across requeues.
	requeueCounts map[string]int
}

// SetObs wires the pool to an observability hub: queue waits,
// executions, and preemptions become per-resource series and journal
// events.
func (p *Pool) SetObs(o *obs.Obs) { p.ins = lrm.NewInstruments(o, p.cfg.Name) }

// New builds a pool and starts every machine's owner-activity process.
// Machines begin with the owner present and become available after
// their first busy period elapses.
func New(eng *sim.Engine, rng *sim.RNG, cfg Config) (*Pool, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("condor: pool has no name")
	}
	if len(cfg.Machines) == 0 {
		return nil, fmt.Errorf("condor: pool %s has no machines", cfg.Name)
	}
	p := &Pool{eng: eng, rng: rng, cfg: cfg, requeueCounts: make(map[string]int)}
	for i, m := range cfg.Machines {
		if m.Speed <= 0 {
			return nil, fmt.Errorf("condor: machine %d has non-positive speed", i)
		}
		ms := &machineState{Machine: m, ownerPresent: true}
		p.machines = append(p.machines, ms)
		p.scheduleOwnerDeparture(ms)
	}
	return p, nil
}

// Name implements lrm.LRM.
func (p *Pool) Name() string { return p.cfg.Name }

func (p *Pool) scheduleOwnerDeparture(m *machineState) {
	p.eng.Schedule(p.rng.ExpDuration(m.MeanOwnerBusy), func() {
		m.ownerPresent = false
		p.scheduleOwnerReturn(m)
		p.tryDispatch()
	})
}

func (p *Pool) scheduleOwnerReturn(m *machineState) {
	p.eng.Schedule(p.rng.ExpDuration(m.MeanOwnerAway), func() {
		m.ownerPresent = true
		if m.running != nil {
			p.preempt(m)
		}
		p.scheduleOwnerDeparture(m)
	})
}

// preempt kills the running job and requeues it. In the vanilla
// universe all progress is lost; in the standard universe (see
// Config.Checkpointing) the job resumes from a checkpoint and only the
// migration overhead is wasted.
func (p *Pool) preempt(m *machineState) {
	r := m.running
	m.running = nil
	p.eng.Cancel(r.doneEvent)
	p.eng.Cancel(r.wallEvent)
	elapsed := p.eng.Now().Sub(r.startedAt)
	p.stats.Preemptions++
	p.ins.JobPreempted(r.job, "owner returned")
	q := &queued{job: r.job, requeues: 1, remaining: r.remaining, queuedAt: p.eng.Now()}
	if p.cfg.Checkpointing {
		done := elapsed.Seconds() * m.Speed * lrm.ReferenceCellsPerSecond
		q.remaining -= done
		if q.remaining < 0 {
			q.remaining = 0
		}
		overhead := p.cfg.CheckpointOverhead
		if overhead <= 0 {
			overhead = 60
		}
		q.remaining += overhead * lrm.ReferenceCellsPerSecond
		p.stats.WastedCPU += overhead
	} else {
		p.stats.WastedCPU += elapsed.Seconds() * m.Speed
	}
	// Recover the prior requeue count if tracked via closure-free
	// bookkeeping: we keep it in the queued record only, so requeues
	// accumulate by re-wrapping.
	if prior, ok := p.requeueCounts[r.job.ID]; ok {
		q.requeues = prior + 1
	}
	p.requeueCounts[r.job.ID] = q.requeues
	if p.cfg.MaxRequeues > 0 && q.requeues > p.cfg.MaxRequeues {
		p.stats.Failed++
		p.ins.JobFailed(r.job)
		delete(p.requeueCounts, r.job.ID)
		if r.job.OnFail != nil {
			r.job.OnFail(p.eng.Now(), "condor: requeue limit exceeded")
		}
		return
	}
	p.queue = append(p.queue, q)
	// The machine is owner-occupied now; another machine may take it.
	p.tryDispatch()
}

// Submit implements lrm.LRM.
func (p *Pool) Submit(j *lrm.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.NeedsMPI {
		return fmt.Errorf("condor: pool %s cannot run MPI jobs", p.cfg.Name)
	}
	p.stats.TotalQueued++
	p.queue = append(p.queue, &queued{job: j, remaining: j.Work, queuedAt: p.eng.Now()})
	if len(p.queue) > p.stats.MaxQueueSeen {
		p.stats.MaxQueueSeen = len(p.queue)
	}
	p.tryDispatch()
	return nil
}

// Cancel implements lrm.LRM.
func (p *Pool) Cancel(jobID string) bool {
	for i, q := range p.queue {
		if q.job.ID == jobID {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			delete(p.requeueCounts, jobID)
			return true
		}
	}
	for _, m := range p.machines {
		if m.running != nil && m.running.job.ID == jobID {
			p.eng.Cancel(m.running.doneEvent)
			p.eng.Cancel(m.running.wallEvent)
			m.running = nil
			delete(p.requeueCounts, jobID)
			p.tryDispatch()
			return true
		}
	}
	return false
}

// fits reports whether the job can run on machine m.
func (p *Pool) fits(j *lrm.Job, m *machineState) bool {
	if j.MemoryMB > m.MemoryMB {
		return false
	}
	if len(j.Platforms) > 0 {
		ok := false
		for _, pf := range j.Platforms {
			if pf == m.Platform {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, s := range j.Software {
		found := false
		for _, have := range p.cfg.Software {
			if s == have {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// tryDispatch matches queued jobs to idle owner-absent machines, FIFO
// with first-fit (Condor matchmaking at pool granularity).
func (p *Pool) tryDispatch() {
	for qi := 0; qi < len(p.queue); {
		q := p.queue[qi]
		var target *machineState
		for _, m := range p.machines {
			if !m.ownerPresent && m.running == nil && p.fits(q.job, m) {
				target = m
				break
			}
		}
		if target == nil {
			qi++
			continue
		}
		p.queue = append(p.queue[:qi], p.queue[qi+1:]...)
		p.start(q, target)
	}
}

func (p *Pool) start(q *queued, m *machineState) {
	j := q.job
	r := &running{job: j, startedAt: p.eng.Now(), remaining: q.remaining, machine: m}
	m.running = r
	p.ins.JobStarted(j, p.eng.Now().Sub(q.queuedAt))
	dur := sim.Duration(q.remaining / (m.Speed * lrm.ReferenceCellsPerSecond))
	r.doneEvent = p.eng.Schedule(dur, func() {
		m.running = nil
		p.eng.Cancel(r.wallEvent)
		p.stats.Completed++
		p.stats.CPUSeconds += dur.Seconds() * m.Speed
		p.ins.JobCompleted(j)
		delete(p.requeueCounts, j.ID)
		if j.OnComplete != nil {
			j.OnComplete(p.eng.Now())
		}
		p.tryDispatch()
	})
	if j.WallLimit > 0 && j.WallLimit < dur {
		r.wallEvent = p.eng.Schedule(j.WallLimit, func() {
			m.running = nil
			p.eng.Cancel(r.doneEvent)
			p.stats.Failed++
			p.stats.WastedCPU += j.WallLimit.Seconds() * m.Speed
			p.ins.JobFailed(j)
			delete(p.requeueCounts, j.ID)
			if j.OnFail != nil {
				j.OnFail(p.eng.Now(), "condor: wall clock limit exceeded")
			}
			p.tryDispatch()
		})
	}
}

func durationOn(j *lrm.Job, speed float64) sim.Duration {
	return sim.Duration(j.Work / (speed * lrm.ReferenceCellsPerSecond))
}

// Info implements lrm.LRM.
func (p *Pool) Info() lrm.Info {
	info := lrm.Info{
		Name:     p.cfg.Name,
		Kind:     "condor",
		Software: p.cfg.Software,
		Stable:   false,
		MPI:      false,
	}
	seen := map[lrm.Platform]bool{}
	for _, m := range p.machines {
		info.TotalCPUs++
		if !m.ownerPresent && m.running == nil {
			info.FreeCPUs++
		}
		if m.running != nil {
			info.RunningJobs++
		}
		if m.MemoryMB > info.NodeMemoryMB {
			info.NodeMemoryMB = m.MemoryMB
		}
		if !seen[m.Platform] {
			seen[m.Platform] = true
			info.Platforms = append(info.Platforms, m.Platform)
		}
	}
	info.QueuedJobs = len(p.queue)
	return info
}

// Stats implements lrm.LRM.
func (p *Pool) Stats() lrm.Stats { return p.stats }
