package condor

import (
	"fmt"
	"testing"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// testPool builds a small pool of identical machines.
func testPool(t *testing.T, n int, speed float64, away, busy sim.Duration) (*sim.Engine, *Pool) {
	t.Helper()
	eng := sim.NewEngine()
	machines := make([]Machine, n)
	for i := range machines {
		machines[i] = Machine{
			Speed: speed, MemoryMB: 2048, Platform: lrm.LinuxX86,
			MeanOwnerAway: away, MeanOwnerBusy: busy,
		}
	}
	p, err := New(eng, sim.NewRNG(1), Config{Name: "pool", Machines: machines})
	if err != nil {
		t.Fatal(err)
	}
	return eng, p
}

// job returns a job costing the given reference-seconds.
func job(id string, refSeconds float64) *lrm.Job {
	return &lrm.Job{ID: id, Work: refSeconds * lrm.ReferenceCellsPerSecond, MemoryMB: 256}
}

func TestShortJobsComplete(t *testing.T) {
	eng, p := testPool(t, 4, 1.0, 8*sim.Hour, 2*sim.Hour)
	done := 0
	for i := 0; i < 20; i++ {
		j := job(fmt.Sprintf("j%d", i), 600) // 10 minutes
		j.OnComplete = func(sim.Time) { done++ }
		j.OnFail = func(_ sim.Time, reason string) { t.Errorf("job failed: %s", reason) }
		if err := p.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Time(30 * sim.Day))
	if done != 20 {
		t.Fatalf("%d of 20 short jobs completed", done)
	}
	st := p.Stats()
	if st.Completed != 20 {
		t.Errorf("stats.Completed = %d", st.Completed)
	}
	if st.CPUSeconds < 20*600*0.99 {
		t.Errorf("delivered CPU %.0f s, want ≈ %d", st.CPUSeconds, 20*600)
	}
}

func TestLongJobsThrash(t *testing.T) {
	// A 40-hour job on machines whose owners are only away ~3 h at a
	// time can never finish; preemptions and wasted CPU pile up.
	eng, p := testPool(t, 2, 1.0, 3*sim.Hour, 3*sim.Hour)
	failed := false
	completed := false
	j := job("long", 40*3600)
	j.OnComplete = func(sim.Time) { completed = true }
	j.OnFail = func(sim.Time, string) { failed = true }
	p.cfg.MaxRequeues = 20
	if err := p.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(60 * sim.Day))
	if completed {
		t.Fatal("40-hour job completed on a 3-hour-window pool — preemption broken")
	}
	if !failed {
		t.Fatal("job neither completed nor hit the requeue limit")
	}
	st := p.Stats()
	if st.Preemptions < 10 {
		t.Errorf("only %d preemptions", st.Preemptions)
	}
	if st.WastedCPU <= 0 {
		t.Error("no wasted CPU recorded despite thrashing")
	}
}

func TestPreemptionRequeuesAndEventuallyCompletes(t *testing.T) {
	// A 2-hour job with ~4-hour windows: may be preempted but should
	// finish within a few attempts.
	eng, p := testPool(t, 3, 1.0, 4*sim.Hour, 2*sim.Hour)
	done := false
	j := job("medium", 2*3600)
	j.OnComplete = func(sim.Time) { done = true }
	if err := p.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(30 * sim.Day))
	if !done {
		t.Fatal("medium job never completed")
	}
}

func TestSpeedScalesRuntime(t *testing.T) {
	run := func(speed float64) sim.Duration {
		eng := sim.NewEngine()
		p, err := New(eng, sim.NewRNG(1), Config{Name: "p", Machines: []Machine{{
			Speed: speed, MemoryMB: 1024, Platform: lrm.LinuxX86,
			MeanOwnerAway: 1000 * sim.Hour, MeanOwnerBusy: sim.Minute,
		}}})
		if err != nil {
			t.Fatal(err)
		}
		var doneAt sim.Time
		j := job("j", 3600)
		j.OnComplete = func(at sim.Time) { doneAt = at }
		if err := p.Submit(j); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(sim.Time(10 * sim.Day))
		return doneAt.Sub(0)
	}
	t1 := run(1.0)
	t2 := run(2.0)
	if t1 <= 0 || t2 <= 0 {
		t.Fatal("jobs did not complete")
	}
	// The speed-2 machine should finish in roughly half the compute
	// time; allow slack for the initial owner-busy period.
	if !(t2 < t1) {
		t.Errorf("speed 2.0 finished at %v, speed 1.0 at %v", t2, t1)
	}
}

func TestRequirementsFiltering(t *testing.T) {
	eng := sim.NewEngine()
	p, err := New(eng, sim.NewRNG(2), Config{Name: "p", Software: []string{"java"}, Machines: []Machine{
		{Speed: 1, MemoryMB: 512, Platform: lrm.WindowsX86, MeanOwnerAway: 100 * sim.Hour, MeanOwnerBusy: sim.Minute},
		{Speed: 1, MemoryMB: 8192, Platform: lrm.LinuxX86, MeanOwnerAway: 100 * sim.Hour, MeanOwnerBusy: sim.Minute},
	}})
	if err != nil {
		t.Fatal(err)
	}
	bigMem := job("big", 60)
	bigMem.MemoryMB = 4096
	bigMem.Platforms = []lrm.Platform{lrm.LinuxX86}
	bigMem.Software = []string{"java"}
	done := false
	bigMem.OnComplete = func(sim.Time) { done = true }
	if err := p.Submit(bigMem); err != nil {
		t.Fatal(err)
	}
	noSoft := job("nosoft", 60)
	noSoft.Software = []string{"fortran-runtime"}
	stuck := false
	noSoft.OnComplete = func(sim.Time) { stuck = true }
	if err := p.Submit(noSoft); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(2 * sim.Day))
	if !done {
		t.Error("big-memory linux job did not run on the matching machine")
	}
	if stuck {
		t.Error("job with unavailable software dependency ran anyway")
	}
	if p.Info().QueuedJobs != 1 {
		t.Errorf("queue should hold the unsatisfiable job, has %d", p.Info().QueuedJobs)
	}
}

func TestMPIRejected(t *testing.T) {
	_, p := testPool(t, 1, 1, sim.Hour, sim.Hour)
	j := job("mpi", 60)
	j.NeedsMPI = true
	if err := p.Submit(j); err == nil {
		t.Error("Condor pool accepted an MPI job")
	}
}

func TestCancel(t *testing.T) {
	eng, p := testPool(t, 1, 1.0, 100*sim.Hour, sim.Minute)
	j := job("c1", 3600)
	completed := false
	j.OnComplete = func(sim.Time) { completed = true }
	if err := p.Submit(j); err != nil {
		t.Fatal(err)
	}
	// Let it start, then cancel mid-run.
	eng.RunUntil(sim.Time(10 * sim.Minute))
	if !p.Cancel("c1") {
		t.Fatal("running job not found for cancel")
	}
	if p.Cancel("c1") {
		t.Error("double cancel returned true")
	}
	eng.RunUntil(sim.Time(1 * sim.Day))
	if completed {
		t.Error("cancelled job completed")
	}
	if p.Cancel("never-submitted") {
		t.Error("cancel of unknown job returned true")
	}
}

func TestWallLimit(t *testing.T) {
	eng, p := testPool(t, 1, 1.0, 1000*sim.Hour, sim.Minute)
	j := job("w", 7200)
	j.WallLimit = sim.Hour
	var failReason string
	j.OnFail = func(_ sim.Time, r string) { failReason = r }
	if err := p.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(1 * sim.Day))
	if failReason == "" {
		t.Fatal("wall limit never fired")
	}
}

func TestInfoSnapshot(t *testing.T) {
	eng, p := testPool(t, 5, 1.0, 10*sim.Hour, 10*sim.Hour)
	eng.RunUntil(sim.Time(2 * sim.Day))
	info := p.Info()
	if info.TotalCPUs != 5 {
		t.Errorf("TotalCPUs = %d", info.TotalCPUs)
	}
	if info.Kind != "condor" || info.Stable {
		t.Errorf("info misdescribes the pool: %+v", info)
	}
	if info.FreeCPUs < 0 || info.FreeCPUs > 5 {
		t.Errorf("FreeCPUs = %d", info.FreeCPUs)
	}
	if info.NodeMemoryMB != 2048 {
		t.Errorf("NodeMemoryMB = %d", info.NodeMemoryMB)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, sim.NewRNG(1), Config{Name: "", Machines: []Machine{{Speed: 1}}}); err == nil {
		t.Error("expected error for empty name")
	}
	if _, err := New(eng, sim.NewRNG(1), Config{Name: "x"}); err == nil {
		t.Error("expected error for no machines")
	}
	if _, err := New(eng, sim.NewRNG(1), Config{Name: "x", Machines: []Machine{{Speed: 0}}}); err == nil {
		t.Error("expected error for zero speed")
	}
}

func TestStandardUniverseCheckpointing(t *testing.T) {
	// A 40-hour job on short-window machines: impossible in the
	// vanilla universe (see TestLongJobsThrash), but the standard
	// universe carries progress across preemptions and finishes.
	eng := sim.NewEngine()
	machines := make([]Machine, 2)
	for i := range machines {
		machines[i] = Machine{
			Speed: 1.0, MemoryMB: 2048, Platform: lrm.LinuxX86,
			MeanOwnerAway: 3 * sim.Hour, MeanOwnerBusy: 3 * sim.Hour,
		}
	}
	p, err := New(eng, sim.NewRNG(1), Config{
		Name: "std", Machines: machines,
		Checkpointing: true, CheckpointOverhead: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	j := job("long", 40*3600)
	j.OnComplete = func(sim.Time) { done = true }
	if err := p.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(60 * sim.Day))
	if !done {
		t.Fatal("checkpointed long job never completed")
	}
	st := p.Stats()
	if st.Preemptions < 5 {
		t.Errorf("only %d preemptions; the job should have migrated repeatedly", st.Preemptions)
	}
	// Waste is only migration overhead: preemptions × 120 s.
	wantWaste := float64(st.Preemptions) * 120
	if st.WastedCPU > wantWaste*1.01 || st.WastedCPU < wantWaste*0.99 {
		t.Errorf("wasted CPU %.0f s, want ≈ %.0f (overhead only)", st.WastedCPU, wantWaste)
	}
}
