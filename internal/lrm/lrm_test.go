package lrm

import (
	"testing"

	"lattice/internal/sim"
)

func TestJobValidate(t *testing.T) {
	good := &Job{ID: "j", Work: 100, MemoryMB: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	cases := []*Job{
		{ID: "", Work: 1},
		{ID: "x", Work: 0},
		{ID: "x", Work: -5},
		{ID: "x", Work: 1, MemoryMB: -1},
	}
	for i, j := range cases {
		if err := j.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRuntimeOn(t *testing.T) {
	j := &Job{ID: "j", Work: 2 * ReferenceCellsPerSecond}
	if got := j.runtimeOn(1.0); got != 2*sim.Second {
		t.Errorf("runtimeOn(1.0) = %v, want 2 s", got)
	}
	if got := j.runtimeOn(2.0); got != sim.Second {
		t.Errorf("runtimeOn(2.0) = %v, want 1 s", got)
	}
}

func TestHasPlatform(t *testing.T) {
	have := []Platform{LinuxX86, DarwinX86}
	if !hasPlatform(nil, have) {
		t.Error("empty requirement should match anything")
	}
	if !hasPlatform([]Platform{DarwinX86}, have) {
		t.Error("matching platform rejected")
	}
	if hasPlatform([]Platform{WindowsX86}, have) {
		t.Error("missing platform accepted")
	}
}

func TestHasSoftware(t *testing.T) {
	have := []string{"java", "python"}
	if !hasSoftware(nil, have) {
		t.Error("empty requirement should match")
	}
	if !hasSoftware([]string{"java"}, have) {
		t.Error("available software rejected")
	}
	if hasSoftware([]string{"java", "matlab"}, have) {
		t.Error("partially missing software accepted")
	}
}
