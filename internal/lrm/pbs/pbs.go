// Package pbs simulates a dedicated cluster managed by the Portable
// Batch System: whole-node allocation from a FIFO queue with first-fit
// backfill. Clusters are the grid's "stable" resources — jobs run to
// completion without owner interference — and the natural home for
// large-memory and MPI work ("jobs with large memory requirements can
// be sent to clusters with large memory nodes, and tightly coupled
// jobs to clusters with fast interconnects").
package pbs

import (
	"fmt"

	"lattice/internal/lrm"
	"lattice/internal/obs"
	"lattice/internal/sim"
)

// NodeClass describes a group of identical cluster nodes.
type NodeClass struct {
	Count    int
	Speed    float64
	MemoryMB int
}

// Config describes a PBS cluster.
type Config struct {
	Name     string
	Nodes    []NodeClass
	Platform lrm.Platform
	Software []string
	// MPI marks the cluster as having a low-latency interconnect.
	MPI bool
	// DefaultWallLimit is the queue's maximum walltime (0 = none);
	// local policy applied to every job without its own limit.
	DefaultWallLimit sim.Duration
}

type node struct {
	speed    float64
	memoryMB int
	busy     bool
}

type running struct {
	job       *lrm.Job
	nodes     []*node
	doneEvent sim.EventID
	wallEvent sim.EventID
	startedAt sim.Time
}

// Cluster is a PBS LRM.
type Cluster struct {
	eng     *sim.Engine
	cfg     Config
	nodes   []*node
	queue   []*lrm.Job
	running map[string]*running
	stats   lrm.Stats
	ins     *lrm.Instruments
	// queuedAt records local submission times for queue-wait metrics.
	queuedAt map[string]sim.Time
}

// SetObs wires the cluster to an observability hub: queue waits and
// executions become per-resource series and journal events.
func (c *Cluster) SetObs(o *obs.Obs) { c.ins = lrm.NewInstruments(o, c.cfg.Name) }

// New builds a cluster.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("pbs: cluster has no name")
	}
	c := &Cluster{eng: eng, cfg: cfg, running: make(map[string]*running), queuedAt: make(map[string]sim.Time)}
	for i, nc := range cfg.Nodes {
		if nc.Speed <= 0 || nc.Count <= 0 {
			return nil, fmt.Errorf("pbs: node class %d invalid", i)
		}
		for k := 0; k < nc.Count; k++ {
			c.nodes = append(c.nodes, &node{speed: nc.Speed, memoryMB: nc.MemoryMB})
		}
	}
	if len(c.nodes) == 0 {
		return nil, fmt.Errorf("pbs: cluster %s has no nodes", cfg.Name)
	}
	return c, nil
}

// Name implements lrm.LRM.
func (c *Cluster) Name() string { return c.cfg.Name }

// Submit implements lrm.LRM. Jobs whose requirements no node can ever
// satisfy are rejected immediately (qsub-style validation).
func (c *Cluster) Submit(j *lrm.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.NeedsMPI && !c.cfg.MPI {
		return fmt.Errorf("pbs: cluster %s has no MPI interconnect", c.cfg.Name)
	}
	if j.Nodes > 1 && !j.NeedsMPI {
		return fmt.Errorf("pbs: job %s requests %d nodes but is not an MPI job", j.ID, j.Nodes)
	}
	if j.Nodes > len(c.nodes) {
		return fmt.Errorf("pbs: job %s requests %d nodes; cluster %s has %d", j.ID, j.Nodes, c.cfg.Name, len(c.nodes))
	}
	if len(j.Platforms) > 0 {
		ok := false
		for _, p := range j.Platforms {
			if p == c.cfg.Platform {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("pbs: cluster %s platform %s not in job's set", c.cfg.Name, c.cfg.Platform)
		}
	}
	satisfiable := false
	for _, n := range c.nodes {
		if j.MemoryMB <= n.memoryMB {
			satisfiable = true
			break
		}
	}
	if !satisfiable {
		return fmt.Errorf("pbs: no node on %s has %d MB", c.cfg.Name, j.MemoryMB)
	}
	c.stats.TotalQueued++
	c.queue = append(c.queue, j)
	c.queuedAt[j.ID] = c.eng.Now()
	if len(c.queue) > c.stats.MaxQueueSeen {
		c.stats.MaxQueueSeen = len(c.queue)
	}
	c.dispatch()
	return nil
}

// Cancel implements lrm.LRM.
func (c *Cluster) Cancel(jobID string) bool {
	for i, j := range c.queue {
		if j.ID == jobID {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			delete(c.queuedAt, jobID)
			return true
		}
	}
	if r, ok := c.running[jobID]; ok {
		c.eng.Cancel(r.doneEvent)
		c.eng.Cancel(r.wallEvent)
		for _, n := range r.nodes {
			n.busy = false
		}
		delete(c.running, jobID)
		c.dispatch()
		return true
	}
	return false
}

// mpiEfficiency is the parallel efficiency of multi-node MPI jobs
// (communication overhead eats part of the aggregate speed).
const mpiEfficiency = 0.85

// dispatch starts queued jobs on free nodes: FIFO order with first-fit
// backfill (a job later in the queue may start if the head does not
// fit enough free nodes).
func (c *Cluster) dispatch() {
	for qi := 0; qi < len(c.queue); {
		j := c.queue[qi]
		want := j.Nodes
		if want < 1 {
			want = 1
		}
		var targets []*node
		for _, n := range c.nodes {
			if !n.busy && j.MemoryMB <= n.memoryMB {
				targets = append(targets, n)
				if len(targets) == want {
					break
				}
			}
		}
		if len(targets) < want {
			qi++
			continue
		}
		c.queue = append(c.queue[:qi], c.queue[qi+1:]...)
		c.start(j, targets)
	}
}

func (c *Cluster) start(j *lrm.Job, nodes []*node) {
	var aggregate float64
	for _, n := range nodes {
		n.busy = true
		aggregate += n.speed
	}
	if len(nodes) > 1 {
		aggregate *= mpiEfficiency
	}
	dur := sim.Duration(j.Work / (aggregate * lrm.ReferenceCellsPerSecond))
	r := &running{job: j, nodes: nodes, startedAt: c.eng.Now()}
	c.running[j.ID] = r
	c.ins.JobStarted(j, c.eng.Now().Sub(c.queuedAt[j.ID]))
	delete(c.queuedAt, j.ID)
	release := func() {
		for _, n := range nodes {
			n.busy = false
		}
	}
	r.doneEvent = c.eng.Schedule(dur, func() {
		release()
		c.eng.Cancel(r.wallEvent)
		delete(c.running, j.ID)
		c.stats.Completed++
		c.stats.CPUSeconds += dur.Seconds() * aggregate
		c.ins.JobCompleted(j)
		if j.OnComplete != nil {
			j.OnComplete(c.eng.Now())
		}
		c.dispatch()
	})
	limit := j.WallLimit
	if limit == 0 {
		limit = c.cfg.DefaultWallLimit
	}
	if limit > 0 && limit < dur {
		r.wallEvent = c.eng.Schedule(limit, func() {
			release()
			c.eng.Cancel(r.doneEvent)
			delete(c.running, j.ID)
			c.stats.Failed++
			c.stats.WastedCPU += limit.Seconds() * aggregate
			c.ins.JobFailed(j)
			if j.OnFail != nil {
				j.OnFail(c.eng.Now(), "pbs: wall clock limit exceeded")
			}
			c.dispatch()
		})
	}
}

// Info implements lrm.LRM.
func (c *Cluster) Info() lrm.Info {
	info := lrm.Info{
		Name:      c.cfg.Name,
		Kind:      "pbs",
		Platforms: []lrm.Platform{c.cfg.Platform},
		Software:  c.cfg.Software,
		MPI:       c.cfg.MPI,
		Stable:    true,
	}
	for _, n := range c.nodes {
		info.TotalCPUs++
		if !n.busy {
			info.FreeCPUs++
		}
		if n.memoryMB > info.NodeMemoryMB {
			info.NodeMemoryMB = n.memoryMB
		}
	}
	info.QueuedJobs = len(c.queue)
	info.RunningJobs = len(c.running)
	return info
}

// Stats implements lrm.LRM.
func (c *Cluster) Stats() lrm.Stats { return c.stats }
