package pbs

import (
	"fmt"
	"testing"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

func testCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Name:     "hpc",
		Platform: lrm.LinuxX86,
		MPI:      true,
		Nodes: []NodeClass{
			{Count: 4, Speed: 2.0, MemoryMB: 4096},
			{Count: 2, Speed: 1.5, MemoryMB: 32768}, // large-memory nodes
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func job(id string, refSeconds float64) *lrm.Job {
	return &lrm.Job{ID: id, Work: refSeconds * lrm.ReferenceCellsPerSecond, MemoryMB: 512}
}

func TestFIFOCompletion(t *testing.T) {
	eng, c := testCluster(t)
	done := 0
	for i := 0; i < 30; i++ {
		j := job(fmt.Sprintf("j%d", i), 3600)
		j.OnComplete = func(sim.Time) { done++ }
		if err := c.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != 30 {
		t.Fatalf("%d of 30 jobs completed", done)
	}
	if c.Stats().Preemptions != 0 {
		t.Error("dedicated cluster preempted jobs")
	}
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() sim.Time {
		eng, c := testCluster(t)
		for i := 0; i < 12; i++ {
			if err := c.Submit(job(fmt.Sprintf("j%d", i), 7200)); err != nil {
				t.Fatal(err)
			}
		}
		return eng.Run()
	}
	if run() != run() {
		t.Error("same workload produced different makespans")
	}
}

func TestLargeMemoryRouting(t *testing.T) {
	eng, c := testCluster(t)
	big := job("big", 600)
	big.MemoryMB = 16384
	done := false
	big.OnComplete = func(sim.Time) { done = true }
	if err := c.Submit(big); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("large-memory job did not run on the big nodes")
	}
	tooBig := job("huge", 600)
	tooBig.MemoryMB = 65536
	if err := c.Submit(tooBig); err == nil {
		t.Error("cluster accepted a job no node can hold")
	}
}

func TestBackfill(t *testing.T) {
	// Fill all big-memory nodes with long jobs, then submit a
	// large-memory head-of-line job followed by small jobs: the small
	// jobs must not wait for the big one.
	eng, c := testCluster(t)
	for i := 0; i < 2; i++ {
		j := job(fmt.Sprintf("block%d", i), 50*3600)
		j.MemoryMB = 16384
		if err := c.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	headBlocked := job("head", 600)
	headBlocked.MemoryMB = 16384
	var headDone sim.Time
	headBlocked.OnComplete = func(at sim.Time) { headDone = at }
	if err := c.Submit(headBlocked); err != nil {
		t.Fatal(err)
	}
	var smallDone sim.Time
	small := job("small", 600)
	small.OnComplete = func(at sim.Time) { smallDone = at }
	if err := c.Submit(small); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if smallDone == 0 || headDone == 0 {
		t.Fatal("jobs did not complete")
	}
	if smallDone >= headDone {
		t.Errorf("backfill failed: small done at %v, blocked head at %v", smallDone, headDone)
	}
}

func TestMPIPolicy(t *testing.T) {
	eng := sim.NewEngine()
	noMPI, err := New(eng, Config{Name: "serial", Platform: lrm.LinuxX86, Nodes: []NodeClass{{Count: 1, Speed: 1, MemoryMB: 1024}}})
	if err != nil {
		t.Fatal(err)
	}
	j := job("mpi", 60)
	j.NeedsMPI = true
	if err := noMPI.Submit(j); err == nil {
		t.Error("non-MPI cluster accepted MPI job")
	}
	_, withMPI := testCluster(t)
	if err := withMPI.Submit(j); err != nil {
		t.Errorf("MPI cluster rejected MPI job: %v", err)
	}
}

func TestPlatformPolicy(t *testing.T) {
	_, c := testCluster(t)
	j := job("win", 60)
	j.Platforms = []lrm.Platform{lrm.WindowsX86}
	if err := c.Submit(j); err == nil {
		t.Error("linux cluster accepted windows-only job")
	}
}

func TestDefaultWallLimit(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Name: "lim", Platform: lrm.LinuxX86,
		Nodes:            []NodeClass{{Count: 1, Speed: 1, MemoryMB: 1024}},
		DefaultWallLimit: sim.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	j := job("long", 4*3600)
	failed := false
	j.OnFail = func(sim.Time, string) { failed = true }
	if err := c.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !failed {
		t.Error("queue wall limit not enforced")
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	eng, c := testCluster(t)
	// Saturate the 6 nodes.
	for i := 0; i < 6; i++ {
		if err := c.Submit(job(fmt.Sprintf("r%d", i), 3600)); err != nil {
			t.Fatal(err)
		}
	}
	queued := job("q", 3600)
	if err := c.Submit(queued); err != nil {
		t.Fatal(err)
	}
	if !c.Cancel("q") {
		t.Error("queued job not cancellable")
	}
	if !c.Cancel("r0") {
		t.Error("running job not cancellable")
	}
	if c.Cancel("r0") {
		t.Error("double cancel returned true")
	}
	eng.Run()
	if got := c.Stats().Completed; got != 5 {
		t.Errorf("completed = %d, want 5", got)
	}
}

func TestInfo(t *testing.T) {
	eng, c := testCluster(t)
	if err := c.Submit(job("one", 3600)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(sim.Minute))
	info := c.Info()
	if info.TotalCPUs != 6 || info.FreeCPUs != 5 {
		t.Errorf("CPUs = %d/%d, want 5/6 free", info.FreeCPUs, info.TotalCPUs)
	}
	if !info.Stable || !info.MPI || info.Kind != "pbs" {
		t.Errorf("info wrong: %+v", info)
	}
	if info.NodeMemoryMB != 32768 {
		t.Errorf("NodeMemoryMB = %d", info.NodeMemoryMB)
	}
}

func TestMPIMultiNodeJob(t *testing.T) {
	eng, c := testCluster(t)
	// An 8-reference-hour MPI job across 4 speed-2.0 nodes at 85%
	// efficiency: 8 h / (4 × 2.0 × 0.85) ≈ 1.18 h.
	j := job("mpi4", 8*3600)
	j.NeedsMPI = true
	j.Nodes = 4
	var doneAt sim.Time
	j.OnComplete = func(at sim.Time) { doneAt = at }
	if err := c.Submit(j); err != nil {
		t.Fatal(err)
	}
	// While the MPI job runs, only 2 of the 4 fast nodes remain.
	eng.RunUntil(sim.Time(10 * sim.Minute))
	if free := c.Info().FreeCPUs; free != 2 {
		t.Errorf("free nodes during MPI run = %d, want 2", free)
	}
	eng.Run()
	want := 8 * 3600 / (4 * 2.0 * 0.85)
	if got := float64(doneAt); got < want*0.99 || got > want*1.01 {
		t.Errorf("MPI job finished at %.0f s, want ≈ %.0f", got, want)
	}
}

func TestMPIValidation(t *testing.T) {
	_, c := testCluster(t)
	tooWide := job("wide", 60)
	tooWide.NeedsMPI = true
	tooWide.Nodes = 100
	if err := c.Submit(tooWide); err == nil {
		t.Error("cluster accepted an MPI job wider than itself")
	}
	serialMulti := job("serialmulti", 60)
	serialMulti.Nodes = 3
	if err := c.Submit(serialMulti); err == nil {
		t.Error("cluster accepted a multi-node non-MPI job")
	}
}

func TestMPIJobWaitsForEnoughNodes(t *testing.T) {
	eng, c := testCluster(t)
	// Occupy 5 of 6 nodes with 2-hour serial jobs; a 4-node MPI job
	// must wait until enough free up, while serial backfill continues.
	for i := 0; i < 5; i++ {
		if err := c.Submit(job(fmt.Sprintf("s%d", i), 2*3600)); err != nil {
			t.Fatal(err)
		}
	}
	mpi := job("mpi", 3600)
	mpi.NeedsMPI = true
	mpi.Nodes = 4
	var mpiStartObserved bool
	mpi.OnComplete = func(sim.Time) { mpiStartObserved = true }
	if err := c.Submit(mpi); err != nil {
		t.Fatal(err)
	}
	late := job("late", 600)
	var lateDone sim.Time
	late.OnComplete = func(at sim.Time) { lateDone = at }
	if err := c.Submit(late); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !mpiStartObserved {
		t.Fatal("MPI job never ran")
	}
	if lateDone == 0 || lateDone > sim.Time(time2h()) {
		t.Errorf("backfill job done at %v; should have used the remaining free node immediately", lateDone)
	}
}

func time2h() float64 { return 2 * 3600 }
