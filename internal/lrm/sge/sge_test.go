package sge

import (
	"fmt"
	"testing"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

func testCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Name:     "sge",
		Platform: lrm.LinuxX86,
		Nodes: []NodeClass{
			{Count: 2, Cores: 8, Speed: 1.5, MemoryMB: 16384},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func job(id string, refSeconds float64, memMB int) *lrm.Job {
	return &lrm.Job{ID: id, Work: refSeconds * lrm.ReferenceCellsPerSecond, MemoryMB: memMB}
}

func TestSlotPacking(t *testing.T) {
	eng, c := testCluster(t)
	// 16 slots total: 16 equal jobs should all run concurrently and
	// finish simultaneously.
	var finish []sim.Time
	for i := 0; i < 16; i++ {
		j := job(fmt.Sprintf("j%d", i), 3600, 512)
		j.OnComplete = func(at sim.Time) { finish = append(finish, at) }
		if err := c.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(finish) != 16 {
		t.Fatalf("%d of 16 completed", len(finish))
	}
	for _, f := range finish {
		if f != finish[0] {
			t.Fatalf("16 identical jobs on 16 slots should finish together: %v vs %v", f, finish[0])
		}
	}
	// With speed 1.5 a 3600-reference-second job takes 2400 s.
	if want := sim.Time(2400); finish[0] != want {
		t.Errorf("finish at %v, want %v", finish[0], want)
	}
}

func TestSharedMemoryConstraint(t *testing.T) {
	eng, c := testCluster(t)
	// Each node has 16 GB; four 6 GB jobs need 24 GB total, so only
	// two fit per node concurrently despite 8 free cores.
	var running, maxRunning int
	for i := 0; i < 4; i++ {
		j := job(fmt.Sprintf("m%d", i), 3600, 6144)
		j.OnComplete = func(sim.Time) { running-- }
		if err := c.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	// Track concurrency via Info polling.
	stop := eng.Every(sim.Minute, func() {
		if r := c.Info().RunningJobs; r > maxRunning {
			maxRunning = r
		}
		running = 0
	})
	eng.RunUntil(sim.Time(6 * sim.Hour))
	stop()
	if maxRunning != 4 {
		t.Errorf("max concurrent = %d, want 4 (2 per node by memory)", maxRunning)
	}
}

func TestRejectsOversizedAndWrongPlatform(t *testing.T) {
	_, c := testCluster(t)
	if err := c.Submit(job("big", 60, 32768)); err == nil {
		t.Error("accepted job larger than node memory")
	}
	j := job("mac", 60, 512)
	j.Platforms = []lrm.Platform{lrm.DarwinX86}
	if err := c.Submit(j); err == nil {
		t.Error("accepted job for missing platform")
	}
	mpi := job("mpi", 60, 512)
	mpi.NeedsMPI = true
	if err := c.Submit(mpi); err == nil {
		t.Error("non-MPI SGE accepted MPI job")
	}
}

func TestQueueDrainsInOrder(t *testing.T) {
	eng, c := testCluster(t)
	var order []string
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("j%02d", i)
		j := job(id, 1800, 512)
		j.OnComplete = func(sim.Time) { order = append(order, id) }
		if err := c.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(order) != 40 {
		t.Fatalf("%d of 40 completed", len(order))
	}
	// First 16 submitted must be the first 16 finished (same length,
	// FIFO start order).
	early := map[string]bool{}
	for _, id := range order[:16] {
		early[id] = true
	}
	for i := 0; i < 16; i++ {
		if !early[fmt.Sprintf("j%02d", i)] {
			t.Errorf("FIFO violated: j%02d not in first wave %v", i, order[:16])
			break
		}
	}
}

func TestCancel(t *testing.T) {
	eng, c := testCluster(t)
	for i := 0; i < 16; i++ {
		if err := c.Submit(job(fmt.Sprintf("r%d", i), 3600, 512)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Submit(job("queued", 3600, 512)); err != nil {
		t.Fatal(err)
	}
	if !c.Cancel("queued") || !c.Cancel("r3") {
		t.Error("cancel failed")
	}
	eng.Run()
	if got := c.Stats().Completed; got != 15 {
		t.Errorf("completed = %d, want 15", got)
	}
}

func TestWallLimit(t *testing.T) {
	eng, c := testCluster(t)
	j := job("w", 7200, 512)
	j.WallLimit = sim.Hour
	failed := false
	j.OnFail = func(sim.Time, string) { failed = true }
	if err := c.Submit(j); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !failed {
		t.Error("wall limit not enforced")
	}
}

func TestInfoCountsSlots(t *testing.T) {
	eng, c := testCluster(t)
	if err := c.Submit(job("x", 3600, 512)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(sim.Minute))
	info := c.Info()
	if info.TotalCPUs != 16 || info.FreeCPUs != 15 {
		t.Errorf("slots = %d/%d", info.FreeCPUs, info.TotalCPUs)
	}
	if info.Kind != "sge" || !info.Stable {
		t.Errorf("info wrong: %+v", info)
	}
}
