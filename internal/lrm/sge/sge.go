// Package sge simulates a Sun Grid Engine cluster: slot-based
// scheduling where each node exposes one slot per core and node memory
// is shared among the jobs running on it. Like PBS clusters, SGE
// resources are stable (no owner preemption); unlike PBS's whole-node
// allocation, many single-core jobs pack onto one node, which is how
// the paper's SGE resources absorb large batches of serial GARLI
// replicates.
package sge

import (
	"fmt"

	"lattice/internal/lrm"
	"lattice/internal/obs"
	"lattice/internal/sim"
)

// NodeClass describes a group of identical nodes.
type NodeClass struct {
	Count    int
	Cores    int
	Speed    float64
	MemoryMB int // total per node, shared by its slots
}

// Config describes an SGE cluster.
type Config struct {
	Name     string
	Nodes    []NodeClass
	Platform lrm.Platform
	Software []string
	MPI      bool
}

type node struct {
	cores     int
	speed     float64
	memoryMB  int
	usedCores int
	usedMemMB int
}

type running struct {
	job       *lrm.Job
	node      *node
	doneEvent sim.EventID
	wallEvent sim.EventID
}

// Cluster is an SGE LRM.
type Cluster struct {
	eng     *sim.Engine
	cfg     Config
	nodes   []*node
	queue   []*lrm.Job
	running map[string]*running
	stats   lrm.Stats
	ins     *lrm.Instruments
	// queuedAt records local submission times for queue-wait metrics.
	queuedAt map[string]sim.Time
}

// SetObs wires the cluster to an observability hub: queue waits and
// executions become per-resource series and journal events.
func (c *Cluster) SetObs(o *obs.Obs) { c.ins = lrm.NewInstruments(o, c.cfg.Name) }

// New builds a cluster.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("sge: cluster has no name")
	}
	c := &Cluster{eng: eng, cfg: cfg, running: make(map[string]*running), queuedAt: make(map[string]sim.Time)}
	for i, nc := range cfg.Nodes {
		if nc.Speed <= 0 || nc.Count <= 0 || nc.Cores <= 0 {
			return nil, fmt.Errorf("sge: node class %d invalid", i)
		}
		for k := 0; k < nc.Count; k++ {
			c.nodes = append(c.nodes, &node{cores: nc.Cores, speed: nc.Speed, memoryMB: nc.MemoryMB})
		}
	}
	if len(c.nodes) == 0 {
		return nil, fmt.Errorf("sge: cluster %s has no nodes", cfg.Name)
	}
	return c, nil
}

// Name implements lrm.LRM.
func (c *Cluster) Name() string { return c.cfg.Name }

// Submit implements lrm.LRM.
func (c *Cluster) Submit(j *lrm.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.NeedsMPI && !c.cfg.MPI {
		return fmt.Errorf("sge: cluster %s has no MPI interconnect", c.cfg.Name)
	}
	if len(j.Platforms) > 0 {
		ok := false
		for _, p := range j.Platforms {
			if p == c.cfg.Platform {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("sge: cluster %s platform %s not in job's set", c.cfg.Name, c.cfg.Platform)
		}
	}
	satisfiable := false
	for _, n := range c.nodes {
		if j.MemoryMB <= n.memoryMB {
			satisfiable = true
			break
		}
	}
	if !satisfiable {
		return fmt.Errorf("sge: no node on %s has %d MB", c.cfg.Name, j.MemoryMB)
	}
	c.stats.TotalQueued++
	c.queue = append(c.queue, j)
	c.queuedAt[j.ID] = c.eng.Now()
	if len(c.queue) > c.stats.MaxQueueSeen {
		c.stats.MaxQueueSeen = len(c.queue)
	}
	c.dispatch()
	return nil
}

// Cancel implements lrm.LRM.
func (c *Cluster) Cancel(jobID string) bool {
	for i, j := range c.queue {
		if j.ID == jobID {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			delete(c.queuedAt, jobID)
			return true
		}
	}
	if r, ok := c.running[jobID]; ok {
		c.eng.Cancel(r.doneEvent)
		c.eng.Cancel(r.wallEvent)
		c.release(r)
		delete(c.running, jobID)
		c.dispatch()
		return true
	}
	return false
}

func (c *Cluster) release(r *running) {
	r.node.usedCores--
	r.node.usedMemMB -= r.job.MemoryMB
}

// dispatch packs queued jobs onto free slots, FIFO with first-fit
// (slot and shared-memory constrained).
func (c *Cluster) dispatch() {
	for qi := 0; qi < len(c.queue); {
		j := c.queue[qi]
		var target *node
		for _, n := range c.nodes {
			if n.usedCores < n.cores && n.usedMemMB+j.MemoryMB <= n.memoryMB {
				target = n
				break
			}
		}
		if target == nil {
			qi++
			continue
		}
		c.queue = append(c.queue[:qi], c.queue[qi+1:]...)
		c.start(j, target)
	}
}

func (c *Cluster) start(j *lrm.Job, n *node) {
	n.usedCores++
	n.usedMemMB += j.MemoryMB
	dur := sim.Duration(j.Work / (n.speed * lrm.ReferenceCellsPerSecond))
	r := &running{job: j, node: n}
	c.running[j.ID] = r
	c.ins.JobStarted(j, c.eng.Now().Sub(c.queuedAt[j.ID]))
	delete(c.queuedAt, j.ID)
	r.doneEvent = c.eng.Schedule(dur, func() {
		c.eng.Cancel(r.wallEvent)
		c.release(r)
		delete(c.running, j.ID)
		c.stats.Completed++
		c.stats.CPUSeconds += dur.Seconds() * n.speed
		c.ins.JobCompleted(j)
		if j.OnComplete != nil {
			j.OnComplete(c.eng.Now())
		}
		c.dispatch()
	})
	if j.WallLimit > 0 && j.WallLimit < dur {
		r.wallEvent = c.eng.Schedule(j.WallLimit, func() {
			c.eng.Cancel(r.doneEvent)
			c.release(r)
			delete(c.running, j.ID)
			c.stats.Failed++
			c.stats.WastedCPU += j.WallLimit.Seconds() * n.speed
			c.ins.JobFailed(j)
			if j.OnFail != nil {
				j.OnFail(c.eng.Now(), "sge: wall clock limit exceeded")
			}
			c.dispatch()
		})
	}
}

// Info implements lrm.LRM.
func (c *Cluster) Info() lrm.Info {
	info := lrm.Info{
		Name:      c.cfg.Name,
		Kind:      "sge",
		Platforms: []lrm.Platform{c.cfg.Platform},
		Software:  c.cfg.Software,
		MPI:       c.cfg.MPI,
		Stable:    true,
	}
	for _, n := range c.nodes {
		info.TotalCPUs += n.cores
		info.FreeCPUs += n.cores - n.usedCores
		if n.memoryMB > info.NodeMemoryMB {
			info.NodeMemoryMB = n.memoryMB
		}
	}
	info.QueuedJobs = len(c.queue)
	info.RunningJobs = len(c.running)
	return info
}

// Stats implements lrm.LRM.
func (c *Cluster) Stats() lrm.Stats { return c.stats }
