package estimate

import (
	"math"
	"testing"

	"lattice/internal/phylo"
	"lattice/internal/workload"
)

func trainedEstimator(t *testing.T, n int) *Estimator {
	t.Helper()
	e, err := Bootstrap(DefaultConfig(), workload.NewGenerator(1), n)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSchemaMatchesFeatures(t *testing.T) {
	s := Schema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumFeatures() != 9 {
		t.Fatalf("schema has %d features; the paper uses 9 predictors", s.NumFeatures())
	}
	gen := workload.NewGenerator(2)
	for i := 0; i < 50; i++ {
		spec := gen.Job()
		row := Features(&spec)
		if len(row) != 9 {
			t.Fatalf("feature row has %d entries", len(row))
		}
	}
}

func TestPredictBeforeTraining(t *testing.T) {
	e := New(DefaultConfig())
	spec := workload.NewGenerator(3).Job()
	if _, err := e.Predict(&spec); err == nil {
		t.Error("expected error predicting with untrained model")
	}
	if e.Ready() {
		t.Error("Ready() true before training")
	}
	if err := e.Retrain(); err == nil {
		t.Error("expected error retraining with empty matrix")
	}
}

func TestPredictionAccuracy(t *testing.T) {
	e := trainedEstimator(t, 150)
	// Held-out jobs from the same population: predictions should be
	// within a factor of ~3 for most jobs.
	gen := workload.NewGenerator(99)
	specs, secs := gen.TrainingJobs(60)
	within3 := 0
	for i := range specs {
		pred, err := e.Predict(&specs[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred <= 0 {
			t.Fatalf("non-positive prediction %g", pred)
		}
		if r := pred / secs[i]; r > 1.0/3 && r < 3 {
			within3++
		}
	}
	if frac := float64(within3) / float64(len(specs)); frac < 0.6 {
		t.Errorf("only %.0f%% of held-out predictions within 3×; model too weak", 100*frac)
	}
}

func TestPercentVarianceExplained(t *testing.T) {
	e := trainedEstimator(t, 150)
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ~93% for its 150-job matrix; our synthetic
	// population should land in the same band on the model scale.
	if st.PctVarExplained < 80 || st.PctVarExplained > 100 {
		t.Errorf("percent variance explained = %.1f, want in [80, 100]", st.PctVarExplained)
	}
	if st.TypicalErrorFactor < 1 || st.TypicalErrorFactor > 4 {
		t.Errorf("typical error factor = %.2f, want in [1, 4]", st.TypicalErrorFactor)
	}
	if st.RawRMSESeconds <= 0 {
		t.Errorf("raw rmse = %g", st.RawRMSESeconds)
	}
	t.Logf("log-scale %%Var = %.1f (paper: ~93); raw-scale %%Var = %.1f; typical error ×%.2f",
		st.PctVarExplained, st.RawPctVarExplained, st.TypicalErrorFactor)
}

func TestPredictOnSpeedScaling(t *testing.T) {
	e := trainedEstimator(t, 100)
	spec := workload.NewGenerator(5).Job()
	ref, err := e.Predict(&spec)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := e.PredictOn(&spec, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.PredictOn(&spec, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-ref/2) > 1e-9 || math.Abs(slow-ref*2) > 1e-9 {
		t.Errorf("speed scaling wrong: ref %.1f fast %.1f slow %.1f", ref, fast, slow)
	}
	if _, err := e.PredictOn(&spec, 0); err == nil {
		t.Error("expected error for zero speed")
	}
}

func TestImportanceTopPredictors(t *testing.T) {
	e := trainedEstimator(t, 150)
	imp, err := e.Importance(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 9 {
		t.Fatalf("got %d importance rows", len(imp))
	}
	rank := map[string]int{}
	for i, r := range imp {
		rank[r.Feature] = i
	}
	// The defining shape of the paper's Figure 2: rate heterogeneity
	// is the top predictor; the data type signal (carried jointly by
	// DataType and the per-type SubstModel factor) is high; the number
	// of rate categories is noise at the bottom.
	if rank[FeatRateHet] > 1 {
		t.Errorf("RateHetModel ranked %d; should be the top predictor", rank[FeatRateHet])
	}
	dt := rank[FeatDataType]
	if rank[FeatSubstModel] < dt {
		dt = rank[FeatSubstModel]
	}
	if dt > 3 {
		t.Errorf("DataType/SubstModel best rank %d; the data-type signal should be near the top", dt)
	}
	if rank[FeatNumRateCats] < 5 {
		t.Errorf("NumRateCats ranked %d; should be near the bottom", rank[FeatNumRateCats])
	}
	if rank[FeatStartTree] < 5 {
		t.Errorf("StartingTree ranked %d; should be near the bottom", rank[FeatStartTree])
	}
}

func TestContinuousRetrainingImproves(t *testing.T) {
	// Start with a small matrix, then stream in observations and
	// retrain; held-out error should drop.
	gen := workload.NewGenerator(31)
	e, err := Bootstrap(DefaultConfig(), gen, 20)
	if err != nil {
		t.Fatal(err)
	}
	holdGen := workload.NewGenerator(77)
	holdSpecs, holdSecs := holdGen.TrainingJobs(40)
	meanLogErr := func() float64 {
		var s float64
		for i := range holdSpecs {
			p, err := e.Predict(&holdSpecs[i])
			if err != nil {
				t.Fatal(err)
			}
			d := math.Log(p) - math.Log(holdSecs[i])
			s += d * d
		}
		return s / float64(len(holdSpecs))
	}
	before := meanLogErr()
	specs, secs := gen.TrainingJobs(200)
	for i := range specs {
		if err := e.AddObservation(&specs[i], secs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Retrain(); err != nil {
		t.Fatal(err)
	}
	after := meanLogErr()
	if after >= before {
		t.Errorf("retraining on 10× more data did not reduce error: %.3f → %.3f", before, after)
	}
	if e.NumObservations() != 220 {
		t.Errorf("matrix has %d rows, want 220", e.NumObservations())
	}
}

func TestCrossValidate(t *testing.T) {
	e := trainedEstimator(t, 120)
	m, err := e.CrossValidate(5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Correlation < 0.8 {
		t.Errorf("CV log-scale correlation %.3f, want > 0.8", m.Correlation)
	}
	if m.WithinFactor2 < 0.4 {
		t.Errorf("only %.0f%% of CV predictions within 2×", 100*m.WithinFactor2)
	}
	if m.MedianAbsRelError > 1.5 {
		t.Errorf("median relative error %.2f too large", m.MedianAbsRelError)
	}
}

func TestAddObservationValidation(t *testing.T) {
	e := New(DefaultConfig())
	spec := workload.NewGenerator(8).Job()
	if err := e.AddObservation(&spec, -5); err == nil {
		t.Error("expected error for negative runtime")
	}
	if err := e.AddObservation(&spec, 0); err == nil {
		t.Error("expected error for zero runtime")
	}
}

func TestFeaturesEncodeConfigRateCats(t *testing.T) {
	// NumRateCats is the configuration value, present (and inert) even
	// for homogeneous-rate jobs — the default of 4 when unset.
	spec := workload.JobSpec{
		DataType: phylo.Nucleotide, RateHet: phylo.RateHomogeneous,
		SubstModel: "JC69", NumTaxa: 5, SeqLength: 100, SearchReps: 1,
		StartingTree: phylo.StartRandom,
	}
	row := Features(&spec)
	if row[6] != 4 {
		t.Errorf("unset NumRateCats should encode the default 4, got %v", row[6])
	}
	spec.NumRateCats = 6
	if row := Features(&spec); row[6] != 6 {
		t.Errorf("explicit NumRateCats should pass through, got %v", row[6])
	}
}
