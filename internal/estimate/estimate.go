// Package estimate provides a priori GARLI runtime estimates using
// random forests — the paper's Section VI. It encodes a job
// specification's nine analysis parameters as model covariates, trains
// a forest on observed (parameters, runtime) pairs, predicts runtimes
// for new submissions, and continuously folds completed
// reference-cluster replicates back into the training matrix, exactly
// as the paper's system does ("we simply rebuild the model, which is
// immediately available for use with incoming jobs").
package estimate

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"lattice/internal/forest"
	"lattice/internal/workload"
)

// Feature names, in schema order. These are the nine predictor
// variables of the paper's Figure 2.
const (
	FeatRateHet     = "RateHetModel"
	FeatDataType    = "DataType"
	FeatNumTaxa     = "NumTaxa"
	FeatSeqLength   = "SeqLength"
	FeatSubstModel  = "SubstModel"
	FeatSearchReps  = "SearchReps"
	FeatNumRateCats = "NumRateCats"
	FeatStartTree   = "StartingTree"
	FeatAttachments = "AttachmentsPerTaxon"
)

// Schema returns the nine-covariate feature schema.
func Schema() *forest.Schema {
	return &forest.Schema{
		Names: []string{
			FeatRateHet, FeatDataType, FeatNumTaxa, FeatSeqLength,
			FeatSubstModel, FeatSearchReps, FeatNumRateCats,
			FeatStartTree, FeatAttachments,
		},
		Kinds: []forest.FeatureKind{
			forest.Categorical, forest.Categorical, forest.Numeric, forest.Numeric,
			forest.Categorical, forest.Numeric, forest.Numeric,
			forest.Categorical, forest.Numeric,
		},
	}
}

// substModelCodes gives each substitution model a stable categorical
// code.
var substModelCodes = map[string]float64{
	"JC69": 0, "JC": 0,
	"K80": 1, "K2P": 1,
	"HKY85": 2, "HKY": 2,
	"GTR":       3,
	"poisson":   4,
	"empirical": 5, "dayhoff": 5, "jtt": 5, "wag": 5,
	"GY94": 6,
}

// Features encodes a job specification as a covariate row matching
// Schema.
func Features(s *workload.JobSpec) []float64 {
	code, ok := substModelCodes[s.SubstModel]
	if !ok {
		code = 7 // unknown bucket
	}
	// NumRateCats is the configuration value as written in the job
	// file. It stays at GARLI's default of 4 even when no rate
	// heterogeneity is enabled (where it is inert) — which is why the
	// paper found it to carry almost no importance.
	cats := s.NumRateCats
	if cats == 0 {
		cats = 4
	}
	return []float64{
		float64(s.RateHet),
		float64(s.DataType),
		float64(s.NumTaxa),
		float64(s.SeqLength),
		code,
		float64(s.SearchReps),
		float64(cats),
		float64(s.StartingTree),
		float64(s.AttachmentsPerTaxon),
	}
}

// Config controls the estimator's forest. The paper's production
// setting is 10^4 trees sub-sampling the nine predictors at each node.
type Config struct {
	NumTrees int
	MTry     int
	Seed     int64
}

// DefaultConfig uses a smaller ensemble than the paper's 10^4 so
// interactive retraining stays instant; the Figure 2 bench passes the
// full 10^4.
func DefaultConfig() Config {
	return Config{NumTrees: 500, MTry: 3, Seed: 1}
}

// Estimator predicts job runtimes on the reference computer and keeps
// itself up to date from completed jobs. Safe for concurrent use.
//
// Internally the forest regresses log(runtime): GARLI runtimes span
// minutes to months, and log-scale training preserves relative
// accuracy for short jobs (which drive BOINC deadline and bundling
// decisions) as well as long ones. Reported statistics (percent
// variance explained, importance) are computed on the raw-seconds
// scale to match the paper's reporting.
type Estimator struct {
	mu  sync.Mutex
	ds  *forest.Dataset
	f   *forest.Forest
	cfg Config

	// rawForest regresses raw seconds for paper-style reporting
	// (Stats); rebuilt lazily when the matrix grows.
	rawForest     *forest.Forest
	rawForestRows int
}

// New returns an estimator with an empty training matrix.
func New(cfg Config) *Estimator {
	return &Estimator{
		ds:  &forest.Dataset{Schema: Schema()},
		cfg: cfg,
	}
}

// NumObservations returns the size of the training matrix.
func (e *Estimator) NumObservations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ds.NumRows()
}

// AddObservation records a completed job's reference-scale runtime
// (seconds on a speed-1.0 machine). It does not retrain; call Retrain
// (cheap, per the paper) when ready.
func (e *Estimator) AddObservation(spec *workload.JobSpec, refSeconds float64) error {
	if refSeconds <= 0 {
		return fmt.Errorf("estimate: runtime must be positive, got %g", refSeconds)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ds.Append(Features(spec), math.Log(refSeconds))
}

// Retrain rebuilds the forest from the current training matrix. The
// matrix is snapshotted under the lock and training runs outside it —
// tree growing joins worker channels, and holding mu across that
// would stall every reader for the full training latency.
func (e *Estimator) Retrain() error {
	e.mu.Lock()
	if e.ds.NumRows() < 5 {
		n := e.ds.NumRows()
		e.mu.Unlock()
		return fmt.Errorf("estimate: only %d observations; need at least 5 to train", n)
	}
	ds := e.ds.Clone()
	cfg := e.cfg
	e.mu.Unlock()
	f, err := forest.Train(ds, forest.Config{
		NumTrees:    cfg.NumTrees,
		MTry:        cfg.MTry,
		MinLeafSize: 5,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.f = f
	e.mu.Unlock()
	return nil
}

// Ready reports whether a model has been trained.
func (e *Estimator) Ready() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.f != nil
}

// Predict returns the estimated runtime of the job in seconds on the
// reference computer (speed 1.0).
func (e *Estimator) Predict(spec *workload.JobSpec) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return 0, fmt.Errorf("estimate: model not trained")
	}
	return math.Exp(e.f.Predict(Features(spec))), nil
}

// PredictOn scales the reference estimate by a resource's measured
// speed: a speed-2.0 resource finishes the job in half the reference
// time (paper Section VI-E(a)).
func (e *Estimator) PredictOn(spec *workload.JobSpec, speed float64) (float64, error) {
	if speed <= 0 {
		return 0, fmt.Errorf("estimate: resource speed must be positive, got %g", speed)
	}
	ref, err := e.Predict(spec)
	if err != nil {
		return 0, err
	}
	return ref / speed, nil
}

// ModelStats summarizes the estimator's out-of-bag fit.
type ModelStats struct {
	// PctVarExplained is 1 - OOB MSE / Var(y) in percent on the
	// model's log-runtime scale — the headline statistic the paper
	// reports as "approximately 93%".
	PctVarExplained float64
	// TypicalErrorFactor is exp(OOB log-RMSE): the multiplicative
	// factor a typical prediction is off by (1.5 = within ±50%).
	TypicalErrorFactor float64
	// RawPctVarExplained is the same statistic from a forest
	// regressing raw seconds (R randomForest-style); with runtimes
	// spanning four orders of magnitude it is dominated by the few
	// largest jobs and is reported for completeness.
	RawPctVarExplained float64
	// RawRMSESeconds is the raw-scale OOB RMSE in seconds.
	RawRMSESeconds float64
}

// Stats reports the model's out-of-bag fit on both scales; see
// ModelStats. The raw-scale forest is trained on demand and cached
// until the training matrix changes.
func (e *Estimator) Stats() (ModelStats, error) {
	e.mu.Lock()
	if e.f == nil {
		e.mu.Unlock()
		return ModelStats{}, fmt.Errorf("estimate: model not trained")
	}
	if e.rawForest == nil || e.rawForestRows != e.ds.NumRows() {
		// Snapshot the matrix and train outside the lock, like
		// Retrain: the raw-scale fit is a cache fill, not a critical
		// section.
		raw := e.ds.Clone()
		rows := e.ds.NumRows()
		cfg := e.cfg
		e.mu.Unlock()
		for i, y := range raw.Y {
			raw.Y[i] = math.Exp(y)
		}
		f, err := forest.Train(raw, forest.Config{
			NumTrees:    cfg.NumTrees,
			MTry:        cfg.MTry,
			MinLeafSize: 5,
			Seed:        cfg.Seed + 1,
		})
		if err != nil {
			return ModelStats{}, err
		}
		e.mu.Lock()
		e.rawForest = f
		e.rawForestRows = rows
	}
	defer e.mu.Unlock()
	if e.f == nil {
		return ModelStats{}, fmt.Errorf("estimate: model not trained")
	}
	return ModelStats{
		PctVarExplained:    e.f.PercentVarExplained(),
		TypicalErrorFactor: math.Exp(math.Sqrt(e.f.OOBMSE())),
		RawPctVarExplained: e.rawForest.PercentVarExplained(),
		RawRMSESeconds:     math.Sqrt(e.rawForest.OOBMSE()),
	}, nil
}

// Importance returns permutation variable importance (%IncMSE) for the
// nine predictors, sorted descending — the paper's Figure 2.
func (e *Estimator) Importance(seed int64) ([]forest.ImportanceResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return nil, fmt.Errorf("estimate: model not trained")
	}
	imp := e.f.Importance(seed)
	sort.Slice(imp, func(i, j int) bool { return imp[i].PctIncMSE > imp[j].PctIncMSE })
	return imp, nil
}

// CVMetrics summarizes k-fold cross-validation of the estimator
// ("in our cross-validation testing, predicted runtimes matched the
// actual runtimes closely enough to greatly improve scheduling
// effectiveness").
type CVMetrics struct {
	Correlation       float64 // Pearson r between log prediction and log truth
	MedianAbsRelError float64 // median |pred - actual| / actual, raw scale
	WithinFactor2     float64 // fraction of jobs predicted within 2× of actual
}

// CrossValidate runs k-fold cross-validation on the current training
// matrix.
func (e *Estimator) CrossValidate(k int) (CVMetrics, error) {
	e.mu.Lock()
	ds := e.ds.Clone()
	cfg := e.cfg
	e.mu.Unlock()
	pred, err := forest.CrossValidate(ds, forest.Config{
		NumTrees:    cfg.NumTrees,
		MTry:        cfg.MTry,
		MinLeafSize: 5,
		Seed:        cfg.Seed,
	}, k)
	if err != nil {
		return CVMetrics{}, err
	}
	var m CVMetrics
	m.Correlation = pearson(pred, ds.Y)
	relErrs := make([]float64, len(pred))
	within := 0
	for i := range pred {
		p, y := math.Exp(pred[i]), math.Exp(ds.Y[i])
		relErrs[i] = math.Abs(p-y) / y
		if ratio := p / y; ratio >= 0.5 && ratio <= 2 {
			within++
		}
	}
	sort.Float64s(relErrs)
	m.MedianAbsRelError = relErrs[len(relErrs)/2]
	m.WithinFactor2 = float64(within) / float64(len(pred))
	return m, nil
}

func varianceOf(y []float64) float64 {
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ss float64
	for _, v := range y {
		ss += (v - mean) * (v - mean)
	}
	return ss / float64(len(y))
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Bootstrap seeds an estimator with n generated training jobs and
// trains it — the equivalent of the paper's initial ~150-job matrix.
func Bootstrap(cfg Config, gen *workload.Generator, n int) (*Estimator, error) {
	e := New(cfg)
	specs, secs := gen.TrainingJobs(n)
	for i := range specs {
		if err := e.AddObservation(&specs[i], secs[i]); err != nil {
			return nil, err
		}
	}
	if err := e.Retrain(); err != nil {
		return nil, err
	}
	return e, nil
}
