package core

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"lattice/internal/metasched"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	// Shrink for unit-test speed: fewer volunteers.
	for i := range cfg.Resources {
		if cfg.Resources[i].Kind == "boinc" {
			pop := *cfg.Resources[i].Population
			pop.Hosts = 50
			cfg.Resources[i].Population = &pop
		}
	}
	cfg.TrainingJobs = 60
	return cfg
}

func TestNewDefaultFederation(t *testing.T) {
	l, err := New(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.ResourceNames()) != 9 {
		t.Errorf("federation has %d resources, want 9", len(l.ResourceNames()))
	}
	if l.Boinc == nil {
		t.Error("BOINC server not wired")
	}
	if l.Estimator == nil || !l.Estimator.Ready() {
		t.Error("estimator not bootstrapped")
	}
	// MDS should see every resource immediately (providers publish on
	// start).
	if got := len(l.Index.Snapshot()); got != 9 {
		t.Errorf("MDS sees %d resources, want 9", got)
	}
	if l.TotalCores() < 200 {
		t.Errorf("federation has only %d cores", l.TotalCores())
	}
}

func TestSubmissionFlowsThroughTheGrid(t *testing.T) {
	l, err := New(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	sub := workload.Submission{
		Spec: workload.JobSpec{
			DataType: phylo.Nucleotide, SubstModel: "HKY85",
			RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.6,
			NumTaxa: 15, SeqLength: 600, SearchReps: 1,
			StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 10, Seed: 3,
		},
		Replicates: 25,
		UserEmail:  "u@lab.edu",
	}
	b, err := l.SubmitSubmission(sub)
	if err != nil {
		t.Fatal(err)
	}
	l.Run(60 * sim.Day)
	st, err := l.Service.Status(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatalf("batch not done after 60 simulated days: %+v", st)
	}
	if st.Completed == 0 {
		t.Error("nothing completed")
	}
	if len(l.Mailer.SentTo("u@lab.edu")) < 2 {
		t.Error("user not notified")
	}
}

// TestSmokeDigestUnchangedByAdmitWiring pins the zero-cost-when-
// disabled guarantee of the admission layer: with Config.Admit left at
// its zero value, the exact CI smoke workload (cmd/lattice -smoke:
// DefaultConfig(1), generator seed 7, 10 replicates) produces the same
// journal digest it did before admission control existed. Any
// accidental behaviour change on the plain ingest path — an extra
// journal event, a reordered callback, a perturbed clock — shows up
// here as a digest break.
func TestSmokeDigestUnchangedByAdmitWiring(t *testing.T) {
	const want = "f85eb603dc66"
	l, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	sub := workload.NewGenerator(7).Submission()
	sub.Replicates = 10
	sub.UserEmail = "smoke@example.edu"
	b, err := l.SubmitSubmission(sub)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		l.Portal.Pump(6 * sim.Hour)
		if st, err := l.Service.Status(b.ID); err == nil && st.Done {
			break
		}
	}
	st, err := l.Service.Status(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatalf("smoke batch not done: %+v", st)
	}
	digest := l.Obs.Journal.Digest()
	if len(digest) < len(want) || digest[:len(want)] != want {
		t.Fatalf("smoke journal digest %.12s…, want %s… — the disabled admit path is not bit-identical to the pre-admission build", digest, want)
	}
}

func TestContinuousRetrainingFork(t *testing.T) {
	l, err := New(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	before := l.Estimator.NumObservations()
	sub := workload.Submission{
		Spec: workload.JobSpec{
			DataType: phylo.Nucleotide, SubstModel: "JC69",
			NumTaxa: 10, SeqLength: 300, SearchReps: 1,
			StartingTree: phylo.StartRandom, Seed: 4,
		},
		Replicates: 5,
		UserEmail:  "u@lab.edu",
	}
	if _, err := l.SubmitSubmission(sub); err != nil {
		t.Fatal(err)
	}
	if l.Retrains() != 1 {
		t.Fatalf("reference forks = %d, want 1", l.Retrains())
	}
	l.Run(30 * sim.Day)
	if got := l.Estimator.NumObservations(); got != before+1 {
		t.Errorf("training matrix grew %d → %d; want +1", before, got)
	}
}

func TestEstimatorDisabledWithoutTraining(t *testing.T) {
	cfg := smallConfig(4)
	cfg.TrainingJobs = 0
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Estimator != nil {
		t.Error("estimator present despite TrainingJobs = 0")
	}
}

func TestBadResourceKind(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Resources = append(cfg.Resources, ResourceSpec{Kind: "slurm", Name: "nope", Nodes: 1, Speed: 1})
	if _, err := New(cfg); err == nil {
		t.Error("unknown resource kind accepted")
	}
}

func TestSchedulerPolicyPlumbing(t *testing.T) {
	cfg := smallConfig(6)
	cfg.Scheduler.Policy = metasched.PolicyNaive
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Scheduler == nil {
		t.Fatal("no scheduler")
	}
}

func TestSGEAndDefaultBoincPopulation(t *testing.T) {
	cfg := Config{
		Seed: 9,
		Resources: []ResourceSpec{
			{Kind: "sge", Name: "slots", Nodes: 2, Cores: 4, Speed: 1.2, MemMB: 8192},
			{Kind: "boinc", Name: "volunteers"}, // default population
		},
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sge, ok := l.Resource("slots")
	if !ok || sge.Info().TotalCPUs != 8 {
		t.Errorf("sge slots = %+v", sge.Info())
	}
	if l.Boinc == nil || l.Boinc.NumHosts() != 200 {
		t.Errorf("default BOINC population missing: %v", l.Boinc)
	}
}

func TestGridStatusThroughCore(t *testing.T) {
	l, err := New(smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.Portal.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/grid/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Resources []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"resources"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Resources) != 9 {
		t.Errorf("status lists %d resources, want 9", len(st.Resources))
	}
	kinds := map[string]bool{}
	for _, r := range st.Resources {
		kinds[r.Kind] = true
	}
	for _, want := range []string{"condor", "pbs", "sge", "boinc"} {
		if !kinds[want] {
			t.Errorf("status missing kind %q", want)
		}
	}
}
