package core

import (
	"encoding/json"
	"fmt"
	"math"
	"path/filepath"

	"lattice/internal/sim"
	"lattice/internal/wal"
)

// RecoveryReport summarizes what Recover rebuilt.
type RecoveryReport struct {
	// SnapshotSeq is the snapshot the rebuild verified against (0 when
	// the run crashed before its first snapshot).
	SnapshotSeq uint64
	// TailRecords is how many post-snapshot log records were verified.
	TailRecords int
	// TornTail reports that the final log record was truncated
	// mid-write and dropped.
	TornTail bool
	// Watermark is the virtual time the rebuild resumed at.
	Watermark sim.Time
	// Inputs is how many submissions/registrations were re-injected.
	Inputs int
	// Records is the total durable record count at resume.
	Records uint64
}

// Recover resumes a deployment from the durable state in dir. The
// simulation's machine state — event queues, half-run batches, host
// populations — is closures and heaps that no snapshot could capture
// faithfully; what recovery relies on instead is that the whole
// coordinator is deterministic per seed. It rebuilds the deployment
// from cfg, re-injects every logged input at its recorded virtual
// time, and re-executes up to the durable frontier. The regenerated
// record stream is verified against the log record-for-record (and
// against the snapshot's aggregates at the snapshot point), so any
// divergence — config drift, code drift, corruption — fails loudly
// instead of silently forking history. On success the directory is
// reset to a fresh snapshot at the frontier and the deployment
// continues live, mid-batch, with crashes re-armed.
//
// When dir holds no durable state, Recover is New with cfg.Durable
// set to dir.
func Recover(dir string, cfg Config) (*Lattice, error) {
	st, err := wal.Load(dir)
	if err != nil {
		return nil, err
	}
	cfg.Durable = dir
	if st == nil {
		return New(cfg)
	}
	if st.Seed != cfg.Seed {
		return nil, fmt.Errorf("core: durable state in %s was written with seed %d, config has seed %d", dir, st.Seed, cfg.Seed)
	}

	l, err := build(cfg, true)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(l.Engine, cfg.Seed)
	rec.keep = true
	rec.stopAt = st.LastSeq
	if st.Snap != nil {
		rec.captureAt = st.Snap.Seq
	}
	l.wireDurable(rec)
	rec.begin()
	if err := l.Portal.SetArtifactDir(filepath.Join(dir, "artifacts")); err != nil {
		return nil, err
	}

	if err := l.replay(st); err != nil {
		return nil, err
	}
	if err := l.verifyRebuild(st); err != nil {
		return nil, err
	}

	// The rebuilt state becomes the new durable baseline: fresh
	// snapshot at the frontier, empty log, crashes re-armed.
	lg, err := wal.Reset(dir, rec.snapshot(), cfg.WAL)
	if err != nil {
		return nil, err
	}
	rec.endRebuild()
	rec.attachLog(lg)
	if l.Faults != nil {
		l.Faults.SetCrashStops(true)
	}
	l.Recovery = &RecoveryReport{
		TailRecords: len(st.Tail),
		TornTail:    st.Torn,
		Watermark:   st.Watermark,
		Inputs:      len(st.Inputs()),
		Records:     rec.count,
	}
	if st.Snap != nil {
		l.Recovery.SnapshotSeq = st.Snap.Seq
	}
	return l, nil
}

// replay re-executes the run: inputs recorded before the engine ever
// stepped are applied first (exactly as they originally interleaved
// with time-zero work), then each remaining input is applied after
// draining the engine through its recorded time — the same
// drain-then-apply the original caller performed. Back-to-back inputs
// at the same instant are re-applied back-to-back without running the
// engine between them. The final drain runs to the durable watermark;
// the recorder halts the engine once the last durable record has been
// regenerated.
func (l *Lattice) replay(st *wal.State) error {
	inputs := st.Inputs()
	i := 0
	for ; i < len(inputs) && inputs[i].Pre; i++ {
		if err := l.applyInput(inputs[i]); err != nil {
			return err
		}
	}
	// The remaining inputs were originally recorded after the engine
	// had stepped; mark the recorder so re-applying them between
	// engine runs (possibly before this engine's first step) re-emits
	// them without the Pre flag, exactly as the live run did.
	l.rec.setNotPre(true)
	prevAt := sim.Time(math.Inf(-1))
	for ; i < len(inputs); i++ {
		r := inputs[i]
		if r.At != prevAt {
			l.Engine.RunUntil(r.At)
		}
		if err := l.applyInput(r); err != nil {
			return err
		}
		prevAt = r.At
	}
	l.rec.setNotPre(false)
	l.Engine.RunUntil(st.Watermark)
	return nil
}

// applyInput re-injects one logged input through the path it
// originally arrived by — the paths differ in bookkeeping (portal
// ownership) and RNG side effects (core's reference fork), so the
// origin label picks the exact same code path.
func (l *Lattice) applyInput(r wal.Record) error {
	switch r.Kind {
	case wal.KindUser:
		l.Portal.RestoreUser(r.Token, r.Email)
		return nil
	case wal.KindWorkflow:
		if r.WF == nil {
			return fmt.Errorf("core: workflow record %d has no payload", r.Seq)
		}
		if _, err := l.SubmitWorkflow(*r.WF); err != nil {
			return fmt.Errorf("core: replaying workflow record %d: %w", r.Seq, err)
		}
		return nil
	case wal.KindSubmission:
		if r.Sub == nil {
			return fmt.Errorf("core: submission record %d has no payload", r.Seq)
		}
		var err error
		switch {
		case r.Queued && r.Origin == "portal":
			// Portal-queued submissions replay through the portal so
			// batch ownership is restored when the drain accepts them;
			// admission rejections re-shed deterministically and are not
			// replay errors.
			_, _, err = l.Portal.EnqueueOwned(*r.Sub)
		case r.Queued:
			// The record marks an ingest enqueue; re-enqueueing it
			// re-emits the same durable record and re-execution
			// regenerates the drain-time scheduling.
			err = l.Service.EnqueueBatchOrigin(*r.Sub, r.Origin, nil)
		case r.Origin == "core":
			_, err = l.SubmitSubmission(*r.Sub)
		case r.Origin == "portal":
			_, err = l.Portal.Resubmit(*r.Sub)
		default:
			_, err = l.Service.SubmitBatchOrigin(*r.Sub, r.Origin)
		}
		if err != nil {
			return fmt.Errorf("core: replaying submission record %d: %w", r.Seq, err)
		}
		return nil
	}
	return fmt.Errorf("core: cannot replay record %d of kind %q", r.Seq, r.Kind)
}

// verifyRebuild checks the regenerated record stream against the
// durable history: every logged record must have been re-emitted
// field-for-field at the same sequence number, and the snapshot's
// aggregates must match the rebuild's state at the snapshot point.
// This is what turns "deterministic re-execution" from an assumption
// into an invariant.
func (l *Lattice) verifyRebuild(st *wal.State) error {
	rec := l.rec
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.count < st.LastSeq {
		return fmt.Errorf("core: recovery diverged: regenerated %d of %d durable records", rec.count, st.LastSeq)
	}
	if st.Snap != nil {
		if rec.captured == nil {
			return fmt.Errorf("core: recovery never reached snapshot seq %d", st.Snap.Seq)
		}
		if err := snapshotsEqual(rec.captured, st.Snap); err != nil {
			return fmt.Errorf("core: recovery diverged from snapshot at seq %d: %w", st.Snap.Seq, err)
		}
		// Cross-check the rebuilt journal itself against the
		// snapshot's recorded prefix digest.
		d, err := l.Obs.Journal.DigestAt(st.Snap.JournalLen)
		if err != nil {
			return fmt.Errorf("core: recovery journal check: %w", err)
		}
		if d != st.Snap.JournalDigest {
			return fmt.Errorf("core: rebuilt journal prefix digest %s != snapshot %s", d, st.Snap.JournalDigest)
		}
	}
	for _, want := range st.Tail {
		if want.Seq == 0 || want.Seq > uint64(len(rec.memory)) {
			return fmt.Errorf("core: recovery diverged: log record %d was never regenerated", want.Seq)
		}
		got := rec.memory[want.Seq-1]
		if !recordsEqual(got, want) {
			return fmt.Errorf("core: recovery diverged at record %d: regenerated %s, log holds %s",
				want.Seq, mustJSON(got), mustJSON(want))
		}
	}
	return nil
}

// snapshotsEqual compares two snapshots via canonical JSON (maps
// marshal key-sorted; float64 round-trips exactly).
func snapshotsEqual(a, b *wal.Snapshot) error {
	x := *a
	y := *b
	// Version is stamped at write time; the captured twin never was.
	x.Version = 0
	y.Version = 0
	if mustJSON(x) != mustJSON(y) {
		return fmt.Errorf("rebuilt state %s != durable %s", mustJSON(x), mustJSON(y))
	}
	return nil
}

func recordsEqual(a, b wal.Record) bool {
	return mustJSON(a) == mustJSON(b)
}

func mustJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("<unencodable: %v>", err)
	}
	return string(data)
}
