package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"lattice/internal/faults"
	"lattice/internal/gsbl"
	"lattice/internal/metasched"
	"lattice/internal/phylo"
	"lattice/internal/shard"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// clusterBase is a small all-PBS federation template: deterministic
// (no per-machine jitter draws), fast, and homogeneous so digests
// depend only on routing and scheduling.
func clusterBase(seed int64) Config {
	var res []ResourceSpec
	for i := 0; i < 4; i++ {
		res = append(res, ResourceSpec{
			Kind: "pbs", Name: fmt.Sprintf("pbs%02d", i),
			Nodes: 16, Speed: 2.0, MemMB: 4096,
		})
	}
	return Config{
		Seed:      seed,
		Scheduler: metasched.DefaultConfig(),
		Resources: res,
	}
}

func clusterSubmission(email string, seed int64) workload.Submission {
	return workload.Submission{
		Spec: workload.JobSpec{
			DataType: phylo.Nucleotide, SubstModel: "HKY85",
			RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.6,
			NumTaxa: 15, SeqLength: 600, SearchReps: 1,
			StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 10, Seed: seed,
		},
		Replicates: 4,
		UserEmail:  email,
	}
}

// clusterFASTA generates a small alignment for portal submissions.
func clusterFASTA(t *testing.T) string {
	t.Helper()
	rng := sim.NewRNG(6)
	m, err := phylo.NewJC69()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := phylo.NewSiteRates(phylo.RateHomogeneous, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree := phylo.RandomTree(phylo.TaxonNames(8), 0.1, rng)
	al, err := phylo.SimulateAlignment(tree, m, rs, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := al.WriteFASTA(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// clusterForm builds a multipart submission body.
func clusterForm(t *testing.T, fields map[string]string, fasta string) (string, io.Reader) {
	t.Helper()
	var body bytes.Buffer
	w := multipart.NewWriter(&body)
	for k, v := range fields {
		if err := w.WriteField(k, v); err != nil {
			t.Fatal(err)
		}
	}
	fw, err := w.CreateFormFile("datafile", "data.fasta")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(fw, fasta); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return w.FormDataContentType(), &body
}

// clusterDone reports whether every shard has drained its ingest
// queue and finished every accepted batch.
func clusterDone(c *Cluster) bool {
	if c.PendingArrivals() != 0 {
		return false
	}
	for _, l := range c.Shards {
		if l.Service.IngestDepth() != 0 {
			return false
		}
		for _, id := range l.Service.Batches() {
			st, err := l.Service.Status(id)
			if err != nil || !st.Done {
				return false
			}
		}
	}
	return true
}

// runClusterToDone pumps on absolute 1-hour boundaries until done.
func runClusterToDone(t *testing.T, c *Cluster, deadline sim.Time) {
	t.Helper()
	const step = sim.Hour
	now := sim.Time(0)
	for _, l := range c.Shards {
		if l.Engine.Now() > now {
			now = l.Engine.Now()
		}
	}
	for at := sim.Time(sim.Duration(int(float64(now)/float64(step))+1) * step); at <= deadline; at = at.Add(step) {
		c.RunUntil(at)
		if clusterDone(c) {
			return
		}
	}
	t.Fatalf("cluster not done by t=%v", deadline)
}

// checkConservation asserts exactly-one-terminal per submitted job on
// every shard.
func checkConservation(t *testing.T, c *Cluster) {
	t.Helper()
	total := 0
	for k, l := range c.Shards {
		for job, n := range l.Obs.Journal.TerminalCounts() {
			if n != 1 {
				t.Errorf("shard %d: job %s has %d terminal events, want 1", k, job, n)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no jobs observed at all")
	}
}

// TestClusterRoutedSubmissions checks the whole accept path: each
// submission lands on its router-owned shard, batch IDs carry the
// shard prefix, the serialized front door drains, and every job
// reaches exactly one terminal state.
func TestClusterRoutedSubmissions(t *testing.T) {
	base := clusterBase(21)
	base.Ingest = gsbl.IngestConfig{PerSubmissionSeconds: 2, PerReplicateSeconds: 0.5}
	c, err := NewCluster(ClusterConfig{Shards: 2, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	type accepted struct {
		shard int
		id    string
	}
	var got []accepted
	for i := 0; i < 10; i++ {
		email := fmt.Sprintf("user%02d@example.edu", i)
		k, err := c.SubmitSubmission(clusterSubmission(email, int64(100+i)), func(b *gsbl.Batch, err error) {
			if err != nil {
				t.Errorf("accept %s: %v", email, err)
				return
			}
			got = append(got, accepted{shard: shard.Route(email, "core", 2), id: b.ID})
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := shard.Route(email, "core", 2); k != want {
			t.Errorf("submission for %s routed to shard %d, want %d", email, k, want)
		}
	}
	runClusterToDone(t, c, sim.Time(10*sim.Day))
	if len(got) != 10 {
		t.Fatalf("%d batches accepted, want 10", len(got))
	}
	for _, a := range got {
		if !strings.HasPrefix(a.id, fmt.Sprintf("shard%d-batch-", a.shard)) {
			t.Errorf("batch %s not prefixed for shard %d", a.id, a.shard)
		}
	}
	checkConservation(t, c)
}

// TestClusterPartitionAndLeaseShares checks the two share modes: the
// static partition splits the federation round-robin (and drops the
// reference cluster from shards that don't own it), the lease mode
// replicates it everywhere with gates that admit exactly one shard
// per resource at any instant.
func TestClusterPartitionAndLeaseShares(t *testing.T) {
	base := clusterBase(22)
	part, err := NewCluster(ClusterConfig{Shards: 2, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	if got := part.Shards[0].ResourceNames(); len(got) != 2 || got[0] != "pbs00" || got[1] != "pbs02" {
		t.Errorf("shard 0 partition = %v, want [pbs00 pbs02]", got)
	}
	if got := part.Shards[1].ResourceNames(); len(got) != 2 || got[0] != "pbs01" || got[1] != "pbs03" {
		t.Errorf("shard 1 partition = %v, want [pbs01 pbs03]", got)
	}

	lease, err := NewCluster(ClusterConfig{Shards: 2, Base: base, Share: shard.ShareLease})
	if err != nil {
		t.Fatal(err)
	}
	for k, l := range lease.Shards {
		if got := len(l.ResourceNames()); got != 4 {
			t.Errorf("lease shard %d sees %d resources, want 4", k, got)
		}
	}
	// At t=0 (epoch 0) resource i is leased to shard i mod 2.
	if r, _ := lease.Shards[0].Resource("pbs00"); r.Info().TotalCPUs == 0 {
		t.Error("shard 0 should hold pbs00's lease at t=0")
	}
	if r, _ := lease.Shards[0].Resource("pbs01"); r.Info().TotalCPUs != 0 {
		t.Error("shard 0 should not hold pbs01's lease at t=0")
	}
	if r, _ := lease.Shards[1].Resource("pbs01"); r.Info().TotalCPUs == 0 {
		t.Error("shard 1 should hold pbs01's lease at t=0")
	}

	// Work still completes under lease rotation.
	for i := 0; i < 6; i++ {
		email := fmt.Sprintf("lease%02d@example.edu", i)
		if _, err := lease.SubmitSubmission(clusterSubmission(email, int64(200+i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	runClusterToDone(t, lease, sim.Time(10*sim.Day))
	checkConservation(t, lease)
}

// TestClusterSameSeedDigests is the determinism pin: at every shard
// count, two same-seed runs of the same scheduled workload produce
// bit-identical per-shard journals.
func TestClusterSameSeedDigests(t *testing.T) {
	run := func(shards int) string {
		base := clusterBase(23)
		base.Ingest = gsbl.IngestConfig{PerSubmissionSeconds: 2, PerReplicateSeconds: 0.5}
		c, err := NewCluster(ClusterConfig{Shards: shards, Base: base})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			email := fmt.Sprintf("seeduser%02d@example.edu", i)
			c.ScheduleSubmission(sim.Time(float64(i)*533+7), clusterSubmission(email, int64(300+i)))
		}
		runClusterToDone(t, c, sim.Time(10*sim.Day))
		checkConservation(t, c)
		return c.Digest()
	}
	for _, n := range []int{1, 2, 4} {
		a, b := run(n), run(n)
		if a != b {
			t.Errorf("shards=%d: same-seed digests differ: %s vs %s", n, a, b)
		}
	}
}

// TestClusterFrontRouter drives the sharded deployment through HTTP
// only: registration routes by email, the token finds its home shard
// on later requests, batch and trace paths route by ID prefix, and
// the merged /metrics and /grid/status expose every shard.
func TestClusterFrontRouter(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Shards: 2, Base: clusterBase(24)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	const email = "router@example.edu"
	wantShard := shard.Route(email, "portal", 2)

	resp, err := http.PostForm(ts.URL+"/register", url.Values{"email": {email}})
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if reg.Token == "" {
		t.Fatal("no token issued")
	}
	if _, ok := c.Shards[wantShard].Portal.LookupToken(reg.Token); !ok {
		t.Fatalf("token not registered on owner shard %d", wantShard)
	}

	// Submit with the token only — the router must find the issuing
	// shard by scanning registered tokens.
	ctype, body := clusterForm(t, map[string]string{
		"datatype":     "nucleotide",
		"ratematrix":   "HKY85",
		"ratehetmodel": "gamma",
		"replicates":   "4",
	}, clusterFASTA(t))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/garli/create", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ctype)
	req.Header.Set("X-Lattice-Token", reg.Token)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create rejected (%d): %s", resp.StatusCode, raw)
	}
	var out struct {
		Batch string `json:"batch"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.Batch, fmt.Sprintf("shard%d-batch-", wantShard)) {
		t.Fatalf("batch %s not created on owner shard %d", out.Batch, wantShard)
	}

	c.Pump(48 * sim.Hour)

	// The prefixed ID alone routes the status request.
	resp, err = http.Get(ts.URL + "/batch/" + out.Batch + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Done bool `json:"done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Done {
		t.Error("batch not done after 48 simulated hours")
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for k := range c.Shards {
		if !strings.Contains(string(metrics), fmt.Sprintf("shard=%q", fmt.Sprint(k))) {
			t.Errorf("merged /metrics missing shard=%d series", k)
		}
	}

	resp, err = http.Get(ts.URL + "/grid/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Shards []struct {
			Shard     int `json:"shard"`
			Resources []struct {
				Name string `json:"name"`
			} `json:"resources"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(status.Shards) != 2 {
		t.Fatalf("/grid/status reports %d shards, want 2", len(status.Shards))
	}
	if len(status.Shards[0].Resources)+len(status.Shards[1].Resources) != 4 {
		t.Error("/grid/status does not cover the full partitioned federation")
	}
}

// TestClusterShardCrashRecoversLocally kills exactly one shard under
// durability, recovers it from its own WAL directory, and proves the
// other shard was never touched and the cluster's final per-shard
// digests match an uninterrupted same-seed twin.
func TestClusterShardCrashRecoversLocally(t *testing.T) {
	const seed = 25
	const crashShard = 1
	crashAt := sim.Time(3*sim.Hour + 1800)
	shardFaults := func(k int) *faults.Schedule {
		if k != crashShard {
			return nil
		}
		return &faults.Schedule{CrashAt: []sim.Time{crashAt}}
	}
	schedule := func(c *Cluster) {
		for i := 0; i < 16; i++ {
			email := fmt.Sprintf("crashuser%02d@example.edu", i)
			// Arrivals straddle the crash so recovery must both replay
			// WAL-recorded enqueues and re-schedule undelivered ones.
			c.ScheduleSubmission(sim.Time(float64(i)*1500+13), clusterSubmission(email, int64(400+i)))
		}
	}
	base := clusterBase(seed)
	base.Ingest = gsbl.IngestConfig{PerSubmissionSeconds: 30, PerReplicateSeconds: 5}

	// Uninterrupted twin: same fault schedule, crash disarmed.
	twin, err := NewCluster(ClusterConfig{Shards: 2, Base: base, ShardFaults: shardFaults})
	if err != nil {
		t.Fatal(err)
	}
	twin.Shards[crashShard].Faults.SetCrashStops(false)
	schedule(twin)
	runClusterToDone(t, twin, sim.Time(10*sim.Day))

	// Durable run: killed, then recovered shard-locally.
	c, err := NewCluster(ClusterConfig{
		Shards: 2, Base: base, ShardFaults: shardFaults,
		DurableRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	survivor := c.Shards[1-crashShard]
	schedule(c)
	for len(c.CrashedShards()) == 0 {
		c.RunUntil(c.Shards[0].Engine.Now().Add(sim.Hour))
	}
	if got := c.CrashedShards(); len(got) != 1 || got[0] != crashShard {
		t.Fatalf("crashed shards = %v, want [%d]", got, crashShard)
	}

	rep, err := c.RecoverShard(crashShard)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Inputs == 0 {
		t.Fatalf("recovery replayed nothing: %+v", rep)
	}
	if c.Shards[1-crashShard] != survivor {
		t.Error("recovery rebuilt the surviving shard")
	}
	if c.Shards[1-crashShard].Recovery != nil {
		t.Error("surviving shard carries a recovery report")
	}
	runClusterToDone(t, c, sim.Time(10*sim.Day))
	checkConservation(t, c)

	want := twin.ShardDigests()
	got := c.ShardDigests()
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("shard %d digest %s != uninterrupted twin %s", k, got[k], want[k])
		}
	}
}

// TestClusterLeaseRotationAcrossCrash pins lease rotation across a
// shard crash/recover boundary: under ShareLease a shard is killed
// after at least one rotation, stays down while further rotations
// elapse, and is rebuilt from its own WAL. Because lease ownership is
// a pure function of (resource, virtual time) — configuration, not
// replicated state — the recovered shard must see exactly the
// ownership an uninterrupted twin sees, and the final per-shard
// digests must match the twin's bit for bit.
func TestClusterLeaseRotationAcrossCrash(t *testing.T) {
	const seed = 26
	const crashShard = 0
	term := 2 * sim.Hour
	crashAt := sim.Time(3 * sim.Hour) // one rotation behind it, more while down
	shardFaults := func(k int) *faults.Schedule {
		if k != crashShard {
			return nil
		}
		return &faults.Schedule{CrashAt: []sim.Time{crashAt}}
	}
	schedule := func(c *Cluster) {
		for i := 0; i < 12; i++ {
			email := fmt.Sprintf("leasecrash%02d@example.edu", i)
			c.ScheduleSubmission(sim.Time(float64(i)*1700+11), clusterSubmission(email, int64(500+i)))
		}
	}
	base := clusterBase(seed)
	base.Ingest = gsbl.IngestConfig{PerSubmissionSeconds: 30, PerReplicateSeconds: 5}

	twin, err := NewCluster(ClusterConfig{
		Shards: 2, Share: shard.ShareLease, LeaseTerm: term,
		Base: base, ShardFaults: shardFaults,
	})
	if err != nil {
		t.Fatal(err)
	}
	twin.Shards[crashShard].Faults.SetCrashStops(false)
	schedule(twin)
	runClusterToDone(t, twin, sim.Time(10*sim.Day))

	c, err := NewCluster(ClusterConfig{
		Shards: 2, Share: shard.ShareLease, LeaseTerm: term,
		Base: base, ShardFaults: shardFaults,
		DurableRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	schedule(c)
	for len(c.CrashedShards()) == 0 {
		c.RunUntil(c.Shards[1-crashShard].Engine.Now().Add(sim.Hour))
	}
	// Let further rotations pass while the shard is down: the survivor
	// runs on alone, so by recovery time the leases the crashed shard
	// held have rotated away and back.
	c.RunUntil(c.Shards[1-crashShard].Engine.Now().Add(2 * term))
	if _, err := c.RecoverShard(crashShard); err != nil {
		t.Fatal(err)
	}

	// The recovered shard's gates agree with the schedule right now:
	// resource i is visible iff this shard owns its lease.
	leases := shard.Leases{Shards: 2, Term: term}
	rec := c.Shards[crashShard]
	now := rec.Engine.Now()
	for i, name := range rec.ResourceNames() {
		r, ok := rec.Resource(name)
		if !ok {
			t.Fatalf("recovered shard lost resource %s", name)
		}
		wantHeld := leases.Owner(i, now) == crashShard
		if gotHeld := r.Info().TotalCPUs > 0; gotHeld != wantHeld {
			t.Errorf("recovered shard: resource %s held=%v at t=%v, schedule says %v", name, gotHeld, now, wantHeld)
		}
	}

	runClusterToDone(t, c, sim.Time(10*sim.Day))
	checkConservation(t, c)
	want := twin.ShardDigests()
	got := c.ShardDigests()
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("shard %d digest %s != uninterrupted lease twin %s", k, got[k], want[k])
		}
	}
}
