package core

import (
	"os"
	"strings"
	"testing"

	"lattice/internal/boinc"
	"lattice/internal/faults"
	"lattice/internal/obs"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/wal"
	"lattice/internal/workload"
)

// recoverConfig is a trimmed federation that still exercises every
// durable record kind: stability learning on, submit retries on, a
// BOINC pool for workunit state, hour-scale jobs.
func recoverConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.TrainingJobs = 30
	cfg.Scheduler.BundleTargetSeconds = 0
	cfg.Scheduler.StabilityAlpha = 0.2
	for i := range cfg.Resources {
		if cfg.Resources[i].Kind == "boinc" {
			pop := boinc.DefaultPopulation(120)
			cfg.Resources[i].Population = &pop
		}
	}
	return cfg
}

func recoverSubmission() workload.Submission {
	return workload.Submission{
		// Hour-scale jobs (the fault experiment's spec) so the batch is
		// still in flight when the coordinator dies.
		Spec: workload.JobSpec{
			DataType: phylo.Nucleotide, SubstModel: "GTR",
			RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.5,
			NumTaxa: 48, SeqLength: 2500, SearchReps: 24,
			StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 30, Seed: 5,
		},
		Replicates: 60,
		Bootstrap:  true,
		UserEmail:  "recover@example.edu",
	}
}

// crashingSchedule is the default hostile schedule plus one or more
// coordinator kills mid-batch.
func crashingSchedule(at ...sim.Time) *faults.Schedule {
	sch := DefaultFaultSchedule()
	// A flaky gatekeeper on the pool the estimator loves most, open
	// from t=0 so it catches the initial placement wave, makes
	// submit-retry backoff state certain to exist before the crash, so
	// the tests genuinely exercise its restoration.
	sch.Events = append(sch.Events, faults.Event{
		At: 0, Kind: faults.KindSubmitFail,
		Resource: "umd-hpc", Duration: 6 * sim.Hour, P: 0.5,
	})
	sch.CrashAt = at
	return sch
}

// pumpBoundary advances the lattice to the next absolute 6-hour
// boundary. Pumping on absolute boundaries (rather than now+6h) keeps
// a recovered run — which resumes mid-interval at the crash time — on
// the same observation grid as an uninterrupted one, so both stop
// checking at the same instant and their journals stay comparable.
func pumpBoundary(lat *Lattice) {
	const step = 6 * sim.Hour
	k := int(float64(lat.Engine.Now()) / float64(step))
	lat.Engine.RunUntil(sim.Time(sim.Duration(k+1) * step))
}

// runToDone pumps the lattice on the boundary grid until the batch is
// terminal.
func runToDone(t *testing.T, lat *Lattice, batchID string) {
	t.Helper()
	deadline := lat.Engine.Now().Add(90 * sim.Day)
	for lat.Engine.Now() < deadline {
		pumpBoundary(lat)
		if lat.Faults != nil && lat.Faults.Crashed() {
			t.Fatal("unexpected crash stop")
		}
		if st, err := lat.Service.Status(batchID); err == nil && st.Done {
			return
		}
	}
	t.Fatal("batch not terminal after 90 days")
}

// TestDurableDigestUnchanged is the zero-cost guarantee: turning
// durability on draws no RNG, schedules no events, and leaves the
// journal digest bit-identical to a durable-off run.
func TestDurableDigestUnchanged(t *testing.T) {
	run := func(durable string) string {
		cfg := recoverConfig(11)
		cfg.Durable = durable
		lat, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		batch, err := lat.SubmitSubmission(recoverSubmission())
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		runToDone(t, lat, batch.ID)
		if err := lat.DurableErr(); err != nil {
			t.Fatalf("wal error: %v", err)
		}
		return lat.Obs.Journal.Digest()
	}
	plain := run("")
	durable := run(t.TempDir() + "/wal")
	if plain != durable {
		t.Fatalf("durable-on digest %s != durable-off %s", durable, plain)
	}
}

// TestRecoverMidBatch is the heart of the tentpole: kill the
// coordinator mid-batch, recover, and prove the resumed deployment is
// indistinguishable from one that never died — learned stability
// EWMAs and submit-retry backoff state restored (the verification
// inside Recover compares every logged EWMA/backoff record against
// the rebuild), placement decisions identical (full journal stage
// sequence, not just terminal counts), and the final digest
// bit-identical to an uninterrupted same-seed run.
func TestRecoverMidBatch(t *testing.T) {
	const seed = 11
	crashAt := sim.Time(4 * sim.Hour)

	// Uninterrupted twin: same schedule, crashes journal but don't
	// stop the engine.
	twinCfg := recoverConfig(seed)
	twinCfg.Faults = crashingSchedule(crashAt)
	twin, err := New(twinCfg)
	if err != nil {
		t.Fatalf("New(twin): %v", err)
	}
	twin.Faults.SetCrashStops(false)
	twinBatch, err := twin.SubmitSubmission(recoverSubmission())
	if err != nil {
		t.Fatalf("submit(twin): %v", err)
	}
	runToDone(t, twin, twinBatch.ID)

	// Durable run: killed at crashAt, then recovered.
	dir := t.TempDir() + "/wal"
	cfg := recoverConfig(seed)
	cfg.Faults = crashingSchedule(crashAt)
	cfg.Durable = dir
	cfg.WAL.SnapshotEvery = 200 // force several snapshot rotations
	lat, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	batch, err := lat.SubmitSubmission(recoverSubmission())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	batchID := batch.ID
	for !lat.Faults.Crashed() {
		pumpBoundary(lat)
	}
	if err := lat.DurableErr(); err != nil {
		t.Fatalf("wal error before crash: %v", err)
	}
	if st, err := lat.Service.Status(batchID); err != nil || st.Done {
		t.Fatalf("batch finished before the crash (done=%v, err=%v); crash is not mid-batch", st.Done, err)
	}

	// Capture the dying coordinator's learned state, then abandon it
	// without any orderly shutdown — the crash model.
	wantStability := map[string]float64{}
	for _, rs := range cfg.Resources {
		if v, ok := lat.Scheduler.Stability(rs.Name); ok {
			wantStability[rs.Name] = v
		}
	}
	wantJournalLen := lat.Obs.Journal.Len()
	wantDigest := lat.Obs.Journal.Digest()
	wantRetries := lat.Scheduler.Stats().SubmitRetries
	lat = nil

	recovered, err := Recover(dir, cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	rep := recovered.Recovery
	if rep == nil {
		t.Fatal("no recovery report")
	}
	if rep.SnapshotSeq == 0 {
		t.Errorf("expected a snapshot before the crash (records=%d)", rep.Records)
	}
	if rep.Inputs == 0 {
		t.Error("no inputs replayed")
	}

	// Satellite 4: learned stability EWMAs restored exactly.
	for name, want := range wantStability {
		got, ok := recovered.Scheduler.Stability(name)
		if !ok || got != want {
			t.Errorf("stability[%s] = %v (ok=%v) after recovery, want %v", name, got, ok, want)
		}
	}
	// Submit-retry backoff state: the retry counter (and, via the
	// record-for-record verification inside Recover, every backoff
	// decision) survives.
	if got := recovered.Scheduler.Stats().SubmitRetries; got != wantRetries {
		t.Errorf("submit retries = %d after recovery, want %d", got, wantRetries)
	}
	if wantRetries == 0 {
		t.Error("schedule produced no submit retries; backoff restoration untested")
	}
	if got := recovered.Obs.Journal.Len(); got != wantJournalLen {
		t.Errorf("journal length %d after recovery, want %d", got, wantJournalLen)
	}
	if got := recovered.Obs.Journal.Digest(); got != wantDigest {
		t.Errorf("journal digest changed across recovery:\n got %s\nwant %s", got, wantDigest)
	}

	// Resume to completion and compare against the uninterrupted twin:
	// digest, and the explicit stage sequence (placement decisions,
	// not just terminal counts).
	runToDone(t, recovered, batchID)
	if got, want := recovered.Obs.Journal.Digest(), twin.Obs.Journal.Digest(); got != want {
		t.Fatalf("final digest after crash+recovery %s != uninterrupted %s", got, want)
	}
	gotEvents := recovered.Obs.Journal.Events()
	wantEvents := twin.Obs.Journal.Events()
	if len(gotEvents) != len(wantEvents) {
		t.Fatalf("journal has %d events, twin %d", len(gotEvents), len(wantEvents))
	}
	for i := range gotEvents {
		if gotEvents[i] != wantEvents[i] {
			t.Fatalf("stage sequence diverges at event %d: %+v != %+v", i, gotEvents[i], wantEvents[i])
		}
	}
	for name := range wantStability {
		got, _ := recovered.Scheduler.Stability(name)
		want, _ := twin.Scheduler.Stability(name)
		if got != want {
			t.Errorf("final stability[%s] = %v, twin %v", name, got, want)
		}
	}
	if err := recovered.DurableErr(); err != nil {
		t.Fatalf("wal error after recovery: %v", err)
	}
}

// TestRecoverTornTail kills the coordinator, rips bytes off the log
// tail (the torn final frame of a real crash), and recovers from the
// remaining prefix.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir() + "/wal"
	cfg := recoverConfig(7)
	cfg.Faults = crashingSchedule(sim.Time(4 * sim.Hour))
	cfg.Durable = dir
	lat, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	batch, err := lat.SubmitSubmission(recoverSubmission())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	for !lat.Faults.Crashed() {
		pumpBoundary(lat)
	}
	fi, err := os.Stat(wal.LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal.LogPath(dir), fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	recovered, err := Recover(dir, cfg)
	if err != nil {
		t.Fatalf("Recover over torn tail: %v", err)
	}
	if !recovered.Recovery.TornTail {
		t.Error("torn tail not reported")
	}
	// The record the truncation tore off was the kill note itself, so
	// the rebuild resumes an instant before the scheduled 4h kill and
	// the schedule would fire it again. The process already died once;
	// disarm the re-run.
	recovered.Faults.SetCrashStops(false)
	runToDone(t, recovered, batch.ID)
	terminal := recovered.Obs.Journal.TerminalCounts()
	if len(terminal) < len(batch.Jobs) {
		t.Fatalf("journal tracked %d jobs, want >= %d", len(terminal), len(batch.Jobs))
	}
	for job, n := range terminal {
		if n != 1 {
			t.Errorf("job %s reached %d terminal states", job, n)
		}
	}
}

// TestRecoverGuards pins the error paths: seed mismatch refuses, an
// empty directory falls through to New.
func TestRecoverGuards(t *testing.T) {
	dir := t.TempDir() + "/wal"
	cfg := recoverConfig(3)
	cfg.Durable = dir
	lat, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := lat.SubmitSubmission(recoverSubmission()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	lat.Run(sim.Hour)

	bad := recoverConfig(4)
	if _, err := Recover(dir, bad); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("seed mismatch not refused: %v", err)
	}

	empty := t.TempDir() + "/fresh"
	cfg2 := recoverConfig(3)
	fresh, err := Recover(empty, cfg2)
	if err != nil {
		t.Fatalf("Recover(empty): %v", err)
	}
	if fresh.Recovery != nil {
		t.Error("fresh deployment reports a recovery")
	}
	if !wal.HasState(empty) {
		// The fresh path must have created a live log (genesis record).
		t.Error("Recover over empty dir did not start a durable log")
	}
}

// TestRecoverOfRecovery crashes a recovered deployment again: the
// post-recovery Reset state must itself be a valid recovery baseline.
func TestRecoverOfRecovery(t *testing.T) {
	dir := t.TempDir() + "/wal"
	cfg := recoverConfig(13)
	sch := crashingSchedule(sim.Time(2*sim.Hour), sim.Time(4*sim.Hour))
	cfg.Faults = sch
	cfg.Durable = dir
	cfg.WAL.SnapshotEvery = 400
	lat, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	batch, err := lat.SubmitSubmission(recoverSubmission())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	batchID := batch.ID
	crashes := 0
	deadline := lat.Engine.Now().Add(90 * sim.Day)
	for lat.Engine.Now() < deadline {
		pumpBoundary(lat)
		if lat.Faults.Crashed() {
			crashes++
			lat, err = Recover(dir, cfg)
			if err != nil {
				t.Fatalf("recovery %d: %v", crashes, err)
			}
			continue
		}
		if st, err := lat.Service.Status(batchID); err == nil && st.Done {
			break
		}
	}
	if crashes != 2 {
		t.Fatalf("crashed %d times, want 2", crashes)
	}
	st, err := lat.Service.Status(batchID)
	if err != nil || !st.Done {
		t.Fatalf("batch not terminal after two recoveries: %+v, %v", st, err)
	}

	// Same-seed uninterrupted twin for the digest.
	twinCfg := recoverConfig(13)
	twinCfg.Faults = sch
	twin, err := New(twinCfg)
	if err != nil {
		t.Fatalf("New(twin): %v", err)
	}
	twin.Faults.SetCrashStops(false)
	tb, err := twin.SubmitSubmission(recoverSubmission())
	if err != nil {
		t.Fatalf("submit(twin): %v", err)
	}
	runToDone(t, twin, tb.ID)
	if got, want := lat.Obs.Journal.Digest(), twin.Obs.Journal.Digest(); got != want {
		t.Fatalf("double-recovery digest %s != uninterrupted %s", got, want)
	}
}

// TestJournalObserverSeesEveryEvent pins the obs hook the recorder
// rides on.
func TestJournalObserverSeesEveryEvent(t *testing.T) {
	eng := sim.NewEngine()
	j := obs.NewJournal(eng)
	var seen []obs.Event
	j.SetObserver(func(ev obs.Event) { seen = append(seen, ev) })
	j.Record("b", "j1", obs.StageSubmit, "r", "d")
	j.Record("b", "j1", obs.StageComplete, "r", "")
	if len(seen) != 2 || seen[0].Stage != obs.StageSubmit || seen[1].Stage != obs.StageComplete {
		t.Fatalf("observer saw %+v", seen)
	}
	d0, err := j.DigestAt(0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := j.DigestAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != j.Digest() {
		t.Error("DigestAt(len) != Digest()")
	}
	if d0 == d2 {
		t.Error("empty-prefix digest equals full digest")
	}
	if _, err := j.DigestAt(3); err == nil {
		t.Error("DigestAt past the end did not error")
	}
}
