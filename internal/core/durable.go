package core

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"sync"

	"lattice/internal/obs"
	"lattice/internal/sim"
	"lattice/internal/wal"
	"lattice/internal/workload"
)

// recorder is the durability adapter between the live components and
// the write-ahead log. It implements the narrow Durability interfaces
// of obs (as the journal observer), metasched, boinc, gsbl and
// portal; owns record sequence numbering; and maintains the aggregate
// shadow state that snapshots capture — all from its own bookkeeping,
// never by calling back into the components (hook methods run under
// component locks, so re-entry would deadlock).
//
// The same type serves both modes: live (log attached, every record
// appended) and rebuild (during Recover: records kept in memory for
// verification against the log, with the engine stopped once the
// durable frontier is regenerated).
type recorder struct {
	mu   sync.Mutex
	eng  *sim.Engine
	seed int64
	log  *wal.Log // nil while rebuilding

	// Shadow aggregates, updated record by record.
	count      uint64
	journalLen int
	jhash      hash.Hash
	stability  map[string]float64
	boincState map[string]int
	users      map[string]string
	inputs     []wal.Record

	// Rebuild support.
	keep      bool         // retain every record in memory
	memory    []wal.Record // the regenerated stream, when keep
	captureAt uint64       // seq at which to capture a snapshot for verification
	captured  *wal.Snapshot
	stopAt    uint64 // stop the engine once count reaches this (0: never)
	// notPre marks the post-pre phase of replay: the inputs being
	// re-applied were originally recorded after the engine had
	// stepped, but replay applies them between engine runs — possibly
	// before the rebuilt engine's first step — so Steps()==0 must not
	// re-flag them as pre-run inputs.
	notPre bool
}

func newRecorder(eng *sim.Engine, seed int64) *recorder {
	return &recorder{
		eng:        eng,
		seed:       seed,
		jhash:      sha256.New(),
		stability:  make(map[string]float64),
		boincState: make(map[string]int),
		users:      make(map[string]string),
	}
}

// attachLog connects the recorder to a live log and registers the
// snapshot source. The source callback runs inside Log.Append — i.e.
// inside emit, with rec.mu already held — so it must use the unlocked
// snapshot form.
func (rec *recorder) attachLog(lg *wal.Log) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.log = lg
	lg.SetSnapshotSource(rec.snapshotLocked)
}

// begin emits the genesis record (sequence 1).
func (rec *recorder) begin() {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.emit(wal.Record{Kind: wal.KindGenesis, Seed: rec.seed})
}

// emit assigns the next sequence number, folds the record into the
// shadow aggregates, and forwards it to the log (live) or memory
// (rebuild). Callers hold rec.mu.
func (rec *recorder) emit(r wal.Record) {
	rec.count++
	r.Seq = rec.count
	switch r.Kind {
	case wal.KindStage:
		rec.journalLen++
		obs.HashEvent(rec.jhash, obs.Event{
			At: r.At, Batch: r.Batch, Job: r.Job,
			Stage: obs.Stage(r.Stage), Resource: r.Resource, Detail: r.Detail,
		})
	case wal.KindEWMA:
		rec.stability[r.Resource] = r.Value
	case wal.KindWorkunit:
		rec.boincState[r.State]++
	case wal.KindUser:
		rec.users[r.Token] = r.Email
	}
	if r.IsInput() {
		rec.inputs = append(rec.inputs, r)
	}
	if rec.keep {
		rec.memory = append(rec.memory, r)
	}
	if rec.captureAt != 0 && rec.count == rec.captureAt {
		s := rec.snapshotLocked()
		rec.captured = &s
	}
	if rec.log != nil {
		rec.log.Append(r)
	}
	if rec.stopAt != 0 && rec.count >= rec.stopAt {
		// The durable frontier is regenerated; halt the rebuild at the
		// next handler boundary. Records emitted between here and the
		// actual stop were never durable, but the fresh post-recovery
		// snapshot captures them, so nothing is lost or doubled.
		rec.eng.Stop()
	}
}

// snapshotLocked captures the aggregate state as a wal.Snapshot.
// Callers hold rec.mu.
func (rec *recorder) snapshotLocked() wal.Snapshot {
	return wal.Snapshot{
		Seq:           rec.count,
		At:            rec.eng.Now(),
		Seed:          rec.seed,
		JournalLen:    rec.journalLen,
		JournalDigest: hex.EncodeToString(rec.jhash.Sum(nil)),
		Stability:     copyMap(rec.stability),
		Boinc:         copyMap(rec.boincState),
		Users:         copyMap(rec.users),
		Inputs:        append([]wal.Record(nil), rec.inputs...),
	}
}

// snapshot is the locking wrapper around snapshotLocked.
func (rec *recorder) snapshot() wal.Snapshot {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.snapshotLocked()
}

// setNotPre toggles the replay marker (see the field comment).
func (rec *recorder) setNotPre(on bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.notPre = on
}

// isPre reports whether an input arriving now should carry the Pre
// mark: nothing has run yet, and we are not replaying inputs that
// originally arrived later. Callers hold rec.mu.
func (rec *recorder) isPre() bool {
	return rec.eng.Steps() == 0 && !rec.notPre
}

// endRebuild drops rebuild bookkeeping after verification.
func (rec *recorder) endRebuild() {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.keep = false
	rec.memory = nil
	rec.captured = nil
	rec.captureAt = 0
	rec.stopAt = 0
}

func copyMap[V any](m map[string]V) map[string]V {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Stage implements the obs journal observer. Called under the journal
// lock; the recorder never calls back into the journal.
func (rec *recorder) Stage(ev obs.Event) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.emit(wal.Record{
		At: ev.At, Kind: wal.KindStage,
		Batch: ev.Batch, Job: ev.Job, Stage: string(ev.Stage),
		Resource: ev.Resource, Detail: ev.Detail,
	})
}

// EWMA implements metasched.Durability.
func (rec *recorder) EWMA(at sim.Time, resource string, stability float64) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.emit(wal.Record{At: at, Kind: wal.KindEWMA, Resource: resource, Value: stability})
}

// Backoff implements metasched.Durability.
func (rec *recorder) Backoff(at sim.Time, job, resource string, attempt int, backoff sim.Duration) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.emit(wal.Record{
		At: at, Kind: wal.KindBackoff, Job: job, Resource: resource,
		Attempt: attempt, Value: float64(backoff),
	})
}

// Workunit implements boinc.Durability.
func (rec *recorder) Workunit(at sim.Time, job, state, detail string) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.emit(wal.Record{At: at, Kind: wal.KindWorkunit, Job: job, State: state, Detail: detail})
}

// Submission implements gsbl.Durability. The Pre flag marks inputs
// that arrived before the engine ever stepped, which replay must
// apply before running any events.
func (rec *recorder) Submission(at sim.Time, origin string, sub workload.Submission) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	s := sub
	rec.emit(wal.Record{
		At: at, Kind: wal.KindSubmission, Origin: origin, Sub: &s,
		Pre: rec.isPre(),
	})
}

// QueuedSubmission implements gsbl.Durability for the serialized
// ingest path: the enqueue is the input, so the record carries the
// Queued mark that routes replay back through the ingest queue.
func (rec *recorder) QueuedSubmission(at sim.Time, origin string, sub workload.Submission) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	s := sub
	rec.emit(wal.Record{
		At: at, Kind: wal.KindSubmission, Origin: origin, Sub: &s, Queued: true,
		Pre: rec.isPre(),
	})
}

// Workflow implements dag.Durability: the workflow is an input like a
// submission — stage batches derived from it are regenerated by
// re-execution and deliberately not recorded.
func (rec *recorder) Workflow(at sim.Time, wf workload.Workflow) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	w := wf
	rec.emit(wal.Record{
		At: at, Kind: wal.KindWorkflow, WF: &w,
		Pre: rec.isPre(),
	})
}

// User implements portal.Durability.
func (rec *recorder) User(at sim.Time, token, email string) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.emit(wal.Record{
		At: at, Kind: wal.KindUser, Token: token, Email: email,
		Pre: rec.isPre(),
	})
}

// wireDurable connects a recorder to every component that records
// durable transitions. Called before any journal event is recorded,
// so the record stream starts at genesis in both live and rebuild
// modes.
func (l *Lattice) wireDurable(rec *recorder) {
	l.rec = rec
	l.Obs.Journal.SetObserver(rec.Stage)
	l.Scheduler.SetDurable(rec)
	l.Service.SetDurable(rec)
	l.Workflows.SetDurable(rec)
	l.Portal.SetDurable(rec)
	if l.Boinc != nil {
		l.Boinc.SetDurable(rec)
	}
}

// DurableErr reports the write-ahead log's sticky error, nil when
// durability is off or healthy.
func (l *Lattice) DurableErr() error {
	if l.rec == nil {
		return nil
	}
	l.rec.mu.Lock()
	defer l.rec.mu.Unlock()
	if l.rec.log == nil {
		return nil
	}
	return l.rec.log.Err()
}

// CloseDurable flushes and closes the write-ahead log. A crashed
// process never gets to call this — recovery does not depend on it.
func (l *Lattice) CloseDurable() error {
	if l.rec == nil {
		return nil
	}
	l.rec.mu.Lock()
	defer l.rec.mu.Unlock()
	if l.rec.log == nil {
		return nil
	}
	return l.rec.log.Close()
}
