// Package core assembles The Lattice Project: the discrete-event
// engine, the resource federation (Condor pools, PBS/SGE clusters, the
// BOINC volunteer pool, and the homogeneous reference cluster), MDS
// monitoring, the grid-level scheduler with its random-forest runtime
// estimator, the GSBL service layer and the science portal — wired the
// way Sections II-VI describe.
package core

import (
	"fmt"
	"path/filepath"
	"sort"

	"lattice/internal/admit"
	"lattice/internal/boinc"
	"lattice/internal/dag"
	"lattice/internal/estimate"
	"lattice/internal/faults"
	"lattice/internal/grid/mds"
	"lattice/internal/gsbl"
	"lattice/internal/lrm"
	"lattice/internal/lrm/condor"
	"lattice/internal/lrm/pbs"
	"lattice/internal/lrm/sge"
	"lattice/internal/metasched"
	"lattice/internal/obs"
	"lattice/internal/portal"
	"lattice/internal/sim"
	"lattice/internal/wal"
	"lattice/internal/workload"
)

// ResourceSpec declares one resource of the federation.
type ResourceSpec struct {
	Kind  string // "condor", "pbs", "sge", "boinc"
	Name  string
	Nodes int
	Cores int     // per node (sge)
	Speed float64 // node speed vs reference
	MemMB int
	// Condor-only: owner activity.
	MeanOwnerAway sim.Duration
	MeanOwnerBusy sim.Duration
	// BOINC-only population.
	Population *boinc.PopulationConfig
	MPI        bool
	Platform   lrm.Platform
}

// Config describes a whole Lattice deployment.
type Config struct {
	Seed           int64
	MDSTTL         sim.Duration
	ProviderPeriod sim.Duration
	Scheduler      metasched.Config
	Estimator      estimate.Config
	// TrainingJobs bootstraps the runtime model with this many
	// generated jobs (the paper's ~150-job matrix). 0 disables the
	// estimator entirely.
	TrainingJobs int
	Resources    []ResourceSpec
	// ReferenceCluster names the homogeneous speed-1.0 cluster used
	// for continuous retraining forks; empty disables retraining.
	ReferenceCluster string
	// Faults, when non-nil, wires the deterministic fault injector
	// between the scheduler and every resource: submits and results
	// pass through per-resource wrappers, MDS publications through a
	// dropping/staling sink, and the schedule's events fire on the
	// virtual clock. Nil leaves the production path untouched — no
	// wrapper, no extra RNG stream, bit-identical behaviour.
	Faults *faults.Schedule
	// Ingest, when non-zero, models the coordinator front door as a
	// serialized queue with per-submission virtual service time (see
	// gsbl.IngestConfig). Zero keeps the synchronous accept path —
	// bit-identical to pre-scale-out builds.
	Ingest gsbl.IngestConfig
	// Admit, when enabled, layers admission control over the ingest
	// queue: per-user token-bucket quotas, weighted fair-share ordering
	// instead of FIFO, and bounded-queue load shedding with computed
	// retry-after hints (see admit.Config). Requires Ingest to be
	// enabled. The zero value keeps the plain FIFO ingest path —
	// bit-identical to pre-admission builds.
	Admit admit.Config
	// IDPrefix qualifies batch and workflow IDs ("shard0-batch-000001")
	// so a cluster front router can attribute an ID to its coordinator
	// shard. Empty for single-coordinator deployments.
	IDPrefix string
	// ResourceWrap, when non-nil, wraps every resource after fault
	// wrapping and before MDS/scheduler registration — the seam the
	// cluster's lease gates install through. The engine is the
	// deployment's clock for time-dependent wrappers. Nil leaves
	// resources untouched.
	ResourceWrap func(eng *sim.Engine, name string, inner lrm.LRM) lrm.LRM
	// Durable, when non-empty, is a directory for crash-consistent
	// state: every coordinator transition and input is appended to a
	// write-ahead log there (see internal/wal), periodic snapshots
	// bound replay, and core.Recover resumes a killed deployment
	// mid-batch. Empty disables durability entirely — no recorder, no
	// extra RNG draws, bit-identical to pre-durability builds.
	Durable string
	// WAL tunes the write-ahead log when Durable is set.
	WAL wal.Options
}

// DefaultConfig builds the paper's federation: four Condor pools, four
// clusters (two PBS, one SGE, one reference PBS), and a BOINC
// volunteer pool, at laptop-friendly scale.
func DefaultConfig(seed int64) Config {
	pop := boinc.DefaultPopulation(400)
	return Config{
		Seed:           seed,
		MDSTTL:         5 * sim.Minute,
		ProviderPeriod: sim.Minute,
		Scheduler:      metasched.DefaultConfig(),
		Estimator:      estimate.DefaultConfig(),
		TrainingJobs:   150,
		Resources: []ResourceSpec{
			{Kind: "condor", Name: "umd-condor", Nodes: 64, Speed: 1.1, MemMB: 2048,
				MeanOwnerAway: 6 * sim.Hour, MeanOwnerBusy: 3 * sim.Hour, Platform: lrm.LinuxX86},
			{Kind: "condor", Name: "bowie-condor", Nodes: 32, Speed: 0.8, MemMB: 1024,
				MeanOwnerAway: 8 * sim.Hour, MeanOwnerBusy: 4 * sim.Hour, Platform: lrm.WindowsX86},
			{Kind: "condor", Name: "coppin-condor", Nodes: 24, Speed: 0.7, MemMB: 1024,
				MeanOwnerAway: 5 * sim.Hour, MeanOwnerBusy: 5 * sim.Hour, Platform: lrm.WindowsX86},
			{Kind: "condor", Name: "si-condor", Nodes: 40, Speed: 1.0, MemMB: 2048,
				MeanOwnerAway: 10 * sim.Hour, MeanOwnerBusy: 6 * sim.Hour, Platform: lrm.DarwinX86},
			{Kind: "pbs", Name: "umd-hpc", Nodes: 64, Speed: 2.0, MemMB: 8192, MPI: true, Platform: lrm.LinuxX86},
			{Kind: "pbs", Name: "bigmem-cluster", Nodes: 8, Speed: 1.6, MemMB: 65536, Platform: lrm.LinuxX86},
			{Kind: "sge", Name: "bio-sge", Nodes: 16, Cores: 4, Speed: 1.4, MemMB: 16384, Platform: lrm.LinuxX86},
			{Kind: "pbs", Name: "reference-cluster", Nodes: 8, Speed: 1.0, MemMB: 4096, Platform: lrm.LinuxX86},
			// The volunteer pool's scheduling speed is its measured
			// *turnaround* speed: median host speed (~0.8×) diluted
			// by the typical duty cycle (~42%) — exactly what the
			// paper's benchmark-job procedure observes on BOINC.
			{Kind: "boinc", Name: "lattice-boinc", Population: &pop, Speed: 0.35},
		},
		ReferenceCluster: "reference-cluster",
	}
}

// DefaultFaultSchedule is a hostile-but-survivable schedule over the
// DefaultConfig federation: a day-long HPC outage, a flapping Condor
// pool, a gatekeeper that refuses half of all submissions for a day,
// an MDS blackout and a staleness burst, a volunteer exodus, and lossy
// and slow result channels on two pools. Everything the resilience
// layer exists for, firing in the first simulated week.
func DefaultFaultSchedule() *faults.Schedule {
	return &faults.Schedule{
		Events: []faults.Event{
			{At: sim.Time(6 * sim.Hour), Kind: faults.KindOutage, Resource: "umd-hpc", Duration: 24 * sim.Hour},
			{At: sim.Time(2 * sim.Hour), Kind: faults.KindSubmitFail, Resource: "bio-sge", Duration: 24 * sim.Hour, P: 0.5},
			{At: sim.Time(8 * sim.Hour), Kind: faults.KindMDSDrop, Resource: "bigmem-cluster", Duration: 2 * sim.Hour},
			{At: sim.Time(4 * sim.Hour), Kind: faults.KindMDSStale, Resource: "umd-condor", Duration: 6 * sim.Hour},
			{At: sim.Time(12 * sim.Hour), Kind: faults.KindChurn, Resource: "lattice-boinc", Hosts: 60},
			{At: 0, Kind: faults.KindLostResult, Resource: "si-condor", Duration: 5 * sim.Day, P: 0.25},
			{At: 0, Kind: faults.KindSlowResult, Resource: "bowie-condor", Duration: 5 * sim.Day, P: 0.5, Delay: 2 * sim.Hour},
		},
		Flaps: []faults.Flap{
			{Resource: "coppin-condor", MeanUp: 12 * sim.Hour, MeanDown: sim.Hour, Until: sim.Time(10 * sim.Day)},
		},
	}
}

// Lattice is a running grid system.
type Lattice struct {
	Engine    *sim.Engine
	Index     *mds.Index
	Scheduler *metasched.Scheduler
	Service   *gsbl.Service
	Mailer    *gsbl.Mailer
	Estimator *estimate.Estimator
	Portal    *portal.Portal
	Boinc     *boinc.Server // nil if no BOINC resource configured
	// Workflows is the stage-DAG workflow engine, mapping ready
	// stages onto the GSBL batch path.
	Workflows *dag.Engine
	// Obs is the deployment-wide observability hub: metrics, traces,
	// and the job-lifecycle journal, all on virtual time.
	Obs *obs.Obs
	// Faults is the active fault injector (nil unless Config.Faults
	// was set).
	Faults *faults.Injector
	// Recovery describes the rebuild when this Lattice came from
	// Recover; nil on a fresh New.
	Recovery *RecoveryReport

	rng       *sim.RNG
	rec       *recorder
	resources map[string]lrm.LRM
	refName   string
	retrains  int
	// retrainErrs records failures of the continuous-retraining loop
	// (reference-cluster submits, observation feeds, rebuilds), which
	// run inside simulation callbacks with no caller to return to.
	retrainErrs []error
}

// New assembles and starts a Lattice deployment. With cfg.Durable set
// it also creates a fresh write-ahead log there and wires the
// durability recorder through every component; use Recover instead
// when the directory already holds state.
func New(cfg Config) (*Lattice, error) {
	l, err := build(cfg, false)
	if err != nil {
		return nil, err
	}
	if cfg.Durable != "" {
		lg, err := wal.Create(cfg.Durable, cfg.WAL)
		if err != nil {
			return nil, err
		}
		rec := newRecorder(l.Engine, cfg.Seed)
		l.wireDurable(rec)
		rec.attachLog(lg)
		rec.begin()
		if err := l.Portal.SetArtifactDir(filepath.Join(cfg.Durable, "artifacts")); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// build assembles the deployment. rebuild marks a recovery
// re-execution: identical wiring and RNG draws, but scheduled crashes
// must not stop the engine (the rebuild runs straight through them).
func build(cfg Config, rebuild bool) (*Lattice, error) {
	if cfg.MDSTTL <= 0 {
		cfg.MDSTTL = 5 * sim.Minute
	}
	if cfg.ProviderPeriod <= 0 {
		cfg.ProviderPeriod = sim.Minute
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)
	idx, err := mds.NewIndex(eng, cfg.MDSTTL)
	if err != nil {
		return nil, err
	}
	l := &Lattice{
		Engine:    eng,
		Index:     idx,
		rng:       rng,
		resources: make(map[string]lrm.LRM),
		refName:   cfg.ReferenceCluster,
	}
	l.Obs = obs.New(eng)
	l.Scheduler = metasched.New(eng, idx, cfg.Scheduler)
	l.Scheduler.SetObs(l.Obs)
	// The injector and its sink exist only when a fault schedule is
	// configured: a no-fault deployment takes the exact pre-injector
	// path (same wiring, same RNG stream draws, bit-identical runs).
	var pubSink mds.Sink = idx
	if cfg.Faults != nil {
		l.Faults = faults.NewInjector(eng, rng.Stream("faults"))
		l.Faults.SetObs(l.Obs)
		if rebuild {
			l.Faults.SetCrashStops(false)
		}
		pubSink = l.Faults.Sink(idx)
	}
	for _, rs := range cfg.Resources {
		inner, err := l.buildResource(rs)
		if err != nil {
			return nil, err
		}
		if w, ok := inner.(interface{ SetObs(*obs.Obs) }); ok {
			w.SetObs(l.Obs)
		}
		target := inner
		if l.Faults != nil {
			target = l.Faults.Wrap(inner)
			if rs.Kind == "boinc" {
				l.Faults.AttachChurner(rs.Name, l.Boinc)
			}
		}
		if cfg.ResourceWrap != nil {
			target = cfg.ResourceWrap(eng, rs.Name, target)
		}
		l.resources[rs.Name] = target
		if _, err := mds.StartProvider(eng, pubSink, target, cfg.ProviderPeriod); err != nil {
			return nil, err
		}
		speed := rs.Speed
		if speed <= 0 {
			speed = 1
		}
		if err := l.Scheduler.Register(target, speed); err != nil {
			return nil, err
		}
	}
	if l.Faults != nil {
		if err := l.Faults.Apply(*cfg.Faults); err != nil {
			return nil, err
		}
	}
	if cfg.TrainingJobs > 0 {
		est, err := estimate.Bootstrap(cfg.Estimator, workload.NewGenerator(cfg.Seed+1), cfg.TrainingJobs)
		if err != nil {
			return nil, err
		}
		l.Estimator = est
		l.Scheduler.SetPredictor(est)
	}
	l.Mailer = &gsbl.Mailer{}
	l.Service = gsbl.NewService(eng, l.Scheduler, l.Mailer, rng.Stream("gsbl"))
	l.Service.SetObs(l.Obs)
	l.Service.SetIDPrefix(cfg.IDPrefix)
	l.Service.SetIngest(cfg.Ingest)
	if cfg.Admit.Enabled() {
		if err := l.Service.SetAdmit(cfg.Admit); err != nil {
			return nil, err
		}
	}
	l.Workflows = dag.NewEngine(eng, l.Service, l.Obs, dag.Config{IDPrefix: cfg.IDPrefix})
	l.Portal = portal.New(eng, l.Service)
	l.Portal.SetObs(l.Obs)
	l.Portal.SetWorkflows(l.Workflows)
	l.Portal.SetStatusSource(func() any {
		type row struct {
			Name    string `json:"name"`
			Kind    string `json:"kind"`
			Total   int    `json:"totalCPUs"`
			Free    int    `json:"freeCPUs"`
			Queued  int    `json:"queued"`
			Running int    `json:"running"`
			Stable  bool   `json:"stable"`
		}
		var rows []row
		for _, e := range l.Index.Snapshot() {
			rows = append(rows, row{
				Name: e.Info.Name, Kind: e.Info.Kind,
				Total: e.Info.TotalCPUs, Free: e.Info.FreeCPUs,
				Queued: e.Info.QueuedJobs, Running: e.Info.RunningJobs,
				Stable: e.Info.Stable,
			})
		}
		return map[string]any{
			"resources": rows,
			"scheduler": l.Scheduler.Stats(),
			"time":      float64(l.Engine.Now()),
		}
	})
	return l, nil
}

// buildResource constructs one LRM from its spec.
func (l *Lattice) buildResource(rs ResourceSpec) (lrm.LRM, error) {
	plat := rs.Platform
	if plat == "" {
		plat = lrm.LinuxX86
	}
	switch rs.Kind {
	case "condor":
		machines := make([]condor.Machine, rs.Nodes)
		for i := range machines {
			machines[i] = condor.Machine{
				Speed:         jitter(l.rng, rs.Speed, 0.2),
				MemoryMB:      rs.MemMB,
				Platform:      plat,
				MeanOwnerAway: rs.MeanOwnerAway,
				MeanOwnerBusy: rs.MeanOwnerBusy,
			}
		}
		return condor.New(l.Engine, l.rng.Stream("condor-"+rs.Name), condor.Config{
			Name: rs.Name, Machines: machines, MaxRequeues: 50,
		})
	case "pbs":
		return pbs.New(l.Engine, pbs.Config{
			Name: rs.Name, Platform: plat, MPI: rs.MPI,
			Nodes: []pbs.NodeClass{{Count: rs.Nodes, Speed: rs.Speed, MemoryMB: rs.MemMB}},
		})
	case "sge":
		cores := rs.Cores
		if cores <= 0 {
			cores = 1
		}
		return sge.New(l.Engine, sge.Config{
			Name: rs.Name, Platform: plat, MPI: rs.MPI,
			Nodes: []sge.NodeClass{{Count: rs.Nodes, Cores: cores, Speed: rs.Speed, MemoryMB: rs.MemMB}},
		})
	case "boinc":
		srv, err := boinc.NewServer(l.Engine, l.rng.Stream("boinc-"+rs.Name), boinc.DefaultConfig(rs.Name))
		if err != nil {
			return nil, err
		}
		pop := rs.Population
		if pop == nil {
			p := boinc.DefaultPopulation(200)
			pop = &p
		}
		boinc.GeneratePopulation(srv, l.rng.Stream("boincpop-"+rs.Name), *pop)
		l.Boinc = srv
		return srv, nil
	default:
		return nil, fmt.Errorf("core: unknown resource kind %q", rs.Kind)
	}
}

func jitter(rng *sim.RNG, v, frac float64) float64 {
	return v * rng.Uniform(1-frac, 1+frac)
}

// Resource returns a federation member by name.
func (l *Lattice) Resource(name string) (lrm.LRM, bool) {
	r, ok := l.resources[name]
	return r, ok
}

// ResourceNames lists the federation members in sorted order, so
// callers that iterate and emit never depend on map layout.
func (l *Lattice) ResourceNames() []string {
	names := make([]string, 0, len(l.resources))
	for n := range l.resources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalCores sums the federation's CPU cores as MDS currently sees it.
func (l *Lattice) TotalCores() int {
	total := 0
	for _, e := range l.Index.Snapshot() {
		total += e.Info.TotalCPUs
	}
	return total
}

// SubmitSubmission validates and schedules a portal-style submission,
// forking one extra replicate to the reference cluster for continuous
// model retraining when configured (Section VI-E: "we simply fork off
// a single job replicate on our reference computer … and add the
// observed runtime and values of the predictor variables to the
// matrix").
func (l *Lattice) SubmitSubmission(sub workload.Submission) (*gsbl.Batch, error) {
	b, err := l.Service.SubmitBatchOrigin(sub, "core")
	if err != nil {
		return nil, err
	}
	if l.refName != "" && l.Estimator != nil {
		l.forkReferenceReplicate(sub)
	}
	return b, nil
}

// EnqueueSubmission is the scale-out accept path: the submission is
// validated and durably recorded now, then expanded into grid jobs
// when the serialized coordinator front door (Config.Ingest) reaches
// it. With the ingest model disabled it schedules synchronously. The
// origin labels the arrival path ("shard3/core" under a cluster); the
// reference-cluster retraining fork stays a direct-submission feature
// and is not applied here.
func (l *Lattice) EnqueueSubmission(sub workload.Submission, origin string, onAccepted func(*gsbl.Batch, error)) error {
	return l.Service.EnqueueBatchOrigin(sub, origin, onAccepted)
}

// SubmitWorkflow validates and starts a stage-DAG workflow: each
// stage becomes a derived GSBL batch the moment its dependencies
// finish. The workflow itself is the durable input; stage batches are
// regenerated by deterministic re-execution on recovery.
func (l *Lattice) SubmitWorkflow(wf workload.Workflow) (*dag.Run, error) {
	return l.Workflows.Submit(wf)
}

// forkReferenceReplicate runs one replicate on the homogeneous
// reference cluster and feeds the observation back into the model.
func (l *Lattice) forkReferenceReplicate(sub workload.Submission) {
	ref, ok := l.resources[l.refName]
	if !ok {
		return
	}
	spec := sub.Spec
	spec.Seed = sub.Spec.Seed ^ 0x7ef
	work := spec.SampleWork(l.rng.Stream("reffork"))
	start := l.Engine.Now()
	l.retrains++
	j := &lrm.Job{
		ID:       fmt.Sprintf("ref-fork-%d", l.retrains),
		Work:     work,
		MemoryMB: spec.MemoryMB(),
	}
	j.OnComplete = func(at sim.Time) {
		// The reference cluster runs at speed 1.0, so wall time is
		// reference time (minus queueing, which the paper's operators
		// also absorbed).
		observed := float64(at.Sub(start))
		if err := l.Estimator.AddObservation(&spec, observed); err != nil {
			l.noteRetrainErr(err)
			return
		}
		// Rebuilding "takes very little time to compute" and the new
		// model "is immediately available for use with incoming jobs".
		if err := l.Estimator.Retrain(); err != nil {
			l.noteRetrainErr(err)
		}
	}
	if err := ref.Submit(j); err != nil {
		l.noteRetrainErr(err)
	}
}

// noteRetrainErr records a continuous-retraining failure, keeping the
// most recent ones.
func (l *Lattice) noteRetrainErr(err error) {
	const keep = 32
	if len(l.retrainErrs) >= keep {
		l.retrainErrs = l.retrainErrs[1:]
	}
	l.retrainErrs = append(l.retrainErrs, err)
}

// RetrainErrors returns the recorded continuous-retraining failures
// (most recent last). An empty slice means the loop is healthy.
func (l *Lattice) RetrainErrors() []error { return l.retrainErrs }

// Retrains reports how many reference forks have been issued.
func (l *Lattice) Retrains() int { return l.retrains }

// Run advances the grid by d.
func (l *Lattice) Run(d sim.Duration) {
	l.Engine.RunUntil(l.Engine.Now().Add(d))
}
