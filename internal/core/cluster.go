package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"

	"lattice/internal/faults"
	"lattice/internal/gsbl"
	"lattice/internal/lrm"
	"lattice/internal/obs"
	"lattice/internal/shard"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// ClusterConfig describes a sharded multi-coordinator deployment: N
// independent Lattice shards behind a deterministic router.
type ClusterConfig struct {
	// Shards is the coordinator count (≥ 1).
	Shards int
	// Share selects how the grid federation is divided among shards:
	// SharePartition (the default) statically assigns resource i of
	// Base.Resources to shard i mod N; ShareLease gives every shard a
	// replica of the full federation gated by a rotating lease, so each
	// resource serves exactly one shard per lease term (see
	// shard.Leases).
	Share shard.ShareMode
	// LeaseTerm is the lease rotation period under ShareLease
	// (default shard.DefaultLeaseTerm).
	LeaseTerm sim.Duration
	// Base is the per-shard deployment template. Seed, IDPrefix,
	// Durable, Faults and ResourceWrap are derived per shard and must
	// be left at their zero values here.
	Base Config
	// DurableRoot, when non-empty, gives each shard its own
	// write-ahead-log directory root/shard<k>, so recovery stays local
	// to a crashed shard. Empty disables durability cluster-wide.
	DurableRoot string
	// ShardFaults, when non-nil, supplies shard k's fault schedule
	// (nil return: no faults on that shard). Crash events stop only
	// that shard's engine.
	ShardFaults func(k int) *faults.Schedule
}

// pendingArrival is one future submission scheduled on a shard's
// clock. The cluster keeps this bookkeeping outside the engines
// because a crashed engine loses its scheduled closures: recovery
// replays enqueues up to the durable watermark from the WAL and
// re-schedules the still-undelivered arrivals from this list.
type pendingArrival struct {
	at        sim.Time
	sub       workload.Submission
	origin    string
	delivered bool
}

// Cluster is a sharded deployment: N Lattices, each with its own
// engine, obs hub, WAL directory and fault injector, coordinated only
// through pure functions of the virtual clock (the router hash and
// the lease rotation), so shards can be advanced independently and a
// crash never leaves cross-shard state half-written.
//
// The cluster itself is single-threaded like the engines it drives:
// submissions, RunUntil and recovery belong to one goroutine. Handler
// and Pump are the HTTP-facing pair and serialize through the
// per-shard portal locks, exactly like a single Lattice.
type Cluster struct {
	cfg    ClusterConfig
	Shards []*Lattice
	// pending[k] holds shard k's scheduled-but-possibly-undelivered
	// arrivals, in scheduling order.
	pending [][]*pendingArrival
}

// NewCluster assembles a sharded deployment. Shard k runs with seed
// shard.Seed(Base.Seed, k), ID prefix "shard<k>-", and its share of
// the federation; with DurableRoot set each shard writes its own WAL
// under root/shard<k>.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: cluster needs at least 1 shard, got %d", cfg.Shards)
	}
	switch cfg.Share {
	case "", shard.SharePartition, shard.ShareLease:
	default:
		return nil, fmt.Errorf("core: unknown share mode %q", cfg.Share)
	}
	if cfg.Base.IDPrefix != "" || cfg.Base.Durable != "" || cfg.Base.Faults != nil || cfg.Base.ResourceWrap != nil {
		return nil, fmt.Errorf("core: cluster base config must leave IDPrefix, Durable, Faults and ResourceWrap unset")
	}
	c := &Cluster{
		cfg:     cfg,
		Shards:  make([]*Lattice, cfg.Shards),
		pending: make([][]*pendingArrival, cfg.Shards),
	}
	for k := 0; k < cfg.Shards; k++ {
		l, err := New(c.shardConfig(k))
		if err != nil {
			return nil, fmt.Errorf("core: building shard %d: %w", k, err)
		}
		c.Shards[k] = l
	}
	return c, nil
}

// shardConfig derives shard k's Config from the cluster template.
func (c *Cluster) shardConfig(k int) Config {
	cfg := c.cfg.Base
	cfg.Seed = shard.Seed(c.cfg.Base.Seed, k)
	cfg.IDPrefix = fmt.Sprintf("shard%d-", k)
	if c.cfg.DurableRoot != "" {
		cfg.Durable = filepath.Join(c.cfg.DurableRoot, fmt.Sprintf("shard%d", k))
	}
	if c.cfg.ShardFaults != nil {
		cfg.Faults = c.cfg.ShardFaults(k)
	}
	if c.cfg.Share == shard.ShareLease {
		// Every shard replicates the full federation; the lease gate
		// admits each resource only while this shard holds its lease,
		// so at any instant a resource name serves exactly one shard.
		term := c.cfg.LeaseTerm
		if term <= 0 {
			term = shard.DefaultLeaseTerm
		}
		leases := shard.Leases{Shards: c.cfg.Shards, Term: term}
		index := make(map[string]int, len(c.cfg.Base.Resources))
		for i, rs := range c.cfg.Base.Resources {
			index[rs.Name] = i
		}
		shardID := k
		cfg.ResourceWrap = func(eng *sim.Engine, name string, inner lrm.LRM) lrm.LRM {
			i := index[name]
			return shard.NewGate(inner, eng.Now, func(now sim.Time) bool {
				return leases.Owner(i, now) == shardID
			})
		}
		return cfg
	}
	// Static partition: resource i belongs to shard i mod N. The
	// reference cluster only retrains on shards that own it.
	var mine []ResourceSpec
	hasRef := false
	for i, rs := range c.cfg.Base.Resources {
		if i%c.cfg.Shards == k {
			mine = append(mine, rs)
			if rs.Name == c.cfg.Base.ReferenceCluster {
				hasRef = true
			}
		}
	}
	cfg.Resources = mine
	if !hasRef {
		cfg.ReferenceCluster = ""
	}
	return cfg
}

// Size reports the shard count.
func (c *Cluster) Size() int { return len(c.Shards) }

// Route reports the shard that owns (user, origin) — the same pure
// hash every entry point uses, exported so tests and the experiment
// can predict placement.
func (c *Cluster) Route(user, origin string) int {
	return shard.Route(user, origin, len(c.Shards))
}

// SubmitSubmission routes a submission to its owner shard and
// enqueues it through that shard's coordinator front door. The
// returned int is the owning shard.
func (c *Cluster) SubmitSubmission(sub workload.Submission, onAccepted func(*gsbl.Batch, error)) (int, error) {
	k := c.Route(sub.UserEmail, "core")
	return k, c.Shards[k].EnqueueSubmission(sub, shard.Origin(k, "core"), onAccepted)
}

// ScheduleSubmission arranges for sub to arrive at virtual time at on
// its owner shard. Arrivals are tracked cluster-side so RecoverShard
// can re-schedule the ones a crash wiped out of the engine.
func (c *Cluster) ScheduleSubmission(at sim.Time, sub workload.Submission) int {
	k := c.Route(sub.UserEmail, "core")
	pa := &pendingArrival{at: at, sub: sub, origin: shard.Origin(k, "core")}
	c.pending[k] = append(c.pending[k], pa)
	c.scheduleArrival(k, pa)
	return k
}

// scheduleArrival installs one tracked arrival on shard k's engine.
func (c *Cluster) scheduleArrival(k int, pa *pendingArrival) {
	l := c.Shards[k]
	l.Engine.ScheduleAt(pa.at, func() {
		pa.delivered = true
		if err := l.EnqueueSubmission(pa.sub, pa.origin, nil); err != nil {
			l.Service.NoteIngestErr(fmt.Errorf("core: scheduled arrival at %v: %w", pa.at, err))
		}
	})
}

// PendingArrivals counts scheduled submissions that have not yet been
// delivered to their shard — drive the cluster until this reaches
// zero before treating quiet engines as "done", because a scheduled
// workload is idle between arrivals.
func (c *Cluster) PendingArrivals() int {
	n := 0
	for _, shardPending := range c.pending {
		for _, pa := range shardPending {
			if !pa.delivered {
				n++
			}
		}
	}
	return n
}

// SubmitWorkflow pins a workflow to its owner shard (routed by user,
// so a user's workflows and batches live together) and submits it.
func (c *Cluster) SubmitWorkflow(wf workload.Workflow) (int, error) {
	k := c.Route(wf.UserEmail, "workflow")
	_, err := c.Shards[k].SubmitWorkflow(wf)
	return k, err
}

// RunUntil advances every non-crashed shard to t, one engine at a
// time. Shards never exchange events, so sequential advancement is
// equivalent to any interleaving; a shard whose injector crashed
// stays frozen until RecoverShard.
func (c *Cluster) RunUntil(t sim.Time) {
	for _, l := range c.Shards {
		if l.Faults != nil && l.Faults.Crashed() {
			continue
		}
		l.Engine.RunUntil(t)
	}
}

// Pump advances every non-crashed shard by d under its portal lock —
// the HTTP-safe twin of RunUntil, driven by cmd/lattice's ticker.
func (c *Cluster) Pump(d sim.Duration) {
	for _, l := range c.Shards {
		if l.Faults != nil && l.Faults.Crashed() {
			continue
		}
		l.Portal.Pump(d)
	}
}

// CrashedShards lists the shards whose fault injector has fired a
// crash and stopped the engine.
func (c *Cluster) CrashedShards() []int {
	var out []int
	for k, l := range c.Shards {
		if l.Faults != nil && l.Faults.Crashed() {
			out = append(out, k)
		}
	}
	return out
}

// RecoverShard rebuilds shard k from its own WAL directory — the
// other shards are untouched, which is the point of per-shard
// durability. Scheduled arrivals the crash wiped out of the dead
// engine are re-installed: delivered arrivals were durably recorded
// as enqueues and come back via WAL replay, so only the undelivered
// ones (all at or after the durable watermark) need re-scheduling.
func (c *Cluster) RecoverShard(k int) (*RecoveryReport, error) {
	if k < 0 || k >= len(c.Shards) {
		return nil, fmt.Errorf("core: no shard %d in a %d-shard cluster", k, len(c.Shards))
	}
	if c.cfg.DurableRoot == "" {
		return nil, fmt.Errorf("core: cluster has no durable root; shard %d cannot be recovered", k)
	}
	dir := filepath.Join(c.cfg.DurableRoot, fmt.Sprintf("shard%d", k))
	l, err := Recover(dir, c.shardConfig(k))
	if err != nil {
		return nil, fmt.Errorf("core: recovering shard %d: %w", k, err)
	}
	c.Shards[k] = l
	for _, pa := range c.pending[k] {
		if !pa.delivered {
			c.scheduleArrival(k, pa)
		}
	}
	return l.Recovery, nil
}

// ShardDigests returns each shard's journal digest, in shard order.
func (c *Cluster) ShardDigests() []string {
	out := make([]string, len(c.Shards))
	for k, l := range c.Shards {
		out[k] = l.Obs.Journal.Digest()
	}
	return out
}

// Digest folds the per-shard journal digests into one cluster
// identity: equal digests mean every shard replayed the same history.
func (c *Cluster) Digest() string {
	h := sha256.New()
	for k, d := range c.ShardDigests() {
		fmt.Fprintf(h, "%d:%s\n", k, d) //lint:allow errdrop -- hash.Hash documents that Write never errors
	}
	return hex.EncodeToString(h.Sum(nil))
}

// MergedSnapshot returns every shard's metrics with a shard label, in
// deterministic order (see shard.MergeSnapshots).
func (c *Cluster) MergedSnapshot() []obs.SeriesSnapshot {
	perShard := make([][]obs.SeriesSnapshot, len(c.Shards))
	for k, l := range c.Shards {
		perShard[k] = l.Obs.Registry.Snapshot()
	}
	return shard.MergeSnapshots(perShard)
}

// MergedExposition renders the merged metrics in text exposition
// format — the cluster-wide /metrics body.
func (c *Cluster) MergedExposition() string {
	var b strings.Builder
	obs.WriteExposition(&b, c.MergedSnapshot())
	return b.String()
}

// Handler returns the cluster's front router: one HTTP surface that
// proxies each request to the owning shard's portal. Ownership is
// read from the request itself — a shard-prefixed ID in the path, a
// registered token, or the submitting email — so the router holds no
// state of its own and never needs recovery.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := w.Write([]byte(c.MergedExposition())); err != nil {
			c.Shards[0].Portal.NoteClientErr()
		}
	})
	mux.HandleFunc("/grid/status", func(w http.ResponseWriter, r *http.Request) {
		c.Shards[0].Portal.WriteJSON(w, c.statusJSON())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		c.shardFor(r).Portal.Handler().ServeHTTP(w, r)
	})
	return mux
}

// statusJSON merges every shard's /grid/status view.
func (c *Cluster) statusJSON() any {
	type row struct {
		Name    string `json:"name"`
		Kind    string `json:"kind"`
		Total   int    `json:"totalCPUs"`
		Free    int    `json:"freeCPUs"`
		Queued  int    `json:"queued"`
		Running int    `json:"running"`
		Stable  bool   `json:"stable"`
	}
	type shardStatus struct {
		Shard     int     `json:"shard"`
		Crashed   bool    `json:"crashed"`
		Time      float64 `json:"time"`
		Resources []row   `json:"resources"`
		Scheduler any     `json:"scheduler"`
	}
	out := make([]shardStatus, len(c.Shards))
	for k, l := range c.Shards {
		st := shardStatus{
			Shard: k,
			Time:  float64(l.Engine.Now()),
		}
		if l.Faults != nil {
			st.Crashed = l.Faults.Crashed()
		}
		for _, e := range l.Index.Snapshot() {
			st.Resources = append(st.Resources, row{
				Name: e.Info.Name, Kind: e.Info.Kind,
				Total: e.Info.TotalCPUs, Free: e.Info.FreeCPUs,
				Queued: e.Info.QueuedJobs, Running: e.Info.RunningJobs,
				Stable: e.Info.Stable,
			})
		}
		st.Scheduler = l.Scheduler.Stats()
		out[k] = st
	}
	return map[string]any{"shards": out}
}

// shardFor resolves the shard that owns a request, in precedence
// order: a shard-prefixed ID in the path, the registered token, the
// submitting email, and finally shard 0 for unowned surfaces (the
// index page, the app description, fresh registrations without an
// email — the registration handler itself rejects those).
func (c *Cluster) shardFor(r *http.Request) *Lattice {
	if k, ok := pathShard(r.URL.Path, len(c.Shards)); ok {
		return c.Shards[k]
	}
	if tok := r.Header.Get("X-Lattice-Token"); tok != "" {
		for _, l := range c.Shards {
			if _, ok := l.Portal.LookupToken(tok); ok {
				return l
			}
		}
	}
	if email := r.FormValue("email"); strings.Contains(email, "@") {
		return c.Shards[shard.Route(email, "portal", len(c.Shards))]
	}
	return c.Shards[0]
}

// pathShard extracts the shard index from a shard-prefixed ID path
// segment, e.g. /batch/shard2-batch-000017/status → 2.
func pathShard(path string, n int) (int, bool) {
	for _, prefix := range []string{"/batch/", "/trace/", "/workflow/"} {
		rest, ok := strings.CutPrefix(path, prefix)
		if !ok {
			continue
		}
		var k int
		if _, err := fmt.Sscanf(rest, "shard%d-", &k); err == nil && k >= 0 && k < n {
			return k, true
		}
	}
	return 0, false
}

// CloseDurable closes every shard's write-ahead log.
func (c *Cluster) CloseDurable() error {
	var first error
	for k, l := range c.Shards {
		if err := l.CloseDurable(); err != nil && first == nil {
			first = fmt.Errorf("core: closing shard %d log: %w", k, err)
		}
	}
	return first
}
