package shard

import (
	"fmt"
	"testing"
)

// users builds a deterministic synthetic user population.
func users(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("user%05d@example.edu", i)
	}
	return out
}

// TestRouteStableForSameN is the routing-stability property: for a
// fixed shard count the router is a pure function — the same (user,
// origin) pair lands on the same shard on every call, every run,
// every process. Pinned values keep the hash construction itself from
// silently changing.
func TestRouteStableForSameN(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		for _, u := range users(500) {
			a := Route(u, "core", n)
			b := Route(u, "core", n)
			if a != b {
				t.Fatalf("Route(%q, core, %d) unstable: %d then %d", u, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("Route(%q, core, %d) = %d outside [0,%d)", u, n, a, n)
			}
		}
	}
	// Regression pins: these values may only change with an explicit
	// routing-epoch decision, since rebalancing every user invalidates
	// per-shard WAL locality.
	pins := []struct {
		user, origin string
		n, want      int
	}{
		{"user00000@example.edu", "core", 8, 0},
		{"user00001@example.edu", "core", 8, 5},
		{"smoke@example.edu", "core", 4, 0},
		{"smoke@example.edu", "portal", 4, 1},
		{"crash@example.edu", "core", 2, 0},
	}
	for _, p := range pins {
		if got := Route(p.user, p.origin, p.n); got != p.want {
			t.Errorf("Route(%q, %q, %d) = %d, want pinned %d", p.user, p.origin, p.n, got, p.want)
		}
	}
}

// TestRouteDistribution checks the FNV-1a partition spreads a
// realistic user population roughly evenly — no shard may be starved
// or own a large multiple of its fair share.
func TestRouteDistribution(t *testing.T) {
	const n, population = 8, 10000
	counts := make([]int, n)
	for _, u := range users(population) {
		counts[Route(u, "core", n)]++
	}
	fair := population / n
	for k, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("shard %d owns %d of %d users; fair share is %d", k, c, population, fair)
		}
	}
}

// TestRouteOriginMatters checks the origin participates in the key:
// the routing domain is (user, origin), not user alone.
func TestRouteOriginMatters(t *testing.T) {
	same := true
	for _, u := range users(64) {
		if Key(u, "core") != Key(u, "portal") {
			same = false
			break
		}
	}
	if same {
		t.Error("Key ignores the origin field")
	}
}

// TestRebalancePreservesPerUserOrdering is the rebalancing property:
// walking the shard counts 1→2→4→8, every user maps to exactly one
// shard at each count, so the per-shard arrival sequence restricted
// to any single user preserves the global submission order — growing
// the cluster can interleave users differently but can never reorder
// one user's submissions.
func TestRebalancePreservesPerUserOrdering(t *testing.T) {
	type submission struct {
		user string
		seq  int
	}
	// A deterministic global submission sequence: users interleaved,
	// several submissions each.
	var global []submission
	pop := users(300)
	for round := 0; round < 5; round++ {
		for i, u := range pop {
			global = append(global, submission{user: u, seq: round*len(pop) + i})
		}
	}
	for _, n := range []int{1, 2, 4, 8} {
		// Deliver the global sequence to per-shard queues via the router.
		queues := make([][]submission, n)
		owner := make(map[string]int)
		for _, s := range global {
			k := Route(s.user, "core", n)
			if prev, seen := owner[s.user]; seen && prev != k {
				t.Fatalf("n=%d: user %s routed to shard %d then %d", n, s.user, prev, k)
			}
			owner[s.user] = k
			queues[k] = append(queues[k], s)
		}
		// Within each shard queue, each user's seq values must be
		// strictly increasing — the per-user order survived.
		for k, q := range queues {
			lastSeq := make(map[string]int)
			for _, s := range q {
				if prev, seen := lastSeq[s.user]; seen && s.seq <= prev {
					t.Fatalf("n=%d shard %d: user %s order broken (%d after %d)", n, k, s.user, s.seq, prev)
				}
				lastSeq[s.user] = s.seq
			}
		}
	}
}

// TestSeedDerivation checks per-shard seeds are distinct,
// non-negative, and pinned.
func TestSeedDerivation(t *testing.T) {
	seen := make(map[int64]int)
	for k := 0; k < 64; k++ {
		s := Seed(42, k)
		if s < 0 {
			t.Fatalf("Seed(42, %d) = %d is negative", k, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("Seed(42, %d) collides with shard %d", k, prev)
		}
		seen[s] = k
	}
	if a, b := Seed(1, 0), Seed(2, 0); a == b {
		t.Error("Seed ignores the base seed")
	}
}

// TestOrigin pins the shard-qualified origin format the WAL and
// journal record.
func TestOrigin(t *testing.T) {
	if got := Origin(3, "core"); got != "shard3/core" {
		t.Errorf("Origin(3, core) = %q", got)
	}
}
