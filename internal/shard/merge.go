package shard

import (
	"sort"
	"strconv"
	"strings"

	"lattice/internal/obs"
)

// MergeSnapshots merges per-shard registry snapshots into one
// deterministic series list in which every counter, gauge and
// histogram carries a shard label. Collision-freedom is by
// construction: two shards exposing the same series differ in the
// injected label, so the merged exposition never folds or shadows a
// sample. Ordering follows the registry convention — families sorted
// by name, series within a family by canonical label key — so for a
// fixed seed two merges are byte-identical.
func MergeSnapshots(perShard [][]obs.SeriesSnapshot) []obs.SeriesSnapshot {
	var out []obs.SeriesSnapshot
	for k, snaps := range perShard {
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(k)}
		for _, s := range snaps {
			s.Labels = insertLabel(s.Labels, lbl)
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}

// MergeExpositions renders merged per-shard snapshots in the text
// exposition format — what a cluster's /metrics endpoint serves.
func MergeExpositions(perShard [][]obs.SeriesSnapshot) string {
	var b strings.Builder
	obs.WriteExposition(&b, MergeSnapshots(perShard))
	return b.String()
}

// insertLabel returns a fresh label slice with l added in key-sorted
// position (registry snapshots keep labels sorted by key; the merge
// preserves that invariant).
func insertLabel(labels []obs.Label, l obs.Label) []obs.Label {
	out := make([]obs.Label, 0, len(labels)+1)
	placed := false
	for _, have := range labels {
		if !placed && l.Key < have.Key {
			out = append(out, l)
			placed = true
		}
		out = append(out, have)
	}
	if !placed {
		out = append(out, l)
	}
	return out
}

// labelKey renders labels as a canonical sort key.
func labelKey(labels []obs.Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return b.String()
}
