package shard

import (
	"testing"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// TestLeaseOwnerSchedule checks the deterministic rotation: at epoch
// zero resource i belongs to shard i mod N; each term advances every
// ownership by one; and at any instant the owners of N consecutive
// resources are a permutation of the shards (full coverage, no
// contention).
func TestLeaseOwnerSchedule(t *testing.T) {
	l := Leases{Shards: 4, Term: 6 * sim.Hour}
	for i := 0; i < 16; i++ {
		if got := l.Owner(i, 0); got != i%4 {
			t.Errorf("Owner(%d, 0) = %d, want %d", i, got, i%4)
		}
		if got := l.Owner(i, sim.Time(6*sim.Hour)); got != (i+1)%4 {
			t.Errorf("Owner(%d, 6h) = %d, want %d", i, got, (i+1)%4)
		}
	}
	for _, now := range []sim.Time{0, sim.Time(3 * sim.Hour), sim.Time(13 * sim.Hour), sim.Time(100 * sim.Hour)} {
		seen := make(map[int]bool)
		for i := 0; i < 4; i++ {
			seen[l.Owner(i, now)] = true
		}
		if len(seen) != 4 {
			t.Errorf("owners of resources 0..3 at t=%v are not a permutation: %v", now, seen)
		}
	}
	// Determinism: the schedule is a pure function.
	if l.Owner(7, sim.Time(42*sim.Hour)) != l.Owner(7, sim.Time(42*sim.Hour)) {
		t.Error("Owner is not deterministic")
	}
}

// TestLeaseSingleShard pins the degenerate schedule: with one shard
// there is nobody to rotate to, so every resource is owned by shard 0
// at every instant — a 1-shard lease deployment must behave exactly
// like an unshared grid.
func TestLeaseSingleShard(t *testing.T) {
	l := Leases{Shards: 1, Term: sim.Hour}
	for _, now := range []sim.Time{0, sim.Time(30 * sim.Minute), sim.Time(sim.Hour), sim.Time(1e6 * sim.Hour)} {
		for i := 0; i < 5; i++ {
			if got := l.Owner(i, now); got != 0 {
				t.Errorf("Owner(%d, %v) = %d, want 0", i, now, got)
			}
		}
	}
	// The gate over a single-shard schedule never closes.
	eng := sim.NewEngine()
	inner := &fakeLRM{}
	g := NewGate(inner, eng.Now, func(now sim.Time) bool { return l.Owner(0, now) == 0 })
	eng.ScheduleAt(sim.Time(10*sim.Hour), func() {})
	eng.RunUntil(sim.Time(7 * sim.Hour))
	if info := g.Info(); info.TotalCPUs != 32 {
		t.Fatalf("single-shard gate hid capacity after rotation periods: %+v", info)
	}
	if err := g.Submit(&lrm.Job{ID: "j", Work: 1}); err != nil {
		t.Fatalf("single-shard gate refused a submission: %v", err)
	}
}

// TestLeaseFewerResourcesThanShards covers the zero-shared-resources
// edge: with fewer resources than shards, at any instant some shards
// hold no lease at all — they must simply see an empty grid, while the
// rotation still guarantees every shard eventually fronts every
// resource (no shard is starved forever).
func TestLeaseFewerResourcesThanShards(t *testing.T) {
	const shards, resources = 4, 2
	l := Leases{Shards: shards, Term: sim.Hour}
	for epoch := 0; epoch < shards; epoch++ {
		now := sim.Time(float64(epoch) * float64(sim.Hour))
		owners := make(map[int]int)
		for i := 0; i < resources; i++ {
			owners[l.Owner(i, now)]++
		}
		if len(owners) != resources {
			t.Errorf("epoch %d: %d resources owned by %d shards, want one each", epoch, resources, len(owners))
		}
		idle := shards - len(owners)
		if idle != shards-resources {
			t.Errorf("epoch %d: %d shards hold zero leases, want %d", epoch, idle, shards-resources)
		}
	}
	// Across a full rotation cycle every shard fronts each resource
	// exactly once.
	for i := 0; i < resources; i++ {
		seen := make(map[int]bool)
		for epoch := 0; epoch < shards; epoch++ {
			seen[l.Owner(i, sim.Time(float64(epoch)*float64(sim.Hour)))] = true
		}
		if len(seen) != shards {
			t.Errorf("resource %d rotated through %d shards over a full cycle, want %d", i, len(seen), shards)
		}
	}
}

// TestLeaseZeroShardsPanics pins the contract violation: a lease
// schedule with no shards is a construction bug, and Owner must fail
// loudly rather than divide by zero or return a junk shard.
func TestLeaseZeroShardsPanics(t *testing.T) {
	for _, shards := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Owner with Shards=%d did not panic", shards)
				}
			}()
			Leases{Shards: shards}.Owner(0, 0)
		}()
	}
}

// TestLeaseScheduleSurvivesReconstruction is the crash/recover pin at
// the schedule level: ownership is a pure function of (resource,
// virtual time), carried by configuration rather than mutable state,
// so a shard rebuilt after a crash computes exactly the ownership an
// uninterrupted twin would — including at and around rotation
// boundaries that elapsed while it was down.
func TestLeaseScheduleSurvivesReconstruction(t *testing.T) {
	const shards = 3
	term := 2 * sim.Hour
	uninterrupted := Leases{Shards: shards, Term: term}
	// "Recovered": a fresh value built from the same durable config.
	recovered := Leases{Shards: shards, Term: term}
	boundary := sim.Time(4 * sim.Hour) // two full terms elapsed during the outage
	probes := []sim.Time{
		0,
		boundary.Add(-sim.Second),
		boundary,
		boundary.Add(sim.Second),
		boundary.Add(term),
	}
	for i := 0; i < 2*shards; i++ {
		for _, now := range probes {
			if a, b := uninterrupted.Owner(i, now), recovered.Owner(i, now); a != b {
				t.Errorf("Owner(%d, %v): uninterrupted %d, recovered %d", i, now, a, b)
			}
		}
	}

	// A gate rebuilt at recovery time enforces the rotated-away lease:
	// shard 0 owned resource 0 before the outage, but two rotations
	// later ownership moved on, so the recovered gate must refuse.
	eng := sim.NewEngine()
	eng.ScheduleAt(sim.Time(10*sim.Hour), func() {})
	eng.RunUntil(boundary.Add(sim.Minute))
	inner := &fakeLRM{}
	g := NewGate(inner, eng.Now, func(now sim.Time) bool {
		return recovered.Owner(0, now) == 0
	})
	if err := g.Submit(&lrm.Job{ID: "stale", Work: 1}); err == nil {
		t.Fatal("recovered gate accepted a submission for a lease that rotated away during the outage")
	}
	if inner.submitted != 0 {
		t.Fatal("refused submission leaked to the resource")
	}
}

// fakeLRM is a minimal in-memory resource for gate tests.
type fakeLRM struct {
	submitted int
	cancelled []string
}

func (f *fakeLRM) Name() string { return "fake-pbs" }
func (f *fakeLRM) Submit(j *lrm.Job) error {
	f.submitted++
	return nil
}
func (f *fakeLRM) Cancel(id string) bool {
	f.cancelled = append(f.cancelled, id)
	return true
}
func (f *fakeLRM) Info() lrm.Info {
	return lrm.Info{Name: "fake-pbs", Kind: "pbs", TotalCPUs: 32, FreeCPUs: 8, Stable: true}
}
func (f *fakeLRM) Stats() lrm.Stats { return lrm.Stats{Completed: 3} }

// TestGate checks the lease gate: held passes everything through;
// unheld hides capacity from matchmaking and refuses submissions, but
// keeps identity (name, kind) and cancellation intact.
func TestGate(t *testing.T) {
	eng := sim.NewEngine()
	inner := &fakeLRM{}
	l := Leases{Shards: 2, Term: sim.Hour}
	// This gate belongs to shard 0, fronting resource index 0.
	g := NewGate(inner, eng.Now, func(now sim.Time) bool { return l.Owner(0, now) == 0 })

	if g.Name() != "fake-pbs" {
		t.Fatalf("Name = %q", g.Name())
	}
	// Epoch 0: shard 0 holds resource 0.
	if info := g.Info(); info.TotalCPUs != 32 || info.FreeCPUs != 8 || info.Kind != "pbs" {
		t.Fatalf("held Info mangled: %+v", info)
	}
	if err := g.Submit(&lrm.Job{ID: "j1", Work: 1}); err != nil {
		t.Fatalf("held Submit: %v", err)
	}
	if inner.submitted != 1 {
		t.Fatal("held Submit did not reach the resource")
	}

	// Advance one term: the lease rotates to shard 1. (The engine only
	// advances its clock toward a deadline while events remain, so park
	// a sentinel beyond it.)
	eng.ScheduleAt(sim.Time(2*sim.Hour), func() {})
	eng.RunUntil(sim.Time(sim.Hour))
	if info := g.Info(); info.TotalCPUs != 0 || info.FreeCPUs != 0 {
		t.Fatalf("unheld Info still advertises capacity: %+v", info)
	}
	if info := g.Info(); info.Kind != "pbs" || info.Name != "fake-pbs" {
		t.Fatalf("unheld Info lost identity: %+v", info)
	}
	if err := g.Submit(&lrm.Job{ID: "j2", Work: 1}); err == nil {
		t.Fatal("unheld Submit accepted")
	}
	if inner.submitted != 1 {
		t.Fatal("unheld Submit leaked through")
	}
	// Cancellation still reaches the resource (draining in-flight work).
	if !g.Cancel("j1") || len(inner.cancelled) != 1 {
		t.Fatal("Cancel did not delegate while unheld")
	}
	if g.Stats().Completed != 3 {
		t.Fatal("Stats did not delegate")
	}
}
