package shard

import (
	"testing"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// TestLeaseOwnerSchedule checks the deterministic rotation: at epoch
// zero resource i belongs to shard i mod N; each term advances every
// ownership by one; and at any instant the owners of N consecutive
// resources are a permutation of the shards (full coverage, no
// contention).
func TestLeaseOwnerSchedule(t *testing.T) {
	l := Leases{Shards: 4, Term: 6 * sim.Hour}
	for i := 0; i < 16; i++ {
		if got := l.Owner(i, 0); got != i%4 {
			t.Errorf("Owner(%d, 0) = %d, want %d", i, got, i%4)
		}
		if got := l.Owner(i, sim.Time(6*sim.Hour)); got != (i+1)%4 {
			t.Errorf("Owner(%d, 6h) = %d, want %d", i, got, (i+1)%4)
		}
	}
	for _, now := range []sim.Time{0, sim.Time(3 * sim.Hour), sim.Time(13 * sim.Hour), sim.Time(100 * sim.Hour)} {
		seen := make(map[int]bool)
		for i := 0; i < 4; i++ {
			seen[l.Owner(i, now)] = true
		}
		if len(seen) != 4 {
			t.Errorf("owners of resources 0..3 at t=%v are not a permutation: %v", now, seen)
		}
	}
	// Determinism: the schedule is a pure function.
	if l.Owner(7, sim.Time(42*sim.Hour)) != l.Owner(7, sim.Time(42*sim.Hour)) {
		t.Error("Owner is not deterministic")
	}
}

// fakeLRM is a minimal in-memory resource for gate tests.
type fakeLRM struct {
	submitted int
	cancelled []string
}

func (f *fakeLRM) Name() string { return "fake-pbs" }
func (f *fakeLRM) Submit(j *lrm.Job) error {
	f.submitted++
	return nil
}
func (f *fakeLRM) Cancel(id string) bool {
	f.cancelled = append(f.cancelled, id)
	return true
}
func (f *fakeLRM) Info() lrm.Info {
	return lrm.Info{Name: "fake-pbs", Kind: "pbs", TotalCPUs: 32, FreeCPUs: 8, Stable: true}
}
func (f *fakeLRM) Stats() lrm.Stats { return lrm.Stats{Completed: 3} }

// TestGate checks the lease gate: held passes everything through;
// unheld hides capacity from matchmaking and refuses submissions, but
// keeps identity (name, kind) and cancellation intact.
func TestGate(t *testing.T) {
	eng := sim.NewEngine()
	inner := &fakeLRM{}
	l := Leases{Shards: 2, Term: sim.Hour}
	// This gate belongs to shard 0, fronting resource index 0.
	g := NewGate(inner, eng.Now, func(now sim.Time) bool { return l.Owner(0, now) == 0 })

	if g.Name() != "fake-pbs" {
		t.Fatalf("Name = %q", g.Name())
	}
	// Epoch 0: shard 0 holds resource 0.
	if info := g.Info(); info.TotalCPUs != 32 || info.FreeCPUs != 8 || info.Kind != "pbs" {
		t.Fatalf("held Info mangled: %+v", info)
	}
	if err := g.Submit(&lrm.Job{ID: "j1", Work: 1}); err != nil {
		t.Fatalf("held Submit: %v", err)
	}
	if inner.submitted != 1 {
		t.Fatal("held Submit did not reach the resource")
	}

	// Advance one term: the lease rotates to shard 1. (The engine only
	// advances its clock toward a deadline while events remain, so park
	// a sentinel beyond it.)
	eng.ScheduleAt(sim.Time(2*sim.Hour), func() {})
	eng.RunUntil(sim.Time(sim.Hour))
	if info := g.Info(); info.TotalCPUs != 0 || info.FreeCPUs != 0 {
		t.Fatalf("unheld Info still advertises capacity: %+v", info)
	}
	if info := g.Info(); info.Kind != "pbs" || info.Name != "fake-pbs" {
		t.Fatalf("unheld Info lost identity: %+v", info)
	}
	if err := g.Submit(&lrm.Job{ID: "j2", Work: 1}); err == nil {
		t.Fatal("unheld Submit accepted")
	}
	if inner.submitted != 1 {
		t.Fatal("unheld Submit leaked through")
	}
	// Cancellation still reaches the resource (draining in-flight work).
	if !g.Cancel("j1") || len(inner.cancelled) != 1 {
		t.Fatal("Cancel did not delegate while unheld")
	}
	if g.Stats().Completed != 3 {
		t.Fatal("Stats did not delegate")
	}
}
