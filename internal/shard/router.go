// Package shard holds the primitives of multi-coordinator scale-out:
// a deterministic router that partitions users across N coordinator
// shards, a deterministic resource-lease schedule (plus the static
// partition alternative) for sharing the grid federation between
// shards, and exposition merging that gives every metric series a
// shard label. The package is pure mechanism — core.Cluster wires
// these primitives around N core.Lattice deployments.
//
// Everything here is a pure function of its inputs and the virtual
// clock: no wall time, no map iteration, no process identity. Two
// same-seed cluster runs therefore route, lease and expose
// bit-identically, which is what lets the scale-out experiments pin
// digest equality at every shard count.
package shard

import (
	"fmt"
	"hash/fnv"
)

// routeSep separates the hash fields, mirroring dag.StageSeed's
// framing so no (user, origin) pair can collide with another by
// concatenation.
const routeSep = '\x1f'

// Key returns the FNV-1a routing key of a (user, batch origin) pair.
// The same pair always yields the same key, on every shard count —
// rebalancing from N to M shards only changes the modulus, never the
// key, so a user's submissions stay totally ordered on whichever
// shard owns them.
func Key(user, origin string) uint64 {
	h := fnv.New64a()
	//lint:allow errdrop -- fnv.Write cannot fail
	h.Write([]byte(user))
	//lint:allow errdrop -- fnv.Write cannot fail
	h.Write([]byte{routeSep})
	//lint:allow errdrop -- fnv.Write cannot fail
	h.Write([]byte(origin))
	return h.Sum64()
}

// Route returns the shard that owns a (user, batch origin) pair in an
// n-shard deployment. n must be positive; Route panics otherwise
// (a zero-shard cluster is a construction error, not a runtime
// condition).
func Route(user, origin string, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("shard: Route with %d shards", n))
	}
	return int(Key(user, origin) % uint64(n))
}

// Seed derives shard k's engine seed from the deployment seed. Each
// shard runs its own discrete-event engine and RNG tree; deriving the
// per-shard seed through FNV-1a (the same construction as
// dag.StageSeed) keeps sibling shards' RNG streams decorrelated while
// staying a pure function of (base, k).
func Seed(base int64, k int) int64 {
	h := fnv.New64a()
	//lint:allow errdrop -- fnv.Write cannot fail
	fmt.Fprintf(h, "%d\x1fshard\x1f%d", base, k)
	return int64(h.Sum64() >> 1) // clear the sign bit: seeds stay non-negative
}

// Origin builds the shard-qualified origin label recorded on batches
// and WAL inputs: "shard<k>/<path>". The prefix makes every journal
// event and durable record attributable to its coordinator shard.
func Origin(k int, path string) string {
	return fmt.Sprintf("shard%d/%s", k, path)
}
