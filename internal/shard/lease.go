package shard

import (
	"fmt"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// ShareMode selects how a cluster's shards share the grid federation.
type ShareMode string

const (
	// SharePartition statically assigns resource i of the federation
	// to shard i mod N. Each shard builds only its own resources;
	// there is no cross-shard contention and no lease machinery.
	SharePartition ShareMode = "partition"
	// ShareLease gives every shard the whole federation behind lease
	// gates: at any virtual instant exactly one shard holds each
	// resource's lease, and ownership rotates deterministically every
	// lease term. No coordination protocol runs between shards — the
	// owner is a pure function of (resource index, virtual time), so
	// every shard computes the same answer independently, which is
	// what keeps per-shard runs deterministic and crash-local.
	ShareLease ShareMode = "lease"
)

// DefaultLeaseTerm is the lease rotation period when none is set.
const DefaultLeaseTerm = 6 * sim.Hour

// Leases is the deterministic lease schedule of a ShareLease
// deployment: resource i is owned by shard (i + epoch) mod Shards,
// where epoch advances once per Term on the virtual clock. The
// rotation means every shard eventually fronts every resource, so a
// long-lived imbalance in per-shard load cannot starve anyone.
type Leases struct {
	Shards int
	Term   sim.Duration
}

// Owner returns the shard holding resource i's lease at virtual time
// now.
func (l Leases) Owner(i int, now sim.Time) int {
	if l.Shards <= 0 {
		panic(fmt.Sprintf("shard: lease schedule with %d shards", l.Shards))
	}
	term := l.Term
	if term <= 0 {
		term = DefaultLeaseTerm
	}
	epoch := int(float64(now) / float64(term))
	return ((i % l.Shards) + epoch) % l.Shards
}

// Gate wraps a resource LRM so a shard only places work on it while
// holding the lease. While unheld, Info reports zero CPUs — the
// scheduler's ranking skips zero-capacity candidates, so the resource
// simply vanishes from this shard's matchmaking — and Submit refuses
// outright as a second line of defence. Jobs already running when the
// lease rotates away keep running to completion (their callbacks pass
// through untouched), exactly like a real grid draining a resource
// whose allocation ended.
type Gate struct {
	inner lrm.LRM
	now   func() sim.Time
	held  func(now sim.Time) bool
}

// NewGate wraps inner; held reports whether this shard owns the
// resource's lease at a virtual instant, and now supplies the shard
// engine's clock.
func NewGate(inner lrm.LRM, now func() sim.Time, held func(sim.Time) bool) *Gate {
	return &Gate{inner: inner, now: now, held: held}
}

// Name delegates to the wrapped resource.
func (g *Gate) Name() string { return g.inner.Name() }

// Submit admits the job only while the lease is held.
func (g *Gate) Submit(j *lrm.Job) error {
	if !g.held(g.now()) {
		return fmt.Errorf("shard: lease for %s not held", g.inner.Name())
	}
	return g.inner.Submit(j)
}

// Cancel delegates: in-flight work stays cancellable after the lease
// rotates away (the grid level still owns the job).
func (g *Gate) Cancel(jobID string) bool { return g.inner.Cancel(jobID) }

// Info passes the resource state through while the lease is held and
// reports zero capacity otherwise. Kind, name and platform survive
// either way, so MDS entries stay alive (no false resource-death
// requeues) and adapter selection at registration is unaffected.
func (g *Gate) Info() lrm.Info {
	info := g.inner.Info()
	if !g.held(g.now()) {
		info.TotalCPUs = 0
		info.FreeCPUs = 0
	}
	return info
}

// Stats delegates lifetime accounting.
func (g *Gate) Stats() lrm.Stats { return g.inner.Stats() }
