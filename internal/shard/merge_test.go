package shard

import (
	"strings"
	"testing"

	"lattice/internal/obs"
	"lattice/internal/sim"
)

// buildHub populates one shard's registry with the series shapes the
// coordinator actually emits: an unlabelled counter, a labelled
// counter, a gauge, and a histogram — all with identical names across
// shards, which is exactly the collision the shard label must prevent.
func buildHub(scale float64) *obs.Obs {
	o := obs.New(sim.NewEngine())
	o.Counter("lattice_sched_jobs_submitted_total", "Jobs accepted").Add(100 * scale)
	o.Counter("lattice_sched_placements_total", "Placements by resource",
		obs.L("resource", "umd-hpc"), obs.L("policy", "full")).Add(40 * scale)
	o.Gauge("lattice_sched_pending_jobs", "Jobs awaiting placement").Set(7 * scale)
	h := o.Histogram("lattice_sched_placement_wait_seconds", "Submit to dispatch", nil)
	h.Observe(30 * scale)
	h.Observe(90 * scale)
	return o
}

// TestMergeSnapshotsShardLabel is the per-shard metric identity
// check: after merging, every single series carries a shard label, in
// key-sorted label position, and the per-shard values survive
// unchanged.
func TestMergeSnapshotsShardLabel(t *testing.T) {
	hubs := []*obs.Obs{buildHub(1), buildHub(2), buildHub(3)}
	var per [][]obs.SeriesSnapshot
	for _, o := range hubs {
		per = append(per, o.Registry.Snapshot())
	}
	merged := MergeSnapshots(per)
	if want := len(per[0]) + len(per[1]) + len(per[2]); len(merged) != want {
		t.Fatalf("merged %d series, want %d (nothing may collide or fold)", len(merged), want)
	}
	for _, s := range merged {
		found := false
		for i, l := range s.Labels {
			if l.Key == "shard" {
				found = true
				if i > 0 && s.Labels[i-1].Key > "shard" {
					t.Errorf("series %s: labels not key-sorted after shard insertion: %v", s.Name, s.Labels)
				}
			}
		}
		if !found {
			t.Errorf("series %s has no shard label: %v", s.Name, s.Labels)
		}
	}
}

// TestMergeExpositionsParseBack renders the merged exposition and
// parses it back with obs.ParseExposition: the sample count must be
// the exact sum of the per-shard sample counts (collision-free), every
// key must carry the shard label, known values must read back
// per-shard, and two merges must be byte-identical (deterministic).
func TestMergeExpositionsParseBack(t *testing.T) {
	hubs := []*obs.Obs{buildHub(1), buildHub(2)}
	var per [][]obs.SeriesSnapshot
	wantSamples := 0
	for _, o := range hubs {
		snap := o.Registry.Snapshot()
		per = append(per, snap)
		m, err := obs.ParseExposition(o.Exposition())
		if err != nil {
			t.Fatalf("per-shard exposition unparseable: %v", err)
		}
		wantSamples += len(m)
	}

	text := MergeExpositions(per)
	if text != MergeExpositions(per) {
		t.Fatal("merged exposition is not deterministic")
	}
	m, err := obs.ParseExposition(text)
	if err != nil {
		t.Fatalf("merged exposition unparseable: %v", err)
	}
	if len(m) != wantSamples {
		t.Fatalf("merged exposition has %d samples, want %d (per-shard sum)", len(m), wantSamples)
	}
	for key := range m {
		if !strings.Contains(key, `shard="`) {
			t.Errorf("sample %q lost its shard label", key)
		}
	}

	// Spot-check values landed under the right shard.
	checks := map[string]float64{
		`lattice_sched_jobs_submitted_total{shard="0"}`:                              100,
		`lattice_sched_jobs_submitted_total{shard="1"}`:                              200,
		`lattice_sched_pending_jobs{shard="0"}`:                                      7,
		`lattice_sched_pending_jobs{shard="1"}`:                                      14,
		`lattice_sched_placements_total{policy="full",resource="umd-hpc",shard="0"}`: 40,
		`lattice_sched_placement_wait_seconds_count{shard="1"}`:                      2,
	}
	for key, want := range checks {
		got, ok := m[key]
		if !ok {
			t.Errorf("merged exposition missing %q", key)
			continue
		}
		// Samples here are integral by construction; comparing through
		// int keeps the check exact without a float equality.
		if int(got) != int(want) {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
}
