package adapter

import (
	"strings"
	"testing"

	"lattice/internal/grid/rsl"
	"lattice/internal/lrm"
	"lattice/internal/lrm/pbs"
	"lattice/internal/sim"
)

func desc() *rsl.JobDescription {
	return &rsl.JobDescription{
		JobID:               "garli-42",
		Executable:          "garli",
		Arguments:           []string{"garli.conf"},
		Count:               1,
		MaxMemoryMB:         512,
		Platforms:           []lrm.Platform{lrm.LinuxX86},
		WallLimit:           2 * sim.Hour,
		EstimatedRefSeconds: 900,
		DelayBound:          2 * sim.Day,
		Work:                900 * lrm.ReferenceCellsPerSecond,
	}
}

func TestForKind(t *testing.T) {
	for _, kind := range []string{"condor", "pbs", "sge", "boinc"} {
		a, err := ForKind(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if a.Kind() != kind {
			t.Errorf("adapter for %s reports kind %s", kind, a.Kind())
		}
	}
	if _, err := ForKind("slurm"); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestRenderArtifacts(t *testing.T) {
	want := map[string][]string{
		"condor": {"universe = vanilla", "executable = garli", "Memory >= 512", "queue 1"},
		"pbs":    {"#PBS -N garli-42", "#PBS -l mem=512mb", "#PBS -l walltime=02:00:00"},
		"sge":    {"#$ -N garli-42", "#$ -l mem_free=512M", "#$ -l h_rt=7200"},
		"boinc":  {"<name>garli-42</name>", "<delay_bound>172800</delay_bound>", "rsc_fpops_est"},
	}
	for kind, fragments := range want {
		a, err := ForKind(kind)
		if err != nil {
			t.Fatal(err)
		}
		out, err := a.Render(desc())
		if err != nil {
			t.Fatalf("%s render: %v", kind, err)
		}
		for _, frag := range fragments {
			if !strings.Contains(out, frag) {
				t.Errorf("%s artifact missing %q:\n%s", kind, frag, out)
			}
		}
	}
}

func TestRenderMPIUsesmpirun(t *testing.T) {
	d := desc()
	d.NeedsMPI = true
	d.Count = 8
	a, _ := ForKind("pbs")
	out, err := a.Render(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mpirun") || !strings.Contains(out, "nodes=8") {
		t.Errorf("MPI script wrong:\n%s", out)
	}
}

func TestRenderRejectsInvalid(t *testing.T) {
	d := desc()
	d.Work = 0
	for _, kind := range []string{"condor", "pbs", "sge", "boinc"} {
		a, _ := ForKind(kind)
		if _, err := a.Render(d); err == nil {
			t.Errorf("%s rendered an invalid description", kind)
		}
	}
}

func TestSubmitWiresCallbacks(t *testing.T) {
	eng := sim.NewEngine()
	cluster, err := pbs.New(eng, pbs.Config{
		Name: "c", Platform: lrm.LinuxX86,
		Nodes: []pbs.NodeClass{{Count: 1, Speed: 1, MemoryMB: 1024}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ForKind("pbs")
	completed := false
	if err := a.Submit(cluster, desc(), func() { completed = true }, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !completed {
		t.Error("completion callback never fired")
	}
}

func TestSubmitFailureCallback(t *testing.T) {
	eng := sim.NewEngine()
	cluster, err := pbs.New(eng, pbs.Config{
		Name: "c", Platform: lrm.LinuxX86,
		Nodes:            []pbs.NodeClass{{Count: 1, Speed: 1, MemoryMB: 1024}},
		DefaultWallLimit: sim.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ForKind("pbs")
	d := desc()
	d.WallLimit = 0 // fall back to the queue's 1-minute limit
	var reason string
	if err := a.Submit(cluster, d, nil, func(r string) { reason = r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if reason == "" {
		t.Error("failure callback never fired")
	}
}
