// Package adapter implements scheduler adapters: the per-LRM
// translation of a generic RSL job description into a
// resource-specific submission. The paper's system "customized and
// extended the stock versions of the PBS and Condor adapters …
// assembled an SGE adapter from various sources … wrote our BOINC
// scheduler adapter completely from scratch"; here each adapter
// renders the native submit artifact (Condor submit file, PBS/SGE
// batch script, BOINC workunit template) and performs the submission
// against the simulated resource.
package adapter

import (
	"fmt"
	"strings"

	"lattice/internal/grid/rsl"
	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// Adapter translates and submits jobs for one LRM kind.
type Adapter interface {
	// Kind returns the LRM kind this adapter handles.
	Kind() string
	// Render produces the native submit artifact for the job — what
	// the real adapter would hand to condor_submit/qsub/create_work.
	Render(d *rsl.JobDescription) (string, error)
	// Submit translates the description and submits it to the
	// resource, wiring the given callbacks.
	Submit(target lrm.LRM, d *rsl.JobDescription, onComplete func(), onFail func(reason string)) error
}

// ForKind returns the adapter for an LRM kind.
func ForKind(kind string) (Adapter, error) {
	switch kind {
	case "condor":
		return condorAdapter{}, nil
	case "pbs":
		return pbsAdapter{}, nil
	case "sge":
		return sgeAdapter{}, nil
	case "boinc":
		return boincAdapter{}, nil
	default:
		return nil, fmt.Errorf("adapter: no scheduler adapter for kind %q", kind)
	}
}

type condorAdapter struct{}

func (condorAdapter) Kind() string { return "condor" }

// Render emits a Condor submit description file.
func (condorAdapter) Render(d *rsl.JobDescription) (string, error) {
	if err := d.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "universe = vanilla\n")
	fmt.Fprintf(&b, "executable = %s\n", d.Executable)
	if len(d.Arguments) > 0 {
		fmt.Fprintf(&b, "arguments = %s\n", strings.Join(d.Arguments, " "))
	}
	var reqs []string
	if d.MaxMemoryMB > 0 {
		reqs = append(reqs, fmt.Sprintf("Memory >= %d", d.MaxMemoryMB))
	}
	for _, p := range d.Platforms {
		reqs = append(reqs, fmt.Sprintf("(OpSysAndVer == \"%s\")", p))
	}
	if len(reqs) > 0 {
		fmt.Fprintf(&b, "requirements = %s\n", strings.Join(reqs, " && "))
	}
	fmt.Fprintf(&b, "log = %s.log\noutput = %s.out\nerror = %s.err\n", d.JobID, d.JobID, d.JobID)
	fmt.Fprintf(&b, "queue %d\n", d.Count)
	return b.String(), nil
}

func (a condorAdapter) Submit(target lrm.LRM, d *rsl.JobDescription, onComplete func(), onFail func(string)) error {
	return genericSubmit(target, d, onComplete, onFail)
}

type pbsAdapter struct{}

func (pbsAdapter) Kind() string { return "pbs" }

// Render emits a PBS batch script.
func (pbsAdapter) Render(d *rsl.JobDescription) (string, error) {
	if err := d.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "#!/bin/sh\n#PBS -N %s\n", d.JobID)
	if d.MaxMemoryMB > 0 {
		fmt.Fprintf(&b, "#PBS -l mem=%dmb\n", d.MaxMemoryMB)
	}
	if d.WallLimit > 0 {
		secs := int(d.WallLimit.Seconds())
		fmt.Fprintf(&b, "#PBS -l walltime=%02d:%02d:%02d\n", secs/3600, (secs/60)%60, secs%60)
	}
	if d.NeedsMPI {
		fmt.Fprintf(&b, "#PBS -l nodes=%d\n", d.Count)
		fmt.Fprintf(&b, "mpirun %s %s\n", d.Executable, strings.Join(d.Arguments, " "))
	} else {
		fmt.Fprintf(&b, "%s %s\n", d.Executable, strings.Join(d.Arguments, " "))
	}
	return b.String(), nil
}

func (a pbsAdapter) Submit(target lrm.LRM, d *rsl.JobDescription, onComplete func(), onFail func(string)) error {
	return genericSubmit(target, d, onComplete, onFail)
}

type sgeAdapter struct{}

func (sgeAdapter) Kind() string { return "sge" }

// Render emits an SGE batch script.
func (sgeAdapter) Render(d *rsl.JobDescription) (string, error) {
	if err := d.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "#!/bin/sh\n#$ -N %s\n#$ -cwd\n", d.JobID)
	if d.MaxMemoryMB > 0 {
		fmt.Fprintf(&b, "#$ -l mem_free=%dM\n", d.MaxMemoryMB)
	}
	if d.WallLimit > 0 {
		fmt.Fprintf(&b, "#$ -l h_rt=%d\n", int(d.WallLimit.Seconds()))
	}
	fmt.Fprintf(&b, "%s %s\n", d.Executable, strings.Join(d.Arguments, " "))
	return b.String(), nil
}

func (a sgeAdapter) Submit(target lrm.LRM, d *rsl.JobDescription, onComplete func(), onFail func(string)) error {
	return genericSubmit(target, d, onComplete, onFail)
}

type boincAdapter struct{}

func (boincAdapter) Kind() string { return "boinc" }

// Render emits a BOINC workunit template with the runtime estimate
// mapped to rsc_fpops_est and the deadline to delay_bound — the
// integration the paper credits for proper deadline handling.
func (boincAdapter) Render(d *rsl.JobDescription) (string, error) {
	if err := d.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("<workunit>\n")
	fmt.Fprintf(&b, "  <name>%s</name>\n", d.JobID)
	fmt.Fprintf(&b, "  <app_name>%s</app_name>\n", d.Executable)
	if d.EstimatedRefSeconds > 0 {
		fmt.Fprintf(&b, "  <rsc_fpops_est>%g</rsc_fpops_est>\n", d.EstimatedRefSeconds*1e9)
	}
	if d.DelayBound > 0 {
		fmt.Fprintf(&b, "  <delay_bound>%d</delay_bound>\n", int(d.DelayBound.Seconds()))
	}
	if d.MaxMemoryMB > 0 {
		fmt.Fprintf(&b, "  <rsc_memory_bound>%d</rsc_memory_bound>\n", d.MaxMemoryMB<<20)
	}
	for i, arg := range d.Arguments {
		fmt.Fprintf(&b, "  <command_line_arg%d>%s</command_line_arg%d>\n", i, arg, i)
	}
	b.WriteString("</workunit>\n")
	return b.String(), nil
}

func (a boincAdapter) Submit(target lrm.LRM, d *rsl.JobDescription, onComplete func(), onFail func(string)) error {
	return genericSubmit(target, d, onComplete, onFail)
}

// genericSubmit performs the common translate-and-submit path.
func genericSubmit(target lrm.LRM, d *rsl.JobDescription, onComplete func(), onFail func(string)) error {
	if err := d.Validate(); err != nil {
		return err
	}
	j := d.ToJob()
	if onComplete != nil {
		j.OnComplete = func(sim.Time) { onComplete() }
	}
	if onFail != nil {
		j.OnFail = func(_ sim.Time, reason string) { onFail(reason) }
	}
	return target.Submit(j)
}
