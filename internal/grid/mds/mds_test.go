package mds

import (
	"testing"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// fakeLRM is a minimal LRM producing a controllable Info.
type fakeLRM struct {
	name string
	free int
}

func (f *fakeLRM) Name() string          { return f.name }
func (f *fakeLRM) Submit(*lrm.Job) error { return nil }
func (f *fakeLRM) Cancel(string) bool    { return false }
func (f *fakeLRM) Stats() lrm.Stats      { return lrm.Stats{} }
func (f *fakeLRM) Info() lrm.Info {
	return lrm.Info{Name: f.name, Kind: "pbs", TotalCPUs: 8, FreeCPUs: f.free, Stable: true}
}

func TestPublishLookup(t *testing.T) {
	eng := sim.NewEngine()
	idx, err := NewIndex(eng, 5*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	idx.Publish(lrm.Info{Name: "r1", FreeCPUs: 3})
	e, ok := idx.Lookup("r1")
	if !ok || e.Info.FreeCPUs != 3 {
		t.Fatalf("lookup failed: %+v %v", e, ok)
	}
	if _, ok := idx.Lookup("nope"); ok {
		t.Error("lookup of unknown resource succeeded")
	}
}

func TestTTLExpiry(t *testing.T) {
	eng := sim.NewEngine()
	idx, _ := NewIndex(eng, 5*sim.Minute)
	idx.Publish(lrm.Info{Name: "r1"})
	eng.Schedule(6*sim.Minute, func() {
		if _, ok := idx.Lookup("r1"); ok {
			t.Error("entry should have expired")
		}
		off := idx.Offline()
		if len(off) != 1 || off[0] != "r1" {
			t.Errorf("Offline() = %v", off)
		}
	})
	eng.Run()
}

func TestProviderKeepsEntryFresh(t *testing.T) {
	eng := sim.NewEngine()
	idx, _ := NewIndex(eng, 5*sim.Minute)
	src := &fakeLRM{name: "cluster", free: 2}
	p, err := StartProvider(eng, idx, src, 2*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Well past several TTLs, the entry must still be fresh and must
	// reflect updated state.
	eng.Schedule(30*sim.Minute, func() {
		src.free = 7
	})
	eng.Schedule(40*sim.Minute, func() {
		e, ok := idx.Lookup("cluster")
		if !ok {
			t.Fatal("provider let the entry expire")
		}
		if e.Info.FreeCPUs != 7 {
			t.Errorf("stale FreeCPUs = %d, want 7", e.Info.FreeCPUs)
		}
		p.Stop()
	})
	// After stopping, the entry ages out (resource offline).
	eng.Schedule(50*sim.Minute, func() {
		if _, ok := idx.Lookup("cluster"); ok {
			t.Error("entry still fresh after provider stopped")
		}
	})
	eng.RunUntil(sim.Time(sim.Hour))
}

func TestPropagatorAggregatesToCentral(t *testing.T) {
	eng := sim.NewEngine()
	local1, _ := NewIndex(eng, 5*sim.Minute)
	local2, _ := NewIndex(eng, 5*sim.Minute)
	central, _ := NewIndex(eng, 5*sim.Minute)
	StartProvider(eng, local1, &fakeLRM{name: "condor-a", free: 1}, sim.Minute)
	StartProvider(eng, local2, &fakeLRM{name: "pbs-b", free: 2}, sim.Minute)
	if _, err := StartPropagator(eng, local1, central, 2*sim.Minute); err != nil {
		t.Fatal(err)
	}
	StartPropagator(eng, local2, central, 2*sim.Minute)
	eng.Schedule(10*sim.Minute, func() {
		snap := central.Snapshot()
		if len(snap) != 2 {
			t.Fatalf("central sees %d resources, want 2", len(snap))
		}
		if snap[0].Info.Name != "condor-a" || snap[1].Info.Name != "pbs-b" {
			t.Errorf("snapshot order wrong: %v, %v", snap[0].Info.Name, snap[1].Info.Name)
		}
	})
	eng.RunUntil(sim.Time(15 * sim.Minute))
}

func TestOfflineResourceDisappearsFromCentral(t *testing.T) {
	eng := sim.NewEngine()
	local, _ := NewIndex(eng, 4*sim.Minute)
	central, _ := NewIndex(eng, 4*sim.Minute)
	p, _ := StartProvider(eng, local, &fakeLRM{name: "flaky"}, sim.Minute)
	StartPropagator(eng, local, central, sim.Minute)
	// Resource "crashes" at t=20min.
	eng.Schedule(20*sim.Minute, func() { p.Stop() })
	eng.Schedule(19*sim.Minute, func() {
		if _, ok := central.Lookup("flaky"); !ok {
			t.Error("resource should be visible before crash")
		}
	})
	eng.Schedule(30*sim.Minute, func() {
		if _, ok := central.Lookup("flaky"); ok {
			t.Error("crashed resource still fresh in central index 10 min later")
		}
	})
	eng.RunUntil(sim.Time(35 * sim.Minute))
}

// TestCentralExpiryWithLiveDownstream covers the split-brain case: the
// downstream provider keeps its local index fresh, but the propagation
// link to the central index dies. The central entry must age out on
// its own TTL even though the resource is alive and publishing.
func TestCentralExpiryWithLiveDownstream(t *testing.T) {
	eng := sim.NewEngine()
	local, _ := NewIndex(eng, 4*sim.Minute)
	central, _ := NewIndex(eng, 4*sim.Minute)
	StartProvider(eng, local, &fakeLRM{name: "alive", free: 3}, sim.Minute)
	p, err := StartPropagator(eng, local, central, sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(20*sim.Minute, func() { p.Stop() }) // the link dies
	eng.Schedule(30*sim.Minute, func() {
		if _, ok := local.Lookup("alive"); !ok {
			t.Error("local entry expired although the provider kept publishing")
		}
		if _, ok := central.Lookup("alive"); ok {
			t.Error("central entry still fresh 10 min after the propagation link died")
		}
		if off := central.Offline(); len(off) != 1 || off[0] != "alive" {
			t.Errorf("central Offline() = %v, want [alive]", off)
		}
	})
	eng.RunUntil(sim.Time(35 * sim.Minute))
}

// TestSnapshotDeterministicUnderExpiry pins Snapshot's contract while
// entries age out mid-stream: always name-sorted, and only fresh
// entries appear — the property the scheduler's deterministic
// placement loop rests on.
func TestSnapshotDeterministicUnderExpiry(t *testing.T) {
	eng := sim.NewEngine()
	idx, _ := NewIndex(eng, 10*sim.Minute)
	// Publish in anti-alphabetical order with staggered times so each
	// expires at a different moment.
	names := []string{"zeta", "mid", "alpha"}
	for i, n := range names {
		n := n
		eng.Schedule(sim.Duration(i)*3*sim.Minute, func() {
			idx.Publish(lrm.Info{Name: n})
		})
	}
	check := func(at sim.Duration, want []string) {
		eng.Schedule(at, func() {
			snap := idx.Snapshot()
			if len(snap) != len(want) {
				t.Errorf("t=%v: snapshot has %d entries, want %v", at, len(snap), want)
				return
			}
			for i, e := range snap {
				if e.Info.Name != want[i] {
					t.Errorf("t=%v: snapshot[%d] = %s, want %s", at, i, e.Info.Name, want[i])
				}
			}
		})
	}
	check(7*sim.Minute, []string{"alpha", "mid", "zeta"})  // all fresh, sorted
	check(11*sim.Minute, []string{"alpha", "mid"})         // zeta (t=0) expired
	check(14*sim.Minute, []string{"alpha"})                // mid (t=3m) expired
	check(17*sim.Minute, []string{})                       // all aged out
	eng.RunUntil(sim.Time(20 * sim.Minute))
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewIndex(eng, 0); err == nil {
		t.Error("expected error for zero TTL")
	}
	idx, _ := NewIndex(eng, sim.Minute)
	if _, err := StartProvider(eng, idx, &fakeLRM{name: "x"}, 0); err == nil {
		t.Error("expected error for zero provider period")
	}
	if _, err := StartPropagator(eng, idx, idx, 0); err == nil {
		t.Error("expected error for zero propagator period")
	}
}
