// Package mds reimplements the slice of the Globus Monitoring and
// Discovery Service the grid-level scheduler depends on: scheduler
// providers periodically publish resource state into an index, entries
// carry a short TTL ("valid for a short lifetime, typically on the
// order of minutes"), indexes propagate upstream into a central index,
// and resources whose information goes stale are marked offline so "no
// new jobs are scheduled there".
package mds

import (
	"fmt"
	"sort"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// Entry is one resource's state as known to an index.
type Entry struct {
	Info      lrm.Info
	UpdatedAt sim.Time
}

// Index is an MDS database of resource entries.
type Index struct {
	eng     *sim.Engine
	ttl     sim.Duration
	entries map[string]Entry
}

// NewIndex creates an index whose entries expire after ttl.
func NewIndex(eng *sim.Engine, ttl sim.Duration) (*Index, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("mds: TTL must be positive")
	}
	return &Index{eng: eng, ttl: ttl, entries: make(map[string]Entry)}, nil
}

// Publish inserts or refreshes a resource entry.
func (x *Index) Publish(info lrm.Info) {
	x.entries[info.Name] = Entry{Info: info, UpdatedAt: x.eng.Now()}
}

// fresh reports whether the entry is within its TTL.
func (x *Index) fresh(e Entry) bool {
	return x.eng.Now().Sub(e.UpdatedAt) <= x.ttl
}

// Lookup returns a resource's entry; ok is false when the resource is
// unknown or its entry has expired (the resource is considered
// offline).
func (x *Index) Lookup(name string) (Entry, bool) {
	e, ok := x.entries[name]
	if !ok || !x.fresh(e) {
		return Entry{}, false
	}
	return e, true
}

// Snapshot returns all fresh entries sorted by resource name —
// the scheduler's view of which resources are reporting.
func (x *Index) Snapshot() []Entry {
	out := make([]Entry, 0, len(x.entries))
	for _, e := range x.entries {
		if x.fresh(e) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.Name < out[j].Info.Name })
	return out
}

// Offline returns the names of resources whose entries have gone
// stale, sorted.
func (x *Index) Offline() []string {
	var out []string
	for name, e := range x.entries {
		if !x.fresh(e) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Sink consumes resource-state publications. *Index satisfies it
// directly; the fault injector wraps one to model publication drops
// and staleness bursts without the provider noticing.
type Sink interface {
	Publish(info lrm.Info)
}

// Provider is a scheduler provider: it polls one local resource and
// publishes its Info into an index on a fixed period (the Condor
// provider of the paper parses condor_status the same way).
type Provider struct {
	stop func()
}

// StartProvider begins publishing src's state into dst every period.
// The first publication happens immediately.
func StartProvider(eng *sim.Engine, dst Sink, src lrm.LRM, period sim.Duration) (*Provider, error) {
	if period <= 0 {
		return nil, fmt.Errorf("mds: provider period must be positive")
	}
	dst.Publish(src.Info())
	stop := eng.Every(period, func() {
		dst.Publish(src.Info())
	})
	return &Provider{stop: stop}, nil
}

// Stop halts publication — the resource's entry then ages out of the
// index, exactly how a crashed remote Globus container disappears from
// the central MDS.
func (p *Provider) Stop() { p.stop() }

// Propagator periodically copies fresh entries from one index into
// another, modelling the hierarchical MDS aggregation between Globus
// containers ("information in this MDS database can be periodically
// propagated to another MDS database running in another Globus
// container process").
type Propagator struct {
	stop func()
}

// StartPropagator copies fresh entries of src into dst every period.
func StartPropagator(eng *sim.Engine, src, dst *Index, period sim.Duration) (*Propagator, error) {
	if period <= 0 {
		return nil, fmt.Errorf("mds: propagator period must be positive")
	}
	propagate := func() {
		for _, e := range src.Snapshot() {
			// Preserve origin timestamps? Central entries refresh on
			// arrival: staleness is measured per hop, as in MDS.
			dst.Publish(e.Info)
		}
	}
	propagate()
	stop := eng.Every(period, propagate)
	return &Propagator{stop: stop}, nil
}

// Stop halts propagation.
func (p *Propagator) Stop() { p.stop() }
