// Package rsl implements a Globus Resource Specification Language
// style job description format: the generic, resource-independent
// description a grid job travels as, which each scheduler adapter
// translates into a Condor/PBS/SGE submit file or a BOINC workunit
// ("a collection of scripts responsible for translating a generic job
// description in Globus RSL … into a resource-specific job
// description").
//
// The concrete syntax follows classic RSL relation lists:
//
//	&(executable=/grid/apps/garli)(count=1)(maxMemory=512)
//	 (arguments=garli.conf run1)(environment=(OMP_NUM_THREADS 1))
package rsl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// Spec is a parsed RSL relation list: attribute → values.
type Spec struct {
	attrs map[string][]string
}

// NewSpec returns an empty specification.
func NewSpec() *Spec { return &Spec{attrs: make(map[string][]string)} }

// Set replaces an attribute's values.
func (s *Spec) Set(name string, values ...string) {
	s.attrs[strings.ToLower(name)] = values
}

// Get returns the first value of an attribute and whether it exists.
func (s *Spec) Get(name string) (string, bool) {
	v, ok := s.attrs[strings.ToLower(name)]
	if !ok || len(v) == 0 {
		return "", false
	}
	return v[0], true
}

// GetAll returns all values of an attribute.
func (s *Spec) GetAll(name string) []string {
	return s.attrs[strings.ToLower(name)]
}

// Names returns the attribute names in sorted order.
func (s *Spec) Names() []string {
	names := make([]string, 0, len(s.attrs))
	for n := range s.attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String serializes the spec in canonical form: attributes sorted,
// values quoted when needed.
func (s *Spec) String() string {
	var b strings.Builder
	b.WriteByte('&')
	for _, name := range s.Names() {
		b.WriteByte('(')
		b.WriteString(name)
		b.WriteByte('=')
		for i, v := range s.attrs[name] {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(quote(v))
		}
		b.WriteByte(')')
	}
	return b.String()
}

func quote(v string) string {
	if v == "" || strings.ContainsAny(v, " ()\"=") {
		return `"` + strings.ReplaceAll(v, `"`, `""`) + `"`
	}
	return v
}

// Parse reads an RSL relation list.
func Parse(input string) (*Spec, error) {
	s := NewSpec()
	p := &parser{s: input}
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] != '&' {
		return nil, fmt.Errorf("rsl: specification must start with '&'")
	}
	p.pos++
	for {
		p.skipSpace()
		if p.pos >= len(p.s) {
			break
		}
		if p.s[p.pos] != '(' {
			return nil, fmt.Errorf("rsl: expected '(' at offset %d", p.pos)
		}
		p.pos++
		name := p.readToken()
		if name == "" {
			return nil, fmt.Errorf("rsl: empty attribute name at offset %d", p.pos)
		}
		p.skipSpace()
		if p.pos >= len(p.s) || p.s[p.pos] != '=' {
			return nil, fmt.Errorf("rsl: expected '=' after %q", name)
		}
		p.pos++
		var values []string
		for {
			p.skipSpace()
			if p.pos >= len(p.s) {
				return nil, fmt.Errorf("rsl: unterminated relation %q", name)
			}
			if p.s[p.pos] == ')' {
				p.pos++
				break
			}
			v, err := p.readValue()
			if err != nil {
				return nil, err
			}
			values = append(values, v)
		}
		s.attrs[strings.ToLower(name)] = values
	}
	return s, nil
}

type parser struct {
	s   string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n' || p.s[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) readToken() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) && !strings.ContainsRune(" ()=\"\t\n\r", rune(p.s[p.pos])) {
		p.pos++
	}
	return p.s[start:p.pos]
}

func (p *parser) readValue() (string, error) {
	if p.s[p.pos] == '"' {
		p.pos++
		var b strings.Builder
		for p.pos < len(p.s) {
			if p.s[p.pos] == '"' {
				if p.pos+1 < len(p.s) && p.s[p.pos+1] == '"' {
					b.WriteByte('"')
					p.pos += 2
					continue
				}
				p.pos++
				return b.String(), nil
			}
			b.WriteByte(p.s[p.pos])
			p.pos++
		}
		return "", fmt.Errorf("rsl: unterminated quoted value")
	}
	tok := p.readToken()
	if tok == "" {
		return "", fmt.Errorf("rsl: empty value at offset %d", p.pos)
	}
	return tok, nil
}

// JobDescription is the typed view of a grid job the scheduler and
// adapters work with.
type JobDescription struct {
	JobID string
	// BatchID names the portal batch the job belongs to, when it came
	// through one — the trace/journal context (internal/obs) travels
	// with the job description the way the real system's grid job
	// annotations did.
	BatchID             string
	Executable          string
	Arguments           []string
	Count               int // replicate count carried for bundling
	MaxMemoryMB         int
	Platforms           []lrm.Platform
	Software            []string
	NeedsMPI            bool
	WallLimit           sim.Duration
	EstimatedRefSeconds float64
	DelayBound          sim.Duration
	// Work is the computational size in cell updates; carried as an
	// extension attribute (the real system derives it from input
	// files during validation).
	Work float64
	// InputMB and OutputMB size the job's data staging: sequence
	// files in, result files out ("data placement" is a grid-level
	// function in the paper's Section IV).
	InputMB  float64
	OutputMB float64
	// ServiceOnly excludes desktop-grid (BOINC) resources from
	// placement: the job must run on a service-grid resource. Set for
	// short workflow stages where volunteer-pool turnaround latency
	// would dominate.
	ServiceOnly bool
}

// Validate checks required fields.
func (d *JobDescription) Validate() error {
	if d.JobID == "" {
		return fmt.Errorf("rsl: job has no ID")
	}
	if d.Executable == "" {
		return fmt.Errorf("rsl: job %s has no executable", d.JobID)
	}
	if d.Count < 1 {
		return fmt.Errorf("rsl: job %s has count %d", d.JobID, d.Count)
	}
	if d.Work <= 0 {
		return fmt.Errorf("rsl: job %s has non-positive work", d.JobID)
	}
	return nil
}

// ToSpec serializes the description as RSL.
func (d *JobDescription) ToSpec() *Spec {
	s := NewSpec()
	s.Set("jobid", d.JobID)
	s.Set("executable", d.Executable)
	if len(d.Arguments) > 0 {
		s.Set("arguments", d.Arguments...)
	}
	s.Set("count", strconv.Itoa(d.Count))
	if d.MaxMemoryMB > 0 {
		s.Set("maxmemory", strconv.Itoa(d.MaxMemoryMB))
	}
	if len(d.Platforms) > 0 {
		vals := make([]string, len(d.Platforms))
		for i, p := range d.Platforms {
			vals[i] = string(p)
		}
		s.Set("platforms", vals...)
	}
	if len(d.Software) > 0 {
		s.Set("software", d.Software...)
	}
	if d.NeedsMPI {
		s.Set("jobtype", "mpi")
	}
	if d.WallLimit > 0 {
		s.Set("maxwalltime", strconv.FormatFloat(d.WallLimit.Seconds(), 'g', -1, 64))
	}
	if d.EstimatedRefSeconds > 0 {
		s.Set("x-estimatedruntime", strconv.FormatFloat(d.EstimatedRefSeconds, 'g', -1, 64))
	}
	if d.DelayBound > 0 {
		s.Set("x-delaybound", strconv.FormatFloat(d.DelayBound.Seconds(), 'g', -1, 64))
	}
	if d.ServiceOnly {
		s.Set("x-serviceonly", "true")
	}
	s.Set("x-work", strconv.FormatFloat(d.Work, 'g', -1, 64))
	if d.InputMB > 0 {
		s.Set("x-inputmb", strconv.FormatFloat(d.InputMB, 'g', -1, 64))
	}
	if d.OutputMB > 0 {
		s.Set("x-outputmb", strconv.FormatFloat(d.OutputMB, 'g', -1, 64))
	}
	return s
}

// FromSpec parses a typed description back out of RSL.
func FromSpec(s *Spec) (*JobDescription, error) {
	d := &JobDescription{Count: 1}
	if v, ok := s.Get("jobid"); ok {
		d.JobID = v
	}
	if v, ok := s.Get("executable"); ok {
		d.Executable = v
	}
	d.Arguments = append([]string(nil), s.GetAll("arguments")...)
	if v, ok := s.Get("count"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("rsl: bad count %q: %w", v, err)
		}
		d.Count = n
	}
	if v, ok := s.Get("maxmemory"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("rsl: bad maxMemory %q: %w", v, err)
		}
		d.MaxMemoryMB = n
	}
	for _, p := range s.GetAll("platforms") {
		d.Platforms = append(d.Platforms, lrm.Platform(p))
	}
	d.Software = append([]string(nil), s.GetAll("software")...)
	if v, ok := s.Get("jobtype"); ok && v == "mpi" {
		d.NeedsMPI = true
	}
	if v, ok := s.Get("x-serviceonly"); ok && v == "true" {
		d.ServiceOnly = true
	}
	fl := func(name string) (float64, error) {
		v, ok := s.Get(name)
		if !ok {
			return 0, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("rsl: bad %s %q: %w", name, v, err)
		}
		return f, nil
	}
	var err error
	var f float64
	if f, err = fl("maxwalltime"); err != nil {
		return nil, err
	}
	d.WallLimit = sim.Duration(f)
	if d.EstimatedRefSeconds, err = fl("x-estimatedruntime"); err != nil {
		return nil, err
	}
	if f, err = fl("x-delaybound"); err != nil {
		return nil, err
	}
	d.DelayBound = sim.Duration(f)
	if d.Work, err = fl("x-work"); err != nil {
		return nil, err
	}
	if d.InputMB, err = fl("x-inputmb"); err != nil {
		return nil, err
	}
	if d.OutputMB, err = fl("x-outputmb"); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// ToJob converts the description into the job record a local resource
// executes. Completion callbacks are attached by the caller.
func (d *JobDescription) ToJob() *lrm.Job {
	j := &lrm.Job{
		ID:                  d.JobID,
		Batch:               d.BatchID,
		Work:                d.Work,
		MemoryMB:            d.MaxMemoryMB,
		Platforms:           append([]lrm.Platform(nil), d.Platforms...),
		Software:            append([]string(nil), d.Software...),
		NeedsMPI:            d.NeedsMPI,
		WallLimit:           d.WallLimit,
		EstimatedRefSeconds: d.EstimatedRefSeconds,
		DelayBound:          d.DelayBound,
	}
	if d.NeedsMPI {
		// For MPI jobs the RSL count is the node count, per Globus
		// convention.
		j.Nodes = d.Count
	}
	return j
}
