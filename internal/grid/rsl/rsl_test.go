package rsl

import (
	"testing"
	"testing/quick"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

func sampleDescription() *JobDescription {
	return &JobDescription{
		JobID:               "garli-0001",
		Executable:          "/grid/apps/garli",
		Arguments:           []string{"garli.conf", "rep 1"},
		Count:               1,
		MaxMemoryMB:         512,
		Platforms:           []lrm.Platform{lrm.LinuxX86, lrm.WindowsX86},
		Software:            []string{"java"},
		WallLimit:           10 * sim.Hour,
		EstimatedRefSeconds: 1234.5,
		DelayBound:          3 * sim.Day,
		Work:                1e12,
	}
}

func TestSpecStringParseRoundTrip(t *testing.T) {
	d := sampleDescription()
	text := d.ToSpec().String()
	spec, err := Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	back, err := FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if back.JobID != d.JobID || back.Executable != d.Executable ||
		back.MaxMemoryMB != d.MaxMemoryMB || back.Work != d.Work ||
		back.WallLimit != d.WallLimit || back.DelayBound != d.DelayBound ||
		back.EstimatedRefSeconds != d.EstimatedRefSeconds {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, d)
	}
	if len(back.Arguments) != 2 || back.Arguments[1] != "rep 1" {
		t.Errorf("arguments mangled: %q", back.Arguments)
	}
	if len(back.Platforms) != 2 {
		t.Errorf("platforms mangled: %v", back.Platforms)
	}
}

func TestParseClassicRSL(t *testing.T) {
	spec, err := Parse(`&(jobid=j1)(executable=/bin/app)(count=4)(x-work=100)
		(arguments=a "b c" d)`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count != 4 {
		t.Errorf("count = %d", d.Count)
	}
	if len(d.Arguments) != 3 || d.Arguments[1] != "b c" {
		t.Errorf("arguments = %q", d.Arguments)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(a=1)",
		"&(=1)",
		"&(a 1)",
		"&(a=1",
		`&(a=")`,
		"&(jobid=j)(executable=e)(count=zero)(x-work=1)",
		"&(jobid=j)(executable=e)(count=1)(x-work=nan garbage=)",
	}
	for _, in := range bad {
		spec, err := Parse(in)
		if err != nil {
			continue
		}
		if _, err := FromSpec(spec); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestValidation(t *testing.T) {
	cases := []func(*JobDescription){
		func(d *JobDescription) { d.JobID = "" },
		func(d *JobDescription) { d.Executable = "" },
		func(d *JobDescription) { d.Count = 0 },
		func(d *JobDescription) { d.Work = 0 },
	}
	for i, mutate := range cases {
		d := sampleDescription()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestQuotingRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		// Restrict to printable-ish ASCII to match RSL's charset.
		val := make([]byte, 0, len(raw))
		for _, c := range raw {
			if c >= 32 && c < 127 {
				val = append(val, c)
			}
		}
		if len(val) == 0 {
			return true
		}
		s := NewSpec()
		s.Set("jobid", "j")
		s.Set("executable", "e")
		s.Set("count", "1")
		s.Set("x-work", "1")
		s.Set("arguments", string(val))
		parsed, err := Parse(s.String())
		if err != nil {
			return false
		}
		got := parsed.GetAll("arguments")
		return len(got) == 1 && got[0] == string(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestToJobCopiesFields(t *testing.T) {
	d := sampleDescription()
	j := d.ToJob()
	if j.ID != d.JobID || j.Work != d.Work || j.MemoryMB != d.MaxMemoryMB {
		t.Errorf("ToJob mismatch: %+v", j)
	}
	if j.EstimatedRefSeconds != d.EstimatedRefSeconds || j.DelayBound != d.DelayBound {
		t.Error("estimate/deadline not carried")
	}
	// Mutating the job must not affect the description.
	j.Platforms[0] = "other"
	if d.Platforms[0] == "other" {
		t.Error("ToJob shares platform slice with description")
	}
}

func TestSpecCanonicalOrder(t *testing.T) {
	s := NewSpec()
	s.Set("zeta", "1")
	s.Set("alpha", "2")
	out := s.String()
	if out != `&(alpha=2)(zeta=1)` {
		t.Errorf("canonical form = %q", out)
	}
}
