package dag

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"lattice/internal/obs"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

func testSpec() workload.JobSpec {
	return workload.JobSpec{
		DataType:            phylo.Nucleotide,
		SubstModel:          "HKY85",
		RateHet:             phylo.RateHomogeneous,
		NumTaxa:             12,
		SeqLength:           600,
		SearchReps:          1,
		StartingTree:        phylo.StartStepwise,
		AttachmentsPerTaxon: 25,
	}
}

func diamond(seed int64) workload.Workflow {
	return StandardAnalysis("test-analysis", "user@example.edu", seed, testSpec(), 3, 5)
}

func TestValidateTopoOrder(t *testing.T) {
	wf := diamond(7)
	order, err := Validate(&wf)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"model-selection", "search", "bootstrap", "consensus"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("topological order = %v, want %v", order, want)
	}
}

func TestValidateRejects(t *testing.T) {
	stage := func(id string, after ...string) workload.WorkflowStage {
		return workload.WorkflowStage{ID: id, Spec: testSpec(), Replicates: 1, After: after}
	}
	cases := []struct {
		name   string
		stages []workload.WorkflowStage
		want   string
	}{
		{"duplicate", []workload.WorkflowStage{stage("a"), stage("a")}, "duplicate stage"},
		{"unknown dep", []workload.WorkflowStage{stage("a", "ghost")}, "unknown stage"},
		{"self dep", []workload.WorkflowStage{stage("a", "a")}, "depends on itself"},
		{"cycle", []workload.WorkflowStage{stage("a", "b"), stage("b", "a")}, "cycle"},
		{"empty", nil, "no stages"},
	}
	for _, tc := range cases {
		wf := workload.Workflow{Name: "w", UserEmail: "u@example.edu", Stages: tc.stages}
		if _, err := Validate(&wf); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestStageSeed(t *testing.T) {
	a := StageSeed(42, "search", 1)
	if a != StageSeed(42, "search", 1) {
		t.Fatal("StageSeed not deterministic")
	}
	if a < 0 {
		t.Fatalf("StageSeed = %d, want non-negative", a)
	}
	if a == StageSeed(42, "bootstrap", 1) || a == StageSeed(42, "search", 2) || a == StageSeed(43, "search", 1) {
		t.Fatal("StageSeed collides across stage/attempt/seed")
	}
}

// scriptedRunner fakes the gsbl batch path: each stage submission is
// recorded and completes after a per-stage virtual delay, failing one
// job for as many attempts as scripted.
type scriptedRunner struct {
	eng   *sim.Engine
	subs  []workload.Submission
	ids   []string // "runID/stageID" per submission, in order
	seeds []int64
	fail  map[string]int // stageID -> failing attempts remaining
	delay map[string]sim.Duration
}

func newScriptedRunner(eng *sim.Engine) *scriptedRunner {
	return &scriptedRunner{eng: eng, fail: map[string]int{}, delay: map[string]sim.Duration{}}
}

func (r *scriptedRunner) RunStage(runID, stageID string, sub workload.Submission, done func(completed, failed int)) (string, error) {
	r.subs = append(r.subs, sub)
	r.ids = append(r.ids, runID+"/"+stageID)
	r.seeds = append(r.seeds, sub.Spec.Seed)
	id := fmt.Sprintf("batch-%03d", len(r.subs))
	d := r.delay[stageID]
	if d == 0 {
		d = sim.Hour
	}
	failing := false
	if r.fail[stageID] > 0 {
		r.fail[stageID]--
		failing = true
	}
	reps := sub.Replicates
	r.eng.Schedule(d, func() {
		if failing {
			done(reps-1, 1)
		} else {
			done(reps, 0)
		}
	})
	return id, nil
}

// submissions returns how many times each stage was submitted.
func (r *scriptedRunner) submissions() map[string]int {
	out := map[string]int{}
	for _, id := range r.ids {
		out[id[strings.Index(id, "/")+1:]]++
	}
	return out
}

func harness(t *testing.T) (*sim.Engine, *scriptedRunner, *Engine, *obs.Obs) {
	t.Helper()
	eng := sim.NewEngine()
	run := newScriptedRunner(eng)
	o := obs.New(eng)
	return eng, run, NewEngine(eng, run, o, Config{}), o
}

func TestWorkflowReadinessOrder(t *testing.T) {
	eng, runner, e, o := harness(t)
	// The search branch takes longer than bootstrap: consensus must
	// wait for both.
	runner.delay["search"] = 10 * sim.Hour
	runner.delay["bootstrap"] = 2 * sim.Hour
	r, err := e.Submit(diamond(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := runner.submissions(); len(got) != 1 || got["model-selection"] != 1 {
		t.Fatalf("at submit, only the root stage should run; got %v", got)
	}
	eng.RunUntil(sim.Time(30 * sim.Hour))
	if r.State != RunComplete {
		t.Fatalf("run state = %s, want %s", r.State, RunComplete)
	}
	search, _ := r.Stage("search")
	boot, _ := r.Stage("bootstrap")
	cons, _ := r.Stage("consensus")
	if boot.DoneAt >= search.DoneAt {
		t.Fatalf("bootstrap (done %v) should finish before search (done %v)", boot.DoneAt, search.DoneAt)
	}
	if cons.StartedAt < search.DoneAt {
		t.Fatalf("consensus started at %v before search finished at %v", cons.StartedAt, search.DoneAt)
	}
	if got := runner.submissions(); got["consensus"] != 1 || got["search"] != 1 {
		t.Fatalf("submission counts = %v", got)
	}
	// The fan-out stage is one batch with the full replicate width and
	// a seed derived from the workflow, not the base spec.
	for i, id := range runner.ids {
		if strings.HasSuffix(id, "/bootstrap") {
			sub := runner.subs[i]
			if sub.Replicates != 5 || !sub.Bootstrap {
				t.Fatalf("bootstrap stage submission = %+v", sub)
			}
			if sub.Spec.Seed != StageSeed(7, "bootstrap", 1) {
				t.Fatalf("bootstrap seed = %d, want StageSeed", sub.Spec.Seed)
			}
		}
		if strings.HasSuffix(id, "/model-selection") || strings.HasSuffix(id, "/consensus") {
			if !runner.subs[i].ServiceOnly {
				t.Fatalf("short stage %s not marked ServiceOnly", id)
			}
		}
	}
	var wfEvents []obs.Stage
	for _, ev := range o.Journal.Events() {
		if ev.Batch == r.ID && ev.Job == "" {
			wfEvents = append(wfEvents, ev.Stage)
		}
	}
	if !reflect.DeepEqual(wfEvents, []obs.Stage{obs.StageWfSubmit, obs.StageWfComplete}) {
		t.Fatalf("run-level journal events = %v", wfEvents)
	}
}

func TestStageRetryDrawsFreshSeed(t *testing.T) {
	eng, runner, e, _ := harness(t)
	runner.fail["search"] = 1
	r, err := e.Submit(diamond(11))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(30 * sim.Hour))
	if r.State != RunComplete {
		t.Fatalf("run state = %s, want complete after one retry", r.State)
	}
	search, _ := r.Stage("search")
	if search.Attempts != 2 {
		t.Fatalf("search attempts = %d, want 2", search.Attempts)
	}
	var seeds []int64
	for i, id := range runner.ids {
		if strings.HasSuffix(id, "/search") {
			seeds = append(seeds, runner.seeds[i])
		}
	}
	if len(seeds) != 2 || seeds[0] == seeds[1] {
		t.Fatalf("retry must draw a fresh seed; got %v", seeds)
	}
}

// TestDirtySubtreeReexecution is the acceptance test for
// subtree-scoped failure handling: when search fails for good, only
// its descendants are skipped (bootstrap completes), and Rerun
// re-executes exactly search+consensus without touching the finished
// model-selection and bootstrap results.
func TestDirtySubtreeReexecution(t *testing.T) {
	eng, runner, e, _ := harness(t)
	runner.fail["search"] = 2 // both attempts fail
	r, err := e.Submit(diamond(13))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(30 * sim.Hour))
	if r.State != RunFailed {
		t.Fatalf("run state = %s, want failed", r.State)
	}
	states := map[string]StageState{}
	for _, id := range r.Order {
		sr, _ := r.Stage(id)
		states[id] = sr.State
	}
	want := map[string]StageState{
		"model-selection": StageDone, "search": StageFailed,
		"bootstrap": StageDone, "consensus": StageSkipped,
	}
	if !reflect.DeepEqual(states, want) {
		t.Fatalf("stage states = %v, want %v", states, want)
	}
	before := runner.submissions()
	if before["model-selection"] != 1 || before["bootstrap"] != 1 || before["search"] != 2 || before["consensus"] != 0 {
		t.Fatalf("pre-rerun submissions = %v", before)
	}

	// Rerun the dirty subtree; the runner now lets search pass.
	if err := e.Rerun(r.ID, "search"); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(60 * sim.Hour))
	if r.State != RunComplete {
		t.Fatalf("post-rerun run state = %s, want complete", r.State)
	}
	after := runner.submissions()
	if after["model-selection"] != 1 || after["bootstrap"] != 1 {
		t.Fatalf("rerun must not resubmit clean stages; got %v", after)
	}
	if after["search"] != 3 || after["consensus"] != 1 {
		t.Fatalf("rerun must resubmit exactly the dirty subtree; got %v", after)
	}
}

func TestRerunGuards(t *testing.T) {
	eng, _, e, _ := harness(t)
	if err := e.Rerun("wf-999999", "search"); err == nil {
		t.Fatal("rerun of unknown run must fail")
	}
	r, err := e.Submit(diamond(17))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Rerun(r.ID, "ghost"); err == nil {
		t.Fatal("rerun of unknown stage must fail")
	}
	if err := e.Rerun(r.ID, "model-selection"); err == nil {
		t.Fatal("rerun of an in-flight subtree must fail")
	}
	eng.RunUntil(sim.Time(30 * sim.Hour))
	if err := e.Rerun(r.ID, "consensus"); err != nil {
		t.Fatalf("rerun of a finished leaf: %v", err)
	}
	eng.RunUntil(sim.Time(60 * sim.Hour))
	if r.State != RunComplete {
		t.Fatalf("run state = %s after leaf rerun", r.State)
	}
}

func TestStatusShape(t *testing.T) {
	eng, _, e, _ := harness(t)
	r, err := e.Submit(diamond(19))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(30 * sim.Hour))
	st, err := e.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != RunComplete || len(st.Stages) != 4 {
		t.Fatalf("status = %+v", st)
	}
	for i, id := range r.Order {
		if st.Stages[i].ID != id || st.Stages[i].State != StageDone || st.Stages[i].BatchID == "" {
			t.Fatalf("stage status %d = %+v", i, st.Stages[i])
		}
	}
	if _, err := e.Status("wf-000042"); err == nil {
		t.Fatal("status of unknown run must fail")
	}
	if got := e.Runs(); len(got) != 1 || got[0] != r.ID {
		t.Fatalf("Runs() = %v", got)
	}
}

// TestStageSeedPinned is the cross-version regression pin: these
// exact values are what replicate batches and retries were seeded
// with in recorded WALs, so any change to the derivation breaks
// recovery of existing durable state and must show up here.
func TestStageSeedPinned(t *testing.T) {
	cases := []struct {
		seed    int64
		stage   string
		attempt int
		want    int64
	}{
		{42, "search", 1, 97112148977670534},
		{1, "model-selection", 1, 754338909153817640},
		{7, "bootstrap", 3, 520333105887542680},
		{0, "", 0, 3103065343055858283},
	}
	for _, c := range cases {
		if got := StageSeed(c.seed, c.stage, c.attempt); got != c.want {
			t.Errorf("StageSeed(%d, %q, %d) = %d, want %d", c.seed, c.stage, c.attempt, got, c.want)
		}
	}
}

// TestStageSeedDistribution sweeps 10^4 (stage, attempt) pairs under
// one workflow seed: no two may collide (a collision would hand two
// stages the same RNG stream), none may be negative, and the low bits
// must spread evenly enough that downstream modulo use is safe.
func TestStageSeedDistribution(t *testing.T) {
	const stages, attempts = 100, 100
	seen := make(map[int64]string, stages*attempts)
	var buckets [16]int
	for s := 0; s < stages; s++ {
		id := fmt.Sprintf("stage-%03d", s)
		for a := 1; a <= attempts; a++ {
			v := StageSeed(9, id, a)
			if v < 0 {
				t.Fatalf("StageSeed(9, %q, %d) = %d, want non-negative", id, a, v)
			}
			key := fmt.Sprintf("%s/%d", id, a)
			if prev, dup := seen[v]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, v)
			}
			seen[v] = key
			buckets[v%16]++
		}
	}
	// With 10^4 draws over 16 buckets the expected count is 625; a
	// healthy hash stays within ±25% comfortably.
	for b, n := range buckets {
		if n < 469 || n > 781 {
			t.Errorf("bucket %d holds %d of %d seeds, want ~%d (low-bit bias)",
				b, n, stages*attempts, stages*attempts/16)
		}
	}
}
