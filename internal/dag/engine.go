package dag

import (
	"fmt"
	"sort"

	"lattice/internal/obs"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// Runner executes one ready stage as a grid batch. The production
// implementation is gsbl.Service: the stage submission goes through
// the same validate→expand→place path as any portal batch, and done
// fires exactly once when every grid job of the batch is terminal.
// The returned batch ID links the stage to its journal/trace context.
type Runner interface {
	RunStage(runID, stageID string, sub workload.Submission, done func(completed, failed int)) (batchID string, err error)
}

// Durability is the write-ahead-log hook for workflows entering the
// engine. Like gsbl's submission hook, it records the workflow after
// validation and before any scheduling side effect: the workflow is
// the only input — stage batches are derived state that deterministic
// re-execution regenerates, so they are deliberately *not* recorded
// as inputs (recording them too would double-inject on replay).
type Durability interface {
	Workflow(at sim.Time, wf workload.Workflow)
}

// Config tunes the engine.
type Config struct {
	// StageRetries is how many times a stage with failed jobs is
	// resubmitted (with a fresh derived seed) before it is declared
	// failed and its downstream subtree skipped. Negative disables
	// retries; 0 selects the default of 1.
	StageRetries int
	// IDPrefix qualifies run IDs ("shard0-wf-000001") so a cluster
	// front router can attribute a workflow to its coordinator shard.
	// Empty for single-coordinator deployments.
	IDPrefix string
}

// StageState is a workflow stage's lifecycle state.
type StageState string

const (
	// StageWaiting: at least one dependency is not done.
	StageWaiting StageState = "waiting"
	// StageRunning: submitted as a grid batch, jobs in flight.
	StageRunning StageState = "running"
	// StageDone: every job of the stage batch completed.
	StageDone StageState = "done"
	// StageFailed: jobs failed and retries are exhausted.
	StageFailed StageState = "failed"
	// StageSkipped: an upstream stage failed; this one never ran.
	StageSkipped StageState = "skipped"
)

// Run states.
const (
	RunRunning  = "running"
	RunComplete = "complete"
	RunFailed   = "failed"
)

// StageRun is the live state of one stage within a run.
type StageRun struct {
	Stage workload.WorkflowStage
	State StageState
	// Attempts counts batch submissions of this stage (monotonic
	// across retries and reruns; each attempt derives a fresh seed).
	Attempts  int
	BatchID   string
	Completed int
	Failed    int
	StartedAt sim.Time
	DoneAt    sim.Time
}

// Run is one submitted workflow instance.
type Run struct {
	ID       string
	Workflow workload.Workflow
	// Order is the deterministic topological stage order every engine
	// iteration follows.
	Order       []string
	State       string
	SubmittedAt sim.Time
	DoneAt      sim.Time

	stages   map[string]*StageRun
	children map[string][]string
}

// Stage returns a stage's live state.
func (r *Run) Stage(id string) (*StageRun, bool) {
	sr, ok := r.stages[id]
	return sr, ok
}

// StageStatus is the JSON view of one stage the portal serves.
type StageStatus struct {
	ID        string     `json:"id"`
	State     StageState `json:"state"`
	Attempts  int        `json:"attempts"`
	BatchID   string     `json:"batchId,omitempty"`
	Completed int        `json:"completed"`
	Failed    int        `json:"failed"`
	StartedAt sim.Time   `json:"startedAt"`
	DoneAt    sim.Time   `json:"doneAt"`
}

// RunStatus is the JSON view of a workflow run.
type RunStatus struct {
	ID          string        `json:"id"`
	Name        string        `json:"name"`
	User        string        `json:"user"`
	State       string        `json:"state"`
	SubmittedAt sim.Time      `json:"submittedAt"`
	DoneAt      sim.Time      `json:"doneAt"`
	Stages      []StageStatus `json:"stages"`
}

// Engine schedules workflow runs by readiness. It is single-threaded
// like the rest of the coordinator: all methods run on the simulation
// goroutine (the portal serializes its HTTP access under its own
// mutex, exactly as it does for the service layer).
type Engine struct {
	eng     *sim.Engine
	runner  Runner
	o       *obs.Obs
	durable Durability
	cfg     Config
	runs    map[string]*Run
	nextID  int
}

// NewEngine wires a workflow engine onto a stage runner.
func NewEngine(eng *sim.Engine, runner Runner, o *obs.Obs, cfg Config) *Engine {
	if cfg.StageRetries == 0 {
		cfg.StageRetries = 1
	}
	if cfg.StageRetries < 0 {
		cfg.StageRetries = 0
	}
	return &Engine{
		eng:    eng,
		runner: runner,
		o:      o,
		cfg:    cfg,
		runs:   make(map[string]*Run),
	}
}

// SetDurable installs the durability hook (nil disables it).
func (e *Engine) SetDurable(d Durability) { e.durable = d }

// Submit validates a workflow and starts its root stages. The
// workflow is recorded as a durable input before any side effect, so
// recovery re-injects it and re-execution regenerates every stage
// transition.
func (e *Engine) Submit(wf workload.Workflow) (*Run, error) {
	order, err := Validate(&wf)
	if err != nil {
		return nil, err
	}
	if e.durable != nil {
		e.durable.Workflow(e.eng.Now(), wf)
	}
	e.nextID++
	r := &Run{
		ID:          fmt.Sprintf("%swf-%06d", e.cfg.IDPrefix, e.nextID),
		Workflow:    wf,
		Order:       order,
		State:       RunRunning,
		SubmittedAt: e.eng.Now(),
		stages:      make(map[string]*StageRun, len(wf.Stages)),
		children:    make(map[string][]string, len(wf.Stages)),
	}
	for i := range wf.Stages {
		st := wf.Stages[i]
		r.stages[st.ID] = &StageRun{Stage: st, State: StageWaiting}
		for _, dep := range st.After {
			r.children[dep] = append(r.children[dep], st.ID)
		}
	}
	e.runs[r.ID] = r
	e.o.Record(r.ID, "", obs.StageWfSubmit, "",
		fmt.Sprintf("workflow %s: %d stages for %s", wf.Name, len(wf.Stages), wf.UserEmail))
	e.launchReady(r)
	return r, nil
}

// Run returns a run by ID.
func (e *Engine) Run(id string) (*Run, bool) {
	r, ok := e.runs[id]
	return r, ok
}

// Runs lists run IDs in submission order.
func (e *Engine) Runs() []string {
	ids := make([]string, 0, len(e.runs))
	for id := range e.runs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Status reports a run's per-stage state in topological order.
func (e *Engine) Status(id string) (RunStatus, error) {
	r, ok := e.runs[id]
	if !ok {
		return RunStatus{}, fmt.Errorf("dag: unknown workflow run %s", id)
	}
	st := RunStatus{
		ID: r.ID, Name: r.Workflow.Name, User: r.Workflow.UserEmail,
		State: r.State, SubmittedAt: r.SubmittedAt, DoneAt: r.DoneAt,
	}
	for _, sid := range r.Order {
		sr := r.stages[sid]
		st.Stages = append(st.Stages, StageStatus{
			ID: sid, State: sr.State, Attempts: sr.Attempts, BatchID: sr.BatchID,
			Completed: sr.Completed, Failed: sr.Failed,
			StartedAt: sr.StartedAt, DoneAt: sr.DoneAt,
		})
	}
	return st, nil
}

// launchReady starts, in topological order, every waiting stage whose
// dependencies are all done.
func (e *Engine) launchReady(r *Run) {
	for _, id := range r.Order {
		sr := r.stages[id]
		if sr.State != StageWaiting || !e.parentsDone(r, sr) {
			continue
		}
		e.o.Record(r.ID, id, obs.StageWfReady, "", "")
		e.start(r, sr)
	}
}

func (e *Engine) parentsDone(r *Run, sr *StageRun) bool {
	for _, dep := range sr.Stage.After {
		if r.stages[dep].State != StageDone {
			return false
		}
	}
	return true
}

// start submits one attempt of a stage as a grid batch. The stage
// seed derives from (workflow seed, stage ID, attempt), and Short
// stages are restricted to service-grid resources.
func (e *Engine) start(r *Run, sr *StageRun) {
	sr.State = StageRunning
	sr.Attempts++
	sr.StartedAt = e.eng.Now()
	attempt := sr.Attempts
	sub := workload.Submission{
		Spec:        sr.Stage.Spec,
		Replicates:  sr.Stage.Replicates,
		Bootstrap:   sr.Stage.Bootstrap,
		UserEmail:   r.Workflow.UserEmail,
		ServiceOnly: sr.Stage.Short,
	}
	sub.Spec.Seed = StageSeed(r.Workflow.Seed, sr.Stage.ID, attempt)
	batchID, err := e.runner.RunStage(r.ID, sr.Stage.ID, sub,
		func(completed, failed int) { e.stageDone(r, sr, attempt, completed, failed) })
	if err != nil {
		// A synchronous submit rejection (validation, duplicate IDs) is
		// deterministic — retrying would hit it again, so the stage
		// fails immediately.
		sr.BatchID = ""
		e.failStage(r, sr, fmt.Sprintf("submit rejected: %v", err))
		return
	}
	sr.BatchID = batchID
	e.o.Record(r.ID, sr.Stage.ID, obs.StageWfDispatch, "",
		fmt.Sprintf("batch=%s attempt=%d replicates=%d short=%v",
			batchID, attempt, sr.Stage.Replicates, sr.Stage.Short))
}

// stageDone handles a stage batch reaching its terminal state.
func (e *Engine) stageDone(r *Run, sr *StageRun, attempt, completed, failed int) {
	if sr.State != StageRunning || sr.Attempts != attempt {
		return // a stale batch from before a rerun reset
	}
	sr.Completed, sr.Failed = completed, failed
	if failed == 0 {
		sr.State = StageDone
		sr.DoneAt = e.eng.Now()
		e.o.Record(r.ID, sr.Stage.ID, obs.StageWfStageDone, "",
			fmt.Sprintf("%d completed", completed))
		e.launchReady(r)
		e.finishIfTerminal(r)
		return
	}
	if sr.Attempts <= e.cfg.StageRetries {
		e.o.Record(r.ID, sr.Stage.ID, obs.StageWfRetry, "",
			fmt.Sprintf("%d of %d jobs failed; attempt %d", failed, completed+failed, attempt+1))
		e.start(r, sr)
		return
	}
	e.failStage(r, sr, fmt.Sprintf("%d of %d jobs failed after %d attempts",
		failed, completed+failed, attempt))
}

// failStage marks a stage failed and skips its downstream subtree —
// and only that subtree: independent branches keep running.
func (e *Engine) failStage(r *Run, sr *StageRun, detail string) {
	sr.State = StageFailed
	sr.DoneAt = e.eng.Now()
	e.o.Record(r.ID, sr.Stage.ID, obs.StageWfStageFail, "", detail)
	for _, id := range e.subtree(r, sr.Stage.ID) {
		d := r.stages[id]
		if id == sr.Stage.ID || d.State != StageWaiting {
			continue
		}
		d.State = StageSkipped
		d.DoneAt = e.eng.Now()
		e.o.Record(r.ID, id, obs.StageWfSkip, "",
			fmt.Sprintf("upstream %s failed", sr.Stage.ID))
	}
	e.finishIfTerminal(r)
}

// subtree returns root plus its transitive descendants, in the run's
// topological order.
func (e *Engine) subtree(r *Run, root string) []string {
	in := map[string]bool{root: true}
	// Order is topological, so one forward sweep closes the set.
	for _, id := range r.Order {
		if in[id] {
			for _, c := range r.children[id] {
				in[c] = true
			}
		}
	}
	out := make([]string, 0, len(in))
	for _, id := range r.Order {
		if in[id] {
			out = append(out, id)
		}
	}
	return out
}

// finishIfTerminal closes the run once no stage is waiting or
// running.
func (e *Engine) finishIfTerminal(r *Run) {
	if r.State != RunRunning {
		return
	}
	done, failed, skipped := 0, 0, 0
	for _, sr := range r.stages {
		switch sr.State {
		case StageWaiting, StageRunning:
			return
		case StageDone:
			done++
		case StageFailed:
			failed++
		case StageSkipped:
			skipped++
		}
	}
	r.DoneAt = e.eng.Now()
	if failed == 0 && skipped == 0 {
		r.State = RunComplete
		e.o.Record(r.ID, "", obs.StageWfComplete, "", fmt.Sprintf("%d stages", done))
		return
	}
	r.State = RunFailed
	e.o.Record(r.ID, "", obs.StageWfFail, "",
		fmt.Sprintf("%d done, %d failed, %d skipped", done, failed, skipped))
}

// Rerun resets a stage and its transitive descendants — the dirty
// subtree — back to waiting and re-executes them; stages outside the
// subtree keep their finished results untouched. The target stage
// must be terminal and nothing in its subtree may be in flight.
//
// Rerun is an operator action, not a recorded WAL input: a workflow
// rerun after a crash must be re-issued by the operator, the same way
// a cancelled batch must be resubmitted.
func (e *Engine) Rerun(runID, stageID string) error {
	r, ok := e.runs[runID]
	if !ok {
		return fmt.Errorf("dag: unknown workflow run %s", runID)
	}
	if _, ok := r.stages[stageID]; !ok {
		return fmt.Errorf("dag: run %s has no stage %s", runID, stageID)
	}
	subtree := e.subtree(r, stageID)
	for _, id := range subtree {
		switch r.stages[id].State {
		case StageRunning:
			return fmt.Errorf("dag: run %s stage %s is still running", runID, id)
		case StageWaiting:
			return fmt.Errorf("dag: run %s stage %s is still waiting", runID, id)
		}
	}
	e.o.Record(r.ID, stageID, obs.StageWfRerun, "",
		fmt.Sprintf("resetting %d stages", len(subtree)))
	for _, id := range subtree {
		sr := r.stages[id]
		sr.State = StageWaiting
		sr.BatchID = ""
		sr.Completed, sr.Failed = 0, 0
		sr.StartedAt, sr.DoneAt = 0, 0
	}
	r.State = RunRunning
	r.DoneAt = 0
	e.launchReady(r)
	return nil
}
