package dag

import "lattice/internal/workload"

// StandardAnalysis builds the canonical four-stage phylogenetic
// workflow the paper's users ran by hand as separate submissions:
//
//	model-selection ──► search ─────┐
//	        │                       ├──► consensus
//	        └─────────► bootstrap ──┘
//
// Model selection (short, service-grid) picks the substitution model;
// the best-tree search and the bootstrap fan-out both depend on it
// and run as independent branches; the majority-rule consensus reduce
// (short, service-grid) joins them. Every stage shares the base spec;
// the setup and reduce stages run a single search replicate.
func StandardAnalysis(name, email string, seed int64, spec workload.JobSpec, searchReps, bootstraps int) workload.Workflow {
	short := spec
	short.SearchReps = 1
	return workload.Workflow{
		Name:      name,
		UserEmail: email,
		Seed:      seed,
		Stages: []workload.WorkflowStage{
			{ID: "model-selection", Spec: short, Replicates: 1, Short: true},
			{ID: "search", Spec: spec, Replicates: searchReps, After: []string{"model-selection"}},
			{ID: "bootstrap", Spec: spec, Replicates: bootstraps, Bootstrap: true,
				After: []string{"model-selection"}},
			{ID: "consensus", Spec: short, Replicates: 1, Short: true,
				After: []string{"search", "bootstrap"}},
		},
	}
}
