// Package dag is the workflow engine: it turns a typed DAG of
// analysis stages (workload.Workflow) into a sequence of grid batch
// submissions driven by readiness. Real phylogenetic analyses are
// dependency graphs, not flat replicate batches — model selection
// feeds search replicates, which fan out into bootstrap resampling
// and reduce into a consensus tree — and the engine schedules each
// stage the moment its parents finish, mapping it onto the existing
// GSBL/meta-scheduler batch path through the Runner interface.
//
// Determinism and durability follow the coordinator's house rules:
// every per-stage seed is derived from (workflow seed, stage ID,
// attempt) alone, so results are bit-identical at any parallelism;
// every stage transition is journaled through obs; and the workflow
// itself is a WAL input (via the Durability hook), so crash recovery
// re-injects it and deterministic re-execution regenerates the whole
// run mid-graph — the engine needs no snapshot state of its own.
//
// Failure handling is subtree-scoped: a stage that exhausts its
// retries fails, its downstream subtree is skipped (never the
// independent branches, which run to completion), and Rerun resets
// exactly the dirty subtree for re-execution.
package dag

import (
	"fmt"
	"hash/fnv"

	"lattice/internal/workload"
)

// Validate applies graph-level checks on top of the workflow's
// field-level validation: duplicate stage IDs, references to unknown
// stages (orphan edges), and dependency cycles. It returns the
// stages in a deterministic topological order (graph order broken by
// declaration order), which the engine uses for every iteration so
// runs never depend on map layout.
func Validate(wf *workload.Workflow) ([]string, error) {
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	index := make(map[string]int, len(wf.Stages))
	for i := range wf.Stages {
		id := wf.Stages[i].ID
		if _, dup := index[id]; dup {
			return nil, fmt.Errorf("dag: workflow %s has duplicate stage %s", wf.Name, id)
		}
		index[id] = i
	}
	indeg := make(map[string]int, len(wf.Stages))
	children := make(map[string][]string, len(wf.Stages))
	for i := range wf.Stages {
		st := &wf.Stages[i]
		for _, dep := range st.After {
			if _, ok := index[dep]; !ok {
				return nil, fmt.Errorf("dag: workflow %s stage %s depends on unknown stage %s",
					wf.Name, st.ID, dep)
			}
			if dep == st.ID {
				return nil, fmt.Errorf("dag: workflow %s stage %s depends on itself", wf.Name, st.ID)
			}
			indeg[st.ID]++
			children[dep] = append(children[dep], st.ID)
		}
	}
	// Kahn's algorithm with a declaration-ordered frontier.
	var order []string
	var frontier []string
	for i := range wf.Stages {
		if indeg[wf.Stages[i].ID] == 0 {
			frontier = append(frontier, wf.Stages[i].ID)
		}
	}
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		for _, c := range children[id] {
			indeg[c]--
			if indeg[c] == 0 {
				frontier = append(frontier, c)
			}
		}
	}
	if len(order) != len(wf.Stages) {
		var stuck []string
		for i := range wf.Stages {
			if indeg[wf.Stages[i].ID] > 0 {
				stuck = append(stuck, wf.Stages[i].ID)
			}
		}
		return nil, fmt.Errorf("dag: workflow %s has a dependency cycle through %v", wf.Name, stuck)
	}
	return order, nil
}

// StageSeed derives the deterministic seed for one attempt of one
// stage. It depends only on the workflow seed, the stage ID and the
// attempt number — never on submission order or parallelism — so a
// fan-out stage's replicates (seeded StageSeed+rep by the batch
// expansion) are bit-identical however the graph interleaves, and a
// retry draws a fresh independent stream.
func StageSeed(seed int64, stageID string, attempt int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x1f%s\x1f%d", seed, stageID, attempt) //lint:allow errdrop -- hash.Hash documents that Write never errors
	return int64(h.Sum64() >> 1)                             // keep seeds non-negative
}
