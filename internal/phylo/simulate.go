package phylo

import (
	"fmt"
	"sort"

	"lattice/internal/sim"
)

// SimulateAlignment evolves sequences down tree t under the given
// model and rate mixture, producing an alignment of nsites sites
// (codon sites for codon models; the emitted sequences are 3×nsites
// nucleotides long). This provides realistic synthetic data for the
// examples, the workload generator, and the runtime-model training
// pipeline — standing in for the researcher-submitted data sets the
// paper's system received.
func SimulateAlignment(t *Tree, model *Model, rates *SiteRates, nsites int, rng *sim.RNG) (*Alignment, error) {
	if nsites <= 0 {
		return nil, fmt.Errorf("phylo: SimulateAlignment with nsites = %d", nsites)
	}
	leaves := t.Leaves()
	if len(leaves) < 3 {
		return nil, fmt.Errorf("phylo: tree has %d leaves; need at least 3", len(leaves))
	}
	S := model.Type.NumStates()
	// Per-site rate categories.
	cats := make([]int, nsites)
	for i := range cats {
		cats[i] = rng.Choice(rates.Weights)
	}
	// Root states from the stationary distribution.
	states := make(map[*Node][]int)
	rootStates := make([]int, nsites)
	for i := range rootStates {
		rootStates[i] = rng.Choice(model.Freqs)
	}
	states[t.Root] = rootStates
	// Walk down, sampling each child from P(rate · length) rows.
	pm := NewMatrix(S)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		for _, c := range n.Children {
			parent := states[n]
			out := make([]int, nsites)
			// Transition matrices per category for this edge.
			mats := make([][]float64, rates.NumCats())
			for k := 0; k < rates.NumCats(); k++ {
				model.Eigen().TransitionMatrix(c.Length*rates.Rates[k], pm)
				mats[k] = append([]float64(nil), pm.Data...)
			}
			for i := 0; i < nsites; i++ {
				row := mats[cats[i]][parent[i]*S : (parent[i]+1)*S]
				out[i] = rng.Choice(row)
			}
			states[c] = out
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return nil, err
	}
	a := &Alignment{Type: model.Type}
	// Emit rows in taxon-index order so alignment row i corresponds to
	// tree taxon i — required for comparing inferred trees against the
	// generating tree.
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Taxon < leaves[j].Taxon })
	for _, leaf := range leaves {
		name := leaf.Name
		if name == "" {
			name = fmt.Sprintf("taxon%d", leaf.Taxon)
		}
		seq := make([]byte, 0, nsites)
		for i := 0; i < nsites; i++ {
			seq = append(seq, model.Type.StateChar(states[leaf][i])...)
		}
		a.Names = append(a.Names, name)
		a.Seqs = append(a.Seqs, string(seq))
	}
	return a, nil
}

// TaxonNames generates n synthetic taxon names.
func TaxonNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("taxon%02d", i)
	}
	return names
}
