package phylo

import "fmt"

// Amino acid models. GARLI ships empirical matrices (Dayhoff, JTT,
// WAG, …) estimated from large protein databases. Redistributing those
// tables is unnecessary for reproduction purposes — what matters for
// runtime (and for the scheduler experiments) is the 20-state
// likelihood cost and the existence of both a uniform-rate and an
// "empirical-style" uneven-rate variant. We therefore provide Poisson
// (uniform exchangeabilities) and a deterministic synthetic empirical
// matrix whose exchangeabilities are derived from physicochemical
// distance, giving realistically uneven rates and frequencies. This
// substitution is recorded in DESIGN.md.

// aaProperties holds a crude hydrophobicity/volume/charge embedding of
// the 20 amino acids (order ARNDCQEGHILKMFPSTWYV), used to derive the
// synthetic empirical exchangeabilities: chemically similar residues
// exchange faster, as in real empirical matrices.
var aaProperties = [20][3]float64{
	{1.8, 88.6, 0},    // A
	{-4.5, 173.4, 1},  // R
	{-3.5, 114.1, 0},  // N
	{-3.5, 111.1, -1}, // D
	{2.5, 108.5, 0},   // C
	{-3.5, 143.8, 0},  // Q
	{-3.5, 138.4, -1}, // E
	{-0.4, 60.1, 0},   // G
	{-3.2, 153.2, .5}, // H
	{4.5, 166.7, 0},   // I
	{3.8, 166.7, 0},   // L
	{-3.9, 168.6, 1},  // K
	{1.9, 162.9, 0},   // M
	{2.8, 189.9, 0},   // F
	{-1.6, 112.7, 0},  // P
	{-0.8, 89.0, 0},   // S
	{-0.7, 116.1, 0},  // T
	{-0.9, 227.8, 0},  // W
	{-1.3, 193.6, 0},  // Y
	{4.2, 140.0, 0},   // V
}

// syntheticAAFreqs are uneven stationary frequencies loosely shaped
// like observed proteome composition (common residues A, G, L, S more
// frequent; W, C rare).
var syntheticAAFreqs = []float64{
	0.083, 0.055, 0.041, 0.054, 0.014, 0.039, 0.067, 0.071, 0.023, 0.059,
	0.097, 0.058, 0.024, 0.039, 0.047, 0.066, 0.053, 0.011, 0.029, 0.069,
}

// NewPoissonAA returns the Poisson amino acid model: all
// exchangeabilities equal, equal frequencies (the protein analogue of
// JC69).
func NewPoissonAA() (*Model, error) {
	r := NewMatrix(20)
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			r.Set(i, j, 1)
		}
	}
	return newModelFromRates("Poisson", AminoAcid, r, uniformFreqs(20), nil)
}

// NewEmpiricalAA returns the synthetic empirical amino acid model
// described above: exchangeabilities fall off with physicochemical
// distance, frequencies are uneven. It plays the role GARLI's
// Dayhoff/JTT/WAG options play in the original system.
func NewEmpiricalAA() (*Model, error) {
	r := NewMatrix(20)
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			d := aaDistance(i, j)
			// Exchangeability decays with distance; floor keeps the
			// chain irreducible.
			r.Set(i, j, 0.02+5/(1+d*d))
		}
	}
	return newModelFromRates("EmpiricalAA", AminoAcid, r, syntheticAAFreqs, nil)
}

// aaDistance is a normalized physicochemical distance between amino
// acids i and j.
func aaDistance(i, j int) float64 {
	pi, pj := aaProperties[i], aaProperties[j]
	dh := (pi[0] - pj[0]) / 9.0   // hydrophobicity range ~9
	dv := (pi[1] - pj[1]) / 170.0 // volume range ~170
	dc := pi[2] - pj[2]
	return 3 * (dh*dh + dv*dv + dc*dc)
}

// AAModelSpec describes an amino acid model by name.
type AAModelSpec struct {
	Name string // "poisson" or "empirical"
}

// Build constructs the amino acid model described by the spec.
func (s AAModelSpec) Build() (*Model, error) {
	switch s.Name {
	case "poisson", "Poisson", "":
		return NewPoissonAA()
	case "empirical", "Empirical", "dayhoff", "jtt", "wag":
		// All empirical-matrix choices map onto our synthetic
		// empirical model; see package comment.
		return NewEmpiricalAA()
	default:
		return nil, fmt.Errorf("phylo: unknown amino acid model %q", s.Name)
	}
}
