package phylo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// SplitSupport counts how often each bipartition appears in a
// collection of trees — the core of Felsenstein's bootstrap support
// assessment ("hundreds or thousands of bootstrap searches which
// assess confidence in the best tree").
type SplitSupport struct {
	Total  int
	Counts map[Bipartition]int
}

// NewSplitSupport tallies the bipartitions of trees.
func NewSplitSupport(trees []*Tree) *SplitSupport {
	s := &SplitSupport{Total: len(trees), Counts: make(map[Bipartition]int)}
	for _, t := range trees {
		for bp := range t.Bipartitions() {
			s.Counts[bp]++
		}
	}
	return s
}

// Support returns the fraction of trees containing the split.
func (s *SplitSupport) Support(bp Bipartition) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Counts[bp]) / float64(s.Total)
}

// MajorityRuleConsensus builds the majority-rule consensus tree over
// taxa 0..numTaxa-1 from the tallied splits: every split appearing in
// more than half the trees is included (they are mutually compatible
// by the majority property). Node names carry the support percentage.
//
// Edge cases, pinned down because workflow consensus stages reduce
// small bootstrap counts where they actually occur:
//
//   - Exactly-50% splits are excluded. The majority test is strict
//     (2*count > Total), so a split present in exactly half the trees
//     — always possible with an even tree count, and common with two
//     — is deterministically dropped, never tie-broken by input
//     order. Two exactly-50% splits can be mutually incompatible, so
//     including either would make the result order-dependent; strict
//     majority is what keeps the reduce bit-deterministic.
//   - Two-tree input degenerates to the strict consensus: a split
//     clears 2*count > 2 only at count == 2, i.e. when both trees
//     contain it, so the result is exactly their shared splits with
//     100% support, and conflicting splits collapse into polytomies.
//   - Fewer than 3 taxa is an error: no non-trivial split exists.
func (s *SplitSupport) MajorityRuleConsensus(names []string) (*Tree, error) {
	numTaxa := len(names)
	if numTaxa < 3 {
		return nil, fmt.Errorf("phylo: consensus needs at least 3 taxa")
	}
	type split struct {
		bp    Bipartition
		taxa  []int
		count int
	}
	var majority []split
	for bp, c := range s.Counts {
		if 2*c > s.Total {
			majority = append(majority, split{bp: bp, taxa: splitTaxa(bp), count: c})
		}
	}
	// Insert large splits first so nesting resolves correctly.
	sort.Slice(majority, func(i, j int) bool {
		if len(majority[i].taxa) != len(majority[j].taxa) {
			return len(majority[i].taxa) > len(majority[j].taxa)
		}
		return majority[i].bp < majority[j].bp
	})
	t := &Tree{}
	root := t.newNode()
	t.Root = root
	leafOf := make([]*Node, numTaxa)
	for i := 0; i < numTaxa; i++ {
		leaf := t.newNode()
		leaf.Taxon = i
		leaf.Name = names[i]
		leaf.Length = 1
		leaf.Parent = root
		root.Children = append(root.Children, leaf)
	}
	for _, sp := range majority {
		// Group children of root-side parent: all split taxa must
		// currently share one parent for the split to be insertable.
		parent := commonParent(t, sp.taxa, leafOf)
		if parent == nil {
			continue // incompatible with an earlier (larger-count) split
		}
		group := t.newNode()
		group.Length = 1
		pct := 100 * float64(sp.count) / float64(s.Total)
		group.Name = strconv.Itoa(int(pct + 0.5))
		inSplit := make(map[int]bool)
		for _, ti := range sp.taxa {
			inSplit[ti] = true
		}
		var keep, move []*Node
		for _, c := range parent.Children {
			if subtreeAllIn(c, inSplit) {
				move = append(move, c)
			} else {
				keep = append(keep, c)
			}
		}
		if len(move) < 2 {
			continue
		}
		for _, m := range move {
			m.Parent = group
		}
		group.Children = move
		group.Parent = parent
		parent.Children = append(keep, group)
	}
	t.reindex()
	return t, nil
}

// splitTaxa decodes the canonical bipartition string back to indices.
func splitTaxa(bp Bipartition) []int {
	parts := strings.Split(string(bp), ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err == nil {
			out = append(out, v)
		}
	}
	return out
}

// commonParent returns the node whose children collectively contain
// exactly the split's taxa (each child either fully inside or fully
// outside), or nil if the split is incompatible with the tree built so
// far. leafOf is lazily populated.
func commonParent(t *Tree, taxa []int, leafOf []*Node) *Node {
	if leafOf[taxa[0]] == nil {
		t.PostOrder(func(n *Node) {
			if n.IsLeaf() {
				leafOf[n.Taxon] = n
			}
		})
	}
	// All taxa in the split must have the same parent chain entry: use
	// the deepest node that contains all of them and check exact cover.
	in := make(map[int]bool, len(taxa))
	for _, x := range taxa {
		in[x] = true
	}
	// Walk from one member up until the subtree covers all taxa.
	n := leafOf[taxa[0]]
	for n != nil {
		if countIn(n, in) == len(taxa) {
			break
		}
		n = n.Parent
	}
	if n == nil {
		return nil
	}
	// n covers all; children must each be pure.
	for _, c := range n.Children {
		if cnt := countIn(c, in); cnt != 0 && !subtreeAllIn(c, in) {
			return nil
		}
	}
	return n
}

func countIn(n *Node, in map[int]bool) int {
	cnt := 0
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsLeaf() && in[m.Taxon] {
			cnt++
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return cnt
}

func subtreeAllIn(n *Node, in map[int]bool) bool {
	ok := true
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsLeaf() && !in[m.Taxon] {
			ok = false
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return ok
}
