package phylo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLowerIncompleteGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		got := lowerIncompleteGammaP(1, x)
		want := 1 - math.Exp(-x)
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		got := lowerIncompleteGammaP(0.5, x)
		want := math.Erf(math.Sqrt(x))
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("P(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestIncompleteGammaMonotoneBounded(t *testing.T) {
	f := func(rawA, rawX uint16) bool {
		a := 0.05 + float64(rawA%1000)/100
		x := float64(rawX%2000) / 100
		p := lowerIncompleteGammaP(a, x)
		if p < 0 || p > 1 || math.IsNaN(p) {
			return false
		}
		// Monotone in x.
		p2 := lowerIncompleteGammaP(a, x+0.5)
		return p2 >= p-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGammaQuantileInverse(t *testing.T) {
	for _, shape := range []float64{0.2, 0.5, 1, 2.7, 10} {
		for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
			x := gammaQuantile(p, shape, 1)
			back := lowerIncompleteGammaP(shape, x)
			if !almostEqual(back, p, 1e-7) {
				t.Errorf("quantile round trip shape=%v p=%v: got %v", shape, p, back)
			}
		}
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.975:  1.959964,
		0.025:  -1.959964,
		0.8413: 0.99982, // ~Phi(1)
	}
	for p, want := range cases {
		if got := normalQuantile(p); !almostEqual(got, want, 1e-3) {
			t.Errorf("normalQuantile(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestDiscreteGammaRatesMeanOne(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.5, 1, 2, 10} {
		for _, k := range []int{1, 2, 4, 8} {
			rates := DiscreteGammaRates(alpha, k)
			if len(rates) != k {
				t.Fatalf("got %d rates, want %d", len(rates), k)
			}
			var mean float64
			for _, r := range rates {
				if r < 0 {
					t.Fatalf("negative rate %v (alpha=%v k=%d)", r, alpha, k)
				}
				mean += r
			}
			mean /= float64(k)
			if !almostEqual(mean, 1, 1e-9) {
				t.Errorf("alpha=%v k=%d: mean rate %v, want 1", alpha, k, mean)
			}
			// Rates must be increasing across categories.
			for i := 1; i < k; i++ {
				if rates[i] < rates[i-1] {
					t.Errorf("alpha=%v k=%d: rates not sorted: %v", alpha, k, rates)
				}
			}
		}
	}
}

func TestDiscreteGammaSpreadShrinksWithAlpha(t *testing.T) {
	// Larger alpha = less heterogeneity = rates closer to 1.
	spread := func(alpha float64) float64 {
		r := DiscreteGammaRates(alpha, 4)
		return r[3] - r[0]
	}
	if !(spread(0.3) > spread(1) && spread(1) > spread(10)) {
		t.Errorf("spread not decreasing: %v %v %v", spread(0.3), spread(1), spread(10))
	}
}

func TestSiteRatesMixtures(t *testing.T) {
	hom, err := NewSiteRates(RateHomogeneous, 0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hom.NumCats() != 1 || hom.Rates[0] != 1 {
		t.Errorf("homogeneous mixture wrong: %+v", hom)
	}
	g, err := NewSiteRates(RateGamma, 0.5, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCats() != 4 {
		t.Errorf("gamma should have 4 cats, got %d", g.NumCats())
	}
	gi, err := NewSiteRates(RateGammaInv, 0.5, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gi.NumCats() != 5 {
		t.Errorf("gamma+inv should have 5 cats, got %d", gi.NumCats())
	}
	if gi.Rates[0] != 0 {
		t.Errorf("invariant class rate = %v, want 0", gi.Rates[0])
	}
	// Mixture mean rate must be 1 and weights sum to 1.
	var mean, wsum float64
	for i := range gi.Rates {
		mean += gi.Rates[i] * gi.Weights[i]
		wsum += gi.Weights[i]
	}
	if !almostEqual(mean, 1, 1e-9) || !almostEqual(wsum, 1, 1e-9) {
		t.Errorf("gamma+inv mixture mean=%v wsum=%v, want 1,1", mean, wsum)
	}
}

func TestSiteRatesErrors(t *testing.T) {
	if _, err := NewSiteRates(RateGamma, -1, 0, 4); err == nil {
		t.Error("expected error for negative shape")
	}
	if _, err := NewSiteRates(RateGamma, 1, 0, 0); err == nil {
		t.Error("expected error for zero categories")
	}
	if _, err := NewSiteRates(RateGammaInv, 1, 1.5, 4); err == nil {
		t.Error("expected error for pinv >= 1")
	}
}
