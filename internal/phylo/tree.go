package phylo

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Node is a vertex of a phylogenetic tree. Leaf nodes carry a taxon
// index into the alignment; internal nodes have two or more children.
// Branch lengths are stored on the child end of each edge, in expected
// substitutions per site.
type Node struct {
	ID       int // stable index within the tree's node slice
	Taxon    int // taxon index for leaves; -1 for internal nodes
	Name     string
	Length   float64
	Parent   *Node
	Children []*Node
}

// IsLeaf reports whether the node is a tip.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Tree is a phylogenetic tree. The root is a trifurcation for unrooted
// ML trees (the GARLI convention); likelihood is invariant to the
// chosen root under reversible models.
type Tree struct {
	Root  *Node
	Nodes []*Node // all nodes; Nodes[i].ID == i

	// uid is the tree object's process-unique identity, assigned
	// lazily by UID. Caching engines key per-tree state on it; unlike
	// the pointer itself it is never reused after garbage collection,
	// so cache hit patterns are deterministic.
	uid atomic.Uint64
}

// treeUIDs issues process-unique tree identities. Only uniqueness
// matters — a cache keyed by UID hits exactly when the same tree
// object is seen again, regardless of the counter's absolute values.
var treeUIDs atomic.Uint64

// UID returns the tree object's unique identity, assigning one on
// first use. Safe for concurrent callers; all of them observe the same
// value. Clones get fresh identities — a UID follows the object, not
// the topology.
func (t *Tree) UID() uint64 {
	if u := t.uid.Load(); u != 0 {
		return u
	}
	t.uid.CompareAndSwap(0, treeUIDs.Add(1))
	return t.uid.Load()
}

// NumTaxa returns the number of leaves.
func (t *Tree) NumTaxa() int {
	n := 0
	for _, nd := range t.Nodes {
		if nd.IsLeaf() {
			n++
		}
	}
	return n
}

// newNode appends a fresh node to the tree and returns it.
func (t *Tree) newNode() *Node {
	n := &Node{ID: len(t.Nodes), Taxon: -1}
	t.Nodes = append(t.Nodes, n)
	return n
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	c := &Tree{}
	c.Nodes = make([]*Node, len(t.Nodes))
	for i, n := range t.Nodes {
		c.Nodes[i] = &Node{ID: n.ID, Taxon: n.Taxon, Name: n.Name, Length: n.Length}
	}
	for i, n := range t.Nodes {
		cn := c.Nodes[i]
		if n.Parent != nil {
			cn.Parent = c.Nodes[n.Parent.ID]
		}
		for _, ch := range n.Children {
			cn.Children = append(cn.Children, c.Nodes[ch.ID])
		}
	}
	c.Root = c.Nodes[t.Root.ID]
	return c
}

// PostOrder visits every node children-first and calls fn on each.
func (t *Tree) PostOrder(fn func(*Node)) {
	var walk func(*Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			walk(c)
		}
		fn(n)
	}
	walk(t.Root)
}

// Leaves returns the tree's leaf nodes in post-order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	t.PostOrder(func(n *Node) {
		if n.IsLeaf() {
			out = append(out, n)
		}
	})
	return out
}

// InternalEdges returns the child nodes of internal (non-root,
// non-leaf) edges — the edges eligible for NNI.
func (t *Tree) InternalEdges() []*Node {
	var out []*Node
	t.PostOrder(func(n *Node) {
		if !n.IsLeaf() && n.Parent != nil {
			out = append(out, n)
		}
	})
	return out
}

// TotalLength returns the sum of all branch lengths.
func (t *Tree) TotalLength() float64 {
	var s float64
	t.PostOrder(func(n *Node) {
		if n.Parent != nil {
			s += n.Length
		}
	})
	return s
}

// Check verifies structural invariants: parent/child links are
// mutually consistent, IDs index the node slice, the root has no
// parent, and branch lengths are finite and non-negative. It is used
// by property tests after random topology moves.
func (t *Tree) Check() error {
	if t.Root == nil {
		return fmt.Errorf("phylo: tree has no root")
	}
	if t.Root.Parent != nil {
		return fmt.Errorf("phylo: root has a parent")
	}
	seen := make(map[int]bool)
	var err error
	t.PostOrder(func(n *Node) {
		if err != nil {
			return
		}
		if n.ID < 0 || n.ID >= len(t.Nodes) || t.Nodes[n.ID] != n {
			err = fmt.Errorf("phylo: node ID %d inconsistent with node slice", n.ID)
			return
		}
		if seen[n.ID] {
			err = fmt.Errorf("phylo: node %d reached twice (cycle)", n.ID)
			return
		}
		seen[n.ID] = true
		if n.Length < 0 || math.IsNaN(n.Length) || math.IsInf(n.Length, 0) {
			err = fmt.Errorf("phylo: node %d has invalid branch length %v", n.ID, n.Length)
			return
		}
		for _, c := range n.Children {
			if c.Parent != n {
				err = fmt.Errorf("phylo: child %d does not point back to parent %d", c.ID, n.ID)
				return
			}
		}
	})
	return err
}

// Newick serializes the tree in Newick format with branch lengths.
func (t *Tree) Newick() string {
	var b strings.Builder
	var walk func(*Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			b.WriteString(escapeNewickName(n.Name))
		} else {
			b.WriteByte('(')
			for i, c := range n.Children {
				if i > 0 {
					b.WriteByte(',')
				}
				walk(c)
			}
			b.WriteByte(')')
		}
		if n.Parent != nil {
			fmt.Fprintf(&b, ":%.8g", n.Length)
		}
	}
	walk(t.Root)
	b.WriteByte(';')
	return b.String()
}

func escapeNewickName(s string) string {
	if strings.ContainsAny(s, " ():,;'") {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return s
}

// ParseNewick parses a Newick string. Taxon indices are assigned by
// looking names up in taxonIndex; pass nil to assign indices in order
// of appearance.
func ParseNewick(s string, taxonIndex map[string]int) (*Tree, error) {
	p := &newickParser{s: s, taxa: taxonIndex}
	t := &Tree{}
	root, err := p.parseSubtree(t)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == ';' {
		p.pos++
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("phylo: trailing characters in Newick at offset %d", p.pos)
	}
	t.Root = root
	return t, nil
}

type newickParser struct {
	s    string
	pos  int
	taxa map[string]int
	next int
}

func (p *newickParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n' || p.s[p.pos] == '\r') {
		p.pos++
	}
}

func (p *newickParser) parseSubtree(t *Tree) (*Node, error) {
	p.skipSpace()
	n := t.newNode()
	if p.pos < len(p.s) && p.s[p.pos] == '(' {
		p.pos++
		for {
			child, err := p.parseSubtree(t)
			if err != nil {
				return nil, err
			}
			child.Parent = n
			n.Children = append(n.Children, child)
			p.skipSpace()
			if p.pos >= len(p.s) {
				return nil, fmt.Errorf("phylo: unterminated Newick group")
			}
			if p.s[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.s[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("phylo: unexpected %q in Newick at offset %d", p.s[p.pos], p.pos)
		}
	}
	// Optional label.
	name := p.parseName()
	if name != "" {
		n.Name = name
		if n.IsLeaf() {
			if p.taxa != nil {
				idx, ok := p.taxa[name]
				if !ok {
					return nil, fmt.Errorf("phylo: Newick taxon %q not in alignment", name)
				}
				n.Taxon = idx
			} else {
				n.Taxon = p.next
				p.next++
			}
		}
	} else if n.IsLeaf() {
		return nil, fmt.Errorf("phylo: unnamed leaf in Newick at offset %d", p.pos)
	}
	// Optional branch length.
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == ':' {
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && strings.ContainsRune("0123456789+-.eE", rune(p.s[p.pos])) {
			p.pos++
		}
		v, err := strconv.ParseFloat(p.s[start:p.pos], 64)
		if err != nil {
			return nil, fmt.Errorf("phylo: bad branch length in Newick at offset %d: %w", start, err)
		}
		if v < 0 {
			v = 0
		}
		n.Length = v
	}
	return n, nil
}

func (p *newickParser) parseName() string {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return ""
	}
	if p.s[p.pos] == '\'' {
		p.pos++
		var b strings.Builder
		for p.pos < len(p.s) {
			if p.s[p.pos] == '\'' {
				if p.pos+1 < len(p.s) && p.s[p.pos+1] == '\'' {
					b.WriteByte('\'')
					p.pos += 2
					continue
				}
				p.pos++
				break
			}
			b.WriteByte(p.s[p.pos])
			p.pos++
		}
		return b.String()
	}
	start := p.pos
	for p.pos < len(p.s) && !strings.ContainsRune("():,;'", rune(p.s[p.pos])) &&
		p.s[p.pos] != ' ' && p.s[p.pos] != '\t' && p.s[p.pos] != '\n' {
		p.pos++
	}
	return p.s[start:p.pos]
}

// reindex rebuilds the node slice and IDs after structural surgery
// removed nodes from the tree.
func (t *Tree) reindex() {
	var nodes []*Node
	t.PostOrder(func(n *Node) {
		n.ID = len(nodes)
		nodes = append(nodes, n)
	})
	t.Nodes = nodes
}

// Bipartition is a canonical encoding of the taxon split induced by an
// internal edge, used for consensus trees and topology comparison. It
// is the sorted list of taxa on the child side, flipped if needed so
// that taxon 0 is never included (canonical orientation).
type Bipartition string

// Bipartitions returns the set of non-trivial splits of the tree,
// keyed by canonical encoding.
func (t *Tree) Bipartitions() map[Bipartition]bool {
	total := t.NumTaxa()
	out := make(map[Bipartition]bool)
	var walk func(n *Node) []int
	walk = func(n *Node) []int {
		if n.IsLeaf() {
			return []int{n.Taxon}
		}
		var below []int
		for _, c := range n.Children {
			below = append(below, walk(c)...)
		}
		if n.Parent != nil && len(below) >= 2 && total-len(below) >= 2 {
			out[canonicalSplit(below, total)] = true
		}
		return below
	}
	walk(t.Root)
	return out
}

// canonicalSplit encodes one side of a split canonically.
func canonicalSplit(side []int, total int) Bipartition {
	in := make(map[int]bool, len(side))
	for _, x := range side {
		in[x] = true
	}
	chosen := side
	if in[0] {
		chosen = chosen[:0:0]
		for i := 0; i < total; i++ {
			if !in[i] {
				chosen = append(chosen, i)
			}
		}
	}
	s := append([]int(nil), chosen...)
	sort.Ints(s)
	var b strings.Builder
	for i, x := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return Bipartition(b.String())
}

// RFDistance returns the Robinson–Foulds distance (number of splits
// present in exactly one tree) between t and u, which must be over the
// same taxon set.
func (t *Tree) RFDistance(u *Tree) int {
	a, b := t.Bipartitions(), u.Bipartitions()
	d := 0
	for s := range a {
		if !b[s] {
			d++
		}
	}
	for s := range b {
		if !a[s] {
			d++
		}
	}
	return d
}
