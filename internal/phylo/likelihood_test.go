package phylo

import (
	"math"
	"testing"

	"lattice/internal/sim"
)

// bruteForceLogL computes the likelihood of a tree by summing over all
// internal-node state assignments — exponential, but an independent
// oracle for tiny trees.
func bruteForceLogL(t *Tree, data *PatternData, m *Model, rates *SiteRates) float64 {
	S := m.Type.NumStates()
	var internals []*Node
	t.PostOrder(func(n *Node) {
		if !n.IsLeaf() {
			internals = append(internals, n)
		}
	})
	pm := make(map[*Node][]*Matrix)
	t.PostOrder(func(n *Node) {
		if n.Parent == nil {
			return
		}
		for c := 0; c < rates.NumCats(); c++ {
			pm[n] = append(pm[n], m.Eigen().TransitionMatrix(n.Length*rates.Rates[c], nil))
		}
	})
	var logL float64
	for p := 0; p < data.NumPatterns(); p++ {
		var site float64
		for c := 0; c < rates.NumCats(); c++ {
			assign := make([]int, len(internals))
			var sum float64
			var rec func(k int)
			rec = func(k int) {
				if k == len(internals) {
					states := make(map[*Node]int)
					for i, n := range internals {
						states[n] = assign[i]
					}
					prob := m.Freqs[states[t.Root]]
					ok := true
					t.PostOrder(func(n *Node) {
						if n.Parent == nil || !ok {
							return
						}
						var st int
						if n.IsLeaf() {
							raw := data.States[p*data.NumTaxa+n.Taxon]
							if raw < 0 {
								// Missing: marginalize by summing over states.
								var s2 float64
								for x := 0; x < S; x++ {
									s2 += pm[n][c].At(states[n.Parent], x)
								}
								prob *= s2
								return
							}
							st = int(raw)
						} else {
							st = states[n]
						}
						prob *= pm[n][c].At(states[n.Parent], st)
					})
					sum += prob
					return
				}
				for s := 0; s < S; s++ {
					assign[k] = s
					rec(k + 1)
				}
			}
			rec(0)
			site += rates.Weights[c] * sum
		}
		logL += data.Weights[p] * math.Log(site)
	}
	return logL
}

func fourTaxonTree(t *testing.T) *Tree {
	tr, err := ParseNewick("((a:0.1,b:0.2):0.05,c:0.3,d:0.15);", map[string]int{"a": 0, "b": 1, "c": 2, "d": 3})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPruningMatchesBruteForce(t *testing.T) {
	a := smallNucAlignment()
	pd, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tr := fourTaxonTree(t)
	models := []*Model{}
	if m, err := NewJC69(); err == nil {
		models = append(models, m)
	}
	if m, err := NewHKY85(2.5, []float64{0.3, 0.2, 0.2, 0.3}); err == nil {
		models = append(models, m)
	}
	if m, err := NewGTR([6]float64{1, 2, 1.5, 0.7, 4, 1}, []float64{0.25, 0.25, 0.3, 0.2}); err == nil {
		models = append(models, m)
	}
	rateSets := []*SiteRates{}
	if r, err := NewSiteRates(RateHomogeneous, 0, 0, 1); err == nil {
		rateSets = append(rateSets, r)
	}
	if r, err := NewSiteRates(RateGamma, 0.5, 0, 4); err == nil {
		rateSets = append(rateSets, r)
	}
	if r, err := NewSiteRates(RateGammaInv, 0.8, 0.15, 4); err == nil {
		rateSets = append(rateSets, r)
	}
	for _, m := range models {
		for _, rs := range rateSets {
			lk, err := NewLikelihood(pd, m, rs)
			if err != nil {
				t.Fatal(err)
			}
			got := lk.LogLikelihood(tr)
			want := bruteForceLogL(tr, pd, m, rs)
			if !almostEqual(got, want, 1e-8) {
				t.Errorf("%s/%s: pruning %v != brute force %v", m.Name, rs.Kind, got, want)
			}
		}
	}
}

func TestPruningWithMissingData(t *testing.T) {
	a := &Alignment{
		Type:  Nucleotide,
		Names: []string{"a", "b", "c", "d"},
		Seqs:  []string{"AC-T", "ACGT", "ANGT", "TCGA"},
	}
	pd, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewJC69()
	rs, _ := NewSiteRates(RateHomogeneous, 0, 0, 1)
	lk, _ := NewLikelihood(pd, m, rs)
	tr := fourTaxonTree(t)
	got := lk.LogLikelihood(tr)
	want := bruteForceLogL(tr, pd, m, rs)
	if !almostEqual(got, want, 1e-8) {
		t.Errorf("missing data: pruning %v != brute force %v", got, want)
	}
}

func TestLikelihoodInvariantToRerooting(t *testing.T) {
	// Under a reversible model the likelihood must not depend on root
	// placement. Parse two Newick strings for the same unrooted tree
	// rooted at different internal nodes.
	taxa := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	t1, err := ParseNewick("((a:0.1,b:0.2):0.05,c:0.3,d:0.15);", taxa)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ParseNewick("((c:0.3,d:0.15):0.05,a:0.1,b:0.2);", taxa)
	if err != nil {
		t.Fatal(err)
	}
	pd, _ := smallNucAlignment().Compile()
	m, _ := NewGTR([6]float64{1, 2, 1.5, 0.7, 4, 1}, []float64{0.25, 0.25, 0.3, 0.2})
	rs, _ := NewSiteRates(RateGamma, 0.7, 0, 4)
	lk, _ := NewLikelihood(pd, m, rs)
	l1 := lk.LogLikelihood(t1)
	l2 := lk.LogLikelihood(t2)
	if !almostEqual(l1, l2, 1e-8) {
		t.Errorf("likelihood changed under rerooting: %v vs %v", l1, l2)
	}
}

func TestScalingOnDeepTree(t *testing.T) {
	// A 64-taxon tree with sizable branch lengths would underflow
	// without rescaling; the result must be finite and negative.
	rng := sim.NewRNG(3)
	names := TaxonNames(64)
	tr := RandomTree(names, 0.4, rng)
	m, _ := NewJC69()
	rs, _ := NewSiteRates(RateHomogeneous, 0, 0, 1)
	al, err := SimulateAlignment(tr, m, rs, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := al.Compile()
	if err != nil {
		t.Fatal(err)
	}
	lk, _ := NewLikelihood(pd, m, rs)
	l := lk.LogLikelihood(tr)
	if math.IsInf(l, 0) || math.IsNaN(l) || l >= 0 {
		t.Errorf("deep-tree log-likelihood = %v; scaling failed", l)
	}
}

func TestWorkAccrues(t *testing.T) {
	pd, _ := smallNucAlignment().Compile()
	m, _ := NewJC69()
	rs, _ := NewSiteRates(RateGamma, 1, 0, 4)
	lk, _ := NewLikelihood(pd, m, rs)
	tr := fourTaxonTree(t)
	lk.LogLikelihood(tr)
	w1 := lk.Work
	if w1 <= 0 {
		t.Fatal("no work accrued")
	}
	lk.LogLikelihood(tr)
	if lk.Work <= w1 {
		t.Error("work did not accumulate on second evaluation")
	}
}

func TestWorkScalesWithStatesAndCats(t *testing.T) {
	// Codon likelihood on the same number of patterns must cost far
	// more than nucleotide — the root cause of DataType's importance
	// in the paper's Figure 2.
	rng := sim.NewRNG(9)
	names := TaxonNames(6)
	tr := RandomTree(names, 0.1, rng)

	mn, _ := NewJC69()
	rsn, _ := NewSiteRates(RateHomogeneous, 0, 0, 1)
	aln, _ := SimulateAlignment(tr, mn, rsn, 30, rng)
	pdn, _ := aln.Compile()
	lkn, _ := NewLikelihood(pdn, mn, rsn)
	lkn.LogLikelihood(tr)

	mc, err := NewGY94(2, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	alc, _ := SimulateAlignment(tr, mc, rsn, 30, rng)
	pdc, _ := alc.Compile()
	lkc, _ := NewLikelihood(pdc, mc, rsn)
	lkc.LogLikelihood(tr)

	perPatNuc := lkn.Work / float64(pdn.NumPatterns())
	perPatCodon := lkc.Work / float64(pdc.NumPatterns())
	if perPatCodon < 50*perPatNuc {
		t.Errorf("codon per-pattern work %.0f not ≫ nucleotide %.0f", perPatCodon, perPatNuc)
	}
}

func TestOptimizeBranchImproves(t *testing.T) {
	pd, _ := smallNucAlignment().Compile()
	m, _ := NewJC69()
	rs, _ := NewSiteRates(RateHomogeneous, 0, 0, 1)
	lk, _ := NewLikelihood(pd, m, rs)
	tr := fourTaxonTree(t)
	before := lk.LogLikelihood(tr)
	target := tr.Root.Children[0] // internal edge
	target.Length = 5             // deliberately terrible
	worse := lk.LogLikelihood(tr)
	if worse >= before {
		t.Skip("perturbation did not reduce likelihood; adjust test")
	}
	after := lk.OptimizeBranch(tr, target, 30)
	if after < worse {
		t.Errorf("optimization made things worse: %v < %v", after, worse)
	}
	if after < before-0.5 {
		t.Errorf("optimization failed to recover: %v vs original %v", after, before)
	}
}

func TestMismatchedModelAndData(t *testing.T) {
	pd, _ := smallNucAlignment().Compile()
	m, _ := NewPoissonAA()
	if _, err := NewLikelihood(pd, m, nil); err == nil {
		t.Error("expected error pairing nucleotide data with amino acid model")
	}
}

func TestEvalCostFormula(t *testing.T) {
	// The analytic cost formula must track the measured Work of a
	// real evaluation to within bookkeeping slack.
	rng := sim.NewRNG(21)
	names := TaxonNames(10)
	tr := RandomTree(names, 0.1, rng)
	m, _ := NewJC69()
	rs, _ := NewSiteRates(RateGamma, 0.5, 0, 4)
	al, _ := SimulateAlignment(tr, m, rs, 100, rng)
	pd, _ := al.Compile()
	lk, _ := NewLikelihood(pd, m, rs)
	lk.LogLikelihood(tr)
	predicted := EvalCost(pd.NumPatterns(), 10, 4, 4)
	ratio := lk.Work / predicted
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("EvalCost off by factor %v (work=%v predicted=%v)", ratio, lk.Work, predicted)
	}
}
