package phylo

import "testing"

// TestBootstrapReplicateBitIdentity: same (seed, rep) must resample to
// bit-identical weights no matter when or in what order the replicate
// runs — re-deriving rep 7 alone equals deriving it amid 0..9.
func TestBootstrapReplicateBitIdentity(t *testing.T) {
	a := smallNucAlignment()
	pd, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	const seed = 42

	inOrder := make([][]float64, 10)
	for rep := 0; rep < 10; rep++ {
		inOrder[rep] = append([]float64(nil), pd.BootstrapReplicate(seed, rep).Weights...)
	}
	// Reverse order, and rep 7 standalone on a fresh compile.
	for rep := 9; rep >= 0; rep-- {
		got := pd.BootstrapReplicate(seed, rep).Weights
		for i := range got {
			if got[i] != inOrder[rep][i] {
				t.Fatalf("rep %d weight[%d] = %v out of order, %v in order", rep, i, got[i], inOrder[rep][i])
			}
		}
	}
	pd2, err := smallNucAlignment().Compile()
	if err != nil {
		t.Fatal(err)
	}
	solo := pd2.BootstrapReplicate(seed, 7).Weights
	for i := range solo {
		if solo[i] != inOrder[7][i] {
			t.Fatalf("standalone rep 7 weight[%d] = %v, want %v", i, solo[i], inOrder[7][i])
		}
	}
}

// TestSubStreamIndependence: distinct reps, labels, and seeds give
// distinct streams; equal triples give equal streams.
func TestSubStreamIndependence(t *testing.T) {
	base := SubStream(1, "x", 0).Float64()
	if SubStream(1, "x", 0).Float64() != base {
		t.Fatal("same (seed,label,rep) must reproduce the stream")
	}
	if SubStream(1, "x", 1).Float64() == base &&
		SubStream(1, "y", 0).Float64() == base &&
		SubStream(2, "x", 0).Float64() == base {
		t.Fatal("varying rep, label, and seed all collided with the base stream")
	}
}
