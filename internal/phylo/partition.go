package phylo

import "fmt"

// Partition couples one block of sites with its own substitution model
// and rate mixture — GARLI's partitioned models ("the program is being
// adapted … allowing more data types, partitioned models"). Typical
// use: one partition per gene, or per codon position.
type Partition struct {
	Name  string
	Data  *PatternData
	Model *Model
	Rates *SiteRates
}

// PartitionedLikelihood evaluates a tree against several partitions
// that share the topology and branch lengths; the total log-likelihood
// is the sum over partitions.
type PartitionedLikelihood struct {
	names []string
	parts []*Likelihood
}

// NewPartitionedLikelihood builds the joint evaluator. All partitions
// must cover the same taxa (same count, same row indexing).
func NewPartitionedLikelihood(parts []Partition) (*PartitionedLikelihood, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("phylo: no partitions")
	}
	nt := parts[0].Data.NumTaxa
	pl := &PartitionedLikelihood{}
	for i, p := range parts {
		if p.Data.NumTaxa != nt {
			return nil, fmt.Errorf("phylo: partition %d has %d taxa; partition 0 has %d", i, p.Data.NumTaxa, nt)
		}
		lk, err := NewLikelihood(p.Data, p.Model, p.Rates)
		if err != nil {
			return nil, fmt.Errorf("phylo: partition %d (%s): %w", i, p.Name, err)
		}
		pl.parts = append(pl.parts, lk)
		pl.names = append(pl.names, p.Name)
	}
	return pl, nil
}

// NumPartitions returns the number of data blocks.
func (pl *PartitionedLikelihood) NumPartitions() int { return len(pl.parts) }

// LogLikelihood implements Evaluator: the sum of per-partition
// log-likelihoods on the shared tree.
func (pl *PartitionedLikelihood) LogLikelihood(t *Tree) float64 {
	var sum float64
	for _, lk := range pl.parts {
		sum += lk.LogLikelihood(t)
	}
	return sum
}

// PartitionLogLikelihood evaluates a single partition.
func (pl *PartitionedLikelihood) PartitionLogLikelihood(i int, t *Tree) float64 {
	return pl.parts[i].LogLikelihood(t)
}

// OptimizeBranch implements Evaluator.
func (pl *PartitionedLikelihood) OptimizeBranch(t *Tree, n *Node, iterations int) float64 {
	return optimizeBranch(pl, t, n, iterations)
}

// TotalWork implements Evaluator.
func (pl *PartitionedLikelihood) TotalWork() float64 {
	var w float64
	for _, lk := range pl.parts {
		w += lk.Work
	}
	return w
}

// OptimizeBranchOf runs the shared golden-section branch optimizer on
// any Evaluator — exported so optimized backends outside this package
// (internal/beagle) can reuse it.
func OptimizeBranchOf(ev Evaluator, t *Tree, n *Node, iterations int) float64 {
	return optimizeBranch(ev, t, n, iterations)
}

// SplitAlignment cuts an alignment into contiguous blocks by column
// ranges (half-open, in characters) — the usual way a concatenated
// multi-gene matrix is partitioned. Each block inherits the
// alignment's data type.
func SplitAlignment(a *Alignment, bounds []int) ([]*Alignment, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("phylo: need at least one block (two bounds)")
	}
	var out []*Alignment
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if lo < 0 || hi > a.Length() || lo >= hi {
			return nil, fmt.Errorf("phylo: invalid block [%d, %d) for alignment of length %d", lo, hi, a.Length())
		}
		blk := &Alignment{Type: a.Type, Names: append([]string(nil), a.Names...)}
		for _, seq := range a.Seqs {
			blk.Seqs = append(blk.Seqs, seq[lo:hi])
		}
		out = append(out, blk)
	}
	return out, nil
}
