package phylo

import (
	"strings"
	"testing"

	"lattice/internal/sim"
)

func smallNucAlignment() *Alignment {
	return &Alignment{
		Type:  Nucleotide,
		Names: []string{"a", "b", "c", "d"},
		Seqs: []string{
			"ACGTACGTAA",
			"ACGTACGTAC",
			"ACGAACGTAG",
			"ACGAACTTAT",
		},
	}
}

func TestFASTARoundTrip(t *testing.T) {
	a := smallNucAlignment()
	var buf strings.Builder
	if err := a.WriteFASTA(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ParseFASTA(strings.NewReader(buf.String()), Nucleotide)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumTaxa() != a.NumTaxa() {
		t.Fatalf("taxa %d != %d", b.NumTaxa(), a.NumTaxa())
	}
	for i := range a.Seqs {
		if b.Names[i] != a.Names[i] || b.Seqs[i] != a.Seqs[i] {
			t.Errorf("row %d mismatch: %q/%q vs %q/%q", i, b.Names[i], b.Seqs[i], a.Names[i], a.Seqs[i])
		}
	}
}

func TestFASTALongLinesWrapped(t *testing.T) {
	long := strings.Repeat("ACGT", 100)
	a := &Alignment{Type: Nucleotide, Names: []string{"x", "y", "z"}, Seqs: []string{long, long, long}}
	var buf strings.Builder
	if err := a.WriteFASTA(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 70 {
			t.Fatalf("line longer than 70 chars: %d", len(line))
		}
	}
	b, err := ParseFASTA(strings.NewReader(buf.String()), Nucleotide)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seqs[0] != long {
		t.Error("wrapped sequence did not round-trip")
	}
}

func TestFASTAErrors(t *testing.T) {
	if _, err := ParseFASTA(strings.NewReader(""), Nucleotide); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := ParseFASTA(strings.NewReader("ACGT\n"), Nucleotide); err == nil {
		t.Error("expected error on data before header")
	}
	if _, err := ParseFASTA(strings.NewReader(">\nACGT\n"), Nucleotide); err == nil {
		t.Error("expected error on empty record name")
	}
}

func TestParsePHYLIP(t *testing.T) {
	in := "3 8\nalpha ACGTACGT\nbeta  ACGTACGA\ngamma ACG TACGA\n"
	a, err := ParsePHYLIP(strings.NewReader(in), Nucleotide)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTaxa() != 3 || a.Length() != 8 {
		t.Fatalf("got %d × %d", a.NumTaxa(), a.Length())
	}
	if a.Seqs[2] != "ACGTACGA" {
		t.Errorf("whitespace in sequence not joined: %q", a.Seqs[2])
	}
}

func TestParsePHYLIPErrors(t *testing.T) {
	cases := []string{
		"",
		"x y\n",
		"2 4\nonly ACGT\n",
		"1 0\n",
	}
	for _, in := range cases {
		if _, err := ParsePHYLIP(strings.NewReader(in), Nucleotide); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestValidate(t *testing.T) {
	good := smallNucAlignment()
	if err := good.Validate(); err != nil {
		t.Errorf("valid alignment rejected: %v", err)
	}
	tooFew := &Alignment{Type: Nucleotide, Names: []string{"a", "b"}, Seqs: []string{"AC", "AC"}}
	if err := tooFew.Validate(); err == nil {
		t.Error("expected error for 2 taxa")
	}
	ragged := smallNucAlignment()
	ragged.Seqs[2] = "ACG"
	if err := ragged.Validate(); err == nil {
		t.Error("expected error for ragged alignment")
	}
	dup := smallNucAlignment()
	dup.Names[1] = "a"
	if err := dup.Validate(); err == nil {
		t.Error("expected error for duplicate names")
	}
	badCodon := smallNucAlignment()
	badCodon.Type = Codon
	if err := badCodon.Validate(); err == nil {
		t.Error("expected error for codon length not multiple of 3")
	}
}

func TestCompilePatterns(t *testing.T) {
	a := &Alignment{
		Type:  Nucleotide,
		Names: []string{"a", "b", "c"},
		Seqs: []string{
			"AAAC",
			"AACC",
			"AACG",
		},
	}
	pd, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Columns: (A,A,A), (A,A,A), (A,C,C), (C,C,G) → 3 unique patterns.
	if pd.NumPatterns() != 3 {
		t.Fatalf("got %d patterns, want 3", pd.NumPatterns())
	}
	var total float64
	for _, w := range pd.Weights {
		total += w
	}
	if total != 4 {
		t.Errorf("total pattern weight %v, want 4", total)
	}
	if pd.Weights[0] != 2 {
		t.Errorf("first pattern weight %v, want 2", pd.Weights[0])
	}
}

func TestCompileMissingData(t *testing.T) {
	a := &Alignment{
		Type:  Nucleotide,
		Names: []string{"a", "b", "c"},
		Seqs:  []string{"A-N", "ACC", "ACG"},
	}
	pd, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if pd.States[1*3+0] != -1 || pd.States[2*3+0] != -1 {
		t.Error("gap and ambiguity should encode as missing (-1)")
	}
}

func TestCompileCodon(t *testing.T) {
	a := &Alignment{
		Type:  Codon,
		Names: []string{"a", "b", "c"},
		Seqs:  []string{"ATGAAA", "ATGAAG", "ATGTAA"}, // TAA is a stop → missing
	}
	pd, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if pd.NumSites != 2 {
		t.Fatalf("codon sites = %d, want 2", pd.NumSites)
	}
	// Last taxon's second codon (TAA) is a stop → missing.
	last := pd.States[(pd.NumPatterns()-1)*3+2]
	if last != -1 {
		t.Errorf("stop codon encoded as %d, want -1", last)
	}
}

func TestBootstrapPreservesTotalWeight(t *testing.T) {
	a := smallNucAlignment()
	pd, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	bs := pd.Bootstrap(rng.Float64)
	var orig, resampled float64
	for _, w := range pd.Weights {
		orig += w
	}
	for _, w := range bs.Weights {
		resampled += w
	}
	if orig != resampled {
		t.Errorf("bootstrap total weight %v != original %v", resampled, orig)
	}
	if &bs.States[0] != &pd.States[0] {
		t.Error("bootstrap should share the pattern state array")
	}
}

func TestBootstrapVaries(t *testing.T) {
	a := smallNucAlignment()
	pd, _ := a.Compile()
	rng := sim.NewRNG(12)
	diff := false
	for i := 0; i < 10 && !diff; i++ {
		bs := pd.Bootstrap(rng.Float64)
		for j := range bs.Weights {
			if bs.Weights[j] != pd.Weights[j] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("10 bootstrap replicates identical to original — resampling broken")
	}
}

func TestEncodeCodon(t *testing.T) {
	if s := encodeCodon('A', 'T', 'G'); CodonAminoAcid(s) != 'M' {
		t.Errorf("ATG should encode methionine, got %c", CodonAminoAcid(s))
	}
	if s := encodeCodon('T', 'A', 'A'); s != -1 {
		t.Errorf("stop codon TAA encoded as %d, want -1", s)
	}
	if s := encodeCodon('U', 'G', 'G'); CodonAminoAcid(s) != 'W' {
		t.Errorf("UGG should encode tryptophan (RNA accepted), got %d", s)
	}
	if s := encodeCodon('N', 'G', 'G'); s != -1 {
		t.Errorf("ambiguous codon encoded as %d, want -1", s)
	}
}

func TestDataTypeParsing(t *testing.T) {
	for in, want := range map[string]DataType{
		"nucleotide": Nucleotide, "DNA": Nucleotide,
		"protein": AminoAcid, "aa": AminoAcid,
		"codon": Codon,
	} {
		got, err := ParseDataType(in)
		if err != nil || got != want {
			t.Errorf("ParseDataType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseDataType("morphology"); err == nil {
		t.Error("expected error for unknown type")
	}
	if Nucleotide.NumStates() != 4 || AminoAcid.NumStates() != 20 || Codon.NumStates() != 61 {
		t.Error("wrong state counts")
	}
}
