package phylo

import (
	"math"
	"testing"

	"lattice/internal/sim"
)

// twoGeneFixture builds a concatenated two-gene alignment where gene A
// evolves under JC69 and gene B under HKY85 with gamma rates.
func twoGeneFixture(t *testing.T) (*Alignment, []Partition, *Tree) {
	t.Helper()
	rng := sim.NewRNG(41)
	names := TaxonNames(8)
	truth := RandomTree(names, 0.12, rng)

	mA, _ := NewJC69()
	rA, _ := NewSiteRates(RateHomogeneous, 0, 0, 1)
	geneA, err := SimulateAlignment(truth, mA, rA, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	mB, _ := NewHKY85(3.0, []float64{0.35, 0.15, 0.15, 0.35})
	rB, _ := NewSiteRates(RateGamma, 0.5, 0, 4)
	geneB, err := SimulateAlignment(truth, mB, rB, 600, rng)
	if err != nil {
		t.Fatal(err)
	}
	concat := &Alignment{Type: Nucleotide, Names: names}
	for i := range names {
		concat.Seqs = append(concat.Seqs, geneA.Seqs[i]+geneB.Seqs[i])
	}
	pdA, _ := geneA.Compile()
	pdB, _ := geneB.Compile()
	parts := []Partition{
		{Name: "geneA", Data: pdA, Model: mA, Rates: rA},
		{Name: "geneB", Data: pdB, Model: mB, Rates: rB},
	}
	return concat, parts, truth
}

func TestPartitionedLogLIsSumOfParts(t *testing.T) {
	_, parts, truth := twoGeneFixture(t)
	pl, err := NewPartitionedLikelihood(parts)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range parts {
		lk, _ := NewLikelihood(parts[i].Data, parts[i].Model, parts[i].Rates)
		sum += lk.LogLikelihood(truth)
	}
	if got := pl.LogLikelihood(truth); math.Abs(got-sum) > 1e-9 {
		t.Errorf("partitioned logL %v != sum of parts %v", got, sum)
	}
	if pl.NumPartitions() != 2 {
		t.Errorf("NumPartitions = %d", pl.NumPartitions())
	}
	if pl.TotalWork() <= 0 {
		t.Error("no work accrued")
	}
	a := pl.PartitionLogLikelihood(0, truth)
	b := pl.PartitionLogLikelihood(1, truth)
	if math.Abs(a+b-sum) > 1e-9 {
		t.Error("per-partition likelihoods inconsistent")
	}
}

func TestPartitionedBeatsWrongSingleModel(t *testing.T) {
	// Fitting the concatenated data with one JC69 model must fit
	// worse than the correctly partitioned models on the same tree.
	concat, parts, truth := twoGeneFixture(t)
	pd, err := concat.Compile()
	if err != nil {
		t.Fatal(err)
	}
	mJC, _ := NewJC69()
	rFlat, _ := NewSiteRates(RateHomogeneous, 0, 0, 1)
	single, _ := NewLikelihood(pd, mJC, rFlat)
	pl, _ := NewPartitionedLikelihood(parts)
	if pl.LogLikelihood(truth) <= single.LogLikelihood(truth) {
		t.Errorf("partitioned fit (%.1f) not better than mono-model fit (%.1f)",
			pl.LogLikelihood(truth), single.LogLikelihood(truth))
	}
}

func TestSearchPartitionedRecoversTopology(t *testing.T) {
	_, parts, truth := twoGeneFixture(t)
	cfg := DefaultSearchConfig()
	cfg.MaxGenerations = 200
	cfg.StagnationGenerations = 60
	cfg.AttachmentsPerTaxon = 8
	res, err := SearchPartitioned(parts, TaxonNames(8), cfg, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	maxRF := 2 * (truth.NumTaxa() - 3)
	if d := res.BestTree.RFDistance(truth); d > maxRF/2 {
		t.Errorf("partitioned search RF distance %d of max %d", d, maxRF)
	}
	if res.Work <= 0 {
		t.Error("no work recorded")
	}
}

func TestPartitionValidation(t *testing.T) {
	_, parts, _ := twoGeneFixture(t)
	if _, err := NewPartitionedLikelihood(nil); err == nil {
		t.Error("empty partition list accepted")
	}
	bad := []Partition{parts[0], parts[1]}
	smaller, _ := (&Alignment{
		Type:  Nucleotide,
		Names: []string{"a", "b", "c"},
		Seqs:  []string{"ACGT", "ACGA", "ACGG"},
	}).Compile()
	bad[1].Data = smaller
	if _, err := NewPartitionedLikelihood(bad); err == nil {
		t.Error("taxon-count mismatch accepted")
	}
	mismatch := []Partition{parts[0]}
	aa, _ := NewPoissonAA()
	mismatch[0].Model = aa
	if _, err := NewPartitionedLikelihood(mismatch); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestSplitAlignment(t *testing.T) {
	a := &Alignment{
		Type:  Nucleotide,
		Names: []string{"a", "b", "c"},
		Seqs:  []string{"AAACCCGGGT", "AAACCCGGGA", "AAACCCGGGC"},
	}
	blocks, err := SplitAlignment(a, []int{0, 3, 6, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	if blocks[0].Seqs[0] != "AAA" || blocks[1].Seqs[0] != "CCC" || blocks[2].Seqs[0] != "GGGT" {
		t.Errorf("block contents wrong: %q %q %q", blocks[0].Seqs[0], blocks[1].Seqs[0], blocks[2].Seqs[0])
	}
	for _, bad := range [][]int{{0}, {0, 20}, {5, 3}, {-1, 4}} {
		if _, err := SplitAlignment(a, bad); err == nil {
			t.Errorf("bounds %v accepted", bad)
		}
	}
}
