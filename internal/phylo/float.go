package phylo

import "math"

// Float tolerance helpers backing the floatcmp analyzer's guidance:
// likelihoods, branch lengths and rate parameters accumulate rounding
// error, so exact == between computed values is almost always a bug.
// Compare through these instead.

// AlmostEqual reports whether a and b agree to within tol, combining
// absolute and relative tolerance: |a-b| <= tol covers values near
// zero, |a-b| <= tol*max(|a|,|b|) covers large magnitudes. NaN is
// never equal to anything; infinities are equal only to themselves.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b //lint:allow floatcmp -- infinities carry no rounding error
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// LogLTol is the default tolerance for comparing log-likelihoods:
// tree scores differing by less than this are the same tree score for
// search and consensus purposes.
const LogLTol = 1e-9

// SameLogL reports whether two log-likelihoods are equal to within
// LogLTol (relative for large magnitudes, absolute near zero).
func SameLogL(a, b float64) bool { return AlmostEqual(a, b, LogLTol) }
