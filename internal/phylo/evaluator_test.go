package phylo

import (
	"fmt"
	"testing"

	"lattice/internal/sim"
)

func poolFixture(t *testing.T, seed int64, ntaxa, nsites int) (*PatternData, *Model, *SiteRates, *Tree) {
	t.Helper()
	rng := sim.NewRNG(seed)
	model, err := NewGTR([6]float64{1.1, 3.2, 0.8, 1.3, 4.0, 1}, []float64{0.28, 0.22, 0.26, 0.24})
	if err != nil {
		t.Fatal(err)
	}
	rates, err := NewSiteRates(RateGamma, 0.6, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	tree := RandomTree(TaxonNames(ntaxa), 0.1, rng)
	al, err := SimulateAlignment(tree, model, rates, nsites, rng)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := al.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return pd, model, rates, tree
}

func TestEvaluatorPoolValidation(t *testing.T) {
	factory := func() (Evaluator, error) { return nil, fmt.Errorf("boom") }
	if _, err := NewEvaluatorPool(0, factory); err == nil {
		t.Error("expected error for zero workers")
	}
	if _, err := NewEvaluatorPool(2, nil); err == nil {
		t.Error("expected error for nil factory")
	}
	if _, err := NewEvaluatorPool(2, factory); err == nil {
		t.Error("expected factory error to propagate")
	}
	nilFactory := func() (Evaluator, error) { return nil, nil }
	if _, err := NewEvaluatorPool(1, nilFactory); err == nil {
		t.Error("expected error for nil evaluator from factory")
	}
}

// TestPoolScoreAllMatchesSerial pins the pool to the plain serial loop
// on the reference engine: same scores, bit-identical, any worker
// count, and exact work totals.
func TestPoolScoreAllMatchesSerial(t *testing.T) {
	pd, model, rates, tree := poolFixture(t, 61, 10, 200)
	rng := sim.NewRNG(4)
	trees := make([]*Tree, 16)
	for i := range trees {
		trees[i] = tree.Clone()
		perturbBranches(trees[i], rng)
	}
	serial, err := NewLikelihood(pd, model, rates)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(trees))
	for i, tr := range trees {
		want[i] = serial.LogLikelihood(tr)
	}
	for _, workers := range []int{1, 3, 7} {
		pool, err := NewEvaluatorPool(workers, func() (Evaluator, error) {
			return NewLikelihood(pd, model, rates)
		})
		if err != nil {
			t.Fatal(err)
		}
		got := pool.ScoreAll(trees)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d tree %d: pool %v != serial %v", workers, i, got[i], want[i])
			}
		}
		if pool.TotalWork() != serial.Work {
			t.Errorf("workers=%d: pool work %v != serial work %v", workers, pool.TotalWork(), serial.Work)
		}
		// InvalidateAll must be a safe no-op on non-incremental engines.
		pool.InvalidateAll()
	}
}

func TestPoolScoreAllEmpty(t *testing.T) {
	pd, model, rates, _ := poolFixture(t, 67, 6, 100)
	pool, err := NewEvaluatorPool(2, func() (Evaluator, error) {
		return NewLikelihood(pd, model, rates)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.ScoreAll(nil); len(got) != 0 {
		t.Errorf("scoring no trees returned %d scores", len(got))
	}
}

func TestSearchParallelValidation(t *testing.T) {
	cfg := DefaultSearchConfig()
	if _, err := SearchParallel(nil, TaxonNames(4), cfg, sim.NewRNG(1)); err == nil {
		t.Error("expected error for nil pool")
	}
}
