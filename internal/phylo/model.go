package phylo

import (
	"fmt"
	"strings"
)

// Model is a reversible continuous-time Markov substitution model over
// the state space of one DataType, normalized so branch lengths are
// expected substitutions per site.
type Model struct {
	Name   string
	Type   DataType
	Freqs  []float64
	eigen  *EigenSystem
	params map[string]float64
}

// Eigen exposes the spectral decomposition used to build transition
// matrices.
func (m *Model) Eigen() *EigenSystem { return m.eigen }

// Param returns a named model parameter (e.g. "kappa", "omega") and
// whether it is set.
func (m *Model) Param(name string) (float64, bool) {
	v, ok := m.params[name]
	return v, ok
}

// newModelFromRates builds a normalized reversible model from
// symmetric exchangeabilities rates (only the upper triangle is read)
// and stationary frequencies.
func newModelFromRates(name string, dt DataType, rates *Matrix, freqs []float64, params map[string]float64) (*Model, error) {
	n := dt.NumStates()
	if rates.N != n || len(freqs) != n {
		return nil, fmt.Errorf("phylo: model %s: dimension mismatch (rates %d, freqs %d, states %d)", name, rates.N, len(freqs), n)
	}
	var fsum float64
	for _, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("phylo: model %s: non-positive state frequency", name)
		}
		fsum += f
	}
	pi := make([]float64, n)
	for i, f := range freqs {
		pi[i] = f / fsum
	}
	q := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r := rates.At(i, j)
			if j < i {
				r = rates.At(j, i)
			}
			if r < 0 {
				return nil, fmt.Errorf("phylo: model %s: negative exchangeability at (%d,%d)", name, i, j)
			}
			q.Set(i, j, r*pi[j])
		}
	}
	// Diagonal and normalization to one expected substitution per
	// unit time: sum_i pi_i * (-q_ii) = 1.
	var mu float64
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			if i != j {
				row += q.At(i, j)
			}
		}
		q.Set(i, i, -row)
		mu += pi[i] * row
	}
	if mu <= 0 {
		return nil, fmt.Errorf("phylo: model %s: degenerate rate matrix", name)
	}
	for i := range q.Data {
		q.Data[i] /= mu
	}
	es, err := NewEigenSystem(q, pi)
	if err != nil {
		return nil, fmt.Errorf("phylo: model %s: %w", name, err)
	}
	if params == nil {
		params = map[string]float64{}
	}
	return &Model{Name: name, Type: dt, Freqs: pi, eigen: es, params: params}, nil
}

// RateHetKind names the among-site rate heterogeneity treatment. It is
// the single most important predictor of GARLI runtime in the paper's
// random forest model (89.7% increase in MSE when permuted).
type RateHetKind int

const (
	// RateHomogeneous: every site evolves at the same rate (one
	// likelihood pass per site pattern).
	RateHomogeneous RateHetKind = iota
	// RateGamma: discrete-gamma distributed rates (NumCats passes).
	RateGamma
	// RateGammaInv: discrete gamma plus a proportion of invariant
	// sites (NumCats + 1 mixture components).
	RateGammaInv
)

func (k RateHetKind) String() string {
	switch k {
	case RateHomogeneous:
		return "none"
	case RateGamma:
		return "gamma"
	case RateGammaInv:
		return "gamma+inv"
	default:
		return fmt.Sprintf("RateHetKind(%d)", int(k))
	}
}

// ParseRateHetKind parses the portal's rate-heterogeneity choice.
func ParseRateHetKind(s string) (RateHetKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none", "equal", "norate":
		return RateHomogeneous, nil
	case "gamma", "g":
		return RateGamma, nil
	case "gamma+inv", "gammainv", "invgamma", "g+i", "gamma+invariant":
		return RateGammaInv, nil
	default:
		return 0, fmt.Errorf("phylo: unknown rate heterogeneity model %q", s)
	}
}

// SiteRates is the realized rate mixture: per-category rate
// multipliers and their probabilities.
type SiteRates struct {
	Kind    RateHetKind
	Shape   float64 // gamma shape alpha (ignored for RateHomogeneous)
	PropInv float64 // proportion of invariant sites (RateGammaInv)
	Rates   []float64
	Weights []float64
}

// NewSiteRates constructs the rate mixture for the given treatment.
// numCats is the number of discrete gamma categories (GARLI default 4)
// and is ignored for the homogeneous model.
func NewSiteRates(kind RateHetKind, shape float64, propInv float64, numCats int) (*SiteRates, error) {
	switch kind {
	case RateHomogeneous:
		return &SiteRates{Kind: kind, Rates: []float64{1}, Weights: []float64{1}}, nil
	case RateGamma, RateGammaInv:
		if shape <= 0 {
			return nil, fmt.Errorf("phylo: gamma shape must be positive, got %g", shape)
		}
		if numCats < 1 {
			return nil, fmt.Errorf("phylo: need at least 1 rate category, got %d", numCats)
		}
		sr := &SiteRates{Kind: kind, Shape: shape}
		gr := DiscreteGammaRates(shape, numCats)
		if kind == RateGamma {
			sr.Rates = gr
			sr.Weights = make([]float64, numCats)
			for i := range sr.Weights {
				sr.Weights[i] = 1 / float64(numCats)
			}
			return sr, nil
		}
		if propInv < 0 || propInv >= 1 {
			return nil, fmt.Errorf("phylo: proportion invariant must be in [0,1), got %g", propInv)
		}
		sr.PropInv = propInv
		// Mixture: invariant class at rate 0, gamma classes scaled
		// so the overall mean rate is 1.
		scale := 1 / (1 - propInv)
		sr.Rates = append([]float64{0}, gr...)
		sr.Weights = append([]float64{propInv}, nil...)
		for i := 1; i < len(sr.Rates); i++ {
			sr.Rates[i] *= scale
			sr.Weights = append(sr.Weights, (1-propInv)/float64(numCats))
		}
		return sr, nil
	default:
		return nil, fmt.Errorf("phylo: unknown rate heterogeneity kind %v", kind)
	}
}

// NumCats returns the number of mixture components (including the
// invariant class if present).
func (sr *SiteRates) NumCats() int { return len(sr.Rates) }
