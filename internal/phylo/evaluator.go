package phylo

import (
	"fmt"
	"sync"
)

// Evaluator abstracts a tree log-likelihood engine: the single-model
// Likelihood, PartitionedLikelihood, and optimized backends
// (internal/beagle) all satisfy it, so the GA search runs unchanged on
// any of them.
type Evaluator interface {
	// LogLikelihood evaluates the data on tree t.
	LogLikelihood(t *Tree) float64
	// OptimizeBranch refines the branch above n and returns the
	// achieved log-likelihood.
	OptimizeBranch(t *Tree, n *Node, iterations int) float64
	// TotalWork reports the cumulative evaluation cost in cell
	// updates.
	TotalWork() float64
}

// IncrementalEvaluator is an Evaluator that caches per-node state
// between evaluations (internal/beagle's incremental re-evaluation).
// Such caches are self-validating against tree mutations; InvalidateAll
// is the explicit escape hatch for anything the engine cannot observe —
// swapping the underlying data or re-parameterizing the model in place.
type IncrementalEvaluator interface {
	Evaluator
	// InvalidateAll drops all cached per-node state, forcing the next
	// evaluation to recompute from scratch.
	InvalidateAll()
}

// EvaluatorFactory constructs one evaluator instance. A pool calls it
// once per worker, because engines own mutable scratch buffers and are
// not safe for concurrent use.
type EvaluatorFactory func() (Evaluator, error)

// WarmStarter is an Evaluator that can pre-warm its internal caches
// from an already-warm sibling engine — sharing read-only state (the
// beagle engine shares its cached transition matrices and tip tables)
// so pool workers do not each pay the cold-start cost the parent
// already paid. WarmStart must be called before the evaluator is used
// concurrently with the parent; shared state must be immutable
// afterwards. Warm-starting never changes results, only speed.
type WarmStarter interface {
	WarmStart(parent Evaluator)
}

// EvaluatorPool owns one evaluator per worker goroutine and scores
// batches of trees concurrently. Results are bit-deterministic for a
// given input regardless of worker count: each tree's score depends
// only on its own content (engines recompute anything their cache
// can't prove current, and reuse is bit-identical to recomputation),
// and scores land in the output slice by tree index, never by
// completion order — the same discipline as forest.Train.
type EvaluatorPool struct {
	evs []Evaluator
}

// NewEvaluatorPool builds a pool of `workers` evaluators. The factory
// runs serially, so factories that share an RNG or other mutable state
// behave deterministically.
func NewEvaluatorPool(workers int, factory EvaluatorFactory) (*EvaluatorPool, error) {
	if workers < 1 {
		return nil, fmt.Errorf("phylo: pool needs >= 1 worker, got %d", workers)
	}
	if factory == nil {
		return nil, fmt.Errorf("phylo: nil evaluator factory")
	}
	p := &EvaluatorPool{evs: make([]Evaluator, workers)}
	for i := range p.evs {
		ev, err := factory()
		if err != nil {
			return nil, fmt.Errorf("phylo: pool worker %d: %w", i, err)
		}
		if ev == nil {
			return nil, fmt.Errorf("phylo: pool worker %d: factory returned nil", i)
		}
		p.evs[i] = ev
	}
	// Workers 1..n share worker 0's immutable model state (eigen
	// decomposition, cached transition matrices) when the engine
	// supports it, so a pool does not pay the cold-start cost once per
	// worker.
	for i := 1; i < len(p.evs); i++ {
		if ws, ok := p.evs[i].(WarmStarter); ok {
			ws.WarmStart(p.evs[0])
		}
	}
	return p, nil
}

// WarmStart pre-warms every worker engine from an external, already
// warm parent evaluator (typically the engine that built or previously
// scored the trees about to be fanned out). Engines that do not
// implement WarmStarter are skipped. The parent must not be evaluated
// concurrently with the call.
func (p *EvaluatorPool) WarmStart(parent Evaluator) {
	for _, ev := range p.evs {
		if ws, ok := ev.(WarmStarter); ok && ev != parent {
			ws.WarmStart(parent)
		}
	}
}

// Workers returns the pool size.
func (p *EvaluatorPool) Workers() int { return len(p.evs) }

// Evaluator returns worker w's engine for exclusive use by one
// goroutine at a time.
func (p *EvaluatorPool) Evaluator(w int) Evaluator { return p.evs[w] }

// ScoreAll evaluates every tree and returns the scores in tree order.
// Trees are split into contiguous blocks, one per worker: worker w
// always owns the same index range for a given batch size, so a tree
// that is rescored across generations keeps landing on the same engine
// and that engine's per-tree incremental caches stay hot. Each worker
// evaluates on its own engine and writes only its own output slots.
func (p *EvaluatorPool) ScoreAll(trees []*Tree) []float64 {
	out := make([]float64, len(trees))
	if len(trees) == 0 {
		return out
	}
	workers := len(p.evs)
	if workers > len(trees) {
		workers = len(trees)
	}
	if workers <= 1 {
		for i, t := range trees {
			out[i] = p.evs[0].LogLikelihood(t)
		}
		return out
	}
	chunk := (len(trees) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(trees) {
			hi = len(trees)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(ev Evaluator, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = ev.LogLikelihood(trees[i])
			}
		}(p.evs[w], lo, hi)
	}
	wg.Wait()
	return out
}

// TotalWork sums the workers' evaluation costs in worker order. Work
// is counted in integer-valued cell updates, so the sum is exact and
// identical no matter how the scheduler distributed the trees.
func (p *EvaluatorPool) TotalWork() float64 {
	var w float64
	for _, ev := range p.evs {
		w += ev.TotalWork()
	}
	return w
}

// InvalidateAll drops cached per-node state on every worker engine
// that keeps any.
func (p *EvaluatorPool) InvalidateAll() {
	for _, ev := range p.evs {
		if inc, ok := ev.(IncrementalEvaluator); ok {
			inc.InvalidateAll()
		}
	}
}
