package phylo

import (
	"sort"
	"testing"
	"testing/quick"

	"lattice/internal/sim"
)

func taxonSet(t *Tree) []int {
	var out []int
	for _, l := range t.Leaves() {
		out = append(out, l.Taxon)
	}
	sort.Ints(out)
	return out
}

func TestNewickRoundTrip(t *testing.T) {
	cases := []string{
		"((a:0.1,b:0.2):0.05,c:0.3,d:0.15);",
		"(a:1,b:2,(c:3,(d:4,e:5):0.5):0.25);",
	}
	for _, in := range cases {
		tr, err := ParseNewick(in, nil)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		out := tr.Newick()
		tr2, err := ParseNewick(out, nil)
		if err != nil {
			t.Fatalf("reparse %q: %v", out, err)
		}
		if tr2.Newick() != out {
			t.Errorf("round trip unstable: %q → %q", out, tr2.Newick())
		}
	}
}

func TestNewickQuotedNames(t *testing.T) {
	tr, err := ParseNewick("('taxon one':0.1,'it''s':0.2,c:0.3);", nil)
	if err != nil {
		t.Fatal(err)
	}
	leaves := tr.Leaves()
	if leaves[0].Name != "taxon one" || leaves[1].Name != "it's" {
		t.Errorf("quoted names parsed as %q, %q", leaves[0].Name, leaves[1].Name)
	}
	// Round trip preserves quoting.
	tr2, err := ParseNewick(tr.Newick(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Leaves()[1].Name != "it's" {
		t.Errorf("requoted name = %q", tr2.Leaves()[1].Name)
	}
}

func TestNewickTaxonIndexLookup(t *testing.T) {
	idx := map[string]int{"x": 5, "y": 2, "z": 9}
	tr, err := ParseNewick("(x:1,y:1,z:1);", idx)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range tr.Leaves() {
		if l.Taxon != idx[l.Name] {
			t.Errorf("taxon %q index %d, want %d", l.Name, l.Taxon, idx[l.Name])
		}
	}
	if _, err := ParseNewick("(x:1,y:1,w:1);", idx); err == nil {
		t.Error("expected error for unknown taxon")
	}
}

func TestNewickErrors(t *testing.T) {
	bad := []string{
		"((a,b);",
		"(a:x,b:1,c:1);",
		"(a,b,c); trailing",
		"(,b,c);",
	}
	for _, in := range bad {
		if _, err := ParseNewick(in, nil); err == nil {
			t.Errorf("expected parse error for %q", in)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	tr, _ := ParseNewick("((a:0.1,b:0.2):0.05,c:0.3,d:0.15);", nil)
	cp := tr.Clone()
	cp.Root.Children[0].Length = 99
	if tr.Root.Children[0].Length == 99 {
		t.Error("clone shares nodes with original")
	}
	if err := cp.Check(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
	if cp.Newick() == "" || tr.NumTaxa() != cp.NumTaxa() {
		t.Error("clone structurally different")
	}
}

func TestRandomTreeValid(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, n := range []int{3, 4, 8, 25} {
		tr := RandomTree(TaxonNames(n), 0.1, rng)
		if err := tr.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.NumTaxa() != n {
			t.Fatalf("n=%d: got %d taxa", n, tr.NumTaxa())
		}
		if len(tr.Root.Children) != 3 {
			t.Errorf("n=%d: root degree %d, want 3", n, len(tr.Root.Children))
		}
	}
}

func TestNNIPreservesTaxa(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		tr := RandomTree(TaxonNames(4+rng.Intn(12)), 0.1, rng)
		want := taxonSet(tr)
		for i := 0; i < 5; i++ {
			tr.NNI(rng)
		}
		if err := tr.Check(); err != nil {
			return false
		}
		got := taxonSet(tr)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSPRPreservesTaxa(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		tr := RandomTree(TaxonNames(5+rng.Intn(12)), 0.1, rng)
		want := taxonSet(tr)
		for i := 0; i < 5; i++ {
			tr.SPR(3, rng)
		}
		if err := tr.Check(); err != nil {
			return false
		}
		got := taxonSet(tr)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNNIChangesTopology(t *testing.T) {
	rng := sim.NewRNG(17)
	tr := RandomTree(TaxonNames(10), 0.1, rng)
	changed := false
	for i := 0; i < 10 && !changed; i++ {
		cp := tr.Clone()
		cp.NNI(rng)
		if tr.RFDistance(cp) > 0 {
			changed = true
		}
	}
	if !changed {
		t.Error("10 NNI moves never changed the topology")
	}
}

func TestBipartitionsAndRFDistance(t *testing.T) {
	idx := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3, "e": 4}
	t1, _ := ParseNewick("((a:1,b:1):1,(c:1,d:1):1,e:1);", idx)
	t2, _ := ParseNewick("((a:1,c:1):1,(b:1,d:1):1,e:1);", idx)
	if d := t1.RFDistance(t1.Clone()); d != 0 {
		t.Errorf("self RF distance = %d", d)
	}
	if d := t1.RFDistance(t2); d != 4 {
		t.Errorf("RF distance = %d, want 4", d)
	}
	bp := t1.Bipartitions()
	if len(bp) != 2 {
		t.Errorf("5-taxon binary tree should have 2 non-trivial splits, got %d", len(bp))
	}
}

func TestRFDistanceInvariantToRooting(t *testing.T) {
	idx := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	t1, _ := ParseNewick("((a:1,b:1):1,c:1,d:1);", idx)
	t2, _ := ParseNewick("((c:1,d:1):1,a:1,b:1);", idx)
	if d := t1.RFDistance(t2); d != 0 {
		t.Errorf("same unrooted tree has RF distance %d", d)
	}
}

func TestTotalLength(t *testing.T) {
	tr, _ := ParseNewick("((a:0.1,b:0.2):0.05,c:0.3,d:0.15);", nil)
	if got := tr.TotalLength(); !almostEqual(got, 0.8, 1e-12) {
		t.Errorf("TotalLength = %v, want 0.8", got)
	}
}

func TestStepwiseVsRandomStartQuality(t *testing.T) {
	// A stepwise-addition starting tree should fit the data at least
	// as well as a random one (this is its entire purpose, and the
	// reason attachmentspertaxon costs runtime).
	rng := sim.NewRNG(5)
	m, _ := NewJC69()
	rs, _ := NewSiteRates(RateHomogeneous, 0, 0, 1)
	names := TaxonNames(10)
	truth := RandomTree(names, 0.15, rng)
	al, err := SimulateAlignment(truth, m, rs, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	pd, _ := al.Compile()
	lk, _ := NewLikelihood(pd, m, rs)
	cfg := DefaultSearchConfig()
	cfg.AttachmentsPerTaxon = 8
	step := stepwiseAdditionTree(lk, nil, al.Names, cfg, rng)
	if err := step.Check(); err != nil {
		t.Fatal(err)
	}
	lStep := lk.LogLikelihood(step)
	var lRandBest float64 = negInf
	for i := 0; i < 3; i++ {
		r := RandomTree(al.Names, 0.05, rng)
		if l := lk.LogLikelihood(r); l > lRandBest {
			lRandBest = l
		}
	}
	if lStep < lRandBest {
		t.Errorf("stepwise tree (%.2f) worse than best random (%.2f)", lStep, lRandBest)
	}
}
