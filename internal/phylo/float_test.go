package phylo

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1.0, 1.0, 1e-9, true},
		{1.0, 1.0 + 1e-12, 1e-9, true},              // within relative tolerance
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true},      // large magnitudes: relative
		{1e-15, -1e-15, 1e-9, true},                 // near zero: absolute
		{1.0, 1.001, 1e-9, false},                   // clearly different
		{math.NaN(), math.NaN(), 1e-9, false},       // NaN equals nothing
		{math.NaN(), 1.0, 1e-9, false},              //
		{math.Inf(1), math.Inf(1), 1e-9, true},      // same infinity
		{math.Inf(1), math.Inf(-1), 1e-9, false},    // opposite infinities
		{math.Inf(1), math.MaxFloat64, 1e-9, false}, // infinity vs finite
	}
	for i, tc := range cases {
		if got := AlmostEqual(tc.a, tc.b, tc.tol); got != tc.want {
			t.Errorf("case %d: AlmostEqual(%v, %v, %v) = %v, want %v", i, tc.a, tc.b, tc.tol, got, tc.want)
		}
	}
}

func TestSameLogL(t *testing.T) {
	if !SameLogL(-12345.678901234, -12345.678901234) {
		t.Error("identical log-likelihoods must compare equal")
	}
	// Perturbation far below the relative tolerance at this magnitude.
	if !SameLogL(-12345.678901234, -12345.678901234*(1+1e-13)) {
		t.Error("sub-tolerance perturbation must compare equal")
	}
	if SameLogL(-12345.678, -12345.679) {
		t.Error("distinct tree scores must not compare equal")
	}
}
