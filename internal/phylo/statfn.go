package phylo

import "math"

// Special functions needed by the discrete-gamma model of
// among-site rate heterogeneity (Yang 1994): the regularized lower
// incomplete gamma function and its inverse (gamma quantiles).

// lowerIncompleteGammaP returns the regularized lower incomplete gamma
// function P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
func lowerIncompleteGammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a, x) by its power series; good for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a, x) = 1 - P(a, x) by the
// Lentz continued fraction; good for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// gammaQuantile returns x such that P(shape, x/scale) = p, i.e. the
// inverse CDF of a Gamma(shape, scale) distribution, via a
// Wilson–Hilferty starting point refined by Newton iterations.
func gammaQuantile(p, shape, scale float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Wilson–Hilferty approximation for the chi-square quantile.
	z := normalQuantile(p)
	t := 1 - 2.0/(9*shape) + z*math.Sqrt(2.0/(9*shape))
	x := shape * t * t * t
	if x <= 0 {
		x = math.SmallestNonzeroFloat64
	}
	lg, _ := math.Lgamma(shape)
	for i := 0; i < 60; i++ {
		f := lowerIncompleteGammaP(shape, x) - p
		// Density of Gamma(shape, 1) at x.
		logpdf := (shape-1)*math.Log(x) - x - lg
		pdf := math.Exp(logpdf)
		if pdf <= 0 {
			break
		}
		step := f / pdf
		// Damp to stay positive.
		for x-step <= 0 {
			step /= 2
		}
		x -= step
		if math.Abs(step) < 1e-12*x {
			break
		}
	}
	return x * scale
}

// normalQuantile returns the standard normal quantile via the
// Acklam rational approximation; |error| < 1.15e-9, ample for
// constructing gamma rate categories.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// DiscreteGammaRates returns k mean-centred rate multipliers for the
// discrete-gamma model of among-site rate variation with shape alpha
// (Yang 1994, "median" replaced by the exact category means). The
// returned rates average to 1 so the expected substitution rate is
// unchanged.
func DiscreteGammaRates(alpha float64, k int) []float64 {
	if k <= 0 {
		panic("phylo: DiscreteGammaRates with k <= 0")
	}
	rates := make([]float64, k)
	if k == 1 {
		rates[0] = 1
		return rates
	}
	// Category boundaries: quantiles of Gamma(alpha, 1/alpha).
	bounds := make([]float64, k+1)
	bounds[0] = 0
	bounds[k] = math.Inf(1)
	for i := 1; i < k; i++ {
		bounds[i] = gammaQuantile(float64(i)/float64(k), alpha, 1/alpha)
	}
	// Mean within each category:
	// E[X | a<X<b] ∝ P(alpha+1, b*alpha) - P(alpha+1, a*alpha).
	var sum float64
	for i := 0; i < k; i++ {
		lo, hi := bounds[i], bounds[i+1]
		var phi float64
		if math.IsInf(hi, 1) {
			phi = 1
		} else {
			phi = lowerIncompleteGammaP(alpha+1, hi*alpha)
		}
		plo := lowerIncompleteGammaP(alpha+1, lo*alpha)
		rates[i] = (phi - plo) * float64(k)
		sum += rates[i]
	}
	// Normalize to mean exactly 1 against accumulated rounding.
	inv := float64(k) / sum
	for i := range rates {
		rates[i] *= inv
	}
	return rates
}
