package phylo

import (
	"fmt"
	"math"
)

// Likelihood evaluates tree log-likelihoods under a model and a rate
// mixture using Felsenstein's pruning algorithm with per-node
// numerical rescaling.
//
// Every evaluation accrues into Work an abstract cost in "cell
// updates" (one state×state product-sum). This is the quantity the
// grid simulators consume: a job's runtime on a resource is its
// accumulated Work divided by the resource's effective rate, so
// heavier models (more states, more rate categories, more patterns)
// genuinely take longer — the same physics the paper's random forest
// model learns from real GARLI runs.
type Likelihood struct {
	Data  *PatternData
	Model *Model
	Rates *SiteRates

	// Work is the total cost accrued by evaluations, in cell updates.
	Work float64

	nStates int
	nCats   int
	// Scratch buffers reused across evaluations, keyed by node ID.
	partials [][]float64 // [node][pat*cats*states]
	scales   [][]float64 // [node][pat] log scaling factor
	pmats    []*Matrix   // per-category transition matrix scratch
}

// NewLikelihood pairs compiled data with a model and rate mixture.
func NewLikelihood(data *PatternData, model *Model, rates *SiteRates) (*Likelihood, error) {
	if data.Type != model.Type {
		return nil, fmt.Errorf("phylo: data type %v does not match model type %v", data.Type, model.Type)
	}
	if rates == nil {
		var err error
		rates, err = NewSiteRates(RateHomogeneous, 0, 0, 1)
		if err != nil {
			return nil, err
		}
	}
	lk := &Likelihood{
		Data:    data,
		Model:   model,
		Rates:   rates,
		nStates: model.Type.NumStates(),
		nCats:   rates.NumCats(),
	}
	lk.pmats = make([]*Matrix, lk.nCats)
	for i := range lk.pmats {
		lk.pmats[i] = NewMatrix(lk.nStates)
	}
	return lk, nil
}

// ensureBuffers sizes the per-node scratch space for a tree.
func (lk *Likelihood) ensureBuffers(n int) {
	for len(lk.partials) < n {
		lk.partials = append(lk.partials, nil)
		lk.scales = append(lk.scales, nil)
	}
	size := lk.Data.NumPatterns() * lk.nCats * lk.nStates
	for i := 0; i < n; i++ {
		if len(lk.partials[i]) != size {
			lk.partials[i] = make([]float64, size)
			lk.scales[i] = make([]float64, lk.Data.NumPatterns())
		}
	}
}

// LogLikelihood computes the log-likelihood of the data on tree t.
// The tree's leaf Taxon indices must address rows of the compiled
// alignment.
func (lk *Likelihood) LogLikelihood(t *Tree) float64 {
	npat := lk.Data.NumPatterns()
	S := lk.nStates
	C := lk.nCats
	lk.ensureBuffers(len(t.Nodes))

	t.PostOrder(func(n *Node) {
		part := lk.partials[n.ID]
		scale := lk.scales[n.ID]
		for i := range scale {
			scale[i] = 0
		}
		if n.IsLeaf() {
			lk.fillLeaf(part, n.Taxon)
			return
		}
		for i := range part {
			part[i] = 1
		}
		for _, child := range n.Children {
			// Build per-category transition matrices for this edge.
			for c := 0; c < C; c++ {
				lk.Model.Eigen().TransitionMatrix(child.Length*lk.Rates.Rates[c], lk.pmats[c])
			}
			lk.Work += float64(C) * float64(S) * float64(S) // matrix build (amortized S³/S² per pattern-free edge work)
			cpart := lk.partials[child.ID]
			cscale := lk.scales[child.ID]
			for p := 0; p < npat; p++ {
				scale[p] += cscale[p]
				for c := 0; c < C; c++ {
					pm := lk.pmats[c].Data
					base := (p*C + c) * S
					for s := 0; s < S; s++ {
						var sum float64
						row := pm[s*S : (s+1)*S]
						cvec := cpart[base : base+S]
						for x := 0; x < S; x++ {
							sum += row[x] * cvec[x]
						}
						part[base+s] *= sum
					}
				}
			}
			lk.Work += float64(npat) * float64(C) * float64(S) * float64(S)
		}
		// Rescale to avoid underflow on deep trees.
		for p := 0; p < npat; p++ {
			maxv := 0.0
			base := p * C * S
			for i := base; i < base+C*S; i++ {
				if part[i] > maxv {
					maxv = part[i]
				}
			}
			if maxv > 0 && maxv < 1e-100 {
				inv := 1 / maxv
				for i := base; i < base+C*S; i++ {
					part[i] *= inv
				}
				scale[p] += math.Log(maxv)
			}
		}
	})

	root := lk.partials[t.Root.ID]
	rscale := lk.scales[t.Root.ID]
	pi := lk.Model.Freqs
	var logL float64
	for p := 0; p < npat; p++ {
		var site float64
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			var cat float64
			for s := 0; s < S; s++ {
				cat += pi[s] * root[base+s]
			}
			site += lk.Rates.Weights[c] * cat
		}
		if site <= 0 {
			site = math.SmallestNonzeroFloat64
		}
		logL += lk.Data.Weights[p] * (math.Log(site) + rscale[p])
	}
	return logL
}

// fillLeaf writes the tip conditional likelihoods for taxon into part:
// an indicator vector for observed states, all ones for missing data.
func (lk *Likelihood) fillLeaf(part []float64, taxon int) {
	npat := lk.Data.NumPatterns()
	S := lk.nStates
	C := lk.nCats
	nt := lk.Data.NumTaxa
	for p := 0; p < npat; p++ {
		st := lk.Data.States[p*nt+taxon]
		for c := 0; c < C; c++ {
			base := (p*C + c) * S
			if st < 0 {
				for s := 0; s < S; s++ {
					part[base+s] = 1
				}
			} else {
				for s := 0; s < S; s++ {
					part[base+s] = 0
				}
				part[base+int(st)] = 1
			}
		}
	}
}

// EvalCost returns the expected Work of a single LogLikelihood call on
// a tree with the given number of taxa — used by the workload model to
// reason about cost without running a search.
func EvalCost(npatterns, ntaxa, nstates, ncats int) float64 {
	// A binary unrooted tree over n taxa has 2n-3 edges; each edge
	// costs npat*C*S^2 plus a C*S^2 matrix build.
	edges := float64(2*ntaxa - 3)
	per := float64(ncats) * float64(nstates) * float64(nstates)
	return edges * per * (float64(npatterns) + 1)
}

// OptimizeBranch improves the length of the branch above node n by
// golden-section search on the full tree likelihood, over a local
// bracket around the current length (widened geometrically so a few
// iterations refine rather than scramble the branch). It returns the
// achieved log-likelihood and never leaves the branch worse than it
// started. This is the simple, robust branch optimizer the GA applies
// to mutated branches; cost accrues to Work through the repeated
// evaluations exactly as GARLI's Newton–Raphson passes do.
func (lk *Likelihood) OptimizeBranch(t *Tree, n *Node, iterations int) float64 {
	return optimizeBranch(lk, t, n, iterations)
}

// optimizeBranch is the shared golden-section branch optimizer used by
// every Evaluator implementation.
func optimizeBranch(ev Evaluator, t *Tree, n *Node, iterations int) float64 {
	const (
		minLen = 1e-8
		maxLen = 10.0
		phi    = 0.6180339887498949
	)
	if n.Parent == nil {
		return ev.LogLikelihood(t)
	}
	start := n.Length
	if start < minLen {
		start = minLen
	}
	f0 := ev.LogLikelihood(t)
	eval := func(x float64) float64 {
		n.Length = x
		return ev.LogLikelihood(t)
	}
	// Coarse geometric scan to find the right magnitude, then a local
	// golden-section refinement around the winner. The scan protects
	// against wildly mis-set branches after topology surgery.
	center, fc := start, f0
	for _, x := range [...]float64{0.002, 0.02, 0.1, 0.5, 2} {
		if f := eval(x); f > fc {
			center, fc = x, f
		}
	}
	a := center / 8
	b := center * 8
	if a < minLen {
		a = minLen
	}
	if b > maxLen {
		b = maxLen
	}
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := eval(x1), eval(x2)
	for i := 0; i < iterations; i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = eval(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = eval(x1)
		}
	}
	bestX, bestF := x1, f1
	if f2 > bestF {
		bestX, bestF = x2, f2
	}
	if f0 > bestF {
		// Keep the original length if the bracket never beat it.
		n.Length = start
		return f0
	}
	n.Length = bestX
	return bestF
}

// TotalWork implements Evaluator.
func (lk *Likelihood) TotalWork() float64 { return lk.Work }
