package phylo

import (
	"bytes"
	"strings"
	"testing"
)

func runnerFixture(t *testing.T) (*searchFixture, SearchConfig) {
	fx := newSearchFixture(t, 7, 300, 900)
	cfg := quickConfig()
	cfg.SearchReps = 1
	return fx, cfg
}

func TestRunnerCompletes(t *testing.T) {
	fx, cfg := runnerFixture(t)
	r, err := NewRunner(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !r.Step(10) {
		steps++
		if steps > 1000 {
			t.Fatal("runner never terminated")
		}
	}
	tree, logL := r.Best()
	if tree == nil || logL >= 0 {
		t.Fatalf("bad result: %v %v", tree, logL)
	}
	if !r.Done() {
		t.Error("Done() false after completion")
	}
	if r.Work() <= 0 {
		t.Error("no work recorded")
	}
}

func TestRunnerProgressMonotonic(t *testing.T) {
	fx, cfg := runnerFixture(t)
	r, err := NewRunner(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	last := r.Progress()
	if last < 0 || last > 1 {
		t.Fatalf("initial progress %v", last)
	}
	for !r.Step(5) {
		p := r.Progress()
		if p < last {
			t.Fatalf("progress went backward: %v → %v", last, p)
		}
		last = p
	}
	if r.Progress() < last {
		t.Error("final progress below last observed")
	}
}

func TestCheckpointSaveLoadResume(t *testing.T) {
	fx, cfg := runnerFixture(t)
	r, err := NewRunner(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	r.Step(15)
	genAtSave := r.Generation()
	_, logLAtSave := r.Best()
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}

	r2, err := LoadRunner(&buf, fx.pd, fx.model, fx.rates, fx.al.Names, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Generation() != genAtSave {
		t.Errorf("restored generation %d, want %d", r2.Generation(), genAtSave)
	}
	_, logL2 := r2.Best()
	if !almostEqual(logL2, logLAtSave, 1e-9) {
		t.Errorf("restored best logL %v, want %v", logL2, logLAtSave)
	}
	for !r2.Step(20) {
	}
	_, final := r2.Best()
	if final < logLAtSave-1e-9 {
		t.Errorf("resumed search got worse: %v < %v", final, logLAtSave)
	}
}

func TestCheckpointDeterministicResume(t *testing.T) {
	fx, cfg := runnerFixture(t)
	r, err := NewRunner(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	r.Step(10)
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	finish := func() (float64, string) {
		rr, err := LoadRunner(strings.NewReader(saved), fx.pd, fx.model, fx.rates, fx.al.Names, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for !rr.Step(50) {
		}
		tree, logL := rr.Best()
		return logL, tree.Newick()
	}
	l1, n1 := finish()
	l2, n2 := finish()
	if l1 != l2 || n1 != n2 {
		t.Error("two resumes from the same checkpoint diverged")
	}
}

func TestCheckpointCorruptInputs(t *testing.T) {
	fx, cfg := runnerFixture(t)
	cases := []string{
		"",
		"{}",
		`{"version": 99, "trees": ["(a,b,c);"], "logls": [1]}`,
		`{"version": 1, "trees": ["(a,b,c);"], "logls": []}`,
		`{"version": 1, "trees": ["((("], "logls": [1]}`,
	}
	for _, in := range cases {
		if _, err := LoadRunner(strings.NewReader(in), fx.pd, fx.model, fx.rates, fx.al.Names, cfg); err == nil {
			t.Errorf("expected error for checkpoint %q", in)
		}
	}
}
