package phylo

import (
	"encoding/json"
	"fmt"
	"io"

	"lattice/internal/sim"
)

// Runner is a resumable single-replicate GARLI search — the engine
// behind the special BOINC build of GARLI the paper describes, which
// adds checkpointing and client progress-bar updates so volunteer
// hosts can suspend and resume work at will.
type Runner struct {
	state     *gaState
	names     []string
	rng       *sim.RNG
	seed      int64
	highWater float64 // progress never reported lower than this
}

// NewRunner starts a resumable search on the reference Likelihood
// engine. The seed fully determines the run (and re-seeds the stream
// on resume).
func NewRunner(data *PatternData, model *Model, rates *SiteRates, names []string, cfg SearchConfig, seed int64) (*Runner, error) {
	lk, err := NewLikelihood(data, model, rates)
	if err != nil {
		return nil, err
	}
	return NewRunnerWith(lk, names, cfg, seed)
}

// NewRunnerWith starts a resumable search on any Evaluator — the
// reference Likelihood, a partitioned model, or an optimized backend
// such as internal/beagle's incremental engine. Search decisions
// depend only on the scores the evaluator returns, so any two
// evaluators that agree numerically produce bit-identical searches.
func NewRunnerWith(ev Evaluator, names []string, cfg SearchConfig, seed int64) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(seed)
	st, err := newGAState(ev, nil, names, cfg, rng)
	if err != nil {
		return nil, err
	}
	return &Runner{state: st, names: names, rng: rng, seed: seed}, nil
}

// Step advances up to n generations, stopping early at termination.
// It reports whether the search has finished.
func (r *Runner) Step(n int) bool {
	for i := 0; i < n && !r.state.done(); i++ {
		r.state.step(r.rng)
	}
	return r.state.done()
}

// Done reports whether the search has terminated.
func (r *Runner) Done() bool { return r.state.done() }

// Best returns the current best tree and its log-likelihood.
func (r *Runner) Best() (*Tree, float64) {
	return r.state.pop[0].tree, r.state.pop[0].logL
}

// Progress returns a [0, 1] completion fraction for the BOINC client
// progress bar: the larger of generations elapsed over the maximum and
// the stagnation counter's progress toward termination, reported
// monotonically (an improvement resets the stagnation counter but must
// not move the user's progress bar backward).
func (r *Runner) Progress() float64 {
	genFrac := float64(r.state.gen) / float64(r.state.cfg.MaxGenerations)
	stagFrac := float64(r.state.stagnant) / float64(r.state.cfg.StagnationGenerations)
	p := genFrac
	if stagFrac > p {
		p = stagFrac
	}
	if p > 1 {
		p = 1
	}
	if p > r.highWater {
		r.highWater = p
	}
	return r.highWater
}

// Generation returns the number of GA generations completed.
func (r *Runner) Generation() int { return r.state.gen }

// Work returns the cost accrued so far, in cell updates.
func (r *Runner) Work() float64 { return r.state.lk.TotalWork() }

// checkpointFile is the JSON snapshot written by Save.
type checkpointFile struct {
	Version    int       `json:"version"`
	Seed       int64     `json:"seed"`
	Generation int       `json:"generation"`
	Stagnant   int       `json:"stagnant"`
	Best       float64   `json:"best"`
	Evals      int       `json:"evals"`
	Trees      []string  `json:"trees"`
	LogLs      []float64 `json:"logls"`
}

// Save writes a checkpoint of the search state. Restoring with
// LoadRunner and stepping to completion yields a valid (deterministic
// per seed) search continuation.
func (r *Runner) Save(w io.Writer) error {
	cp := checkpointFile{
		Version:    1,
		Seed:       r.seed,
		Generation: r.state.gen,
		Stagnant:   r.state.stagnant,
		Best:       r.state.best,
		Evals:      r.state.evals,
	}
	for _, ind := range r.state.pop {
		cp.Trees = append(cp.Trees, ind.tree.Newick())
		cp.LogLs = append(cp.LogLs, ind.logL)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&cp)
}

// LoadRunner restores a search from a checkpoint written by Save. The
// caller supplies the same data, model, rates, names and config as the
// original run; the RNG stream is re-derived from the stored seed and
// generation count, so a resumed run is deterministic even though it
// is not draw-for-draw identical to an uninterrupted one (GARLI's own
// checkpoints have the same property).
func LoadRunner(src io.Reader, data *PatternData, model *Model, rates *SiteRates, names []string, cfg SearchConfig) (*Runner, error) {
	lk, err := NewLikelihood(data, model, rates)
	if err != nil {
		return nil, err
	}
	return LoadRunnerWith(src, lk, names, cfg)
}

// LoadRunnerWith restores a search from a checkpoint written by Save
// onto any Evaluator, exactly as LoadRunner does onto the reference
// engine. A checkpoint written under one evaluator restores under
// another: the population travels as Newick strings plus scores, and
// evaluators carry no search state of their own.
func LoadRunnerWith(src io.Reader, ev Evaluator, names []string, cfg SearchConfig) (*Runner, error) {
	var cp checkpointFile
	if err := json.NewDecoder(src).Decode(&cp); err != nil {
		return nil, fmt.Errorf("phylo: reading checkpoint: %w", err)
	}
	if cp.Version != 1 {
		return nil, fmt.Errorf("phylo: unsupported checkpoint version %d", cp.Version)
	}
	if len(cp.Trees) == 0 || len(cp.Trees) != len(cp.LogLs) {
		return nil, fmt.Errorf("phylo: corrupt checkpoint: %d trees, %d scores", len(cp.Trees), len(cp.LogLs))
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	taxa := make(map[string]int, len(names))
	for i, n := range names {
		taxa[n] = i
	}
	st := &gaState{
		lk:       ev,
		cfg:      cfg,
		gen:      cp.Generation,
		stagnant: cp.Stagnant,
		best:     cp.Best,
		evals:    cp.Evals,
	}
	for i, nw := range cp.Trees {
		t, err := ParseNewick(nw, taxa)
		if err != nil {
			return nil, fmt.Errorf("phylo: corrupt checkpoint tree %d: %w", i, err)
		}
		st.pop = append(st.pop, individual{tree: t, logL: cp.LogLs[i]})
	}
	sortPop(st.pop)
	rng := sim.NewRNG(cp.Seed + int64(cp.Generation)*1000003)
	return &Runner{state: st, names: names, rng: rng, seed: cp.Seed}, nil
}
