package phylo

import (
	"strings"
	"testing"

	"lattice/internal/sim"
)

// searchFixture simulates data on a known tree and returns everything
// a search needs.
type searchFixture struct {
	truth *Tree
	al    *Alignment
	pd    *PatternData
	model *Model
	rates *SiteRates
}

func newSearchFixture(t *testing.T, ntaxa, nsites int, seed int64) *searchFixture {
	t.Helper()
	rng := sim.NewRNG(seed)
	m, err := NewHKY85(2.0, []float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewSiteRates(RateHomogeneous, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth := RandomTree(TaxonNames(ntaxa), 0.12, rng)
	al, err := SimulateAlignment(truth, m, rs, nsites, rng)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := al.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return &searchFixture{truth: truth, al: al, pd: pd, model: m, rates: rs}
}

func quickConfig() SearchConfig {
	cfg := DefaultSearchConfig()
	cfg.MaxGenerations = 120
	cfg.StagnationGenerations = 40
	cfg.AttachmentsPerTaxon = 6
	cfg.BrlenOptIterations = 4
	return cfg
}

func TestSearchImprovesOnRandomStart(t *testing.T) {
	fx := newSearchFixture(t, 8, 400, 100)
	rng := sim.NewRNG(7)
	lk, _ := NewLikelihood(fx.pd, fx.model, fx.rates)
	randTree := RandomTree(fx.al.Names, 0.05, rng)
	randL := lk.LogLikelihood(randTree)

	cfg := quickConfig()
	cfg.StartingTree = StartRandom
	res, err := Search(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, sim.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestLogL <= randL {
		t.Errorf("search result %.2f not better than a random tree %.2f", res.BestLogL, randL)
	}
	if res.Work <= 0 || res.Evaluations <= 0 || res.Generations <= 0 {
		t.Errorf("bookkeeping empty: %+v", res)
	}
	if err := res.BestTree.Check(); err != nil {
		t.Errorf("best tree invalid: %v", err)
	}
}

func TestSearchApproachesTruth(t *testing.T) {
	fx := newSearchFixture(t, 8, 800, 200)
	cfg := quickConfig()
	res, err := Search(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	lk, _ := NewLikelihood(fx.pd, fx.model, fx.rates)
	truthL := lk.LogLikelihood(fx.truth)
	// The inferred tree should fit the data at least about as well as
	// the generating tree (ML can legitimately exceed it).
	if res.BestLogL < truthL-10 {
		t.Errorf("search logL %.2f far below truth %.2f", res.BestLogL, truthL)
	}
	maxRF := 2 * (fx.truth.NumTaxa() - 3)
	if d := res.BestTree.RFDistance(fx.truth); d > maxRF/2 {
		t.Errorf("inferred tree RF distance %d of max %d — search is not working", d, maxRF)
	}
}

func TestSearchDeterministicPerSeed(t *testing.T) {
	fx := newSearchFixture(t, 7, 300, 300)
	cfg := quickConfig()
	r1, err := Search(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Search(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestLogL != r2.BestLogL || r1.BestTree.Newick() != r2.BestTree.Newick() {
		t.Error("same seed produced different searches")
	}
	r3, err := Search(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, sim.NewRNG(43))
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestTree.Newick() == r3.BestTree.Newick() && r1.BestLogL == r3.BestLogL {
		t.Log("different seeds converged to the same tree (possible on small data)")
	}
}

func TestSearchRepsIncreaseWork(t *testing.T) {
	fx := newSearchFixture(t, 6, 200, 400)
	cfg := quickConfig()
	cfg.SearchReps = 1
	one, err := Search(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.SearchReps = 3
	three, err := Search(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(three.Replicates) != 3 {
		t.Fatalf("got %d replicates, want 3", len(three.Replicates))
	}
	if three.Work < 2*one.Work {
		t.Errorf("3 reps work %.0f not ≈3× 1 rep work %.0f", three.Work, one.Work)
	}
	if three.BestLogL < one.BestLogL-1e-9 {
		// Same seed prefix: rep 1 of "three" matches "one", so best
		// across three reps can only be equal or better.
		t.Errorf("more replicates made the answer worse: %v vs %v", three.BestLogL, one.BestLogL)
	}
}

func TestSearchUserStartingTree(t *testing.T) {
	fx := newSearchFixture(t, 6, 200, 500)
	cfg := quickConfig()
	cfg.StartingTree = StartUser
	cfg.UserTree = fx.truth
	res, err := Search(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	lk, _ := NewLikelihood(fx.pd, fx.model, fx.rates)
	truthL := lk.LogLikelihood(fx.truth)
	if res.BestLogL < truthL-1e-6 {
		t.Errorf("search from truth ended below truth: %v < %v", res.BestLogL, truthL)
	}
}

func TestSearchConfigValidation(t *testing.T) {
	fx := newSearchFixture(t, 6, 100, 600)
	bad := []func(*SearchConfig){
		func(c *SearchConfig) { c.SearchReps = 0 },
		func(c *SearchConfig) { c.PopulationSize = 0 },
		func(c *SearchConfig) { c.MaxGenerations = 0 },
		func(c *SearchConfig) { c.StartingTree = StartUser; c.UserTree = nil },
		func(c *SearchConfig) { c.NNIWeight = 0; c.SPRWeight = 0; c.BrlenWeight = 0 },
		func(c *SearchConfig) { c.StartingTree = StartStepwise; c.AttachmentsPerTaxon = 0 },
	}
	for i, mutate := range bad {
		cfg := quickConfig()
		mutate(&cfg)
		if _, err := Search(fx.pd, fx.model, fx.rates, fx.al.Names, cfg, sim.NewRNG(1)); err == nil {
			t.Errorf("case %d: expected config validation error", i)
		}
	}
	if _, err := Search(fx.pd, fx.model, fx.rates, fx.al.Names[:3], quickConfig(), sim.NewRNG(1)); err == nil {
		t.Error("expected error for wrong name count")
	}
}

func TestBootstrapSearchProducesSupport(t *testing.T) {
	fx := newSearchFixture(t, 6, 500, 700)
	rng := sim.NewRNG(77)
	cfg := quickConfig()
	cfg.MaxGenerations = 60
	cfg.StagnationGenerations = 25
	var trees []*Tree
	for i := 0; i < 5; i++ {
		bs := fx.pd.Bootstrap(rng.Float64)
		res, err := Search(bs, fx.model, fx.rates, fx.al.Names, cfg, rng.Stream("bs"))
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, res.BestTree)
	}
	sup := NewSplitSupport(trees)
	if sup.Total != 5 {
		t.Fatalf("support total %d", sup.Total)
	}
	cons, err := sup.MajorityRuleConsensus(fx.al.Names)
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.Check(); err != nil {
		t.Errorf("consensus invalid: %v", err)
	}
	if cons.NumTaxa() != 6 {
		t.Errorf("consensus has %d taxa, want 6", cons.NumTaxa())
	}
	if !strings.Contains(cons.Newick(), ")") {
		t.Error("consensus completely unresolved")
	}
}
