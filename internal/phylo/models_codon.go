package phylo

import "fmt"

// Codon models in the Goldman–Yang (1994) / Muse–Gaut style: states
// are the 61 sense codons; only single-nucleotide changes have
// non-zero instantaneous rate; transitions are favoured by kappa and
// non-synonymous changes are scaled by omega (dN/dS). These are the
// most expensive models GARLI supports — a 61×61 state space makes
// every likelihood pass ~230× the per-site cost of a nucleotide model,
// which is why DataType is the second most important runtime predictor
// in the paper's Figure 2.

// NewGY94 returns a GY94-style codon model with
// transition/transversion ratio kappa, nonsynonymous/synonymous ratio
// omega, and codon frequencies freqs (length 61; nil for uniform).
func NewGY94(kappa, omega float64, freqs []float64) (*Model, error) {
	if kappa <= 0 {
		return nil, fmt.Errorf("phylo: GY94 kappa must be positive, got %g", kappa)
	}
	if omega <= 0 {
		return nil, fmt.Errorf("phylo: GY94 omega must be positive, got %g", omega)
	}
	if freqs == nil {
		freqs = uniformFreqs(NumSenseCodons)
	}
	r := NewMatrix(NumSenseCodons)
	for i := 0; i < NumSenseCodons; i++ {
		ni := codonNucleotides(i)
		for j := i + 1; j < NumSenseCodons; j++ {
			nj := codonNucleotides(j)
			diffPos := -1
			ndiff := 0
			for p := 0; p < 3; p++ {
				if ni[p] != nj[p] {
					ndiff++
					diffPos = p
				}
			}
			if ndiff != 1 {
				continue // multi-nucleotide changes are instantaneous-rate zero
			}
			rate := 1.0
			if isTransitionTCAG(ni[diffPos], nj[diffPos]) {
				rate *= kappa
			}
			if CodonAminoAcid(i) != CodonAminoAcid(j) {
				rate *= omega
			}
			r.Set(i, j, rate)
		}
	}
	return newModelFromRates("GY94", Codon, r, freqs,
		map[string]float64{"kappa": kappa, "omega": omega})
}

// isTransitionTCAG reports whether a change between nucleotides in
// TCAG encoding (T=0, C=1, A=2, G=3) is a transition: T↔C or A↔G.
func isTransitionTCAG(i, j int) bool {
	return (i == 0 && j == 1) || (i == 1 && j == 0) ||
		(i == 2 && j == 3) || (i == 3 && j == 2)
}

// CodonModelSpec describes a codon model as collected from the portal.
type CodonModelSpec struct {
	Kappa float64
	Omega float64
}

// Build constructs the codon model described by the spec.
func (s CodonModelSpec) Build() (*Model, error) {
	return NewGY94(s.Kappa, s.Omega, nil)
}
