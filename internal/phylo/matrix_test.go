package phylo

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestJacobiEigenDiagonal(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 0, 2)
	m.Set(1, 1, -1)
	m.Set(2, 2, 5)
	vals, vecs, err := jacobiEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	want := map[float64]bool{2: true, -1: true, 5: true}
	for _, v := range vals {
		found := false
		for w := range want {
			if almostEqual(v, w, 1e-10) {
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected eigenvalue %v", v)
		}
	}
	// Eigenvectors orthonormal.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var dot float64
			for k := 0; k < 3; k++ {
				dot += vecs.At(k, i) * vecs.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(dot, want, 1e-10) {
				t.Errorf("vec dot(%d,%d) = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	// Random-ish symmetric matrix: A = V L V^T must reproduce A.
	n := 6
	a := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := math.Sin(float64(i*7+j*3+1)) * 2
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	vals, vecs, err := jacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += vecs.At(i, k) * vals[k] * vecs.At(j, k)
			}
			if !almostEqual(s, a.At(i, j), 1e-8) {
				t.Fatalf("reconstruction (%d,%d) = %v, want %v", i, j, s, a.At(i, j))
			}
		}
	}
}

func TestTransitionMatrixIdentityAtZero(t *testing.T) {
	m, err := NewGTR([6]float64{1, 2, 1.5, 0.7, 4, 1}, []float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Eigen().TransitionMatrix(0, nil)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(p.At(i, j), want, 1e-9) {
				t.Errorf("P(0)[%d,%d] = %v, want %v", i, j, p.At(i, j), want)
			}
		}
	}
}

func TestTransitionMatrixRowsSumToOne(t *testing.T) {
	m, err := NewHKY85(3.5, []float64{0.35, 0.15, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, bl := range []float64{0.001, 0.05, 0.3, 1.5, 10} {
		p := m.Eigen().TransitionMatrix(bl, nil)
		for i := 0; i < 4; i++ {
			var row float64
			for j := 0; j < 4; j++ {
				v := p.At(i, j)
				if v < 0 || v > 1 {
					t.Fatalf("P(%v)[%d,%d] = %v out of [0,1]", bl, i, j, v)
				}
				row += v
			}
			if !almostEqual(row, 1, 1e-9) {
				t.Errorf("row %d of P(%v) sums to %v", i, bl, row)
			}
		}
	}
}

func TestTransitionMatrixChapmanKolmogorov(t *testing.T) {
	m, err := NewGTR([6]float64{1.2, 3.1, 0.8, 1.1, 4.2, 1}, []float64{0.28, 0.22, 0.24, 0.26})
	if err != nil {
		t.Fatal(err)
	}
	es := m.Eigen()
	s, u := 0.13, 0.41
	ps := es.TransitionMatrix(s, nil)
	pu := es.TransitionMatrix(u, nil)
	psu := es.TransitionMatrix(s+u, nil)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var prod float64
			for k := 0; k < 4; k++ {
				prod += ps.At(i, k) * pu.At(k, j)
			}
			if !almostEqual(prod, psu.At(i, j), 1e-8) {
				t.Errorf("C-K violated at (%d,%d): %v vs %v", i, j, prod, psu.At(i, j))
			}
		}
	}
}

func TestDetailedBalance(t *testing.T) {
	freqs := []float64{0.4, 0.1, 0.15, 0.35}
	m, err := NewGTR([6]float64{0.5, 2, 1, 1.3, 3.7, 1}, freqs)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Eigen().TransitionMatrix(0.25, nil)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			lhs := m.Freqs[i] * p.At(i, j)
			rhs := m.Freqs[j] * p.At(j, i)
			if !almostEqual(lhs, rhs, 1e-9) {
				t.Errorf("detailed balance violated at (%d,%d): %v vs %v", i, j, lhs, rhs)
			}
		}
	}
}

func TestJC69ClosedForm(t *testing.T) {
	m, err := NewJC69()
	if err != nil {
		t.Fatal(err)
	}
	for _, bl := range []float64{0.01, 0.1, 0.5, 2} {
		p := m.Eigen().TransitionMatrix(bl, nil)
		same := 0.25 + 0.75*math.Exp(-4*bl/3)
		diff := 0.25 - 0.25*math.Exp(-4*bl/3)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := diff
				if i == j {
					want = same
				}
				if !almostEqual(p.At(i, j), want, 1e-9) {
					t.Errorf("JC69 P(%v)[%d,%d] = %v, want %v", bl, i, j, p.At(i, j), want)
				}
			}
		}
	}
}

func TestLongBranchReachesStationarity(t *testing.T) {
	freqs := []float64{0.45, 0.05, 0.25, 0.25}
	m, err := NewHKY85(2, freqs)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Eigen().TransitionMatrix(500, nil)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !almostEqual(p.At(i, j), m.Freqs[j], 1e-6) {
				t.Errorf("P(inf)[%d,%d] = %v, want stationary %v", i, j, p.At(i, j), m.Freqs[j])
			}
		}
	}
}

func TestEigenSystemRejectsBadInput(t *testing.T) {
	q := NewMatrix(4)
	if _, err := NewEigenSystem(q, []float64{0.5, 0.5}); err == nil {
		t.Error("expected error for mismatched frequency vector")
	}
	if _, err := NewEigenSystem(q, []float64{0.5, 0.5, 0, 0}); err == nil {
		t.Error("expected error for zero frequency")
	}
}
