package phylo

import (
	"fmt"

	"lattice/internal/sim"
)

// StartingTreeKind is how the initial tree of a search is produced —
// one of the nine runtime-model predictors (GARLI's streefname
// setting).
type StartingTreeKind int

const (
	// StartRandom: random topology with random branch lengths.
	StartRandom StartingTreeKind = iota
	// StartStepwise: stepwise-addition maximum-likelihood tree; each
	// taxon is attached at the best of AttachmentsPerTaxon candidate
	// branches. Much more expensive to build, usually a much better
	// starting point.
	StartStepwise
	// StartUser: the user supplied a starting tree file.
	StartUser
)

func (k StartingTreeKind) String() string {
	switch k {
	case StartRandom:
		return "random"
	case StartStepwise:
		return "stepwise"
	case StartUser:
		return "user"
	default:
		return fmt.Sprintf("StartingTreeKind(%d)", int(k))
	}
}

// ParseStartingTreeKind parses the portal's starting-tree choice.
func ParseStartingTreeKind(s string) (StartingTreeKind, error) {
	switch s {
	case "random":
		return StartRandom, nil
	case "stepwise":
		return StartStepwise, nil
	case "user":
		return StartUser, nil
	default:
		return 0, fmt.Errorf("phylo: unknown starting tree kind %q", s)
	}
}

// RandomTree builds a uniformly random unrooted topology over taxa
// names, with exponential branch lengths of the given mean.
func RandomTree(names []string, meanBranch float64, rng *sim.RNG) *Tree {
	if len(names) < 3 {
		panic("phylo: RandomTree needs at least 3 taxa")
	}
	t := &Tree{}
	root := t.newNode()
	t.Root = root
	bl := func() float64 { return rng.Exp(meanBranch) }
	leaf := func(i int) *Node {
		n := t.newNode()
		n.Taxon = i
		n.Name = names[i]
		n.Length = bl()
		return n
	}
	for i := 0; i < 3; i++ {
		c := leaf(i)
		c.Parent = root
		root.Children = append(root.Children, c)
	}
	for i := 3; i < len(names); i++ {
		// Pick a random existing edge (any non-root node).
		var edges []*Node
		t.PostOrder(func(n *Node) {
			if n.Parent != nil {
				edges = append(edges, n)
			}
		})
		target := edges[rng.Intn(len(edges))]
		t.attachAt(leaf(i), target, bl())
	}
	t.reindex()
	return t
}

// attachAt splits the edge above target with a new internal node and
// hangs leaf from it. The original branch length is divided evenly.
func (t *Tree) attachAt(leaf *Node, target *Node, innerLength float64) {
	parent := target.Parent
	mid := t.newNode()
	mid.Length = target.Length / 2
	target.Length /= 2
	// Replace target with mid in parent's child list.
	for i, c := range parent.Children {
		if c == target {
			parent.Children[i] = mid
			break
		}
	}
	mid.Parent = parent
	mid.Children = []*Node{target, leaf}
	target.Parent = mid
	leaf.Parent = mid
	if innerLength > 0 {
		leaf.Length = innerLength
	}
}

// detach removes the subtree rooted at s from the tree, splicing out
// its parent, and returns s. The tree is left structurally valid but
// with stale indices; callers must reindex after regrafting.
func (t *Tree) detach(s *Node) {
	p := s.Parent
	s.Parent = nil
	rest := p.Children[:0]
	for _, c := range p.Children {
		if c != s {
			rest = append(rest, c)
		}
	}
	p.Children = rest
	if p == t.Root {
		t.normalizeRoot()
		return
	}
	if len(p.Children) == 1 {
		// Splice p out: its only child joins p's parent directly.
		only := p.Children[0]
		only.Length += p.Length
		only.Parent = p.Parent
		for i, c := range p.Parent.Children {
			if c == p {
				p.Parent.Children[i] = only
				break
			}
		}
	}
}

// normalizeRoot restores the trifurcating-root convention after
// surgery left the root with fewer than three children.
func (t *Tree) normalizeRoot() {
	r := t.Root
	for len(r.Children) == 1 {
		only := r.Children[0]
		only.Parent = nil
		only.Length = 0
		t.Root = only
		r = only
	}
	if len(r.Children) == 2 {
		// Absorb an internal child to regain the trifurcation.
		var internal *Node
		for _, c := range r.Children {
			if !c.IsLeaf() {
				internal = c
				break
			}
		}
		if internal == nil {
			return // two-leaf tree; nothing to do
		}
		var other *Node
		for _, c := range r.Children {
			if c != internal {
				other = c
			}
		}
		other.Length += internal.Length
		newKids := []*Node{other}
		for _, gc := range internal.Children {
			gc.Parent = r
			newKids = append(newKids, gc)
		}
		r.Children = newKids
	}
}

// subtreeNodes returns all nodes in the subtree rooted at s.
func subtreeNodes(s *Node) map[*Node]bool {
	set := make(map[*Node]bool)
	var walk func(*Node)
	walk = func(n *Node) {
		set[n] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(s)
	return set
}

// NNI performs a random nearest-neighbour interchange: for an internal
// edge (parent p — child c), it swaps a random child of c with a
// random sibling of c. It returns the edge node whose neighbourhood
// changed (c), or nil if the tree has no internal edges (fewer than 4
// taxa) — callers typically re-optimize that branch next.
func (t *Tree) NNI(rng *sim.RNG) *Node {
	edges := t.InternalEdges()
	if len(edges) == 0 {
		return nil
	}
	c := edges[rng.Intn(len(edges))]
	p := c.Parent
	var siblings []*Node
	for _, s := range p.Children {
		if s != c {
			siblings = append(siblings, s)
		}
	}
	if len(siblings) == 0 || len(c.Children) == 0 {
		return nil
	}
	a := c.Children[rng.Intn(len(c.Children))]
	b := siblings[rng.Intn(len(siblings))]
	// Swap a and b between c and p.
	for i, x := range c.Children {
		if x == a {
			c.Children[i] = b
		}
	}
	for i, x := range p.Children {
		if x == b {
			p.Children[i] = a
		}
	}
	a.Parent = p
	b.Parent = c
	return c
}

// SPR performs a random subtree-prune-regraft move with the given
// radius limit: the pruned subtree is reattached to an edge at most
// radius steps from the original attachment point (0 = unlimited).
// It returns the root of the pruned subtree (whose branch joins the
// new attachment), or nil when no legal move exists.
func (t *Tree) SPR(radius int, rng *sim.RNG) *Node {
	// Candidate subtrees: any non-root node whose removal leaves
	// at least 3 taxa outside.
	var cands []*Node
	total := t.NumTaxa()
	t.PostOrder(func(n *Node) {
		if n.Parent == nil {
			return
		}
		sz := 0
		for m := range subtreeNodes(n) {
			if m.IsLeaf() {
				sz++
			}
		}
		if total-sz >= 3 {
			cands = append(cands, n)
		}
	})
	if len(cands) == 0 {
		return nil
	}
	s := cands[rng.Intn(len(cands))]
	origin := s.Parent
	dist := distancesFrom(t, origin)
	t.detach(s)
	// Candidate regraft edges: nodes with a parent, outside s's subtree.
	inS := subtreeNodes(s)
	var targets []*Node
	t.PostOrder(func(n *Node) {
		if n.Parent == nil || inS[n] {
			return
		}
		if radius > 0 {
			if d, ok := dist[n]; !ok || d > radius {
				return
			}
		}
		targets = append(targets, n)
	})
	if len(targets) == 0 {
		// No target within radius; fall back to any edge.
		t.PostOrder(func(n *Node) {
			if n.Parent != nil && !inS[n] {
				targets = append(targets, n)
			}
		})
	}
	target := targets[rng.Intn(len(targets))]
	t.attachAt(s, target, s.Length)
	t.reindex()
	return s
}

// distancesFrom returns hop counts from start to every node, treating
// the tree as an undirected graph.
func distancesFrom(t *Tree, start *Node) map[*Node]int {
	dist := map[*Node]int{start: 0}
	queue := []*Node{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		var adj []*Node
		if n.Parent != nil {
			adj = append(adj, n.Parent)
		}
		adj = append(adj, n.Children...)
		for _, m := range adj {
			if _, ok := dist[m]; !ok {
				dist[m] = dist[n] + 1
				queue = append(queue, m)
			}
		}
	}
	return dist
}
