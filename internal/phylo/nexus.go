package phylo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// NEXUS support: GARLI's native input format. The subset implemented
// covers what the portal accepts — a DATA or CHARACTERS block
// (DIMENSIONS, FORMAT with datatype/missing/gap/interleave, MATRIX)
// and a TREES block for user starting trees — with bracket comments
// and quoted labels handled throughout.

// nexusTokenizer splits a NEXUS stream into tokens, dropping [...]
// comments and honouring single-quoted labels.
type nexusTokenizer struct {
	r      *bufio.Reader
	peeked *string
}

func newNexusTokenizer(r io.Reader) *nexusTokenizer {
	return &nexusTokenizer{r: bufio.NewReader(r)}
}

// next returns the next token, or "" at EOF. Punctuation characters
// ';' '=' are tokens of their own.
func (tz *nexusTokenizer) next() (string, error) {
	if tz.peeked != nil {
		t := *tz.peeked
		tz.peeked = nil
		return t, nil
	}
	// Skip whitespace and comments.
	for {
		c, err := tz.r.ReadByte()
		if err == io.EOF {
			return "", nil
		}
		if err != nil {
			return "", err
		}
		switch {
		case c == '[':
			depth := 1
			for depth > 0 {
				cc, err := tz.r.ReadByte()
				if err != nil {
					return "", fmt.Errorf("phylo: unterminated NEXUS comment")
				}
				if cc == '[' {
					depth++
				} else if cc == ']' {
					depth--
				}
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			continue
		case c == ';' || c == '=':
			return string(c), nil
		case c == '\'':
			var b strings.Builder
			for {
				cc, err := tz.r.ReadByte()
				if err != nil {
					return "", fmt.Errorf("phylo: unterminated quoted NEXUS label")
				}
				if cc == '\'' {
					nxt, err := tz.r.ReadByte()
					if err == nil && nxt == '\'' {
						b.WriteByte('\'')
						continue
					}
					if err == nil {
						if uerr := tz.r.UnreadByte(); uerr != nil {
							return "", uerr
						}
					}
					return b.String(), nil
				}
				b.WriteByte(cc)
			}
		default:
			var b strings.Builder
			b.WriteByte(c)
			for {
				cc, err := tz.r.ReadByte()
				if err == io.EOF {
					return b.String(), nil
				}
				if err != nil {
					return "", err
				}
				if cc == ';' || cc == '=' || cc == '[' || cc == ' ' || cc == '\t' || cc == '\n' || cc == '\r' || cc == '\'' {
					if uerr := tz.r.UnreadByte(); uerr != nil {
						return "", uerr
					}
					return b.String(), nil
				}
				b.WriteByte(cc)
			}
		}
	}
}

func (tz *nexusTokenizer) peek() (string, error) {
	if tz.peeked != nil {
		return *tz.peeked, nil
	}
	t, err := tz.next()
	if err != nil {
		return "", err
	}
	tz.peeked = &t
	return t, nil
}

// skipToSemicolon discards tokens through the next ';'.
func (tz *nexusTokenizer) skipToSemicolon() error {
	for {
		t, err := tz.next()
		if err != nil {
			return err
		}
		if t == "" {
			return fmt.Errorf("phylo: unexpected NEXUS end of file")
		}
		if t == ";" {
			return nil
		}
	}
}

// NexusFile is the parsed content of a NEXUS document.
type NexusFile struct {
	Alignment *Alignment
	// Trees maps tree names (from a TREES block) to Newick strings;
	// translate tables are applied.
	Trees map[string]string
	// TreeOrder preserves the order trees appeared in.
	TreeOrder []string
}

// ParseNEXUS reads a NEXUS document containing a DATA/CHARACTERS block
// and optionally a TREES block.
func ParseNEXUS(r io.Reader) (*NexusFile, error) {
	tz := newNexusTokenizer(r)
	first, err := tz.next()
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(first, "#NEXUS") {
		return nil, fmt.Errorf("phylo: not a NEXUS file (starts with %q)", first)
	}
	nf := &NexusFile{Trees: map[string]string{}}
	for {
		t, err := tz.next()
		if err != nil {
			return nil, err
		}
		if t == "" {
			break
		}
		if !strings.EqualFold(t, "BEGIN") {
			continue
		}
		name, err := tz.next()
		if err != nil {
			return nil, err
		}
		if _, err := tz.next(); err != nil { // ';'
			return nil, err
		}
		switch strings.ToUpper(name) {
		case "DATA", "CHARACTERS":
			al, err := parseDataBlock(tz)
			if err != nil {
				return nil, err
			}
			nf.Alignment = al
		case "TREES":
			if err := parseTreesBlock(tz, nf); err != nil {
				return nil, err
			}
		default:
			if err := skipBlock(tz); err != nil {
				return nil, err
			}
		}
	}
	if nf.Alignment == nil && len(nf.Trees) == 0 {
		return nil, fmt.Errorf("phylo: NEXUS file has no DATA, CHARACTERS or TREES block")
	}
	return nf, nil
}

// skipBlock discards tokens through "END ;".
func skipBlock(tz *nexusTokenizer) error {
	for {
		t, err := tz.next()
		if err != nil {
			return err
		}
		if t == "" {
			return fmt.Errorf("phylo: unterminated NEXUS block")
		}
		if strings.EqualFold(t, "END") || strings.EqualFold(t, "ENDBLOCK") {
			return tz.skipToSemicolon()
		}
	}
}

func parseDataBlock(tz *nexusTokenizer) (*Alignment, error) {
	var (
		ntax, nchar int
		dt          = Nucleotide
		missing     = byte('?')
		gap         = byte('-')
		interleave  bool
	)
	readKV := func() error {
		for {
			t, err := tz.next()
			if err != nil {
				return err
			}
			if t == ";" || t == "" {
				return nil
			}
			key := strings.ToUpper(t)
			eq, err := tz.peek()
			if err != nil {
				return err
			}
			var val string
			if eq == "=" {
				if _, err := tz.next(); err != nil {
					return err
				}
				val, err = tz.next()
				if err != nil {
					return err
				}
			}
			switch key {
			case "NTAX":
				ntax, err = strconv.Atoi(val)
				if err != nil || ntax <= 0 {
					return fmt.Errorf("phylo: malformed NEXUS dimension NTAX=%q", val)
				}
			case "NCHAR":
				nchar, err = strconv.Atoi(val)
				if err != nil || nchar <= 0 {
					return fmt.Errorf("phylo: malformed NEXUS dimension NCHAR=%q", val)
				}
			case "DATATYPE":
				switch strings.ToUpper(val) {
				case "DNA", "RNA", "NUCLEOTIDE":
					dt = Nucleotide
				case "PROTEIN":
					dt = AminoAcid
				case "CODON":
					dt = Codon
				default:
					return fmt.Errorf("phylo: unsupported NEXUS datatype %q", val)
				}
			case "MISSING":
				if val != "" {
					missing = val[0]
				}
			case "GAP":
				if val != "" {
					gap = val[0]
				}
			case "INTERLEAVE":
				interleave = val == "" || strings.EqualFold(val, "YES")
			}
		}
	}
	al := &Alignment{Type: dt}
	rows := map[string]*strings.Builder{}
	for {
		t, err := tz.next()
		if err != nil {
			return nil, err
		}
		if t == "" {
			return nil, fmt.Errorf("phylo: unterminated DATA block")
		}
		switch strings.ToUpper(t) {
		case "DIMENSIONS", "FORMAT":
			if err := readKV(); err != nil {
				return nil, err
			}
			al.Type = dt
		case "MATRIX":
			// Rows: name sequence [possibly interleaved].
			for {
				name, err := tz.next()
				if err != nil {
					return nil, err
				}
				if name == ";" {
					goto matrixDone
				}
				if name == "" {
					return nil, fmt.Errorf("phylo: unterminated MATRIX")
				}
				seq, err := tz.next()
				if err != nil {
					return nil, err
				}
				if seq == ";" || seq == "" {
					return nil, fmt.Errorf("phylo: taxon %q has no sequence", name)
				}
				b, ok := rows[name]
				if !ok {
					b = &strings.Builder{}
					rows[name] = b
					al.Names = append(al.Names, name)
				} else if !interleave {
					return nil, fmt.Errorf("phylo: duplicate taxon %q in sequential matrix", name)
				}
				// Non-interleaved sequences may wrap: keep consuming
				// sequence tokens until the row reaches nchar (when
				// known) or the next token looks like a new row.
				b.WriteString(normalizeSeq(seq, missing, gap))
				for !interleave && nchar > 0 && b.Len() < nchar {
					more, err := tz.next()
					if err != nil {
						return nil, err
					}
					if more == ";" || more == "" {
						return nil, fmt.Errorf("phylo: sequence for %q ended at %d of %d", name, b.Len(), nchar)
					}
					b.WriteString(normalizeSeq(more, missing, gap))
				}
			}
		case "END", "ENDBLOCK":
			if err := tz.skipToSemicolon(); err != nil {
				return nil, err
			}
			goto blockDone
		default:
			if err := tz.skipToSemicolon(); err != nil {
				return nil, err
			}
		}
		continue
	matrixDone:
	}
blockDone:
	for _, name := range al.Names {
		al.Seqs = append(al.Seqs, rows[name].String())
	}
	if ntax > 0 && al.NumTaxa() != ntax {
		return nil, fmt.Errorf("phylo: NEXUS declares NTAX=%d but matrix has %d taxa", ntax, al.NumTaxa())
	}
	if nchar > 0 && al.Length() != nchar {
		return nil, fmt.Errorf("phylo: NEXUS declares NCHAR=%d but rows have %d characters", nchar, al.Length())
	}
	return al, nil
}

// normalizeSeq maps the file's missing/gap symbols to this package's
// conventions ('N'-style missing handled by state encoding; gaps '-').
func normalizeSeq(s string, missing, gap byte) string {
	out := []byte(s)
	for i, c := range out {
		switch c {
		case missing:
			out[i] = '?'
		case gap:
			out[i] = '-'
		}
	}
	return string(out)
}

func parseTreesBlock(tz *nexusTokenizer, nf *NexusFile) error {
	translate := map[string]string{}
	for {
		t, err := tz.next()
		if err != nil {
			return err
		}
		if t == "" {
			return fmt.Errorf("phylo: unterminated TREES block")
		}
		switch strings.ToUpper(t) {
		case "TRANSLATE":
			for {
				key, err := tz.next()
				if err != nil {
					return err
				}
				// Commas separate entries; a quoted label leaves its
				// trailing comma as a standalone token.
				key = strings.TrimPrefix(key, ",")
				if key == ";" {
					break
				}
				if key == "" {
					continue
				}
				val, err := tz.next()
				if err != nil {
					return err
				}
				if val == ";" {
					return fmt.Errorf("phylo: TRANSLATE entry %q has no label", key)
				}
				translate[key] = strings.TrimSuffix(val, ",")
			}
		case "TREE", "UTREE":
			name, err := tz.next()
			if err != nil {
				return err
			}
			eq, err := tz.peek()
			if err != nil {
				return err
			}
			if eq == "=" {
				if _, err := tz.next(); err != nil {
					return err
				}
			}
			// The Newick string may have been split on '=' boundaries;
			// reassemble tokens until ';'.
			var b strings.Builder
			for {
				tok, err := tz.next()
				if err != nil {
					return err
				}
				if tok == ";" || tok == "" {
					break
				}
				b.WriteString(tok)
			}
			nw := applyTranslate(b.String(), translate) + ";"
			nf.Trees[name] = nw
			nf.TreeOrder = append(nf.TreeOrder, name)
		case "END", "ENDBLOCK":
			return tz.skipToSemicolon()
		default:
			if err := tz.skipToSemicolon(); err != nil {
				return err
			}
		}
	}
}

// applyTranslate substitutes translate-table keys for taxon labels in
// a Newick string.
func applyTranslate(nw string, table map[string]string) string {
	if len(table) == 0 {
		return nw
	}
	var b strings.Builder
	i := 0
	for i < len(nw) {
		c := nw[i]
		if c == '(' || c == ')' || c == ',' || c == ':' {
			b.WriteByte(c)
			i++
			continue
		}
		j := i
		for j < len(nw) && !strings.ContainsRune("(),:;", rune(nw[j])) {
			j++
		}
		label := nw[i:j]
		if repl, ok := table[label]; ok {
			// Labels with Newick-special characters must be re-quoted.
			if strings.ContainsAny(repl, " ():,;'") {
				repl = "'" + strings.ReplaceAll(repl, "'", "''") + "'"
			}
			b.WriteString(repl)
		} else {
			b.WriteString(label)
		}
		i = j
	}
	return b.String()
}

// WriteNEXUS writes the alignment as a sequential NEXUS DATA block.
func (a *Alignment) WriteNEXUS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	dtName := map[DataType]string{Nucleotide: "DNA", AminoAcid: "PROTEIN", Codon: "CODON"}[a.Type]
	fmt.Fprintf(bw, "#NEXUS\nBEGIN DATA;\n  DIMENSIONS NTAX=%d NCHAR=%d;\n  FORMAT DATATYPE=%s MISSING=? GAP=-;\n  MATRIX\n",
		a.NumTaxa(), a.Length(), dtName)
	width := 0
	for _, n := range a.Names {
		if len(n) > width {
			width = len(n)
		}
	}
	for i, n := range a.Names {
		label := n
		if strings.ContainsAny(n, " ():,;") {
			label = "'" + strings.ReplaceAll(n, "'", "''") + "'"
		}
		fmt.Fprintf(bw, "    %-*s  %s\n", width+2, label, a.Seqs[i])
	}
	fmt.Fprint(bw, "  ;\nEND;\n")
	return bw.Flush()
}
