package phylo

import (
	"fmt"
	"math"
	"sort"

	"lattice/internal/sim"
)

// SearchConfig holds the genetic-algorithm settings of a GARLI-style
// maximum-likelihood tree search. The fields marked (predictor) are
// among the nine variables of the paper's runtime model.
type SearchConfig struct {
	// SearchReps is the number of independent search replicates; the
	// best tree across replicates is returned. (predictor)
	SearchReps int
	// StartingTree selects random, stepwise-addition, or user
	// starting trees. (predictor)
	StartingTree StartingTreeKind
	// UserTree is the starting tree when StartingTree == StartUser.
	UserTree *Tree
	// AttachmentsPerTaxon is the number of candidate attachment
	// branches evaluated per taxon during stepwise addition; GARLI's
	// attachmentspertaxon setting. (predictor)
	AttachmentsPerTaxon int
	// PopulationSize is the number of individuals in the GA
	// population (GARLI default 4).
	PopulationSize int
	// MaxGenerations bounds each replicate.
	MaxGenerations int
	// StagnationGenerations terminates a replicate after this many
	// generations without an improvement larger than ImprovementEps
	// (GARLI's genthreshfortopoterm).
	StagnationGenerations int
	// ImprovementEps is the log-likelihood gain regarded as a real
	// improvement (GARLI's scorethreshforterm).
	ImprovementEps float64
	// NNIWeight, SPRWeight and BrlenWeight are the relative
	// probabilities of the three mutation categories.
	NNIWeight, SPRWeight, BrlenWeight float64
	// SPRRadius limits regraft distance (GARLI's limsprrange);
	// 0 = unlimited.
	SPRRadius int
	// BrlenOptIterations is the golden-section refinement budget
	// applied to mutated branches.
	BrlenOptIterations int
	// MeanBranchLength seeds starting-tree branch lengths.
	MeanBranchLength float64
}

// DefaultSearchConfig mirrors GARLI's stock settings scaled to this
// engine.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{
		SearchReps:            1,
		StartingTree:          StartStepwise,
		AttachmentsPerTaxon:   25,
		PopulationSize:        4,
		MaxGenerations:        500,
		StagnationGenerations: 60,
		ImprovementEps:        0.01,
		NNIWeight:             0.5,
		SPRWeight:             0.3,
		BrlenWeight:           0.2,
		SPRRadius:             6,
		BrlenOptIterations:    8,
		MeanBranchLength:      0.05,
	}
}

func (c *SearchConfig) validate() error {
	if c.SearchReps < 1 {
		return fmt.Errorf("phylo: SearchReps must be >= 1, got %d", c.SearchReps)
	}
	if c.PopulationSize < 1 {
		return fmt.Errorf("phylo: PopulationSize must be >= 1, got %d", c.PopulationSize)
	}
	if c.MaxGenerations < 1 {
		return fmt.Errorf("phylo: MaxGenerations must be >= 1, got %d", c.MaxGenerations)
	}
	if c.StartingTree == StartUser && c.UserTree == nil {
		return fmt.Errorf("phylo: StartUser requires a UserTree")
	}
	if c.StartingTree == StartStepwise && c.AttachmentsPerTaxon < 1 {
		return fmt.Errorf("phylo: AttachmentsPerTaxon must be >= 1 for stepwise addition")
	}
	if c.NNIWeight+c.SPRWeight+c.BrlenWeight <= 0 {
		return fmt.Errorf("phylo: mutation weights must not all be zero")
	}
	return nil
}

// SearchResult reports the outcome of a Search.
type SearchResult struct {
	BestTree    *Tree
	BestLogL    float64
	Generations int     // total generations across replicates
	Evaluations int     // likelihood evaluations performed
	Work        float64 // total cost in cell updates
	Replicates  []ReplicateResult
}

// ReplicateResult is the outcome of one search replicate.
type ReplicateResult struct {
	Tree        *Tree
	LogL        float64
	Generations int
}

type individual struct {
	tree *Tree
	logL float64
}

// Search runs a GARLI-style genetic-algorithm ML search and returns
// the best tree found. It is deterministic for a given RNG seed.
func Search(data *PatternData, model *Model, rates *SiteRates, names []string, cfg SearchConfig, rng *sim.RNG) (*SearchResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(names) != data.NumTaxa {
		return nil, fmt.Errorf("phylo: %d taxon names for %d-taxon data", len(names), data.NumTaxa)
	}
	lk, err := NewLikelihood(data, model, rates)
	if err != nil {
		return nil, err
	}
	return SearchWith(lk, names, cfg, rng)
}

// SearchWith runs the GA search on any Evaluator — a plain Likelihood,
// a PartitionedLikelihood, or an optimized backend.
func SearchWith(ev Evaluator, names []string, cfg SearchConfig, rng *sim.RNG) (*SearchResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &SearchResult{BestLogL: negInf}
	for rep := 0; rep < cfg.SearchReps; rep++ {
		rr, evals, err := searchReplicate(ev, names, cfg, rng)
		if err != nil {
			return nil, err
		}
		res.Replicates = append(res.Replicates, *rr)
		res.Generations += rr.Generations
		res.Evaluations += evals
		if rr.LogL > res.BestLogL {
			res.BestLogL = rr.LogL
			res.BestTree = rr.Tree
		}
	}
	res.Work = ev.TotalWork()
	return res, nil
}

// SearchPartitioned runs the GA search over several partitions sharing
// one topology (GARLI's partitioned models).
func SearchPartitioned(parts []Partition, names []string, cfg SearchConfig, rng *sim.RNG) (*SearchResult, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("phylo: no partitions")
	}
	if len(names) != parts[0].Data.NumTaxa {
		return nil, fmt.Errorf("phylo: %d taxon names for %d-taxon data", len(names), parts[0].Data.NumTaxa)
	}
	pl, err := NewPartitionedLikelihood(parts)
	if err != nil {
		return nil, err
	}
	return SearchWith(pl, names, cfg, rng)
}

var negInf = math.Inf(-1)

// gaState is the mutable state of one GA search replicate; it is the
// unit that checkpointing (see Runner in checkpoint.go) snapshots.
type gaState struct {
	lk       Evaluator
	cfg      SearchConfig
	pop      []individual
	gen      int
	stagnant int
	best     float64
	evals    int
}

// newGAState builds the starting population for one replicate.
func newGAState(lk Evaluator, names []string, cfg SearchConfig, rng *sim.RNG) (*gaState, error) {
	start, err := startingTree(lk, names, cfg, rng)
	if err != nil {
		return nil, err
	}
	st := &gaState{lk: lk, cfg: cfg}
	st.pop = make([]individual, cfg.PopulationSize)
	for i := range st.pop {
		t := start.Clone()
		if i > 0 {
			// Diversify the initial population with a branch jiggle.
			perturbBranches(t, rng)
		}
		l := lk.LogLikelihood(t)
		st.evals++
		st.pop[i] = individual{tree: t, logL: l}
	}
	sortPop(st.pop)
	st.best = st.pop[0].logL
	return st, nil
}

// done reports whether the replicate has terminated.
func (st *gaState) done() bool {
	return st.gen >= st.cfg.MaxGenerations || st.stagnant >= st.cfg.StagnationGenerations
}

// step runs a single GA generation.
func (st *gaState) step(rng *sim.RNG) {
	cfg := st.cfg
	weights := []float64{cfg.NNIWeight, cfg.SPRWeight, cfg.BrlenWeight}
	parent := st.pop[selectParent(len(st.pop), rng)]
	child := parent.tree.Clone()
	var touched *Node
	switch rng.Choice(weights) {
	case 0:
		touched = child.NNI(rng)
	case 1:
		touched = child.SPR(cfg.SPRRadius, rng)
	default:
		perturbBranches(child, rng)
	}
	var logL float64
	if cfg.BrlenOptIterations > 0 {
		// Refine the branch the move disturbed (or a random internal
		// edge for pure branch-length mutations); each golden-section
		// step is one likelihood evaluation.
		target := touched
		if target == nil || target.Parent == nil {
			edges := child.InternalEdges()
			if len(edges) > 0 {
				target = edges[rng.Intn(len(edges))]
			} else {
				target = child.Root.Children[0]
			}
		}
		logL = st.lk.OptimizeBranch(child, target, cfg.BrlenOptIterations)
		st.evals += cfg.BrlenOptIterations + 8
	} else {
		logL = st.lk.LogLikelihood(child)
		st.evals++
	}
	worst := len(st.pop) - 1
	if logL > st.pop[worst].logL {
		st.pop[worst] = individual{tree: child, logL: logL}
		sortPop(st.pop)
	}
	if st.pop[0].logL > st.best+cfg.ImprovementEps {
		st.best = st.pop[0].logL
		st.stagnant = 0
	} else {
		st.stagnant++
	}
	st.gen++
}

func searchReplicate(lk Evaluator, names []string, cfg SearchConfig, rng *sim.RNG) (*ReplicateResult, int, error) {
	st, err := newGAState(lk, names, cfg, rng)
	if err != nil {
		return nil, 0, err
	}
	for !st.done() {
		st.step(rng)
	}
	logL := st.finalPolish()
	return &ReplicateResult{Tree: st.pop[0].tree, LogL: logL, Generations: st.gen}, st.evals, nil
}

// finalPolish runs GARLI's terminal optimization phase: full
// branch-length optimization sweeps over the best tree until the gain
// of a sweep falls below ImprovementEps.
func (st *gaState) finalPolish() float64 {
	best := st.pop[0].tree
	logL := st.pop[0].logL
	iters := st.cfg.BrlenOptIterations
	if iters < 6 {
		iters = 6
	}
	for sweep := 0; sweep < 8; sweep++ {
		before := logL
		best.PostOrder(func(n *Node) {
			if n.Parent != nil {
				logL = st.lk.OptimizeBranch(best, n, iters)
				st.evals += iters + 8
			}
		})
		if logL-before < st.cfg.ImprovementEps {
			break
		}
	}
	st.pop[0].logL = logL
	return logL
}

// startingTree builds the replicate's initial tree per config.
func startingTree(lk Evaluator, names []string, cfg SearchConfig, rng *sim.RNG) (*Tree, error) {
	switch cfg.StartingTree {
	case StartRandom:
		return RandomTree(names, cfg.MeanBranchLength, rng), nil
	case StartUser:
		return cfg.UserTree.Clone(), nil
	case StartStepwise:
		return stepwiseAdditionTree(lk, names, cfg, rng), nil
	default:
		return nil, fmt.Errorf("phylo: unknown starting tree kind %v", cfg.StartingTree)
	}
}

// stepwiseAdditionTree grows a tree taxon by taxon; each new taxon is
// tried on AttachmentsPerTaxon randomly chosen branches (or all, if
// fewer exist) and kept at the most likely position. The work this
// burns is exactly why attachmentspertaxon appears among the paper's
// runtime predictors.
func stepwiseAdditionTree(lk Evaluator, names []string, cfg SearchConfig, rng *sim.RNG) *Tree {
	order := rng.Perm(len(names))
	t := &Tree{}
	root := t.newNode()
	t.Root = root
	for i := 0; i < 3; i++ {
		leaf := t.newNode()
		leaf.Taxon = order[i]
		leaf.Name = names[order[i]]
		leaf.Length = rng.Exp(cfg.MeanBranchLength)
		leaf.Parent = root
		root.Children = append(root.Children, leaf)
	}
	t.reindex()
	// Sub-alignment likelihood for partial trees still uses the full
	// pattern data: absent taxa simply do not appear in the tree, and
	// the pruning pass only visits nodes in the tree, so this is
	// equivalent to marginalizing over them for ranking purposes.
	for i := 3; i < len(order); i++ {
		taxon := order[i]
		var edges []*Node
		t.PostOrder(func(n *Node) {
			if n.Parent != nil {
				edges = append(edges, n)
			}
		})
		tries := cfg.AttachmentsPerTaxon
		if tries > len(edges) {
			tries = len(edges)
		}
		perm := rng.Perm(len(edges))
		bestLogL := negInf
		bestEdge := -1
		for k := 0; k < tries; k++ {
			cand := t.Clone()
			leaf := cand.newNode()
			leaf.Taxon = taxon
			leaf.Name = names[taxon]
			leaf.Length = cfg.MeanBranchLength
			cand.attachAt(leaf, cand.Nodes[edges[perm[k]].ID], leaf.Length)
			cand.reindex()
			l := lk.LogLikelihood(cand)
			if l > bestLogL {
				bestLogL = l
				bestEdge = perm[k]
			}
		}
		leaf := t.newNode()
		leaf.Taxon = taxon
		leaf.Name = names[taxon]
		leaf.Length = cfg.MeanBranchLength
		t.attachAt(leaf, edges[bestEdge], leaf.Length)
		t.reindex()
	}
	return t
}

// perturbBranches multiplies every branch length by a log-normal
// jitter.
func perturbBranches(t *Tree, rng *sim.RNG) {
	t.PostOrder(func(n *Node) {
		if n.Parent != nil {
			n.Length *= rng.LogNormal(0, 0.2)
			if n.Length < 1e-8 {
				n.Length = 1e-8
			}
		}
	})
}

// selectParent picks a population index with rank-proportional bias
// toward fitter (lower-index) individuals.
func selectParent(n int, rng *sim.RNG) int {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(n - i)
	}
	return rng.Choice(w)
}

func sortPop(pop []individual) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].logL > pop[j].logL })
}
