package phylo

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"lattice/internal/sim"
)

// SearchConfig holds the genetic-algorithm settings of a GARLI-style
// maximum-likelihood tree search. The fields marked (predictor) are
// among the nine variables of the paper's runtime model.
type SearchConfig struct {
	// SearchReps is the number of independent search replicates; the
	// best tree across replicates is returned. (predictor)
	SearchReps int
	// StartingTree selects random, stepwise-addition, or user
	// starting trees. (predictor)
	StartingTree StartingTreeKind
	// UserTree is the starting tree when StartingTree == StartUser.
	UserTree *Tree
	// AttachmentsPerTaxon is the number of candidate attachment
	// branches evaluated per taxon during stepwise addition; GARLI's
	// attachmentspertaxon setting. (predictor)
	AttachmentsPerTaxon int
	// PopulationSize is the number of individuals in the GA
	// population (GARLI default 4).
	PopulationSize int
	// MaxGenerations bounds each replicate.
	MaxGenerations int
	// StagnationGenerations terminates a replicate after this many
	// generations without an improvement larger than ImprovementEps
	// (GARLI's genthreshfortopoterm).
	StagnationGenerations int
	// ImprovementEps is the log-likelihood gain regarded as a real
	// improvement (GARLI's scorethreshforterm).
	ImprovementEps float64
	// NNIWeight, SPRWeight and BrlenWeight are the relative
	// probabilities of the three mutation categories.
	NNIWeight, SPRWeight, BrlenWeight float64
	// SPRRadius limits regraft distance (GARLI's limsprrange);
	// 0 = unlimited.
	SPRRadius int
	// BrlenOptIterations is the golden-section refinement budget
	// applied to mutated branches.
	BrlenOptIterations int
	// MeanBranchLength seeds starting-tree branch lengths.
	MeanBranchLength float64
}

// DefaultSearchConfig mirrors GARLI's stock settings scaled to this
// engine.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{
		SearchReps:            1,
		StartingTree:          StartStepwise,
		AttachmentsPerTaxon:   25,
		PopulationSize:        4,
		MaxGenerations:        500,
		StagnationGenerations: 60,
		ImprovementEps:        0.01,
		NNIWeight:             0.5,
		SPRWeight:             0.3,
		BrlenWeight:           0.2,
		SPRRadius:             6,
		BrlenOptIterations:    8,
		MeanBranchLength:      0.05,
	}
}

func (c *SearchConfig) validate() error {
	if c.SearchReps < 1 {
		return fmt.Errorf("phylo: SearchReps must be >= 1, got %d", c.SearchReps)
	}
	if c.PopulationSize < 1 {
		return fmt.Errorf("phylo: PopulationSize must be >= 1, got %d", c.PopulationSize)
	}
	if c.MaxGenerations < 1 {
		return fmt.Errorf("phylo: MaxGenerations must be >= 1, got %d", c.MaxGenerations)
	}
	if c.StartingTree == StartUser && c.UserTree == nil {
		return fmt.Errorf("phylo: StartUser requires a UserTree")
	}
	if c.StartingTree == StartStepwise && c.AttachmentsPerTaxon < 1 {
		return fmt.Errorf("phylo: AttachmentsPerTaxon must be >= 1 for stepwise addition")
	}
	if c.NNIWeight+c.SPRWeight+c.BrlenWeight <= 0 {
		return fmt.Errorf("phylo: mutation weights must not all be zero")
	}
	return nil
}

// SearchResult reports the outcome of a Search.
type SearchResult struct {
	BestTree    *Tree
	BestLogL    float64
	Generations int     // total generations across replicates
	Evaluations int     // likelihood evaluations performed
	Work        float64 // total cost in cell updates
	Replicates  []ReplicateResult
}

// ReplicateResult is the outcome of one search replicate.
type ReplicateResult struct {
	Tree        *Tree
	LogL        float64
	Generations int
}

type individual struct {
	tree *Tree
	logL float64
}

// Search runs a GARLI-style genetic-algorithm ML search and returns
// the best tree found. It is deterministic for a given RNG seed.
func Search(data *PatternData, model *Model, rates *SiteRates, names []string, cfg SearchConfig, rng *sim.RNG) (*SearchResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(names) != data.NumTaxa {
		return nil, fmt.Errorf("phylo: %d taxon names for %d-taxon data", len(names), data.NumTaxa)
	}
	lk, err := NewLikelihood(data, model, rates)
	if err != nil {
		return nil, err
	}
	return SearchWith(lk, names, cfg, rng)
}

// SearchWith runs the GA search on any Evaluator — a plain Likelihood,
// a PartitionedLikelihood, or an optimized backend.
func SearchWith(ev Evaluator, names []string, cfg SearchConfig, rng *sim.RNG) (*SearchResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &SearchResult{BestLogL: negInf}
	for rep := 0; rep < cfg.SearchReps; rep++ {
		rr, evals, err := searchReplicate(ev, nil, names, cfg, rng)
		if err != nil {
			return nil, err
		}
		res.Replicates = append(res.Replicates, *rr)
		res.Generations += rr.Generations
		res.Evaluations += evals
		if rr.LogL > res.BestLogL {
			res.BestLogL = rr.LogL
			res.BestTree = rr.Tree
		}
	}
	res.Work = ev.TotalWork()
	return res, nil
}

// SearchPartitioned runs the GA search over several partitions sharing
// one topology (GARLI's partitioned models).
func SearchPartitioned(parts []Partition, names []string, cfg SearchConfig, rng *sim.RNG) (*SearchResult, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("phylo: no partitions")
	}
	if len(names) != parts[0].Data.NumTaxa {
		return nil, fmt.Errorf("phylo: %d taxon names for %d-taxon data", len(names), parts[0].Data.NumTaxa)
	}
	pl, err := NewPartitionedLikelihood(parts)
	if err != nil {
		return nil, err
	}
	return SearchWith(pl, names, cfg, rng)
}

// SearchParallel runs the GA search across a pool of evaluators. With
// one replicate the pool fans out population and stepwise-addition
// candidate scoring inside the replicate; with several replicates each
// worker runs whole replicates on its own engine. Either way the
// result is bit-identical for a fixed seed regardless of worker count:
// every replicate draws from its own RNG stream derived up front, each
// engine is confined to one goroutine, scores are independent of
// engine cache state, and ties are broken by replicate index exactly
// as the serial loop does.
//
// Note SearchParallel's replicate RNG streams differ from SearchWith's
// sequential draws, so the two return different (equally valid) search
// trajectories; determinism guarantees hold within each entry point.
func SearchParallel(pool *EvaluatorPool, names []string, cfg SearchConfig, rng *sim.RNG) (*SearchResult, error) {
	if pool == nil || pool.Workers() < 1 {
		return nil, fmt.Errorf("phylo: SearchParallel needs a non-empty evaluator pool")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Derive one independent stream per replicate serially, before any
	// goroutine starts: sim.RNG stream derivation consumes parent
	// draws, so the order must not depend on scheduling.
	streams := make([]*sim.RNG, cfg.SearchReps)
	for i := range streams {
		streams[i] = rng.Stream(fmt.Sprintf("rep%d", i))
	}
	res := &SearchResult{BestLogL: negInf}
	if cfg.SearchReps == 1 {
		rr, evals, err := searchReplicate(pool.Evaluator(0), pool, names, cfg, streams[0])
		if err != nil {
			return nil, err
		}
		res.Replicates = []ReplicateResult{*rr}
		res.Generations = rr.Generations
		res.Evaluations = evals
		res.BestLogL = rr.LogL
		res.BestTree = rr.Tree
		res.Work = pool.TotalWork()
		return res, nil
	}
	type repOut struct {
		rr    *ReplicateResult
		evals int
		err   error
	}
	outs := make([]repOut, cfg.SearchReps)
	workers := pool.Workers()
	if workers > cfg.SearchReps {
		workers = cfg.SearchReps
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ev Evaluator) {
			defer wg.Done()
			for {
				rep := int(next.Add(1)) - 1
				if rep >= cfg.SearchReps {
					return
				}
				rr, evals, err := searchReplicate(ev, nil, names, cfg, streams[rep])
				outs[rep] = repOut{rr: rr, evals: evals, err: err}
			}
		}(pool.Evaluator(w))
	}
	wg.Wait()
	// Merge in replicate-index order: deterministic tie-breaks and a
	// deterministic first error.
	for rep := 0; rep < cfg.SearchReps; rep++ {
		if outs[rep].err != nil {
			return nil, outs[rep].err
		}
		rr := outs[rep].rr
		res.Replicates = append(res.Replicates, *rr)
		res.Generations += rr.Generations
		res.Evaluations += outs[rep].evals
		if rr.LogL > res.BestLogL {
			res.BestLogL = rr.LogL
			res.BestTree = rr.Tree
		}
	}
	res.Work = pool.TotalWork()
	return res, nil
}

var negInf = math.Inf(-1)

// gaState is the mutable state of one GA search replicate; it is the
// unit that checkpointing (see Runner in checkpoint.go) snapshots.
type gaState struct {
	lk       Evaluator
	pool     *EvaluatorPool // optional: parallel batch scoring
	cfg      SearchConfig
	pop      []individual
	gen      int
	stagnant int
	best     float64
	evals    int
}

// scoreTrees evaluates a batch of trees, through the pool when one is
// available and the batch is worth fanning out. The serial and pooled
// paths return bit-identical scores: an engine recomputes anything its
// cache cannot prove current, and reuse is bit-identical to
// recomputation, so a tree's score never depends on which engine (or
// how warm an engine) evaluated it.
func scoreTrees(ev Evaluator, pool *EvaluatorPool, trees []*Tree) []float64 {
	if pool != nil && pool.Workers() > 1 && len(trees) > 1 {
		return pool.ScoreAll(trees)
	}
	out := make([]float64, len(trees))
	for i, t := range trees {
		out[i] = ev.LogLikelihood(t)
	}
	return out
}

// newGAState builds the starting population for one replicate. Trees
// are built first (consuming the RNG in the same order as the original
// serial loop — evaluations draw no randomness) and then scored as a
// batch, so the population can be fanned out across a pool.
func newGAState(lk Evaluator, pool *EvaluatorPool, names []string, cfg SearchConfig, rng *sim.RNG) (*gaState, error) {
	start, err := startingTree(lk, pool, names, cfg, rng)
	if err != nil {
		return nil, err
	}
	st := &gaState{lk: lk, pool: pool, cfg: cfg}
	st.pop = make([]individual, cfg.PopulationSize)
	trees := make([]*Tree, cfg.PopulationSize)
	for i := range trees {
		t := start.Clone()
		if i > 0 {
			// Diversify the initial population with a branch jiggle.
			perturbBranches(t, rng)
		}
		trees[i] = t
	}
	scores := scoreTrees(lk, pool, trees)
	st.evals += len(trees)
	for i := range st.pop {
		st.pop[i] = individual{tree: trees[i], logL: scores[i]}
	}
	sortPop(st.pop)
	st.best = st.pop[0].logL
	return st, nil
}

// done reports whether the replicate has terminated.
func (st *gaState) done() bool {
	return st.gen >= st.cfg.MaxGenerations || st.stagnant >= st.cfg.StagnationGenerations
}

// step runs a single GA generation.
func (st *gaState) step(rng *sim.RNG) {
	cfg := st.cfg
	weights := []float64{cfg.NNIWeight, cfg.SPRWeight, cfg.BrlenWeight}
	parent := st.pop[selectParent(len(st.pop), rng)]
	child := parent.tree.Clone()
	var touched *Node
	switch rng.Choice(weights) {
	case 0:
		touched = child.NNI(rng)
	case 1:
		touched = child.SPR(cfg.SPRRadius, rng)
	default:
		perturbBranches(child, rng)
	}
	var logL float64
	if cfg.BrlenOptIterations > 0 {
		// Refine the branch the move disturbed (or a random internal
		// edge for pure branch-length mutations); each golden-section
		// step is one likelihood evaluation.
		target := touched
		if target == nil || target.Parent == nil {
			edges := child.InternalEdges()
			if len(edges) > 0 {
				target = edges[rng.Intn(len(edges))]
			} else {
				target = child.Root.Children[0]
			}
		}
		logL = st.lk.OptimizeBranch(child, target, cfg.BrlenOptIterations)
		st.evals += cfg.BrlenOptIterations + 8
	} else {
		logL = st.lk.LogLikelihood(child)
		st.evals++
	}
	worst := len(st.pop) - 1
	if logL > st.pop[worst].logL {
		st.pop[worst] = individual{tree: child, logL: logL}
		sortPop(st.pop)
	}
	if st.pop[0].logL > st.best+cfg.ImprovementEps {
		st.best = st.pop[0].logL
		st.stagnant = 0
	} else {
		st.stagnant++
	}
	st.gen++
}

func searchReplicate(lk Evaluator, pool *EvaluatorPool, names []string, cfg SearchConfig, rng *sim.RNG) (*ReplicateResult, int, error) {
	st, err := newGAState(lk, pool, names, cfg, rng)
	if err != nil {
		return nil, 0, err
	}
	for !st.done() {
		st.step(rng)
	}
	logL := st.finalPolish()
	return &ReplicateResult{Tree: st.pop[0].tree, LogL: logL, Generations: st.gen}, st.evals, nil
}

// finalPolish runs GARLI's terminal optimization phase: full
// branch-length optimization sweeps over the best tree until the gain
// of a sweep falls below ImprovementEps.
func (st *gaState) finalPolish() float64 {
	best := st.pop[0].tree
	logL := st.pop[0].logL
	iters := st.cfg.BrlenOptIterations
	if iters < 6 {
		iters = 6
	}
	for sweep := 0; sweep < 8; sweep++ {
		before := logL
		best.PostOrder(func(n *Node) {
			if n.Parent != nil {
				logL = st.lk.OptimizeBranch(best, n, iters)
				st.evals += iters + 8
			}
		})
		if logL-before < st.cfg.ImprovementEps {
			break
		}
	}
	st.pop[0].logL = logL
	return logL
}

// startingTree builds the replicate's initial tree per config.
func startingTree(lk Evaluator, pool *EvaluatorPool, names []string, cfg SearchConfig, rng *sim.RNG) (*Tree, error) {
	switch cfg.StartingTree {
	case StartRandom:
		return RandomTree(names, cfg.MeanBranchLength, rng), nil
	case StartUser:
		return cfg.UserTree.Clone(), nil
	case StartStepwise:
		return stepwiseAdditionTree(lk, pool, names, cfg, rng), nil
	default:
		return nil, fmt.Errorf("phylo: unknown starting tree kind %v", cfg.StartingTree)
	}
}

// stepwiseAdditionTree grows a tree taxon by taxon; each new taxon is
// tried on AttachmentsPerTaxon randomly chosen branches (or all, if
// fewer exist) and kept at the most likely position. The work this
// burns is exactly why attachmentspertaxon appears among the paper's
// runtime predictors.
func stepwiseAdditionTree(lk Evaluator, pool *EvaluatorPool, names []string, cfg SearchConfig, rng *sim.RNG) *Tree {
	order := rng.Perm(len(names))
	t := &Tree{}
	root := t.newNode()
	t.Root = root
	for i := 0; i < 3; i++ {
		leaf := t.newNode()
		leaf.Taxon = order[i]
		leaf.Name = names[order[i]]
		leaf.Length = rng.Exp(cfg.MeanBranchLength)
		leaf.Parent = root
		root.Children = append(root.Children, leaf)
	}
	t.reindex()
	// Sub-alignment likelihood for partial trees still uses the full
	// pattern data: absent taxa simply do not appear in the tree, and
	// the pruning pass only visits nodes in the tree, so this is
	// equivalent to marginalizing over them for ranking purposes.
	for i := 3; i < len(order); i++ {
		taxon := order[i]
		var edges []*Node
		t.PostOrder(func(n *Node) {
			if n.Parent != nil {
				edges = append(edges, n)
			}
		})
		tries := cfg.AttachmentsPerTaxon
		if tries > len(edges) {
			tries = len(edges)
		}
		perm := rng.Perm(len(edges))
		// Build every candidate placement, then score the batch —
		// possibly in parallel. The lowest-index strictly-greater
		// argmax reproduces the original serial loop's first-wins
		// tie-break exactly.
		cands := make([]*Tree, tries)
		for k := 0; k < tries; k++ {
			cand := t.Clone()
			leaf := cand.newNode()
			leaf.Taxon = taxon
			leaf.Name = names[taxon]
			leaf.Length = cfg.MeanBranchLength
			cand.attachAt(leaf, cand.Nodes[edges[perm[k]].ID], leaf.Length)
			cand.reindex()
			cands[k] = cand
		}
		scores := scoreTrees(lk, pool, cands)
		bestLogL := negInf
		bestEdge := -1
		for k := 0; k < tries; k++ {
			if scores[k] > bestLogL {
				bestLogL = scores[k]
				bestEdge = perm[k]
			}
		}
		leaf := t.newNode()
		leaf.Taxon = taxon
		leaf.Name = names[taxon]
		leaf.Length = cfg.MeanBranchLength
		t.attachAt(leaf, edges[bestEdge], leaf.Length)
		t.reindex()
	}
	return t
}

// perturbBranches multiplies every branch length by a log-normal
// jitter.
func perturbBranches(t *Tree, rng *sim.RNG) {
	t.PostOrder(func(n *Node) {
		if n.Parent != nil {
			n.Length *= rng.LogNormal(0, 0.2)
			if n.Length < 1e-8 {
				n.Length = 1e-8
			}
		}
	})
}

// selectParent picks a population index with rank-proportional bias
// toward fitter (lower-index) individuals.
func selectParent(n int, rng *sim.RNG) int {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(n - i)
	}
	return rng.Choice(w)
}

func sortPop(pop []individual) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].logL > pop[j].logL })
}
