package phylo

import (
	"fmt"
	"math"
)

// Matrix is a small dense square matrix stored row-major. Substitution
// models are at most 61×61 (codon models), so simple dense routines
// are appropriate; no sparse or blocked structure is needed.
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix returns a zeroed n×n matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// jacobiEigen computes the eigendecomposition of a symmetric matrix
// using cyclic Jacobi rotations. It returns the eigenvalues and a
// matrix whose columns are the corresponding orthonormal eigenvectors.
// The input is not modified. Jacobi is slow asymptotically but
// perfectly adequate (and very robust) at substitution-model sizes.
func jacobiEigen(a *Matrix) (vals []float64, vecs *Matrix, err error) {
	n := a.N
	w := a.Clone()
	v := NewMatrix(n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-24 {
			vals = make([]float64, n)
			for i := 0; i < n; i++ {
				vals[i] = w.At(i, i)
			}
			return vals, v, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation to w on both sides.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("phylo: Jacobi eigensolver did not converge in %d sweeps", maxSweeps)
}

// EigenSystem holds the spectral decomposition of a reversible rate
// matrix Q, prepared so that transition probability matrices
// P(t) = exp(Qt) can be computed with two small matrix products.
//
// For a reversible Q with stationary distribution pi, the matrix
// B = D^(1/2) Q D^(-1/2) (D = diag(pi)) is symmetric. If B = U L U^T,
// then exp(Qt) = D^(-1/2) U exp(Lt) U^T D^(1/2). We store
// C1 = D^(-1/2) U and C2 = U^T D^(1/2) so P(t) = C1 exp(Lt) C2.
type EigenSystem struct {
	N      int
	Values []float64
	C1, C2 *Matrix
}

// NewEigenSystem decomposes the reversible rate matrix q with
// stationary frequencies pi. It returns an error if the decomposition
// fails or inputs are inconsistent.
func NewEigenSystem(q *Matrix, pi []float64) (*EigenSystem, error) {
	n := q.N
	if len(pi) != n {
		return nil, fmt.Errorf("phylo: frequency vector length %d does not match matrix size %d", len(pi), n)
	}
	for i, p := range pi {
		if p <= 0 {
			return nil, fmt.Errorf("phylo: stationary frequency %d is %g; must be positive", i, p)
		}
	}
	b := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, q.At(i, j)*math.Sqrt(pi[i]/pi[j]))
		}
	}
	// Force exact symmetry against rounding.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := 0.5 * (b.At(i, j) + b.At(j, i))
			b.Set(i, j, s)
			b.Set(j, i, s)
		}
	}
	vals, u, err := jacobiEigen(b)
	if err != nil {
		return nil, err
	}
	c1 := NewMatrix(n)
	c2 := NewMatrix(n)
	for i := 0; i < n; i++ {
		si := math.Sqrt(pi[i])
		for j := 0; j < n; j++ {
			c1.Set(i, j, u.At(i, j)/si)
			c2.Set(j, i, u.At(i, j)*si)
		}
	}
	return &EigenSystem{N: n, Values: vals, C1: c1, C2: c2}, nil
}

// TransitionMatrix writes exp(Q·t) into dst, allocating it when nil,
// and returns it. Small negative entries from rounding are clamped to
// zero and rows renormalized.
func (es *EigenSystem) TransitionMatrix(t float64, dst *Matrix) *Matrix {
	n := es.N
	if dst == nil || dst.N != n {
		dst = NewMatrix(n)
	}
	expl := make([]float64, n)
	for k, l := range es.Values {
		expl[k] = math.Exp(l * t)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += es.C1.At(i, k) * expl[k] * es.C2.At(k, j)
			}
			if s < 0 {
				s = 0
			}
			dst.Set(i, j, s)
		}
	}
	// Renormalize rows to sum to exactly 1.
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			row += dst.At(i, j)
		}
		if row > 0 {
			inv := 1 / row
			for j := 0; j < n; j++ {
				dst.Set(i, j, dst.At(i, j)*inv)
			}
		}
	}
	return dst
}

// TransitionProbsInto writes exp(Q·t) into dst, a flat row-major N×N
// slice, using expScratch (length ≥ N) for the eigenvalue
// exponentials. It performs the exact floating-point operations of
// TransitionMatrix in the same order — results are bit-identical —
// but allocates nothing, so callers that cache many matrices (the
// beagle engine's transition cache) can recycle both buffers freely.
func (es *EigenSystem) TransitionProbsInto(t float64, dst, expScratch []float64) {
	n := es.N
	if len(dst) < n*n || len(expScratch) < n {
		panic("phylo: TransitionProbsInto scratch too small")
	}
	expl := expScratch[:n]
	for k, l := range es.Values {
		expl[k] = math.Exp(l * t)
	}
	c1, c2 := es.C1.Data, es.C2.Data
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += c1[i*n+k] * expl[k] * c2[k*n+j]
			}
			if s < 0 {
				s = 0
			}
			dst[i*n+j] = s
		}
	}
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			row += dst[i*n+j]
		}
		if row > 0 {
			inv := 1 / row
			for j := 0; j < n; j++ {
				dst[i*n+j] *= inv
			}
		}
	}
}
