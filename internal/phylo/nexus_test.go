package phylo

import (
	"strings"
	"testing"
)

const sampleNexus = `#NEXUS
[ a GARLI-style data file ]
BEGIN DATA;
  DIMENSIONS NTAX=4 NCHAR=12;
  FORMAT DATATYPE=DNA MISSING=? GAP=- INTERLEAVE=NO;
  MATRIX
    taxon_a  ACGTACGTACGT
    taxon_b  ACGTACGAACGA
    'taxon c'  ACG-ACGTAC?T
    taxon_d  ACGTACTTACGT
  ;
END;
BEGIN TREES;
  TRANSLATE
    1 taxon_a,
    2 taxon_b,
    3 'taxon c',
    4 taxon_d
  ;
  TREE best = ((1:0.1,2:0.2):0.05,3:0.3,4:0.15);
END;
`

func TestParseNEXUSData(t *testing.T) {
	nf, err := ParseNEXUS(strings.NewReader(sampleNexus))
	if err != nil {
		t.Fatal(err)
	}
	al := nf.Alignment
	if al == nil {
		t.Fatal("no alignment parsed")
	}
	if al.NumTaxa() != 4 || al.Length() != 12 {
		t.Fatalf("got %d × %d", al.NumTaxa(), al.Length())
	}
	if al.Type != Nucleotide {
		t.Errorf("datatype %v", al.Type)
	}
	if al.Names[2] != "taxon c" {
		t.Errorf("quoted name parsed as %q", al.Names[2])
	}
	if al.Seqs[2] != "ACG-ACGTAC?T" {
		t.Errorf("sequence with gap/missing mangled: %q", al.Seqs[2])
	}
	if err := al.Validate(); err != nil {
		t.Errorf("parsed alignment invalid: %v", err)
	}
}

func TestParseNEXUSTreesWithTranslate(t *testing.T) {
	nf, err := ParseNEXUS(strings.NewReader(sampleNexus))
	if err != nil {
		t.Fatal(err)
	}
	nw, ok := nf.Trees["best"]
	if !ok {
		t.Fatalf("tree 'best' missing; have %v", nf.TreeOrder)
	}
	idx := map[string]int{}
	for i, n := range nf.Alignment.Names {
		idx[n] = i
	}
	tr, err := ParseNewick(nw, idx)
	if err != nil {
		t.Fatalf("translated Newick unparseable (%q): %v", nw, err)
	}
	if tr.NumTaxa() != 4 {
		t.Errorf("tree has %d taxa", tr.NumTaxa())
	}
	// The translate table must have substituted labels.
	if !strings.Contains(nw, "taxon c") {
		t.Errorf("translate table not applied: %q", nw)
	}
}

func TestParseNEXUSInterleaved(t *testing.T) {
	in := `#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=3 NCHAR=8;
  FORMAT DATATYPE=DNA INTERLEAVE;
  MATRIX
    a ACGT
    b ACGA
    c ACGG
    a TTTT
    b TTTA
    c TTTG
  ;
END;
`
	nf, err := ParseNEXUS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if nf.Alignment.Seqs[0] != "ACGTTTTT" {
		t.Errorf("interleaved row 0 = %q", nf.Alignment.Seqs[0])
	}
	if nf.Alignment.Seqs[2] != "ACGGTTTG" {
		t.Errorf("interleaved row 2 = %q", nf.Alignment.Seqs[2])
	}
}

func TestParseNEXUSWrappedSequential(t *testing.T) {
	in := `#NEXUS
BEGIN CHARACTERS;
  DIMENSIONS NTAX=2 NCHAR=8;
  FORMAT DATATYPE=PROTEIN;
  MATRIX
    alpha ARND
          CQEG
    beta  ARNE CQEG
  ;
END;
`
	nf, err := ParseNEXUS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if nf.Alignment.Type != AminoAcid {
		t.Errorf("datatype %v", nf.Alignment.Type)
	}
	if nf.Alignment.Seqs[0] != "ARNDCQEG" || nf.Alignment.Seqs[1] != "ARNECQEG" {
		t.Errorf("wrapped rows: %q", nf.Alignment.Seqs)
	}
}

func TestParseNEXUSErrors(t *testing.T) {
	cases := []string{
		"",
		"not nexus",
		"#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=3 NCHAR=4;\nMATRIX\n a ACGT\n b ACGT\n;\nEND;\n", // NTAX mismatch
		"#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=2 NCHAR=8;\nMATRIX\n a ACGT\n b ACGT\n;\nEND;\n", // NCHAR mismatch
		"#NEXUS\n",
	}
	for i, in := range cases {
		if _, err := ParseNEXUS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNEXUSRoundTrip(t *testing.T) {
	a := &Alignment{
		Type:  Nucleotide,
		Names: []string{"one", "two taxa", "three"},
		Seqs:  []string{"ACGTAC", "ACG-AC", "AC?TAC"},
	}
	var buf strings.Builder
	if err := a.WriteNEXUS(&buf); err != nil {
		t.Fatal(err)
	}
	nf, err := ParseNEXUS(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("round trip parse failed:\n%s\n%v", buf.String(), err)
	}
	b := nf.Alignment
	for i := range a.Names {
		if b.Names[i] != a.Names[i] || b.Seqs[i] != a.Seqs[i] {
			t.Errorf("row %d: %q/%q vs %q/%q", i, b.Names[i], b.Seqs[i], a.Names[i], a.Seqs[i])
		}
	}
}

func TestNEXUSCommentsIgnored(t *testing.T) {
	in := `#NEXUS
[outer [nested] comment]
BEGIN DATA;
  DIMENSIONS [why not here] NTAX=3 NCHAR=4;
  FORMAT DATATYPE=DNA;
  MATRIX
    a ACGT [trailing]
    b ACGA
    c ACGC
  ;
END;
`
	nf, err := ParseNEXUS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if nf.Alignment.NumTaxa() != 3 {
		t.Errorf("taxa = %d", nf.Alignment.NumTaxa())
	}
}

// TestParseNEXUSMalformedDimensions pins the dimension parsing fix: a
// non-numeric or non-positive NTAX/NCHAR must produce a parse error
// naming the bad dimension, not a silently-zero count.
func TestParseNEXUSMalformedDimensions(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=abc NCHAR=4;\nMATRIX\n a ACGT\n;\nEND;\n", "NTAX"},
		{"#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=0 NCHAR=4;\nMATRIX\n;\nEND;\n", "NTAX"},
		{"#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=1 NCHAR=4x;\nMATRIX\n a ACGT\n;\nEND;\n", "NCHAR"},
		{"#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=1 NCHAR=-8;\nMATRIX\n a ACGT\n;\nEND;\n", "NCHAR"},
	}
	for i, tc := range cases {
		_, err := ParseNEXUS(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("case %d: expected a parse error for malformed %s", i, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("case %d: error %q does not name dimension %s", i, err, tc.wantSub)
		}
	}
}
