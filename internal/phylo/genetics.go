package phylo

import (
	"fmt"
	"strings"
)

// DataType identifies the character alphabet of an alignment and the
// state space of the substitution process. It is one of the nine
// predictor variables of the runtime model (the paper reports it as
// the second most important, at 72.4% increase in MSE).
type DataType int

const (
	// Nucleotide data: 4 states (A, C, G, T).
	Nucleotide DataType = iota
	// AminoAcid data: 20 states.
	AminoAcid
	// Codon data: 61 sense codons of the standard genetic code
	// (stop codons excluded). By far the most expensive per site.
	Codon
)

// NumStates returns the size of the state space.
func (d DataType) NumStates() int {
	switch d {
	case Nucleotide:
		return 4
	case AminoAcid:
		return 20
	case Codon:
		return 61
	default:
		panic(fmt.Sprintf("phylo: unknown DataType %d", int(d)))
	}
}

func (d DataType) String() string {
	switch d {
	case Nucleotide:
		return "nucleotide"
	case AminoAcid:
		return "aminoacid"
	case Codon:
		return "codon"
	default:
		return fmt.Sprintf("DataType(%d)", int(d))
	}
}

// ParseDataType converts a string (as found in GARLI configuration
// files and the portal form) to a DataType.
func ParseDataType(s string) (DataType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "nucleotide", "dna", "rna", "nuc":
		return Nucleotide, nil
	case "aminoacid", "amino acid", "protein", "aa":
		return AminoAcid, nil
	case "codon", "codon-aminoacid":
		return Codon, nil
	default:
		return 0, fmt.Errorf("phylo: unknown data type %q", s)
	}
}

const (
	nucLetters = "ACGT"
	aaLetters  = "ARNDCQEGHILKMFPSTWYV"
	bases      = "TCAG"
)

// standardCode maps codon index (in TCAG order: 16*b1 + 4*b2 + b3) to
// the encoded amino acid letter, '*' for stop. This is the standard
// genetic code laid out in the classic TCAG table ordering.
var standardCode = [64]byte{}

func init() {
	aaByRow := [...]string{
		"FFLL", "SSSS", "YY**", "CC*W", // T--
		"LLLL", "PPPP", "HHQQ", "RRRR", // C--
		"IIIM", "TTTT", "NNKK", "SSRR", // A--
		"VVVV", "AAAA", "DDEE", "GGGG", // G--
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 4; j++ {
			standardCode[i*4+j] = aaByRow[i][j]
		}
	}
}

// senseCodons lists the 61 non-stop codon indices in ascending order;
// codonState maps a raw 0..63 codon index to its 0..60 state, or -1
// for stop codons.
var (
	senseCodons []int
	codonState  [64]int
)

func init() {
	for i := 0; i < 64; i++ {
		codonState[i] = -1
	}
	for i := 0; i < 64; i++ {
		if standardCode[i] != '*' {
			codonState[i] = len(senseCodons)
			senseCodons = append(senseCodons, i)
		}
	}
	if len(senseCodons) != 61 {
		panic("phylo: standard genetic code must have 61 sense codons")
	}
}

// NumSenseCodons is the number of non-stop codons in the standard code.
const NumSenseCodons = 61

// CodonString returns the three-letter spelling of sense codon state s.
func CodonString(s int) string {
	c := senseCodons[s]
	return string([]byte{bases[c/16], bases[(c/4)%4], bases[c%4]})
}

// CodonAminoAcid returns the amino acid letter encoded by sense codon
// state s under the standard genetic code.
func CodonAminoAcid(s int) byte { return standardCode[senseCodons[s]] }

// codonNucleotides returns the three nucleotide states (0..3 in TCAG
// order) of sense codon state s.
func codonNucleotides(s int) [3]int {
	c := senseCodons[s]
	return [3]int{c / 16, (c / 4) % 4, c % 4}
}

// StateChar returns the display character for state s under data type d.
func (d DataType) StateChar(s int) string {
	switch d {
	case Nucleotide:
		return string(nucLetters[s])
	case AminoAcid:
		return string(aaLetters[s])
	case Codon:
		return CodonString(s)
	default:
		panic("phylo: unknown data type")
	}
}

// encodeNucleotide maps a base character to state 0..3 (A, C, G, T),
// or -1 for gap/ambiguity (treated as missing data).
func encodeNucleotide(c byte) int {
	switch c {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't', 'U', 'u':
		return 3
	default:
		return -1
	}
}

// encodeAminoAcid maps an amino acid character to state 0..19, or -1
// for gap/ambiguity.
func encodeAminoAcid(c byte) int {
	idx := strings.IndexByte(aaLetters, toUpper(c))
	return idx
}

func toUpper(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

// encodeCodon maps a codon triplet to sense-codon state 0..60, or -1
// for stops, gaps or ambiguity. Nucleotides here are in TCAG order.
func encodeCodon(a, b, c byte) int {
	i1 := strings.IndexByte(bases, toUpper(a))
	i2 := strings.IndexByte(bases, toUpper(b))
	i3 := strings.IndexByte(bases, toUpper(c))
	if i1 < 0 || i2 < 0 || i3 < 0 {
		// Allow U for T.
		fix := func(x byte) int {
			if toUpper(x) == 'U' {
				return 0
			}
			return strings.IndexByte(bases, toUpper(x))
		}
		i1, i2, i3 = fix(a), fix(b), fix(c)
		if i1 < 0 || i2 < 0 || i3 < 0 {
			return -1
		}
	}
	return codonState[i1*16+i2*4+i3]
}
