package phylo

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Alignment is a multiple sequence alignment: one row per taxon, all
// rows the same length. Sequences are stored as raw characters; state
// encoding happens when the alignment is compiled into site patterns.
type Alignment struct {
	Type  DataType
	Names []string
	Seqs  []string
}

// NumTaxa returns the number of sequences.
func (a *Alignment) NumTaxa() int { return len(a.Names) }

// Length returns the number of alignment columns (characters for
// nucleotide and amino acid data; nucleotides — not codons — for
// codon data).
func (a *Alignment) Length() int {
	if len(a.Seqs) == 0 {
		return 0
	}
	return len(a.Seqs[0])
}

// Validate checks the structural invariants the GARLI validation mode
// enforces before any job is scheduled: at least 3 taxa, non-empty
// equal-length rows, unique taxon names, codon alignments a multiple
// of 3 long, and at least one usable site pattern.
func (a *Alignment) Validate() error {
	if len(a.Names) != len(a.Seqs) {
		return fmt.Errorf("phylo: %d names but %d sequences", len(a.Names), len(a.Seqs))
	}
	if len(a.Names) < 3 {
		return fmt.Errorf("phylo: alignment has %d taxa; at least 3 required", len(a.Names))
	}
	seen := make(map[string]bool, len(a.Names))
	for i, n := range a.Names {
		if n == "" {
			return fmt.Errorf("phylo: taxon %d has an empty name", i)
		}
		if seen[n] {
			return fmt.Errorf("phylo: duplicate taxon name %q", n)
		}
		seen[n] = true
	}
	l := a.Length()
	if l == 0 {
		return fmt.Errorf("phylo: alignment is empty")
	}
	for i, s := range a.Seqs {
		if len(s) != l {
			return fmt.Errorf("phylo: sequence %q has length %d; expected %d", a.Names[i], len(s), l)
		}
	}
	if a.Type == Codon && l%3 != 0 {
		return fmt.Errorf("phylo: codon alignment length %d is not a multiple of 3", l)
	}
	pd, err := a.Compile()
	if err != nil {
		return err
	}
	if pd.NumPatterns() == 0 {
		return fmt.Errorf("phylo: alignment has no usable site patterns")
	}
	return nil
}

// PatternData is a compiled alignment: columns collapsed to unique
// site patterns with multiplicities. GARLI's per-generation cost is
// proportional to unique patterns, not raw alignment length, which is
// why the runtime model uses pattern count as a predictor.
type PatternData struct {
	Type     DataType
	NumTaxa  int
	States   []int8    // [pattern*NumTaxa + taxon], -1 = missing
	Weights  []float64 // multiplicity of each pattern
	NumSites int       // total columns represented (codon sites for codon data)
}

// NumPatterns returns the number of unique site patterns.
func (p *PatternData) NumPatterns() int { return len(p.Weights) }

// Compile encodes the alignment into states and collapses identical
// columns into weighted patterns. Characters that do not encode a
// valid state (gaps, ambiguity codes, stop codons) become missing
// data.
func (a *Alignment) Compile() (*PatternData, error) {
	nt := a.NumTaxa()
	if nt == 0 {
		return nil, fmt.Errorf("phylo: cannot compile empty alignment")
	}
	var nsites int
	switch a.Type {
	case Nucleotide, AminoAcid:
		nsites = a.Length()
	case Codon:
		if a.Length()%3 != 0 {
			return nil, fmt.Errorf("phylo: codon alignment length %d is not a multiple of 3", a.Length())
		}
		nsites = a.Length() / 3
	default:
		return nil, fmt.Errorf("phylo: unknown data type %v", a.Type)
	}
	column := make([]int8, nt)
	counts := make(map[string]float64)
	order := make([]string, 0, nsites)
	for s := 0; s < nsites; s++ {
		for t := 0; t < nt; t++ {
			var st int
			switch a.Type {
			case Nucleotide:
				st = encodeNucleotide(a.Seqs[t][s])
			case AminoAcid:
				st = encodeAminoAcid(a.Seqs[t][s])
			case Codon:
				st = encodeCodon(a.Seqs[t][3*s], a.Seqs[t][3*s+1], a.Seqs[t][3*s+2])
			}
			column[t] = int8(st)
		}
		key := string(columnBytes(column))
		if _, ok := counts[key]; !ok {
			order = append(order, key)
		}
		counts[key]++
	}
	pd := &PatternData{Type: a.Type, NumTaxa: nt, NumSites: nsites}
	for _, key := range order {
		for i := 0; i < nt; i++ {
			pd.States = append(pd.States, int8(key[i])-1) // undo +1 bias
		}
		pd.Weights = append(pd.Weights, counts[key])
	}
	return pd, nil
}

// columnBytes encodes a column as bytes with a +1 bias so the missing
// marker -1 becomes 0 and map keys are valid.
func columnBytes(col []int8) []byte {
	b := make([]byte, len(col))
	for i, v := range col {
		b[i] = byte(v + 1)
	}
	return b
}

// Bootstrap returns a new PatternData whose pattern weights are a
// multinomial resample (with replacement) of the original sites —
// Felsenstein's nonparametric bootstrap. The pattern set is shared;
// only weights change, so resampling is cheap regardless of alignment
// size. The rand function must return a uniform variate in [0,1).
func (p *PatternData) Bootstrap(rand func() float64) *PatternData {
	n := p.NumPatterns()
	cum := make([]float64, n)
	var total float64
	for i, w := range p.Weights {
		total += w
		cum[i] = total
	}
	weights := make([]float64, n)
	draws := int(total + 0.5)
	for i := 0; i < draws; i++ {
		x := rand() * total
		idx := sort.SearchFloat64s(cum, x)
		if idx >= n {
			idx = n - 1
		}
		weights[idx]++
	}
	return &PatternData{
		Type:     p.Type,
		NumTaxa:  p.NumTaxa,
		States:   p.States,
		Weights:  weights,
		NumSites: p.NumSites,
	}
}

// ParseFASTA reads a FASTA-format alignment. The data type is not
// recorded in FASTA, so the caller supplies it.
func ParseFASTA(r io.Reader, dt DataType) (*Alignment, error) {
	a := &Alignment{Type: dt}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cur strings.Builder
	flush := func() {
		if len(a.Names) > len(a.Seqs) {
			a.Seqs = append(a.Seqs, cur.String())
			cur.Reset()
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			flush()
			name := strings.TrimSpace(strings.TrimPrefix(line, ">"))
			if name == "" {
				return nil, fmt.Errorf("phylo: FASTA record with empty name")
			}
			a.Names = append(a.Names, name)
			continue
		}
		if len(a.Names) == 0 {
			return nil, fmt.Errorf("phylo: FASTA sequence data before first header")
		}
		cur.WriteString(line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("phylo: reading FASTA: %w", err)
	}
	flush()
	if len(a.Names) == 0 {
		return nil, fmt.Errorf("phylo: empty FASTA input")
	}
	return a, nil
}

// WriteFASTA writes the alignment in FASTA format with 70-column
// wrapped sequence lines.
func (a *Alignment) WriteFASTA(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, name := range a.Names {
		if _, err := fmt.Fprintf(bw, ">%s\n", name); err != nil {
			return err
		}
		s := a.Seqs[i]
		for len(s) > 70 {
			if _, err := fmt.Fprintln(bw, s[:70]); err != nil {
				return err
			}
			s = s[70:]
		}
		if _, err := fmt.Fprintln(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParsePHYLIP reads a relaxed sequential PHYLIP alignment: a header
// line with taxon and site counts followed by "name sequence" rows
// (sequence may continue on following lines until the declared length
// is reached).
func ParsePHYLIP(r io.Reader, dt DataType) (*Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("phylo: empty PHYLIP input")
	}
	var ntax, nchar int
	if _, err := fmt.Sscan(strings.TrimSpace(sc.Text()), &ntax, &nchar); err != nil {
		return nil, fmt.Errorf("phylo: bad PHYLIP header: %w", err)
	}
	if ntax <= 0 || nchar <= 0 {
		return nil, fmt.Errorf("phylo: bad PHYLIP dimensions %d × %d", ntax, nchar)
	}
	a := &Alignment{Type: dt}
	for len(a.Names) < ntax {
		if !sc.Scan() {
			return nil, fmt.Errorf("phylo: PHYLIP input ended after %d of %d taxa", len(a.Names), ntax)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		name := fields[0]
		seq := strings.Join(fields[1:], "")
		for len(seq) < nchar {
			if !sc.Scan() {
				return nil, fmt.Errorf("phylo: sequence for %q ended at %d of %d characters", name, len(seq), nchar)
			}
			seq += strings.Join(strings.Fields(sc.Text()), "")
		}
		if len(seq) != nchar {
			return nil, fmt.Errorf("phylo: sequence for %q has %d characters; expected %d", name, len(seq), nchar)
		}
		a.Names = append(a.Names, name)
		a.Seqs = append(a.Seqs, seq)
	}
	return a, nil
}
