package phylo

import (
	"strings"
	"testing"
)

// consensusTaxa maps names a..f to indices for hand-built trees.
func consensusTaxa(names []string) map[string]int {
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	return idx
}

func mustTree(t *testing.T, newick string, idx map[string]int) *Tree {
	t.Helper()
	tr, err := ParseNewick(newick, idx)
	if err != nil {
		t.Fatalf("ParseNewick(%q): %v", newick, err)
	}
	return tr
}

// TestConsensusExactlyFiftyPercentTie: with an even number of trees a
// split can appear in exactly half of them. The majority test is
// strict, so such ties are dropped — deterministically, regardless of
// input order — and two conflicting 50% splits collapse into a
// polytomy instead of either one winning by accident.
func TestConsensusExactlyFiftyPercentTie(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	idx := consensusTaxa(names)
	t1 := mustTree(t, "((a:1,b:1):1,(c:1,d:1):1):0;", idx)
	t2 := mustTree(t, "((a:1,c:1):1,(b:1,d:1):1):0;", idx)

	for _, order := range [][]*Tree{{t1, t2}, {t2, t1}} {
		cons, err := NewSplitSupport(order).MajorityRuleConsensus(names)
		if err != nil {
			t.Fatal(err)
		}
		if got := cons.Bipartitions(); len(got) != 0 {
			t.Fatalf("50%% splits must be excluded; consensus kept %v", got)
		}
		// The result is the star tree over all four taxa.
		if got := cons.Newick(); strings.Count(got, "(") != 1 {
			t.Fatalf("expected a star tree, got %s", got)
		}
	}
}

// TestConsensusTwoTrees: two trees degenerate to the strict consensus
// — shared splits survive at 100%, conflicting ones vanish.
func TestConsensusTwoTrees(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	idx := consensusTaxa(names)
	// Both trees contain the split {a,b}; they disagree about {c,d}
	// vs {d,e}.
	t1 := mustTree(t, "((a:1,b:1):1,(c:1,(d:1,e:1):1):1):0;", idx)
	t2 := mustTree(t, "((a:1,b:1):1,((c:1,d:1):1,e:1):1):0;", idx)

	cons, err := NewSplitSupport([]*Tree{t1, t2}).MajorityRuleConsensus(names)
	if err != nil {
		t.Fatal(err)
	}
	got := cons.Bipartitions()
	shared := canonicalSplit([]int{idx["a"], idx["b"]}, len(names))
	if !got[shared] {
		t.Fatalf("shared split {a,b} missing from consensus %v", got)
	}
	for bp := range got {
		if bp != shared {
			t.Fatalf("unshared split %v leaked into a two-tree consensus", bp)
		}
	}
	// Support labels on the kept group read 100.
	if nw := cons.Newick(); !strings.Contains(nw, "a") || !strings.Contains(nw, "e") {
		t.Fatalf("consensus lost taxa: %s", nw)
	}
	var label string
	cons.PostOrder(func(n *Node) {
		if !n.IsLeaf() && n.Parent != nil {
			label = n.Name
		}
	})
	if label != "100" {
		t.Fatalf("shared split support label = %q, want 100", label)
	}
}

// TestConsensusIdenticalTrees: unanimous input reproduces the input
// topology with every split at 100%.
func TestConsensusIdenticalTrees(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	idx := consensusTaxa(names)
	newick := "((a:1,b:1):1,(c:1,(d:1,e:1):1):1):0;"
	t1 := mustTree(t, newick, idx)
	t2 := mustTree(t, newick, idx)

	cons, err := NewSplitSupport([]*Tree{t1, t2}).MajorityRuleConsensus(names)
	if err != nil {
		t.Fatal(err)
	}
	want := t1.Bipartitions()
	got := cons.Bipartitions()
	if len(got) != len(want) {
		t.Fatalf("consensus splits %v != input splits %v", got, want)
	}
	for bp := range want {
		if !got[bp] {
			t.Fatalf("input split %v missing from unanimous consensus", bp)
		}
	}
}

func TestConsensusNeedsThreeTaxa(t *testing.T) {
	s := NewSplitSupport(nil)
	if _, err := s.MajorityRuleConsensus([]string{"a", "b"}); err == nil {
		t.Fatal("consensus over 2 taxa must fail")
	}
}
