package phylo

import (
	"fmt"
	"strings"
)

// Nucleotide substitution models, ordered by generality:
// JC69 ⊂ K80 ⊂ HKY85 ⊂ GTR. States are A, C, G, T (indices 0..3);
// transitions are A↔G and C↔T.

// uniformFreqs returns a frequency vector of n equal entries.
func uniformFreqs(n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = 1 / float64(n)
	}
	return f
}

// NewJC69 returns the Jukes–Cantor (1969) model: equal rates, equal
// frequencies.
func NewJC69() (*Model, error) {
	r := NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			r.Set(i, j, 1)
		}
	}
	return newModelFromRates("JC69", Nucleotide, r, uniformFreqs(4), nil)
}

// NewK80 returns the Kimura (1980) two-parameter model with
// transition/transversion rate ratio kappa and equal frequencies.
func NewK80(kappa float64) (*Model, error) {
	if kappa <= 0 {
		return nil, fmt.Errorf("phylo: K80 kappa must be positive, got %g", kappa)
	}
	return hkyLike("K80", kappa, uniformFreqs(4))
}

// NewHKY85 returns the Hasegawa–Kishino–Yano (1985) model with
// transition/transversion ratio kappa and arbitrary base frequencies
// (A, C, G, T order).
func NewHKY85(kappa float64, freqs []float64) (*Model, error) {
	if kappa <= 0 {
		return nil, fmt.Errorf("phylo: HKY85 kappa must be positive, got %g", kappa)
	}
	return hkyLike("HKY85", kappa, freqs)
}

func hkyLike(name string, kappa float64, freqs []float64) (*Model, error) {
	r := NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if isTransition(i, j) {
				r.Set(i, j, kappa)
			} else {
				r.Set(i, j, 1)
			}
		}
	}
	return newModelFromRates(name, Nucleotide, r, freqs, map[string]float64{"kappa": kappa})
}

// isTransition reports whether the substitution between nucleotide
// states i and j (A=0, C=1, G=2, T=3) is a transition (purine↔purine
// or pyrimidine↔pyrimidine).
func isTransition(i, j int) bool {
	return (i == 0 && j == 2) || (i == 2 && j == 0) ||
		(i == 1 && j == 3) || (i == 3 && j == 1)
}

// NewGTR returns the general time-reversible model. rates holds the
// six exchangeabilities in the conventional order AC, AG, AT, CG, CT,
// GT; freqs are the A, C, G, T frequencies.
func NewGTR(rates [6]float64, freqs []float64) (*Model, error) {
	r := NewMatrix(4)
	idx := 0
	params := map[string]float64{}
	labels := [6]string{"rAC", "rAG", "rAT", "rCG", "rCT", "rGT"}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if rates[idx] <= 0 {
				return nil, fmt.Errorf("phylo: GTR rate %s must be positive, got %g", labels[idx], rates[idx])
			}
			r.Set(i, j, rates[idx])
			params[labels[idx]] = rates[idx]
			idx++
		}
	}
	return newModelFromRates("GTR", Nucleotide, r, freqs, params)
}

// NucModelSpec describes a nucleotide model by name plus free
// parameters, as collected from the portal form.
type NucModelSpec struct {
	Name  string     // "JC69", "K80", "HKY85", "GTR"
	Kappa float64    // K80/HKY85
	Rates [6]float64 // GTR exchangeabilities
	Freqs []float64  // empirical or estimated frequencies; nil = equal
}

// Build constructs the model described by the spec.
func (s NucModelSpec) Build() (*Model, error) {
	freqs := s.Freqs
	if freqs == nil {
		freqs = uniformFreqs(4)
	}
	switch strings.ToUpper(s.Name) {
	case "JC", "JC69":
		return NewJC69()
	case "K80", "K2P":
		return NewK80(s.Kappa)
	case "HKY", "HKY85":
		return NewHKY85(s.Kappa, freqs)
	case "GTR":
		return NewGTR(s.Rates, freqs)
	default:
		return nil, fmt.Errorf("phylo: unknown nucleotide model %q", s.Name)
	}
}
