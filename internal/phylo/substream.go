package phylo

import (
	"fmt"
	"hash/fnv"

	"lattice/internal/sim"
)

// SubStream derives an independent RNG for one replicate of a labelled
// fan-out, purely from (seed, label, rep). Unlike sim.RNG.Stream it
// consumes no parent generator state, so replicate rep's stream is the
// same whether replicates run in submission order, in parallel shards,
// or alone after a crash — the property workflow fan-out stages rely
// on for bit-identical results at any parallelism.
func SubStream(seed int64, label string, rep int) *sim.RNG {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x1f%s\x1f%d", seed, label, rep) //lint:allow errdrop -- hash.Hash documents that Write never errors
	return sim.NewRNG(int64(h.Sum64() >> 1))
}

// BootstrapStream is the sub-stream for bootstrap resampling replicate
// rep under a submission seed.
func BootstrapStream(seed int64, rep int) *sim.RNG {
	return SubStream(seed, "bootstrap", rep)
}

// BootstrapReplicate resamples pattern weights for replicate rep of a
// bootstrap fan-out seeded with seed. Calling it twice with the same
// arguments yields bit-identical weights.
func (p *PatternData) BootstrapReplicate(seed int64, rep int) *PatternData {
	return p.Bootstrap(BootstrapStream(seed, rep).Float64)
}
