package phylo

import (
	"math"
	"testing"

	"lattice/internal/sim"
)

func TestSimulateAlignmentShape(t *testing.T) {
	rng := sim.NewRNG(1)
	names := TaxonNames(6)
	tr := RandomTree(names, 0.1, rng)
	m, _ := NewJC69()
	rs, _ := NewSiteRates(RateHomogeneous, 0, 0, 1)
	al, err := SimulateAlignment(tr, m, rs, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if al.NumTaxa() != 6 || al.Length() != 100 {
		t.Fatalf("got %d × %d", al.NumTaxa(), al.Length())
	}
	if err := al.Validate(); err != nil {
		t.Errorf("simulated alignment invalid: %v", err)
	}
}

func TestSimulateCodonEmitsTriplets(t *testing.T) {
	rng := sim.NewRNG(2)
	tr := RandomTree(TaxonNames(4), 0.1, rng)
	m, err := NewGY94(2, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := NewSiteRates(RateHomogeneous, 0, 0, 1)
	al, err := SimulateAlignment(tr, m, rs, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if al.Length() != 60 {
		t.Fatalf("codon alignment length %d, want 60 nucleotides", al.Length())
	}
	pd, err := al.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if pd.NumSites != 20 {
		t.Errorf("compiled codon sites %d, want 20", pd.NumSites)
	}
	// No stop codons should ever be emitted.
	for _, seq := range al.Seqs {
		for i := 0; i < len(seq); i += 3 {
			if encodeCodon(seq[i], seq[i+1], seq[i+2]) == -1 {
				t.Fatalf("simulated stop/invalid codon %q", seq[i:i+3])
			}
		}
	}
}

func TestSimulateCompositionMatchesStationary(t *testing.T) {
	rng := sim.NewRNG(3)
	freqs := []float64{0.4, 0.1, 0.2, 0.3}
	m, err := NewHKY85(2, freqs)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := NewSiteRates(RateHomogeneous, 0, 0, 1)
	tr := RandomTree(TaxonNames(8), 0.1, rng)
	al, err := SimulateAlignment(tr, m, rs, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 4)
	var total float64
	for _, seq := range al.Seqs {
		for i := 0; i < len(seq); i++ {
			if s := encodeNucleotide(seq[i]); s >= 0 {
				counts[s]++
				total++
			}
		}
	}
	for i := range counts {
		got := counts[i] / total
		if math.Abs(got-freqs[i]) > 0.03 {
			t.Errorf("state %d frequency %.3f, want %.3f", i, got, freqs[i])
		}
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	m, _ := NewJC69()
	rs, _ := NewSiteRates(RateGamma, 0.5, 0, 4)
	gen := func(seed int64) string {
		rng := sim.NewRNG(seed)
		tr := RandomTree(TaxonNames(5), 0.1, rng)
		al, err := SimulateAlignment(tr, m, rs, 50, rng)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, s := range al.Seqs {
			out += s + "\n"
		}
		return out
	}
	if gen(42) != gen(42) {
		t.Error("same seed produced different alignments")
	}
	if gen(42) == gen(43) {
		t.Error("different seeds produced identical alignments")
	}
}

func TestSimulateErrors(t *testing.T) {
	rng := sim.NewRNG(4)
	m, _ := NewJC69()
	rs, _ := NewSiteRates(RateHomogeneous, 0, 0, 1)
	tr := RandomTree(TaxonNames(4), 0.1, rng)
	if _, err := SimulateAlignment(tr, m, rs, 0, rng); err == nil {
		t.Error("expected error for zero sites")
	}
}

func TestConsensusOfIdenticalTrees(t *testing.T) {
	idx := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3, "e": 4}
	names := []string{"a", "b", "c", "d", "e"}
	tr, _ := ParseNewick("((a:1,b:1):1,(c:1,d:1):1,e:1);", idx)
	sup := NewSplitSupport([]*Tree{tr, tr.Clone(), tr.Clone()})
	cons, err := sup.MajorityRuleConsensus(names)
	if err != nil {
		t.Fatal(err)
	}
	if d := cons.RFDistance(tr); d != 0 {
		t.Errorf("consensus of identical trees differs from them: RF=%d\ncons=%s", d, cons.Newick())
	}
	for bp := range tr.Bipartitions() {
		if s := sup.Support(bp); s != 1 {
			t.Errorf("split support %v, want 1", s)
		}
	}
}

func TestConsensusMajorityOnly(t *testing.T) {
	idx := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3, "e": 4}
	names := []string{"a", "b", "c", "d", "e"}
	t1, _ := ParseNewick("((a:1,b:1):1,(c:1,d:1):1,e:1);", idx)
	t2, _ := ParseNewick("((a:1,b:1):1,(c:1,e:1):1,d:1);", idx)
	t3, _ := ParseNewick("((a:1,b:1):1,(d:1,e:1):1,c:1);", idx)
	sup := NewSplitSupport([]*Tree{t1, t2, t3})
	cons, err := sup.MajorityRuleConsensus(names)
	if err != nil {
		t.Fatal(err)
	}
	// Only the {a,b} split appears in all three; the cd/ce/de splits
	// each appear once and must be excluded.
	got := cons.Bipartitions()
	if len(got) != 1 {
		t.Errorf("consensus has %d splits, want 1: %s", len(got), cons.Newick())
	}
}
