package sim

import (
	"math"
	"math/rand"
)

// RNG is a seeded source of pseudo-random variates with the
// distributions the simulators need. Each component of a simulation
// should own its own RNG stream (derived with Stream) so that adding
// randomness consumption in one component does not perturb another —
// this keeps experiments comparable across code changes.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Stream derives an independent generator from this one, labelled by
// name. The derivation is deterministic: the same parent seed and name
// always yield the same stream.
func (g *RNG) Stream(name string) *RNG {
	// Mix the name into a new seed with FNV-1a over the parent's
	// base draw; stable across runs.
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	base := g.r.Int63()
	return NewRNG(int64(h^uint64(base)) & math.MaxInt64)
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform variate in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*g.r.NormFloat64()
}

// LogNormal returns a log-normal variate where the underlying normal
// has mean mu and standard deviation sigma. Host speeds and
// availability burst lengths in desktop grids are classically
// log-normal-ish heavy-tailed.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Exp returns an exponential variate with the given mean (not rate).
// The mean must be positive.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// ExpDuration returns an exponential Duration with the given mean.
func (g *RNG) ExpDuration(mean Duration) Duration {
	return Duration(g.Exp(float64(mean)))
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Choice returns a uniform index into a collection of size n weighted
// by weights; weights must be non-negative and not all zero.
func (g *RNG) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("sim: Choice with non-positive total weight")
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes a collection of length n in place using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Gamma returns a gamma variate with the given shape and scale, using
// the Marsaglia–Tsang method. Shape and scale must be positive.
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("sim: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Boost: gamma(a) = gamma(a+1) * U^(1/a).
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Pareto returns a Pareto variate with the given minimum and tail
// index alpha; heavy-tailed task sizes and burst lengths use this.
func (g *RNG) Pareto(xmin, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}
