// Package sim provides a deterministic discrete-event simulation kernel.
//
// All grid components in this repository (local resource managers, the
// BOINC server and its volunteer hosts, the meta-scheduler, MDS
// propagation) advance on a shared virtual clock owned by an Engine.
// Determinism is a hard requirement: given the same seed and the same
// sequence of Schedule calls, a simulation produces identical event
// orderings on every run. Ties in event time are broken by scheduling
// order, never by map iteration or goroutine interleaving.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in seconds from the start
// of the simulation. A float64 is used rather than time.Duration so a
// single run can span simulated decades (the paper's system performed
// more than 20,000 CPU-years of computation) without overflow.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

// Common durations, for readable arithmetic at call sites.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 24 * Hour
	Week   Duration = 7 * Day
	Year   Duration = 365 * Day
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Hours reports d in hours.
func (d Duration) Hours() float64 { return float64(d) / float64(Hour) }

// Seconds reports d in seconds.
func (d Duration) Seconds() float64 { return float64(d) }

func (t Time) String() string {
	return fmt.Sprintf("t+%.3fs", float64(t))
}

// Clock is a read-only view of virtual time — the hook observability
// and instrumentation layers (internal/obs) read timestamps through,
// so recorded data is reproducible for a fixed seed. *Engine satisfies
// it.
type Clock interface {
	Now() Time
}

var _ Clock = (*Engine)(nil)

// Handler is a callback invoked when an event fires. It runs with the
// engine clock set to the event's time.
type Handler func()

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

type event struct {
	at        Time
	seq       uint64 // tie-break: FIFO among simultaneous events
	id        EventID
	fn        Handler
	cancelled bool
	index     int // heap index
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the pending-event queue. It is not
// safe for concurrent use: simulations are single-threaded by design so
// that runs are reproducible.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	nextID  EventID
	events  map[EventID]*event
	running bool
	stopped bool
	steps   uint64
}

// NewEngine returns an engine with the clock at time zero and an empty
// event queue.
func NewEngine() *Engine {
	return &Engine{events: make(map[EventID]*event)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule arranges for fn to run after delay. A negative delay is
// treated as zero (the event fires at the current time, after events
// already scheduled for that time). It returns an ID usable with
// Cancel.
func (e *Engine) Schedule(delay Duration, fn Handler) EventID {
	if delay < 0 || math.IsNaN(float64(delay)) {
		delay = 0
	}
	return e.ScheduleAt(e.now.Add(delay), fn)
}

// ScheduleAt arranges for fn to run at absolute time at. Times in the
// past are clamped to the current time.
func (e *Engine) ScheduleAt(at Time, fn Handler) EventID {
	if fn == nil {
		panic("sim: ScheduleAt with nil handler")
	}
	if at < e.now {
		at = e.now
	}
	e.nextID++
	ev := &event{at: at, seq: e.nextSeq, id: e.nextID, fn: fn}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	e.events[ev.id] = ev
	return ev.id
}

// Cancel prevents a scheduled event from firing. Cancelling an event
// that already fired, or was already cancelled, is a no-op. It reports
// whether an event was actually cancelled.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.events[id]
	if !ok || ev.cancelled {
		return false
	}
	ev.cancelled = true
	delete(e.events, id)
	return true
}

// Stop makes the currently executing Run return after the current
// handler finishes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// step fires the earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		delete(e.events, ev.id)
		e.now = ev.at
		e.steps++
		ev.fn()
		return true
	}
	return false
}

// Steps reports how many events the engine has fired since creation.
// The durability layer uses it to distinguish inputs that arrived
// before the simulation ever ran from inputs injected mid-run.
func (e *Engine) Steps() uint64 { return e.steps }

// Run fires events in order until the queue drains or Stop is called.
// It returns the final clock value.
func (e *Engine) Run() Time {
	return e.RunUntil(Time(math.Inf(1)))
}

// RunUntil fires events in order until the queue drains, Stop is
// called, or the next event would fire after deadline. The clock is
// advanced to deadline if the simulation had events left but none
// before the deadline; otherwise it stays at the last event fired.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped {
		// Skip cancelled events sitting at the head.
		for len(e.queue) > 0 && e.queue[0].cancelled {
			heap.Pop(&e.queue)
		}
		if len(e.queue) == 0 {
			return e.now
		}
		if e.queue[0].at > deadline {
			if deadline > e.now && !math.IsInf(float64(deadline), 1) {
				e.now = deadline
			}
			return e.now
		}
		e.step()
	}
	return e.now
}

// Every schedules fn to run repeatedly with the given period, starting
// one period from now. fn may call the returned stop function to end
// the series; Cancel on the returned EventID only cancels the next
// occurrence. The period must be positive.
func (e *Engine) Every(period Duration, fn Handler) (stop func()) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	stopped := false
	var tick Handler
	var pending EventID
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = e.Schedule(period, tick)
		}
	}
	pending = e.Schedule(period, tick)
	return func() {
		stopped = true
		e.Cancel(pending)
	}
}
