package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.Schedule(1, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("double Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	var id EventID
	id = e.Schedule(1, func() {})
	e.Run()
	if e.Cancel(id) {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++ })
	e.Schedule(10, func() { count++ })
	end := e.RunUntil(5)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if end != 5 {
		t.Fatalf("clock advanced to %v, want 5", end)
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count after full run = %d, want 2", count)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v, want [1 3]", times)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt the run)", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var stop func()
	stop = e.Every(10, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			stop()
		}
	})
	e.RunUntil(1000)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, at := range ticks {
		if want := Time(10 * (i + 1)); at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {
		e.Schedule(-10, func() {
			if e.Now() != 5 {
				t.Errorf("negative-delay event at %v, want 5", e.Now())
			}
		})
	})
	e.Run()
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine()
		g := NewRNG(seed)
		var fired []Time
		var spawn func()
		n := 0
		spawn = func() {
			fired = append(fired, e.Now())
			n++
			if n < 50 {
				e.Schedule(Duration(g.Exp(3)), spawn)
			}
		}
		e.Schedule(0, spawn)
		e.Run()
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of non-negative delays, events fire in
// non-decreasing time order and the clock ends at the max delay.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		var max Duration
		for _, d := range raw {
			delay := Duration(d)
			if delay > max {
				max = delay
			}
			e.Schedule(delay, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Now() == Time(max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGStreamsIndependentAndStable(t *testing.T) {
	a1 := NewRNG(7).Stream("alpha")
	a2 := NewRNG(7).Stream("alpha")
	b := NewRNG(7).Stream("beta")
	if a1.Float64() != a2.Float64() {
		t.Error("same seed+name should give identical streams")
	}
	// Different names should (overwhelmingly) differ.
	same := 0
	for i := 0; i < 16; i++ {
		if a1.Float64() == b.Float64() {
			same++
		}
	}
	if same == 16 {
		t.Error("streams alpha and beta are identical")
	}
}

func TestGammaMean(t *testing.T) {
	g := NewRNG(1)
	const shape, scale = 2.5, 3.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Gamma(shape, scale)
	}
	mean := sum / n
	if math.Abs(mean-shape*scale) > 0.2 {
		t.Errorf("gamma mean = %.3f, want %.3f", mean, shape*scale)
	}
}

func TestGammaSmallShape(t *testing.T) {
	g := NewRNG(2)
	const shape, scale = 0.3, 2.0
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := g.Gamma(shape, scale)
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("invalid gamma variate %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-shape*scale) > 0.05 {
		t.Errorf("gamma mean = %.3f, want %.3f", mean, shape*scale)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(3)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Exp(10)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.5 {
		t.Errorf("exp mean = %.3f, want 10", mean)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	g := NewRNG(4)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[g.Choice([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Errorf("counts %v do not respect weights 1:2:7", counts)
	}
	frac := float64(counts[2]) / 30000
	if math.Abs(frac-0.7) > 0.03 {
		t.Errorf("weight-7 fraction = %.3f, want ~0.7", frac)
	}
}

func TestParetoTail(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto variate %v below xmin", v)
		}
	}
}

func TestDurationHelpers(t *testing.T) {
	if Hour.Hours() != 1 {
		t.Error("Hour.Hours() != 1")
	}
	if d := Time(100).Sub(Time(40)); d != 60 {
		t.Errorf("Sub = %v, want 60", d)
	}
	if ti := Time(10).Add(Minute); ti != 70 {
		t.Errorf("Add = %v, want 70", ti)
	}
}
