package workload

import (
	"fmt"

	"lattice/internal/phylo"
	"lattice/internal/sim"
)

// Submission is what a portal user submits in one shot: a job
// specification replicated up to the portal's 2000-replicate limit
// ("the ability to submit up to 2000 job replicates with a single
// submission").
type Submission struct {
	Spec       JobSpec
	Replicates int
	// Bootstrap marks the replicates as bootstrap searches (each
	// resamples the data) rather than independent best-tree searches.
	Bootstrap bool
	// UserEmail identifies the submitter for notifications.
	UserEmail string
	// BatchTag, when set by the service layer, names the batch the
	// submission was accepted as; schedulers stamp it onto the grid
	// jobs they expand so observability (internal/obs) can parent
	// traces and journal events by batch.
	BatchTag string
	// ServiceOnly restricts placement to service-grid resources —
	// clusters and Condor pools behind Globus gatekeepers — and never
	// the BOINC volunteer pool. Workflow engines set it on short
	// setup/reduce stages where volunteer turnaround latency would
	// dwarf the compute.
	ServiceOnly bool
}

// MaxReplicates is the portal's per-submission replicate limit.
const MaxReplicates = 2000

// Validate applies portal-level checks.
func (s *Submission) Validate() error {
	if s.Replicates < 1 || s.Replicates > MaxReplicates {
		return fmt.Errorf("workload: %d replicates outside [1, %d]", s.Replicates, MaxReplicates)
	}
	if s.UserEmail == "" {
		return fmt.Errorf("workload: submission has no user email")
	}
	return s.Spec.Validate()
}

// Generator draws job specifications and submissions from
// distributions shaped like the population of real GARLI jobs the
// paper's portal served ("approximately 150 GARLI jobs were used as
// training data; these represent a great diversity of 'real' jobs").
// The variable-importance structure of the paper's Figure 2 emerges
// from these choices: almost everyone leaves the category count at
// GARLI's default of 4 (so NumRateCats carries no signal), while
// rate-heterogeneity treatment and data type vary widely and multiply
// per-site cost heavily.
type Generator struct {
	rng  *sim.RNG
	next int64
}

// NewGenerator returns a deterministic generator.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: sim.NewRNG(seed)}
}

// Job draws one job specification.
func (g *Generator) Job() JobSpec {
	r := g.rng
	g.next++
	spec := JobSpec{Seed: g.next}

	// Data type: mostly nucleotide; protein data sets are a modest
	// minority and codon analyses are rare (and, as in practice, run
	// on small data because of their per-site cost).
	switch r.Choice([]float64{0.84, 0.11, 0.05}) {
	case 0:
		spec.DataType = phylo.Nucleotide
		switch r.Choice([]float64{0.45, 0.3, 0.12, 0.13}) {
		case 0:
			spec.SubstModel = "GTR"
		case 1:
			spec.SubstModel = "HKY85"
		case 2:
			spec.SubstModel = "K80"
		default:
			spec.SubstModel = "JC69"
		}
	case 1:
		spec.DataType = phylo.AminoAcid
		if r.Bool(0.7) {
			spec.SubstModel = "empirical"
		} else {
			spec.SubstModel = "poisson"
		}
	default:
		spec.DataType = phylo.Codon
		spec.SubstModel = "GY94"
	}

	// Data size: "modest (a few taxa, short sequences) to massive
	// (hundreds or thousands of taxa, sequences thousands of
	// characters in length)" — a routine mode and a large-project mode
	// (the AToL consortium data sets) so the upper tail is populated
	// rather than owned by one outlier.
	large := r.Bool(0.12)
	if large {
		spec.NumTaxa = 15 + int(r.LogNormal(4.05, 0.25)) // median ~72
		spec.SeqLength = 500 + int(r.LogNormal(7.2, 0.25))
	} else {
		spec.NumTaxa = 5 + int(r.LogNormal(3.3, 0.25)) // median ~32
		spec.SeqLength = 300 + int(r.LogNormal(6.7, 0.25))
	}
	if spec.NumTaxa > 600 {
		spec.NumTaxa = 600
	}
	if spec.SeqLength > 10000 {
		spec.SeqLength = 10000
	}
	if spec.DataType == phylo.AminoAcid {
		// Protein alignments run smaller than nucleotide ones; 20
		// states per site is already a 25-fold cost multiplier.
		if spec.NumTaxa > 60 {
			spec.NumTaxa = 15 + spec.NumTaxa%45
		}
		if spec.SeqLength > 2400 {
			spec.SeqLength = 400 + spec.SeqLength%2000
		}
	}
	if spec.DataType == phylo.Codon {
		// Codon jobs stay small: 61-state likelihoods on large
		// alignments would be weeks per replicate even on the grid.
		if spec.NumTaxa > 30 {
			spec.NumTaxa = 10 + spec.NumTaxa%20
		}
		if spec.SeqLength > 900 {
			spec.SeqLength = 300 + spec.SeqLength%600
		}
		spec.SeqLength -= spec.SeqLength % 3
	}

	// Rate heterogeneity correlates with project seriousness: quick
	// exploratory runs on small data often skip it, while virtually
	// every production-scale analysis models gamma rate variation
	// (usually with invariant sites).
	var hetWeights []float64
	if large {
		hetWeights = []float64{0.05, 0.45, 0.5}
	} else {
		hetWeights = []float64{0.45, 0.33, 0.22}
	}
	switch r.Choice(hetWeights) {
	case 0:
		spec.RateHet = phylo.RateHomogeneous
	case 1:
		spec.RateHet = phylo.RateGamma
	default:
		spec.RateHet = phylo.RateGammaInv
	}
	// NumRateCats is a config value present in every job file;
	// GARLI's default of 4 categories is almost never changed — which
	// is exactly why the paper found NumRateCats to have "almost no
	// importance". (It is inert when RateHet is homogeneous.)
	spec.NumRateCats = 4
	if r.Bool(0.06) {
		spec.NumRateCats = 2 + r.Intn(7) // 2..8
	}
	if spec.RateHet != phylo.RateHomogeneous {
		spec.GammaShape = r.LogNormal(-0.4, 0.5) // median ~0.67
		if spec.RateHet == phylo.RateGammaInv {
			spec.PropInvariant = r.Uniform(0.05, 0.5)
		}
	}

	// Search settings.
	switch r.Choice([]float64{0.6, 0.35, 0.05}) {
	case 0:
		spec.SearchReps = 1
	case 1:
		spec.SearchReps = 2 + r.Intn(3)
	default:
		spec.SearchReps = 5 + r.Intn(6)
	}
	switch r.Choice([]float64{0.7, 0.25, 0.05}) {
	case 0:
		spec.StartingTree = phylo.StartStepwise
	case 1:
		spec.StartingTree = phylo.StartRandom
	default:
		spec.StartingTree = phylo.StartUser
	}
	spec.AttachmentsPerTaxon = 25
	if r.Bool(0.2) {
		spec.AttachmentsPerTaxon = 5 + r.Intn(96)
	}
	return spec
}

// Submission draws a full portal submission: a spec plus a replicate
// count shaped like real usage (single best-tree searches, bootstrap
// batches in the hundreds, and occasional maximal 2000-replicate
// submissions).
func (g *Generator) Submission() Submission {
	r := g.rng
	sub := Submission{Spec: g.Job(), UserEmail: fmt.Sprintf("user%03d@example.edu", r.Intn(200))}
	switch r.Choice([]float64{0.35, 0.4, 0.2, 0.05}) {
	case 0:
		sub.Replicates = 1 + r.Intn(10)
	case 1:
		sub.Replicates = 50 + r.Intn(151) // bootstrap-scale
		sub.Bootstrap = true
	case 2:
		sub.Replicates = 300 + r.Intn(701)
		sub.Bootstrap = true
	default:
		sub.Replicates = MaxReplicates
		sub.Bootstrap = true
	}
	return sub
}

// TrainingJobs draws n jobs and samples a realized runtime for each on
// the reference computer — the raw material of the paper's ~150-job
// training matrix. Jobs arrive in study clusters: a researcher
// typically submits several variations of the same analysis (different
// replicate counts, slightly different alignments), so the matrix
// contains groups of similar rows, as the real portal's did.
func (g *Generator) TrainingJobs(n int) ([]JobSpec, []float64) {
	specs := make([]JobSpec, 0, n)
	secs := make([]float64, 0, n)
	r := g.rng
	for len(specs) < n {
		base := g.Job()
		variants := 2 + r.Intn(5)
		for v := 0; v < variants && len(specs) < n; v++ {
			g.next++
			s := base
			s.Seed = g.next
			if v > 0 {
				// Same study, slightly different data and settings.
				s.NumTaxa = jitterInt(r, base.NumTaxa, 0.1, 4)
				s.SeqLength = jitterInt(r, base.SeqLength, 0.1, 30)
				if s.DataType == phylo.Codon {
					s.SeqLength -= s.SeqLength % 3
				}
				if r.Bool(0.4) {
					s.SearchReps = 1 + r.Intn(4)
				}
			}
			specs = append(specs, s)
			secs = append(secs, ReferenceSeconds(s.SampleWork(r)))
		}
	}
	return specs, secs
}

// jitterInt perturbs v by up to ±frac, with a floor.
func jitterInt(r *sim.RNG, v int, frac float64, floor int) int {
	out := int(float64(v) * r.Uniform(1-frac, 1+frac))
	if out < floor {
		out = floor
	}
	return out
}
