package workload

import "fmt"

// WorkflowStage is one node of a workflow DAG: a replicated GARLI
// analysis plus the stages whose results it consumes. Stages travel
// with JSON tags because workflows are inputs — they ride in WAL
// records and through the portal's JSON API.
type WorkflowStage struct {
	// ID names the stage uniquely within its workflow
	// ("model-selection", "search", ...).
	ID string `json:"id"`
	// Spec is the GARLI job specification the stage replicates. The
	// stage's effective seed is derived by the workflow engine from
	// the workflow seed, the stage ID and the attempt number, so
	// Spec.Seed is only a base offset.
	Spec JobSpec `json:"spec"`
	// Replicates is the stage's fan-out width (1 for reduce stages).
	Replicates int `json:"replicates"`
	// Bootstrap marks the replicates as bootstrap resamples.
	Bootstrap bool `json:"bootstrap,omitempty"`
	// After lists the IDs of the stages this one depends on. Empty
	// means the stage is a root and is ready at submission.
	After []string `json:"after,omitempty"`
	// Short marks a setup/reduce stage whose estimate is small enough
	// that volunteer-pool turnaround would dominate its runtime: the
	// scheduler restricts such stages to service-grid resources
	// (Condor pools and clusters behind Globus gatekeepers), never
	// BOINC.
	Short bool `json:"short,omitempty"`
}

// Workflow is a typed DAG of stages submitted as one unit: the shape
// real phylogenetic analyses take (model selection feeding search
// replicates, fanning out into bootstrap resampling, reducing into a
// consensus tree) rather than the portal's flat replicate batches.
type Workflow struct {
	Name      string `json:"name"`
	UserEmail string `json:"userEmail"`
	// Seed roots every per-stage, per-attempt RNG stream the engine
	// derives; two submissions of the same workflow with the same
	// seed are bit-identical.
	Seed   int64           `json:"seed"`
	Stages []WorkflowStage `json:"stages"`
}

// Validate applies field-level checks. Graph-level validation (cycle
// and orphan detection) is the workflow engine's job — see
// internal/dag.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: workflow has no name")
	}
	if w.UserEmail == "" {
		return fmt.Errorf("workload: workflow %s has no user email", w.Name)
	}
	if len(w.Stages) == 0 {
		return fmt.Errorf("workload: workflow %s has no stages", w.Name)
	}
	for i := range w.Stages {
		st := &w.Stages[i]
		if st.ID == "" {
			return fmt.Errorf("workload: workflow %s stage %d has no ID", w.Name, i)
		}
		if st.Replicates < 1 || st.Replicates > MaxReplicates {
			return fmt.Errorf("workload: workflow %s stage %s: %d replicates outside [1, %d]",
				w.Name, st.ID, st.Replicates, MaxReplicates)
		}
		if err := st.Spec.Validate(); err != nil {
			return fmt.Errorf("workload: workflow %s stage %s: %w", w.Name, st.ID, err)
		}
	}
	return nil
}
