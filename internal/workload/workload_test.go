package workload

import (
	"math"
	"testing"

	"lattice/internal/phylo"
	"lattice/internal/sim"
)

func baseSpec() JobSpec {
	return JobSpec{
		DataType:            phylo.Nucleotide,
		RateHet:             phylo.RateGamma,
		NumRateCats:         4,
		GammaShape:          0.7,
		SubstModel:          "HKY85",
		NumTaxa:             8,
		SeqLength:           300,
		SearchReps:          1,
		StartingTree:        phylo.StartStepwise,
		AttachmentsPerTaxon: 10,
		Seed:                1,
	}
}

func TestSpecValidate(t *testing.T) {
	good := baseSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []func(*JobSpec){
		func(s *JobSpec) { s.NumTaxa = 2 },
		func(s *JobSpec) { s.SeqLength = 0 },
		func(s *JobSpec) { s.SearchReps = 0 },
		func(s *JobSpec) { s.GammaShape = -1 },
		func(s *JobSpec) { s.NumRateCats = 0 },
		func(s *JobSpec) { s.RateHet = phylo.RateGammaInv; s.PropInvariant = 1.2 },
		func(s *JobSpec) { s.StartingTree = phylo.StartStepwise; s.AttachmentsPerTaxon = 0 },
		func(s *JobSpec) { s.SubstModel = "NOTAMODEL" },
		func(s *JobSpec) { s.DataType = phylo.Codon; s.SeqLength = 301 },
	}
	for i, mutate := range cases {
		s := baseSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBuildModelAllTypes(t *testing.T) {
	for _, tc := range []struct {
		dt    phylo.DataType
		model string
	}{
		{phylo.Nucleotide, "JC69"},
		{phylo.Nucleotide, "K80"},
		{phylo.Nucleotide, "HKY85"},
		{phylo.Nucleotide, "GTR"},
		{phylo.AminoAcid, "poisson"},
		{phylo.AminoAcid, "empirical"},
		{phylo.Codon, "GY94"},
	} {
		s := baseSpec()
		s.DataType = tc.dt
		s.SubstModel = tc.model
		if tc.dt == phylo.Codon {
			s.SeqLength = 300
		}
		m, err := s.BuildModel()
		if err != nil {
			t.Errorf("%v/%s: %v", tc.dt, tc.model, err)
			continue
		}
		if m.Type != tc.dt {
			t.Errorf("%v/%s: built model type %v", tc.dt, tc.model, m.Type)
		}
	}
}

func TestGenerateAlignmentMatchesSpec(t *testing.T) {
	s := baseSpec()
	al, truth, err := s.GenerateAlignment()
	if err != nil {
		t.Fatal(err)
	}
	if al.NumTaxa() != s.NumTaxa || al.Length() != s.SeqLength {
		t.Errorf("alignment %d × %d, want %d × %d", al.NumTaxa(), al.Length(), s.NumTaxa, s.SeqLength)
	}
	if truth.NumTaxa() != s.NumTaxa {
		t.Errorf("truth tree has %d taxa", truth.NumTaxa())
	}
	// Deterministic per seed.
	al2, _, err := s.GenerateAlignment()
	if err != nil {
		t.Fatal(err)
	}
	if al.Seqs[0] != al2.Seqs[0] {
		t.Error("same seed generated different alignments")
	}
}

func TestMemoryScalesWithJobSize(t *testing.T) {
	small := baseSpec()
	big := baseSpec()
	big.DataType = phylo.Codon
	big.SubstModel = "GY94"
	big.NumTaxa = 500
	big.SeqLength = 30000
	if small.MemoryMB() >= big.MemoryMB() {
		t.Errorf("memory: small %d MB >= big %d MB", small.MemoryMB(), big.MemoryMB())
	}
	if big.MemoryMB() < 1024 {
		t.Errorf("massive codon job needs %d MB; the paper says multiple GB", big.MemoryMB())
	}
}

func TestExpectedWorkOrderings(t *testing.T) {
	base := baseSpec()
	w := base.ExpectedWork()
	if w <= 0 {
		t.Fatal("non-positive work")
	}
	// Each of these changes must increase expected work.
	increase := map[string]func(*JobSpec){
		"more taxa":      func(s *JobSpec) { s.NumTaxa *= 4 },
		"longer seqs":    func(s *JobSpec) { s.SeqLength *= 4 },
		"more reps":      func(s *JobSpec) { s.SearchReps = 4 },
		"codon model":    func(s *JobSpec) { s.DataType = phylo.Codon; s.SubstModel = "GY94" },
		"aa model":       func(s *JobSpec) { s.DataType = phylo.AminoAcid; s.SubstModel = "empirical" },
		"gamma+inv":      func(s *JobSpec) { s.RateHet = phylo.RateGammaInv; s.PropInvariant = 0.2 },
		"more attach":    func(s *JobSpec) { s.AttachmentsPerTaxon = 100 },
		"more rate cats": func(s *JobSpec) { s.NumRateCats = 8 },
	}
	for name, mutate := range increase {
		s := baseSpec()
		mutate(&s)
		if s.ExpectedWork() <= w {
			t.Errorf("%s did not increase work: %.3g vs %.3g", name, s.ExpectedWork(), w)
		}
	}
	// Removing rate heterogeneity must decrease work.
	s := baseSpec()
	s.RateHet = phylo.RateHomogeneous
	if s.ExpectedWork() >= w {
		t.Error("homogeneous rates should cost less than gamma")
	}
}

func TestSampleWorkNoise(t *testing.T) {
	s := baseSpec()
	rng := sim.NewRNG(5)
	var lo, hi float64 = math.Inf(1), 0
	var sum float64
	const n = 300
	for i := 0; i < n; i++ {
		w := s.SampleWork(rng)
		if w <= 0 {
			t.Fatal("non-positive sampled work")
		}
		lo = math.Min(lo, w)
		hi = math.Max(hi, w)
		sum += w
	}
	if hi/lo < 1.5 {
		t.Error("sampled work has implausibly little spread")
	}
	mean := sum / n
	exp := s.ExpectedWork()
	// Log-normal(0, 0.25) has mean e^{0.03} ≈ 1.03.
	if mean < 0.9*exp || mean > 1.25*exp {
		t.Errorf("sampled mean %.3g deviates from expectation %.3g", mean, exp)
	}
}

func TestGeneratorPopulationShape(t *testing.T) {
	g := NewGenerator(1)
	counts := map[phylo.DataType]int{}
	rateCats4 := 0
	rateHetUsers := 0
	var taxaSum int
	const n = 600
	for i := 0; i < n; i++ {
		spec := g.Job()
		if err := spec.Validate(); err != nil {
			t.Fatalf("generated invalid spec: %v (%+v)", err, spec)
		}
		counts[spec.DataType]++
		if spec.RateHet != phylo.RateHomogeneous {
			rateHetUsers++
			if spec.NumRateCats == 4 {
				rateCats4++
			}
		}
		taxaSum += spec.NumTaxa
	}
	if counts[phylo.Nucleotide] < n/3 {
		t.Errorf("nucleotide jobs %d of %d — should dominate", counts[phylo.Nucleotide], n)
	}
	if counts[phylo.Codon] == 0 || counts[phylo.AminoAcid] == 0 {
		t.Error("generator never produced aa or codon jobs")
	}
	// The NumRateCats = 4 default must dominate (the paper's Figure 2
	// depends on it).
	if frac := float64(rateCats4) / float64(rateHetUsers); frac < 0.85 {
		t.Errorf("only %.0f%% of rate-het jobs use 4 categories; default should dominate", 100*frac)
	}
	if avg := float64(taxaSum) / n; avg < 20 || avg > 200 {
		t.Errorf("mean taxa %.1f outside plausible band", avg)
	}
}

func TestGeneratorSubmissions(t *testing.T) {
	g := NewGenerator(2)
	maxSeen := 0
	for i := 0; i < 400; i++ {
		sub := g.Submission()
		if err := sub.Validate(); err != nil {
			t.Fatalf("invalid submission: %v", err)
		}
		if sub.Replicates > maxSeen {
			maxSeen = sub.Replicates
		}
	}
	if maxSeen != MaxReplicates {
		t.Errorf("never generated a maximal %d-replicate submission (max %d)", MaxReplicates, maxSeen)
	}
}

func TestSubmissionValidate(t *testing.T) {
	sub := Submission{Spec: baseSpec(), Replicates: 0, UserEmail: "x@y"}
	if err := sub.Validate(); err == nil {
		t.Error("expected error for zero replicates")
	}
	sub.Replicates = MaxReplicates + 1
	if err := sub.Validate(); err == nil {
		t.Error("expected error above replicate cap")
	}
	sub.Replicates = 10
	sub.UserEmail = ""
	if err := sub.Validate(); err == nil {
		t.Error("expected error for missing email")
	}
}

func TestTrainingJobsDeterministic(t *testing.T) {
	s1, r1 := NewGenerator(9).TrainingJobs(20)
	s2, r2 := NewGenerator(9).TrainingJobs(20)
	for i := range s1 {
		if s1[i] != s2[i] || r1[i] != r2[i] {
			t.Fatal("training jobs not deterministic")
		}
		if r1[i] <= 0 {
			t.Fatal("non-positive runtime")
		}
	}
}

// TestCostModelTracksRealEngine is the calibration contract: across a
// spread of small specifications the analytic cost model must track
// the measured work of genuine phylo.Search runs — same ordering,
// magnitudes within a small factor. Larger experiments rely on the
// model, so this is the test that keeps them honest.
func TestCostModelTracksRealEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	specs := []JobSpec{
		{DataType: phylo.Nucleotide, RateHet: phylo.RateHomogeneous, SubstModel: "JC69",
			NumTaxa: 6, SeqLength: 120, SearchReps: 1, StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 8, Seed: 11},
		{DataType: phylo.Nucleotide, RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.7, SubstModel: "HKY85",
			NumTaxa: 6, SeqLength: 120, SearchReps: 1, StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 8, Seed: 12},
		{DataType: phylo.Nucleotide, RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.7, SubstModel: "HKY85",
			NumTaxa: 12, SeqLength: 120, SearchReps: 1, StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 8, Seed: 13},
		{DataType: phylo.AminoAcid, RateHet: phylo.RateHomogeneous, SubstModel: "poisson",
			NumTaxa: 6, SeqLength: 90, SearchReps: 1, StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 8, Seed: 14},
		{DataType: phylo.Nucleotide, RateHet: phylo.RateGammaInv, NumRateCats: 4, GammaShape: 0.7, PropInvariant: 0.2, SubstModel: "GTR",
			NumTaxa: 8, SeqLength: 200, SearchReps: 2, StartingTree: phylo.StartRandom, Seed: 15},
		{DataType: phylo.Nucleotide, RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.7, SubstModel: "K80",
			NumTaxa: 9, SeqLength: 400, SearchReps: 1, StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 20, Seed: 16},
	}
	var logRatios []float64
	var predicted, measured []float64
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		al, _, err := s.GenerateAlignment()
		if err != nil {
			t.Fatal(err)
		}
		pd, err := al.Compile()
		if err != nil {
			t.Fatal(err)
		}
		model, _ := s.BuildModel()
		rates, _ := s.BuildRates()
		res, err := phylo.Search(pd, model, rates, al.Names, s.SearchConfig(), sim.NewRNG(s.Seed))
		if err != nil {
			t.Fatal(err)
		}
		pred := s.ExpectedWork()
		ratio := res.Work / pred
		t.Logf("spec %d (%v/%v taxa=%d): measured %.3g predicted %.3g ratio %.2f",
			i, s.DataType, s.RateHet, s.NumTaxa, res.Work, pred, ratio)
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("spec %d: cost model off by %.2f× (allowed 5×)", i, ratio)
		}
		logRatios = append(logRatios, math.Log(ratio))
		predicted = append(predicted, math.Log(pred))
		measured = append(measured, math.Log(res.Work))
	}
	if r := logCorrelation(predicted, measured); r < 0.9 {
		t.Errorf("log-scale correlation between predicted and measured work = %.3f, want > 0.9", r)
	}
}

func logCorrelation(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
