// Package workload models the GARLI jobs flowing through the paper's
// science portal: the job specification (whose nine analysis
// parameters are the predictor variables of the runtime model), a
// generator that mirrors the researcher population the portal served,
// and a calibrated cost model that converts a specification into the
// computational work a real search performs.
//
// The cost model is validated against the real engine: a test in this
// package runs genuine phylo.Search calls across a spread of small
// specifications and checks that predicted work tracks measured work.
// Large experiments then use the model, which lets the grid simulators
// process the paper's "20,000 CPU years" scale of computation in
// seconds — the substitution is recorded in DESIGN.md.
package workload

import (
	"fmt"
	"math"

	"lattice/internal/phylo"
	"lattice/internal/sim"
)

// JobSpec fully describes one GARLI grid job. The nine fields marked
// (predictor) are the covariates of the paper's random forest runtime
// model (Figure 2).
type JobSpec struct {
	// DataType: nucleotide, amino acid, or codon. (predictor)
	DataType phylo.DataType
	// RateHet: among-site rate heterogeneity treatment. (predictor)
	RateHet phylo.RateHetKind
	// NumRateCats: discrete gamma categories. (predictor)
	NumRateCats int
	// GammaShape is the alpha parameter when RateHet != none.
	GammaShape float64
	// PropInvariant is the invariant-sites proportion for gamma+inv.
	PropInvariant float64
	// SubstModel names the substitution model. (predictor)
	SubstModel string
	// NumTaxa: sequences in the alignment. (predictor)
	NumTaxa int
	// SeqLength: alignment length in characters. (predictor)
	SeqLength int
	// SearchReps: independent search replicates per job. (predictor)
	SearchReps int
	// StartingTree: random / stepwise / user. (predictor)
	StartingTree phylo.StartingTreeKind
	// AttachmentsPerTaxon: stepwise-addition intensity. (predictor)
	AttachmentsPerTaxon int
	// Seed makes data generation and search deterministic.
	Seed int64
}

// Validate applies the same checks as the portal's GARLI validation
// pre-pass applies to parameters (data-file validation is separate).
func (s *JobSpec) Validate() error {
	if s.NumTaxa < 3 {
		return fmt.Errorf("workload: NumTaxa = %d; need at least 3", s.NumTaxa)
	}
	if s.SeqLength < 1 {
		return fmt.Errorf("workload: SeqLength = %d; need at least 1", s.SeqLength)
	}
	if s.DataType == phylo.Codon && s.SeqLength%3 != 0 {
		return fmt.Errorf("workload: codon SeqLength %d not a multiple of 3", s.SeqLength)
	}
	if s.SearchReps < 1 {
		return fmt.Errorf("workload: SearchReps = %d; need at least 1", s.SearchReps)
	}
	if s.RateHet != phylo.RateHomogeneous {
		if s.NumRateCats < 1 {
			return fmt.Errorf("workload: NumRateCats = %d; need at least 1", s.NumRateCats)
		}
		if s.GammaShape <= 0 {
			return fmt.Errorf("workload: GammaShape = %g; must be positive", s.GammaShape)
		}
	}
	if s.RateHet == phylo.RateGammaInv && (s.PropInvariant < 0 || s.PropInvariant >= 1) {
		return fmt.Errorf("workload: PropInvariant = %g; must be in [0,1)", s.PropInvariant)
	}
	if s.StartingTree == phylo.StartStepwise && s.AttachmentsPerTaxon < 1 {
		return fmt.Errorf("workload: AttachmentsPerTaxon = %d with stepwise starting tree", s.AttachmentsPerTaxon)
	}
	if _, err := s.BuildModel(); err != nil {
		return err
	}
	return nil
}

// BuildModel constructs the substitution model the spec names.
func (s *JobSpec) BuildModel() (*phylo.Model, error) {
	switch s.DataType {
	case phylo.Nucleotide:
		return phylo.NucModelSpec{
			Name:  s.SubstModel,
			Kappa: 2.5,
			Rates: [6]float64{1.2, 3.5, 0.9, 1.1, 4.2, 1},
			Freqs: []float64{0.3, 0.2, 0.2, 0.3},
		}.Build()
	case phylo.AminoAcid:
		return phylo.AAModelSpec{Name: s.SubstModel}.Build()
	case phylo.Codon:
		return phylo.CodonModelSpec{Kappa: 2.0, Omega: 0.4}.Build()
	default:
		return nil, fmt.Errorf("workload: unknown data type %v", s.DataType)
	}
}

// BuildRates constructs the spec's site-rate mixture.
func (s *JobSpec) BuildRates() (*phylo.SiteRates, error) {
	return phylo.NewSiteRates(s.RateHet, s.GammaShape, s.PropInvariant, s.NumRateCats)
}

// NumMixtureCats returns the number of likelihood passes per pattern:
// 1 for homogeneous, k for gamma, k+1 for gamma+inv.
func (s *JobSpec) NumMixtureCats() int {
	switch s.RateHet {
	case phylo.RateGamma:
		return s.NumRateCats
	case phylo.RateGammaInv:
		return s.NumRateCats + 1
	default:
		return 1
	}
}

// NumSites returns the number of likelihood sites: characters for
// nucleotide/amino-acid data, codons for codon data.
func (s *JobSpec) NumSites() int {
	if s.DataType == phylo.Codon {
		return s.SeqLength / 3
	}
	return s.SeqLength
}

// GenerateAlignment simulates a data set matching the spec — the
// stand-in for the researcher's uploaded sequence file.
func (s *JobSpec) GenerateAlignment() (*phylo.Alignment, *phylo.Tree, error) {
	model, err := s.BuildModel()
	if err != nil {
		return nil, nil, err
	}
	rates, err := s.BuildRates()
	if err != nil {
		return nil, nil, err
	}
	rng := sim.NewRNG(s.Seed)
	truth := phylo.RandomTree(phylo.TaxonNames(s.NumTaxa), 0.1, rng)
	al, err := phylo.SimulateAlignment(truth, model, rates, s.NumSites(), rng)
	if err != nil {
		return nil, nil, err
	}
	return al, truth, nil
}

// SearchConfig translates the spec into engine settings.
func (s *JobSpec) SearchConfig() phylo.SearchConfig {
	cfg := phylo.DefaultSearchConfig()
	cfg.SearchReps = s.SearchReps
	cfg.StartingTree = s.StartingTree
	if s.AttachmentsPerTaxon > 0 {
		cfg.AttachmentsPerTaxon = s.AttachmentsPerTaxon
	}
	return cfg
}

// MemoryMB estimates the job's resident memory requirement in
// megabytes: conditional-likelihood arrays dominate
// (patterns × categories × states × 8 bytes × ~2·taxa node buffers).
// The paper notes jobs "can also be memory intensive, requiring
// multiple gigabytes of memory"; the meta-scheduler filters resources
// on this value.
func (s *JobSpec) MemoryMB() int {
	patterns := EstimatePatterns(s)
	cells := float64(patterns) * float64(s.NumMixtureCats()) * float64(s.DataType.NumStates())
	bytes := cells * 8 * float64(2*s.NumTaxa)
	mb := int(bytes/(1<<20)) + 32 // 32 MB floor for program + data
	return mb
}

// EstimatePatterns predicts the number of unique site patterns from
// taxon count and sequence length: patterns saturate toward the site
// count as taxa increase (more taxa → fewer duplicate columns), and
// saturate faster for richer alphabets. The constants are calibrated
// against compiled simulated alignments (see the calibration test).
func EstimatePatterns(s *JobSpec) int {
	sites := float64(s.NumSites())
	var c float64
	switch s.DataType {
	case phylo.Nucleotide:
		c = 20
	case phylo.AminoAcid:
		c = 6
	default:
		c = 3
	}
	frac := 1 - math.Exp(-float64(s.NumTaxa)/c)
	p := int(sites * frac)
	if p < 1 {
		p = 1
	}
	return p
}
