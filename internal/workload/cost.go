package workload

import (
	"lattice/internal/phylo"
	"lattice/internal/sim"
)

// ReferenceCellsPerSecond is the likelihood-cell throughput of the
// "reference computer" that anchors all resource speed measurements
// (the paper arbitrarily assigns it speed 1.0). Every resource in the
// grid executes work at speed × this rate.
const ReferenceCellsPerSecond = 2.5e8

// Work units are likelihood cell updates (see phylo.Likelihood.Work).

// costParams are the calibrated constants of the analytic cost model.
// They mirror the search engine's structure: evaluations per GA
// generation, generations to termination, stepwise-addition cost and
// the final branch-length polish. TestCostModelTracksRealEngine keeps
// them honest against real phylo.Search runs.
type costParams struct {
	gensBase     float64 // stagnation floor
	gensPerTaxon float64 // extra productive generations per taxon
	polishSweeps float64 // expected final-polish sweeps
	noiseSigma   float64 // log-normal run-to-run spread
}

var defaultCost = costParams{
	gensBase:     240,
	gensPerTaxon: 14,
	polishSweeps: 2,
	noiseSigma:   0.35,
}

// ExpectedWork returns the mean computational work of the job in cell
// updates, without run-to-run noise. It is the deterministic core of
// the cost model.
func (s *JobSpec) ExpectedWork() float64 {
	patterns := EstimatePatterns(s)
	cats := s.NumMixtureCats()
	states := s.DataType.NumStates()
	n := s.NumTaxa
	cfg := s.SearchConfig()
	p := defaultCost

	perEval := phylo.EvalCost(patterns, n, states, cats)

	// Starting tree.
	var startWork float64
	switch s.StartingTree {
	case phylo.StartStepwise:
		for i := 4; i <= n; i++ {
			tries := cfg.AttachmentsPerTaxon
			if edges := 2*i - 4; tries > edges {
				tries = edges
			}
			startWork += float64(tries) * phylo.EvalCost(patterns, i, states, cats)
		}
	default:
		startWork = float64(cfg.PopulationSize) * perEval
	}

	// GA generations: stagnation floor plus productive improvements
	// that scale with tree size, capped by the generation limit.
	gens := p.gensBase + p.gensPerTaxon*float64(n-3)
	if max := float64(cfg.MaxGenerations); gens > max {
		gens = max
	}
	// Evaluations per generation: OptimizeBranch does 1 baseline +
	// 5 coarse-scan + 2 golden-init + iterations refinement evals.
	evalsPerGen := float64(8 + cfg.BrlenOptIterations)
	gaWork := gens * evalsPerGen * perEval

	// Final polish: sweeps over all 2n-3 branches.
	polishIters := cfg.BrlenOptIterations
	if polishIters < 6 {
		polishIters = 6
	}
	polishWork := p.polishSweeps * float64(2*n-3) * float64(8+polishIters) * perEval

	return float64(s.SearchReps) * (startWork + gaWork + polishWork)
}

// SampleWork returns a realized work amount: the expectation with
// log-normal run-to-run noise (genetic-algorithm termination is
// stochastic). Deterministic per RNG stream.
func (s *JobSpec) SampleWork(rng *sim.RNG) float64 {
	return s.ExpectedWork() * rng.LogNormal(0, defaultCost.noiseSigma)
}

// ReferenceSeconds converts work in cell updates to seconds on the
// reference computer (speed 1.0).
func ReferenceSeconds(work float64) float64 {
	return work / ReferenceCellsPerSecond
}

// ReferenceDuration is ReferenceSeconds as a sim.Duration.
func ReferenceDuration(work float64) sim.Duration {
	return sim.Duration(ReferenceSeconds(work))
}
