// Package metasched implements the grid-level scheduler of Section V:
// it watches resource state through MDS, filters resources by job
// requirements (platform, memory, MPI capability, software
// dependencies), ranks the eligible ones by current load, measured
// speed, and stability, gates long jobs off unstable resources using a
// priori runtime estimates, bundles very short jobs to amortize
// per-job overhead, and computes BOINC workunit deadlines from the
// estimates.
package metasched

import (
	"fmt"

	"lattice/internal/grid/adapter"
	"lattice/internal/grid/mds"
	"lattice/internal/grid/rsl"
	"lattice/internal/lrm"
	"lattice/internal/obs"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// Policy selects how much of the paper's ranking machinery is active —
// the experiment knob for E4/E5.
type Policy int

const (
	// PolicyNaive spreads load evenly, ignoring speed and stability
	// ("such a naïve algorithm does not use resources very
	// efficiently").
	PolicyNaive Policy = iota
	// PolicySpeedAware adds measured resource speed to the ranking.
	PolicySpeedAware
	// PolicyFull adds the stability criterion: jobs estimated longer
	// than the threshold never go to unstable resources.
	PolicyFull
)

func (p Policy) String() string {
	switch p {
	case PolicyNaive:
		return "naive"
	case PolicySpeedAware:
		return "speed-aware"
	case PolicyFull:
		return "full"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Predictor supplies a priori runtime estimates on the reference
// computer; estimate.Estimator satisfies it.
type Predictor interface {
	Predict(spec *workload.JobSpec) (float64, error)
}

// Config holds scheduler policy.
type Config struct {
	Policy Policy
	// UnstableMaxEstimate is the paper's n = 10 hours: unstable
	// resources get no job estimated (after speed scaling) to run
	// longer than this.
	UnstableMaxEstimate sim.Duration
	// BoincDeadlineSlack multiplies the speed-scaled estimate to set
	// a BOINC workunit deadline.
	BoincDeadlineSlack float64
	// FixedBoincDeadline, when set, overrides estimate-driven
	// deadlines (the pre-integration manual behaviour; E7 baseline).
	FixedBoincDeadline sim.Duration
	// PerJobOverheadSeconds is the fixed grid overhead (staging,
	// submission, result handling) added to every job — what
	// replicate bundling amortizes.
	PerJobOverheadSeconds float64
	// BundleTargetSeconds: when a job's estimate is below
	// MinJobSeconds, replicates are merged until the bundle reaches
	// this target ("ratchet up the number of search replicates").
	// 0 disables bundling.
	BundleTargetSeconds float64
	// MinJobSeconds is the threshold below which jobs are considered
	// "very short".
	MinJobSeconds float64
	// RetryLimit bounds rescheduling attempts after resource-level
	// failures.
	RetryLimit int
	// RescanInterval is how often pending (unplaceable) jobs are
	// retried against the current MDS view.
	RescanInterval sim.Duration
	// DisableSpeedScaledGate makes the stability gate compare the raw
	// reference estimate against the threshold instead of the
	// speed-scaled one — the ablation of Section VI-E(a)'s scaling.
	DisableSpeedScaledGate bool
	// StageBandwidthMBps models the data-placement link between the
	// grid node and each resource: a job with input files waits
	// InputMB / bandwidth before its local submission, and its
	// results take OutputMB / bandwidth to come back (0 disables
	// staging delays).
	StageBandwidthMBps float64
	// MaxBacklogFactor caps how many of this scheduler's jobs may be
	// outstanding on one resource, as a multiple of its CPU count
	// (0 = default 2). Beyond the cap, jobs wait in the grid-level
	// pending queue and flow to whichever resource drains first —
	// "the grid system breaks these up into smaller batches and may
	// schedule each of these batches to a different grid computing
	// resource".
	MaxBacklogFactor float64
	// SubmitRetryBase is the initial backoff before a job whose
	// gatekeeper submission failed is retried; each further failure
	// doubles it, capped at SubmitRetryMax. 0 restores the legacy
	// behaviour (straight back to the pending queue for the next
	// periodic scan).
	SubmitRetryBase sim.Duration
	// SubmitRetryMax caps the exponential submit-retry backoff
	// (0 = uncapped).
	SubmitRetryMax sim.Duration
	// StabilityAlpha enables the learned per-resource stability score:
	// every observed completion (1) or resource-level failure (0)
	// feeds an EWMA with this weight, and the score replaces static
	// config in both the gating rule and the completion-time ranking.
	// 0 disables learning and preserves the static Info.Stable
	// behaviour exactly.
	StabilityAlpha float64
	// StabilityFloor is the learned-stability value below which a
	// resource is treated as unstable by the gating rule even when its
	// static Info.Stable flag says otherwise. Only meaningful with
	// StabilityAlpha > 0.
	StabilityFloor float64
	// BreakerThreshold enables per-resource circuit breakers: this
	// many consecutive failures (gatekeeper submit refusals,
	// resource-level job failures, death requeues) with no
	// intervening success trips the resource's circuit open — it
	// stops receiving work for BreakerCooldown, then admits a single
	// half-open probe whose outcome closes or re-opens the circuit.
	// Layered on the stability EWMA: the EWMA softly deprioritizes a
	// degrading resource, the breaker hard-stops a flapping one from
	// eating retry budget. 0 disables breakers entirely.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped circuit stays open before
	// the half-open probe (default 10 virtual minutes).
	BreakerCooldown sim.Duration
}

// DefaultConfig mirrors the paper's operating point.
func DefaultConfig() Config {
	return Config{
		Policy:                PolicyFull,
		UnstableMaxEstimate:   10 * sim.Hour,
		BoincDeadlineSlack:    3,
		PerJobOverheadSeconds: 30,
		BundleTargetSeconds:   1800,
		MinJobSeconds:         300,
		RetryLimit:            5,
		RescanInterval:        2 * sim.Minute,
		StageBandwidthMBps:    50,
		SubmitRetryBase:       30 * sim.Second,
		SubmitRetryMax:        30 * sim.Minute,
		StabilityFloor:        0.5,
	}
}

// JobStatus tracks a grid job through its lifecycle.
type JobStatus int

const (
	StatusPending JobStatus = iota
	StatusRunning
	StatusCompleted
	StatusFailed
)

func (s JobStatus) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusRunning:
		return "running"
	case StatusCompleted:
		return "completed"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("JobStatus(%d)", int(s))
	}
}

// GridJob is the scheduler's record of one job.
type GridJob struct {
	Desc *rsl.JobDescription
	Spec *workload.JobSpec

	// Batch is the portal batch the job belongs to ("" for direct
	// submissions); it parents the job's trace span.
	Batch string

	Status      JobStatus
	Resource    string
	Attempts    int
	SubmittedAt sim.Time
	StartedAt   sim.Time
	CompletedAt sim.Time
	FailReason  string
	// EstimateRefSeconds is the prediction used for placement (0 when
	// no model was available).
	EstimateRefSeconds float64

	// OnDone fires on terminal status (completed or failed).
	OnDone func(j *GridJob)

	// disrupted marks jobs that hit a fault-induced setback (death
	// requeue, gatekeeper failure, a "faults:" resource failure);
	// disruptedAt is the first such moment, feeding the recovery
	// latency histogram when the job finally completes.
	disrupted   bool
	disruptedAt sim.Time

	// span is the job's lifecycle trace span (nil when the scheduler
	// is not wired to an observability hub).
	span *obs.Span
}

// Stats aggregates scheduler behaviour.
type Stats struct {
	Submitted     int
	Completed     int
	Failed        int
	Retries       int
	Bundled       int // jobs merged away by replicate bundling
	UnplaceableAt int // scheduling passes that left jobs pending
	Requeued      int // in-flight jobs requeued after resource death
	SubmitRetries int // gatekeeper submit failures sent to backoff
	BreakerTrips  int // circuit breakers tripped open
}

// resource is a registered target.
type resource struct {
	lrm     lrm.LRM
	adapter adapter.Adapter
	speed   float64
	// active counts this scheduler's jobs dispatched to the resource
	// and not yet terminal — the scheduler's own view of the load it
	// has created, which is fresher than the MDS entry (whose refresh
	// lags by the provider period). Without it, a burst of arrivals
	// all sees the same stale "free" snapshot and lands on one
	// resource.
	active int
	// stability is the learned reliability score in [0,1], an EWMA of
	// observed per-job outcomes (1 = never seen to fail). It only
	// moves, and only matters, when Config.StabilityAlpha > 0.
	stability float64
	// Circuit-breaker state (see breaker.go); inert unless
	// Config.BreakerThreshold > 0.
	breakerFails int      // consecutive failures while closed
	breakerOpen  bool     // circuit tripped
	breakerUntil sim.Time // end of the open cooldown
	breakerProbe bool     // half-open probe in flight
}

// Scheduler is the grid-level scheduler.
type Scheduler struct {
	eng       *sim.Engine
	idx       *mds.Index
	cfg       Config
	predictor Predictor
	resources map[string]*resource
	// order lists resource names in registration order (which core
	// fixes by config order) — the deterministic iteration sequence
	// for the offline sweep.
	order    []string
	pending  []*GridJob
	jobs     map[string]*GridJob
	stats    Stats
	nextSeq  int
	scanning bool
	obs      *obs.Obs
	ins      schedInstruments
	durable  Durability
}

// Durability is the write-ahead-log hook for the scheduler's learned
// state: stability EWMAs and submit-retry backoff decisions. Methods
// are called synchronously on the engine goroutine; implementations
// must not call back into the scheduler.
type Durability interface {
	// EWMA records a resource's updated stability estimate.
	EWMA(at sim.Time, resource string, stability float64)
	// Backoff records a submit-retry backoff decision for a job.
	Backoff(at sim.Time, job, resource string, attempt int, backoff sim.Duration)
}

// SetDurable installs the durability hook (nil disables it).
func (s *Scheduler) SetDurable(d Durability) { s.durable = d }

// schedInstruments pre-registers the scheduler's label-less metric
// handles; per-resource series are created lazily on first placement.
// All handles are nil-safe, so an un-wired scheduler records nothing.
type schedInstruments struct {
	submitted *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	retries   *obs.Counter
	bundled   *obs.Counter
	pending   *obs.Gauge
	placeWait *obs.Histogram
}

// SetObs wires the scheduler to an observability hub: ranking
// decisions become per-resource placement counters, placement latency
// (submit → dispatch, virtual time) feeds a histogram, and every
// lifecycle transition is journaled and traced.
func (s *Scheduler) SetObs(o *obs.Obs) {
	s.obs = o
	s.ins = schedInstruments{
		submitted: o.Counter("lattice_sched_jobs_submitted_total", "Grid jobs accepted by the meta-scheduler"),
		completed: o.Counter("lattice_sched_jobs_completed_total", "Grid jobs that reached completed"),
		failed:    o.Counter("lattice_sched_jobs_failed_total", "Grid jobs that reached failed"),
		retries:   o.Counter("lattice_sched_retries_total", "Resource-level failures sent back for rescheduling"),
		bundled:   o.Counter("lattice_sched_jobs_bundled_total", "Replicates merged away by bundling"),
		pending:   o.Gauge("lattice_sched_pending_jobs", "Jobs awaiting placement"),
		placeWait: o.Histogram("lattice_sched_placement_wait_seconds", "Virtual seconds from submit to dispatch", nil),
	}
}

// New creates a scheduler reading resource state from idx.
func New(eng *sim.Engine, idx *mds.Index, cfg Config) *Scheduler {
	s := &Scheduler{
		eng:       eng,
		idx:       idx,
		cfg:       cfg,
		resources: make(map[string]*resource),
		jobs:      make(map[string]*GridJob),
	}
	if cfg.RescanInterval > 0 {
		eng.Every(cfg.RescanInterval, func() {
			s.checkOffline()
			s.scanPending()
		})
	}
	return s
}

// SetPredictor installs the runtime-estimation model. Without one the
// scheduler operates estimate-blind (the system's pre-Section-VI
// behaviour).
func (s *Scheduler) SetPredictor(p Predictor) { s.predictor = p }

// Register adds a resource target. The adapter is chosen by the
// resource's kind; speed is the measured speed relative to the
// reference computer (use Calibrate to measure it in-band).
func (s *Scheduler) Register(target lrm.LRM, speed float64) error {
	if speed <= 0 {
		return fmt.Errorf("metasched: speed for %s must be positive", target.Name())
	}
	kind := target.Info().Kind
	ad, err := adapter.ForKind(kind)
	if err != nil {
		return err
	}
	if _, dup := s.resources[target.Name()]; dup {
		return fmt.Errorf("metasched: resource %s already registered", target.Name())
	}
	s.resources[target.Name()] = &resource{lrm: target, adapter: ad, speed: speed, stability: 1}
	s.order = append(s.order, target.Name())
	return nil
}

// SetSpeed updates a resource's measured speed.
func (s *Scheduler) SetSpeed(name string, speed float64) error {
	r, ok := s.resources[name]
	if !ok {
		return fmt.Errorf("metasched: unknown resource %s", name)
	}
	if speed <= 0 {
		return fmt.Errorf("metasched: speed must be positive")
	}
	r.speed = speed
	return nil
}

// Speed returns a resource's current speed setting.
func (s *Scheduler) Speed(name string) (float64, bool) {
	r, ok := s.resources[name]
	if !ok {
		return 0, false
	}
	return r.speed, true
}

// SetStability overrides a resource's stability score in [0,1] —
// manual calibration writes through the same field the learned EWMA
// updates, so an operator's prior and observed behaviour compose.
func (s *Scheduler) SetStability(name string, stability float64) error {
	r, ok := s.resources[name]
	if !ok {
		return fmt.Errorf("metasched: unknown resource %s", name)
	}
	if stability < 0 || stability > 1 {
		return fmt.Errorf("metasched: stability must be in [0,1], got %g", stability)
	}
	r.stability = stability
	if s.durable != nil {
		s.durable.EWMA(s.eng.Now(), name, r.stability)
	}
	return nil
}

// Stability returns a resource's current stability score.
func (s *Scheduler) Stability(name string) (float64, bool) {
	r, ok := s.resources[name]
	if !ok {
		return 0, false
	}
	return r.stability, true
}

// observeStability feeds one job outcome on a resource into the
// learned stability EWMA. A no-op unless learning is enabled.
func (s *Scheduler) observeStability(name string, ok bool) {
	if s.cfg.StabilityAlpha <= 0 {
		return
	}
	r, found := s.resources[name]
	if !found {
		return
	}
	v := 0.0
	if ok {
		v = 1
	}
	r.stability = (1-s.cfg.StabilityAlpha)*r.stability + s.cfg.StabilityAlpha*v
	if s.durable != nil {
		s.durable.EWMA(s.eng.Now(), name, r.stability)
	}
}

// Job returns the tracked record for a job ID.
func (s *Scheduler) Job(id string) (*GridJob, bool) {
	j, ok := s.jobs[id]
	return j, ok
}

// Stats returns scheduler accounting.
func (s *Scheduler) Stats() Stats { return s.stats }

// Pending returns the number of jobs awaiting placement.
func (s *Scheduler) Pending() int { return len(s.pending) }
