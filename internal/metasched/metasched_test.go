package metasched

import (
	"fmt"
	"testing"

	"lattice/internal/boinc"
	"lattice/internal/grid/mds"
	"lattice/internal/grid/rsl"
	"lattice/internal/lrm"
	"lattice/internal/lrm/condor"
	"lattice/internal/lrm/pbs"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// grid is a small test federation.
type grid struct {
	eng   *sim.Engine
	idx   *mds.Index
	sched *Scheduler
	pool  *condor.Pool
	hpc   *pbs.Cluster
}

// newGrid builds one Condor pool (unstable, speed 1) and one PBS
// cluster (stable, speed 2) publishing into a shared index.
func newGrid(t *testing.T, cfg Config) *grid {
	t.Helper()
	eng := sim.NewEngine()
	idx, err := mds.NewIndex(eng, 5*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	machines := make([]condor.Machine, 8)
	for i := range machines {
		machines[i] = condor.Machine{
			Speed: 1.0, MemoryMB: 2048, Platform: lrm.LinuxX86,
			MeanOwnerAway: 5 * sim.Hour, MeanOwnerBusy: 30 * sim.Minute,
		}
	}
	pool, err := condor.New(eng, sim.NewRNG(1), condor.Config{Name: "condor-pool", Machines: machines})
	if err != nil {
		t.Fatal(err)
	}
	hpc, err := pbs.New(eng, pbs.Config{
		Name: "hpc-cluster", Platform: lrm.LinuxX86, MPI: true,
		Nodes: []pbs.NodeClass{{Count: 8, Speed: 2.0, MemoryMB: 8192}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mds.StartProvider(eng, idx, pool, sim.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := mds.StartProvider(eng, idx, hpc, sim.Minute); err != nil {
		t.Fatal(err)
	}
	sched := New(eng, idx, cfg)
	if err := sched.Register(pool, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := sched.Register(hpc, 2.0); err != nil {
		t.Fatal(err)
	}
	return &grid{eng: eng, idx: idx, sched: sched, pool: pool, hpc: hpc}
}

// perfectPredictor predicts from the spec's expected work — an oracle
// for tests that need reliable estimates.
type perfectPredictor struct{}

func (perfectPredictor) Predict(spec *workload.JobSpec) (float64, error) {
	return workload.ReferenceSeconds(spec.ExpectedWork()), nil
}

// jobDesc builds a description of the given reference-seconds.
func jobDesc(id string, refSeconds float64) *rsl.JobDescription {
	return &rsl.JobDescription{
		JobID: id, Executable: "garli", Count: 1,
		MaxMemoryMB: 256,
		Platforms:   []lrm.Platform{lrm.LinuxX86},
		Work:        refSeconds * lrm.ReferenceCellsPerSecond,
	}
}

func TestSubmitAndComplete(t *testing.T) {
	g := newGrid(t, DefaultConfig())
	done := 0
	for i := 0; i < 10; i++ {
		_, err := g.sched.Submit(jobDesc(fmt.Sprintf("j%d", i), 600), nil, func(j *GridJob) {
			if j.Status == StatusCompleted {
				done++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	g.eng.RunUntil(sim.Time(2 * sim.Day))
	if done != 10 {
		t.Fatalf("%d of 10 jobs completed", done)
	}
	st := g.sched.Stats()
	if st.Submitted != 10 || st.Completed != 10 {
		t.Errorf("stats: %+v", st)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	g := newGrid(t, DefaultConfig())
	if _, err := g.sched.Submit(jobDesc("dup", 60), nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.sched.Submit(jobDesc("dup", 60), nil, nil); err == nil {
		t.Error("duplicate job ID accepted")
	}
}

func TestStabilityGateKeepsLongJobsOffCondor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyFull
	g := newGrid(t, cfg)
	// An estimator that reports 40 h for every job.
	g.sched.SetPredictor(fixedPredictor(40 * 3600))
	spec := workload.JobSpec{DataType: phylo.Nucleotide, SubstModel: "JC69",
		NumTaxa: 10, SeqLength: 100, SearchReps: 1, StartingTree: phylo.StartRandom}
	var placed []string
	for i := 0; i < 6; i++ {
		j, err := g.sched.Submit(jobDesc(fmt.Sprintf("long%d", i), 40*3600), &spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = j
	}
	g.eng.RunUntil(sim.Time(1 * sim.Hour))
	for i := 0; i < 6; i++ {
		j, _ := g.sched.Job(fmt.Sprintf("long%d", i))
		placed = append(placed, j.Resource)
		if j.Resource == "condor-pool" {
			t.Errorf("long job %d placed on the unstable pool", i)
		}
	}
	_ = placed
}

func TestNaivePolicyIgnoresStability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyNaive
	g := newGrid(t, cfg)
	g.sched.SetPredictor(fixedPredictor(40 * 3600))
	spec := workload.JobSpec{DataType: phylo.Nucleotide, SubstModel: "JC69",
		NumTaxa: 10, SeqLength: 100, SearchReps: 1, StartingTree: phylo.StartRandom}
	// Saturate: 32 long jobs across 16 CPUs, spaced out so the MDS
	// view refreshes between placements; naive spreading must put
	// some on the pool once the cluster backs up.
	for i := 0; i < 32; i++ {
		i := i
		g.eng.Schedule(sim.Duration(i)*5*sim.Minute, func() {
			if _, err := g.sched.Submit(jobDesc(fmt.Sprintf("l%d", i), 40*3600), &spec, nil); err != nil {
				t.Error(err)
			}
		})
	}
	g.eng.RunUntil(sim.Time(6 * sim.Hour))
	onPool := 0
	for i := 0; i < 32; i++ {
		j, _ := g.sched.Job(fmt.Sprintf("l%d", i))
		if j.Resource == "condor-pool" {
			onPool++
		}
	}
	if onPool == 0 {
		t.Error("naive policy never used the unstable pool for long jobs")
	}
}

// fixedPredictor always returns the same estimate.
type fixedPredictor float64

func (f fixedPredictor) Predict(*workload.JobSpec) (float64, error) { return float64(f), nil }

func TestSpeedAwareprefersFastCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicySpeedAware
	g := newGrid(t, cfg)
	// With both resources idle, every early job should go to the
	// 2×-speed cluster until its backlog builds.
	var first *GridJob
	var err error
	if first, err = g.sched.Submit(jobDesc("probe", 600), nil, nil); err != nil {
		t.Fatal(err)
	}
	g.eng.RunUntil(sim.Time(10 * sim.Minute))
	if first.Resource != "hpc-cluster" {
		t.Errorf("first job placed on %s, want the fast cluster", first.Resource)
	}
}

func TestMemoryAndMPIFiltering(t *testing.T) {
	g := newGrid(t, DefaultConfig())
	big := jobDesc("big", 600)
	big.MaxMemoryMB = 4096 // only the cluster has 8 GB nodes
	if _, err := g.sched.Submit(big, nil, nil); err != nil {
		t.Fatal(err)
	}
	mpi := jobDesc("mpi", 600)
	mpi.NeedsMPI = true
	if _, err := g.sched.Submit(mpi, nil, nil); err != nil {
		t.Fatal(err)
	}
	g.eng.RunUntil(sim.Time(1 * sim.Hour))
	for _, id := range []string{"big", "mpi"} {
		j, _ := g.sched.Job(id)
		if j.Resource != "hpc-cluster" {
			t.Errorf("%s placed on %q, want hpc-cluster", id, j.Resource)
		}
	}
}

func TestUnplaceableJobWaitsThenRuns(t *testing.T) {
	g := newGrid(t, DefaultConfig())
	// Nothing matches darwin/ppc yet.
	weird := jobDesc("ppc", 60)
	weird.Platforms = []lrm.Platform{lrm.DarwinPPC}
	done := false
	if _, err := g.sched.Submit(weird, nil, func(j *GridJob) { done = j.Status == StatusCompleted }); err != nil {
		t.Fatal(err)
	}
	if g.sched.Pending() != 1 {
		t.Fatalf("job should be pending, have %d", g.sched.Pending())
	}
	// A PPC cluster joins the grid later.
	g.eng.Schedule(2*sim.Hour, func() {
		ppc, err := pbs.New(g.eng, pbs.Config{
			Name: "mac-cluster", Platform: lrm.DarwinPPC,
			Nodes: []pbs.NodeClass{{Count: 2, Speed: 1, MemoryMB: 2048}},
		})
		if err != nil {
			t.Error(err)
			return
		}
		mds.StartProvider(g.eng, g.idx, ppc, sim.Minute)
		g.sched.Register(ppc, 1.0)
	})
	g.eng.RunUntil(sim.Time(6 * sim.Hour))
	if !done {
		t.Error("job never ran after an eligible resource joined")
	}
}

func TestOfflineResourceNotUsed(t *testing.T) {
	eng := sim.NewEngine()
	idx, _ := mds.NewIndex(eng, 3*sim.Minute)
	hpc, _ := pbs.New(eng, pbs.Config{
		Name: "solo", Platform: lrm.LinuxX86,
		Nodes: []pbs.NodeClass{{Count: 2, Speed: 1, MemoryMB: 2048}},
	})
	p, _ := mds.StartProvider(eng, idx, hpc, sim.Minute)
	sched := New(eng, idx, DefaultConfig())
	sched.Register(hpc, 1)
	// Resource crashes at t = 10 min; submit at t = 20 min.
	eng.Schedule(10*sim.Minute, func() { p.Stop() })
	eng.Schedule(20*sim.Minute, func() {
		j, err := sched.Submit(jobDesc("after-crash", 60), nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if j.Status != StatusPending {
			t.Errorf("job scheduled to an offline resource (status %v on %s)", j.Status, j.Resource)
		}
	})
	eng.RunUntil(sim.Time(30 * sim.Minute))
}

func TestRetryAfterResourceFailure(t *testing.T) {
	cfg := DefaultConfig()
	g := newGrid(t, cfg)
	// A job that exceeds the pool's wall limit... instead, use a job
	// with a wall limit that fails on the first resource; the
	// scheduler should retry and eventually mark failed after limit.
	d := jobDesc("flaky", 7200)
	d.WallLimit = sim.Minute // will fail wherever it runs
	var final *GridJob
	if _, err := g.sched.Submit(d, nil, func(j *GridJob) { final = j }); err != nil {
		t.Fatal(err)
	}
	g.eng.RunUntil(sim.Time(2 * sim.Day))
	if final == nil {
		t.Fatal("job never reached a terminal state")
	}
	if final.Status != StatusFailed {
		t.Fatalf("status = %v, want failed", final.Status)
	}
	if final.Attempts < 2 {
		t.Errorf("no retries happened: attempts = %d", final.Attempts)
	}
	if g.sched.Stats().Retries == 0 {
		t.Error("retry counter untouched")
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	g := newGrid(t, DefaultConfig())
	weird := jobDesc("stuck", 60)
	weird.Platforms = []lrm.Platform{lrm.DarwinPPC}
	g.sched.Submit(weird, nil, nil)
	if !g.sched.Cancel("stuck") {
		t.Error("pending job not cancellable")
	}
	run := jobDesc("running", 7200)
	g.sched.Submit(run, nil, nil)
	g.eng.RunUntil(sim.Time(5 * sim.Minute))
	if !g.sched.Cancel("running") {
		t.Error("running job not cancellable")
	}
	if g.sched.Cancel("running") {
		t.Error("double cancel returned true")
	}
	if g.sched.Cancel("unknown") {
		t.Error("cancel of unknown job returned true")
	}
}

func TestCalibrateRecoverSpeeds(t *testing.T) {
	eng := sim.NewEngine()
	fast, _ := pbs.New(eng, pbs.Config{
		Name: "fast", Platform: lrm.LinuxX86,
		Nodes: []pbs.NodeClass{{Count: 2, Speed: 2.0, MemoryMB: 2048}},
	})
	slow, _ := pbs.New(eng, pbs.Config{
		Name: "slow", Platform: lrm.LinuxX86,
		Nodes: []pbs.NodeClass{{Count: 2, Speed: 0.5, MemoryMB: 2048}},
	})
	sFast, err := Calibrate(eng, fast, 600, 2, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	sSlow, err := Calibrate(eng, slow, 600, 2, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if sFast < 1.9 || sFast > 2.1 {
		t.Errorf("fast speed measured %.2f, want ≈ 2.0", sFast)
	}
	if sSlow < 0.45 || sSlow > 0.55 {
		t.Errorf("slow speed measured %.2f, want ≈ 0.5", sSlow)
	}
}

func TestBundlingMergesShortReplicates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BundleTargetSeconds = 1800
	cfg.MinJobSeconds = 300
	g := newGrid(t, cfg)
	g.sched.SetPredictor(fixedPredictor(60)) // 1-minute jobs
	sub := &workload.Submission{
		Spec: workload.JobSpec{
			DataType: phylo.Nucleotide, SubstModel: "JC69",
			NumTaxa: 8, SeqLength: 100, SearchReps: 1,
			StartingTree: phylo.StartRandom, Seed: 1,
		},
		Replicates: 100,
		UserEmail:  "u@x",
	}
	jobs, err := g.sched.SubmitBatch(sub, sim.NewRNG(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 60-second jobs bundled to 1800 s target → ~30 reps per job.
	if len(jobs) > 10 {
		t.Errorf("bundling produced %d jobs for 100 one-minute replicates; expected a handful", len(jobs))
	}
	totalReps := 0
	for _, j := range jobs {
		totalReps += j.Spec.SearchReps
	}
	if totalReps != 100 {
		t.Errorf("replicates lost in bundling: %d of 100", totalReps)
	}
	if g.sched.Stats().Bundled == 0 {
		t.Error("bundle counter untouched")
	}
}

func TestNoBundlingForLongJobs(t *testing.T) {
	g := newGrid(t, DefaultConfig())
	g.sched.SetPredictor(fixedPredictor(7200))
	sub := &workload.Submission{
		Spec: workload.JobSpec{
			DataType: phylo.Nucleotide, SubstModel: "JC69",
			NumTaxa: 8, SeqLength: 100, SearchReps: 1,
			StartingTree: phylo.StartRandom, Seed: 1,
		},
		Replicates: 20,
		UserEmail:  "u@x",
	}
	jobs, err := g.sched.SubmitBatch(sub, sim.NewRNG(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 20 {
		t.Errorf("long jobs were bundled: %d jobs for 20 replicates", len(jobs))
	}
}

func TestBoincDeadlineFromEstimate(t *testing.T) {
	eng := sim.NewEngine()
	idx, _ := mds.NewIndex(eng, 5*sim.Minute)
	rng := sim.NewRNG(4)
	srv, err := boinc.NewServer(eng, rng, boinc.DefaultConfig("volunteers"))
	if err != nil {
		t.Fatal(err)
	}
	boinc.GeneratePopulation(srv, rng, boinc.DefaultPopulation(30))
	mds.StartProvider(eng, idx, srv, sim.Minute)
	cfg := DefaultConfig()
	cfg.BoincDeadlineSlack = 3
	sched := New(eng, idx, cfg)
	sched.Register(srv, 0.8)
	sched.SetPredictor(fixedPredictor(2 * 3600))
	spec := workload.JobSpec{DataType: phylo.Nucleotide, SubstModel: "JC69",
		NumTaxa: 10, SeqLength: 100, SearchReps: 1, StartingTree: phylo.StartRandom}
	d := jobDesc("wu1", 2*3600)
	d.Platforms = []lrm.Platform{lrm.WindowsX86, lrm.LinuxX86, lrm.DarwinX86}
	j, err := sched.Submit(d, &spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(1 * sim.Hour))
	if j.Resource != "volunteers" {
		t.Fatalf("job placed on %q (status %v)", j.Resource, j.Status)
	}
	if j.EstimateRefSeconds < 2*3600 {
		t.Errorf("estimate not recorded: %v", j.EstimateRefSeconds)
	}
	// A 12-hour job, by contrast, must be gated off the unstable
	// volunteer pool entirely.
	long := jobDesc("wu2", 12*3600)
	long.Platforms = d.Platforms
	sched.SetPredictor(fixedPredictor(12 * 3600))
	lj, err := sched.Submit(long, &spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(2 * sim.Hour))
	if lj.Resource == "volunteers" {
		t.Error("12-hour job placed on the unstable volunteer pool")
	}
}

func TestRegisterValidation(t *testing.T) {
	g := newGrid(t, DefaultConfig())
	if err := g.sched.Register(g.pool, 1.0); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := g.sched.SetSpeed("condor-pool", -1); err == nil {
		t.Error("negative speed accepted")
	}
	if err := g.sched.SetSpeed("nope", 1); err == nil {
		t.Error("unknown resource speed set")
	}
	if _, ok := g.sched.Speed("condor-pool"); !ok {
		t.Error("Speed lookup failed")
	}
}

func TestDataStagingDelaysExecution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StageBandwidthMBps = 1 // 1 MB/s: staging dominates
	g := newGrid(t, cfg)
	d := jobDesc("staged", 60)
	d.InputMB = 120 // 2 minutes in
	d.OutputMB = 60 // 1 minute out
	var doneAt sim.Time
	if _, err := g.sched.Submit(d, nil, func(j *GridJob) { doneAt = j.CompletedAt }); err != nil {
		t.Fatal(err)
	}
	g.eng.RunUntil(sim.Time(1 * sim.Hour))
	if doneAt == 0 {
		t.Fatal("staged job never completed")
	}
	// 120 s stage-in + 30 s exec (speed 2) + 60 s stage-out ≥ 210 s.
	if float64(doneAt) < 200 {
		t.Errorf("job done at %.0f s; staging delays not applied", float64(doneAt))
	}
	// Without staging the same job is much faster.
	cfg2 := DefaultConfig()
	cfg2.StageBandwidthMBps = 0
	g2 := newGrid(t, cfg2)
	d2 := jobDesc("fast", 60)
	d2.InputMB = 120
	var doneAt2 sim.Time
	if _, err := g2.sched.Submit(d2, nil, func(j *GridJob) { doneAt2 = j.CompletedAt }); err != nil {
		t.Fatal(err)
	}
	g2.eng.RunUntil(sim.Time(1 * sim.Hour))
	if doneAt2 == 0 || doneAt2 >= doneAt {
		t.Errorf("staging-off job at %.0f s not faster than staging-on %.0f s",
			float64(doneAt2), float64(doneAt))
	}
}

func TestCancelDuringStaging(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StageBandwidthMBps = 1
	g := newGrid(t, cfg)
	d := jobDesc("c-staged", 60)
	d.InputMB = 600 // 10 minutes of staging
	completed := false
	if _, err := g.sched.Submit(d, nil, func(j *GridJob) {
		completed = j.Status == StatusCompleted
	}); err != nil {
		t.Fatal(err)
	}
	g.eng.RunUntil(sim.Time(1 * sim.Minute))
	if !g.sched.Cancel("c-staged") {
		t.Fatal("cancel during staging failed")
	}
	g.eng.RunUntil(sim.Time(1 * sim.Hour))
	if completed {
		t.Error("job cancelled during staging still completed")
	}
}
