package metasched

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"lattice/internal/grid/rsl"
	"lattice/internal/lrm"
	"lattice/internal/obs"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

// Submit accepts a grid job: the RSL description plus the GARLI
// specification the runtime model reads. The job is placed immediately
// when an eligible resource is reporting, otherwise it waits in the
// pending queue for the next scan.
func (s *Scheduler) Submit(desc *rsl.JobDescription, spec *workload.JobSpec, onDone func(*GridJob)) (*GridJob, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if _, dup := s.jobs[desc.JobID]; dup {
		return nil, fmt.Errorf("metasched: duplicate job ID %s", desc.JobID)
	}
	j := &GridJob{
		Desc:        desc,
		Spec:        spec,
		Batch:       desc.BatchID,
		Status:      StatusPending,
		SubmittedAt: s.eng.Now(),
		OnDone:      onDone,
	}
	j.span = s.obs.Span(j.Batch, desc.JobID, "job")
	s.obs.Record(j.Batch, desc.JobID, obs.StageSubmit, "", "")
	s.ins.submitted.Inc()
	// Grid overhead: staging and submission cost attached to every
	// independent job.
	j.Desc.Work += s.cfg.PerJobOverheadSeconds * lrm.ReferenceCellsPerSecond
	if s.predictor != nil && spec != nil {
		if est, err := s.predictor.Predict(spec); err == nil {
			j.EstimateRefSeconds = est + s.cfg.PerJobOverheadSeconds
			s.obs.Record(j.Batch, desc.JobID, obs.StageEstimate, "",
				fmt.Sprintf("%.0f ref-seconds", j.EstimateRefSeconds))
		}
	}
	s.jobs[desc.JobID] = j
	s.stats.Submitted++
	if !s.tryPlace(j) {
		s.pending = append(s.pending, j)
		s.stats.UnplaceableAt++
	}
	s.ins.pending.Set(float64(len(s.pending)))
	return j, nil
}

// SubmitBatch expands a portal submission into grid jobs, applying
// replicate bundling for very short jobs: when the estimate is below
// MinJobSeconds, several replicates are merged into a single job whose
// search-replicate count is raised, amortizing the per-job overhead
// ("we can ratchet up the number of search replicates each individual
// GARLI job will perform"). The supplied work sampler provides each
// job's true cost. Returns the created jobs.
func (s *Scheduler) SubmitBatch(sub *workload.Submission, rng *sim.RNG, onDone func(*GridJob)) ([]*GridJob, error) {
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	bundle := 1
	if s.cfg.BundleTargetSeconds > 0 && s.predictor != nil {
		if est, err := s.predictor.Predict(&sub.Spec); err == nil && est < s.cfg.MinJobSeconds {
			perRep := est / float64(sub.Spec.SearchReps)
			if perRep <= 0 {
				perRep = est
			}
			bundle = int(s.cfg.BundleTargetSeconds / (perRep * float64(sub.Spec.SearchReps)))
			if bundle < 1 {
				bundle = 1
			}
			if bundle > sub.Replicates {
				bundle = sub.Replicates
			}
		}
	}
	var jobs []*GridJob
	for rep := 0; rep < sub.Replicates; rep += bundle {
		n := bundle
		if rep+n > sub.Replicates {
			n = sub.Replicates - rep
		}
		spec := sub.Spec
		spec.SearchReps = sub.Spec.SearchReps * n
		spec.Seed = sub.Spec.Seed + int64(rep)
		s.nextSeq++
		desc := &rsl.JobDescription{
			JobID:       fmt.Sprintf("%s-r%04d-%d", sanitizeID(sub.UserEmail), rep, s.nextSeq),
			BatchID:     sub.BatchTag,
			Executable:  "garli",
			Arguments:   []string{"garli.conf"},
			Count:       1,
			MaxMemoryMB: spec.MemoryMB(),
			Platforms:   []lrm.Platform{lrm.LinuxX86, lrm.WindowsX86, lrm.DarwinX86},
			Work:        spec.SampleWork(rng),
			// Input: the sequence matrix; output: trees and logs.
			InputMB:     float64(spec.NumTaxa) * float64(spec.SeqLength) / (1 << 20),
			OutputMB:    0.5,
			ServiceOnly: sub.ServiceOnly,
		}
		if n > 1 {
			s.stats.Bundled += n - 1
			s.ins.bundled.Add(float64(n - 1))
		}
		specCopy := spec
		j, err := s.Submit(desc, &specCopy, onDone)
		if err != nil {
			return jobs, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func sanitizeID(email string) string {
	out := make([]byte, 0, len(email))
	for i := 0; i < len(email); i++ {
		c := email[i]
		if c == '@' || c == '.' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}

// scanPending retries placement of queued jobs against one shared MDS
// snapshot (the snapshot is the expensive part at large backlogs).
func (s *Scheduler) scanPending() {
	if s.scanning || len(s.pending) == 0 {
		return
	}
	s.scanning = true
	defer func() { s.scanning = false }()
	snap := s.candidates()
	var still []*GridJob
	for _, j := range s.pending {
		if j.Status != StatusPending || !s.place(j, snap) {
			if j.Status == StatusPending {
				still = append(still, j)
			}
		}
	}
	s.pending = still
	s.ins.pending.Set(float64(len(s.pending)))
}

// candidates pairs the current MDS snapshot with registered resources.
func (s *Scheduler) candidates() []candidate {
	var out []candidate
	for _, e := range s.idx.Snapshot() {
		if r, ok := s.resources[e.Info.Name]; ok {
			out = append(out, candidate{res: r, info: e.Info})
		}
	}
	return out
}

// candidate pairs a reporting resource with its published info.
type candidate struct {
	res  *resource
	info lrm.Info
}

// eligible applies the paper's matchmaking filters.
func (s *Scheduler) eligible(j *GridJob, c candidate) bool {
	d := j.Desc
	// Backlog cap: keep the grid-level queue in charge of batching
	// rather than flooding one resource's local queue.
	factor := s.cfg.MaxBacklogFactor
	if factor <= 0 {
		factor = 2
	}
	if c.info.TotalCPUs > 0 && float64(c.res.active) >= factor*float64(c.info.TotalCPUs) {
		return false
	}
	// Circuit breaker: a tripped resource receives no work until the
	// cooldown elapses, then exactly one half-open probe.
	if !s.breakerAllows(c.res) {
		return false
	}
	// Service-grid restriction: short workflow stages never go to the
	// volunteer pool, whose turnaround latency (deadline slack, host
	// churn) would dwarf their compute.
	if d.ServiceOnly && c.info.Kind == "boinc" {
		return false
	}
	if len(d.Platforms) > 0 && !platformsOverlap(d.Platforms, c.info.Platforms) {
		return false
	}
	if d.MaxMemoryMB > c.info.NodeMemoryMB {
		return false
	}
	if d.NeedsMPI && !c.info.MPI {
		return false
	}
	if !softwareSubset(d.Software, c.info.Software) {
		return false
	}
	// Stability gating (PolicyFull): jobs with long speed-scaled
	// estimates never go to unstable resources. Jobs without
	// estimates are conservatively allowed (pre-estimate era). With
	// learning enabled, a resource whose observed stability has sunk
	// below the floor is gated like a statically-unstable one — the
	// EWMA replaces config as the source of truth.
	unstable := !c.info.Stable
	if s.cfg.StabilityAlpha > 0 && c.res.stability < s.cfg.StabilityFloor {
		unstable = true
	}
	if s.cfg.Policy == PolicyFull && unstable && j.EstimateRefSeconds > 0 {
		scaled := sim.Duration(j.EstimateRefSeconds / c.res.speed)
		if s.cfg.DisableSpeedScaledGate {
			scaled = sim.Duration(j.EstimateRefSeconds)
		}
		if scaled > s.cfg.UnstableMaxEstimate {
			return false
		}
	}
	return true
}

// score ranks an eligible resource; higher is better.
//
// PolicyNaive spreads by load alone. The speed-aware policies combine
// the paper's "current load" and "resource speed" criteria as a
// minimum-completion-time heuristic: expected wait (backlog over the
// resource's aggregate throughput) plus expected execution time
// (speed-scaled estimate); the resource with the earliest expected
// completion wins. The load term takes the larger of the MDS-reported
// backlog and the scheduler's own in-flight count, so a burst of
// submissions spreads instead of piling onto one stale snapshot.
func (s *Scheduler) score(c candidate, j *GridJob) float64 {
	total := float64(c.info.TotalCPUs)
	if total == 0 {
		return math.Inf(-1)
	}
	load := float64(c.info.QueuedJobs + c.info.RunningJobs)
	if my := float64(c.res.active); my > load {
		load = my
	}
	if s.cfg.Policy == PolicyNaive {
		return (total + 1) / (load + 1)
	}
	est := j.EstimateRefSeconds
	if est <= 0 {
		est = 3600 // no model: assume an hour-scale job
	}
	waitSeconds := load * est / (total * c.res.speed)
	execSeconds := est / c.res.speed
	expected := waitSeconds + execSeconds
	// With learning enabled, deflate by observed stability: a resource
	// seen failing half its jobs effectively doubles its expected
	// completion time (retries are not free), pushing work toward
	// reliable resources without hard-excluding the flaky one.
	if s.cfg.StabilityAlpha > 0 {
		st := c.res.stability
		if st < 0.05 {
			st = 0.05
		}
		expected /= st
	}
	return -expected
}

// tryPlace attempts to schedule the job now; it reports success.
func (s *Scheduler) tryPlace(j *GridJob) bool {
	return s.place(j, s.candidates())
}

// place schedules j against a prepared candidate set.
func (s *Scheduler) place(j *GridJob, cands []candidate) bool {
	var best *candidate
	var bestScore float64
	for i := range cands {
		c := cands[i]
		if !s.eligible(j, c) {
			continue
		}
		sc := s.score(c, j)
		if math.IsInf(sc, -1) {
			continue
		}
		if best == nil || sc > bestScore {
			cc := c
			best = &cc
			bestScore = sc
		}
	}
	if best == nil {
		return false
	}
	s.dispatch(j, best)
	return true
}

// dispatch hands the job to the chosen resource through its adapter.
func (s *Scheduler) dispatch(j *GridJob, c *candidate) {
	d := *j.Desc
	d.EstimatedRefSeconds = j.EstimateRefSeconds
	// BOINC deadline: estimate-driven unless a fixed deadline is
	// configured (or no estimate exists).
	if c.info.Kind == "boinc" {
		switch {
		case s.cfg.FixedBoincDeadline > 0:
			d.DelayBound = s.cfg.FixedBoincDeadline
		case j.EstimateRefSeconds > 0:
			local := j.EstimateRefSeconds / c.res.speed
			d.DelayBound = sim.Duration(local * s.cfg.BoincDeadlineSlack)
			if d.DelayBound < 6*sim.Hour {
				d.DelayBound = 6 * sim.Hour
			}
		}
	}
	s.noteBreakerDispatch(c.info.Name, c.res)
	j.Status = StatusRunning
	j.Resource = c.info.Name
	j.StartedAt = s.eng.Now()
	j.Attempts++
	s.obs.Record(j.Batch, d.JobID, obs.StagePlace, c.info.Name,
		fmt.Sprintf("policy=%s attempt=%d", s.cfg.Policy, j.Attempts))
	s.obs.Counter("lattice_sched_placements_total",
		"Placement decisions by resource and ranking policy",
		obs.L("resource", c.info.Name), obs.L("policy", s.cfg.Policy.String())).Inc()
	s.ins.placeWait.Observe(float64(s.eng.Now().Sub(j.SubmittedAt)))
	j.span.Annotate("resource", c.info.Name)
	name := c.info.Name
	res := c.res
	// attempt pins this dispatch's identity: callbacks arriving after
	// the job was requeued and re-dispatched (a cancelled copy limping
	// home, a slow result from a dead resource) carry a stale attempt
	// and are ignored.
	attempt := j.Attempts
	submit := func() {
		if j.Status != StatusRunning || j.Resource != name || j.Attempts != attempt {
			return // cancelled, requeued or re-routed during staging
		}
		s.obs.Record(j.Batch, d.JobID, obs.StageDispatch, name, "")
		err := res.adapter.Submit(res.lrm, &d,
			func() {
				// Results stage back before the job counts as done.
				out := s.stageDelay(d.OutputMB)
				if out > 0 {
					s.eng.Schedule(out, func() { s.onJobComplete(j, attempt) })
				} else {
					s.onJobComplete(j, attempt)
				}
			},
			func(reason string) { s.onJobFail(j, name, reason, attempt) },
		)
		if err != nil {
			s.submitFailed(j, name, err)
		}
	}
	c.res.active++
	if in := s.stageDelay(d.InputMB); in > 0 {
		s.eng.Schedule(in, submit)
	} else {
		submit()
	}
}

// stageDelay converts a transfer size to a staging duration.
func (s *Scheduler) stageDelay(mb float64) sim.Duration {
	if mb <= 0 || s.cfg.StageBandwidthMBps <= 0 {
		return 0
	}
	return sim.Duration(mb / s.cfg.StageBandwidthMBps)
}

// release drops the in-flight count for the job's resource.
func (s *Scheduler) release(j *GridJob) {
	if r, ok := s.resources[j.Resource]; ok && r.active > 0 {
		r.active--
	}
}

// submitFailed handles a gatekeeper submit error: with a backoff
// configured the job retries on its own exponential timer (base·2^k,
// capped), otherwise it falls back to the pending queue for the next
// periodic scan.
func (s *Scheduler) submitFailed(j *GridJob, name string, err error) {
	s.release(j)
	j.Status = StatusPending
	j.Resource = ""
	s.markDisrupted(j)
	s.observeBreaker(name, false)
	if s.cfg.SubmitRetryBase <= 0 {
		// Legacy path: try elsewhere on next scan.
		s.pending = append(s.pending, j)
		return
	}
	s.stats.SubmitRetries++
	backoff := s.cfg.SubmitRetryBase
	for i := 1; i < j.Attempts; i++ {
		backoff *= 2
		if s.cfg.SubmitRetryMax > 0 && backoff >= s.cfg.SubmitRetryMax {
			backoff = s.cfg.SubmitRetryMax
			break
		}
	}
	s.obs.Counter("lattice_sched_submit_retries_total",
		"Gatekeeper submit failures sent to exponential backoff").Inc()
	s.obs.Record(j.Batch, j.Desc.JobID, obs.StageRequeue, name,
		fmt.Sprintf("submit failed (%v); retry in %.0fs", err, float64(backoff)))
	if s.durable != nil {
		s.durable.Backoff(s.eng.Now(), j.Desc.JobID, name, j.Attempts, backoff)
	}
	s.eng.Schedule(backoff, func() {
		if j.Status != StatusPending {
			return // cancelled or picked up by a scan meanwhile
		}
		if !s.tryPlace(j) {
			s.pending = append(s.pending, j)
			s.ins.pending.Set(float64(len(s.pending)))
		}
	})
}

// checkOffline runs before each periodic scan: any resource holding
// in-flight jobs whose MDS entry has expired is presumed dead — a
// crashed Globus container stops publishing, its entry ages out, and
// everything it held is requeued (the paper's TTL machinery, closed
// into a recovery loop).
func (s *Scheduler) checkOffline() {
	for _, name := range s.order {
		r := s.resources[name]
		if r.active == 0 {
			continue
		}
		if _, ok := s.idx.Lookup(name); ok {
			continue
		}
		s.requeueFrom(name)
	}
}

// requeueFrom pulls every running job off a presumed-dead resource and
// returns it to the pending queue, cancelling the remote copy
// best-effort so a late completion cannot race the reissue.
func (s *Scheduler) requeueFrom(resource string) {
	var ids []string
	for id, j := range s.jobs {
		if j.Status == StatusRunning && j.Resource == resource {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	r := s.resources[resource]
	for _, id := range ids {
		j := s.jobs[id]
		r.lrm.Cancel(id)
		s.release(j)
		s.stats.Requeued++
		s.obs.Counter("lattice_sched_requeues_total",
			"In-flight jobs requeued after resource death (MDS expiry)").Inc()
		s.obs.Record(j.Batch, id, obs.StageRequeue, resource, "resource presumed dead (MDS entry expired)")
		s.markDisrupted(j)
		j.Status = StatusPending
		j.Resource = ""
		s.pending = append(s.pending, j)
	}
	s.observeStability(resource, false)
	s.observeBreaker(resource, false)
	s.ins.pending.Set(float64(len(s.pending)))
}

// markDisrupted stamps a job's first fault-induced setback.
func (s *Scheduler) markDisrupted(j *GridJob) {
	if j.disrupted {
		return
	}
	j.disrupted = true
	j.disruptedAt = s.eng.Now()
}

func (s *Scheduler) onJobComplete(j *GridJob, attempt int) {
	if j.Status != StatusRunning || j.Attempts != attempt {
		return
	}
	s.release(j)
	s.observeStability(j.Resource, true)
	s.observeBreaker(j.Resource, true)
	if j.disrupted {
		s.obs.Histogram("lattice_sched_fault_recovery_seconds",
			"Virtual seconds from a job's first fault-induced disruption to its completion", nil).
			Observe(float64(s.eng.Now().Sub(j.disruptedAt)))
	}
	j.Status = StatusCompleted
	j.CompletedAt = s.eng.Now()
	s.stats.Completed++
	s.ins.completed.Inc()
	s.obs.Record(j.Batch, j.Desc.JobID, obs.StageComplete, j.Resource, "")
	j.span.End()
	if j.OnDone != nil {
		j.OnDone(j)
	}
}

func (s *Scheduler) onJobFail(j *GridJob, resourceName, reason string, attempt int) {
	if j.Status != StatusRunning || j.Attempts != attempt {
		return
	}
	s.release(j)
	s.stats.Retries++
	s.ins.retries.Inc()
	s.observeStability(resourceName, false)
	s.observeBreaker(resourceName, false)
	if strings.HasPrefix(reason, "faults:") {
		s.markDisrupted(j)
	}
	if j.Attempts > s.cfg.RetryLimit {
		j.Status = StatusFailed
		j.CompletedAt = s.eng.Now()
		j.FailReason = reason
		s.stats.Failed++
		s.ins.failed.Inc()
		s.obs.Record(j.Batch, j.Desc.JobID, obs.StageFail, resourceName, reason)
		j.span.End()
		if j.OnDone != nil {
			j.OnDone(j)
		}
		return
	}
	// Back to pending; the periodic scan will find a new home.
	s.obs.Record(j.Batch, j.Desc.JobID, obs.StageReissue, resourceName, reason)
	j.Status = StatusPending
	j.Resource = ""
	s.pending = append(s.pending, j)
	s.ins.pending.Set(float64(len(s.pending)))
}

// Cancel aborts a job wherever it is.
func (s *Scheduler) Cancel(jobID string) bool {
	j, ok := s.jobs[jobID]
	if !ok || j.Status == StatusCompleted || j.Status == StatusFailed {
		return false
	}
	if j.Status == StatusRunning {
		if r, ok := s.resources[j.Resource]; ok {
			r.lrm.Cancel(jobID)
		}
		s.release(j)
	}
	for i, p := range s.pending {
		if p == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	j.Status = StatusFailed
	j.FailReason = "cancelled by user"
	j.CompletedAt = s.eng.Now()
	s.ins.failed.Inc()
	s.obs.Record(j.Batch, j.Desc.JobID, obs.StageFail, "", "cancelled by user")
	j.span.End()
	s.ins.pending.Set(float64(len(s.pending)))
	return true
}

func platformsOverlap(want, have []lrm.Platform) bool {
	for _, w := range want {
		for _, h := range have {
			if w == h {
				return true
			}
		}
	}
	return false
}

func softwareSubset(want, have []string) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if w == h {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
