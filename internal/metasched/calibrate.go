package metasched

import (
	"fmt"

	"lattice/internal/lrm"
	"lattice/internal/sim"
)

// Calibrate measures a resource's speed the way the paper does: "run a
// short GARLI job on each unique individual machine that is part of a
// resource, and average the runtimes we collect. We compare this
// averaged runtime to the runtime from a reference computer, which is
// arbitrarily assigned a speed of 1.0."
//
// It submits count benchmark jobs of benchRefSeconds reference-seconds
// each, runs the simulation until they finish (or deadline), averages
// the measured runtimes and returns the implied speed. The engine is
// advanced, so calibrate on an idle grid (as the real operators did)
// or the queueing delay dilutes the measurement.
func Calibrate(eng *sim.Engine, target lrm.LRM, benchRefSeconds float64, count int, deadline sim.Duration) (float64, error) {
	if count < 1 {
		return 0, fmt.Errorf("metasched: calibration needs at least 1 benchmark job")
	}
	if benchRefSeconds <= 0 {
		return 0, fmt.Errorf("metasched: benchmark size must be positive")
	}
	type sample struct {
		start sim.Time
		dur   sim.Duration
		done  bool
	}
	samples := make([]sample, count)
	finished := 0
	for i := 0; i < count; i++ {
		i := i
		samples[i].start = eng.Now()
		j := &lrm.Job{
			ID:       fmt.Sprintf("speed-bench-%s-%d-%d", target.Name(), int(eng.Now()), i),
			Work:     benchRefSeconds * lrm.ReferenceCellsPerSecond,
			MemoryMB: 64,
		}
		j.OnComplete = func(at sim.Time) {
			samples[i].dur = at.Sub(samples[i].start)
			samples[i].done = true
			finished++
		}
		if err := target.Submit(j); err != nil {
			return 0, fmt.Errorf("metasched: calibration submit to %s: %w", target.Name(), err)
		}
	}
	end := eng.Now().Add(deadline)
	for finished < count && eng.Now() < end && eng.Pending() > 0 {
		eng.RunUntil(end)
	}
	var sum float64
	var n int
	for _, s := range samples {
		if s.done && s.dur > 0 {
			sum += s.dur.Seconds()
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("metasched: no calibration jobs finished on %s within %v", target.Name(), deadline)
	}
	mean := sum / float64(n)
	return benchRefSeconds / mean, nil
}

// CalibrateAndSet measures a registered resource and stores the result
// as its scheduling speed.
func (s *Scheduler) CalibrateAndSet(name string, benchRefSeconds float64, count int, deadline sim.Duration) (float64, error) {
	r, ok := s.resources[name]
	if !ok {
		return 0, fmt.Errorf("metasched: unknown resource %s", name)
	}
	speed, err := Calibrate(s.eng, r.lrm, benchRefSeconds, count, deadline)
	if err != nil {
		return 0, err
	}
	r.speed = speed
	return speed, nil
}
