package metasched

import (
	"fmt"
	"testing"

	"lattice/internal/grid/mds"
	"lattice/internal/lrm"
	"lattice/internal/lrm/pbs"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

func TestStabilityAccessors(t *testing.T) {
	g := newGrid(t, DefaultConfig())
	if st, ok := g.sched.Stability("condor-pool"); !ok || st != 1 {
		t.Fatalf("fresh stability = %v, %v; want 1, true", st, ok)
	}
	if err := g.sched.SetStability("condor-pool", 0.25); err != nil {
		t.Fatal(err)
	}
	if st, _ := g.sched.Stability("condor-pool"); st != 0.25 {
		t.Errorf("stability after SetStability = %v, want 0.25", st)
	}
	if err := g.sched.SetStability("condor-pool", 1.5); err == nil {
		t.Error("SetStability accepted a value above 1")
	}
	if err := g.sched.SetStability("condor-pool", -0.1); err == nil {
		t.Error("SetStability accepted a negative value")
	}
	if err := g.sched.SetStability("nope", 0.5); err == nil {
		t.Error("SetStability accepted an unknown resource")
	}
	if _, ok := g.sched.Stability("nope"); ok {
		t.Error("Stability reported a score for an unknown resource")
	}
}

func TestStabilityEWMALearning(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StabilityAlpha = 0.5
	g := newGrid(t, cfg)
	g.sched.observeStability("condor-pool", false) // 1 → 0.5
	if st, _ := g.sched.Stability("condor-pool"); st != 0.5 {
		t.Errorf("after one failure stability = %v, want 0.5", st)
	}
	g.sched.observeStability("condor-pool", true) // 0.5 → 0.75
	if st, _ := g.sched.Stability("condor-pool"); st != 0.75 {
		t.Errorf("after a success stability = %v, want 0.75", st)
	}
	// alpha = 0 disables learning entirely.
	g2 := newGrid(t, DefaultConfig())
	g2.sched.observeStability("condor-pool", false)
	if st, _ := g2.sched.Stability("condor-pool"); st != 1 {
		t.Errorf("alpha=0 moved stability to %v", st)
	}
}

func TestLearnedStabilityGatesLongJobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyFull
	cfg.StabilityAlpha = 0.2
	g := newGrid(t, cfg)
	g.sched.SetPredictor(fixedPredictor(40 * 3600))
	// The statically-stable cluster has been observed failing: its
	// learned score sinks below the floor, so the gate must now treat
	// it as unstable and refuse to place long jobs anywhere.
	if err := g.sched.SetStability("hpc-cluster", 0.3); err != nil {
		t.Fatal(err)
	}
	spec := workload.JobSpec{DataType: phylo.Nucleotide, SubstModel: "JC69",
		NumTaxa: 10, SeqLength: 100, SearchReps: 1, StartingTree: phylo.StartRandom}
	j, err := g.sched.Submit(jobDesc("long0", 40*3600), &spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.eng.RunUntil(sim.Time(30 * sim.Minute))
	if j.Status != StatusPending {
		t.Errorf("long job placed on %s despite learned instability everywhere", j.Resource)
	}
	// Restore the score: the job must flow to the cluster.
	if err := g.sched.SetStability("hpc-cluster", 1); err != nil {
		t.Fatal(err)
	}
	g.eng.RunUntil(sim.Time(2 * sim.Hour))
	if j.Resource != "hpc-cluster" {
		t.Errorf("recovered cluster not used; job on %q status %v", j.Resource, j.Status)
	}
}

// TestDeadResourceRequeue kills a resource's MDS provider mid-run: the
// scheduler must detect the expired entry, requeue the in-flight jobs,
// and finish them elsewhere.
func TestDeadResourceRequeue(t *testing.T) {
	eng := sim.NewEngine()
	idx, err := mds.NewIndex(eng, 5*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, speed float64) *pbs.Cluster {
		c, err := pbs.New(eng, pbs.Config{
			Name: name, Platform: lrm.LinuxX86,
			Nodes: []pbs.NodeClass{{Count: 4, Speed: speed, MemoryMB: 8192}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	fast, slow := mk("fast", 4.0), mk("slow", 1.0)
	pFast, err := mds.StartProvider(eng, idx, fast, sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mds.StartProvider(eng, idx, slow, sim.Minute); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BundleTargetSeconds = 0
	sched := New(eng, idx, cfg)
	if err := sched.Register(fast, 4.0); err != nil {
		t.Fatal(err)
	}
	if err := sched.Register(slow, 1.0); err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 3; i++ {
		// 4 h of reference work: ~1 h on fast, so still running when
		// the resource dies at t=30 min.
		if _, err := sched.Submit(jobDesc(fmt.Sprintf("j%d", i), 4*3600), nil, func(j *GridJob) {
			if j.Status == StatusCompleted {
				done++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Time(10 * sim.Minute))
	for i := 0; i < 3; i++ {
		j, _ := sched.Job(fmt.Sprintf("j%d", i))
		if j.Resource != "fast" {
			t.Fatalf("job j%d placed on %q, want the fast cluster", i, j.Resource)
		}
	}
	eng.Schedule(20*sim.Minute, pFast.Stop) // the resource silently dies
	eng.RunUntil(sim.Time(2 * sim.Day))
	st := sched.Stats()
	if st.Requeued != 3 {
		t.Errorf("Requeued = %d, want 3", st.Requeued)
	}
	if done != 3 {
		t.Fatalf("%d of 3 jobs completed after the requeue", done)
	}
	for i := 0; i < 3; i++ {
		j, _ := sched.Job(fmt.Sprintf("j%d", i))
		if j.Resource != "slow" {
			t.Errorf("job j%d finished on %q, want the surviving cluster", i, j.Resource)
		}
	}
}

// refusingLRM is a PBS-shaped resource whose gatekeeper rejects the
// first failN submissions, then accepts and completes jobs normally.
type refusingLRM struct {
	eng     *sim.Engine
	name    string
	failN   int
	runFor  sim.Duration
	jobs    map[string]*lrm.Job
	submits int
}

func (f *refusingLRM) Name() string     { return f.name }
func (f *refusingLRM) Stats() lrm.Stats { return lrm.Stats{} }
func (f *refusingLRM) Info() lrm.Info {
	return lrm.Info{Name: f.name, Kind: "pbs", TotalCPUs: 4, FreeCPUs: 4 - len(f.jobs),
		NodeMemoryMB: 8192, Platforms: []lrm.Platform{lrm.LinuxX86}, Stable: true}
}

func (f *refusingLRM) Submit(j *lrm.Job) error {
	f.submits++
	if f.submits <= f.failN {
		return fmt.Errorf("gatekeeper: submission refused")
	}
	f.jobs[j.ID] = j
	f.eng.Schedule(f.runFor, func() {
		if _, ok := f.jobs[j.ID]; !ok {
			return
		}
		delete(f.jobs, j.ID)
		if j.OnComplete != nil {
			j.OnComplete(f.eng.Now())
		}
	})
	return nil
}

func (f *refusingLRM) Cancel(id string) bool {
	if _, ok := f.jobs[id]; !ok {
		return false
	}
	delete(f.jobs, id)
	return true
}

func TestSubmitRetryBackoff(t *testing.T) {
	eng := sim.NewEngine()
	idx, _ := mds.NewIndex(eng, 5*sim.Minute)
	res := &refusingLRM{eng: eng, name: "flaky-gate", failN: 2, runFor: 10 * sim.Minute,
		jobs: make(map[string]*lrm.Job)}
	if _, err := mds.StartProvider(eng, idx, res, sim.Minute); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SubmitRetryBase = sim.Minute
	cfg.SubmitRetryMax = 10 * sim.Minute
	sched := New(eng, idx, cfg)
	if err := sched.Register(res, 1.0); err != nil {
		t.Fatal(err)
	}
	j, err := sched.Submit(jobDesc("j1", 600), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(6 * sim.Hour))
	if j.Status != StatusCompleted {
		t.Fatalf("job status %v after retries, want completed (fail reason %q)", j.Status, j.FailReason)
	}
	st := sched.Stats()
	if st.SubmitRetries != 2 {
		t.Errorf("SubmitRetries = %d, want 2", st.SubmitRetries)
	}
	if res.submits != 3 {
		t.Errorf("resource saw %d submissions, want 3 (two refused, one accepted)", res.submits)
	}
	if st.Failed != 0 {
		t.Errorf("submit refusals must not consume the job: stats %+v", st)
	}
}

func TestSubmitRetryDisabledFallsBackToScan(t *testing.T) {
	eng := sim.NewEngine()
	idx, _ := mds.NewIndex(eng, 5*sim.Minute)
	res := &refusingLRM{eng: eng, name: "flaky-gate", failN: 1, runFor: 10 * sim.Minute,
		jobs: make(map[string]*lrm.Job)}
	if _, err := mds.StartProvider(eng, idx, res, sim.Minute); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SubmitRetryBase = 0 // legacy behaviour: next periodic scan retries
	sched := New(eng, idx, cfg)
	if err := sched.Register(res, 1.0); err != nil {
		t.Fatal(err)
	}
	j, err := sched.Submit(jobDesc("j1", 600), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(6 * sim.Hour))
	if j.Status != StatusCompleted {
		t.Fatalf("job status %v, want completed", j.Status)
	}
	if st := sched.Stats(); st.SubmitRetries != 0 {
		t.Errorf("legacy path counted %d submit retries, want 0", st.SubmitRetries)
	}
}
