package metasched

import (
	"testing"

	"lattice/internal/grid/mds"
	"lattice/internal/lrm"
	"lattice/internal/obs"
	"lattice/internal/sim"
)

// TestBreakerTripsAndRecovers walks one resource's circuit through the
// full state machine on the virtual clock: consecutive gatekeeper
// refusals trip it open, the cooldown gates a half-open probe, a
// failed probe re-opens it, and a successful probe closes it again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	eng := sim.NewEngine()
	idx, _ := mds.NewIndex(eng, 5*sim.Minute)
	res := &refusingLRM{eng: eng, name: "flaky-gate", failN: 3, runFor: 10 * sim.Minute,
		jobs: make(map[string]*lrm.Job)}
	if _, err := mds.StartProvider(eng, idx, res, sim.Minute); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SubmitRetryBase = 30 * sim.Second
	cfg.SubmitRetryMax = 2 * sim.Minute
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 5 * sim.Minute
	sched := New(eng, idx, cfg)
	hub := obs.New(eng)
	sched.SetObs(hub)
	if err := sched.Register(res, 1.0); err != nil {
		t.Fatal(err)
	}
	j, err := sched.Submit(jobDesc("j1", 600), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two refusals trip the breaker.
	eng.RunUntil(sim.Time(2 * sim.Minute))
	if !sched.BreakerOpen("flaky-gate") {
		t.Fatal("breaker not open after consecutive refusals")
	}
	if st := sched.Stats(); st.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", st.BreakerTrips)
	}
	if res.submits != 2 {
		t.Fatalf("resource saw %d submissions while tripping, want 2", res.submits)
	}
	// While open, scans must not touch the resource.
	eng.RunUntil(sim.Time(4 * sim.Minute))
	if res.submits != 2 {
		t.Fatalf("open breaker leaked %d submissions", res.submits-2)
	}
	// Past the cooldown the half-open probe goes out (the third
	// refusal), re-arming the cooldown; the next probe is accepted and
	// closes the circuit.
	eng.RunUntil(sim.Time(2 * sim.Hour))
	if j.Status != StatusCompleted {
		t.Fatalf("job status %v, want completed (fail reason %q)", j.Status, j.FailReason)
	}
	if sched.BreakerOpen("flaky-gate") {
		t.Fatal("breaker still open after a successful probe")
	}
	if res.submits != 4 {
		t.Fatalf("resource saw %d submissions, want 4 (two trip, failed probe, successful probe)", res.submits)
	}
	// The journal narrates every transition.
	var details []string
	for _, ev := range hub.Journal.Events() {
		if ev.Stage == obs.StageBreaker {
			if ev.Resource != "flaky-gate" {
				t.Fatalf("breaker event on %q", ev.Resource)
			}
			details = append(details, ev.Detail)
		}
	}
	if len(details) != 5 {
		t.Fatalf("breaker journal events %v, want open/probe/reopened/probe/closed", details)
	}
}

// TestBreakerDisabledIsZeroCost pins the default path: with
// BreakerThreshold 0 a refusal-heavy run trips nothing, journals
// nothing breaker-shaped, and BreakerOpen always answers false.
func TestBreakerDisabledIsZeroCost(t *testing.T) {
	eng := sim.NewEngine()
	idx, _ := mds.NewIndex(eng, 5*sim.Minute)
	res := &refusingLRM{eng: eng, name: "flaky-gate", failN: 4, runFor: 10 * sim.Minute,
		jobs: make(map[string]*lrm.Job)}
	if _, err := mds.StartProvider(eng, idx, res, sim.Minute); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SubmitRetryBase = 30 * sim.Second
	sched := New(eng, idx, cfg)
	hub := obs.New(eng)
	sched.SetObs(hub)
	if err := sched.Register(res, 1.0); err != nil {
		t.Fatal(err)
	}
	j, err := sched.Submit(jobDesc("j1", 600), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(6 * sim.Hour))
	if j.Status != StatusCompleted {
		t.Fatalf("job status %v, want completed", j.Status)
	}
	if st := sched.Stats(); st.BreakerTrips != 0 {
		t.Fatalf("BreakerTrips = %d with breakers disabled", st.BreakerTrips)
	}
	if sched.BreakerOpen("flaky-gate") {
		t.Fatal("BreakerOpen true with breakers disabled")
	}
	for _, ev := range hub.Journal.Events() {
		if ev.Stage == obs.StageBreaker {
			t.Fatalf("breaker event journaled with breakers disabled: %+v", ev)
		}
	}
}
