package metasched

import (
	"fmt"

	"lattice/internal/obs"
	"lattice/internal/sim"
)

// Per-resource circuit breakers, layered on the learned stability
// EWMAs: the EWMA softly deprioritizes a degrading resource through
// the ranking, while the breaker hard-stops a flapping gatekeeper from
// eating retry budget. BreakerThreshold consecutive failures — submit
// refusals, resource-level job failures (including BOINC deadline
// misses surfacing as failures), death requeues — trip the circuit
// open; the resource receives no work for the cooldown, then exactly
// one half-open probe whose outcome closes or re-opens it. Everything
// keys off the virtual clock and the deterministic failure sequence,
// so breakers add no RNG draws and same-seed runs trip identically.

// defaultBreakerCooldown applies when breakers are enabled without an
// explicit cooldown.
const defaultBreakerCooldown = 10 * sim.Minute

func (s *Scheduler) breakerCooldown() sim.Duration {
	if s.cfg.BreakerCooldown > 0 {
		return s.cfg.BreakerCooldown
	}
	return defaultBreakerCooldown
}

// breakerAllows reports whether the resource's circuit admits a new
// dispatch: closed → yes; open and cooling → no; open past the
// cooldown (half-open) → only while no probe is in flight.
func (s *Scheduler) breakerAllows(r *resource) bool {
	if s.cfg.BreakerThreshold <= 0 || !r.breakerOpen {
		return true
	}
	if s.eng.Now() < r.breakerUntil {
		return false
	}
	return !r.breakerProbe
}

// noteBreakerDispatch marks the half-open probe when a dispatch lands
// on an open circuit past its cooldown.
func (s *Scheduler) noteBreakerDispatch(name string, r *resource) {
	if s.cfg.BreakerThreshold <= 0 || !r.breakerOpen || r.breakerProbe {
		return
	}
	r.breakerProbe = true
	s.obs.Record("", "", obs.StageBreaker, name, "half-open probe dispatched")
}

// observeBreaker feeds one outcome on a resource into its circuit.
func (s *Scheduler) observeBreaker(name string, ok bool) {
	if s.cfg.BreakerThreshold <= 0 {
		return
	}
	r, found := s.resources[name]
	if !found {
		return
	}
	now := s.eng.Now()
	if ok {
		if r.breakerOpen {
			r.breakerOpen = false
			r.breakerProbe = false
			s.obs.Record("", "", obs.StageBreaker, name, "closed after successful probe")
		}
		r.breakerFails = 0
		return
	}
	if r.breakerOpen {
		// A failure while open — the probe, or a straggler dispatched
		// before the trip — re-arms the cooldown.
		wasProbe := r.breakerProbe
		r.breakerProbe = false
		r.breakerUntil = now.Add(s.breakerCooldown())
		if wasProbe {
			s.obs.Record("", "", obs.StageBreaker, name, "probe failed; reopened")
		}
		return
	}
	r.breakerFails++
	if r.breakerFails < s.cfg.BreakerThreshold {
		return
	}
	r.breakerOpen = true
	r.breakerProbe = false
	r.breakerFails = 0
	r.breakerUntil = now.Add(s.breakerCooldown())
	s.stats.BreakerTrips++
	s.obs.Counter("lattice_sched_breaker_trips_total",
		"Per-resource circuit-breaker trips on consecutive failures").Inc()
	s.obs.Record("", "", obs.StageBreaker, name,
		fmt.Sprintf("open after %d consecutive failures; probe after %.0fs",
			s.cfg.BreakerThreshold, float64(s.breakerCooldown())))
}

// BreakerOpen reports whether a resource's circuit is currently open.
func (s *Scheduler) BreakerOpen(name string) bool {
	r, ok := s.resources[name]
	return ok && r.breakerOpen
}
