package lint

import (
	"go/ast"
	"go/token"
)

// This file is the first layer of latticelint's dataflow engine: a
// per-function control-flow graph. Blocks hold only "atomic" nodes —
// simple statements and the controlling expressions of compound
// statements (an if's condition, a switch's tag, the RangeStmt itself
// for the range operation) — never the bodies of nested control flow,
// so a dataflow transfer function can scan a block's nodes in
// evaluation order without double-visiting. Function literals inside
// a node are NOT executed at that point; analyzers walking block
// nodes must skip *ast.FuncLit subtrees (see inspectNoLit).

// Block is one straight-line run of nodes ending in a control
// transfer to its successors.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Entry is the
// first block executed; Exit is the single synthetic block every
// return (and the fall-off-the-end path) feeds. Defers collects the
// function's defer statements in lexical order: their calls run at
// Exit, not where they appear.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the CFG of a function body. The graph is an
// over-approximation: both branches of every condition are assumed
// reachable, loops may execute zero or more times, and an unresolved
// goto falls through to Exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*Block{},
		gotos:  map[string][]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit)
	// Patch forward gotos whose label was eventually seen; anything
	// still unresolved conservatively reaches Exit.
	for name, froms := range b.gotos {
		to := b.labels[name]
		if to == nil {
			to = b.cfg.Exit
		}
		for _, from := range froms {
			b.edge(from, to)
		}
	}
	return b.cfg
}

type loopFrame struct {
	label    string
	brk, cnt *Block // cnt is nil for switch/select frames
}

type cfgBuilder struct {
	cfg   *CFG
	cur   *Block
	loops []loopFrame
	// pendingLabel names the statement about to be built, so labeled
	// break/continue can find their frame.
	pendingLabel string
	labels       map[string]*Block   // goto targets
	gotos        map[string][]*Block // unresolved forward gotos
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the compound statement
// being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) push(label string, brk, cnt *Block) {
	b.loops = append(b.loops, loopFrame{label: label, brk: brk, cnt: cnt})
}

func (b *cfgBuilder) pop() { b.loops = b.loops[:len(b.loops)-1] }

// frameFor finds the break or continue target, honouring labels.
func (b *cfgBuilder) frameFor(label string, needCnt bool) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		fr := b.loops[i]
		if label != "" && fr.label != label {
			continue
		}
		if needCnt {
			if fr.cnt != nil {
				return fr.cnt
			}
			continue // labeled switch: continue targets the enclosing loop
		}
		return fr.brk
	}
	return b.cfg.Exit
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Start a fresh block so goto has a well-defined target.
		nb := b.newBlock()
		b.edge(b.cur, nb)
		b.cur = nb
		b.labels[s.Label.Name] = nb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(head, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(head, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(head, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.push(label, after, post)
		b.cur = body
		b.stmt(s.Body)
		b.pop()
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		// The RangeStmt node stands for the range operation itself
		// (evaluating X, assigning Key/Value each iteration).
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.push(label, after, head)
		b.cur = body
		b.stmt(s.Body)
		b.pop()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.push(label, after, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.pop()
		if len(s.Body.List) == 0 {
			b.edge(head, after) // select{} blocks forever; keep after reachable
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			b.edge(b.cur, b.frameFor(label, false))
			b.cur = b.newBlock()
		case token.CONTINUE:
			b.edge(b.cur, b.frameFor(label, true))
			b.cur = b.newBlock()
		case token.GOTO:
			if to := b.labels[label]; to != nil {
				b.edge(b.cur, to)
			} else {
				b.gotos[label] = append(b.gotos[label], b.cur)
			}
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// Handled by caseClauses; nothing to record here.
		}

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s) // argument evaluation happens here

	default:
		// Simple statements: assignments, expressions, sends, go,
		// declarations, inc/dec, empty.
		b.add(s)
	}
}

// caseClauses builds the clause bodies of a switch or type switch:
// every clause is entered from the head block (case expressions are
// evaluated there), fallthrough chains into the next clause body, and
// a missing default adds a direct head→after edge.
func (b *cfgBuilder) caseClauses(label string, body *ast.BlockStmt) {
	head := b.cur
	after := b.newBlock()
	hasDefault := false
	blocks := make([]*Block, len(body.List))
	for i := range body.List {
		blocks[i] = b.newBlock()
	}
	b.push(label, after, nil)
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
		b.edge(head, blocks[i])
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.pop()
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = after
}

func fallsThrough(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	br, ok := stmts[len(stmts)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// inspectNoLit walks n in evaluation order like ast.Inspect but does
// not descend into function literals: a FuncLit's body does not
// execute where it appears, so dataflow transfer functions must not
// treat its statements as part of the current block.
func inspectNoLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}
