package lint

import (
	"go/ast"
	"go/types"
)

// SyncMisuse flags sync primitives copied by value. A copied Mutex is
// a different mutex; a copied WaitGroup is a different counter — both
// compile fine and fail only under contention, exactly the class of
// bug the race-hardening gate exists to keep out.
var SyncMisuse = &Analyzer{
	Name: "syncmisuse",
	Doc: `flag sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once,
sync.Cond, sync.Pool and sync.Map (or structs containing them)
passed, returned, received or assigned by value. Pass pointers
instead. Use //lint:allow syncmisuse for justified exceptions.`,
	Run: runSyncMisuse,
}

func runSyncMisuse(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkFieldListByValue(p, n.Recv, "receiver")
				}
				checkFuncType(p, n.Type)
			case *ast.FuncLit:
				checkFuncType(p, n.Type)
			case *ast.AssignStmt:
				checkLockCopyAssign(p, n)
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if copiesLock(p, v) {
						p.Reportf(v.Pos(), "assignment copies %s by value; use a pointer", lockTypeName(p.TypeOf(v)))
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := p.TypeOf(n.Value); containsLock(t) {
						p.Reportf(n.Value.Pos(), "range value copies %s each iteration; range over indices or pointers", lockTypeName(t))
					}
				}
			}
			return true
		})
	}
}

func checkFuncType(p *Pass, ft *ast.FuncType) {
	checkFieldListByValue(p, ft.Params, "parameter")
	if ft.Results != nil {
		checkFieldListByValue(p, ft.Results, "result")
	}
}

func checkFieldListByValue(p *Pass, fl *ast.FieldList, what string) {
	for _, field := range fl.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t) {
			p.Reportf(field.Type.Pos(), "%s passes %s by value; use a pointer", what, lockTypeName(t))
		}
	}
}

// checkLockCopyAssign flags assignments whose right-hand side copies
// an existing lock-containing value. Composite literals and zero
// values are fine — those create, not copy.
func checkLockCopyAssign(p *Pass, as *ast.AssignStmt) {
	for _, rhs := range as.Rhs {
		if copiesLock(p, rhs) {
			p.Reportf(rhs.Pos(), "assignment copies %s by value; use a pointer", lockTypeName(p.TypeOf(rhs)))
		}
	}
}

// copiesLock reports whether evaluating e copies a lock-containing
// value out of an existing variable (identifier, field, element or
// dereference — addressable things that already live somewhere).
func copiesLock(p *Pass, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	return containsLock(p.TypeOf(e))
}

// syncLockTypes are the sync package types that must not be copied
// after first use.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether t is, or transitively contains (via
// struct fields or array elements), a sync type that must not be
// copied.
func containsLock(t types.Type) bool {
	return containsLockDepth(t, 0)
}

func containsLockDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockDepth(u.Elem(), depth+1)
	}
	return false
}

func lockTypeName(t types.Type) string {
	if t == nil {
		return "a sync primitive"
	}
	return t.String()
}
