package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// This file is the whole-program layer of the dataflow engine: an
// index of every function declared in the loaded packages and, per
// function, the static call sites into other module functions. The
// three dataflow analyzers (lockorder, goroleak, taintdet) run their
// fixpoints over this graph, so a summary computed for a callee —
// "acquires lock class X", "may send on a channel", "parameter 2
// reaches the journal" — propagates to callers across package
// boundaries.

// Program is every loaded package plus the cross-package call graph.
type Program struct {
	Packages []*Package
	// Funcs indexes every declared function and method with a body,
	// including ones declared in test files when the loader included
	// them.
	Funcs map[*types.Func]*FuncInfo
	// FuncList is Funcs in deterministic order: package path, then
	// file, then declaration order.
	FuncList []*FuncInfo

	byDir map[string]*Package
}

// FuncInfo is one declared function in the program.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// InTest marks functions declared in _test.go files.
	InTest bool
	// Calls are the function's call sites in lexical order, including
	// calls inside nested function literals.
	Calls []*CallSite

	cfg  *CFG
	vnum *ValueNums
}

// CallSite is one call expression inside a function.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func // nil for dynamic calls (func values)
	Target *FuncInfo   // non-nil when the callee is declared in the module
	// InGo marks calls lexically inside a `go` statement's function
	// literal — they run on another goroutine, so caller-held state
	// does not transfer.
	InGo bool
}

// CFG lazily builds and caches the function's control-flow graph.
func (fi *FuncInfo) CFG() *CFG {
	if fi.cfg == nil {
		fi.cfg = BuildCFG(fi.Decl.Body)
	}
	return fi.cfg
}

// Vnum lazily builds and caches the function's value numbering.
func (fi *FuncInfo) Vnum() *ValueNums {
	if fi.vnum == nil {
		fi.vnum = NewValueNums(fi.Pkg.Info, fi.Decl.Body)
	}
	return fi.vnum
}

// Callee resolves the static callee of a call inside this function,
// like Pass.Callee but against the function's own package info.
func (fi *FuncInfo) Callee(call *ast.CallExpr) *types.Func {
	return calleeOf(fi.Pkg.Info, call)
}

// Name returns a diagnostic-friendly name: pkg.Func or pkg.(Type).Method.
func (fi *FuncInfo) Name() string {
	obj := fi.Obj
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if tc := (&ValueNums{}).typeCanonOf(sig.Recv().Type()); tc != "" {
			if i := strings.LastIndexByte(tc, '.'); i >= 0 {
				tc = tc[i+1:]
			}
			name = tc + "." + name
		}
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + name
	}
	return name
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// NewProgram indexes the packages and resolves every static call site.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Funcs: map[*types.Func]*FuncInfo{},
		byDir: map[string]*Package{},
	}
	prog.Packages = pkgs
	for _, pkg := range pkgs {
		prog.byDir[pkg.Dir] = pkg
		for _, f := range pkg.Files {
			prog.indexFile(pkg, f, false)
		}
		for _, f := range pkg.TestFiles {
			prog.indexFile(pkg, f, true)
		}
	}
	// Resolve call sites after the full index exists so cross-package
	// targets are found regardless of load order.
	for _, fi := range prog.FuncList {
		prog.collectCalls(fi)
	}
	return prog
}

func (prog *Program) indexFile(pkg *Package, f *ast.File, inTest bool) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg, InTest: inTest}
		prog.Funcs[obj] = fi
		prog.FuncList = append(prog.FuncList, fi)
	}
}

func (prog *Program) collectCalls(fi *FuncInfo) {
	var walk func(n ast.Node, inGo bool)
	walk = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				// The call's arguments are evaluated here, but the
				// call itself (and any literal body) runs elsewhere.
				site := prog.siteFor(fi, m.Call)
				site.InGo = true
				fi.Calls = append(fi.Calls, site)
				if lit, ok := m.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, true)
				}
				for _, arg := range m.Call.Args {
					walk(arg, inGo)
				}
				return false
			case *ast.CallExpr:
				site := prog.siteFor(fi, m)
				site.InGo = inGo
				fi.Calls = append(fi.Calls, site)
			}
			return true
		})
	}
	walk(fi.Decl.Body, false)
}

func (prog *Program) siteFor(fi *FuncInfo, call *ast.CallExpr) *CallSite {
	site := &CallSite{Call: call}
	if fn := fi.Callee(call); fn != nil {
		site.Callee = fn
		site.Target = prog.Funcs[fn]
	}
	return site
}

// PackageOf maps a finding position back to the package that owns the
// file, for scope filtering of whole-program findings.
func (prog *Program) PackageOf(filename string) *Package {
	return prog.byDir[filepath.Dir(filename)]
}
