package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags goroutines launched with no join path and no stop
// path: no sync.WaitGroup.Done, no send or close on a channel the
// launching function provably receives from, and no receive from a
// stop/work channel inside the goroutine itself. A stranded worker is
// exactly what core.Recover's deterministic re-execution cannot
// tolerate: the replayed coordinator must reach the same quiescent
// state as the original, and a goroutine nobody waits for keeps
// running (and mutating) after the run is supposedly done. Runs on
// _test.go files too — leaked test goroutines outlive the test and
// corrupt later -race runs.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: `flag go statements whose goroutine has no join or stop path: no
WaitGroup.Done (direct or deferred), no send/close on a channel the
parent receives from, and no receive from a stop or work channel in
the goroutine body. Covers _test.go files. Use //lint:allow goroleak
with a justification for process-lifetime goroutines.`,
	Scope:      []string{"internal/...", "cmd/...", "examples/..."},
	Tests:      true,
	RunProgram: runGoroLeak,
}

func runGoroLeak(pp *ProgramPass) {
	for _, fi := range pp.Prog.FuncList {
		info := fi.Pkg.Info
		// enclosing tracks the innermost function body surrounding
		// each go statement: that body is where join evidence (a
		// receive, a Wait) must live.
		var walk func(n ast.Node, parent ast.Node)
		walk = func(n ast.Node, parent ast.Node) {
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					if m != n {
						walk(m.Body, m.Body)
						return false
					}
				case *ast.GoStmt:
					checkGo(pp, fi, info, m, parent)
				}
				return true
			})
		}
		walk(fi.Decl.Body, fi.Decl.Body)
	}
}

// checkGo inspects one go statement.
func checkGo(pp *ProgramPass, fi *FuncInfo, info *types.Info, g *ast.GoStmt, parent ast.Node) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		// A named function or method: analyze its body if it is
		// declared in the module. Unknown bodies (stdlib, func
		// values) cannot be proven leaky — stay silent.
		fn := calleeOf(info, g.Call)
		if fn == nil {
			return
		}
		if target := pp.Prog.Funcs[fn]; target != nil {
			body = target.Decl.Body
		} else {
			return
		}
	}
	if hasJoinEvidence(info, body) {
		return
	}
	// The goroutine body itself shows no discipline; the launch is
	// still joined if it communicates over a channel the parent
	// receives from or closes ceremony around. Collect channels the
	// goroutine writes and check the parent reads them.
	if parentReceivesFrom(info, parent, body, g) {
		return
	}
	pp.Reportf(g.Pos(), "goroutine has no join or stop path: no WaitGroup.Done, no send on a channel the parent receives from, and no stop-channel receive; a stranded worker outlives recovery re-execution")
}

// hasJoinEvidence reports whether the goroutine body contains its own
// termination discipline: a WaitGroup.Done call (direct or deferred),
// a receive or range over a variable-backed channel (a stop or work
// channel that the owner can close), a select statement, or a
// context.Done call.
func hasJoinEvidence(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			if isWaitGroupCall(info, n, "Done") || isContextDone(info, n) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && variableBacked(n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) && variableBacked(n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// variableBacked reports whether a channel expression is a variable
// (identifier, field or element) rather than a fresh call result:
// `for range time.Tick(d)` is an unstoppable channel nobody owns,
// while `for range s.ticker.C` has an owner who can stop it.
func variableBacked(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isWaitGroupCall matches (*sync.WaitGroup).<name> calls.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// isContextDone matches ctx.Done() from context.Context.
func isContextDone(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	return fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// parentReceivesFrom reports whether the launching function receives
// from (or ranges over) a channel object the goroutine body sends on
// or closes — the classic result-channel join.
func parentReceivesFrom(info *types.Info, parent ast.Node, body *ast.BlockStmt, g *ast.GoStmt) bool {
	written := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := chanObj(info, n.Chan); obj != nil {
				written[obj] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					if obj := chanObj(info, n.Args[0]); obj != nil {
						written[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(written) == 0 {
		return false
	}
	received := false
	ast.Inspect(parent, func(n ast.Node) bool {
		if received {
			return false
		}
		// The goroutine's own body sends; receives there don't count.
		if n == ast.Node(g) {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := chanObj(info, n.X); obj != nil && written[obj] {
					received = true
				}
			}
		case *ast.RangeStmt:
			if obj := chanObj(info, n.X); obj != nil && written[obj] && isChanType(info.TypeOf(n.X)) {
				received = true
			}
		}
		return !received
	})
	return received
}

// chanObj resolves a channel expression to the variable or field
// object that names it.
func chanObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}
