package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// Fixture tests: each analyzer runs over testdata/src/<name>/, which
// holds one file of constructs it must flag (bad.go, every flagged
// line marked with a "// want: <substring>" comment) and one file of
// look-alikes it must stay silent on (good.go, including a
// //lint:allow suppression case). The test fails on any missed want,
// any finding with no want, and any mismatch between a finding's
// message and its want substring.

var (
	fixtureLoaderOnce sync.Once
	fixtureLoader     *Loader
	fixtureLoaderErr  error
)

// sharedLoader type-checks fixtures through one loader so the five
// subtests share a file set and the stdlib source-import cache.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	fixtureLoaderOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			fixtureLoaderErr = err
			return
		}
		fixtureLoader, fixtureLoaderErr = NewLoader(root)
	})
	if fixtureLoaderErr != nil {
		t.Fatalf("loader: %v", fixtureLoaderErr)
	}
	return fixtureLoader
}

// runFixture loads the named fixture package and applies a single
// analyzer directly (fixtures live under testdata/, outside any
// analyzer's Scope), then applies directive suppression exactly as
// RunAnalyzers would: suppressed findings are marked and dropped.
// Whole-program analyzers run over a single-package program built
// from the fixture.
func runFixture(t *testing.T, a *Analyzer, name string) []Finding {
	t.Helper()
	pkg := loadFixture(t, name)
	var findings []Finding
	if a.Run != nil {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
			findings: &findings,
		}
		a.Run(pass)
	}
	if a.RunProgram != nil {
		a.RunProgram(&ProgramPass{
			Prog:     NewProgram([]*Package{pkg}),
			analyzer: a,
			findings: &findings,
			fset:     pkg.Fset,
		})
	}
	markSuppressed(allowSet(pkg.Fset, pkg.AllFiles()), findings)
	findings = Unsuppressed(findings)
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		return findings[i].Line < findings[j].Line
	})
	return findings
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("internal", "lint", "testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// expectation is one "// want:" comment in a fixture file.
type expectation struct {
	file   string // base name, e.g. bad.go
	line   int
	substr string
}

const wantMarker = "// want: "

// parseWants collects the want comments of every fixture file in dir.
func parseWants(t *testing.T, name string) []expectation {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []expectation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			if idx := strings.Index(lineText, wantMarker); idx >= 0 {
				wants = append(wants, expectation{
					file:   e.Name(),
					line:   i + 1,
					substr: strings.TrimSpace(lineText[idx+len(wantMarker):]),
				})
			}
		}
	}
	return wants
}

func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixture  string
	}{
		{Determinism, "determinism"},
		{ErrDrop, "errdrop"},
		{FloatCmp, "floatcmp"},
		{SyncMisuse, "syncmisuse"},
		{DeadAssign, "deadassign"},
		{LockOrder, "lockorder"},
		{GoroLeak, "goroleak"},
		{TaintDet, "taintdet"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			findings := runFixture(t, tc.analyzer, tc.fixture)
			matchWants(t, tc.fixture, findings)
		})
	}
}

// matchWants fails on any missed want, any finding with no want, and
// any finding/want message mismatch in the named fixture.
func matchWants(t *testing.T, fixture string, findings []Finding) {
	t.Helper()
	wants := parseWants(t, fixture)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", fixture)
	}
	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || filepath.Base(f.File) != w.file || f.Line != w.line {
				continue
			}
			if !strings.Contains(f.Message, w.substr) {
				t.Errorf("%s:%d: finding %q does not contain want %q", w.file, w.line, f.Message, w.substr)
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("%s:%d: no finding for want %q", w.file, w.line, w.substr)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding %s:%d: %s", filepath.Base(f.File), f.Line, f.Message)
		}
	}
}

// TestFaultsInjectorFixture proves the analyzers scoped (or newly
// scoped) to internal/faults actually fire on injector-shaped code:
// determinism, errdrop and floatcmp findings over one combined
// fixture, with the good-file look-alikes staying clean.
func TestFaultsInjectorFixture(t *testing.T) {
	var findings []Finding
	for _, a := range []*Analyzer{Determinism, ErrDrop, FloatCmp, TaintDet} {
		findings = append(findings, runFixture(t, a, "faultsinj")...)
	}
	matchWants(t, "faultsinj", findings)
}

// TestWALFixture proves the analyzers covering internal/wal actually
// fire on log-shaped code: determinism and errdrop findings over one
// combined fixture, with the good-file look-alikes staying clean.
func TestWALFixture(t *testing.T) {
	var findings []Finding
	for _, a := range []*Analyzer{Determinism, ErrDrop, TaintDet} {
		findings = append(findings, runFixture(t, a, "wal")...)
	}
	matchWants(t, "wal", findings)
}

// TestGoodFixturesClean pins the false-positive guarantee explicitly:
// no analyzer may produce a finding anywhere in its good.go, which
// exercises both the look-alike constructs and the //lint:allow
// escape hatch.
func TestGoodFixturesClean(t *testing.T) {
	for _, a := range All() {
		findings := runFixture(t, a, a.Name)
		for _, f := range findings {
			if filepath.Base(f.File) == "good.go" {
				t.Errorf("%s: good.go flagged: %s", a.Name, f)
			}
		}
	}
}

// TestAnalyzerScope checks the package scoping that the fixture tests
// bypass: scoped analyzers run only on their listed packages, while
// unscoped analyzers run everywhere.
func TestAnalyzerScope(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		pkg      string
		want     bool
	}{
		{Determinism, "lattice/internal/sim", true},
		{Determinism, "lattice/internal/forest", true},
		{Determinism, "lattice/internal/experiments", true},
		{Determinism, "lattice/internal/metasched", true},
		{Determinism, "lattice/internal/faults", true},
		{Determinism, "lattice/internal/wal", true},
		{Determinism, "lattice/internal/shard", true},
		{Determinism, "lattice/internal/portal", true},
		{Determinism, "lattice/internal/admit", true},
		{Determinism, "lattice/cmd/latticelint", true},
		{Determinism, "lattice/examples/portalrun", false},
		{LockOrder, "lattice/internal/boinc", true},
		{LockOrder, "lattice/internal/shard", true},
		{LockOrder, "lattice/internal/admit", true},
		{LockOrder, "lattice/examples/portalrun", false},
		{GoroLeak, "lattice/examples/portalrun", true},
		{GoroLeak, "lattice/internal/shard", true},
		{GoroLeak, "lattice/internal/admit", true},
		{TaintDet, "lattice/cmd/lattice", true},
		{TaintDet, "lattice/internal/shard", true},
		{TaintDet, "lattice/internal/obs", true},
		{TaintDet, "lattice/internal/admit", true},
		{FloatCmp, "lattice/internal/phylo", true},
		{FloatCmp, "lattice/internal/estimate", true},
		{FloatCmp, "lattice/internal/forest", true},
		{FloatCmp, "lattice/internal/faults", true},
		{FloatCmp, "lattice/internal/shard", true},
		{FloatCmp, "lattice/internal/admit", true},
		{FloatCmp, "lattice/internal/gsbl", false},
		{ErrDrop, "lattice/internal/portal", true},
		{ErrDrop, "lattice/examples/portalrun", true},
		{SyncMisuse, "lattice/internal/boinc", true},
		{DeadAssign, "lattice/internal/phylo", true},
	}
	for _, tc := range cases {
		if got := tc.analyzer.AppliesTo(tc.pkg); got != tc.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", tc.analyzer.Name, tc.pkg, got, tc.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName of an unknown name should be nil")
	}
}

// TestSuppressionMarked pins the escape-hatch contract: a finding
// covered by //lint:allow is retained and marked Suppressed (so -json
// consumers can audit the hatches), not silently dropped, and
// Unsuppressed filters exactly those findings out.
func TestSuppressionMarked(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	findings := RunAnalyzers(pkg, All())
	findings = append(findings, RunWholeProgramAll(t, pkg)...)
	var suppressed, open int
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		} else {
			open++
		}
	}
	if suppressed == 0 {
		t.Fatal("suppress fixture produced no suppressed findings")
	}
	if open == 0 {
		t.Fatal("suppress fixture produced no unsuppressed findings")
	}
	if got := len(Unsuppressed(findings)); got != open {
		t.Errorf("Unsuppressed kept %d findings, want %d", got, open)
	}
}

// RunWholeProgramAll runs every dataflow analyzer over a one-package
// program without scope filtering (fixtures live outside all scopes).
func RunWholeProgramAll(t *testing.T, pkg *Package) []Finding {
	t.Helper()
	var findings []Finding
	for _, a := range All() {
		if a.RunProgram == nil {
			continue
		}
		a.RunProgram(&ProgramPass{
			Prog:     NewProgram([]*Package{pkg}),
			analyzer: a,
			findings: &findings,
			fset:     pkg.Fset,
		})
	}
	markSuppressed(allowSet(pkg.Fset, pkg.AllFiles()), findings)
	return findings
}

// TestFindingString pins the human-readable diagnostic format the
// driver prints.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "errdrop", File: "x.go", Line: 3, Col: 7, Message: "boom"}
	want := "x.go:3:7: errdrop: boom"
	if got := fmt.Sprint(f); got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}
