package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. lattice/internal/sim
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using
// only the standard library: module-local imports are resolved by
// walking the module tree, everything else (the standard library) is
// type-checked from source by go/importer's "source" importer. No
// network, no GOPATH, no export data needed.
type Loader struct {
	ModRoot string
	ModPath string

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

// NewLoader creates a loader rooted at the module directory, reading
// the module path from go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*Package{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", file)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadAll loads every package under the module root, in path order.
// Directories named testdata or vendor, and directories whose name
// starts with "." or "_", are skipped, mirroring the go tool's
// treatment of ./... patterns.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir (absolute or relative to the
// module root).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(l.ModRoot, dir)
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return nil, err
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// Load loads the package with the given import path; the path must be
// the module path or below it.
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: import path %q is outside module %s", path, l.ModPath)
	}
	return l.load(path, dir)
}

func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*modImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// modImporter resolves imports during type checking: module-local
// paths recurse through the loader, the rest goes to the standard
// library source importer.
type modImporter Loader

func (m *modImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
