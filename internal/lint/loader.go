package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. lattice/internal/sim
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// TestFiles are the package's in-package _test.go files, present
	// only when the loader's IncludeTests is set. They are
	// type-checked into the same *types.Package and Info as Files.
	// External test packages (package foo_test) are not loaded.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info

	testsLoaded bool
}

// AllFiles returns source and (when loaded) test files.
func (p *Package) AllFiles() []*ast.File {
	if len(p.TestFiles) == 0 {
		return p.Files
	}
	return append(append([]*ast.File{}, p.Files...), p.TestFiles...)
}

// Loader parses and type-checks packages of a single module using
// only the standard library: module-local imports are resolved by
// walking the module tree, everything else (the standard library) is
// type-checked from source by go/importer's "source" importer. No
// network, no GOPATH, no export data needed. Files excluded by build
// constraints for the current GOOS/GOARCH are skipped, mirroring the
// go tool.
type Loader struct {
	ModRoot string
	ModPath string
	// IncludeTests also loads each package's in-package _test.go
	// files. Test files are attached after the base package
	// type-checks, so a test-only import cycle (B's tests import A, A
	// imports B) cannot wedge the loader.
	IncludeTests bool

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

// NewLoader creates a loader rooted at the module directory, reading
// the module path from go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*Package{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", file)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadAll loads every package under the module root, in path order.
// Directories named testdata or vendor, and directories whose name
// starts with "." or "_", are skipped, mirroring the go tool's
// treatment of ./... patterns.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if l.hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir holds loadable Go source: non-test
// files always, test files too when IncludeTests is set (a package
// with only tests is still a package then).
func (l *Loader) hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if !strings.HasSuffix(e.Name(), "_test.go") || l.IncludeTests {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir (absolute or relative to the
// module root).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(l.ModRoot, dir)
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return nil, err
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	pkg, err := l.load(path, abs)
	if err != nil {
		return nil, err
	}
	if err := l.attachTests(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// Load loads the package with the given import path; the path must be
// the module path or below it.
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: import path %q is outside module %s", path, l.ModPath)
	}
	return l.load(path, dir)
}

func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	if len(files) == 0 {
		// A package may consist only of tests (or only of files
		// excluded by build constraints, which is an error).
		if l.IncludeTests {
			return l.loadTestsOnly(path, dir, info)
		}
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	conf := types.Config{Importer: (*modImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// parseDir parses the directory's source files (tests=false) or its
// _test.go files (tests=true), skipping files excluded by build
// constraints for the current GOOS/GOARCH — a //go:build linux file
// on darwin would otherwise poison type checking with duplicate or
// dangling declarations.
func (l *Loader) parseDir(dir string, tests bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") != tests {
			continue
		}
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue // excluded by build constraints (or unreadable: surfaces elsewhere)
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	return files, nil
}

// loadTestsOnly type-checks a package that has no non-test sources:
// its in-package test files form the whole unit.
func (l *Loader) loadTestsOnly(path, dir string, info *types.Info) (*Package, error) {
	all, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, f := range all {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	conf := types.Config{Importer: (*modImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path: path, Dir: dir, Fset: l.fset,
		TestFiles: files, Types: tpkg, Info: info, testsLoaded: true,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// attachTests type-checks the package's in-package _test.go files
// into the already-checked package. Called only from the top-level
// entry points, never from the importer, so dependency loads stay
// test-free and test-only import cycles terminate. External test
// packages (package foo_test) are skipped: they cannot be merged into
// the package's type scope.
func (l *Loader) attachTests(pkg *Package) error {
	if !l.IncludeTests || pkg.testsLoaded {
		return nil
	}
	pkg.testsLoaded = true
	all, err := l.parseDir(pkg.Dir, true)
	if err != nil {
		return err
	}
	var files []*ast.File
	for _, f := range all {
		if f.Name.Name == pkg.Types.Name() {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}
	conf := types.Config{Importer: (*modImporter)(l)}
	checker := types.NewChecker(&conf, l.fset, pkg.Types, pkg.Info)
	if err := checker.Files(files); err != nil {
		return fmt.Errorf("lint: type-checking tests of %s: %w", pkg.Path, err)
	}
	pkg.TestFiles = files
	return nil
}

// modImporter resolves imports during type checking: module-local
// paths recurse through the loader, the rest goes to the standard
// library source importer.
type modImporter Loader

func (m *modImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
