package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags silently discarded errors: calls whose error result
// is dropped on the floor (expression statements) and assignments
// that blank an error value. Grid portals live or die on surfacing
// failures before submission; an unchecked parse is a silent zero.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: `flag function calls used as statements whose results include an
error, and assignments that blank an error value (x, _ := f() with an
error in the blanked position, or _ = err). Deferred calls are not
flagged. Writers documented never to fail (or with no better channel
to report their own failure) are exempt: fmt.Print*, fmt.Fprint* to
os.Stdout / os.Stderr, and fmt.Fprint* / Write* methods on
strings.Builder, bytes.Buffer and bufio.Writer (bufio errors are
sticky and surface at Flush). Use //lint:allow errdrop for justified
exceptions.`,
	Run: runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(p, call)
				}
			case *ast.AssignStmt:
				checkBlankedError(p, n)
			}
			return true
		})
	}
}

// checkDroppedCall reports a call statement whose results include an
// error the caller never sees.
func checkDroppedCall(p *Pass, call *ast.CallExpr) {
	t := p.TypeOf(call)
	if t == nil || !resultHasError(t) || neverFails(p, call) {
		return
	}
	p.Reportf(call.Pos(), "%s returns an error that is discarded", calleeName(p, call))
}

// checkBlankedError reports blank identifiers absorbing error values:
// both the tuple form (v, _ := f()) and the direct form (_ = err or
// _ = f() with an error result).
func checkBlankedError(p *Pass, as *ast.AssignStmt) {
	// Tuple form: one call on the right, several names on the left.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || neverFails(p, call) {
			return
		}
		tuple, ok := p.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				p.Reportf(lhs.Pos(), "error result of %s is assigned to the blank identifier", calleeName(p, call))
			}
		}
		return
	}
	// Direct form: _ = <error-valued expression>, pairwise.
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		rt := p.TypeOf(as.Rhs[i])
		if rt == nil {
			continue
		}
		if isErrorType(rt) {
			p.Reportf(lhs.Pos(), "error value is assigned to the blank identifier instead of being handled")
		} else if resultHasError(rt) {
			if call, ok := as.Rhs[i].(*ast.CallExpr); !ok || !neverFails(p, call) {
				p.Reportf(lhs.Pos(), "call result containing an error is assigned to the blank identifier")
			}
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// resultHasError reports whether t is an error or a tuple containing
// one.
func resultHasError(t types.Type) bool {
	if isErrorType(t) {
		return true
	}
	tuple, ok := t.(*types.Tuple)
	if !ok {
		return false
	}
	for i := 0; i < tuple.Len(); i++ {
		if isErrorType(tuple.At(i).Type()) {
			return true
		}
	}
	return false
}

// safeWriters are receiver/argument types whose write methods are
// documented never to return a non-nil error (or, for bufio, to
// surface it at Flush).
var safeWriters = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"bufio.Writer":    true,
}

func isSafeWriter(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	} else if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return safeWriters[obj.Pkg().Name()+"."+obj.Name()]
}

// neverFails exempts calls on the documented-infallible skip list.
func neverFails(p *Pass, call *ast.CallExpr) bool {
	fn := p.Callee(call)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	// Write methods on never-failing writers.
	if recv := sig.Recv(); recv != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "ReadFrom":
			return isSafeWriter(recv.Type())
		}
		return false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		// Writes to process stdout; grid tools have nowhere better to
		// report a stdout failure anyway.
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) > 0 {
			if isStdStream(p, call.Args[0]) {
				return true
			}
			if t := p.TypeOf(call.Args[0]); t != nil {
				return isSafeWriter(t)
			}
		}
	}
	return false
}

// isStdStream recognizes the os.Stdout / os.Stderr package variables:
// printing to the process's standard streams has no better channel to
// report its own failure on.
func isStdStream(p *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := p.ObjectOf(sel.Sel).(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}

func calleeName(p *Pass, call *ast.CallExpr) string {
	if fn := p.Callee(call); fn != nil {
		if fn.Pkg() != nil && fn.Type().(*types.Signature).Recv() == nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
