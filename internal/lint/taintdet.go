package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// TaintDet is the interprocedural determinism-taint analyzer: it
// tracks values derived from wall-clock reads, the global math/rand
// source, os.Getenv, and map iteration order across assignments,
// function returns and call arguments — package boundaries included —
// and flags the flows that reach an ordered sink: obs journal and
// digest writes, WAL frames, metric exposition, printing and writer
// output. It subsumes the old single-function map-range check of the
// determinism analyzer and shrinks its escape hatches to provably
// safe cases: a slice collected from a map but sorted before use is
// clean, and copying a map into a map carries no order at all.
var TaintDet = &Analyzer{
	Name: "taintdet",
	Doc: `interprocedural determinism taint: values derived from
time.Now, global math/rand, os.Getenv or map iteration order are
tracked through assignments, returns and calls across packages;
flows into ordered sinks (obs journal/digest, WAL frames, exposition,
printing, writers, channel sends) are flagged. Sorting a collected
slice sanitizes its order taint. Use //lint:allow taintdet for
justified exceptions.`,
	Scope:      []string{"internal/...", "cmd/..."},
	RunProgram: runTaintDet,
}

// taintMark is one taint fact: what kind of nondeterminism, and where
// it originated.
type taintMark struct {
	kind string
	pos  token.Pos
}

const (
	kindClock = "the wall clock"
	kindRand  = "the global math/rand source"
	kindEnv   = "the process environment"
	kindOrder = "map iteration order"
)

// taintState is the whole-program fixpoint state.
type taintState struct {
	pp *ProgramPass
	// summaries, grown monotonically round over round
	retVal    map[*FuncInfo]*taintMark
	retOrd    map[*FuncInfo]*taintMark
	paramSink map[*FuncInfo][]bool
	reported  map[string]bool
}

func runTaintDet(pp *ProgramPass) {
	ts := &taintState{
		pp:        pp,
		retVal:    map[*FuncInfo]*taintMark{},
		retOrd:    map[*FuncInfo]*taintMark{},
		paramSink: map[*FuncInfo][]bool{},
		reported:  map[string]bool{},
	}
	// Fixpoint over function summaries: a function returning
	// time.Now() taints its callers; a function forwarding its
	// parameter to the journal makes every call site a sink.
	for round := 0; round < 10; round++ {
		changed := false
		for _, fi := range pp.Prog.FuncList {
			if ts.analyzeFunc(fi, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Reporting pass with converged summaries.
	for _, fi := range pp.Prog.FuncList {
		ts.analyzeFunc(fi, true)
	}
}

// funcTaint is the per-function dataflow state of one analysis pass.
type funcTaint struct {
	ts     *taintState
	fi     *FuncInfo
	vn     *ValueNums
	info   *types.Info
	val    map[int]*taintMark // value taint by value number
	ord    map[int]*taintMark // ordering taint by value number
	params map[int]int        // value number of parameter -> index
	report bool
	// orderCtx is non-nil while walking the body of a loop whose
	// iteration order is nondeterministic (a map range, or a range
	// over an order-tainted slice).
	orderCtx *taintMark
	changed  bool
}

// analyzeFunc runs the per-function pass; report selects between
// summary collection and finding emission. Returns whether any global
// summary changed.
func (ts *taintState) analyzeFunc(fi *FuncInfo, report bool) bool {
	ft := &funcTaint{
		ts:     ts,
		fi:     fi,
		vn:     fi.Vnum(),
		info:   fi.Pkg.Info,
		val:    map[int]*taintMark{},
		ord:    map[int]*taintMark{},
		params: map[int]int{},
		report: report,
	}
	if ts.paramSink[fi] == nil {
		sig := fi.Obj.Type().(*types.Signature)
		ts.paramSink[fi] = make([]bool, sig.Params().Len())
	}
	// Map parameter objects to their indices through value numbers.
	idx := 0
	if fi.Decl.Type.Params != nil {
		for _, field := range fi.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := fi.Pkg.Info.Defs[name]; obj != nil {
					ft.params[ft.vn.NumberOf(name)] = idx
					idx++
				}
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	// Two passes catch loop-carried taint (assigned below its use);
	// the second pass re-runs with the first pass's end state.
	ft.walkStmts(fi.Decl.Body.List)
	ft.walkStmts(fi.Decl.Body.List)
	return ft.changed
}

func (ft *funcTaint) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		ft.stmt(s)
	}
}

func (ft *funcTaint) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		ft.walkStmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			ft.stmt(s.Init)
		}
		ft.expr(s.Cond)
		ft.stmt(s.Body)
		if s.Else != nil {
			ft.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ft.stmt(s.Init)
		}
		if s.Cond != nil {
			ft.expr(s.Cond)
		}
		ft.stmt(s.Body)
		if s.Post != nil {
			ft.stmt(s.Post)
		}
	case *ast.RangeStmt:
		ft.rangeStmt(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ft.stmt(s.Init)
		}
		if s.Tag != nil {
			ft.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			ft.walkStmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ft.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			ft.walkStmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				ft.stmt(cc.Comm)
			}
			ft.walkStmts(cc.Body)
		}
	case *ast.AssignStmt:
		ft.assign(s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ft.expr(r)
			if m := ft.exprVal(r); m != nil && ft.ts.retVal[ft.fi] == nil {
				ft.ts.retVal[ft.fi] = m
				ft.changed = true
			}
			if m := ft.exprOrd(r); m != nil && ft.ts.retOrd[ft.fi] == nil {
				ft.ts.retOrd[ft.fi] = m
				ft.changed = true
			}
		}
	case *ast.ExprStmt:
		ft.expr(s.X)
	case *ast.SendStmt:
		ft.expr(s.Chan)
		ft.expr(s.Value)
		// A channel send is an ordered sink: inside a
		// nondeterministically-ordered loop the receiver observes a
		// random order.
		if ft.orderCtx != nil {
			ft.reportf(s.Arrow, "range over map feeds a channel send: delivery order depends on map iteration; sort the keys first (origin %s)", ft.posf(ft.orderCtx.pos))
		}
		if m := ft.exprOrd(s.Value); m != nil {
			ft.reportf(s.Arrow, "slice built in %s (origin %s) is sent on a channel; sort it first", m.kind, ft.posf(m.pos))
		}
	case *ast.GoStmt:
		ft.call(s.Call)
	case *ast.DeferStmt:
		ft.call(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							ft.expr(vs.Values[i])
							ft.setTaint(name, ft.exprVal(vs.Values[i]), ft.exprOrd(vs.Values[i]))
						}
					}
				}
			}
		}
	case *ast.LabeledStmt:
		ft.stmt(s.Stmt)
	case *ast.IncDecStmt:
		ft.expr(s.X)
	}
}

// rangeStmt handles the one construct that *creates* order taint: a
// loop whose iteration order is not deterministic.
func (ft *funcTaint) rangeStmt(s *ast.RangeStmt) {
	ft.expr(s.X)
	var ctx *taintMark
	if t := ft.info.TypeOf(s.X); t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			ctx = &taintMark{kind: kindOrder, pos: s.Pos()}
		}
	}
	if ctx == nil {
		if m := ft.exprOrd(s.X); m != nil {
			ctx = m // ranging a slice that was built in map order
		}
	}
	prev := ft.orderCtx
	if ctx != nil {
		ft.orderCtx = ctx
	}
	ft.stmt(s.Body)
	ft.orderCtx = prev
}

// assign propagates taint through one assignment statement, applying
// the append rule (a slice appended to inside a nondeterministic loop
// carries order taint) and recording sanitization implicitly: a
// reassignment from a clean value clears the variable.
func (ft *funcTaint) assign(as *ast.AssignStmt) {
	for _, rhs := range as.Rhs {
		ft.expr(rhs)
	}
	// Compound assignment (s += ...) joins instead of replacing: the
	// old value stays in the result, and building a string or sum
	// inside a nondeterministically-ordered loop orders the result by
	// that loop.
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE && len(as.Lhs) == 1 {
		n := ft.vn.NumberOf(as.Lhs[0])
		if ft.orderCtx != nil && ft.ord[n] == nil && orderSensitive(ft.info.TypeOf(as.Lhs[0])) {
			ft.ord[n] = ft.orderCtx
		}
		if len(as.Rhs) == 1 {
			if m := ft.exprVal(as.Rhs[0]); m != nil && ft.val[n] == nil {
				ft.val[n] = m
			}
			if m := ft.exprOrd(as.Rhs[0]); m != nil && ft.ord[n] == nil {
				ft.ord[n] = m
			}
		}
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			ft.setTaint(as.Lhs[i], ft.exprVal(as.Rhs[i]), ft.exprOrd(as.Rhs[i]))
			ft.appendRule(as.Lhs[i], as.Rhs[i])
		}
		return
	}
	// a, b := f(): every result shares the call's taint.
	if len(as.Rhs) == 1 {
		v, o := ft.exprVal(as.Rhs[0]), ft.exprOrd(as.Rhs[0])
		for _, lhs := range as.Lhs {
			ft.setTaint(lhs, v, o)
		}
	}
}

// appendRule handles x = append(x, ...): inside a nondeterministic
// loop the result is ordered by that loop; anywhere, taint of the
// appended elements joins the slice.
func (ft *funcTaint) appendRule(lhs, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, isBuiltin := ft.info.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return
	}
	n := ft.vn.NumberOf(lhs)
	if ft.orderCtx != nil && ft.ord[n] == nil {
		ft.ord[n] = ft.orderCtx
	}
	if len(call.Args) > 0 {
		if m := ft.exprOrd(call.Args[0]); m != nil && ft.ord[n] == nil {
			ft.ord[n] = m
		}
	}
	for _, arg := range call.Args[min(1, len(call.Args)):] {
		if m := ft.exprVal(arg); m != nil && ft.val[n] == nil {
			ft.val[n] = m
		}
	}
}

// setTaint updates the taint of an assignable expression.
func (ft *funcTaint) setTaint(lhs ast.Expr, v, o *taintMark) {
	if isBlank(lhs) {
		return
	}
	switch ast.Unparen(lhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
		n := ft.vn.NumberOf(lhs)
		ft.val[n] = v
		if o != nil || ft.ord[n] == nil {
			ft.ord[n] = o
		}
	case *ast.IndexExpr:
		ie := ast.Unparen(lhs).(*ast.IndexExpr)
		// Writing into a map is order-insensitive (copying a map into
		// a map is clean); writing into a slice propagates value
		// taint at container granularity.
		if t := ft.info.TypeOf(ie.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if v != nil {
					ft.val[ft.vn.NumberOf(ie.X)] = v
				}
				return
			}
		}
		n := ft.vn.NumberOf(lhs)
		if v != nil {
			ft.val[n] = v
		}
	}
}

// expr walks an expression, interpreting calls (sources, sinks,
// sanitizers, summaries) in evaluation order.
func (ft *funcTaint) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(e) {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			ft.call(call)
			return false // call() walks its own arguments
		}
		return true
	})
}

// call interprets one call expression.
func (ft *funcTaint) call(call *ast.CallExpr) {
	for _, arg := range call.Args {
		ft.expr(arg)
	}
	// Sanitizer: sorting a slice erases its order taint.
	if isSortCall(ft.info, call) && len(call.Args) > 0 {
		delete(ft.ord, ft.vn.NumberOf(call.Args[0]))
		return
	}
	fn := calleeOf(ft.info, call)
	// Ordered sinks: the obs journal, digests and exposition; WAL
	// frames; printing and writers (order taint only — printing a
	// timestamp from an interactive tool is not a finding, feeding
	// one into the journal is).
	if sinkName := ft.moduleSink(fn); sinkName != "" {
		ft.checkSinkArgs(call, sinkName, true)
	} else if outName := orderedOutput(ft.info, call); outName != "" {
		if ft.orderCtx != nil {
			ft.reportf(call.Pos(), "range over map feeds %s: emission order depends on map iteration; sort the keys first (origin %s)", outName, ft.posf(ft.orderCtx.pos))
		}
		ft.checkSinkArgs(call, outName, false)
	}
	// Interprocedural: a callee that forwards a parameter to a sink
	// makes this call site a sink for that argument.
	if target := ft.targetOf(fn); target != nil {
		sinks := ft.ts.paramSink[target]
		for i, arg := range call.Args {
			if i < len(sinks) && sinks[i] {
				if m := ft.exprVal(arg); m != nil {
					ft.reportf(call.Pos(), "value derived from %s (origin %s) reaches an ordered sink through %s", m.kind, ft.posf(m.pos), target.Name())
				} else if m := ft.exprOrd(arg); m != nil {
					ft.reportf(call.Pos(), "slice built in %s (origin %s) reaches an ordered sink through %s", m.kind, ft.posf(m.pos), target.Name())
				} else if pi, isParam := ft.paramIndexOf(arg); isParam {
					ft.markParamSink(pi)
				}
			}
		}
	}
}

// checkSinkArgs reports tainted arguments flowing into a sink and
// records parameter-to-sink summaries. valSink selects whether value
// taint (wall clock etc.) is reportable, not just order taint.
func (ft *funcTaint) checkSinkArgs(call *ast.CallExpr, sinkName string, valSink bool) {
	for _, arg := range call.Args {
		if valSink {
			if m := ft.exprVal(arg); m != nil {
				ft.reportf(call.Pos(), "value derived from %s (origin %s) flows into %s: an ordered, digested output must be seed-deterministic", m.kind, ft.posf(m.pos), sinkName)
				continue
			}
		}
		if m := ft.exprOrd(arg); m != nil {
			ft.reportf(call.Pos(), "slice built in %s (origin %s) flows into %s; sort it before emitting", m.kind, ft.posf(m.pos), sinkName)
			continue
		}
		if valSink {
			if pi, isParam := ft.paramIndexOf(arg); isParam {
				ft.markParamSink(pi)
			}
		}
	}
	if valSink && ft.orderCtx != nil {
		ft.reportf(call.Pos(), "range over map feeds %s: emission order depends on map iteration; sort the keys first (origin %s)", sinkName, ft.posf(ft.orderCtx.pos))
	}
}

func (ft *funcTaint) markParamSink(i int) {
	sinks := ft.ts.paramSink[ft.fi]
	if i < len(sinks) && !sinks[i] {
		sinks[i] = true
		ft.changed = true
	}
}

// paramIndexOf resolves an argument expression to one of the current
// function's parameters.
func (ft *funcTaint) paramIndexOf(arg ast.Expr) (int, bool) {
	switch ast.Unparen(arg).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		i, ok := ft.params[ft.vn.NumberOf(arg)]
		return i, ok
	}
	return 0, false
}

// targetOf maps a static callee to its module FuncInfo.
func (ft *funcTaint) targetOf(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return ft.ts.pp.Prog.Funcs[fn]
}

// moduleSink names obs/WAL calls — the ordered, digested outputs the
// paper's reproducibility hangs on.
func (ft *funcTaint) moduleSink(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	if matchScope(path, "internal/obs") || matchScope(path, "internal/wal") {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return ""
}

// exprVal computes the value taint of an expression.
func (ft *funcTaint) exprVal(e ast.Expr) *taintMark {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if m := ft.val[ft.vn.NumberOf(e.(ast.Expr))]; m != nil {
			return m
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			return ft.exprVal(sel.X) // field of a tainted struct
		}
		return nil
	case *ast.CallExpr:
		if m := taintSource(ft.info, e); m != nil {
			return m
		}
		if target := ft.targetOf(calleeOf(ft.info, e)); target != nil {
			return ft.ts.retVal[target]
		}
		// Conversions carry their operand's taint.
		if tv, ok := ft.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return ft.exprVal(e.Args[0])
		}
		// Unknown callee (stdlib, func value): the result inherits the
		// taint of the receiver and the arguments — time.Now().Unix()
		// or fmt.Sprint(tainted) stay tainted.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if m := ft.exprVal(sel.X); m != nil {
				return m
			}
		}
		for _, arg := range e.Args {
			if m := ft.exprVal(arg); m != nil {
				return m
			}
		}
		return nil
	case *ast.BinaryExpr:
		if m := ft.exprVal(e.X); m != nil {
			return m
		}
		return ft.exprVal(e.Y)
	case *ast.UnaryExpr:
		return ft.exprVal(e.X)
	}
	return nil
}

// exprOrd computes the ordering taint of an expression.
func (ft *funcTaint) exprOrd(e ast.Expr) *taintMark {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return ft.ord[ft.vn.NumberOf(e.(ast.Expr))]
	case *ast.CallExpr:
		if target := ft.targetOf(calleeOf(ft.info, e)); target != nil {
			return ft.ts.retOrd[target]
		}
		// Unknown callee: an order-sensitive result built from an
		// order-tainted argument stays ordered (strings.Join of keys
		// collected in map order), but a length or a sum does not.
		if isSortCall(ft.info, e) || !orderSensitive(ft.info.TypeOf(e)) {
			return nil
		}
		for _, arg := range e.Args {
			if m := ft.exprOrd(arg); m != nil {
				return m
			}
		}
	case *ast.BinaryExpr:
		if m := ft.exprOrd(e.X); m != nil {
			return m
		}
		return ft.exprOrd(e.Y)
	}
	return nil
}

func (ft *funcTaint) reportf(pos token.Pos, format string, args ...any) {
	if !ft.report {
		return
	}
	key := fmt.Sprintf("%d|%s", pos, format)
	if ft.ts.reported[key] {
		return
	}
	ft.ts.reported[key] = true
	ft.ts.pp.Reportf(pos, format, args...)
}

func (ft *funcTaint) posf(pos token.Pos) string { return ft.ts.pp.Posf(pos) }

// taintSource recognizes the nondeterminism sources: wall-clock
// reads, the global math/rand source, and environment reads.
func taintSource(info *types.Info, call *ast.CallExpr) *taintMark {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return &taintMark{kind: kindClock, pos: call.Pos()}
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && globalRandFuncs[fn.Name()] {
			return &taintMark{kind: kindRand, pos: call.Pos()}
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			return &taintMark{kind: kindEnv, pos: call.Pos()}
		}
	}
	return nil
}

// orderSensitive reports whether accumulating into a value of type t
// observes accumulation order: strings and slices do, numeric sums
// and counters are commutative.
func orderSensitive(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// isSortCall recognizes the sanctioned order sanitizers.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

// orderedOutput classifies a call as an order-sensitive output:
// printing, or a Write method. (The determinism analyzer's old
// map-range check lives here now, with dataflow behind it.)
func orderedOutput(info *types.Info, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && id.Name == "append" {
			return "" // append propagates order taint instead (see appendRule)
		}
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() != "Sprintf" && fn.Name() != "Errorf" && fn.Name() != "Sprint" && fn.Name() != "Sprintln" {
		return "fmt." + fn.Name()
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "a writer"
		}
	}
	return ""
}
