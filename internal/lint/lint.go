// Package lint is latticelint's engine: a stdlib-only static-analysis
// framework (go/ast, go/parser, go/token, go/types — no external
// dependencies, offline-buildable) with project-specific analyzers
// that enforce the determinism and error-handling discipline the
// paper's reproduction depends on. The grid simulator, forest trainer
// and meta-scheduler must produce identical output for identical
// seeds; the analyzers flag the constructs that silently break that
// property (wall-clock reads, global RNG state, map-iteration-ordered
// output) along with classic correctness hazards (discarded errors,
// exact float comparison, copied locks, dead assignments).
//
// Findings can be suppressed with an explicit escape hatch:
//
//	//lint:allow determinism -- reason why this is safe
//
// placed either on the flagged line or alone on the line directly
// above it. Multiple analyzers may be listed, comma-separated.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Callee resolves the called function or method of a call expression,
// seeing through parentheses. It returns nil for calls of builtins,
// function-typed variables and type conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	// Scope restricts the analyzer to packages whose import path ends
	// with one of these suffixes. Empty means every package.
	Scope []string
	Run   func(*Pass)
}

// AppliesTo reports whether the analyzer runs on the package with the
// given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) || strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		ErrDrop,
		FloatCmp,
		SyncMisuse,
		DeadAssign,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies each analyzer that is in scope for pkg and
// returns the surviving findings: suppressed findings (see the
// //lint:allow directive) are dropped, and the rest are sorted by
// position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		if !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
			findings: &findings,
		}
		a.Run(pass)
	}
	findings = suppress(pkg, findings)
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		if findings[i].Line != findings[j].Line {
			return findings[i].Line < findings[j].Line
		}
		return findings[i].Col < findings[j].Col
	})
	return findings
}

// allowDirective is the comment prefix of the escape hatch.
const allowDirective = "//lint:allow"

// suppress removes findings covered by an allow directive. A
// directive suppresses the listed analyzers on its own line and, when
// the comment stands alone on a line, on the directly following line.
func suppress(pkg *Package, findings []Finding) []Finding {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := map[key]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, allowDirective)
				if reason := strings.Index(rest, "--"); reason >= 0 {
					rest = rest[:reason]
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(rest, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					allowed[key{pos.Filename, pos.Line, name}] = true
					// A comment alone on its line covers the next line.
					if pos.Column == 1 || startsLine(pkg.Fset, f, c) {
						allowed[key{pos.Filename, pos.Line + 1, name}] = true
					}
				}
			}
		}
	}
	if len(allowed) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, fd := range findings {
		if allowed[key{fd.File, fd.Line, fd.Analyzer}] || allowed[key{fd.File, fd.Line, "all"}] {
			continue
		}
		kept = append(kept, fd)
	}
	return kept
}

// startsLine reports whether comment c is the first token on its line
// (i.e. no code precedes it), by checking every node position in the
// file is not on the same line before it. A cheap approximation that
// only needs to distinguish trailing comments from standalone ones:
// trailing comments follow code, so some declaration token shares
// their line with a smaller column.
func startsLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	sameLineCode := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || sameLineCode {
			return false
		}
		p := fset.Position(n.Pos())
		if p.Line == cpos.Line && p.Column < cpos.Column {
			sameLineCode = true
			return false
		}
		return true
	})
	return !sameLineCode
}
