// Package lint is latticelint's engine: a stdlib-only static-analysis
// framework (go/ast, go/parser, go/token, go/types — no external
// dependencies, offline-buildable) with project-specific analyzers
// that enforce the determinism and error-handling discipline the
// paper's reproduction depends on. The grid simulator, forest trainer
// and meta-scheduler must produce identical output for identical
// seeds; the analyzers flag the constructs that silently break that
// property (wall-clock reads, global RNG state, map-iteration-ordered
// output) along with classic correctness hazards (discarded errors,
// exact float comparison, copied locks, dead assignments).
//
// Findings can be suppressed with an explicit escape hatch:
//
//	//lint:allow determinism -- reason why this is safe
//
// placed either on the flagged line or alone on the line directly
// above it. Multiple analyzers may be listed, comma-separated.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer. Suppressed
// findings (covered by a //lint:allow directive) are retained so
// machine consumers can audit the escape hatches, but do not fail the
// run.
type Finding struct {
	Analyzer   string         `json:"analyzer"`
	Pos        token.Position `json:"-"`
	File       string         `json:"file"`
	Line       int            `json:"line"`
	Col        int            `json:"col"`
	Message    string         `json:"message"`
	Suppressed bool           `json:"suppressed"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Callee resolves the called function or method of a call expression,
// seeing through parentheses. It returns nil for calls of builtins,
// function-typed variables and type conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// ProgramPass carries the whole program through one dataflow
// analyzer.
type ProgramPass struct {
	Prog *Program

	analyzer *Analyzer
	findings *[]Finding
	fset     *token.FileSet
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Posf formats a position for embedding in a finding message.
func (p *ProgramPass) Posf(pos token.Pos) string {
	position := p.fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(position.Filename), position.Line)
}

// Analyzer is one named check: either a per-package syntactic pass
// (Run) or a whole-program dataflow pass (RunProgram).
type Analyzer struct {
	Name string
	Doc  string
	// Scope restricts the analyzer to packages whose import path ends
	// with one of these suffixes; a "dir/..." entry matches every
	// package at or under that directory anywhere in the module.
	// Empty means every package.
	Scope []string
	// Tests opts the analyzer into _test.go files (when the loader
	// included them). Analyzers without it never report there.
	Tests      bool
	Run        func(*Pass)
	RunProgram func(*ProgramPass)
}

// AppliesTo reports whether the analyzer runs on the package with the
// given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if matchScope(pkgPath, s) {
			return true
		}
	}
	return false
}

// matchScope matches one scope entry: either a path-suffix package
// name or a "dir/..." subtree wildcard ("internal/..." matches
// lattice/internal/sim and everything below internal/).
func matchScope(pkgPath, pat string) bool {
	if base, ok := strings.CutSuffix(pat, "/..."); ok {
		return pkgPath == base ||
			strings.HasPrefix(pkgPath, base+"/") ||
			strings.Contains(pkgPath, "/"+base+"/")
	}
	return pkgPath == pat || strings.HasSuffix(pkgPath, "/"+pat) || strings.HasSuffix(pkgPath, pat)
}

// All returns the full analyzer suite in stable order: the syntactic
// passes first, then the whole-program dataflow passes.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		ErrDrop,
		FloatCmp,
		SyncMisuse,
		DeadAssign,
		LockOrder,
		GoroLeak,
		TaintDet,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies each per-package analyzer that is in scope for
// pkg and returns its findings sorted by position, with findings
// covered by a //lint:allow directive marked Suppressed (use
// Unsuppressed to drop them). Whole-program analyzers are skipped;
// run those with RunWholeProgram.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		if a.Run == nil || !a.AppliesTo(pkg.Path) {
			continue
		}
		files := pkg.Files
		if a.Tests {
			files = append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		}
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
			findings: &findings,
		}
		a.Run(pass)
	}
	markSuppressed(allowSet(pkg.Fset, pkg.AllFiles()), findings)
	sortFindings(findings)
	return findings
}

// RunWholeProgram applies each dataflow analyzer to the program and
// returns the findings that land in packages within the analyzer's
// scope, sorted by position and marked Suppressed where a
// //lint:allow directive covers them. Findings in _test.go files are
// kept only for analyzers that opt into tests.
func RunWholeProgram(prog *Program, analyzers []*Analyzer) []Finding {
	if len(prog.Packages) == 0 {
		return nil
	}
	fset := prog.Packages[0].Fset
	var findings []Finding
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		var raw []Finding
		a.RunProgram(&ProgramPass{
			Prog:     prog,
			analyzer: a,
			findings: &raw,
			fset:     fset,
		})
		for _, f := range raw {
			if strings.HasSuffix(f.File, "_test.go") && !a.Tests {
				continue
			}
			if pkg := prog.PackageOf(f.File); pkg == nil || !a.AppliesTo(pkg.Path) {
				continue
			}
			findings = append(findings, f)
		}
	}
	var files []*ast.File
	for _, pkg := range prog.Packages {
		files = append(files, pkg.AllFiles()...)
	}
	markSuppressed(allowSet(fset, files), findings)
	sortFindings(findings)
	return findings
}

// Unsuppressed filters out findings covered by an allow directive.
func Unsuppressed(findings []Finding) []Finding {
	var kept []Finding
	for _, f := range findings {
		if !f.Suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		if findings[i].Line != findings[j].Line {
			return findings[i].Line < findings[j].Line
		}
		if findings[i].Col != findings[j].Col {
			return findings[i].Col < findings[j].Col
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
}

// allowDirective is the comment prefix of the escape hatch.
const allowDirective = "//lint:allow"

// allowKey identifies one (file, line, analyzer) an allow directive
// covers.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowSet collects every //lint:allow directive in the files. A
// directive suppresses the listed analyzers on its own line and, when
// the comment stands alone on a line, on the directly following line.
func allowSet(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	allowed := map[allowKey]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, allowDirective)
				if reason := strings.Index(rest, "--"); reason >= 0 {
					rest = rest[:reason]
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(rest, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					allowed[allowKey{pos.Filename, pos.Line, name}] = true
					// A comment alone on its line covers the next line.
					if pos.Column == 1 || startsLine(fset, f, c) {
						allowed[allowKey{pos.Filename, pos.Line + 1, name}] = true
					}
				}
			}
		}
	}
	return allowed
}

// markSuppressed flags findings covered by an allow directive.
func markSuppressed(allowed map[allowKey]bool, findings []Finding) {
	if len(allowed) == 0 {
		return
	}
	for i := range findings {
		fd := &findings[i]
		if allowed[allowKey{fd.File, fd.Line, fd.Analyzer}] || allowed[allowKey{fd.File, fd.Line, "all"}] {
			fd.Suppressed = true
		}
	}
}

// startsLine reports whether comment c is the first token on its line
// (i.e. no code precedes it), by checking every node position in the
// file is not on the same line before it. A cheap approximation that
// only needs to distinguish trailing comments from standalone ones:
// trailing comments follow code, so some declaration token shares
// their line with a smaller column.
func startsLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	sameLineCode := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || sameLineCode {
			return false
		}
		p := fset.Position(n.Pos())
		if p.Line == cpos.Line && p.Column < cpos.Column {
			sameLineCode = true
			return false
		}
		return true
	})
	return !sameLineCode
}
