package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// Loader edge cases: packages that exist only as tests, files excluded
// by build constraints, and sources that do not parse. Each test uses
// a fresh loader (not the shared fixture loader) so IncludeTests can
// vary per test without poisoning the shared cache.

func edgeLoader(t *testing.T, includeTests bool) *Loader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	l.IncludeTests = includeTests
	return l
}

func edgeFixture(name string) string {
	return filepath.Join("internal", "lint", "testdata", "src", name)
}

// TestLoaderTestsOnlyPackage: a directory holding nothing but _test.go
// files is an error without IncludeTests and a complete, type-checked
// package with it — built from the in-package test files only.
func TestLoaderTestsOnlyPackage(t *testing.T) {
	if _, err := edgeLoader(t, false).LoadDir(edgeFixture("testsonly")); err == nil {
		t.Fatal("want an error loading a tests-only package without IncludeTests")
	} else if !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("error = %v, want it to mention \"no Go files\"", err)
	}

	pkg, err := edgeLoader(t, true).LoadDir(edgeFixture("testsonly"))
	if err != nil {
		t.Fatalf("loading tests-only package with IncludeTests: %v", err)
	}
	if len(pkg.Files) != 0 {
		t.Errorf("tests-only package has %d non-test files, want 0", len(pkg.Files))
	}
	if len(pkg.TestFiles) != 1 {
		t.Fatalf("tests-only package has %d test files, want 1 (external foo_test skipped)", len(pkg.TestFiles))
	}
	if name := pkg.TestFiles[0].Name.Name; name != "testsonly" {
		t.Errorf("loaded test file declares package %q, want testsonly", name)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("helper") == nil {
		t.Error("tests-only package is not type-checked: helper missing from package scope")
	}
	if got := len(pkg.AllFiles()); got != 1 {
		t.Errorf("AllFiles() = %d files, want 1", got)
	}
}

// TestLoaderBuildTagExcluded: a file behind a never-satisfied build
// constraint must be skipped. The excluded file redeclares Platform, so
// failing to skip it would surface as a type-check error here.
func TestLoaderBuildTagExcluded(t *testing.T) {
	pkg, err := edgeLoader(t, false).LoadDir(edgeFixture("buildtags"))
	if err != nil {
		t.Fatalf("loading buildtags fixture: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (excluded.go skipped by its build constraint)", len(pkg.Files))
	}
	got := filepath.Base(pkg.Fset.File(pkg.Files[0].Pos()).Name())
	if got != "keep.go" {
		t.Errorf("loaded file = %s, want keep.go", got)
	}
}

// TestLoaderSyntaxError: a package that does not parse must come back
// as an error naming the file — never a panic, never a silent skip.
func TestLoaderSyntaxError(t *testing.T) {
	_, err := edgeLoader(t, false).LoadDir(edgeFixture("broken"))
	if err == nil {
		t.Fatal("want a parse error loading the broken fixture")
	}
	if !strings.Contains(err.Error(), "lint: parsing") {
		t.Errorf("error = %v, want the loader's \"lint: parsing\" prefix", err)
	}
	if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("error = %v, want it to name broken.go", err)
	}
}

// TestLoaderAttachTests: with IncludeTests, in-package test files are
// type-checked into the already-checked package (same scope, same
// Info), external test packages are skipped, and reloading the cached
// package does not attach them twice.
func TestLoaderAttachTests(t *testing.T) {
	l := edgeLoader(t, true)
	pkg, err := l.LoadDir(edgeFixture("withtests"))
	if err != nil {
		t.Fatalf("loading withtests fixture: %v", err)
	}
	if len(pkg.Files) != 1 || len(pkg.TestFiles) != 1 {
		t.Fatalf("loaded %d source + %d test files, want 1 + 1", len(pkg.Files), len(pkg.TestFiles))
	}
	if pkg.Types.Scope().Lookup("checkDouble") == nil {
		t.Error("test helper checkDouble missing from package scope: tests not merged")
	}
	if pkg.Types.Scope().Lookup("quadruple") != nil {
		t.Error("external test symbol quadruple leaked into the package scope")
	}

	again, err := l.LoadDir(edgeFixture("withtests"))
	if err != nil {
		t.Fatalf("reloading withtests fixture: %v", err)
	}
	if again != pkg {
		t.Error("second LoadDir did not return the cached package")
	}
	if len(again.TestFiles) != 1 {
		t.Errorf("reload attached tests twice: %d test files, want 1", len(again.TestFiles))
	}
}

// TestLoaderOutsideModule: import paths outside the module are
// rejected with a clear error rather than being resolved from GOPATH.
func TestLoaderOutsideModule(t *testing.T) {
	_, err := edgeLoader(t, false).Load("example.com/elsewhere")
	if err == nil || !strings.Contains(err.Error(), "outside module") {
		t.Fatalf("Load of a foreign path = %v, want an \"outside module\" error", err)
	}
}
