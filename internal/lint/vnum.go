package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ValueNums is the SSA-lite value-numbering pass of the dataflow
// engine: within one function it assigns every expression a value
// number such that copies share a number. `m := &s.mu` gives m the
// number of s.mu, so a lock acquired through the alias resolves to
// the same lock identity; `t := now()` gives t the number of the call
// result, so taint attached to that number follows the variable. The
// pass is flow-insensitive (one number per variable, last assignment
// wins within a pass), which is a sound over-approximation for the
// may-analyses built on top.
type ValueNums struct {
	info  *types.Info
	next  int
	byObj map[types.Object]int
	byKey map[string]int // composite keys: field selections off a numbered base
	canon map[int]string // canonical source-level name for a number, when known
}

// NewValueNums builds the numbering for one function body (or any
// statement tree) using the package's type information.
func NewValueNums(info *types.Info, body ast.Node) *ValueNums {
	v := &ValueNums{
		info:  info,
		byObj: map[types.Object]int{},
		byKey: map[string]int{},
		canon: map[int]string{},
	}
	if body != nil {
		// Record copy relations. Function literals capture outer
		// variables, so their assignments participate too.
		ast.Inspect(body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
				for i := range as.Lhs {
					v.Assign(as.Lhs[i], as.Rhs[i])
				}
			}
			return true
		})
	}
	return v
}

func (v *ValueNums) fresh() int {
	v.next++
	return v.next
}

// NumberOf returns the value number of e, creating one if needed.
// Parentheses, address-of and dereference are transparent: &x, *p and
// x number alike, which is exactly what lock-identity and taint
// propagation want.
func (v *ValueNums) NumberOf(e ast.Expr) int {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := v.info.ObjectOf(e)
		if obj == nil {
			return v.fresh()
		}
		n, ok := v.byObj[obj]
		if !ok {
			n = v.fresh()
			v.byObj[obj] = n
			v.canon[n] = v.canonIdent(e, obj)
		}
		return n
	case *ast.SelectorExpr:
		base := v.NumberOf(e.X)
		key := fmt.Sprintf("%d.%s", base, e.Sel.Name)
		n, ok := v.byKey[key]
		if !ok {
			n = v.fresh()
			v.byKey[key] = n
			if bc, ok := v.canon[base]; ok {
				v.canon[n] = bc + "." + e.Sel.Name
			}
		}
		return n
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return v.NumberOf(e.X)
		}
	case *ast.StarExpr:
		return v.NumberOf(e.X)
	case *ast.IndexExpr:
		// All elements of one container share a number: container
		// granularity is the right precision for lock classes and
		// taint.
		base := v.NumberOf(e.X)
		key := fmt.Sprintf("%d.[]", base)
		n, ok := v.byKey[key]
		if !ok {
			n = v.fresh()
			v.byKey[key] = n
			if bc, ok := v.canon[base]; ok {
				v.canon[n] = bc + "[...]"
			}
		}
		return n
	}
	return v.fresh()
}

// Assign records the copy relation of one assignment pair: the
// left-hand variable takes the right-hand side's value number. Append
// back into the same slice keeps the slice's number stable so taint
// survives the classic accumulate loop.
func (v *ValueNums) Assign(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := v.info.ObjectOf(id)
	if obj == nil {
		return
	}
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" && len(call.Args) > 0 {
			if _, isBuiltin := v.info.ObjectOf(fid).(*types.Builtin); isBuiltin {
				// x = append(x, ...): keep x's number.
				if _, ok := v.byObj[obj]; ok {
					return
				}
				v.byObj[obj] = v.NumberOf(call.Args[0])
				return
			}
		}
		// Other calls produce fresh values; leave the variable's
		// number to be created on first use.
		return
	}
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.UnaryExpr, *ast.StarExpr, *ast.IndexExpr:
		v.byObj[obj] = v.NumberOf(rhs)
	}
}

// Canon returns a stable, whole-program canonical name for the value
// e: fields of a named type resolve to "pkgpath.Type.field" (merging
// every instance of the lock class), package-level variables to
// "pkgpath.name", and locals to a position-qualified name unique to
// their function. The empty string means no useful name exists.
func (v *ValueNums) Canon(e ast.Expr) string {
	n := v.NumberOf(e)
	if c, ok := v.canon[n]; ok {
		return c
	}
	// Selector chains canonicalise through the receiver's type: s.mu
	// on any *Server is the lock class Server.mu.
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if tc := v.typeCanon(sel.X); tc != "" {
			c := tc + "." + sel.Sel.Name
			v.canon[n] = c
			return c
		}
		if bc := v.Canon(sel.X); bc != "" {
			c := bc + "." + sel.Sel.Name
			v.canon[n] = c
			return c
		}
	}
	return ""
}

// canonIdent names the object behind a plain identifier.
func (v *ValueNums) canonIdent(id *ast.Ident, obj types.Object) string {
	vr, ok := obj.(*types.Var)
	if !ok {
		return ""
	}
	if vr.Pkg() != nil && !vr.IsField() && vr.Parent() == vr.Pkg().Scope() {
		return vr.Pkg().Path() + "." + vr.Name() // package-level variable
	}
	// A sync.Mutex local must stay distinct from every other one, so
	// class-granularity naming applies only to module-defined types.
	if tc := v.typeCanonOf(vr.Type()); tc != "" && !isSyncType(vr.Type()) {
		return tc // receiver/parameter of a named type: class granularity
	}
	// Function-local: unique per declaration site.
	return fmt.Sprintf("local.%s@%d", vr.Name(), vr.Pos())
}

// typeCanon names the (pointer-stripped) named type of an expression.
func (v *ValueNums) typeCanon(e ast.Expr) string {
	t := v.info.TypeOf(e)
	return v.typeCanonOf(t)
}

// isSyncType reports whether t (pointer-stripped) is declared in
// package sync.
func isSyncType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

func (v *ValueNums) typeCanonOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
