package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags exact equality between floating-point values in the
// likelihood/estimation code, where rounding makes == a latent bug.
// Comparison against the exact-zero constant is exempt: guarding a
// division by an exactly-zero variance or an unset sentinel is
// well-defined IEEE behaviour and idiomatic in this codebase.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: `flag == and != between floating-point operands in the
likelihood and estimation packages. Comparisons where either side is
a compile-time zero constant are exempt (exact-zero guards); compare
with a tolerance helper otherwise, or annotate a justified exact
comparison with //lint:allow floatcmp.`,
	Scope: []string{
		"internal/phylo",
		"internal/estimate",
		"internal/forest",
		"internal/faults",
		"internal/dag",
		"internal/shard",
		"internal/admit",
	},
	Run: runFloatCmp,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(bin.X)) && !isFloat(p.TypeOf(bin.Y)) {
				return true
			}
			if isZeroConst(p, bin.X) || isZeroConst(p, bin.Y) {
				return true
			}
			if isConst(p, bin.X) && isConst(p, bin.Y) {
				return true // constant folding is exact
			}
			p.Reportf(bin.OpPos, "floating-point values compared with %s; use a tolerance (see phylo.AlmostEqual) or //lint:allow floatcmp", bin.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

func isZeroConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
