// Fixture: injector-shaped look-alikes the analyzers must NOT flag —
// the sanctioned deterministic forms of everything bad.go does wrong.
package faultsinj

import (
	"math/rand"
	"sort"
)

// DrainSorted is the deterministic kill order: collect, sort, then
// act. The map range feeds only the collection that is sorted before
// use — taintdet proves that, so no escape hatch is needed.
func DrainSorted(targets map[string]*target) []string {
	var order []string
	for name := range targets {
		order = append(order, name)
	}
	sort.Strings(order)
	return order
}

// SeededFlap draws outage lengths from a seeded local source — the
// sanctioned replacement for the global math/rand functions.
func SeededFlap(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.ExpFloat64()
}

// SubmitChecked handles the refusal instead of dropping it.
func SubmitChecked(t *target) error {
	if err := t.Submit(); err != nil {
		return err
	}
	return nil
}

// WindowArmed guards against the exact-zero sentinel — IEEE-exact and
// exempt from the floatcmp rule.
func WindowArmed(p float64) bool {
	return p != 0
}

// Counting map iteration is commutative and not flagged.
func ActiveWindows(ps map[string]float64) int {
	n := 0
	for _, p := range ps {
		if p > 0 {
			n++
		}
	}
	return n
}
