// Fixture: fault-injector-shaped constructs that the analyzers newly
// scoped to internal/faults must flag — nondeterminism in the fault
// schedule, dropped submit errors, and exact probability comparisons.
package faultsinj

import (
	"errors"
	"fmt"
	"time"
)

// target is a stand-in for the injector's wrapped resource.
type target struct{ name string }

func (t *target) Submit() error { return errors.New(t.name + " is down") }

// DrainAll cancels in-flight work per resource — the kill order is
// collected in map-iteration order and emitted unsorted, which would
// make the whole downstream journal depend on map layout.
func DrainAll(targets map[string]*target) []string {
	var order []string
	for name := range targets {
		order = append(order, name)
	}
	fmt.Println(order) // want: slice built in map iteration order
	return order
}

// StampFault timestamps an injection with the wall clock instead of
// the sim clock — the canonical determinism bug.
func StampFault() time.Time {
	return time.Now() // want: time.Now reads the wall clock
}

// FireAndForget injects a submit failure but drops the resource's
// refusal on the floor, so the scheduler never hears about it.
func FireAndForget(t *target) {
	t.Submit() // want: returns an error that is discarded
}

// Blanked swallows the refusal through the blank identifier.
func Blanked(t *target) {
	_ = t.Submit() // want: error value is assigned to the blank identifier
}

// WindowOpen gates a probabilistic fault window on exact float
// equality — rounding makes the window silently never open.
func WindowOpen(p, threshold float64) bool {
	return p == threshold // want: floating-point values compared with ==
}

// WindowClosed is the != twin.
func WindowClosed(p, threshold float64) bool {
	return p != threshold // want: floating-point values compared with !=
}
