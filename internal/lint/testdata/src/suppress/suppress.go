// Fixture for the suppression contract: the same construct appears
// twice, once waived and once open. The engine must retain the waived
// finding marked Suppressed (so -json consumers can audit the escape
// hatches) and keep the open one unsuppressed.
package suppress

import "time"

func WaivedStamp() time.Time {
	return time.Now() //lint:allow determinism -- fixture: suppression must mark, not drop
}

func OpenStamp() time.Time {
	return time.Now()
}

func WaivedLeak(work func()) {
	//lint:allow goroleak -- fixture: standalone directive covers the next line
	go func() {
		for {
			work()
		}
	}()
}

func OpenLeak(work func()) {
	go func() {
		for {
			work()
		}
	}()
}
