// Fixture: comparisons the floatcmp analyzer must NOT flag.
package floatcmp

import "math"

// Exact-zero guards are well-defined IEEE behaviour and exempt.
func Guard(variance float64) float64 {
	if variance == 0 {
		return 0
	}
	return 1 / variance
}

// Tolerance comparison is the sanctioned pattern.
func Near(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// Integer comparison is out of scope.
func SameInt(a, b int) bool { return a == b }

// Constant folding is exact.
func ConstCheck() bool {
	const half = 0.5
	return half == 0.5
}

// A justified exact comparison, waived on the line above.
func IsSentinel(x float64) bool {
	//lint:allow floatcmp -- sentinel is assigned verbatim, never computed
	return x == math.MaxFloat64
}
