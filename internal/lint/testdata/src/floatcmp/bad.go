// Fixture: exact float comparisons the floatcmp analyzer must flag.
package floatcmp

func Same(a, b float64) bool {
	return a == b // want: floating-point values compared with ==
}

func Differ(a, b float64) bool {
	return a != b // want: floating-point values compared with !=
}

func AgainstNonZeroConst(x float64) bool {
	return x == 0.5 // want: floating-point values compared with ==
}

func Narrow(a, b float32) bool {
	return a == b // want: floating-point values compared with ==
}
