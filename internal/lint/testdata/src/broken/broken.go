// Package broken is a deliberate syntax error: the loader must report
// it as a parse error, never panic or silently skip the file.
package broken

func Torn(x int {
	return x
