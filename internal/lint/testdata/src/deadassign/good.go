// Fixture: blank assignments the deadassign analyzer must NOT flag.
package deadassign

import "errors"

type fixtureErr struct{}

func (*fixtureErr) Error() string { return "fixture" }

// Package-level blank declarations are compile-time assertions.
var _ error = (*fixtureErr)(nil)

// Blanked errors are errdrop's department, not deadassign's.
func BlankedError() {
	err := errors.New("boom")
	_ = err
}

// Blanking a call result is not a discarded local.
func BlankCall() {
	_ = len("four")
}

// Using the value is the fix.
func Used(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// An explicitly waived keep-alive, suppressed on the flagged line.
func KeepAlive(buf []byte) {
	_ = buf //lint:allow deadassign -- documents that buf must stay reachable here
}
