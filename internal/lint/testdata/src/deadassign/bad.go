// Fixture: discarded computed locals the deadassign analyzer must
// flag.
package deadassign

func Discarded(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	mean := float64(total) / float64(len(xs))
	_ = mean // want: dead assignment: local "mean" is computed and then discarded
	return total
}

func UnusedParam(n int) {
	_ = n // want: dead assignment: local "n" is computed and then discarded
}
