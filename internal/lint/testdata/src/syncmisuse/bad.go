// Fixture: by-value lock copies the syncmisuse analyzer must flag.
package syncmisuse

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func ByValueParam(c Counter) int { // want: parameter passes
	return c.n
}

func (c Counter) Get() int { // want: receiver passes
	return c.n
}

func ReturnByValue(c *Counter) Counter { // want: result passes
	return *c
}

func CopyAssign(c *Counter) int {
	snapshot := *c // want: assignment copies
	return snapshot.n
}

func RangeCopy(cs []Counter) int {
	total := 0
	for _, c := range cs { // want: range value copies
		total += c.n
	}
	return total
}

func WaitByValue(wg sync.WaitGroup) { // want: passes sync.WaitGroup by value
	wg.Wait()
}
