// Fixture: lock handling the syncmisuse analyzer must NOT flag.
package syncmisuse

import "sync"

type SafeCounter struct {
	mu sync.Mutex
	n  int
}

// Pointer receivers are the sanctioned form.
func (c *SafeCounter) Incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Pointer parameters copy nothing.
func Drain(c *SafeCounter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.n
	c.n = 0
	return n
}

// Declaring a zero value creates a lock; it does not copy one.
func NewCounter() *SafeCounter {
	var c SafeCounter
	return &c
}

// A composite literal initializes, it does not copy.
func FreshCounter() *SafeCounter {
	c := SafeCounter{}
	return &c
}

// Ranging over pointers copies nothing.
func Total(cs []*SafeCounter) int {
	total := 0
	for _, c := range cs {
		total += Drain(c)
	}
	return total
}

// A deliberate pre-publication copy, explicitly waived.
func Snapshot(c *SafeCounter) int {
	//lint:allow syncmisuse -- counter is quiescent during snapshot
	s := *c
	return s.n
}
