// Fixture: deterministic look-alikes the taintdet analyzer must NOT
// flag — sanitized, commutative, or sink-free forms of everything
// bad.go does wrong.
package taintdet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lattice/internal/obs"
)

// SortedEmit is the sanctioned serialization: collect, sort, emit.
// The sort call sanitizes the slice's order taint.
func SortedEmit(m map[string]int) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	fmt.Println(strings.Join(ks, ","))
}

// CopyMap carries no order at all: map-to-map insertion is
// order-insensitive.
func CopyMap(src map[string]string) map[string]string {
	dst := make(map[string]string, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// SumCounts is commutative: a sum does not observe iteration order.
func SumCounts(counts map[string]int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	fmt.Println(total)
	return total
}

// PrintNow prints a timestamp to the console — an interactive
// convenience, not a digested output, so value taint stays silent
// outside the obs/WAL sinks.
func PrintNow() {
	fmt.Println(time.Now())
}

// RecordStatic journals a constant detail: nothing tainted flows in.
func RecordStatic(j *obs.Journal) {
	j.Record("batch", "job", obs.StageComplete, "res", "requeued after fault")
}

// WaivedStamp documents a justified exception through the escape
// hatch.
func WaivedStamp(j *obs.Journal) {
	boot := time.Now().String()
	j.Record("batch", "job", obs.StageComplete, "res", boot) //lint:allow taintdet -- boot banner event, excluded from the digest comparison
}
