// Fixture: write-ahead-log-shaped constructs that the analyzers
// scoped (or applying) to internal/wal must flag — nondeterministic
// snapshot serialization, wall-clock record stamps, and dropped log
// I/O errors.
package wal

import (
	"bytes"
	"errors"
	"time"
)

// log is a stand-in for the append-only WAL.
type log struct{ n int }

func (l *log) Append(rec string) error { l.n++; return errors.New("disk full") }
func (l *log) Close() error            { return errors.New("close failed") }

// SnapshotInputs serializes the input map — map iteration feeding a
// writer, which would make the snapshot bytes (and so the recovery
// verification digest) depend on map layout.
func SnapshotInputs(inputs map[string]string) []byte {
	var buf bytes.Buffer
	for k, v := range inputs {
		buf.WriteString(k + "=" + v + "\n") // want: range over map feeds a writer
	}
	return buf.Bytes()
}

// StampRecord timestamps a durable record with the wall clock instead
// of virtual time — replay could never regenerate it bit-identically.
func StampRecord() time.Time {
	return time.Now() // want: time.Now reads the wall clock
}

// AppendAndForget drops the log's write error, silently losing
// durability.
func AppendAndForget(l *log) {
	l.Append("stage") // want: returns an error that is discarded
}

// CloseBlanked swallows the close (and flush) failure through the
// blank identifier.
func CloseBlanked(l *log) {
	_ = l.Close() // want: error value is assigned to the blank identifier
}
