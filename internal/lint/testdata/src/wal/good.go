// Fixture: WAL-shaped look-alikes the analyzers must NOT flag — the
// sanctioned deterministic and error-propagating forms of everything
// bad.go does wrong.
package wal

import "sort"

// SnapshotSorted is the deterministic serialization: collect, sort,
// then emit. No escape hatch needed: taintdet proves the collected
// slice is sorted before it is used.
func SnapshotSorted(inputs map[string]string) []string {
	var keys []string
	for k := range inputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k+"="+inputs[k])
	}
	return out
}

// AppendChecked propagates the write error so the caller sees the
// lost durability.
func AppendChecked(l *log) error {
	if err := l.Append("stage"); err != nil {
		return err
	}
	return nil
}

// CountRecords is commutative map iteration and not flagged.
func CountRecords(byKind map[string]int) int {
	n := 0
	for _, c := range byKind {
		n += c
	}
	return n
}

// CloseDeferred: deferred calls are exempt by rule; the sticky error
// surfaces through Err().
func CloseDeferred(l *log) {
	defer l.Close()
}
