package testsonly

// helper lives in a package that has no non-test sources at all: the
// in-package test files form the whole compilation unit. The loader
// must still produce a type-checked package when IncludeTests is set,
// and must report "no Go files" when it is not.
func helper(x int) int { return x + 1 }
