package testsonly_test

// An external test package cannot be merged into the package's type
// scope; the loader must skip this file rather than choke on it.
func double(x int) int { return 2 * x }
