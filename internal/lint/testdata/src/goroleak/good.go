// Fixture: goroutine launches the goroleak analyzer must NOT flag —
// every join and stop discipline the coordinator uses.
package goroleak

import (
	"context"
	"sync"
)

// Joined is the WaitGroup discipline: Done in the goroutine, Wait in
// the parent.
func Joined(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// ResultChannel is the classic collect join: the parent receives the
// goroutine's send.
func ResultChannel(compute func() int) int {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	return <-ch
}

// CloseSignal joins on the goroutine closing its done channel.
func CloseSignal(work func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

// StopChannel gives the goroutine a select on an owner-closable stop
// channel.
func StopChannel(work func(), stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// WorkerPool drains an owner-closable work channel; closing jobs ends
// the goroutine.
func WorkerPool(jobs chan int, handle func(int)) {
	go func() {
		for j := range jobs {
			handle(j)
		}
	}()
}

// ContextBound stops when the caller cancels the context.
func ContextBound(ctx context.Context, work func()) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// Waived documents a justified process-lifetime goroutine through the
// escape hatch.
func Waived(serve func()) {
	go serveForever(serve) //lint:allow goroleak -- process-lifetime acceptor; the OS reaps it at exit
}

func serveForever(serve func()) {
	for {
		serve()
	}
}
