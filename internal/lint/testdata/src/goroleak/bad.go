// Fixture: goroutine launches the goroleak analyzer must flag — no
// WaitGroup, no channel the parent receives from, no stop hook. Each
// flagged line carries a "// want:" comment.
package goroleak

import "time"

// FireAndForget launches an unbounded worker nobody can stop or wait
// for — it outlives recovery re-execution.
func FireAndForget(work func()) {
	go func() { // want: goroutine has no join or stop path
		for {
			work()
		}
	}()
}

// TickerLeak ranges over an anonymous ticker channel: unstoppable by
// construction, since nobody holds the ticker.
func TickerLeak(work func()) {
	go func() { // want: goroutine has no join or stop path
		for range time.Tick(time.Second) {
			work()
		}
	}()
}

// spin is a named leak target: the body is visible in the module, so
// the launch is checked through the call graph.
func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

func NamedLeak() {
	go spin() // want: goroutine has no join or stop path
}

// DeadLetter sends on a channel the parent never receives from — the
// send blocks forever once the buffer fills, stranding the goroutine.
func DeadLetter(vs []int) {
	ch := make(chan int, 1)
	go func() { // want: goroutine has no join or stop path
		for _, v := range vs {
			ch <- v
		}
	}()
}
