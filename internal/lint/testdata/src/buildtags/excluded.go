//go:build lattice_never

package buildtags

// This Platform collides with keep.go's: if the loader ignored the
// build constraint above, type checking would fail with a duplicate
// declaration. The constraint tag is never set, so the file must be
// skipped on every platform.
func Platform() string { return "never" }
