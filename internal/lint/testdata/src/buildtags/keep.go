package buildtags

// Platform reports which file satisfied the build constraints.
func Platform() string { return "portable" }
