package withtests

// Double is exercised by the in-package test file, which the loader
// attaches to this package when IncludeTests is set.
func Double(x int) int { return 2 * x }
