package withtests

// checkDouble is an in-package test helper: the loader must type-check
// it into the same *types.Package as w.go, so analyzers see test code
// with full type information.
func checkDouble() bool { return Double(2) == 4 }
