package withtests_test

// External test packages (package foo_test) are skipped by the
// loader: they cannot be merged into the package's type scope.
func quadruple(x int) int { return 4 * x }
