// Fixture: discarded errors the errdrop analyzer must flag.
package errdrop

import (
	"errors"
	"strconv"
)

func Dropped(s string) {
	strconv.Atoi(s) // want: strconv.Atoi returns an error that is discarded
}

func Blanked(s string) int {
	n, _ := strconv.Atoi(s) // want: error result of strconv.Atoi is assigned to the blank identifier
	return n
}

func DirectBlank() {
	err := errors.New("boom")
	_ = err // want: error value is assigned to the blank identifier
}

func BlankCall(s string) {
	_ = work(s) // want: error value is assigned to the blank identifier
}

func work(string) error { return nil }
