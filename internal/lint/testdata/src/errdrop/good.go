// Fixture: handled errors and documented-infallible writers the
// errdrop analyzer must NOT flag.
package errdrop

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func Checked(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("errdrop fixture: %w", err)
	}
	return n, nil
}

// strings.Builder, bytes.Buffer and fmt.Fprintf into them are
// documented never to fail.
func Render(rows []string) string {
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(r)
		fmt.Fprintf(&sb, " (%d bytes)\n", len(r))
	}
	var buf bytes.Buffer
	buf.WriteString(sb.String())
	return buf.String()
}

// Printing to the process's standard streams has no better channel to
// report its own failure on.
func Report(msg string) {
	fmt.Println(msg)
	fmt.Fprintf(os.Stderr, "warn: %s\n", msg)
}

// Deferred cleanup calls are not flagged.
func WithFile(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// An explicitly justified discard, waived on the flagged line.
func Flush(f *os.File) {
	f.Sync() //lint:allow errdrop -- best-effort flush on shutdown path
}
