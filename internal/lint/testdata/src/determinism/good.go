// Fixture: deterministic constructs the analyzer must NOT flag.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// Seeded local generators are the sanctioned replacement for the
// global source.
func SeededDraw(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Constructors like time.Date are pure; only wall-clock reads are
// nondeterministic.
func Epoch() time.Time {
	return time.Date(2009, time.November, 10, 23, 0, 0, 0, time.UTC)
}

// Commutative map-range bodies (sums, counters, max) do not observe
// iteration order.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Collect-then-sort is order-safe end to end; map-order flows are
// taintdet's job now, and it proves this one clean — no escape hatch.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// The suppression escape hatch: a justified wall-clock read stays
// silent under the directive.
func WallStart() time.Time {
	return time.Now() //lint:allow determinism -- process start stamp, never digested
}
