// Fixture: constructs the determinism analyzer must flag. Each
// flagged line carries a "// want:" comment with a substring of the
// expected diagnostic.
package determinism

import (
	"fmt"
	"math/rand"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want: time.Now reads the wall clock
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want: time.Since reads the wall clock
}

func Jitter() float64 {
	return rand.Float64() // want: rand.Float64 uses the global math/rand source
}

func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want: rand.Shuffle uses the global math/rand source
}

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want: range over map feeds append
		out = append(out, k)
	}
	return out
}

func Dump(m map[string]int) {
	for k, v := range m { // want: range over map feeds fmt.Println
		fmt.Println(k, v)
	}
}
