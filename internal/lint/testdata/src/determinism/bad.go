// Fixture: constructs the determinism analyzer must flag. Each
// flagged line carries a "// want:" comment with a substring of the
// expected diagnostic.
package determinism

import (
	"math/rand"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want: time.Now reads the wall clock
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want: time.Since reads the wall clock
}

func Jitter() float64 {
	return rand.Float64() // want: rand.Float64 uses the global math/rand source
}

func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want: rand.Shuffle uses the global math/rand source
}

func Pace() {
	time.Sleep(time.Second) // want: time.Sleep reads the wall clock or a real timer
}

func Poll() <-chan time.Time {
	return time.Tick(time.Second) // want: time.Tick reads the wall clock or a real timer
}

func Arm() *time.Timer {
	return time.NewTimer(time.Minute) // want: time.NewTimer reads the wall clock or a real timer
}
