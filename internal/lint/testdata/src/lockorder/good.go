// Fixture: lock-discipline look-alikes the lockorder analyzer must
// NOT flag — the sanctioned forms of everything bad.go does wrong.
package lockorder

import "sync"

// safe mirrors reg but is used only with correct discipline; it has
// its own lock classes so bad.go's pair table cannot contaminate it.
type safe struct {
	x  sync.Mutex
	y  sync.Mutex
	mu sync.RWMutex
	ch chan int
	cb func()
}

// ConsistentOne and ConsistentTwo take x before y at every site: one
// global order, no finding.
func (s *safe) ConsistentOne() {
	s.x.Lock()
	s.y.Lock()
	s.y.Unlock()
	s.x.Unlock()
}

func (s *safe) ConsistentTwo() {
	s.x.Lock()
	defer s.x.Unlock()
	s.y.Lock()
	defer s.y.Unlock()
}

// CallbackAfterUnlock snapshots under the lock and invokes the
// callback outside it — the sanctioned form.
func (s *safe) CallbackAfterUnlock() {
	s.mu.Lock()
	cb := s.cb
	s.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// SendAfterUnlock releases before the channel operation.
func (s *safe) SendAfterUnlock(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// SpawnWorker launches the lock-taking work on another goroutine: the
// caller's held set does not transfer, so there is no re-entry.
func (s *safe) SpawnWorker(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.work()
		done <- struct{}{}
	}()
}

func (s *safe) work() {
	s.mu.Lock()
	s.mu.Unlock()
}

// ReadReentry takes the read lock twice — legal for RWMutex readers
// and not a write-lock self-deadlock.
func (s *safe) ReadReentry() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return 0
}

// DistinctLocals: two local mutexes nest in one order only.
func DistinctLocals() {
	var m1, m2 sync.Mutex
	m1.Lock()
	m2.Lock()
	m2.Unlock()
	m1.Unlock()
}

// WaivedSend documents a justified exception through the escape
// hatch: the channel is buffered and drained by construction.
func (s *safe) WaivedSend(v int) {
	s.mu.Lock()
	s.ch <- v //lint:allow lockorder -- channel is buffered to capacity and drained by the owner
	s.mu.Unlock()
}
