// Fixture: lock-discipline hazards the lockorder analyzer must flag.
// Each flagged line carries a "// want:" comment with a substring of
// the expected diagnostic.
package lockorder

import (
	"sync"
	"time"
)

// reg is a stand-in for the coordinator's shared tables.
type reg struct {
	a  sync.Mutex
	b  sync.Mutex
	mu sync.Mutex
	ch chan int
	cb func()
}

// AThenB and BThenA acquire the same two lock classes in opposite
// orders — the classic ABBA deadlock, visible only whole-program.
func (r *reg) AThenB() {
	r.a.Lock()
	r.b.Lock() // want: inconsistent lock order
	r.b.Unlock()
	r.a.Unlock()
}

func (r *reg) BThenA() {
	r.b.Lock()
	r.a.Lock() // want: inconsistent lock order
	r.a.Unlock()
	r.b.Unlock()
}

// DoubleLock re-enters the held write lock directly.
func (r *reg) DoubleLock() {
	r.mu.Lock()
	r.mu.Lock() // want: acquired while an instance is already held
	r.mu.Unlock()
	r.mu.Unlock()
}

// Reenter deadlocks through the call graph: the callee acquires the
// lock class the caller already holds.
func (r *reg) Reenter() {
	r.mu.Lock()
	r.bump() // want: the callee acquires the same lock class
	r.mu.Unlock()
}

func (r *reg) bump() {
	r.mu.Lock()
	r.mu.Unlock()
}

// Notify invokes a caller-supplied callback with the lock held — the
// bug class the BOINC server was race-hardened against by hand.
func (r *reg) Notify() {
	r.mu.Lock()
	r.cb() // want: callback invoked while holding
	r.mu.Unlock()
}

// Publish sends on a channel with the lock held: a full channel
// blocks every other user of the lock.
func (r *reg) Publish(v int) {
	r.mu.Lock()
	r.ch <- v // want: channel send while holding
	r.mu.Unlock()
}

// Throttle sleeps with the lock held.
func (r *reg) Throttle() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want: blocking I/O while holding
	r.mu.Unlock()
}
