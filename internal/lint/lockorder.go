package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder is the whole-program deadlock analyzer: it derives every
// mutex lock class's acquisition order across packages from the call
// graph and flags (a) pairs of lock classes acquired in both orders
// anywhere in the program, (b) a lock class re-entered while an
// instance of it is already held, directly or through a callee, and
// (c) locks held across operations that can block indefinitely or
// re-enter the lock — channel sends and receives, calls of
// function-typed values (callbacks), and blocking I/O (time.Sleep,
// net, net/http). This is the bug class the BOINC server was
// race-hardened against by hand: callbacks must run outside the lock.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: `derive mutex acquisition order across the whole program and flag
inconsistent pair orderings, self-deadlocks through the call graph,
and locks held across channel operations, callback invocations, or
blocking I/O. Lock identity is the lock class (pkg.Type.field or a
package-level variable); aliases through local pointers resolve via
value numbering. Use //lint:allow lockorder for justified exceptions.`,
	Scope:      []string{"internal/...", "cmd/..."},
	RunProgram: runLockOrder,
}

// lockOp classifies one mutex method call.
type lockOp int

const (
	lockAcquire lockOp = iota // Lock, RLock, TryLock
	lockRelease               // Unlock, RUnlock
)

// mutexCall recognizes sync.Mutex / sync.RWMutex method calls and
// returns the lock identity of the receiver.
func mutexCall(info *types.Info, vn *ValueNums, call *ast.CallExpr) (key string, op lockOp, write, ok bool) {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", 0, false, false
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", 0, false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false, false
	}
	key = vn.Canon(sel.X)
	if key == "" {
		key = "expr:" + types.ExprString(sel.X)
	}
	switch fn.Name() {
	case "Lock", "TryLock":
		return key, lockAcquire, true, true
	case "RLock", "TryRLock":
		return key, lockAcquire, false, true
	case "Unlock", "RUnlock":
		return key, lockRelease, false, true
	}
	return "", 0, false, false
}

// lockSummary is one function's interprocedural summary.
type lockSummary struct {
	acquires map[string]bool // lock classes the function may acquire, transitively
	sends    bool            // may perform a channel send or receive
	blocks   bool            // may call blocking I/O
}

type lockOrderState struct {
	pp *ProgramPass
	// summaries per declared function
	sums map[*FuncInfo]*lockSummary
	// pairs[a][b] = first site where b was acquired while a was held
	pairs map[string]map[string]token.Pos
	// reported de-duplicates findings across contexts
	reported map[token.Pos]bool
}

func runLockOrder(pp *ProgramPass) {
	st := &lockOrderState{
		pp:       pp,
		sums:     map[*FuncInfo]*lockSummary{},
		pairs:    map[string]map[string]token.Pos{},
		reported: map[token.Pos]bool{},
	}
	// Pass 1: direct summaries.
	for _, fi := range pp.Prog.FuncList {
		st.sums[fi] = st.directSummary(fi)
	}
	// Pass 2: transitive closure over the call graph. Calls inside
	// `go` statements run on another goroutine and do not inherit the
	// caller's held locks, so they are excluded.
	for changed := true; changed; {
		changed = false
		for _, fi := range pp.Prog.FuncList {
			sum := st.sums[fi]
			for _, site := range fi.Calls {
				if site.Target == nil || site.InGo {
					continue
				}
				tsum := st.sums[site.Target]
				for k := range tsum.acquires {
					if !sum.acquires[k] {
						sum.acquires[k] = true
						changed = true
					}
				}
				if tsum.sends && !sum.sends {
					sum.sends, changed = true, true
				}
				if tsum.blocks && !sum.blocks {
					sum.blocks, changed = true, true
				}
			}
		}
	}
	// Pass 3: per-body CFG dataflow, for declared functions and for
	// every function literal as its own context.
	for _, fi := range pp.Prog.FuncList {
		st.analyzeBody(fi.Pkg, fi, fi.CFG(), fi.Vnum())
	}
	for _, pkg := range pp.Prog.Packages {
		for _, f := range pkg.AllFiles() {
			pkgf := pkg
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					st.analyzeBody(pkgf, nil, BuildCFG(lit.Body), NewValueNums(pkgf.Info, lit.Body))
				}
				return true
			})
		}
	}
	// Pass 4: cross-direction pair findings, in deterministic order.
	var classes []string
	for a := range st.pairs {
		classes = append(classes, a)
	}
	sort.Strings(classes)
	seen := map[string]bool{}
	for _, a := range classes {
		var succs []string
		for b := range st.pairs[a] {
			succs = append(succs, b)
		}
		sort.Strings(succs)
		for _, b := range succs {
			if seen[a+"|"+b] || seen[b+"|"+a] {
				continue
			}
			if rev, ok := st.pairs[b][a]; ok {
				seen[a+"|"+b] = true
				pp.Reportf(st.pairs[a][b], "inconsistent lock order: %s acquired while holding %s, but the opposite order occurs at %s; pick one global order", b, a, pp.Posf(rev))
				pp.Reportf(rev, "inconsistent lock order: %s acquired while holding %s, but the opposite order occurs at %s; pick one global order", a, b, pp.Posf(st.pairs[a][b]))
			}
		}
	}
}

// directSummary records what a function itself does, not counting
// nested function literals (their execution context is unknown) or
// calls launched on other goroutines.
func (st *lockOrderState) directSummary(fi *FuncInfo) *lockSummary {
	sum := &lockSummary{acquires: map[string]bool{}}
	vn := fi.Vnum()
	inspectNoLit(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if key, op, _, ok := mutexCall(fi.Pkg.Info, vn, n); ok && op == lockAcquire {
				sum.acquires[key] = true
			} else if blockingCall(fi.Pkg.Info, n) {
				sum.blocks = true
			}
		case *ast.SendStmt:
			sum.sends = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				sum.sends = true
			}
		}
		return true
	})
	return sum
}

// blockingCall recognizes calls that block on the outside world:
// time.Sleep and anything in net or net/http.
func blockingCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		return fn.Name() == "Sleep"
	case "net", "net/http":
		return true
	}
	return false
}

// dynamicCall reports a call of a function-typed value — a callback
// whose body the analyzer cannot see. Static calls, builtins, type
// conversions and method calls all resolve to something else.
func dynamicCall(info *types.Info, call *ast.CallExpr) bool {
	if calleeOf(info, call) != nil {
		return false
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return false // conversion
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, isBuiltin := info.ObjectOf(fun).(*types.Builtin); isBuiltin {
			return false
		}
	case *ast.FuncLit:
		return false // immediately-invoked literal: body is visible in its own context
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	return ok && sig != nil
}

// heldSet is the dataflow fact: lock class → position of the acquire
// that may still be held.
type heldSet map[string]token.Pos

// minHeld picks the lexically smallest held lock class so diagnostic
// text never depends on map iteration order.
func minHeld(h heldSet) string {
	var min string
	for k := range h {
		if min == "" || k < min {
			min = k
		}
	}
	return min
}

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// analyzeBody runs the may-held-locks dataflow over one CFG and
// reports held-across hazards. fi is nil for function literals.
func (st *lockOrderState) analyzeBody(pkg *Package, fi *FuncInfo, cfg *CFG, vn *ValueNums) {
	in := make([]heldSet, len(cfg.Blocks))
	for i := range in {
		in[i] = heldSet{}
	}
	// Fixpoint over may-held sets (merge = union, earliest position
	// wins so messages point at the first acquire).
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			out := in[b.Index].clone()
			st.transfer(pkg, fi, vn, b, out, nil)
			for _, s := range b.Succs {
				for k, pos := range out {
					if old, ok := in[s.Index][k]; !ok || pos < old {
						in[s.Index][k] = pos
						changed = true
					}
				}
			}
		}
	}
	// Final pass: emit findings with the converged entry states.
	for _, b := range cfg.Blocks {
		held := in[b.Index].clone()
		st.transfer(pkg, fi, vn, b, held, st.report)
	}
}

// report emits one deduplicated finding.
func (st *lockOrderState) report(pos token.Pos, format string, args ...any) {
	if st.reported[pos] {
		return
	}
	st.reported[pos] = true
	st.pp.Reportf(pos, format, args...)
}

// transfer interprets one block's nodes against the held set. When
// emit is non-nil the pass is reporting; order pairs are recorded on
// every pass (the map is idempotent).
func (st *lockOrderState) transfer(pkg *Package, fi *FuncInfo, vn *ValueNums, b *Block, held heldSet, emit func(token.Pos, string, ...any)) {
	for _, node := range b.Nodes {
		switch n := node.(type) {
		case *ast.RangeStmt:
			// Only the range operand is evaluated here; the body is
			// its own set of blocks.
			if n.X != nil {
				st.scanExpr(pkg, fi, vn, n.X, held, emit)
			}
		case *ast.GoStmt:
			// Argument expressions evaluate now; the call runs on
			// another goroutine with an empty held set.
			for _, arg := range n.Call.Args {
				st.scanExpr(pkg, fi, vn, arg, held, emit)
			}
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held to function exit,
			// which is exactly how the held-across checks should see
			// it: nothing to do. Other deferred work runs at exit.
			for _, arg := range n.Call.Args {
				st.scanExpr(pkg, fi, vn, arg, held, emit)
			}
		case *ast.SendStmt:
			st.scanExpr(pkg, fi, vn, n.Chan, held, emit)
			st.scanExpr(pkg, fi, vn, n.Value, held, emit)
			if emit != nil {
				if k := minHeld(held); k != "" {
					emit(n.Arrow, "channel send while holding %s: a full channel blocks with the lock held", k)
				}
			}
		default:
			st.scanNode(pkg, fi, vn, node, held, emit)
		}
	}
}

func (st *lockOrderState) scanExpr(pkg *Package, fi *FuncInfo, vn *ValueNums, e ast.Expr, held heldSet, emit func(token.Pos, string, ...any)) {
	st.scanNode(pkg, fi, vn, e, held, emit)
}

// scanNode walks one atomic node in evaluation order, interpreting
// lock operations and hazards. Function literals are skipped: their
// bodies are analyzed as separate contexts.
func (st *lockOrderState) scanNode(pkg *Package, fi *FuncInfo, vn *ValueNums, node ast.Node, held heldSet, emit func(token.Pos, string, ...any)) {
	inspectNoLit(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && emit != nil {
				if k := minHeld(held); k != "" {
					emit(n.OpPos, "channel receive while holding %s: blocks with the lock held if no sender is ready", k)
				}
			}
		case *ast.CallExpr:
			st.call(pkg, fi, vn, n, held, emit)
		}
		return true
	})
}

// call interprets one call expression against the held set.
func (st *lockOrderState) call(pkg *Package, fi *FuncInfo, vn *ValueNums, call *ast.CallExpr, held heldSet, emit func(token.Pos, string, ...any)) {
	if key, op, write, ok := mutexCall(pkg.Info, vn, call); ok {
		switch op {
		case lockAcquire:
			if emit != nil && write {
				if _, re := held[key]; re {
					emit(call.Pos(), "lock class %s acquired while an instance is already held: self-deadlock if it is the same instance", key)
				}
			}
			for h := range held {
				if h == key {
					continue
				}
				if st.pairs[h] == nil {
					st.pairs[h] = map[string]token.Pos{}
				}
				if _, ok := st.pairs[h][key]; !ok {
					st.pairs[h][key] = call.Pos()
				}
			}
			if _, ok := held[key]; !ok {
				held[key] = call.Pos()
			}
		case lockRelease:
			delete(held, key)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	hk := minHeld(held) // one representative held lock for messages
	if emit != nil && dynamicCall(pkg.Info, call) {
		emit(call.Pos(), "callback invoked while holding %s: a callback that blocks or re-enters the lock deadlocks; call it after Unlock", hk)
		return
	}
	if emit != nil && blockingCall(pkg.Info, call) {
		emit(call.Pos(), "blocking I/O while holding %s: the lock is held for the full I/O latency", hk)
		return
	}
	// Static call into the module: import the callee's summary.
	fn := calleeOf(pkg.Info, call)
	target := st.pp.Prog.Funcs[fn]
	if target == nil {
		return
	}
	sum := st.sums[target]
	for a := range sum.acquires {
		if _, same := held[a]; same {
			if emit != nil {
				emit(call.Pos(), "call of %s while holding %s: the callee acquires the same lock class (self-deadlock if it is the same instance)", target.Name(), a)
			}
			continue
		}
		for h := range held {
			if st.pairs[h] == nil {
				st.pairs[h] = map[string]token.Pos{}
			}
			if _, ok := st.pairs[h][a]; !ok {
				st.pairs[h][a] = call.Pos()
			}
		}
	}
	if emit != nil && sum.sends {
		emit(call.Pos(), "call of %s while holding %s: the callee performs channel operations and can block with the lock held", target.Name(), hk)
	} else if emit != nil && sum.blocks {
		emit(call.Pos(), "call of %s while holding %s: the callee performs blocking I/O with the lock held", target.Name(), hk)
	}
}
