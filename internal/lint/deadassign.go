package lint

import (
	"go/ast"
	"go/types"
)

// DeadAssign flags `_ = x` statements that throw away a computed
// local: the value was produced, named, and then deliberately
// ignored — either the computation is dead weight or the value was
// meant to be used. Blanked errors are errdrop's department and are
// not double-reported here.
var DeadAssign = &Analyzer{
	Name: "deadassign",
	Doc: `flag statements of the form _ = x where x is a function-local
variable or parameter: remove the assignment (and the computation, if
now unused) or use the value. Error-typed values are reported by
errdrop instead. Package-level var _ = ... declarations (compile-time
assertions) are not flagged.`,
	Run: runDeadAssign,
}

func runDeadAssign(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if !isBlank(lhs) || i >= len(as.Rhs) {
					continue
				}
				id, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj, ok := p.ObjectOf(id).(*types.Var)
				if !ok || obj.Pkg() == nil {
					continue
				}
				// Only function-scoped variables: package-level blank
				// reads are assertions, fields need a selector anyway.
				if obj.Parent() == nil || obj.Parent() == p.Pkg.Scope() || obj.IsField() {
					continue
				}
				if isErrorType(obj.Type()) {
					continue // errdrop reports blanked errors
				}
				p.Reportf(as.Pos(), "dead assignment: local %q is computed and then discarded; remove it or use the value", id.Name)
			}
			return true
		})
	}
}
