package lint

import (
	"go/ast"
	"go/types"
)

// Determinism flags constructs that make simulator, trainer and
// scheduler output depend on anything but the seed: wall-clock reads,
// the global math/rand source, and map iteration feeding an ordered
// sink. Scoped to the packages whose output the experiments compare
// run-to-run.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: `flag wall-clock reads (time.Now/Since/Until), global math/rand
functions, and map-range loops that feed an ordered sink (append,
printing, byte/string writers, channel sends) in the deterministic
core packages. Commutative map-range bodies (sums, counters, max) are
not flagged. Use //lint:allow determinism for justified exceptions.`,
	Scope: []string{
		"internal/sim",
		"internal/forest",
		"internal/experiments",
		"internal/metasched",
		"internal/obs",
		"internal/faults",
		"internal/wal",
	},
	Run: runDeterminism,
}

// wallClockFuncs are the time package functions that read the wall
// clock. Constructors like time.Date or time.Unix are pure.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions backed by the shared global source. rand.New and
// rand.NewSource construct seedable local generators and are the
// sanctioned replacement.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondeterministicCall(p, n)
			case *ast.RangeStmt:
				checkMapRange(p, n)
			}
			return true
		})
	}
}

func checkNondeterministicCall(p *Pass, call *ast.CallExpr) {
	fn := p.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			p.Reportf(call.Pos(), "call of time.%s reads the wall clock; inject a clock so runs are reproducible", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions use the global source; methods
		// on *rand.Rand have a receiver and a caller-owned seed.
		if fn.Type().(*types.Signature).Recv() == nil && globalRandFuncs[fn.Name()] {
			p.Reportf(call.Pos(), "call of rand.%s uses the global math/rand source; use a seeded *rand.Rand (or sim.RNG) instead", fn.Name())
		}
	}
}

// checkMapRange flags map-range loops whose body feeds an ordered
// sink, making output depend on Go's randomized map iteration order.
func checkMapRange(p *Pass, rng *ast.RangeStmt) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "a channel send"
		case *ast.CallExpr:
			sink = orderedSink(p, n)
		}
		return sink == ""
	})
	if sink != "" {
		p.Reportf(rng.Pos(), "range over map feeds %s: iteration order is randomized; sort the keys first", sink)
	}
}

// orderedSink classifies a call inside a map-range body as
// order-sensitive: appending to a slice, fmt printing, or writing to
// a byte/string sink.
func orderedSink(p *Pass, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.ObjectOf(id).(*types.Builtin); isBuiltin && id.Name == "append" {
			return "append"
		}
	}
	fn := p.Callee(call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return "fmt." + fn.Name()
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if fn.Type().(*types.Signature).Recv() != nil {
			return "a writer"
		}
	}
	return ""
}
