package lint

import (
	"go/ast"
	"go/types"
)

// Determinism flags the direct nondeterminism sources that make
// simulator, trainer and scheduler output depend on anything but the
// seed: wall-clock and timer reads, and the global math/rand source.
// Map-iteration-order hazards are owned by the taintdet dataflow
// analyzer, which tracks them to an actual ordered sink instead of
// flagging every range over a map.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: `flag wall-clock and timer reads (time.Now/Since/Until/Sleep/
Tick/After/NewTimer/NewTicker) and global math/rand functions in the
deterministic core and command packages. Map-iteration-order flows are
handled by taintdet. Use //lint:allow determinism for justified
exceptions.`,
	Scope: []string{"internal/...", "cmd/..."},
	Run:   runDeterminism,
}

// wallClockFuncs are the time package functions that read the wall
// clock or real timers. Constructors like time.Date or time.Unix are
// pure.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions backed by the shared global source. rand.New and
// rand.NewSource construct seedable local generators and are the
// sanctioned replacement.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkNondeterministicCall(p, call)
			}
			return true
		})
	}
}

func checkNondeterministicCall(p *Pass, call *ast.CallExpr) {
	fn := p.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			p.Reportf(call.Pos(), "call of time.%s reads the wall clock or a real timer; inject a clock so runs are reproducible", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions use the global source; methods
		// on *rand.Rand have a receiver and a caller-owned seed.
		if fn.Type().(*types.Signature).Recv() == nil && globalRandFuncs[fn.Name()] {
			p.Reportf(call.Pos(), "call of rand.%s uses the global math/rand source; use a seeded *rand.Rand (or sim.RNG) instead", fn.Name())
		}
	}
}
