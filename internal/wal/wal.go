// Package wal is the coordinator's crash-consistent durability layer:
// an append-only, length-prefixed, checksummed write-ahead log plus
// periodic atomic snapshots. The log records every state transition
// the coordinator makes — obs journal stages, learned per-resource
// stability EWMAs, submit-retry backoffs, BOINC workunit state — and,
// crucially, the *inputs* that caused them (submissions, portal user
// registrations). Because the simulation is deterministic per seed,
// inputs plus seed are sufficient to reconstruct the full machine
// state: recovery re-executes the run from genesis, re-injecting each
// input at its recorded virtual time, and verifies the regenerated
// record stream against the log byte-for-byte. Snapshots bound how
// much log must be read and verified, and truncate the log so disk
// use stays proportional to work since the last snapshot.
//
// The package depends only on the standard library plus the sim and
// workload value types; it knows nothing about the components that
// feed it (internal/core owns that adapter).
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"lattice/internal/sim"
	"lattice/internal/workload"
)

// Kind tags what a Record durably witnesses.
type Kind string

const (
	// KindGenesis is the first record of every log: the seed the whole
	// deterministic run derives from.
	KindGenesis Kind = "genesis"
	// KindStage mirrors one obs journal event (submit, validate,
	// place, dispatch, requeue, reissue, quorum, terminal, ...).
	KindStage Kind = "stage"
	// KindEWMA records a learned per-resource stability estimate.
	KindEWMA Kind = "ewma"
	// KindBackoff records a submit-retry backoff decision.
	KindBackoff Kind = "backoff"
	// KindWorkunit records a BOINC workunit/result state transition.
	KindWorkunit Kind = "workunit"
	// KindSubmission is an input: a batch submission entering the
	// coordinator (origin "service", "portal" or "core").
	KindSubmission Kind = "submission"
	// KindUser is an input: a portal account registration.
	KindUser Kind = "portal-user"
	// KindWorkflow is an input: a stage-DAG workflow entering the
	// workflow engine. Stage batches derived from it are *not*
	// inputs — re-execution regenerates them from this record.
	KindWorkflow Kind = "workflow"
)

// Record is one durable log entry. Seq is a dense 1-based sequence
// number assigned by the single writer; At is the virtual time the
// event happened. The remaining fields are a union keyed by Kind —
// JSON omitempty keeps each frame small.
type Record struct {
	Seq  uint64   `json:"seq"`
	At   sim.Time `json:"at"`
	Kind Kind     `json:"kind"`

	// KindStage payload (obs.Event fields).
	Batch    string `json:"batch,omitempty"`
	Job      string `json:"job,omitempty"`
	Stage    string `json:"stage,omitempty"`
	Resource string `json:"resource,omitempty"`
	Detail   string `json:"detail,omitempty"`

	// KindEWMA stability value or KindBackoff delay in seconds.
	Value float64 `json:"value,omitempty"`
	// KindBackoff attempt count.
	Attempt int `json:"attempt,omitempty"`
	// KindWorkunit state (created, issued, timeout, failed, returned,
	// late, done).
	State string `json:"state,omitempty"`

	// KindSubmission payload.
	Origin string               `json:"origin,omitempty"`
	Sub    *workload.Submission `json:"sub,omitempty"`
	// Pre marks an input that arrived before the engine ever stepped;
	// recovery applies such inputs before running any events so they
	// interleave with organic time-zero work exactly as they did live.
	Pre bool `json:"pre,omitempty"`

	// KindWorkflow payload.
	WF *workload.Workflow `json:"wf,omitempty"`

	// KindUser payload.
	Token string `json:"token,omitempty"`
	Email string `json:"email,omitempty"`

	// KindGenesis payload.
	Seed int64 `json:"seed,omitempty"`
}

// IsInput reports whether the record is an external input that
// recovery must re-inject (as opposed to a transition that
// re-execution regenerates on its own).
func (r *Record) IsInput() bool {
	return r.Kind == KindSubmission || r.Kind == KindUser || r.Kind == KindWorkflow
}

// Options tunes a Log.
type Options struct {
	// SnapshotEvery is the number of appended records between
	// automatic snapshots (default DefaultSnapshotEvery).
	SnapshotEvery int
	// Sync fsyncs the log after every append. Off by default: the
	// simulation's crash model is process death, which the page cache
	// survives; power-loss durability costs an fsync per record.
	Sync bool
}

// DefaultSnapshotEvery is the automatic snapshot cadence.
const DefaultSnapshotEvery = 4096

// magic is the log file header. Bump the trailing digits on any
// incompatible framing change.
var magic = []byte("LATWAL01")

// frameHeaderSize is the per-record framing overhead: uint32 LE
// payload length followed by uint32 LE CRC32 (IEEE) of the payload.
const frameHeaderSize = 8

// maxFrame bounds a single record's payload so a corrupt length field
// cannot trigger an absurd allocation.
const maxFrame = 16 << 20

// LogPath returns the log file path inside a durable directory.
func LogPath(dir string) string { return filepath.Join(dir, "wal.log") }

// SnapshotPath returns the snapshot file path inside a durable
// directory.
func SnapshotPath(dir string) string { return filepath.Join(dir, "snapshot.json") }

// HasState reports whether dir holds recoverable durable state — a
// snapshot, or a log with at least one complete frame.
func HasState(dir string) bool {
	if _, err := os.Stat(SnapshotPath(dir)); err == nil {
		return true
	}
	fi, err := os.Stat(LogPath(dir))
	return err == nil && fi.Size() > int64(len(magic))
}

// Log is a single-writer append-only record log. Errors are sticky:
// after the first failed write every later Append is a no-op and Err
// reports the original failure, so callers may write hot paths
// unchecked and inspect the log at checkpoints.
type Log struct {
	dir       string
	f         *os.File
	opts      Options
	sinceSnap int
	source    func() Snapshot
	err       error
}

// Create opens a fresh log in dir, creating the directory if needed.
// It refuses to run over existing durable state — use Load plus Reset
// (via core.Recover) to resume, or remove the directory to start over.
func Create(dir string, opts Options) (*Log, error) {
	if HasState(dir) {
		return nil, fmt.Errorf("wal: %s already holds durable state; recover or remove it first", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(LogPath(dir), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(magic); err != nil {
		f.Close() //lint:allow errdrop -- best-effort cleanup after a failed header write
		return nil, fmt.Errorf("wal: writing header: %w", err)
	}
	return newLog(dir, f, opts), nil
}

// Reset atomically replaces dir's durable state with the given
// snapshot and an empty log, and returns the log open for appending.
// This is the post-recovery path: the rebuilt coordinator's state
// becomes the new baseline and replay history is discarded.
func Reset(dir string, snap Snapshot, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := writeSnapshot(dir, snap); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(LogPath(dir), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(magic); err != nil {
		f.Close() //lint:allow errdrop -- best-effort cleanup after a failed header write
		return nil, fmt.Errorf("wal: writing header: %w", err)
	}
	return newLog(dir, f, opts), nil
}

func newLog(dir string, f *os.File, opts Options) *Log {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	return &Log{dir: dir, f: f, opts: opts}
}

// SetSnapshotSource installs the callback that captures the
// coordinator's aggregate state for automatic snapshots. The callback
// runs synchronously inside Append, on the writer's goroutine, under
// whatever locks the writer already holds — it must not call back
// into the Log.
func (l *Log) SetSnapshotSource(fn func() Snapshot) { l.source = fn }

// Append writes one record. The caller owns sequence numbering;
// records must arrive with dense increasing Seq. Failures are sticky
// (see Err).
func (l *Log) Append(r Record) {
	if l.err != nil {
		return
	}
	payload, err := json.Marshal(&r)
	if err != nil {
		l.err = fmt.Errorf("wal: encoding record %d: %w", r.Seq, err)
		return
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(hdr[:]); err != nil {
		l.err = fmt.Errorf("wal: appending record %d: %w", r.Seq, err)
		return
	}
	if _, err := l.f.Write(payload); err != nil {
		l.err = fmt.Errorf("wal: appending record %d: %w", r.Seq, err)
		return
	}
	if l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: syncing record %d: %w", r.Seq, err)
			return
		}
	}
	l.sinceSnap++
	if l.source != nil && l.sinceSnap >= l.opts.SnapshotEvery {
		l.snapshot(l.source())
	}
}

// snapshot persists snap atomically and truncates the log back to its
// header. Record frames appended between the snapshot rename and the
// truncate carry Seq <= snap.Seq and are skipped by Load, so a crash
// anywhere in this window recovers cleanly.
func (l *Log) snapshot(snap Snapshot) {
	if err := writeSnapshot(l.dir, snap); err != nil {
		l.err = err
		return
	}
	if err := l.f.Truncate(int64(len(magic))); err != nil {
		l.err = fmt.Errorf("wal: truncating log after snapshot: %w", err)
		return
	}
	if _, err := l.f.Seek(int64(len(magic)), 0); err != nil {
		l.err = fmt.Errorf("wal: seeking log after snapshot: %w", err)
		return
	}
	l.sinceSnap = 0
}

// Err returns the first write failure, if any.
func (l *Log) Err() error { return l.err }

// Close flushes and closes the log file.
func (l *Log) Close() error {
	if l.f == nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil && l.err == nil {
		l.err = fmt.Errorf("wal: syncing on close: %w", err)
	}
	if err := l.f.Close(); err != nil && l.err == nil {
		l.err = fmt.Errorf("wal: closing: %w", err)
	}
	l.f = nil
	return l.err
}
