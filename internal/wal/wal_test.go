package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lattice/internal/sim"
	"lattice/internal/workload"
)

// appendN writes a genesis record plus n-1 synthetic records to a
// fresh log in dir and closes it.
func appendN(t *testing.T, dir string, n int, opts Options) {
	t.Helper()
	lg, err := Create(dir, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, r := range makeRecords(n) {
		lg.Append(r)
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// makeRecords builds a deterministic mixed-kind record stream of
// length n starting with genesis.
func makeRecords(n int) []Record {
	recs := []Record{{Seq: 1, Kind: KindGenesis, Seed: 42}}
	for i := 2; i <= n; i++ {
		at := sim.Time(float64(i) * 1.5)
		var r Record
		switch i % 4 {
		case 0:
			r = Record{Seq: uint64(i), At: at, Kind: KindStage,
				Batch: "batch-000001", Job: fmt.Sprintf("j-%04d", i),
				Stage: "dispatch", Resource: "cluster-a", Detail: "ok"}
		case 1:
			r = Record{Seq: uint64(i), At: at, Kind: KindEWMA,
				Resource: "cluster-a", Value: 0.25 * float64(i%3+1)}
		case 2:
			r = Record{Seq: uint64(i), At: at, Kind: KindSubmission,
				Origin: "service", Sub: &workload.Submission{Replicates: i, UserEmail: "w@example.edu"}}
		default:
			r = Record{Seq: uint64(i), At: at, Kind: KindWorkunit,
				Job: fmt.Sprintf("j-%04d", i), State: "issued", Detail: "issue 1"}
		}
		recs = append(recs, r)
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 9, Options{})
	st, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if st == nil || st.Snap != nil {
		t.Fatalf("want snapshot-less state, got %+v", st)
	}
	if st.Seed != 42 || st.LastSeq != 9 || st.Torn {
		t.Fatalf("seed=%d lastSeq=%d torn=%v", st.Seed, st.LastSeq, st.Torn)
	}
	want := makeRecords(9)
	if len(st.Tail) != len(want) {
		t.Fatalf("tail length %d, want %d", len(st.Tail), len(want))
	}
	for i, r := range st.Tail {
		got, err1 := json.Marshal(r)
		exp, err2 := json.Marshal(want[i])
		if err1 != nil || err2 != nil || string(got) != string(exp) {
			t.Errorf("record %d: got %s want %s", i, got, exp)
		}
	}
	inputs := st.Inputs()
	for _, r := range inputs {
		if !r.IsInput() {
			t.Errorf("Inputs returned non-input record %+v", r)
		}
	}
	if len(inputs) != 2 { // seqs 2 and 6 are submissions
		t.Errorf("got %d inputs, want 2", len(inputs))
	}
}

func TestHasState(t *testing.T) {
	dir := t.TempDir()
	if HasState(dir) {
		t.Fatal("empty dir reports state")
	}
	lg, err := Create(dir, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if HasState(dir) {
		t.Fatal("header-only log reports state")
	}
	lg.Append(Record{Seq: 1, Kind: KindGenesis, Seed: 1})
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !HasState(dir) {
		t.Fatal("log with a record reports no state")
	}
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("Create over existing state succeeded")
	}
}

// TestTornTailEveryOffset is the satellite-2 guarantee: truncating the
// log at every byte offset inside the final record must yield a clean
// load of everything before it, flagged Torn — never an error, never
// a short read of earlier records.
func TestTornTailEveryOffset(t *testing.T) {
	src := t.TempDir()
	const n = 5
	appendN(t, src, n, Options{})
	data, err := os.ReadFile(LogPath(src))
	if err != nil {
		t.Fatalf("reading log: %v", err)
	}
	// Locate the final frame by walking the first n-1.
	off := len(magic)
	for i := 0; i < n-1; i++ {
		_, next, err := decodeFrame(data, off)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		off = next
	}
	for cut := off; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(LogPath(dir), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Load(dir)
		if err != nil {
			t.Fatalf("cut at %d: Load: %v", cut, err)
		}
		wantTorn := cut != off && cut != len(data)
		if st.Torn != wantTorn {
			t.Errorf("cut at %d: torn=%v, want %v", cut, st.Torn, wantTorn)
		}
		wantTail := n - 1
		if cut == len(data) {
			wantTail = n
		}
		if len(st.Tail) != wantTail || st.LastSeq != uint64(wantTail) {
			t.Errorf("cut at %d: %d records (lastSeq %d), want %d",
				cut, len(st.Tail), st.LastSeq, wantTail)
		}
	}
}

// TestCorruptMidLogFatal pins the other half of the torn-tail rule: a
// bad record with intact data after it is corruption, not a crash
// artifact, and must refuse to load.
func TestCorruptMidLogFatal(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 5, Options{})
	data, err := os.ReadFile(LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first frame (genesis), leaving the
	// rest of the log intact.
	data[len(magic)+frameHeaderSize+2] ^= 0xff
	if err := os.WriteFile(LogPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(dir)
	if err == nil || !strings.Contains(err.Error(), "corrupt record mid-log") {
		t.Fatalf("got %v, want corrupt-record-mid-log error", err)
	}
}

// TestSequenceGapFatal pins both the fatality and the exact message of
// a mid-log sequence gap: the error names the byte offset of the
// offending frame so an operator can go straight to it with a hex
// editor instead of rescanning the whole log.
func TestSequenceGapFatal(t *testing.T) {
	dir := t.TempDir()
	lg, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lg.Append(Record{Seq: 1, Kind: KindGenesis, Seed: 7})
	lg.Append(Record{Seq: 3, Kind: KindEWMA, Resource: "r", Value: 0.5})
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	// The offending frame is the second one; its offset is wherever
	// decoding the genesis frame ends.
	data, err := os.ReadFile(LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	_, gapOff, err := decodeFrame(data, len(magic))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(dir)
	if err == nil {
		t.Fatal("Load accepted a log with a sequence gap")
	}
	want := fmt.Sprintf("wal: sequence gap at offset %d: record 3 follows 1", gapOff)
	if err.Error() != want {
		t.Fatalf("got %q, want %q", err, want)
	}
}

// TestAutoSnapshot drives the record-count snapshot trigger: the log
// truncates, the snapshot captures the source state, and Load stitches
// snapshot plus tail back together.
func TestAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	lg, err := Create(dir, Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(10)
	var count uint64
	var inputs []Record
	lg.SetSnapshotSource(func() Snapshot {
		return Snapshot{
			Seq: count, At: sim.Time(float64(count)), Seed: 42,
			Inputs: append([]Record(nil), inputs...),
		}
	})
	for _, r := range recs {
		count = r.Seq
		if r.IsInput() {
			inputs = append(inputs, r)
		}
		lg.Append(r)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if st.Snap == nil || st.Snap.Seq != 8 {
		t.Fatalf("want snapshot at seq 8, got %+v", st.Snap)
	}
	if len(st.Tail) != 2 || st.Tail[0].Seq != 9 || st.LastSeq != 10 {
		t.Fatalf("tail %+v lastSeq %d, want records 9-10", st.Tail, st.LastSeq)
	}
	if got := len(st.Inputs()); got != 3 { // seqs 2, 6, 10 are submissions
		t.Fatalf("got %d inputs, want 3", got)
	}
	if st.Seed != 42 {
		t.Fatalf("seed %d, want 42", st.Seed)
	}
}

// TestSnapshotCrashWindow simulates a crash between the snapshot
// rename and the log truncate: the log still holds frames the snapshot
// covers, which Load must skip without complaint.
func TestSnapshotCrashWindow(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 6, Options{})
	if err := writeSnapshot(dir, Snapshot{Seq: 4, At: 6, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	st, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if st.Snap == nil || st.Snap.Seq != 4 {
		t.Fatalf("snapshot not loaded: %+v", st.Snap)
	}
	if len(st.Tail) != 2 || st.Tail[0].Seq != 5 || st.LastSeq != 6 {
		t.Fatalf("tail %+v, want records 5-6", st.Tail)
	}
}

func TestResetReplacesState(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 6, Options{})
	snap := Snapshot{Seq: 6, At: 9, Seed: 42, Stability: map[string]float64{"a": 0.5}}
	lg, err := Reset(dir, snap, Options{})
	if err != nil {
		t.Fatalf("Reset: %v", err)
	}
	lg.Append(Record{Seq: 7, At: 10, Kind: KindEWMA, Resource: "a", Value: 0.6})
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if st.Snap == nil || st.Snap.Seq != 6 || st.Snap.Stability["a"] != 0.5 {
		t.Fatalf("snapshot %+v, want seq 6 stability preserved", st.Snap)
	}
	if len(st.Tail) != 1 || st.Tail[0].Seq != 7 {
		t.Fatalf("tail %+v, want just record 7", st.Tail)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.zip")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("read %q, %v; want v2", got, err)
	}
}

// failingReader errors after yielding a prefix — the interrupted
// writer of the satellite-1 test.
type failingReader struct{ left int }

func (f *failingReader) Read(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errors.New("interrupted")
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	for i := 0; i < n; i++ {
		p[i] = 'x'
	}
	f.left -= n
	return n, nil
}

// TestCopyFileAtomicInterrupted: a write that dies partway must leave
// the previous artifact byte-for-byte intact and no temp litter.
func TestCopyFileAtomicInterrupted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.zip")
	if err := WriteFileAtomic(path, []byte("the old archive")); err != nil {
		t.Fatal(err)
	}
	err := CopyFileAtomic(path, io.MultiReader(&failingReader{left: 7}))
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("got %v, want interrupted write error", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "the old archive" {
		t.Fatalf("old artifact damaged: %q, %v", got, rerr)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}
}

func TestStickyError(t *testing.T) {
	dir := t.TempDir()
	lg, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lg.Append(Record{Seq: 1, Kind: KindGenesis, Seed: 1})
	if err := lg.f.Close(); err != nil { // yank the file out from under the log
		t.Fatal(err)
	}
	lg.Append(Record{Seq: 2, At: 1, Kind: KindEWMA, Resource: "r", Value: 0.1})
	if lg.Err() == nil {
		t.Fatal("write to closed file did not stick")
	}
	lg.f = nil // already closed
	if lg.Close() == nil {
		t.Fatal("Close lost the sticky error")
	}
}
