package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path through a temp file and rename,
// so readers never observe a partially written file: a crash or error
// mid-write leaves any previous file at path intact.
func WriteFileAtomic(path string, data []byte) error {
	return CopyFileAtomic(path, bytes.NewReader(data))
}

// CopyFileAtomic streams src to path with the same atomicity
// guarantee as WriteFileAtomic. If src fails partway through, the
// temp file is removed and the previous file at path is untouched.
func CopyFileAtomic(path string, src io.Reader) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: creating temp file: %w", err)
	}
	cleanup := func() {
		tmp.Close()           //lint:allow errdrop -- already failing; best-effort cleanup
		os.Remove(tmp.Name()) //lint:allow errdrop -- already failing; best-effort cleanup
	}
	if _, err := io.Copy(tmp, src); err != nil {
		cleanup()
		return fmt.Errorf("wal: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: syncing %s: %w", path, err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		cleanup()
		return fmt.Errorf("wal: setting mode on %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //lint:allow errdrop -- already failing; best-effort cleanup
		return fmt.Errorf("wal: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name()) //lint:allow errdrop -- already failing; best-effort cleanup
		return fmt.Errorf("wal: publishing %s: %w", path, err)
	}
	return nil
}
