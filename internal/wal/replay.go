package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"lattice/internal/sim"
)

// State is everything Load could recover from a durable directory:
// the latest valid snapshot (if any), the verified log tail past it,
// and the derived replay bounds.
type State struct {
	// Snap is the latest snapshot, nil when none was written yet.
	Snap *Snapshot
	// Tail holds the log records with Seq > Snap.Seq (all records when
	// there is no snapshot), contiguous and checksum-verified.
	Tail []Record
	// Torn reports that the final log frame was truncated mid-write
	// and dropped — expected after a crash, not an error.
	Torn bool
	// Seed is the run's seed, from the snapshot or genesis record.
	Seed int64
	// LastSeq is the newest durable sequence number.
	LastSeq uint64
	// Watermark is the virtual time of the newest durable record —
	// recovery re-executes the run up to here.
	Watermark sim.Time
}

// Inputs returns the full input history in sequence order: the
// snapshot's accumulated inputs followed by any in the tail.
func (st *State) Inputs() []Record {
	var in []Record
	if st.Snap != nil {
		in = append(in, st.Snap.Inputs...)
	}
	for _, r := range st.Tail {
		if r.IsInput() {
			in = append(in, r)
		}
	}
	return in
}

// Load reads dir's durable state: the snapshot, then every complete
// log frame after it. A torn final frame — truncated header, payload
// short of its declared length, or checksum/decode failure that runs
// into EOF — is dropped and flagged Torn; corruption followed by more
// data is fatal, because everything after an undecodable frame is
// unframed garbage. Load returns (nil, nil) when dir holds no state.
func Load(dir string) (*State, error) {
	snap, err := readSnapshot(dir)
	if err != nil {
		return nil, err
	}
	st := &State{Snap: snap}
	var sinceSeq uint64 // skip log records the snapshot already covers
	if snap != nil {
		st.Seed = snap.Seed
		st.LastSeq = snap.Seq
		st.Watermark = snap.At
		sinceSeq = snap.Seq
	}

	data, err := os.ReadFile(LogPath(dir))
	if os.IsNotExist(err) {
		data = nil
	} else if err != nil {
		return nil, fmt.Errorf("wal: reading log: %w", err)
	}
	if len(data) < len(magic) {
		// A missing or header-torn log (crash between snapshot rename
		// and log re-creation) contributes no tail.
		if snap == nil {
			if len(data) == 0 {
				return nil, nil
			}
			return nil, fmt.Errorf("wal: log has no valid header and no snapshot exists")
		}
		st.Torn = st.Torn || len(data) > 0
		return st, nil
	}
	if string(data[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("wal: bad log header (not a %s file)", magic)
	}

	off := len(magic)
	for off < len(data) {
		r, next, err := decodeFrame(data, off)
		if err != nil {
			if frameReachesEOF(data, off) {
				// The writer died mid-append; the partial frame holds
				// nothing durable.
				st.Torn = true
				break
			}
			return nil, fmt.Errorf("wal: corrupt record mid-log at offset %d: %w", off, err)
		}
		frameOff := off
		off = next
		if r.Seq <= sinceSeq {
			// Covered by the snapshot — a crash landed between the
			// snapshot rename and the log truncate.
			continue
		}
		if r.Seq != st.LastSeq+1 {
			return nil, fmt.Errorf("wal: sequence gap at offset %d: record %d follows %d", frameOff, r.Seq, st.LastSeq)
		}
		if snap == nil && len(st.Tail) == 0 {
			if r.Kind != KindGenesis {
				return nil, fmt.Errorf("wal: log starts with %q, want genesis", r.Kind)
			}
			st.Seed = r.Seed
		}
		st.Tail = append(st.Tail, r)
		st.LastSeq = r.Seq
		st.Watermark = r.At
	}
	if snap != nil && snap.Seed != st.Seed && len(st.Tail) > 0 && st.Tail[0].Kind == KindGenesis {
		return nil, fmt.Errorf("wal: snapshot seed %d disagrees with genesis seed %d", snap.Seed, st.Tail[0].Seed)
	}
	if snap == nil && len(st.Tail) == 0 {
		return nil, nil
	}
	return st, nil
}

// decodeFrame parses one frame at off, returning the record and the
// next offset.
func decodeFrame(data []byte, off int) (Record, int, error) {
	var r Record
	if len(data)-off < frameHeaderSize {
		return r, 0, fmt.Errorf("truncated frame header")
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n > maxFrame {
		return r, 0, fmt.Errorf("frame length %d exceeds limit", n)
	}
	body := off + frameHeaderSize
	if len(data)-body < n {
		return r, 0, fmt.Errorf("truncated frame payload (%d of %d bytes)", len(data)-body, n)
	}
	payload := data[body : body+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return r, 0, fmt.Errorf("checksum mismatch")
	}
	if err := json.Unmarshal(payload, &r); err != nil {
		return r, 0, fmt.Errorf("decoding payload: %w", err)
	}
	return r, body + n, nil
}

// frameReachesEOF reports whether the (possibly invalid) frame at off
// claims bytes up to or past the end of the file — the signature of a
// torn tail, as opposed to corruption with intact data after it.
func frameReachesEOF(data []byte, off int) bool {
	if len(data)-off < frameHeaderSize {
		return true
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	return off+frameHeaderSize+n >= len(data)
}
