package wal

import (
	"encoding/json"
	"fmt"
	"os"

	"lattice/internal/sim"
)

// Snapshot is the coordinator's aggregate durable state as of record
// Seq: everything needed to (a) bound log replay and (b) verify that
// a recovery re-execution reproduced the original run exactly. It
// deliberately does not try to serialize live machine state — event
// closures, heaps, open batches — because the simulation is
// deterministic: Seed plus Inputs regenerate all of that, and the
// aggregates here are the cross-check.
type Snapshot struct {
	Version int      `json:"version"`
	Seq     uint64   `json:"seq"`
	At      sim.Time `json:"at"`
	Seed    int64    `json:"seed"`

	// JournalLen and JournalDigest fingerprint the obs journal prefix
	// covered by this snapshot: the SHA-256 over the first JournalLen
	// events, in the journal's own framing.
	JournalLen    int    `json:"journal_len"`
	JournalDigest string `json:"journal_digest"`

	// Stability holds the learned per-resource stability EWMAs.
	Stability map[string]float64 `json:"stability,omitempty"`
	// Boinc counts workunit state transitions seen so far, by state.
	Boinc map[string]int `json:"boinc,omitempty"`
	// Users maps portal tokens to registered email addresses.
	Users map[string]string `json:"users,omitempty"`

	// Inputs is the full input history from genesis — every
	// submission and registration record, in sequence order. Recovery
	// re-injects these; the log tail only adds inputs newer than the
	// snapshot.
	Inputs []Record `json:"inputs,omitempty"`
}

// snapshotVersion is the current Snapshot schema version.
const snapshotVersion = 1

// writeSnapshot persists snap atomically (temp file + rename, fsync
// before rename) so a crash mid-write always leaves either the old or
// the new snapshot intact, never a torn one.
func writeSnapshot(dir string, snap Snapshot) error {
	snap.Version = snapshotVersion
	data, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		return fmt.Errorf("wal: encoding snapshot: %w", err)
	}
	if err := WriteFileAtomic(SnapshotPath(dir), data); err != nil {
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	return nil
}

// readSnapshot loads dir's snapshot, returning (nil, nil) when none
// exists.
func readSnapshot(dir string) (*Snapshot, error) {
	data, err := os.ReadFile(SnapshotPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: reading snapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("wal: corrupt snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("wal: unsupported snapshot version %d", snap.Version)
	}
	return &snap, nil
}
