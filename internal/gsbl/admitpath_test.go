package gsbl

import (
	"errors"
	"strings"
	"testing"

	"lattice/internal/admit"
	"lattice/internal/grid/rsl"
	"lattice/internal/lrm"
	"lattice/internal/obs"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

func userSubmission(email string, replicates int) workload.Submission {
	sub := smallSubmission(replicates)
	sub.UserEmail = email
	return sub
}

// TestAdmitFairShareOrdersDrains checks the tentpole property at the
// service level: with the fair-share queue installed, one heavy user's
// backlog no longer head-of-line-blocks small users who arrive behind
// it — the small submissions drain first.
func TestAdmitFairShareOrdersDrains(t *testing.T) {
	eng, svc, _ := testService(t)
	svc.SetIngest(IngestConfig{PerSubmissionSeconds: 1, PerReplicateSeconds: 1})
	if err := svc.SetAdmit(admit.Config{MaxQueueDepth: 100}); err != nil {
		t.Fatal(err)
	}
	var order []string
	accept := func(user string) func(*Batch, error) {
		return func(b *Batch, err error) {
			if err != nil {
				t.Fatalf("accept for %s: %v", user, err)
			}
			order = append(order, user)
		}
	}
	// Heavy user floods first (cost 41s each); three small users (cost
	// 2s) arrive while the first heavy entry is already in service.
	for i := 0; i < 3; i++ {
		if err := svc.EnqueueBatchOrigin(userSubmission("heavy@x", 40), "service", accept("heavy")); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range []string{"a", "b", "c"} {
		if err := svc.EnqueueBatchOrigin(userSubmission(u+"@x", 1), "service", accept(u)); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Time(sim.Hour))
	want := []string{"heavy", "a", "b", "c", "heavy", "heavy"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("drain order %v, want %v", order, want)
	}
	if q, o := svc.Sheds(); q != 0 || o != 0 {
		t.Fatalf("unexpected sheds: quota=%d overload=%d", q, o)
	}
}

// TestAdmitShedJournalsAndAccounts checks every rejected submission
// gets exactly one StageShed journal event, the typed rejection
// reaches the callback, and submissions == batches + sheds.
func TestAdmitShedJournalsAndAccounts(t *testing.T) {
	eng, svc, _ := testService(t)
	hub := obs.New(eng)
	svc.SetObs(hub)
	svc.SetIngest(IngestConfig{PerSubmissionSeconds: 10, PerReplicateSeconds: 0})
	// Budget of 25s: the door plus at most two queued 10s entries.
	if err := svc.SetAdmit(admit.Config{MaxQueuedSeconds: 25}); err != nil {
		t.Fatal(err)
	}
	var rejections []*admit.Rejection
	onAccepted := func(b *Batch, err error) {
		if err == nil {
			return
		}
		var rej *admit.Rejection
		if !errors.As(err, &rej) {
			t.Fatalf("callback error is %T, want *admit.Rejection", err)
		}
		rejections = append(rejections, rej)
	}
	const subs = 5
	for i := 0; i < subs; i++ {
		if err := svc.EnqueueBatchOrigin(userSubmission("u@x", 1), "service", onAccepted); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Time(sim.Hour))
	_, overload := svc.Sheds()
	if overload != len(rejections) || overload == 0 {
		t.Fatalf("overload sheds %d, rejection callbacks %d; want equal and > 0", overload, len(rejections))
	}
	for _, rej := range rejections {
		if rej.Reason != admit.ReasonOverload || rej.RetryAfter < sim.Second {
			t.Fatalf("rejection %+v", rej)
		}
	}
	var shedEvents int
	for _, ev := range hub.Journal.Events() {
		if ev.Stage == obs.StageShed {
			shedEvents++
			if ev.Batch != "" || ev.Job != "" {
				t.Fatalf("shed event carries batch/job IDs: %+v", ev)
			}
			if !strings.Contains(ev.Detail, "retry after") {
				t.Fatalf("shed event missing retry hint: %q", ev.Detail)
			}
		}
	}
	if shedEvents != overload {
		t.Fatalf("journal has %d shed events, want %d", shedEvents, overload)
	}
	// Exactly-one-terminal accounting: every submission is either a
	// batch or a shed.
	if got := len(svc.Batches()) + overload; got != subs {
		t.Fatalf("batches(%d) + sheds(%d) = %d, want %d submissions",
			len(svc.Batches()), overload, got, subs)
	}
}

// TestAdmitQuotaShedsRepeatOffender checks the per-user token bucket:
// a user who spends their replicate budget is refused with a
// refill-derived retry hint while other users pass untouched.
func TestAdmitQuotaShedsRepeatOffender(t *testing.T) {
	eng, svc, _ := testService(t)
	svc.SetIngest(IngestConfig{PerSubmissionSeconds: 1, PerReplicateSeconds: 0})
	if err := svc.SetAdmit(admit.Config{UserRatePerHour: 3600, UserBurst: 10}); err != nil {
		t.Fatal(err)
	}
	var rejected *admit.Rejection
	cb := func(b *Batch, err error) {
		var rej *admit.Rejection
		if errors.As(err, &rej) {
			rejected = rej
		}
	}
	if err := svc.EnqueueBatchOrigin(userSubmission("greedy@x", 8), "service", cb); err != nil {
		t.Fatal(err)
	}
	if rejected != nil {
		t.Fatalf("first submission rejected: %v", rejected)
	}
	// 2 tokens left, 8 more wanted: refused synchronously, 6s refill.
	if err := svc.EnqueueBatchOrigin(userSubmission("greedy@x", 8), "service", cb); err != nil {
		t.Fatal(err)
	}
	if rejected == nil || rejected.Reason != admit.ReasonQuota {
		t.Fatalf("second submission not quota-rejected: %+v", rejected)
	}
	if rejected.RetryAfter != 6*sim.Second {
		t.Fatalf("RetryAfter = %v, want 6s", rejected.RetryAfter)
	}
	rejected = nil
	if err := svc.EnqueueBatchOrigin(userSubmission("modest@x", 8), "service", cb); err != nil {
		t.Fatal(err)
	}
	if rejected != nil {
		t.Fatalf("independent user rejected: %v", rejected)
	}
	eng.RunUntil(sim.Time(sim.Hour))
	if q, _ := svc.Sheds(); q != 1 {
		t.Fatalf("quota sheds = %d, want 1", q)
	}
}

// TestAdmitRequiresIngest pins the wiring contract: the admission
// layer prices submissions with the ingest cost model, so enabling it
// without SetIngest is a configuration error.
func TestAdmitRequiresIngest(t *testing.T) {
	_, svc, _ := testService(t)
	if err := svc.SetAdmit(admit.Config{MaxQueueDepth: 1}); err == nil {
		t.Fatal("SetAdmit accepted a service without the ingest model")
	}
	if err := svc.SetAdmit(admit.Config{}); err != nil {
		t.Fatalf("disabled admit config must be a no-op, got %v", err)
	}
	if svc.AdmitActive() {
		t.Fatal("AdmitActive true without a controller")
	}
}

// TestIngestErrorJournaled forces a deferred expansion failure and
// checks it surfaces as a journal event and counter, not only in the
// IngestErrors slice. The collision: the scheduler's per-submission
// job IDs are sanitize(email)-rNNNN-seq, and seq only advances on
// SubmitBatch — pre-seeding a direct Submit with the ID the drain will
// generate makes the deferred expansion fail deterministically.
func TestIngestErrorJournaled(t *testing.T) {
	eng, svc, _ := testService(t)
	hub := obs.New(eng)
	svc.SetObs(hub)
	svc.SetIngest(IngestConfig{PerSubmissionSeconds: 5, PerReplicateSeconds: 0})

	// Occupy the job ID the drain-time expansion will generate
	// (replicate 0, batch sequence 1): the deferred SubmitBatch then
	// fails on the duplicate.
	desc := &rsl.JobDescription{
		JobID: "clash_example_edu-r0000-1", Executable: "garli", Count: 1,
		MaxMemoryMB: 256,
		Platforms:   []lrm.Platform{lrm.LinuxX86},
		Work:        60 * lrm.ReferenceCellsPerSecond,
	}
	if _, err := svc.sched.Submit(desc, nil, nil); err != nil {
		t.Fatalf("pre-seed Submit: %v", err)
	}
	var drainErr error
	if err := svc.EnqueueBatchOrigin(userSubmission("clash@example.edu", 1), "service", func(b *Batch, err error) {
		drainErr = err
	}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(sim.Minute))
	if drainErr == nil || !strings.Contains(drainErr.Error(), "duplicate job ID") {
		t.Fatalf("drain error = %v, want duplicate job ID", drainErr)
	}
	if len(svc.IngestErrors()) != 1 {
		t.Fatalf("IngestErrors = %v, want exactly one", svc.IngestErrors())
	}
	var found bool
	for _, ev := range hub.Journal.Events() {
		if ev.Stage == obs.StageFail && ev.Batch == "" && strings.Contains(ev.Detail, "deferred expansion failed") {
			found = true
		}
	}
	if !found {
		t.Fatal("deferred expansion failure not journaled")
	}
	snap := hub.Registry.Snapshot()
	var counted bool
	for _, s := range snap {
		if s.Name == "lattice_ingest_errors_total" && s.Value == 1 {
			counted = true
		}
	}
	if !counted {
		t.Fatalf("lattice_ingest_errors_total not incremented: %+v", snap)
	}
}
