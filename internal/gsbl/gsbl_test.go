package gsbl

import (
	"archive/zip"
	"bytes"
	"strings"
	"testing"

	"lattice/internal/grid/mds"
	"lattice/internal/lrm"
	"lattice/internal/lrm/pbs"
	"lattice/internal/metasched"
	"lattice/internal/phylo"
	"lattice/internal/sim"
	"lattice/internal/workload"
)

func testService(t *testing.T) (*sim.Engine, *Service, *Mailer) {
	t.Helper()
	eng := sim.NewEngine()
	idx, err := mds.NewIndex(eng, 5*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	hpc, err := pbs.New(eng, pbs.Config{
		Name: "hpc", Platform: lrm.LinuxX86,
		Nodes: []pbs.NodeClass{{Count: 16, Speed: 1.5, MemoryMB: 8192}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mds.StartProvider(eng, idx, hpc, sim.Minute); err != nil {
		t.Fatal(err)
	}
	sched := metasched.New(eng, idx, metasched.DefaultConfig())
	if err := sched.Register(hpc, 1.5); err != nil {
		t.Fatal(err)
	}
	mailer := &Mailer{}
	svc := NewService(eng, sched, mailer, sim.NewRNG(1))
	return eng, svc, mailer
}

func smallSubmission(replicates int) workload.Submission {
	return workload.Submission{
		Spec: workload.JobSpec{
			DataType: phylo.Nucleotide, SubstModel: "HKY85",
			RateHet: phylo.RateGamma, NumRateCats: 4, GammaShape: 0.5,
			NumTaxa: 12, SeqLength: 500, SearchReps: 1,
			StartingTree: phylo.StartStepwise, AttachmentsPerTaxon: 10,
			Seed: 7,
		},
		Replicates: replicates,
		UserEmail:  "researcher@example.edu",
	}
}

func TestGarliAppXMLRoundTrip(t *testing.T) {
	app := GarliApp()
	data, err := app.XML()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseAppDescription(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "garli" || len(back.Params) != len(app.Params) {
		t.Errorf("round trip lost content: %s, %d params", back.Name, len(back.Params))
	}
	p, ok := back.Param("ratehetmodel")
	if !ok || len(p.Options) != 3 {
		t.Errorf("ratehetmodel parameter mangled: %+v", p)
	}
	if _, err := ParseAppDescription([]byte("<gridApplication></gridApplication>")); err == nil {
		t.Error("expected error for unnamed app")
	}
	if _, err := ParseAppDescription([]byte("not xml")); err == nil {
		t.Error("expected error for invalid XML")
	}
}

func TestBatchLifecycle(t *testing.T) {
	eng, svc, mailer := testService(t)
	b, err := svc.SubmitBatch(smallSubmission(8))
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Status(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 8 {
		t.Fatalf("batch has %d jobs, want 8", st.Total)
	}
	eng.RunUntil(sim.Time(30 * sim.Day))
	st, _ = svc.Status(b.ID)
	if !st.Done || st.Completed != 8 {
		t.Fatalf("batch not finished: %+v", st)
	}
	// Submission + completion notifications.
	msgs := mailer.SentTo("researcher@example.edu")
	if len(msgs) < 2 {
		t.Fatalf("got %d notifications, want >= 2", len(msgs))
	}
	if !strings.Contains(msgs[len(msgs)-1].Subject, "complete") {
		t.Errorf("last notification subject %q", msgs[len(msgs)-1].Subject)
	}
}

func TestValidationRejectsBadSubmission(t *testing.T) {
	_, svc, _ := testService(t)
	bad := smallSubmission(0)
	if _, err := svc.SubmitBatch(bad); err == nil {
		t.Error("zero-replicate submission accepted")
	}
	bad = smallSubmission(5)
	bad.Spec.NumTaxa = 1
	if _, err := svc.SubmitBatch(bad); err == nil {
		t.Error("1-taxon submission accepted")
	}
	bad = smallSubmission(workload.MaxReplicates + 1)
	if _, err := svc.SubmitBatch(bad); err == nil {
		t.Error("over-limit replicate count accepted")
	}
}

func TestResultsZip(t *testing.T) {
	eng, svc, _ := testService(t)
	b, err := svc.SubmitBatch(smallSubmission(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ResultsZip(b.ID); err == nil {
		t.Error("zip available before batch finished")
	}
	eng.RunUntil(sim.Time(30 * sim.Day))
	data, err := svc.ResultsZip(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, f := range zr.File {
		names[f.Name] = true
	}
	if !names["batch_summary.txt"] {
		t.Error("zip missing batch summary")
	}
	tre, logs := 0, 0
	for n := range names {
		if strings.HasSuffix(n, ".best.tre") {
			tre++
		}
		if strings.HasSuffix(n, ".screen.log") {
			logs++
		}
	}
	if tre != 5 || logs != 5 {
		t.Errorf("zip has %d tree files and %d logs, want 5 each", tre, logs)
	}
}

func TestCancelBatch(t *testing.T) {
	eng, svc, _ := testService(t)
	sub := smallSubmission(4)
	sub.Spec.NumTaxa = 80
	sub.Spec.SeqLength = 3000 // long jobs
	b, err := svc.SubmitBatch(sub)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(5 * sim.Minute))
	if err := svc.CancelBatch(b.ID); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(2 * sim.Day))
	st, _ := svc.Status(b.ID)
	if st.Completed != 0 {
		t.Errorf("%d jobs completed despite cancellation", st.Completed)
	}
	if !st.Done {
		t.Errorf("cancelled batch not terminal: %+v", st)
	}
	if err := svc.CancelBatch("nope"); err == nil {
		t.Error("cancel of unknown batch succeeded")
	}
}

func TestUnknownBatchQueries(t *testing.T) {
	_, svc, _ := testService(t)
	if _, err := svc.Status("nope"); err == nil {
		t.Error("status of unknown batch succeeded")
	}
	if _, err := svc.ResultsZip("nope"); err == nil {
		t.Error("zip of unknown batch succeeded")
	}
	if _, ok := svc.Batch("nope"); ok {
		t.Error("lookup of unknown batch succeeded")
	}
}

func TestBatchesSorted(t *testing.T) {
	_, svc, _ := testService(t)
	for i := 0; i < 3; i++ {
		if _, err := svc.SubmitBatch(smallSubmission(1)); err != nil {
			t.Fatal(err)
		}
	}
	ids := svc.Batches()
	if len(ids) != 3 {
		t.Fatalf("got %d batches", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Error("batch IDs not sorted")
		}
	}
}
